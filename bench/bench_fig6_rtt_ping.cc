// Reproduces Figure 6: RTT measured by HTTP/2 PING vs ICMP ping, TCP
// three-way-handshake timing, and HTTP/1.1 request timing — ten sites for
// each of the top server families, as in §V-H.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/probes.h"

int main() {
  using namespace h2r;
  bench::print_banner(
      "Figure 6 - RTT measured by ICMP, TCP, HTTP/1.1 and HTTP/2 PING");

  const std::vector<std::string> top_families = {
      "litespeed", "nginx", "gse", "tengine", "cloudflare-nginx",
      "ideawebserver", "tengine-aserver"};
  Rng rng(bench::seed_from_env());

  SampleSet h2_ping, icmp, tcp, http11;
  int sites = 0;
  for (const auto& family : top_families) {
    for (int k = 0; k < 10; ++k) {  // "randomly select 10 sites for each"
      core::Target target =
          core::Target::testbed(server::profile_by_key(family));
      target.host = family + "-" + std::to_string(k) + ".example";
      Rng site_rng = rng.fork(static_cast<std::uint64_t>(sites));
      target.path.base_rtt_ms = 5 + site_rng.next_double() * 250;
      target.path.jitter_ms = 2 + site_rng.next_double() * 10;
      target.path.http11_think_ms = 15 + site_rng.next_double() * 60;

      const auto r = core::probe_ping(target, /*samples=*/20, site_rng);
      if (!r.supported) continue;
      ++sites;
      for (double v : r.h2_ping_ms) h2_ping.add(v);
      for (double v : r.icmp_ms) icmp.add(v);
      for (double v : r.tcp_handshake_ms) tcp.add(v);
      for (double v : r.http11_ms) http11.add(v);
    }
  }

  std::printf("sites probed: %d; %zu samples per method\n\n", sites,
              h2_ping.size());
  TextTable table({"Method", "median (ms)", "mean (ms)", "p90 (ms)"});
  auto row = [&](const char* name, const SampleSet& s) {
    char m[32], a[32], p[32];
    std::snprintf(m, sizeof m, "%.1f", s.median());
    std::snprintf(a, sizeof a, "%.1f", s.mean());
    std::snprintf(p, sizeof p, "%.1f", s.quantile(0.9));
    table.add_row({name, m, a, p});
  };
  row("h2-ping", h2_ping);
  row("icmp", icmp);
  row("tcp-rtt", tcp);
  row("h2-request (HTTP/1.1)", http11);
  std::fputs(table.render().c_str(), stdout);

  std::vector<std::pair<std::string, std::vector<std::pair<double, double>>>>
      series = {{"h2-ping", h2_ping.cdf_points()},
                {"icmp", icmp.cdf_points()},
                {"tcp-rtt", tcp.cdf_points()},
                {"h2-request", http11.cdf_points()}};
  std::fputs(render_ascii_cdf(series, 72, 16).c_str(), stdout);
  std::printf(
      "\nPaper's reading: HTTP/2 PING, TCP handshake and ICMP agree closely; "
      "the HTTP/1.1 estimate is longer because it includes server think "
      "time. Measured here: |median(h2) - median(tcp)| = %.1f ms, "
      "median(http/1.1) - median(h2) = %.1f ms.\n",
      std::abs(h2_ping.median() - tcp.median()),
      http11.median() - h2_ping.median());
  return 0;
}
