// Reproduces Table IV: server families used by more than 1,000 sites in
// each experiment, from the `server` response header of scanned sites.
#include <algorithm>
#include <cstdio>
#include <map>

#include "bench/bench_util.h"

namespace {

// Paper values for the side-by-side column.
const std::map<std::string, std::pair<std::size_t, std::size_t>> kPaper = {
    {"LiteSpeed", {12'637, 13'626}},        {"nginx", {11'293, 27'394}},
    {"GSE", {9'928, 9'929}},                {"Tengine", {2'535, 674}},
    {"cloudflare-nginx", {1'197, 1'766}},   {"IdeaWebServer", {1'128, 1'261}},
    {"Tengine/Aserver", {0, 2'620}},
};

/// Collapses a `server` header to its family for the table.
std::string family_of(const std::string& server_header) {
  auto starts = [&](const char* p) { return server_header.rfind(p, 0) == 0; };
  if (starts("LiteSpeed")) return "LiteSpeed";
  if (starts("nginx")) return "nginx";
  if (starts("GSE")) return "GSE";
  if (starts("Tengine/Aserver")) return "Tengine/Aserver";
  if (starts("Tengine")) return "Tengine";
  if (starts("cloudflare-nginx")) return "cloudflare-nginx";
  if (starts("IdeaWebServer")) return "IdeaWebServer";
  return server_header;
}

}  // namespace

int main() {
  using namespace h2r;
  bench::print_banner("Table IV - Servers used by more than 1,000 sites");

  corpus::ScanOptions opts = bench::scan_options();
  opts.probe_flow_control = false;
  opts.probe_priority = false;
  opts.probe_push = false;
  opts.probe_hpack = false;

  std::map<std::string, std::pair<std::size_t, std::size_t>> measured;
  std::size_t kinds1 = 0, kinds2 = 0;
  for (auto epoch : {corpus::Epoch::kExp1, corpus::Epoch::kExp2}) {
    const auto report =
        corpus::scan_population(bench::population_for(epoch), opts);
    for (const auto& [name, count] : report.server_counts) {
      auto& slot = measured[family_of(name)];
      (epoch == corpus::Epoch::kExp1 ? slot.first : slot.second) += count;
    }
    (epoch == corpus::Epoch::kExp1 ? kinds1 : kinds2) =
        report.distinct_server_kinds;
  }

  TextTable table({"Server name", "Num. in 1st Exp.", "Num. in 2nd Exp."});
  std::vector<std::pair<std::string, std::pair<std::size_t, std::size_t>>> rows(
      measured.begin(), measured.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.first > b.second.first;
  });
  const auto threshold =
      static_cast<std::size_t>(1000.0 / bench::scale_from_env());
  for (const auto& [name, counts] : rows) {
    if (counts.first <= threshold && counts.second <= threshold) continue;
    auto paper = kPaper.count(name) ? kPaper.at(name)
                                    : std::pair<std::size_t, std::size_t>{0, 0};
    table.add_row({name, bench::vs_paper(counts.first, paper.first),
                   bench::vs_paper(counts.second, paper.second)});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nDistinct server kinds observed: %zu (paper: 223) / %zu (paper: 345)\n",
      kinds1, kinds2);
  return 0;
}
