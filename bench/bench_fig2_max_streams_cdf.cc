// Reproduces Figure 2: CDF of SETTINGS_MAX_CONCURRENT_STREAMS across the
// scanned sites, both experiments, on a log-10 x-axis as in the paper.
#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace h2r;
  bench::print_banner(
      "Figure 2 - Distribution of SETTINGS_MAX_CONCURRENT_STREAMS");

  corpus::ScanOptions opts = bench::scan_options();
  opts.probe_flow_control = false;
  opts.probe_priority = false;
  opts.probe_push = false;
  opts.probe_hpack = false;

  std::vector<std::pair<std::string, std::vector<std::pair<double, double>>>>
      series;
  for (auto epoch : {corpus::Epoch::kExp1, corpus::Epoch::kExp2}) {
    const auto report = corpus::scan_population(bench::population_for(epoch), opts);
    SampleSet samples;
    std::size_t announced = 0, unlimited = 0;
    for (const auto& [value, count] : report.max_concurrent_streams.counts()) {
      if (value == corpus::kNullValue || value == corpus::kUnlimitedValue) {
        unlimited += count;
        continue;
      }
      samples.add_all(std::vector<double>(count, static_cast<double>(value)));
      announced += count;
    }
    series.emplace_back(
        epoch == corpus::Epoch::kExp1 ? "experiment one" : "experiment two",
        samples.cdf_points());
    std::printf(
        "%s: %zu sites announce a limit (unannounced/unlimited: %zu); "
        "median=%.0f  p10=%.0f  p90=%.0f  frac(<100)=%.3f  frac(==100)=%.3f  "
        "frac(==128)=%.3f\n",
        to_string(epoch).data(), announced, unlimited, samples.median(),
        samples.quantile(0.1), samples.quantile(0.9),
        samples.cdf_at(99.5), samples.cdf_at(100.5) - samples.cdf_at(99.5),
        samples.cdf_at(128.5) - samples.cdf_at(127.5));
  }

  std::fputs(render_ascii_cdf(series, 72, 18, /*log_x=*/true).c_str(), stdout);
  std::printf(
      "\nPaper's reading: 100 and 128 are the popular values; the majority "
      "of sites use a value >= 100.\n");
  return 0;
}
