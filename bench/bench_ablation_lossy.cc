// Ablation: HTTP/2's single TCP connection on lossy paths (paper §VI,
// first discussion point, and [30]).
//
// "Since HTTP/2 uses one TCP connection, its performance may be
//  significantly affected in a lossy environment ... Using more than one
//  TCP connection could mitigate such problem."
//
// We sweep packet loss and compare page-load time for 1 connection (h2)
// against 6 sharded connections (the HTTP/1.1-era workaround), with each
// connection individually Mathis-capped.
#include <cstdio>

#include "pageload/loader.h"
#include "util/stats.h"

int main() {
  using namespace h2r;
  std::printf(
      "\n=== Ablation: page load vs packet loss, 1 connection (h2) vs 6 "
      "(sharded) ===\n");

  Rng rng(404);
  pageload::Page page = pageload::Page::synthesize("lossy.example", rng);
  std::printf("page: %zu resources, %zu bytes total\n\n",
              page.resources.size(), page.total_bytes());

  TextTable table({"loss rate", "per-conn cap (kbps)", "PLT 1 conn (s)",
                   "PLT 6 conns (s)", "sharding speedup"});
  for (double loss : {0.0, 0.0001, 0.001, 0.005, 0.02, 0.05}) {
    net::PathModel path;
    path.base_rtt_ms = 120;  // the mobile-network case the paper cites
    path.jitter_ms = 0;
    path.loss_rate = loss;

    pageload::LoadConditions h2{.path = path, .bandwidth_kbps = 6'000,
                                .push_enabled = true, .connections = 1};
    pageload::LoadConditions sharded = h2;
    sharded.connections = 6;
    sharded.push_enabled = false;  // sharding predates push

    Rng ra(1), rb(1);
    const double t1 = pageload::simulate_page_load_ms(page, h2, ra);
    const double t6 = pageload::simulate_page_load_ms(page, sharded, rb);

    char c0[16], c1[24], c2[16], c3[16], c4[16];
    std::snprintf(c0, sizeof c0, "%.2f%%", loss * 100);
    std::snprintf(c1, sizeof c1, "%.0f",
                  path.tcp_throughput_kbps(6'000.0));
    std::snprintf(c2, sizeof c2, "%.2f", t1 / 1000);
    std::snprintf(c3, sizeof c3, "%.2f", t6 / 1000);
    std::snprintf(c4, sizeof c4, "%.2fx", t1 / t6);
    table.add_row({c0, c1, c2, c3, c4});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nShape check: loss-free, the single h2 connection wins (push + no "
      "extra handshakes); as loss grows, the Mathis cap throttles the lone "
      "connection and sharding crosses over — the paper's §VI concern.\n");
  return 0;
}
