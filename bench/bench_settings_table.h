// Shared implementation for the three SETTINGS distribution tables
// (Tables V, VI, VII): run the settings-only scan over both epochs and
// print value -> site-count rows against the paper's numbers.
#pragma once

#include <cstdio>
#include <functional>
#include <map>
#include <string>

#include "bench/bench_util.h"

namespace h2r::bench {

inline std::string settings_value_label(std::int64_t v) {
  if (v == corpus::kNullValue) return "NULL";
  if (v == corpus::kUnlimitedValue) return "unlimited";
  return with_commas(static_cast<std::uint64_t>(v));
}

/// Runs the two-epoch settings scan and prints one SETTINGS table.
/// @param pick selects the relevant ValueCounter from a ScanReport.
/// @param paper_rows the paper's (value, exp1, exp2) rows.
inline int run_settings_table_bench(
    const std::string& title,
    const std::function<const ValueCounter&(const corpus::ScanReport&)>& pick,
    const std::function<const std::vector<corpus::ValueCount>&(
        const corpus::EpochMarginals&)>& paper_rows) {
  print_banner(title);

  corpus::ScanOptions opts;
  opts.probe_flow_control = false;
  opts.probe_priority = false;
  opts.probe_push = false;
  opts.probe_hpack = false;

  std::map<std::int64_t, std::pair<std::size_t, std::size_t>> measured;
  for (auto epoch : {corpus::Epoch::kExp1, corpus::Epoch::kExp2}) {
    const auto report = corpus::scan_population(population_for(epoch), opts);
    for (const auto& [value, count] : pick(report).counts()) {
      auto& slot = measured[value];
      (epoch == corpus::Epoch::kExp1 ? slot.first : slot.second) += count;
    }
  }

  // Paper numbers for the side-by-side columns.
  std::map<std::int64_t, std::pair<std::size_t, std::size_t>> paper;
  for (const auto& vc : paper_rows(corpus::marginals(corpus::Epoch::kExp1))) {
    paper[vc.value].first = vc.count;
  }
  for (const auto& vc : paper_rows(corpus::marginals(corpus::Epoch::kExp2))) {
    paper[vc.value].second = vc.count;
  }
  for (const auto& [value, counts] : paper) {
    measured.try_emplace(value, 0, 0);  // show zero-measured rows too
  }

  TextTable table({"Value", "1st Exp.", "2nd Exp."});
  for (const auto& [value, counts] : measured) {
    const auto p = paper.count(value) ? paper.at(value)
                                      : std::pair<std::size_t, std::size_t>{};
    table.add_row({settings_value_label(value),
                   vs_paper(counts.first, p.first),
                   vs_paper(counts.second, p.second)});
  }
  std::fputs(table.render().c_str(), stdout);
  return 0;
}

}  // namespace h2r::bench
