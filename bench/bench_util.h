// Shared plumbing for the reproduction benches.
//
// Every bench binary regenerates one table or figure of the paper and
// prints it side by side with the published numbers. `H2R_SCALE` (env)
// subsamples the corpus 1/N for quick runs; the default is the paper's full
// population. `H2R_SEED` overrides the corpus seed.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "corpus/marginals.h"
#include "corpus/population.h"
#include "corpus/scan.h"
#include "util/stats.h"

namespace h2r::bench {

inline double scale_from_env() {
  const char* s = std::getenv("H2R_SCALE");
  if (s == nullptr) return 1.0;
  const double v = std::atof(s);
  return v >= 1.0 ? v : 1.0;
}

inline std::uint64_t seed_from_env() {
  const char* s = std::getenv("H2R_SEED");
  return s == nullptr ? 42ull : std::strtoull(s, nullptr, 10);
}

/// Worker-pool width for scans; 0 keeps ScanOptions' hardware default.
/// `H2R_THREADS` pins it so runs are reproducible across machines with
/// different core counts.
inline int threads_from_env() {
  const char* s = std::getenv("H2R_THREADS");
  if (s == nullptr) return 0;
  const int v = std::atoi(s);
  return v > 0 ? v : 0;
}

/// ScanOptions seeded from the environment (H2R_THREADS); benches start
/// from this instead of a default-constructed ScanOptions.
inline corpus::ScanOptions scan_options() {
  corpus::ScanOptions opts;
  opts.threads = threads_from_env();
  return opts;
}

inline void print_banner(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  const double scale = scale_from_env();
  if (scale > 1.0) {
    std::printf("(corpus subsampled 1/%.0f via H2R_SCALE; counts below are "
                "scaled back up for comparison)\n",
                scale);
  }
  std::printf("================================================================\n");
}

/// Scales a scanned count back up to full-population units for display.
inline std::uint64_t upscaled(std::size_t count) {
  return static_cast<std::uint64_t>(static_cast<double>(count) *
                                    scale_from_env() + 0.5);
}

/// "12,345 (paper: 12,337)" cell helper.
inline std::string vs_paper(std::size_t measured, std::size_t paper) {
  return with_commas(upscaled(measured)) + "  (paper: " + with_commas(paper) +
         ")";
}

inline corpus::Population population_for(corpus::Epoch epoch) {
  return corpus::generate_population(epoch, seed_from_env(), scale_from_env());
}

}  // namespace h2r::bench
