// Shared plumbing for the reproduction benches.
//
// Every bench binary regenerates one table or figure of the paper and
// prints it side by side with the published numbers. `H2R_SCALE` (env)
// subsamples the corpus 1/N for quick runs; the default is the paper's full
// population. `H2R_SEED` overrides the corpus seed.
#pragma once

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <string_view>

#include "corpus/marginals.h"
#include "corpus/population.h"
#include "corpus/scan.h"
#include "util/parse.h"
#include "util/stats.h"

// ------------------------------------------------------- allocation counter
// Opt-in operator-new hook: a bench TU that defines H2R_BENCH_COUNT_ALLOCS
// before including this header gets a process-wide heap-allocation counter,
// readable via h2r::bench::heap_allocations(). Replaceable allocation
// functions must be non-inline definitions with external linkage, so the
// hook only works in single-TU bench binaries (which all of bench/ are) and
// stays off everywhere else — the relaxed atomic increment is cheap but not
// free, and only the allocs/op rows should pay it.
#ifdef H2R_BENCH_COUNT_ALLOCS

namespace h2r::bench {
inline std::atomic<std::uint64_t> g_heap_allocations{0};
inline std::uint64_t heap_allocations() noexcept {
  return g_heap_allocations.load(std::memory_order_relaxed);
}
}  // namespace h2r::bench

void* operator new(std::size_t size) {
  h2r::bench::g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#else

namespace h2r::bench {
/// Without the hook the counter never moves; allocs/op readouts are
/// meaningless and callers should skip them.
inline std::uint64_t heap_allocations() noexcept { return 0; }
}  // namespace h2r::bench

#endif  // H2R_BENCH_COUNT_ALLOCS

namespace h2r::bench {

/// True when @p s parsed fully as a number; otherwise warns on stderr and
/// leaves the caller's default in place. atof/atoi would silently read
/// "2x10" as 2 and "abc" as 0 — a typo'd env var must not quietly reshape
/// a bench run.
inline bool parse_env_double(const char* name, const char* s, double& out) {
  const auto v = strict_double(s);
  if (!v.has_value()) {
    std::fprintf(stderr, "!! %s=\"%s\" is not a number; ignoring\n", name, s);
    return false;
  }
  out = *v;
  return true;
}

inline bool parse_env_long(const char* name, const char* s, long& out) {
  const auto v = strict_long(s);
  if (!v.has_value()) {
    std::fprintf(stderr, "!! %s=\"%s\" is not an integer; ignoring\n", name, s);
    return false;
  }
  out = *v;
  return true;
}

inline double scale_from_env() {
  const char* s = std::getenv("H2R_SCALE");
  if (s == nullptr) return 1.0;
  double v = 0.0;
  if (!parse_env_double("H2R_SCALE", s, v)) return 1.0;
  if (v < 1.0) {
    std::fprintf(stderr, "!! H2R_SCALE=%s below 1; using 1 (full corpus)\n", s);
    return 1.0;
  }
  return v;
}

inline std::uint64_t seed_from_env() {
  const char* s = std::getenv("H2R_SEED");
  if (s == nullptr) return 42ull;
  long v = 0;
  if (!parse_env_long("H2R_SEED", s, v) || v < 0) {
    if (v < 0) std::fprintf(stderr, "!! H2R_SEED=%s negative; using 42\n", s);
    return 42ull;
  }
  return static_cast<std::uint64_t>(v);
}

/// Worker-pool width for scans; 0 keeps ScanOptions' hardware default.
/// `H2R_THREADS` pins it so runs are reproducible across machines with
/// different core counts.
inline int threads_from_env() {
  const char* s = std::getenv("H2R_THREADS");
  if (s == nullptr) return 0;
  long v = 0;
  if (!parse_env_long("H2R_THREADS", s, v)) return 0;
  if (v <= 0 || v > 4096) {
    std::fprintf(stderr,
                 "!! H2R_THREADS=%s out of range [1, 4096]; using hardware "
                 "concurrency\n",
                 s);
    return 0;
  }
  return static_cast<int>(v);
}

/// `H2R_FAULT_SEED`: base seed for chaos-scan fault schedules. Defaults to
/// ScanOptions' own default so every machine reproduces the same faults;
/// override to explore a different chaos universe.
inline std::uint64_t fault_seed_from_env() {
  const char* s = std::getenv("H2R_FAULT_SEED");
  if (s == nullptr) return corpus::ScanOptions{}.fault_seed;
  long v = 0;
  if (!parse_env_long("H2R_FAULT_SEED", s, v) || v < 0) {
    if (v < 0) {
      std::fprintf(stderr, "!! H2R_FAULT_SEED=%s negative; using default\n", s);
    }
    return corpus::ScanOptions{}.fault_seed;
  }
  return static_cast<std::uint64_t>(v);
}

/// `H2R_COALESCE=0` pins every bench scan sequential (a fresh connection
/// per probe); anything else — including unset — keeps coalesced probe
/// scheduling on. The report is identical either way; only the wall clock
/// moves.
inline bool coalesce_from_env() {
  const char* s = std::getenv("H2R_COALESCE");
  return s == nullptr || std::string_view(s) != "0";
}

/// `H2R_EVENT_LOOP=0` pins every bench scan on the historical sequential
/// driver (one blocking site per worker); anything else — including unset —
/// keeps the shard-reactor event loop on. The report is identical either
/// way; only the wall clock moves.
inline bool event_loop_from_env() {
  const char* s = std::getenv("H2R_EVENT_LOOP");
  return s == nullptr || std::string_view(s) != "0";
}

/// `H2R_TRACE_OUT=<path>`: where trace-capable benches dump the H2Wiretap
/// JSONL trace (a sibling "<path>.metrics.json" gets the metrics snapshot).
/// Empty string = tracing stays off.
inline std::string trace_out_from_env() {
  const char* s = std::getenv("H2R_TRACE_OUT");
  return s == nullptr ? std::string() : std::string(s);
}

/// Writes @p contents to @p path, warning (not aborting) on failure — a bad
/// trace path must not kill a long bench run.
inline void write_file_or_warn(const std::string& path,
                               const std::string& contents) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "!! could not open %s for writing\n", path.c_str());
    return;
  }
  std::fwrite(contents.data(), 1, contents.size(), f);
  std::fclose(f);
  std::printf("wrote %s (%zu bytes)\n", path.c_str(), contents.size());
}

/// ScanOptions seeded from the environment (H2R_THREADS, H2R_COALESCE,
/// H2R_EVENT_LOOP); benches start from this instead of a
/// default-constructed ScanOptions.
inline corpus::ScanOptions scan_options() {
  corpus::ScanOptions opts;
  opts.threads = threads_from_env();
  opts.coalesce = coalesce_from_env();
  opts.event_loop = event_loop_from_env();
  return opts;
}

inline void print_banner(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  const double scale = scale_from_env();
  if (scale > 1.0) {
    std::printf("(corpus subsampled 1/%.0f via H2R_SCALE; counts below are "
                "scaled back up for comparison)\n",
                scale);
  }
  std::printf("================================================================\n");
}

/// Scales a scanned count back up to full-population units for display.
inline std::uint64_t upscaled(std::size_t count) {
  return static_cast<std::uint64_t>(static_cast<double>(count) *
                                    scale_from_env() + 0.5);
}

/// "12,345 (paper: 12,337)" cell helper.
inline std::string vs_paper(std::size_t measured, std::size_t paper) {
  return with_commas(upscaled(measured)) + "  (paper: " + with_commas(paper) +
         ")";
}

inline corpus::Population population_for(corpus::Epoch epoch) {
  return corpus::generate_population(epoch, seed_from_env(), scale_from_env());
}

}  // namespace h2r::bench
