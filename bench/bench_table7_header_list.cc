// Reproduces Table VII: the distribution of SETTINGS_MAX_HEADER_LIST_SIZE
// values ("unlimited" = parameter absent while other SETTINGS are present).
#include "bench/bench_settings_table.h"

int main() {
  using namespace h2r;
  return bench::run_settings_table_bench(
      "Table VII - SETTINGS_MAX_HEADER_LIST_SIZE distribution",
      [](const corpus::ScanReport& r) -> const ValueCounter& {
        return r.max_header_list_size;
      },
      [](const corpus::EpochMarginals& m)
          -> const std::vector<corpus::ValueCount>& {
        return m.max_header_list_size;
      });
}
