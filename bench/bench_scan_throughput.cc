// Scan-throughput harness: the perf trajectory for the whole reproduction.
//
// Times the hot wire-stack micro-ops (Huffman coding, HPACK table lookup,
// full header-block encode/decode, frame serialize/parse) and one complete
// epoch-2 scan, then prints sites/sec + MB/sec and writes the results to a
// machine-readable JSON file so later PRs can regress against this run.
//
// JSON schema: { "<op>": {"wall_ms": w, "per_op_ns": n, "throughput": t} }
// where throughput is MB/sec for byte-oriented ops, ops/sec for lookups and
// sites/sec for the end-to-end scan; the exchange_* rows additionally carry
// "allocs_per_op" (heap allocations per conversation, via the operator-new
// hook in bench_util.h). Output path defaults to
// BENCH_scan_throughput.json in the working directory; override with
// H2R_BENCH_JSON. H2R_SCALE / H2R_SEED / H2R_THREADS apply as in every
// other bench; H2R_COALESCE=0 pins the scan_epoch2_coalesced row (and any
// other coalesce-capable scan) sequential, H2R_EVENT_LOOP=0 pins the
// scan_epoch2_faulted_async row on the historical one-site-per-worker
// driver (the other scan rows are pinned sequential in code so their
// trajectories keep measuring the same work). H2R_TRACE_OUT=<path>
// additionally dumps the traced scan's H2Wiretap JSONL to <path> and its
// metrics snapshot to <path>.metrics.json. H2R_FAULT_SEED reseeds the
// scan_epoch2_faulted chaos row's fault schedules.
#include <chrono>
#include <cstdio>
#include <map>
#include <random>
#include <string>
#include <vector>

#define H2R_BENCH_COUNT_ALLOCS 1
#include "bench/bench_util.h"
#include "core/probes.h"
#include "net/transport.h"
#include "h2/frame.h"
#include "h2/frame_codec.h"
#include "hpack/decoder.h"
#include "hpack/encoder.h"
#include "hpack/huffman.h"
#include "hpack/table.h"
#include "server/profile.h"
#include "trace/metrics.h"
#include "trace/recorder.h"

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

struct OpResult {
  double wall_ms = 0;
  double per_op_ns = 0;
  double throughput = 0;  ///< MB/sec, ops/sec or sites/sec depending on op
  double allocs_per_op = -1;  ///< heap allocations per op; -1 = not measured
};

std::map<std::string, OpResult> g_results;

void record(const std::string& op, double wall_ms, double ops,
            double throughput, double allocs_per_op = -1) {
  g_results[op] = {wall_ms, ops > 0 ? wall_ms * 1e6 / ops : 0.0, throughput,
                   allocs_per_op};
  std::printf("%-24s %10.1f ms   %10.1f ns/op   %12.1f /s", op.c_str(),
              wall_ms, g_results[op].per_op_ns, throughput);
  if (allocs_per_op >= 0) std::printf("   %8.1f allocs/op", allocs_per_op);
  std::printf("\n");
}

/// Header values typical of the corpus responses — what the scan's HPACK
/// layers chew through (mix of indexable, literal and Huffman-friendly).
std::vector<h2r::hpack::HeaderList> sample_header_lists() {
  using h2r::hpack::HeaderList;
  std::vector<HeaderList> lists;
  lists.push_back({{":status", "200"},
                   {"server", "nginx"},
                   {"date", "Tue, 21 Mar 2017 12:00:00 GMT"},
                   {"content-type", "text/html; charset=utf-8"},
                   {"content-length", "154234"},
                   {"cache-control", "max-age=3600, public"}});
  lists.push_back({{":status", "200"},
                   {"server", "gse"},
                   {"content-type", "application/javascript"},
                   {"x-xss-protection", "1; mode=block"},
                   {"x-frame-options", "SAMEORIGIN"},
                   {"alt-svc", "quic=\":443\"; ma=2592000; v=\"36,35,34\""}});
  lists.push_back({{":status", "304"},
                   {"server", "LiteSpeed"},
                   {"etag", "\"5a3-54b1f0a8e6d80\""},
                   {"vary", "accept-encoding"},
                   {"accept-ranges", "bytes"}});
  lists.push_back({{":status", "404"},
                   {"server", "tengine"},
                   {"content-type", "text/plain"},
                   {"set-cookie",
                    "session=f00ba4b4adf00d; path=/; HttpOnly; Secure"}});
  return lists;
}

void bench_huffman(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  // Realistic header-text alphabet: mostly lowercase/digits/punctuation,
  // which is where the Huffman table actually spends its short codes.
  const std::string alphabet =
      "abcdefghijklmnopqrstuvwxyz0123456789-_.:;=/ \"ABCDEFXYZ%";
  std::vector<h2r::Bytes> encoded;
  std::size_t plain_octets = 0;
  for (int i = 0; i < 64; ++i) {
    std::string s;
    const std::size_t len = 8 + rng() % 120;
    for (std::size_t j = 0; j < len; ++j) {
      s.push_back(alphabet[rng() % alphabet.size()]);
    }
    plain_octets += s.size();
    h2r::ByteWriter w;
    h2r::hpack::huffman_encode(w, s);
    encoded.push_back(w.take());
  }

  constexpr int kIters = 20000;
  std::size_t decoded_octets = 0;
  const auto start = Clock::now();
  for (int it = 0; it < kIters; ++it) {
    for (const auto& e : encoded) {
      auto r = h2r::hpack::huffman_decode(e);
      decoded_octets += r.value().size();
    }
  }
  const double wall = ms_since(start);
  const double ops = static_cast<double>(kIters) * encoded.size();
  const double mb =
      static_cast<double>(kIters) * plain_octets / (1024.0 * 1024.0);
  record("huffman_decode", wall, ops, mb / (wall / 1000.0));

  const auto estart = Clock::now();
  std::size_t out_octets = 0;
  std::string plain(512, 'x');
  for (std::size_t j = 0; j < plain.size(); ++j) {
    plain[j] = alphabet[rng() % alphabet.size()];
  }
  for (int it = 0; it < kIters * 4; ++it) {
    h2r::ByteWriter w;
    h2r::hpack::huffman_encode(w, plain);
    out_octets += w.size();
  }
  const double ewall = ms_since(estart);
  const double emb = static_cast<double>(kIters) * 4 * plain.size() /
                     (1024.0 * 1024.0);
  record("huffman_encode", ewall, kIters * 4.0, emb / (ewall / 1000.0));
  (void)decoded_octets;
  (void)out_octets;
}

void bench_hpack_lookup() {
  using h2r::hpack::HeaderField;
  h2r::hpack::IndexTable table;
  // A dynamic table mid-scan: a few dozen cookie/date/etag style entries.
  for (int i = 0; i < 48; ++i) {
    table.insert({"x-custom-header-" + std::to_string(i % 16),
                  "value-" + std::to_string(i)});
  }
  std::vector<HeaderField> queries = {
      {":status", "200"},                         // static full match
      {":method", "GET"},                         // static full match
      {"content-type", "text/html"},              // static name match
      {"x-custom-header-3", "value-35"},          // dynamic full match
      {"x-custom-header-9", "no-such-value"},     // dynamic name match
      {"x-entirely-absent", "nothing"},           // total miss
  };
  constexpr int kIters = 200000;
  std::uint64_t acc = 0;
  const auto start = Clock::now();
  for (int it = 0; it < kIters; ++it) {
    for (const auto& q : queries) {
      const auto m = table.find(q);
      acc += m.index + (m.value_matched ? 1 : 0);
    }
  }
  const double wall = ms_since(start);
  const double ops = static_cast<double>(kIters) * queries.size();
  record("hpack_lookup", wall, ops, ops / (wall / 1000.0));
  if (acc == 0) std::printf("(impossible)\n");
}

void bench_hpack_blocks() {
  const auto lists = sample_header_lists();
  constexpr int kIters = 50000;

  h2r::hpack::Encoder sizer(
      {.policy = h2r::hpack::IndexingPolicy::kAggressive, .use_huffman = true});
  std::size_t block_octets = 0;
  for (const auto& l : lists) block_octets += sizer.encode(l).size();

  const auto estart = Clock::now();
  {
    h2r::hpack::Encoder enc({.policy = h2r::hpack::IndexingPolicy::kAggressive,
                             .use_huffman = true});
    for (int it = 0; it < kIters; ++it) {
      for (const auto& l : lists) {
        const auto b = enc.encode(l);
        block_octets += b.empty() ? 1 : 0;
      }
    }
  }
  const double ewall = ms_since(estart);
  record("hpack_encode_block", ewall,
         static_cast<double>(kIters) * lists.size(),
         static_cast<double>(kIters) * lists.size() / (ewall / 1000.0));

  // Pre-encode one instruction stream, then replay it through fresh
  // decoders (table state must match the encoder's at each block).
  h2r::hpack::Encoder enc({.policy = h2r::hpack::IndexingPolicy::kAggressive,
                           .use_huffman = true});
  std::vector<h2r::Bytes> blocks;
  for (int rep = 0; rep < 4; ++rep) {
    for (const auto& l : lists) blocks.push_back(enc.encode(l));
  }
  const auto dstart = Clock::now();
  constexpr int kDecIters = 20000;
  std::size_t fields = 0;
  for (int it = 0; it < kDecIters; ++it) {
    h2r::hpack::Decoder dec;
    for (const auto& b : blocks) {
      auto r = dec.decode(b);
      fields += r.value().size();
    }
  }
  const double dwall = ms_since(dstart);
  record("hpack_decode_block", dwall,
         static_cast<double>(kDecIters) * blocks.size(),
         static_cast<double>(kDecIters) * blocks.size() / (dwall / 1000.0));
  (void)fields;
}

void bench_framing() {
  using namespace h2r;
  std::vector<h2::Frame> frames;
  frames.push_back(h2::make_settings(
      {{h2::SettingId::kInitialWindowSize, 65535},
       {h2::SettingId::kMaxConcurrentStreams, 100}}));
  frames.push_back(h2::make_headers(1, Bytes(64, 0x42), false, true));
  frames.push_back(h2::make_data(1, Bytes(1024, 0x55), false));
  frames.push_back(h2::make_data(1, Bytes(8192, 0x66), true));
  frames.push_back(h2::make_window_update(0, 65535));
  frames.push_back(h2::make_ping({1, 2, 3, 4, 5, 6, 7, 8}, false));

  constexpr int kIters = 50000;
  const Bytes once = h2::serialize_frames(frames);
  const auto sstart = Clock::now();
  std::size_t octets = 0;
  for (int it = 0; it < kIters; ++it) {
    octets += h2::serialize_frames(frames).size();
  }
  const double swall = ms_since(sstart);
  const double smb = static_cast<double>(octets) / (1024.0 * 1024.0);
  record("frame_serialize", swall,
         static_cast<double>(kIters) * frames.size(), smb / (swall / 1000.0));

  const auto pstart = Clock::now();
  std::size_t parsed = 0;
  for (int it = 0; it < kIters; ++it) {
    h2::FrameParser parser(h2::kMaxAllowedFrameSize);
    parser.feed(once);
    while (auto f = parser.next()) parsed += f->ok() ? 1 : 0;
  }
  const double pwall = ms_since(pstart);
  const double pmb = static_cast<double>(kIters) * once.size() /
                     (1024.0 * 1024.0);
  record("frame_parse", pwall, static_cast<double>(parsed),
         pmb / (pwall / 1000.0));
}

/// One full request/response conversation (client + server engine +
/// lockstep exchange) per op — the unit the wiretap instruments. The
/// untraced row measures the null-sink cost; the traced row pays for the
/// MetricsRecorder fold on every frame (the gap between them is the
/// subsystem's whole overhead budget); the reused row rewinds one client +
/// engine + transport with reset() instead of reconstructing — the path
/// the scan's per-worker scratch and ProbeSession actually take. Each row
/// also reports heap allocations per conversation (operator-new hook).
void bench_exchange() {
  using namespace h2r;
  const core::Target base = core::Target::testbed(server::nginx_profile());
  constexpr int kIters = 3000;

  const auto run_one = [](const core::Target& target) {
    core::ClientConnection client(target.client_options());
    auto server = target.make_server();
    client.send_request("/");
    net::LockstepTransport(client.recorder()).run(client, server);
    return client.events().size();
  };

  const auto per_op = [](std::uint64_t allocs) {
    return static_cast<double>(allocs) / kIters;
  };

  std::size_t frames = 0;
  std::uint64_t allocs0 = bench::heap_allocations();
  const auto ustart = Clock::now();
  for (int it = 0; it < kIters; ++it) frames += run_one(base);
  const double uwall = ms_since(ustart);
  record("exchange_untraced", uwall, kIters,
         static_cast<double>(kIters) / (uwall / 1000.0),
         per_op(bench::heap_allocations() - allocs0));

  {
    core::ClientConnection client(base.client_options());
    auto server = base.make_server();
    net::LockstepTransport transport(client.recorder());
    allocs0 = bench::heap_allocations();
    const auto rstart = Clock::now();
    for (int it = 0; it < kIters; ++it) {
      client.reset();
      base.reset_server(server);
      client.send_request("/");
      transport.run(client, server);
      frames += client.events().size();
    }
    const double rwall = ms_since(rstart);
    record("exchange_reused", rwall, kIters,
           static_cast<double>(kIters) / (rwall / 1000.0),
           per_op(bench::heap_allocations() - allocs0));
  }

  trace::MetricsRegistry registry;
  trace::MetricsRecorder recorder(registry);
  core::Target traced = base;
  traced.recorder = &recorder;
  allocs0 = bench::heap_allocations();
  const auto tstart = Clock::now();
  for (int it = 0; it < kIters; ++it) frames += run_one(traced);
  const double twall = ms_since(tstart);
  record("exchange_traced", twall, kIters,
         static_cast<double>(kIters) / (twall / 1000.0),
         per_op(bench::heap_allocations() - allocs0));
  recorder.finish();
  std::printf("  (traced: %llu frames, %llu connections folded)\n",
              static_cast<unsigned long long>(registry.total_frames()),
              static_cast<unsigned long long>(registry.connections));
  (void)frames;
}

void bench_scan(std::uint64_t seed) {
  using namespace h2r;
  corpus::ScanOptions opts = bench::scan_options();
  opts.seed = seed;
  // The historical row stays pinned sequential (a fresh connection per
  // probe, one blocking site per worker) so its trajectory — and the CI
  // guard's ratio against the committed baseline — keeps measuring the
  // same work across PRs. The event-loop driver gets its own row below.
  opts.coalesce = false;
  opts.event_loop = false;
  const auto pop = bench::population_for(corpus::Epoch::kExp2);
  const double sites = static_cast<double>(pop.sites.size());
  const auto scan_allocs = [&sites](std::uint64_t allocs) {
    return static_cast<double>(allocs) / sites;
  };
  std::uint64_t allocs0 = bench::heap_allocations();
  const auto start = Clock::now();
  const auto report = corpus::scan_population(pop, opts);
  const double wall = ms_since(start);
  record("scan_epoch2", wall, sites, sites / (wall / 1000.0),
         scan_allocs(bench::heap_allocations() - allocs0));
  std::printf("  (%zu sites scanned, %zu responding, threads=%d)\n",
              pop.sites.size(), report.responding_sites, opts.threads);

  // The same scan with coalesced probe scheduling (the scan's default; the
  // row honours H2R_COALESCE so a =0 run shows the two rows converging).
  // The report is asserted bitwise identical to the sequential row's.
  corpus::ScanOptions copts = bench::scan_options();
  copts.seed = seed;
  copts.event_loop = false;  // vs scan_epoch2: isolate the coalescing win
  allocs0 = bench::heap_allocations();
  const auto cstart = Clock::now();
  const auto coalesced = corpus::scan_population(pop, copts);
  const double cwall = ms_since(cstart);
  record("scan_epoch2_coalesced", cwall, sites, sites / (cwall / 1000.0),
         scan_allocs(bench::heap_allocations() - allocs0));
  if (coalesced.responding_sites != report.responding_sites) {
    std::fprintf(stderr, "!! coalesced scan disagrees with sequential scan "
                         "(responding %zu vs %zu)\n",
                 coalesced.responding_sites, report.responding_sites);
  }

  // Same scan with the wiretap folding metrics on every connection — the
  // end-to-end cost of tracing a full-population scan. With H2R_TRACE_OUT
  // set, the per-site JSONL traces are kept too and dumped to that path
  // (metrics snapshot to "<path>.metrics.json").
  const std::string trace_out = bench::trace_out_from_env();
  corpus::ScanOptions topts = opts;
  topts.wiretap_metrics = true;
  topts.wiretap_traces = !trace_out.empty();
  allocs0 = bench::heap_allocations();
  const auto tstart = Clock::now();
  const auto traced = corpus::scan_population(pop, topts);
  const double twall = ms_since(tstart);
  record("scan_epoch2_traced", twall, sites, sites / (twall / 1000.0),
         scan_allocs(bench::heap_allocations() - allocs0));
  std::printf("  (wiretap: %llu frames, %llu violations across %llu "
              "connections)\n",
              static_cast<unsigned long long>(traced.wire_metrics.total_frames()),
              static_cast<unsigned long long>(
                  traced.wire_metrics.total_violations()),
              static_cast<unsigned long long>(traced.wire_metrics.connections));
  if (!trace_out.empty()) {
    std::string jsonl;
    for (const auto& [host, lines] : traced.site_traces) jsonl += lines;
    bench::write_file_or_warn(trace_out, jsonl);
    bench::write_file_or_warn(trace_out + ".metrics.json",
                              traced.wire_metrics.to_json() + "\n");
  }

  // The chaos row: the same population over seeded FaultyTransports with
  // fresh-connection retries — the cost of scanning under adversarial
  // delivery, and a standing proof the faulted scan loop cannot hang
  // (deadline_hits must stay 0).
  corpus::ScanOptions fopts = opts;
  fopts.fault_injection = true;
  fopts.fault_seed = bench::fault_seed_from_env();
  allocs0 = bench::heap_allocations();
  const auto fstart = Clock::now();
  const auto faulted = corpus::scan_population(pop, fopts);
  const double fwall = ms_since(fstart);
  record("scan_epoch2_faulted", fwall, sites, sites / (fwall / 1000.0),
         scan_allocs(bench::heap_allocations() - allocs0));
  std::printf("  (outcomes: ok=%zu retried_ok=%zu truncated=%zu "
              "disconnected=%zu timed_out=%zu)\n",
              faulted.sites_ok, faulted.sites_retried_ok,
              faulted.sites_truncated, faulted.sites_disconnected,
              faulted.sites_timed_out);
  std::printf("  (%llu faults over %llu exchanges, %llu retries, "
              "deadline_hits=%llu)\n",
              static_cast<unsigned long long>(faulted.fault_injected),
              static_cast<unsigned long long>(faulted.fault_exchanges),
              static_cast<unsigned long long>(faulted.fault_retries),
              static_cast<unsigned long long>(faulted.fault_deadline_hits));
  if (faulted.fault_deadline_hits != 0) {
    std::fprintf(stderr, "!! faulted scan hit an exchange deadline — the "
                         "chaos loop is supposed to make that impossible\n");
  }

  // The same chaos scan on the shard-reactor event loop: stalled
  // connections and retry backoffs park on the timer wheel while other
  // sites run, so this row is the one that kills the faulted-scan cliff.
  // The row honours H2R_EVENT_LOOP so a =0 run shows the two chaos rows
  // converging. The report is asserted bitwise identical to the
  // sequential chaos row's (tests/scan_reactor_test.cc pins the guarantee;
  // the cross-check here is a cheap standing tripwire).
  corpus::ScanOptions aopts = fopts;
  aopts.event_loop = bench::event_loop_from_env();
  allocs0 = bench::heap_allocations();
  const auto astart = Clock::now();
  const auto async_scan = corpus::scan_population(pop, aopts);
  const double awall = ms_since(astart);
  record("scan_epoch2_faulted_async", awall, sites, sites / (awall / 1000.0),
         scan_allocs(bench::heap_allocations() - allocs0));
  std::printf("  (reactor: %llu parks over %llu rounds, peak in-flight "
              "%llu, deadline_hits=%llu)\n",
              static_cast<unsigned long long>(
                  async_scan.wire_metrics.reactor_parks),
              static_cast<unsigned long long>(
                  async_scan.wire_metrics.reactor_parked_rounds),
              static_cast<unsigned long long>(
                  async_scan.wire_metrics.reactor_peak_in_flight),
              static_cast<unsigned long long>(
                  async_scan.fault_deadline_hits));
  if (async_scan.sites_ok != faulted.sites_ok ||
      async_scan.fault_injected != faulted.fault_injected ||
      async_scan.fault_retries != faulted.fault_retries) {
    std::fprintf(stderr, "!! event-loop chaos scan disagrees with the "
                         "sequential chaos scan\n");
  }
  if (async_scan.fault_deadline_hits != 0) {
    std::fprintf(stderr, "!! event-loop faulted scan hit an exchange "
                         "deadline\n");
  }
}

void write_json() {
  const char* path_env = std::getenv("H2R_BENCH_JSON");
  const std::string path =
      path_env != nullptr ? path_env : "BENCH_scan_throughput.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::printf("!! could not open %s for writing\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n");
  bool first = true;
  for (const auto& [op, r] : g_results) {
    std::fprintf(f,
                 "%s  \"%s\": {\"wall_ms\": %.3f, \"per_op_ns\": %.2f, "
                 "\"throughput\": %.2f",
                 first ? "" : ",\n", op.c_str(), r.wall_ms, r.per_op_ns,
                 r.throughput);
    if (r.allocs_per_op >= 0) {
      std::fprintf(f, ", \"allocs_per_op\": %.2f", r.allocs_per_op);
    }
    std::fprintf(f, "}");
    first = false;
  }
  std::fprintf(f, "\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path.c_str());
}

}  // namespace

int main() {
  h2r::bench::print_banner("Scan throughput - wire-stack micro-ops + "
                           "end-to-end epoch-2 scan");
  const std::uint64_t seed = h2r::bench::seed_from_env();
  bench_huffman(seed);
  bench_hpack_lookup();
  bench_hpack_blocks();
  bench_framing();
  bench_exchange();
  bench_scan(seed);
  write_json();
  return 0;
}
