// Microbenchmarks of the protocol substrate: frame codec throughput,
// priority tree operations, and full request/response round trips through
// the engine — the costs underlying every scan probe.
#include <benchmark/benchmark.h>

#include "core/probes.h"
#include "net/transport.h"
#include "h2/frame_codec.h"
#include "h2/priority_tree.h"
#include "server/engine.h"

namespace {

using namespace h2r;

void BM_SerializeDataFrame(benchmark::State& state) {
  const auto payload = static_cast<std::size_t>(state.range(0));
  h2::Frame f = h2::make_data(1, Bytes(payload, 0x5A), false);
  std::size_t bytes = 0;
  for (auto _ : state) {
    bytes += h2::serialize_frame(f).size();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_SerializeDataFrame)->Arg(64)->Arg(1024)->Arg(16384);

void BM_ParseFrameStream(benchmark::State& state) {
  std::vector<h2::Frame> frames;
  for (int i = 0; i < 64; ++i) {
    frames.push_back(h2::make_data(1, Bytes(1024, 0x5A), false));
  }
  const Bytes wire = h2::serialize_frames(frames);
  std::size_t parsed = 0;
  for (auto _ : state) {
    h2::FrameParser parser;
    parser.feed(wire);
    while (auto f = parser.next()) {
      if (!f->ok()) break;
      ++parsed;
    }
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(wire.size() * state.iterations()));
  benchmark::DoNotOptimize(parsed);
}
BENCHMARK(BM_ParseFrameStream);

void BM_PriorityTreeChurn(benchmark::State& state) {
  const auto streams = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    h2::PriorityTree tree;
    for (std::uint32_t i = 1; i <= streams; ++i) {
      const std::uint32_t id = i * 2 - 1;
      (void)tree.declare(id, {.dependency = (i > 1 ? id - 2 : 0),
                              .weight_field = static_cast<std::uint8_t>(i % 256)});
    }
    // Reprioritize everything onto the root, then close all.
    for (std::uint32_t i = 1; i <= streams; ++i) {
      (void)tree.reprioritize(i * 2 - 1, {.dependency = 0});
    }
    for (std::uint32_t i = 1; i <= streams; ++i) {
      tree.remove(i * 2 - 1);
    }
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(streams) * 3 * state.iterations());
}
BENCHMARK(BM_PriorityTreeChurn)->Arg(16)->Arg(128)->Arg(1024);

void BM_FullRequestResponse(benchmark::State& state) {
  const core::Target target =
      core::Target::testbed(server::h2o_profile());
  std::size_t bytes = 0;
  for (auto _ : state) {
    auto server = target.make_server();
    core::ClientConnection client;
    const auto sid = client.send_request("/small");
    net::LockstepTransport(client.recorder()).run(client, server);
    bytes += client.data_received(sid);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_FullRequestResponse);

void BM_LargeDownload(benchmark::State& state) {
  const core::Target target =
      core::Target::testbed(server::h2o_profile());
  std::size_t bytes = 0;
  for (auto _ : state) {
    auto server = target.make_server();
    core::ClientConnection client;
    const auto sid = client.send_request("/large/0");  // 512 KiB
    net::LockstepTransport(client.recorder()).run(client, server);
    bytes += client.data_received(sid);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_LargeDownload);

}  // namespace

BENCHMARK_MAIN();
