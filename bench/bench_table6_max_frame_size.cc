// Reproduces Table VI: the distribution of SETTINGS_MAX_FRAME_SIZE values.
#include "bench/bench_settings_table.h"

int main() {
  using namespace h2r;
  return bench::run_settings_table_bench(
      "Table VI - SETTINGS_MAX_FRAME_SIZE distribution",
      [](const corpus::ScanReport& r) -> const ValueCounter& {
        return r.max_frame_size;
      },
      [](const corpus::EpochMarginals& m)
          -> const std::vector<corpus::ValueCount>& {
        return m.max_frame_size;
      });
}
