// Serve-throughput harness: the real-socket serving mode end to end.
//
// Boots a ServeLoop on an ephemeral loopback port, drives it with the
// in-repo load generator (the same reactor h2load-mini wraps), and reports
// requests/sec plus the latency distribution for three server rows:
//
//   serve_h2o            the h2o profile, stock budgets
//   serve_nginx          the nginx profile, stock budgets
//   serve_h2o_hardened   h2o with MitigationPolicy::hardened() — the cost
//                        of the PR-6 mitigation ledger on legitimate load
//
// JSON schema: { "<row>": {"wall_ms": w, "per_op_ns": n, "throughput": t} }
// where throughput is requests/sec and per_op_ns is wall time per completed
// request — the same shape every other BENCH_*.json in bench/ uses, so the
// CI ratio guard can regress this file against the committed baseline.
// Output path defaults to BENCH_serve_rps.json in the working directory;
// override with H2R_BENCH_JSON. H2R_SCALE=N divides the request budget by
// N (the committed baseline is a full-scale run). Any transport or
// protocol error fails the process — a benchmark over a lossy loopback is
// not a benchmark.
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <thread>

#include "bench/bench_util.h"
#include "netio/load.h"
#include "netio/serve.h"

namespace {

struct RowResult {
  double wall_ms = 0;
  double per_op_ns = 0;
  double throughput = 0;  ///< completed requests per second
};

std::map<std::string, RowResult> g_results;
bool g_failed = false;

struct RowSpec {
  std::string name;
  std::string profile_key;
  bool hardened = false;
};

void run_row(const RowSpec& spec, int connections, int requests,
             int streams) {
  using namespace h2r;

  netio::ServeOptions sopts;
  sopts.profile_key = spec.profile_key;
  sopts.hardened = spec.hardened;
  sopts.max_connections = connections + 8;
  auto serve = netio::ServeLoop::create(sopts);
  if (!serve.ok()) {
    std::fprintf(stderr, "!! %s: %s\n", spec.name.c_str(),
                 serve.status().message().c_str());
    g_failed = true;
    return;
  }
  std::thread server_thread([&] {
    const Status s = serve.value()->run();
    if (!s.ok()) {
      std::fprintf(stderr, "!! %s: serve loop: %s\n", spec.name.c_str(),
                   s.message().c_str());
    }
  });

  netio::LoadOptions lopts;
  lopts.port = serve.value()->port();
  lopts.connections = connections;
  lopts.requests = requests;
  lopts.streams = streams;
  const netio::LoadReport report = netio::run_load(lopts);

  serve.value()->request_shutdown();
  server_thread.join();

  const double completed = static_cast<double>(report.completed);
  g_results[spec.name] = {
      report.wall_ms,
      completed > 0 ? report.wall_ms * 1e6 / completed : 0.0, report.rps};
  std::printf("%-20s %8.1f ms   %10.0f req/s   p50=%.3f p99=%.3f ms\n",
              spec.name.c_str(), report.wall_ms, report.rps,
              report.latency_ms.quantile(0.50),
              report.latency_ms.quantile(0.99));

  if (report.completed != static_cast<std::uint64_t>(requests) ||
      report.total_errors() != 0 || report.failed != 0) {
    std::fprintf(stderr, "!! %s: lossy run — %s\n", spec.name.c_str(),
                 report.json().c_str());
    g_failed = true;
  }
  const netio::ServeStats& stats = serve.value()->stats();
  if (stats.served_clean != static_cast<std::uint64_t>(connections) ||
      !stats.errors.empty()) {
    std::fprintf(stderr, "!! %s: server-side errors — %s\n",
                 spec.name.c_str(), stats.json().c_str());
    g_failed = true;
  }
}

void write_json() {
  const char* path_env = std::getenv("H2R_BENCH_JSON");
  const std::string path =
      path_env != nullptr ? path_env : "BENCH_serve_rps.json";
  std::string out = "{\n";
  bool first = true;
  for (const auto& [row, r] : g_results) {
    char line[256];
    std::snprintf(line, sizeof(line),
                  "%s  \"%s\": {\"wall_ms\": %.3f, \"per_op_ns\": %.2f, "
                  "\"throughput\": %.2f}",
                  first ? "" : ",\n", row.c_str(), r.wall_ms, r.per_op_ns,
                  r.throughput);
    out += line;
    first = false;
  }
  out += "\n}\n";
  h2r::bench::write_file_or_warn(path, out);
}

}  // namespace

int main() {
  h2r::bench::print_banner("Serve RPS - loopback listener + load generator");

  // Full scale: 32 connections x 8 streams chewing through 20k requests.
  // H2R_SCALE=N shrinks the budget for smoke runs (CI uses N=50).
  const double scale = h2r::bench::scale_from_env();
  const int connections = 32;
  const int streams = 8;
  const int requests =
      static_cast<int>(20000 / scale) < connections
          ? connections
          : static_cast<int>(20000 / scale);
  std::printf("con=%d streams=%d req=%d\n\n", connections, streams, requests);

  run_row({"serve_h2o", "h2o", false}, connections, requests, streams);
  run_row({"serve_nginx", "nginx", false}, connections, requests, streams);
  run_row({"serve_h2o_hardened", "h2o", true}, connections, requests,
          streams);

  write_json();
  return g_failed ? 1 : 0;
}
