// Serve-throughput harness: the real-socket serving mode end to end.
//
// Boots a listener on an ephemeral loopback port, drives it with the
// in-repo load generator (the same reactor h2load-mini wraps), and reports
// requests/sec plus the latency distribution. Three single-loop rows run
// the plain ServeLoop (the committed-baseline path):
//
//   serve_h2o            the h2o profile, stock budgets
//   serve_nginx          the nginx profile, stock budgets
//   serve_h2o_hardened   h2o with MitigationPolicy::hardened() — the cost
//                        of the PR-6 mitigation ledger on legitimate load
//
// and a shard sweep runs the nginx profile through ShardedServe with the
// load generator threaded to match:
//
//   serve_nginx_shards1  sharding infrastructure at 1 shard — its overhead
//                        vs serve_nginx is the cost of the sharded harness
//   serve_nginx_shards2  SO_REUSEPORT kernel-balanced accepts, 2 shards
//   serve_nginx_shards4  ... 4 shards (only scales on multi-core hosts;
//                        _meta.hw_concurrency records what this box had)
//
// JSON schema: { "<row>": {"wall_ms": w, "per_op_ns": n, "throughput": t,
// "allocs_per_op": a}, "_meta": {"hw_concurrency": c} } where throughput is
// requests/sec, per_op_ns is wall time per completed request, and
// allocs_per_op is process-wide heap allocations per completed request
// (client + server + harness — the end-to-end figure). Underscore-prefixed
// keys are metadata, not bench rows. Output path defaults to
// BENCH_serve_rps.json in the working directory; override with
// H2R_BENCH_JSON. H2R_SCALE=N divides the request budget by N (the
// committed baseline is a full-scale run). Any transport or protocol error
// fails the process — a benchmark over a lossy loopback is not a benchmark.
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <thread>

#define H2R_BENCH_COUNT_ALLOCS 1
#include "bench/bench_util.h"
#include "netio/load.h"
#include "netio/serve.h"
#include "netio/serve_shard.h"

namespace {

struct RowResult {
  double wall_ms = 0;
  double per_op_ns = 0;
  double throughput = 0;   ///< completed requests per second
  double allocs_per_op = 0;  ///< heap allocations per completed request
};

std::map<std::string, RowResult> g_results;
bool g_failed = false;

struct RowSpec {
  std::string name;
  std::string profile_key;
  bool hardened = false;
  /// 0 = plain ServeLoop (the baseline path); >= 1 = ShardedServe with this
  /// many shards and a load generator threaded to match.
  unsigned shards = 0;
};

void finish_row(const RowSpec& spec, const h2r::netio::LoadReport& report,
                const h2r::netio::ServeStats& stats,
                std::uint64_t heap_allocs, int connections, int requests) {
  const double completed = static_cast<double>(report.completed);
  const double allocs_per_op =
      completed > 0 ? static_cast<double>(heap_allocs) / completed : 0.0;
  g_results[spec.name] = {
      report.wall_ms,
      completed > 0 ? report.wall_ms * 1e6 / completed : 0.0, report.rps,
      allocs_per_op};
  std::printf(
      "%-22s %8.1f ms  %9.0f req/s  %6.1f allocs/op  "
      "p50=%.3f p99=%.3f p999=%.3f ms\n",
      spec.name.c_str(), report.wall_ms, report.rps, allocs_per_op,
      report.latency_ms.quantile(0.50), report.latency_ms.quantile(0.99),
      report.latency_ms.quantile(0.999));

  if (report.completed != static_cast<std::uint64_t>(requests) ||
      report.total_errors() != 0 || report.failed != 0) {
    std::fprintf(stderr, "!! %s: lossy run — %s\n", spec.name.c_str(),
                 report.json().c_str());
    g_failed = true;
  }
  if (stats.served_clean != static_cast<std::uint64_t>(connections) ||
      !stats.errors.empty()) {
    std::fprintf(stderr, "!! %s: server-side errors — %s\n",
                 spec.name.c_str(), stats.json().c_str());
    g_failed = true;
  }
}

void run_row(const RowSpec& spec, int connections, int requests,
             int streams) {
  using namespace h2r;

  netio::LoadOptions lopts;
  lopts.connections = connections;
  lopts.requests = requests;
  lopts.streams = streams;

  const std::uint64_t allocs0 = bench::heap_allocations();

  if (spec.shards == 0) {
    netio::ServeOptions sopts;
    sopts.profile_key = spec.profile_key;
    sopts.hardened = spec.hardened;
    sopts.max_connections = connections + 8;
    auto serve = netio::ServeLoop::create(sopts);
    if (!serve.ok()) {
      std::fprintf(stderr, "!! %s: %s\n", spec.name.c_str(),
                   serve.status().message().c_str());
      g_failed = true;
      return;
    }
    std::thread server_thread([&] {
      const Status s = serve.value()->run();
      if (!s.ok()) {
        std::fprintf(stderr, "!! %s: serve loop: %s\n", spec.name.c_str(),
                     s.message().c_str());
      }
    });
    lopts.port = serve.value()->port();
    const netio::LoadReport report = netio::run_load(lopts);
    serve.value()->request_shutdown();
    server_thread.join();
    finish_row(spec, report, serve.value()->stats(),
               bench::heap_allocations() - allocs0, connections, requests);
    return;
  }

  netio::ShardedServeOptions shopts;
  shopts.base.profile_key = spec.profile_key;
  shopts.base.hardened = spec.hardened;
  shopts.base.max_connections = connections + 8;
  shopts.shards = spec.shards;
  auto serve = netio::ShardedServe::create(shopts);
  if (!serve.ok()) {
    std::fprintf(stderr, "!! %s: %s\n", spec.name.c_str(),
                 serve.status().message().c_str());
    g_failed = true;
    return;
  }
  std::thread server_thread([&] {
    const Status s = serve.value()->run();
    if (!s.ok()) {
      std::fprintf(stderr, "!! %s: sharded serve: %s\n", spec.name.c_str(),
                   s.message().c_str());
    }
  });
  lopts.port = serve.value()->port();
  lopts.threads = static_cast<int>(spec.shards);
  const netio::LoadReport report = netio::run_load(lopts);
  serve.value()->request_shutdown();
  server_thread.join();
  finish_row(spec, report, serve.value()->stats(),
             bench::heap_allocations() - allocs0, connections, requests);
}

void write_json() {
  const char* path_env = std::getenv("H2R_BENCH_JSON");
  const std::string path =
      path_env != nullptr ? path_env : "BENCH_serve_rps.json";
  std::string out = "{\n";
  bool first = true;
  for (const auto& [row, r] : g_results) {
    char line[320];
    std::snprintf(line, sizeof(line),
                  "%s  \"%s\": {\"wall_ms\": %.3f, \"per_op_ns\": %.2f, "
                  "\"throughput\": %.2f, \"allocs_per_op\": %.2f}",
                  first ? "" : ",\n", row.c_str(), r.wall_ms, r.per_op_ns,
                  r.throughput, r.allocs_per_op);
    out += line;
    first = false;
  }
  char meta[96];
  std::snprintf(meta, sizeof(meta),
                ",\n  \"_meta\": {\"hw_concurrency\": %u}",
                std::thread::hardware_concurrency());
  out += meta;
  out += "\n}\n";
  h2r::bench::write_file_or_warn(path, out);
}

}  // namespace

int main() {
  h2r::bench::print_banner("Serve RPS - loopback listener + load generator");

  // Full scale: 32 connections x 8 streams chewing through 20k requests.
  // H2R_SCALE=N shrinks the budget for smoke runs (CI uses N=50).
  const double scale = h2r::bench::scale_from_env();
  const int connections = 32;
  const int streams = 8;
  const int requests =
      static_cast<int>(20000 / scale) < connections
          ? connections
          : static_cast<int>(20000 / scale);
  std::printf("con=%d streams=%d req=%d cores=%u\n\n", connections, streams,
              requests, std::thread::hardware_concurrency());

  run_row({"serve_h2o", "h2o", false, 0}, connections, requests, streams);
  run_row({"serve_nginx", "nginx", false, 0}, connections, requests,
          streams);
  run_row({"serve_h2o_hardened", "h2o", true, 0}, connections, requests,
          streams);
  for (const unsigned shards : {1u, 2u, 4u}) {
    run_row({"serve_nginx_shards" + std::to_string(shards), "nginx", false,
             shards},
            connections, requests, streams);
  }

  write_json();
  return g_failed ? 1 : 0;
}
