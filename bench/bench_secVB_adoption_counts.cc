// Reproduces the Section V-B adoption counts: sites establishing HTTP/2 via
// NPN and via ALPN, and sites returning HEADERS, in both experiments.
#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace h2r;
  bench::print_banner("Section V-B - HTTP/2 adoption (NPN / ALPN / HEADERS)");

  corpus::ScanOptions opts = bench::scan_options();
  opts.probe_flow_control = false;
  opts.probe_priority = false;
  opts.probe_push = false;
  opts.probe_hpack = false;
  opts.probe_settings = false;

  TextTable table({"Quantity", "1st Exp. (Jul 2016)", "2nd Exp. (Jan 2017)"});
  std::array<corpus::ScanReport, 2> reports;
  for (auto epoch : {corpus::Epoch::kExp1, corpus::Epoch::kExp2}) {
    reports[epoch == corpus::Epoch::kExp1 ? 0 : 1] =
        corpus::scan_population(bench::population_for(epoch), opts);
  }
  const auto& m1 = corpus::marginals(corpus::Epoch::kExp1);
  const auto& m2 = corpus::marginals(corpus::Epoch::kExp2);
  table.add_row({"sites scanned", with_commas(bench::upscaled(reports[0].total_scanned)),
                 with_commas(bench::upscaled(reports[1].total_scanned))});
  table.add_row({"h2 via NPN", bench::vs_paper(reports[0].npn_sites, m1.npn_sites),
                 bench::vs_paper(reports[1].npn_sites, m2.npn_sites)});
  table.add_row({"h2 via ALPN", bench::vs_paper(reports[0].alpn_sites, m1.alpn_sites),
                 bench::vs_paper(reports[1].alpn_sites, m2.alpn_sites)});
  table.add_row({"HEADERS received",
                 bench::vs_paper(reports[0].responding_sites, m1.responding_sites),
                 bench::vs_paper(reports[1].responding_sites, m2.responding_sites)});
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nPaper's reading: adoption grows strongly between the experiments "
      "(NPN +59.6%%, ALPN +47.7%%, HEADERS +44.8%%).\n");
  return 0;
}
