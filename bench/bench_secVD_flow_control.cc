// Reproduces the Section V-D flow-control measurements: DATA frame control
// under a 1-octet window, HEADERS under a zero window, and the reactions to
// zero / overflowing WINDOW_UPDATE frames.
#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace h2r;
  bench::print_banner("Section V-D - Flow control in the wild");

  corpus::ScanOptions opts = bench::scan_options();
  opts.probe_priority = false;
  opts.probe_push = false;
  opts.probe_hpack = false;
  opts.probe_settings = false;

  std::array<corpus::ScanReport, 2> r;
  for (auto epoch : {corpus::Epoch::kExp1, corpus::Epoch::kExp2}) {
    r[epoch == corpus::Epoch::kExp1 ? 0 : 1] =
        corpus::scan_population(bench::population_for(epoch), opts);
  }
  const auto& m1 = corpus::marginals(corpus::Epoch::kExp1);
  const auto& m2 = corpus::marginals(corpus::Epoch::kExp2);

  TextTable table({"Observation", "1st Exp.", "2nd Exp."});
  table.add_row({"V-D1: DATA frames with 1-byte payload (conformant)",
                 bench::vs_paper(r[0].sframe_respecting, m1.sframe_respecting_sites),
                 bench::vs_paper(r[1].sframe_respecting, m2.sframe_respecting_sites)});
  table.add_row({"V-D1: zero-length DATA frames",
                 bench::vs_paper(r[0].sframe_zero_length, m1.sframe_zero_length_sites),
                 bench::vs_paper(r[1].sframe_zero_length, m2.sframe_zero_length_sites)});
  table.add_row({"V-D1: no response at all",
                 bench::vs_paper(r[0].sframe_no_response, m1.sframe_no_response_sites),
                 bench::vs_paper(r[1].sframe_no_response, m2.sframe_no_response_sites)});
  table.add_row({"V-D1: ...of which LiteSpeed",
                 with_commas(bench::upscaled(r[0].sframe_no_response_litespeed)),
                 bench::vs_paper(r[1].sframe_no_response_litespeed,
                                 m2.sframe_silent_litespeed)});
  table.add_row({"V-D2: HEADERS received at zero initial window (conformant)",
                 bench::vs_paper(r[0].zero_window_headers_ok, m1.zero_window_headers_sites),
                 bench::vs_paper(r[1].zero_window_headers_ok, m2.zero_window_headers_sites)});
  table.add_row({"V-D3: zero window update -> RST_STREAM",
                 bench::vs_paper(r[0].zero_wu_rst, m1.zero_wu_rst_sites),
                 bench::vs_paper(r[1].zero_wu_rst, m2.zero_wu_rst_sites)});
  table.add_row({"V-D3: zero window update ignored",
                 bench::vs_paper(r[0].zero_wu_ignore, 20'717),
                 bench::vs_paper(r[1].zero_wu_ignore, 38'143)});
  table.add_row({"V-D3: zero window update -> GOAWAY",
                 bench::vs_paper(r[0].zero_wu_goaway, m1.zero_wu_goaway_sites),
                 bench::vs_paper(r[1].zero_wu_goaway, m2.zero_wu_goaway_sites)});
  table.add_row({"V-D3: ...with explanatory debug data",
                 bench::vs_paper(r[0].zero_wu_goaway_debug, m1.zero_wu_debug_sites),
                 bench::vs_paper(r[1].zero_wu_goaway_debug, m2.zero_wu_debug_sites)});
  table.add_row({"V-D3: connection-scope zero update -> connection error",
                 with_commas(bench::upscaled(r[0].zero_wu_conn_error)) + "  (paper: nearly all)",
                 with_commas(bench::upscaled(r[1].zero_wu_conn_error)) + "  (paper: nearly all)"});
  table.add_row({"V-D4: overflowing connection window -> GOAWAY",
                 bench::vs_paper(r[0].large_wu_conn_goaway, m1.large_wu_conn_goaway_sites),
                 bench::vs_paper(r[1].large_wu_conn_goaway, m2.large_wu_conn_goaway_sites)});
  table.add_row({"V-D4: overflowing stream window -> RST_STREAM",
                 bench::vs_paper(r[0].large_wu_stream_rst, m1.large_wu_stream_rst_sites),
                 bench::vs_paper(r[1].large_wu_stream_rst, m2.large_wu_stream_rst_sites)});
  table.add_row({"V-D4: overflowing stream window, no RST_STREAM",
                 bench::vs_paper(r[0].large_wu_stream_ignore, 7'771),
                 bench::vs_paper(r[1].large_wu_stream_ignore, 20'242)});
  std::fputs(table.render().c_str(), stdout);
  return 0;
}
