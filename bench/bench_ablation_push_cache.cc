// Ablation: server push vs client caching (paper §VI, fourth discussion
// point).
//
// "if the client already caches these web objects, the pushed data wastes
//  the network bandwidth"
//
// Sweeps the warm-cache fraction and reports page-load time plus the bytes
// pushed in vain, for push on and off — quantifying when static push lists
// turn counterproductive.
#include <cstdio>

#include "pageload/loader.h"
#include "util/stats.h"

int main() {
  using namespace h2r;
  std::printf("\n=== Ablation: server push vs client cache warmth ===\n");

  Rng rng(505);
  pageload::Page page = pageload::Page::synthesize("cached.example", rng);
  std::size_t pushable_bytes = 0;
  for (const auto& r : page.resources) {
    if (r.pushable) pushable_bytes += r.size_bytes;
  }
  std::printf("page: %zu bytes total, %zu bytes pushable\n\n",
              page.total_bytes(), pushable_bytes);

  net::PathModel path;
  path.base_rtt_ms = 150;
  path.jitter_ms = 0;

  TextTable table({"cache warmth", "PLT push on (s)", "PLT push off (s)",
                   "push benefit (ms)", "wasted push bytes"});
  for (double warmth : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    pageload::LoadConditions on{.path = path, .bandwidth_kbps = 3'000,
                                .push_enabled = true,
                                .cached_fraction = warmth};
    pageload::LoadConditions off = on;
    off.push_enabled = false;

    Rng ra(9), rb(9);
    const auto with_push = pageload::simulate_page_load(page, on, ra);
    const auto without = pageload::simulate_page_load(page, off, rb);

    char c0[16], c1[16], c2[16], c3[16], c4[24];
    std::snprintf(c0, sizeof c0, "%.0f%%", warmth * 100);
    std::snprintf(c1, sizeof c1, "%.2f", with_push.plt_ms / 1000);
    std::snprintf(c2, sizeof c2, "%.2f", without.plt_ms / 1000);
    std::snprintf(c3, sizeof c3, "%+.0f", without.plt_ms - with_push.plt_ms);
    std::snprintf(c4, sizeof c4, "%zu", with_push.wasted_push_bytes);
    table.add_row({c0, c1, c2, c3, c4});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nShape check: on a cold cache push wins about one round trip; as the "
      "cache warms, the benefit shrinks while the wasted bytes grow — the "
      "trade-off motivating the paper's call for dynamic push policies.\n");
  return 0;
}
