// Reproduces Table V: the distribution of SETTINGS_INITIAL_WINDOW_SIZE
// values announced by scanned HTTP/2 sites, both experiments.
#include "bench/bench_settings_table.h"

int main() {
  using namespace h2r;
  return bench::run_settings_table_bench(
      "Table V - SETTINGS_INITIAL_WINDOW_SIZE distribution",
      [](const corpus::ScanReport& r) -> const ValueCounter& {
        return r.initial_window_size;
      },
      [](const corpus::EpochMarginals& m)
          -> const std::vector<corpus::ValueCount>& {
        return m.initial_window_size;
      });
}
