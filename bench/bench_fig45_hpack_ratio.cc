// Reproduces Figures 4 and 5: CDFs of the HPACK compression ratio
// (Equation 1, H identical requests) for the five most popular server
// families, one panel per experiment. Sites with r > 1 are filtered, as in
// §V-G.
#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace h2r;
  bench::print_banner(
      "Figures 4 & 5 - HPACK compression ratio of popular HTTP/2 servers");

  corpus::ScanOptions opts = bench::scan_options();
  opts.probe_flow_control = false;
  opts.probe_priority = false;
  opts.probe_push = false;
  opts.probe_settings = false;

  for (auto epoch : {corpus::Epoch::kExp1, corpus::Epoch::kExp2}) {
    const auto report = corpus::scan_population(bench::population_for(epoch), opts);
    std::printf("\n--- %s (%s) ---\n",
                epoch == corpus::Epoch::kExp1 ? "Figure 4" : "Figure 5",
                to_string(epoch).data());

    std::vector<std::pair<std::string, std::vector<std::pair<double, double>>>>
        series;
    std::size_t sample_total = 0;
    for (const auto& [family, ratios] : report.hpack_ratio_by_family) {
      SampleSet s;
      s.add_all(ratios);
      sample_total += ratios.size();
      series.emplace_back(family, s.cdf_points());
      std::printf(
          "%-16s n=%6s  median r=%.3f  frac(r<0.3)=%.3f  frac(r>=0.97)=%.3f\n",
          family.c_str(), with_commas(bench::upscaled(ratios.size())).c_str(),
          s.median(), s.cdf_at(0.3), 1.0 - s.cdf_at(0.97 - 1e-9));
    }
    std::fputs(render_ascii_cdf(series, 72, 16).c_str(), stdout);
    std::printf(
        "sites in sample: %s (paper: %s); filtered out with r > 1: %s\n",
        with_commas(bench::upscaled(sample_total)).c_str(),
        epoch == corpus::Epoch::kExp1 ? "37,849" : "46,948",
        with_commas(bench::upscaled(report.hpack_filtered_out)).c_str());
  }
  std::printf(
      "\nPaper's reading: GSE compresses best (all r < 0.3); Nginx and "
      "IdeaWebServer are worst (93.5%% of Nginx at r = 1); 80%% of LiteSpeed "
      "below 0.3.\n");
  return 0;
}
