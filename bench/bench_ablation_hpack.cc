// Ablation: HPACK indexing policy and Huffman coding (DESIGN.md §5).
//
// Shows how the encoder policy alone produces the Figure 4/5 ratio
// families, what Huffman contributes to wire size, and times the encoder/
// decoder under each configuration.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/probes.h"
#include "hpack/decoder.h"
#include "hpack/huffman.h"
#include "hpack/encoder.h"

namespace {

using namespace h2r;

hpack::HeaderList response_headers() {
  return {{":status", "200"},
          {"server", "h2o/1.6.2"},
          {"date", "Mon, 04 Jul 2016 10:00:00 GMT"},
          {"content-type", "text/html; charset=utf-8"},
          {"content-length", "2048"},
          {"cache-control", "max-age=3600"},
          {"etag", "\"5a3bc-1fe-53c8a1\""},
          {"x-request-id", "9f86d081884c7d65"}};
}

void print_policy_table() {
  std::printf("\n=== Ablation: indexing policy -> Equation-1 ratio ===\n");
  std::printf("%-14s %-9s %-10s %-10s %-8s\n", "policy", "huffman",
              "S1 (bytes)", "S8 (bytes)", "ratio r");
  const int kH = 8;
  for (auto policy :
       {hpack::IndexingPolicy::kAggressive, hpack::IndexingPolicy::kStaticOnly,
        hpack::IndexingPolicy::kNone}) {
    for (bool huffman : {true, false}) {
      hpack::Encoder enc({.policy = policy, .use_huffman = huffman});
      std::size_t first = 0, last = 0, sum = 0;
      for (int i = 0; i < kH; ++i) {
        const std::size_t size = enc.encode(response_headers()).size();
        if (i == 0) first = size;
        last = size;
        sum += size;
      }
      const double ratio =
          static_cast<double>(sum) / (static_cast<double>(first) * kH);
      const char* name = policy == hpack::IndexingPolicy::kAggressive
                             ? "aggressive"
                             : policy == hpack::IndexingPolicy::kStaticOnly
                                   ? "static-only"
                                   : "none";
      std::printf("%-14s %-9s %-10zu %-10zu %.3f\n", name,
                  huffman ? "on" : "off", first, last, ratio);
    }
  }
  std::printf(
      "(aggressive ~= GSE/H2O/nghttpd/Apache/LiteSpeed, r << 1; static-only "
      "~= Nginx/Tengine/IdeaWebServer, r = 1 — the Figure 4/5 families)\n\n");
}

void BM_HpackEncode(benchmark::State& state) {
  const auto policy = static_cast<hpack::IndexingPolicy>(state.range(0));
  const bool huffman = state.range(1) != 0;
  hpack::Encoder enc({.policy = policy, .use_huffman = huffman});
  const auto headers = response_headers();
  std::size_t bytes = 0;
  for (auto _ : state) {
    bytes += enc.encode(headers).size();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_HpackEncode)
    ->Args({static_cast<int>(hpack::IndexingPolicy::kAggressive), 1})
    ->Args({static_cast<int>(hpack::IndexingPolicy::kAggressive), 0})
    ->Args({static_cast<int>(hpack::IndexingPolicy::kStaticOnly), 1})
    ->Args({static_cast<int>(hpack::IndexingPolicy::kNone), 0});

void BM_HpackDecode(benchmark::State& state) {
  hpack::Encoder enc;
  const Bytes block = enc.encode(response_headers());
  hpack::Decoder warm;  // decoder synchronized with the encoder's table
  (void)warm.decode(block);
  std::size_t fields = 0;
  for (auto _ : state) {
    hpack::Decoder dec;
    auto out = dec.decode(block);
    fields += out.ok() ? out->size() : 0;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(fields));
}
BENCHMARK(BM_HpackDecode);

void BM_HuffmanRoundTrip(benchmark::State& state) {
  const std::string text =
      "https://www.example.com/assets/app.min.js?version=1.2.3";
  std::size_t bytes = 0;
  for (auto _ : state) {
    ByteWriter w;
    hpack::huffman_encode(w, text);
    auto back = hpack::huffman_decode(w.bytes());
    bytes += back.ok() ? back->size() : 0;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_HuffmanRoundTrip);

}  // namespace

int main(int argc, char** argv) {
  print_policy_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
