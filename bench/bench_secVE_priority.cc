// Reproduces the Section V-E priority measurements: Algorithm 1 verdicts by
// last-DATA / first-DATA / both orderings, and self-dependency reactions.
#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace h2r;
  bench::print_banner("Section V-E - Priority mechanism in the wild");

  corpus::ScanOptions opts = bench::scan_options();
  opts.probe_flow_control = false;
  opts.probe_push = false;
  opts.probe_hpack = false;
  opts.probe_settings = false;

  std::array<corpus::ScanReport, 2> r;
  for (auto epoch : {corpus::Epoch::kExp1, corpus::Epoch::kExp2}) {
    r[epoch == corpus::Epoch::kExp1 ? 0 : 1] =
        corpus::scan_population(bench::population_for(epoch), opts);
  }
  const auto& m1 = corpus::marginals(corpus::Epoch::kExp1);
  const auto& m2 = corpus::marginals(corpus::Epoch::kExp2);

  TextTable table({"Observation", "1st Exp.", "2nd Exp."});
  table.add_row({"V-E1: priority order by LAST DATA frames",
                 bench::vs_paper(r[0].priority_pass_last, m1.priority_pass_last_sites),
                 bench::vs_paper(r[1].priority_pass_last, m2.priority_pass_last_sites)});
  table.add_row({"V-E1: priority order by FIRST DATA frames",
                 bench::vs_paper(r[0].priority_pass_first, m1.priority_pass_first_sites),
                 bench::vs_paper(r[1].priority_pass_first, m2.priority_pass_first_sites)});
  table.add_row({"V-E1: priority order by BOTH",
                 bench::vs_paper(r[0].priority_pass_both, m1.priority_pass_both_sites),
                 bench::vs_paper(r[1].priority_pass_both, m2.priority_pass_both_sites)});
  table.add_row({"V-E2: self-dependency -> RST_STREAM (RFC-conformant)",
                 bench::vs_paper(r[0].self_dep_rst, m1.self_dep_rst_sites),
                 bench::vs_paper(r[1].self_dep_rst, m2.self_dep_rst_sites)});
  table.add_row({"V-E2: self-dependency -> GOAWAY",
                 with_commas(bench::upscaled(r[0].self_dep_goaway)),
                 with_commas(bench::upscaled(r[1].self_dep_goaway))});
  table.add_row({"V-E2: self-dependency ignored",
                 with_commas(bench::upscaled(r[0].self_dep_ignore)),
                 with_commas(bench::upscaled(r[1].self_dep_ignore))});
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nPaper's reading: the priority mechanism has not been well designed "
      "and deployed; self-dependency handling improves between experiments "
      "(18,237 -> 53,379 RST_STREAM).\n");
  return 0;
}
