// Reproduces Figure 3: page-load time with server push enabled vs disabled
// for the fifteen push-capable sites, 30 visits each (as in §V-F).
#include <cstdio>

#include "bench/bench_util.h"
#include "pageload/loader.h"

int main() {
  using namespace h2r;
  bench::print_banner(
      "Figure 3 - Page load time with server push enabled / disabled");

  const auto& hosts = corpus::marginals(corpus::Epoch::kExp2).push_sites;
  Rng rng(bench::seed_from_env());

  TextTable table({"Site", "PLT disabled (s) med [p10,p90]",
                   "PLT enabled (s) med [p10,p90]", "median saving (ms)"});
  int improved = 0;
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    Rng site_rng = rng.fork(i);
    pageload::Page page = pageload::Page::synthesize(hosts[i], site_rng);
    net::PathModel path;
    path.label = hosts[i];
    path.base_rtt_ms = 60 + site_rng.next_double() * 340;  // global client mix
    path.jitter_ms = 10 + site_rng.next_double() * 30;
    const double bandwidth = 1'500 + site_rng.next_double() * 6'000;

    pageload::LoadConditions off{.path = path, .bandwidth_kbps = bandwidth,
                                 .push_enabled = false};
    pageload::LoadConditions on{.path = path, .bandwidth_kbps = bandwidth,
                                .push_enabled = true};
    Rng visits_off = site_rng.fork(1);
    Rng visits_on = site_rng.fork(1);  // same jitter stream for pairing
    SampleSet plt_off, plt_on;
    plt_off.add_all(pageload::visit_repeatedly(page, off, 30, visits_off));
    plt_on.add_all(pageload::visit_repeatedly(page, on, 30, visits_on));

    auto fmt = [](const SampleSet& s) {
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.2f [%.2f, %.2f]", s.median() / 1000,
                    s.quantile(0.1) / 1000, s.quantile(0.9) / 1000);
      return std::string(buf);
    };
    const double saving = plt_off.median() - plt_on.median();
    if (saving > 0) ++improved;
    char saving_buf[32];
    std::snprintf(saving_buf, sizeof saving_buf, "%+.0f", saving);
    table.add_row({hosts[i], fmt(plt_off), fmt(plt_on), saving_buf});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\n%d of %zu sites load faster with push enabled "
      "(paper: \"enabling server push could reduce the page load time in "
      "most cases\").\n",
      improved, hosts.size());
  return 0;
}
