// Reproduces the Section V-F push-adoption measurement: sites sending
// PUSH_PROMISE when their front page is requested (6 in experiment one,
// 15 in experiment two), and what they push.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/probes.h"

int main() {
  using namespace h2r;
  bench::print_banner("Section V-F - Server push adoption");

  corpus::ScanOptions opts = bench::scan_options();
  opts.probe_flow_control = false;
  opts.probe_priority = false;
  opts.probe_hpack = false;
  opts.probe_settings = false;

  for (auto epoch : {corpus::Epoch::kExp1, corpus::Epoch::kExp2}) {
    const auto pop = bench::population_for(epoch);
    const auto report = corpus::scan_population(pop, opts);
    const auto& m = corpus::marginals(epoch);
    std::printf("\n%s: %zu sites push on their front page (paper: %zu)\n",
                to_string(epoch).data(), report.push_hosts.size(),
                m.push_sites.size());
    for (const auto& host : report.push_hosts) {
      // Show what each pushing site pushes (and that non-front pages don't).
      for (const auto& spec : pop.sites) {
        if (spec.host != host) continue;
        auto front = core::probe_server_push(spec.to_target(), "/");
        auto other = core::probe_server_push(spec.to_target(), "/small");
        std::printf("  %-22s pushes %zu objects (", host.c_str(),
                    front.pushed_paths.size());
        for (std::size_t i = 0; i < front.pushed_paths.size(); ++i) {
          std::printf("%s%s", i ? ", " : "", front.pushed_paths[i].c_str());
        }
        std::printf("); non-front page pushes: %zu\n",
                    other.pushed_paths.size());
        break;
      }
    }
  }
  std::printf(
      "\nPaper's reading: push is barely deployed; pushed objects are "
      "javascript, css and figures; only front pages push.\n");
  return 0;
}
