// Ablation: response-scheduler discipline (DESIGN.md §5).
//
// Runs the multiplexing and Algorithm 1 probes against one server that
// differs only in its scheduler, showing how each discipline maps onto the
// paper's observable categories — and times a full 6-stream priority
// workload per discipline with google-benchmark.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/probes.h"
#include "net/transport.h"

namespace {

using namespace h2r;

core::Target target_with(server::SchedulerKind kind) {
  core::Target t = core::Target::testbed(server::h2o_profile());
  t.profile.scheduler = kind;
  return t;
}

void print_matrix() {
  std::printf(
      "\n=== Ablation: scheduler discipline vs observable behaviour ===\n");
  std::printf("%-16s %-12s %-12s %-10s %-10s %-6s\n", "scheduler",
              "multiplexing", "interleaves", "pass:first", "pass:last",
              "Alg.1");
  for (auto kind :
       {server::SchedulerKind::kPriorityTree, server::SchedulerKind::kFairShare,
        server::SchedulerKind::kPriorityStart,
        server::SchedulerKind::kRoundRobin, server::SchedulerKind::kFcfs}) {
    const core::Target t = target_with(kind);
    const auto mux = core::probe_multiplexing(t);
    const auto prio = core::probe_priority_mechanism(t);
    std::printf("%-16s %-12s %-12d %-10s %-10s %-6s\n",
                to_string(kind).data(), mux.supported ? "yes" : "no",
                mux.interleave_switches, prio.pass_by_first_data ? "yes" : "no",
                prio.pass_by_last_data ? "yes" : "no",
                prio.passes() ? "pass" : "fail");
  }
  std::printf(
      "(priority-tree = H2O/nghttpd/Apache; round-robin = Nginx/LiteSpeed/"
      "Tengine; fair-share / priority-start = partial wild behaviours of "
      "SectionV-E1; fcfs = no-multiplexing baseline)\n\n");
}

void BM_PriorityWorkload(benchmark::State& state) {
  const auto kind = static_cast<server::SchedulerKind>(state.range(0));
  const core::Target t = target_with(kind);
  std::size_t bytes = 0;
  for (auto _ : state) {
    auto server = t.make_server();
    core::ClientOptions opts;
    opts.settings = {{h2::SettingId::kInitialWindowSize, 0x7FFFFFFFu}};
    core::ClientConnection client(opts);
    for (int i = 0; i < 6; ++i) {
      client.send_request("/object/" + std::to_string(i + 1));
    }
    net::LockstepTransport(client.recorder()).run(client, server);
    for (std::uint32_t sid = 1; sid <= 11; sid += 2) {
      bytes += client.data_received(sid);
    }
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
  state.SetLabel(std::string(to_string(kind)));
}
BENCHMARK(BM_PriorityWorkload)
    ->Arg(static_cast<int>(server::SchedulerKind::kPriorityTree))
    ->Arg(static_cast<int>(server::SchedulerKind::kRoundRobin))
    ->Arg(static_cast<int>(server::SchedulerKind::kFairShare))
    ->Arg(static_cast<int>(server::SchedulerKind::kFcfs));

}  // namespace

int main(int argc, char** argv) {
  print_matrix();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
