// Ablation: SETTINGS_INITIAL_WINDOW_SIZE (Sframe) sweep (DESIGN.md §5).
//
// The paper warns (§V-D1, §VI) that a tiny client-chosen window is a DoS
// vector: the server must emit one frame per Sframe octets and hold the
// response in memory. This bench quantifies the frame-count and wire
// overhead amplification across the sweep, plus throughput timing.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/probes.h"
#include "net/transport.h"

namespace {

using namespace h2r;

struct SweepPoint {
  std::uint32_t sframe;
  std::size_t data_frames;
  std::size_t payload_bytes;
  std::size_t wire_bytes;  // payload + 9-octet frame headers
  int exchange_rounds;
};

SweepPoint run_sweep_point(std::uint32_t sframe) {
  core::Target t = core::Target::testbed(server::h2o_profile());
  auto server = t.make_server();
  core::ClientOptions opts;
  opts.settings = {{h2::SettingId::kInitialWindowSize, sframe}};
  core::ClientConnection client(opts);
  const auto sid = client.send_request("/style.css");  // 4 KiB object
  const int rounds =
      net::LockstepTransport().run(client, server).rounds;

  SweepPoint p{.sframe = sframe, .data_frames = 0, .payload_bytes = 0,
               .wire_bytes = 0, .exchange_rounds = rounds};
  for (const auto* ev : client.frames_of(h2::FrameType::kData, sid)) {
    ++p.data_frames;
    const std::size_t n = ev->frame.as<h2::DataPayload>().data.size();
    p.payload_bytes += n;
    p.wire_bytes += n + h2::kFrameHeaderSize;
  }
  return p;
}

void print_sweep() {
  std::printf("\n=== Ablation: Sframe sweep over a 4 KiB response ===\n");
  std::printf("%-10s %-12s %-14s %-12s %-10s %-9s\n", "Sframe", "DATA frames",
              "payload bytes", "wire bytes", "overhead", "rounds");
  for (std::uint32_t sframe : {1u, 8u, 64u, 512u, 4096u, 65535u}) {
    const SweepPoint p = run_sweep_point(sframe);
    std::printf("%-10u %-12zu %-14zu %-12zu %-9.1f%% %-9d\n", p.sframe,
                p.data_frames, p.payload_bytes, p.wire_bytes,
                100.0 * static_cast<double>(p.wire_bytes - p.payload_bytes) /
                    static_cast<double>(p.payload_bytes),
                p.exchange_rounds);
  }
  std::printf(
      "(Sframe=1 forces one 10-octet wire frame per payload octet — the "
      "malicious-receiver amplification of SectionVI)\n\n");
}

void BM_SframeDownload(benchmark::State& state) {
  const auto sframe = static_cast<std::uint32_t>(state.range(0));
  std::size_t bytes = 0;
  for (auto _ : state) {
    const SweepPoint p = run_sweep_point(sframe);
    bytes += p.payload_bytes;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_SframeDownload)->Arg(1)->Arg(64)->Arg(4096)->Arg(65535);

}  // namespace

int main(int argc, char** argv) {
  print_sweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
