// Ablation: the DoS vectors the paper warns about (Section VI).
//
// Part 1 — the original three mechanics, staged directly:
//   1. slow read / malicious receiver — tiny SETTINGS_INITIAL_WINDOW_SIZE
//      pins whole responses in server memory (§V-D1, [20], [23]);
//   2. priority churn — PRIORITY floods force continual dependency-tree
//      reconstruction (algorithmic-complexity attack, [26]);
//   3. header bomb — random never-repeating headers churn the HPACK
//      dynamic table (the SETTINGS_HEADER_TABLE_SIZE concern of §VI).
//
// Part 2 — the attack × profile × mitigation matrix: every
// attack::AttackScenario against every Table III testbed profile, with the
// MitigationPolicy off and hardened, each cell watched live by the
// trace::SequenceDetector. Emits BENCH_attack_matrix.json (override the
// path with H2R_BENCH_JSON) with per-cell termination, resource peaks,
// mitigation level and detector time-to-detect, plus a benign control: a
// seeded FaultyTransport corpus scan run with detection on, whose expected
// detection count is zero.
//
// H2R_SCALE divides the attack intensity (rounds / streams / flood width)
// with floors that keep every scenario above its detector thresholds, so
// the 1/1000 CI smoke still detects all five classes.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "attack/scenario.h"
#include "bench_util.h"
#include "core/probes.h"
#include "net/transport.h"
#include "trace/detector.h"

namespace {

using namespace h2r;

void print_slow_read() {
  std::printf("\n=== DoS 1: slow-read attack (tiny window, many streams) ===\n");
  std::printf("%-10s %-10s %-18s %-18s\n", "streams", "Sframe",
              "pinned bytes", "bytes released");
  for (int streams : {1, 8, 32, 64}) {
    core::Target t = core::Target::testbed(server::h2o_profile());
    auto server = t.make_server();
    core::ClientConnection client(core::ClientOptions::slow_read_stance());
    std::size_t released = 0;
    for (int i = 0; i < streams; ++i) {
      client.send_request("/large/" + std::to_string(i % 8));
    }
    net::LockstepTransport(client.recorder()).run(client, server);
    for (std::uint32_t sid = 1;
         sid <= static_cast<std::uint32_t>(2 * streams); sid += 2) {
      released += client.data_received(sid);
    }
    std::printf("%-10d %-10d %-18zu %-18zu\n", streams, 1,
                server.pending_response_octets(), released);
  }
  std::printf(
      "(each stream leaks exactly Sframe octets and pins the rest — the "
      "amplification is linear in accepted streams, bounded only by "
      "SETTINGS_MAX_CONCURRENT_STREAMS)\n");
}

void print_header_bomb() {
  std::printf("\n=== DoS 3: HPACK dynamic-table churn (header bomb) ===\n");
  std::printf("%-10s %-22s %-16s\n", "requests", "decoder table octets",
              "table capacity");
  core::Target t = core::Target::testbed(server::h2o_profile());
  auto server = t.make_server();
  core::ClientConnection client;
  hpack::Encoder attacker;  // dedicated encoder flooding unique entries
  int sent = 0;
  for (int burst : {1, 16, 64, 256}) {
    for (; sent < burst; ++sent) {
      hpack::HeaderList headers = {{":method", "GET"},
                                   {":scheme", "https"},
                                   {":authority", "victim"},
                                   {":path", "/small"}};
      for (int j = 0; j < 8; ++j) {
        headers.emplace_back(
            "x-bomb-" + std::to_string(sent) + "-" + std::to_string(j),
            std::string(32, static_cast<char>('a' + j)));
      }
      client.send_frame(h2::make_headers(
          static_cast<std::uint32_t>(sent * 2 + 1), attacker.encode(headers),
          /*end_stream=*/true));
      net::LockstepTransport(client.recorder()).run(client, server);
      if (!server.alive()) break;
    }
    std::printf("%-10d %-22zu %-16u\n", sent, server.decoder_table_octets(),
                server.profile().header_table_size);
  }
  std::printf(
      "(occupancy saturates at SETTINGS_HEADER_TABLE_SIZE — the default "
      "4,096 bounds the exposure, which is why §V-C finds every server "
      "keeping the default)\n");
}

// ------------------------------------------------- attack/mitigation matrix

/// One matrix cell, fully evaluated.
struct Cell {
  std::string profile;
  attack::ScenarioKind scenario = attack::ScenarioKind::kSlowRead;
  bool mitigated = false;
  attack::AttackResult result;
  bool detected = false;     ///< detector flagged the expected class
  double ttd_events = 0.0;   ///< mean events-to-detect for that class
  double ttd_rounds = 0.0;
  std::uint64_t extra_detections = 0;  ///< detections of *other* classes
};

attack::ScenarioConfig scaled_config(attack::ScenarioKind kind,
                                     double scale) {
  attack::ScenarioConfig cfg;
  cfg.kind = kind;
  cfg.seed = bench::seed_from_env();
  // Floors keep every scenario above the detector thresholds (slow-read
  // needs >= 8 streams over >= 12 rounds, slow-post >= 16 dribbles, the
  // floods >= 128 frames), so the 1/1000 smoke still detects all classes.
  cfg.rounds = std::max<std::uint32_t>(
      24, static_cast<std::uint32_t>(256.0 / scale));
  cfg.streams = std::max<std::uint32_t>(
      8, static_cast<std::uint32_t>(32.0 / scale));
  cfg.frames_per_round = std::max<std::uint32_t>(
      16, static_cast<std::uint32_t>(32.0 / scale));
  return cfg;
}

Cell run_cell(const server::ServerProfile& base, attack::ScenarioKind kind,
              bool mitigated, double scale) {
  server::ServerProfile profile = base;
  if (mitigated) profile.mitigation = server::MitigationPolicy::hardened();
  core::Target target = core::Target::testbed(profile);

  trace::SequenceDetector detector;
  target.recorder = &detector;

  Cell cell;
  cell.profile = base.key;
  cell.scenario = kind;
  cell.mitigated = mitigated;
  cell.result = attack::AttackScenario(scaled_config(kind, scale)).run(target);

  detector.finish();
  const trace::DetectorReport& report = detector.report();
  const trace::AttackClass expected = attack::expected_class(kind);
  cell.detected = report.detections(expected) > 0;
  cell.ttd_events = report.mean_events_to_detect(expected);
  cell.ttd_rounds = report.mean_rounds_to_detect(expected);
  cell.extra_detections =
      report.total_detections() - report.detections(expected);
  return cell;
}

/// Benign control: the full probe battery over a seeded lossy population
/// with the detector attached to every connection. The expected detection
/// count is zero — the detector's false-positive bar.
corpus::ScanReport benign_control() {
  corpus::ScanOptions opts = bench::scan_options();
  opts.detect_attacks = true;
  opts.fault_injection = true;
  opts.fault_seed = bench::fault_seed_from_env();
  const auto pop = bench::population_for(corpus::Epoch::kExp2);
  return corpus::scan_population(pop, opts);
}

std::string cell_json(const Cell& c) {
  // All emitted strings are enum names / profile keys: no escaping needed.
  std::string out = "    {\"profile\":\"" + c.profile + "\"";
  out += ",\"scenario\":\"" + std::string(to_string(c.scenario)) + "\"";
  out += ",\"mitigated\":";
  out += c.mitigated ? "true" : "false";
  const attack::AttackResult& r = c.result;
  out += ",\"termination\":\"" + std::string(to_string(r.termination)) + "\"";
  out += ",\"bounded\":";
  out += r.bounded() ? "true" : "false";
  out += ",\"rounds_run\":" + std::to_string(r.rounds_run);
  out += ",\"frames_sent\":" + std::to_string(r.frames_sent);
  out += ",\"bytes_c2s\":" + std::to_string(r.bytes_c2s);
  out += ",\"bytes_s2c\":" + std::to_string(r.bytes_s2c);
  out += ",\"peak_pinned_octets\":" + std::to_string(r.peak_pinned_octets);
  out += ",\"peak_active_streams\":" + std::to_string(r.peak_active_streams);
  out += ",\"final_level\":\"" + std::string(to_string(r.final_level)) + "\"";
  out += ",\"suspected\":\"" + std::string(to_string(r.suspected)) + "\"";
  out += ",\"goaway\":\"" +
         (r.goaway_received ? std::string(h2::to_string(r.goaway_code))
                            : std::string("none")) +
         "\"";
  out += ",\"deadline_hit\":";
  out += r.deadline_hit ? "true" : "false";
  out += ",\"detected\":";
  out += c.detected ? "true" : "false";
  char buf[64];
  std::snprintf(buf, sizeof buf, ",\"ttd_events\":%.1f", c.ttd_events);
  out += buf;
  std::snprintf(buf, sizeof buf, ",\"ttd_rounds\":%.1f", c.ttd_rounds);
  out += buf;
  out += ",\"extra_detections\":" + std::to_string(c.extra_detections);
  out += "}";
  return out;
}

void print_attack_matrix() {
  const double scale = bench::scale_from_env();
  std::printf(
      "\n=== DoS 4: attack x profile x mitigation matrix "
      "(scale 1/%.0f) ===\n",
      scale);
  std::printf("%-10s %-15s %-4s %-19s %-14s %-14s %-9s %-8s\n", "profile",
              "scenario", "mit", "termination", "level", "pinned-peak",
              "detected", "ttd-rnd");

  std::vector<Cell> cells;
  bool all_bounded = true;
  bool all_detected = true;
  std::size_t mitigated_contained = 0;
  for (const server::ServerProfile& profile : server::testbed_profiles()) {
    for (attack::ScenarioKind kind : attack::all_scenarios()) {
      for (bool mitigated : {false, true}) {
        Cell cell = run_cell(profile, kind, mitigated, scale);
        all_bounded = all_bounded && cell.result.bounded();
        all_detected = all_detected && cell.detected;
        if (mitigated &&
            cell.result.final_level > server::MitigationLevel::kNone) {
          ++mitigated_contained;
        }
        std::printf("%-10s %-15s %-4s %-19s %-14s %-14zu %-9s %-8.1f\n",
                    cell.profile.c_str(),
                    std::string(to_string(kind)).c_str(),
                    mitigated ? "on" : "off",
                    std::string(to_string(cell.result.termination)).c_str(),
                    std::string(to_string(cell.result.final_level)).c_str(),
                    cell.result.peak_pinned_octets,
                    cell.detected ? "yes" : "NO", cell.ttd_rounds);
        cells.push_back(std::move(cell));
      }
    }
  }

  std::printf("\n--- benign control (faulted probe battery, detector on) ---\n");
  const corpus::ScanReport benign = benign_control();
  const std::uint64_t benign_detections =
      benign.attack_detections.total_detections();
  std::printf(
      "sites %zu  connections %llu  detections %llu  deadline-hits %llu\n",
      benign.total_scanned,
      static_cast<unsigned long long>(benign.attack_detections.connections),
      static_cast<unsigned long long>(benign_detections),
      static_cast<unsigned long long>(benign.fault_deadline_hits));

  std::printf(
      "summary: cells %zu  all-bounded %s  all-detected %s  "
      "mitigated-contained %zu/%zu  benign-false-positives %llu\n",
      cells.size(), all_bounded ? "yes" : "NO", all_detected ? "yes" : "NO",
      mitigated_contained, cells.size() / 2,
      static_cast<unsigned long long>(benign_detections));

  // ---- JSON ------------------------------------------------------------
  std::string json = "{\n";
  char scale_buf[32];
  std::snprintf(scale_buf, sizeof scale_buf, "%.0f", scale);
  json += "  \"scale\": " + std::string(scale_buf) + ",\n";
  json += "  \"rows\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    json += cell_json(cells[i]);
    if (i + 1 < cells.size()) json += ",";
    json += "\n";
  }
  json += "  ],\n";
  json += "  \"summary\": {\"cells\": " + std::to_string(cells.size()) +
          ", \"all_bounded\": " + (all_bounded ? "true" : "false") +
          ", \"all_detected\": " + (all_detected ? "true" : "false") +
          ", \"mitigated_contained\": " + std::to_string(mitigated_contained) +
          "},\n";
  json += "  \"benign\": {\"sites\": " + std::to_string(benign.total_scanned) +
          ", \"connections\": " +
          std::to_string(benign.attack_detections.connections) +
          ", \"detections\": " + std::to_string(benign_detections) +
          ", \"deadline_hits\": " + std::to_string(benign.fault_deadline_hits) +
          "}\n";
  json += "}\n";
  const char* path_env = std::getenv("H2R_BENCH_JSON");
  bench::write_file_or_warn(
      path_env != nullptr ? path_env : "BENCH_attack_matrix.json", json);
}

void BM_PriorityChurnFlood(benchmark::State& state) {
  // Attack 2: a PRIORITY flood across `n` idle streams; each frame forces a
  // detach/attach (and possibly a §5.3.3 subtree move) in the server tree.
  const auto n = static_cast<std::uint32_t>(state.range(0));
  core::Target t = core::Target::testbed(server::h2o_profile());
  std::size_t frames = 0;
  for (auto _ : state) {
    auto server = t.make_server();
    core::ClientConnection client;
    Rng rng(11);
    for (std::uint32_t i = 0; i < n; ++i) {
      const std::uint32_t sid = 2 * i + 1;
      const std::uint32_t dep =
          i == 0 ? 0 : 2 * static_cast<std::uint32_t>(rng.next_below(i)) + 1;
      client.send_priority(sid, {.dependency = dep,
                                 .weight_field = static_cast<std::uint8_t>(
                                     rng.next_below(256)),
                                 .exclusive = rng.next_bool(0.3)});
      ++frames;
    }
    net::LockstepTransport(client.recorder()).run(client, server);
    benchmark::DoNotOptimize(server.priority_tree().size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(frames));
}
BENCHMARK(BM_PriorityChurnFlood)->Arg(64)->Arg(512)->Arg(2048);

void BM_SlowReadSetupCost(benchmark::State& state) {
  // Time the server-side cost of accepting a full batch of slow-read
  // streams (header decode + response prep + 1-octet frames).
  const int streams = static_cast<int>(state.range(0));
  core::Target t = core::Target::testbed(server::h2o_profile());
  for (auto _ : state) {
    auto server = t.make_server();
    core::ClientConnection client(core::ClientOptions::slow_read_stance());
    for (int i = 0; i < streams; ++i) {
      client.send_request("/large/" + std::to_string(i % 8));
    }
    net::LockstepTransport(client.recorder()).run(client, server);
    benchmark::DoNotOptimize(server.pending_response_octets());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(streams) *
                          state.iterations());
}
BENCHMARK(BM_SlowReadSetupCost)->Arg(8)->Arg(64);

}  // namespace

int main(int argc, char** argv) {
  print_slow_read();
  print_header_bomb();
  print_attack_matrix();
  std::printf("\n=== DoS 2: priority-churn flood (timed below) ===\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
