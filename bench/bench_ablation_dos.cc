// Ablation: the DoS vectors the paper warns about (Section VI).
//
// Three attacks, each quantified against the engine:
//   1. slow read / malicious receiver — tiny SETTINGS_INITIAL_WINDOW_SIZE
//      pins whole responses in server memory (§V-D1, [20], [23]);
//   2. priority churn — PRIORITY floods force continual dependency-tree
//      reconstruction (algorithmic-complexity attack, [26]);
//   3. header bomb — random never-repeating headers churn the HPACK
//      dynamic table (the SETTINGS_HEADER_TABLE_SIZE concern of §VI).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/probes.h"
#include "net/transport.h"

namespace {

using namespace h2r;

void print_slow_read() {
  std::printf("\n=== DoS 1: slow-read attack (tiny window, many streams) ===\n");
  std::printf("%-10s %-10s %-18s %-18s\n", "streams", "Sframe",
              "pinned bytes", "bytes released");
  for (int streams : {1, 8, 32, 64}) {
    core::Target t = core::Target::testbed(server::h2o_profile());
    auto server = t.make_server();
    core::ClientOptions opts;
    opts.settings = {{h2::SettingId::kInitialWindowSize, 1}};
    opts.auto_stream_window_update = false;  // the attacker never reads
    core::ClientConnection client(opts);
    std::size_t released = 0;
    for (int i = 0; i < streams; ++i) {
      client.send_request("/large/" + std::to_string(i % 8));
    }
    net::LockstepTransport(client.recorder()).run(client, server);
    for (std::uint32_t sid = 1;
         sid <= static_cast<std::uint32_t>(2 * streams); sid += 2) {
      released += client.data_received(sid);
    }
    std::printf("%-10d %-10d %-18zu %-18zu\n", streams, 1,
                server.pending_response_octets(), released);
  }
  std::printf(
      "(each stream leaks exactly Sframe octets and pins the rest — the "
      "amplification is linear in accepted streams, bounded only by "
      "SETTINGS_MAX_CONCURRENT_STREAMS)\n");
}

void print_header_bomb() {
  std::printf("\n=== DoS 3: HPACK dynamic-table churn (header bomb) ===\n");
  std::printf("%-10s %-22s %-16s\n", "requests", "decoder table octets",
              "table capacity");
  core::Target t = core::Target::testbed(server::h2o_profile());
  auto server = t.make_server();
  core::ClientConnection client;
  hpack::Encoder attacker;  // dedicated encoder flooding unique entries
  int sent = 0;
  for (int burst : {1, 16, 64, 256}) {
    for (; sent < burst; ++sent) {
      hpack::HeaderList headers = {{":method", "GET"},
                                   {":scheme", "https"},
                                   {":authority", "victim"},
                                   {":path", "/small"}};
      for (int j = 0; j < 8; ++j) {
        headers.emplace_back(
            "x-bomb-" + std::to_string(sent) + "-" + std::to_string(j),
            std::string(32, static_cast<char>('a' + j)));
      }
      client.send_frame(h2::make_headers(
          static_cast<std::uint32_t>(sent * 2 + 1), attacker.encode(headers),
          /*end_stream=*/true));
      net::LockstepTransport(client.recorder()).run(client, server);
      if (!server.alive()) break;
    }
    std::printf("%-10d %-22zu %-16u\n", sent, server.decoder_table_octets(),
                server.profile().header_table_size);
  }
  std::printf(
      "(occupancy saturates at SETTINGS_HEADER_TABLE_SIZE — the default "
      "4,096 bounds the exposure, which is why §V-C finds every server "
      "keeping the default)\n");
}

void BM_PriorityChurnFlood(benchmark::State& state) {
  // Attack 2: a PRIORITY flood across `n` idle streams; each frame forces a
  // detach/attach (and possibly a §5.3.3 subtree move) in the server tree.
  const auto n = static_cast<std::uint32_t>(state.range(0));
  core::Target t = core::Target::testbed(server::h2o_profile());
  std::size_t frames = 0;
  for (auto _ : state) {
    auto server = t.make_server();
    core::ClientConnection client;
    Rng rng(11);
    for (std::uint32_t i = 0; i < n; ++i) {
      const std::uint32_t sid = 2 * i + 1;
      const std::uint32_t dep =
          i == 0 ? 0 : 2 * static_cast<std::uint32_t>(rng.next_below(i)) + 1;
      client.send_priority(sid, {.dependency = dep,
                                 .weight_field = static_cast<std::uint8_t>(
                                     rng.next_below(256)),
                                 .exclusive = rng.next_bool(0.3)});
      ++frames;
    }
    net::LockstepTransport(client.recorder()).run(client, server);
    benchmark::DoNotOptimize(server.priority_tree().size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(frames));
}
BENCHMARK(BM_PriorityChurnFlood)->Arg(64)->Arg(512)->Arg(2048);

void BM_SlowReadSetupCost(benchmark::State& state) {
  // Time the server-side cost of accepting a full batch of slow-read
  // streams (header decode + response prep + 1-octet frames).
  const int streams = static_cast<int>(state.range(0));
  core::Target t = core::Target::testbed(server::h2o_profile());
  for (auto _ : state) {
    auto server = t.make_server();
    core::ClientOptions opts;
    opts.settings = {{h2::SettingId::kInitialWindowSize, 1}};
    opts.auto_stream_window_update = false;
    core::ClientConnection client(opts);
    for (int i = 0; i < streams; ++i) {
      client.send_request("/large/" + std::to_string(i % 8));
    }
    net::LockstepTransport(client.recorder()).run(client, server);
    benchmark::DoNotOptimize(server.pending_response_octets());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(streams) *
                          state.iterations());
}
BENCHMARK(BM_SlowReadSetupCost)->Arg(8)->Arg(64);

}  // namespace

int main(int argc, char** argv) {
  print_slow_read();
  print_header_bomb();
  std::printf("\n=== DoS 2: priority-churn flood (timed below) ===\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
