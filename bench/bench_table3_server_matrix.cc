// Reproduces Table III: the feature matrix of the six testbed servers,
// probed entirely from the wire, plus the §V-A MAX_CONCURRENT_STREAMS=0/1
// experiment.
//
// H2R_TRACE_OUT=<path>: run every probe under the H2Wiretap, dump the six
// servers' annotated frame traces (concatenated JSONL, `site` = profile
// key) to <path> and the merged metrics snapshot to <path>.metrics.json.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/report.h"
#include "trace/recorder.h"

int main() {
  using namespace h2r;
  bench::print_banner(
      "Table III - Characterizing popular HTTP/2 web servers in testbed");

  const std::string trace_out = bench::trace_out_from_env();

  Rng rng(7);
  std::vector<core::Characterization> columns;
  std::string jsonl;
  trace::MetricsRegistry merged;
  for (const auto& profile : server::testbed_profiles()) {
    if (trace_out.empty()) {
      columns.push_back(
          core::characterize(core::Target::testbed(profile), rng));
    } else {
      trace::VectorRecorder recorder;
      columns.push_back(core::characterize_traced(core::Target::testbed(profile),
                                                  rng, recorder));
      jsonl += trace::to_jsonl(recorder.events(), profile.key);
      merged.merge(columns.back().wire_metrics);
    }
  }
  if (!trace_out.empty()) {
    bench::write_file_or_warn(trace_out, jsonl);
    bench::write_file_or_warn(trace_out + ".metrics.json",
                              merged.to_json() + "\n");
    std::printf("\n--- H2Wiretap violation tags per server ---\n");
    for (const auto& c : columns) {
      std::printf("%-10s", c.server_key.c_str());
      if (c.violation_tags.empty()) std::printf(" (none)");
      for (const auto& tag : c.violation_tags) std::printf(" %s", tag.c_str());
      std::printf("\n");
    }
  }

  std::vector<std::string> header = {"Feature"};
  for (const auto& c : columns) header.push_back(c.server_key);
  header.push_back("RFC 7540");
  TextTable table(header);

  const auto& labels = core::Characterization::row_labels();
  const auto rfc = core::rfc7540_reference_column();
  std::vector<std::vector<std::string>> cells;
  for (const auto& c : columns) cells.push_back(c.row_values());
  for (std::size_t row = 0; row < labels.size(); ++row) {
    std::vector<std::string> line = {labels[row]};
    for (const auto& values : cells) line.push_back(values[row]);
    line.push_back(rfc[row]);
    table.add_row(std::move(line));
  }
  std::fputs(table.render().c_str(), stdout);

  std::printf("\n--- SettingsProbe extras (Section V-A / V-C) ---\n");
  for (const auto& c : columns) {
    std::printf(
        "%-10s max_concurrent_streams=%s initial_window=%s%s hpack r=%.3f\n",
        c.server_key.c_str(),
        c.settings.max_concurrent_streams
            ? std::to_string(*c.settings.max_concurrent_streams).c_str()
            : "-",
        c.settings.initial_window_size
            ? std::to_string(*c.settings.initial_window_size).c_str()
            : "-",
        c.settings.preemptive_window_bonus > 0 ? " (+WINDOW_UPDATE)" : "",
        c.hpack.ratio);
  }

  std::printf(
      "\n--- SETTINGS_MAX_CONCURRENT_STREAMS = 0 / 1 (Section V-A) ---\n");
  for (const auto& c : columns) {
    std::printf("%-10s cap=0 -> %s; cap=1, 2nd request -> %s\n",
                c.server_key.c_str(),
                c.concurrency_limit.refused_when_zero ? "RST_STREAM" : "served",
                c.concurrency_limit.refused_second_when_one ? "RST_STREAM"
                                                            : "served");
  }
  return 0;
}
