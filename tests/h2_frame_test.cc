// Frame model + codec tests: serialization layout, incremental parsing,
// and the RFC 7540 §4/§6 validity rules the probes depend on.
#include <gtest/gtest.h>

#include "h2/frame.h"
#include "h2/frame_codec.h"
#include "util/bytes.h"

namespace h2r::h2 {
namespace {

Frame roundtrip(const Frame& f, std::uint32_t max_frame_size = kDefaultMaxFrameSize) {
  FrameParser p(max_frame_size);
  p.feed(serialize_frame(f));
  auto out = p.next();
  EXPECT_TRUE(out.has_value());
  EXPECT_TRUE(out->ok()) << out->status().to_string();
  return std::move(out->value());
}

TEST(FrameCodec, DataFrameLayout) {
  Frame f = make_data(1, bytes_of("hello"), /*end_stream=*/true);
  const Bytes wire = serialize_frame(f);
  // 9-octet header: length=5, type=0, flags=END_STREAM, stream=1.
  EXPECT_EQ(to_hex(wire), "000005000100000001" + to_hex(bytes_of("hello")));
}

TEST(FrameCodec, DataRoundTrip) {
  Frame f = make_data(7, bytes_of("payload"), false);
  Frame g = roundtrip(f);
  EXPECT_EQ(g.type(), FrameType::kData);
  EXPECT_EQ(g.stream_id, 7u);
  EXPECT_FALSE(g.has_flag(flags::kEndStream));
  EXPECT_EQ(g.as<DataPayload>().data, bytes_of("payload"));
}

TEST(FrameCodec, PaddedDataStripsPadding) {
  Frame f = make_data(3, bytes_of("abc"), true);
  f.as<DataPayload>().pad_length = 5;
  Frame g = roundtrip(f);
  EXPECT_EQ(g.as<DataPayload>().data, bytes_of("abc"));
  EXPECT_TRUE(g.has_flag(flags::kPadded));
}

TEST(FrameCodec, PaddingLongerThanPayloadIsProtocolError) {
  // Hand-build: DATA, PADDED, length 3, pad-length octet claims 10.
  ByteWriter w;
  w.write_u24(3);
  w.write_u8(0x0);             // DATA
  w.write_u8(flags::kPadded);
  w.write_u32(1);
  w.write_u8(10);              // pad length > remaining 2 octets
  w.write_u8('a');
  w.write_u8('b');
  FrameParser p;
  p.feed(w.bytes());
  auto out = p.next();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->status().code(), StatusCode::kProtocolError);
}

TEST(FrameCodec, HeadersWithPriorityRoundTrip) {
  PriorityInfo prio{.dependency = 3, .weight_field = 200, .exclusive = true};
  Frame f = make_headers(5, bytes_of("\x82"), true, true, prio);
  Frame g = roundtrip(f);
  ASSERT_TRUE(g.as<HeadersPayload>().priority.has_value());
  EXPECT_EQ(*g.as<HeadersPayload>().priority, prio);
  EXPECT_EQ(g.as<HeadersPayload>().priority->weight(), 201);
  EXPECT_TRUE(g.has_flag(flags::kEndStream));
  EXPECT_TRUE(g.has_flag(flags::kEndHeaders));
}

TEST(FrameCodec, PriorityFrameRoundTrip) {
  Frame f = make_priority(9, {.dependency = 7, .weight_field = 15, .exclusive = false});
  Frame g = roundtrip(f);
  EXPECT_EQ(g.type(), FrameType::kPriority);
  EXPECT_EQ(g.as<PriorityPayload>().info.dependency, 7u);
  EXPECT_EQ(g.as<PriorityPayload>().info.weight(), 16);
}

TEST(FrameCodec, PriorityWrongLengthIsFrameSizeError) {
  ByteWriter w;
  w.write_u24(4);  // must be 5
  w.write_u8(0x2);
  w.write_u8(0);
  w.write_u32(1);
  w.write_u32(0);
  FrameParser p;
  p.feed(w.bytes());
  auto out = p.next();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->status().code(), StatusCode::kFrameSizeError);
}

TEST(FrameCodec, RstStreamRoundTrip) {
  Frame g = roundtrip(make_rst_stream(11, ErrorCode::kRefusedStream));
  EXPECT_EQ(g.as<RstStreamPayload>().error, ErrorCode::kRefusedStream);
}

TEST(FrameCodec, SettingsRoundTrip) {
  Frame f = make_settings({{SettingId::kInitialWindowSize, 1},
                           {SettingId::kMaxConcurrentStreams, 128}});
  Frame g = roundtrip(f);
  const auto& entries = g.as<SettingsPayload>().entries;
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].first, 0x4);
  EXPECT_EQ(entries[0].second, 1u);
  EXPECT_EQ(entries[1].first, 0x3);
  EXPECT_EQ(entries[1].second, 128u);
  EXPECT_EQ(g.stream_id, 0u);
}

TEST(FrameCodec, SettingsAckHasFlagAndEmptyPayload) {
  Frame g = roundtrip(make_settings_ack());
  EXPECT_TRUE(g.has_flag(flags::kAck));
  EXPECT_TRUE(g.as<SettingsPayload>().entries.empty());
}

TEST(FrameCodec, SettingsBadLengthIsFrameSizeError) {
  ByteWriter w;
  w.write_u24(5);  // not a multiple of 6
  w.write_u8(0x4);
  w.write_u8(0);
  w.write_u32(0);
  for (int i = 0; i < 5; ++i) w.write_u8(0);
  FrameParser p;
  p.feed(w.bytes());
  auto out = p.next();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->status().code(), StatusCode::kFrameSizeError);
}

TEST(FrameCodec, PushPromiseRoundTrip) {
  Frame g = roundtrip(make_push_promise(1, 2, bytes_of("\x82\x84")));
  EXPECT_EQ(g.as<PushPromisePayload>().promised_stream_id, 2u);
  EXPECT_EQ(g.as<PushPromisePayload>().fragment, bytes_of("\x82\x84"));
}

TEST(FrameCodec, PingRoundTrip) {
  std::array<std::uint8_t, 8> opaque = {1, 2, 3, 4, 5, 6, 7, 8};
  Frame g = roundtrip(make_ping(opaque, /*ack=*/true));
  EXPECT_TRUE(g.has_flag(flags::kAck));
  EXPECT_EQ(g.as<PingPayload>().opaque, opaque);
}

TEST(FrameCodec, PingWrongSizeIsFrameSizeError) {
  ByteWriter w;
  w.write_u24(7);
  w.write_u8(0x6);
  w.write_u8(0);
  w.write_u32(0);
  for (int i = 0; i < 7; ++i) w.write_u8(0);
  FrameParser p;
  p.feed(w.bytes());
  auto out = p.next();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->status().code(), StatusCode::kFrameSizeError);
}

TEST(FrameCodec, GoawayCarriesDebugData) {
  Frame g = roundtrip(
      make_goaway(41, ErrorCode::kProtocolError, "window update shouldn't be zero"));
  EXPECT_EQ(g.as<GoawayPayload>().last_stream_id, 41u);
  EXPECT_EQ(g.as<GoawayPayload>().error, ErrorCode::kProtocolError);
  EXPECT_EQ(std::string(g.as<GoawayPayload>().debug_data.begin(),
                        g.as<GoawayPayload>().debug_data.end()),
            "window update shouldn't be zero");
}

TEST(FrameCodec, WindowUpdateRoundTripIncludingZero) {
  // Increment 0 must *parse* — sending it is exactly what the paper's
  // zero-window-update probe does; rejecting it is the peer's job.
  Frame g = roundtrip(make_window_update(5, 0));
  EXPECT_EQ(g.as<WindowUpdatePayload>().increment, 0u);
  Frame h = roundtrip(make_window_update(0, 0x7FFFFFFF));
  EXPECT_EQ(h.as<WindowUpdatePayload>().increment, 0x7FFFFFFFu);
}

TEST(FrameCodec, ContinuationRoundTrip) {
  Frame g = roundtrip(make_continuation(3, bytes_of("frag"), true));
  EXPECT_TRUE(g.has_flag(flags::kEndHeaders));
  EXPECT_EQ(g.as<ContinuationPayload>().fragment, bytes_of("frag"));
}

TEST(FrameCodec, UnknownTypePassesThrough) {
  Frame f;
  f.stream_id = 0;
  f.payload = UnknownPayload{.type = 0xAB, .data = bytes_of("xyz")};
  Frame g = roundtrip(f);
  ASSERT_TRUE(g.is<UnknownPayload>());
  EXPECT_EQ(g.as<UnknownPayload>().type, 0xAB);
  EXPECT_EQ(g.as<UnknownPayload>().data, bytes_of("xyz"));
}

TEST(FrameParser, HandlesArbitraryChunking) {
  const std::vector<Frame> frames = {
      make_settings({{SettingId::kInitialWindowSize, 65536}}),
      make_headers(1, bytes_of("\x82\x84"), false),
      make_data(1, bytes_of("0123456789"), true),
      make_ping({}, false),
  };
  const Bytes wire = serialize_frames(frames);
  // Deliver one byte at a time — worst-case transport fragmentation.
  FrameParser p;
  std::vector<Frame> parsed;
  for (std::uint8_t b : wire) {
    p.feed({&b, 1});
    while (auto f = p.next()) {
      ASSERT_TRUE(f->ok());
      parsed.push_back(std::move(f->value()));
    }
  }
  ASSERT_EQ(parsed.size(), frames.size());
  for (std::size_t i = 0; i < frames.size(); ++i) {
    EXPECT_EQ(parsed[i].type(), frames[i].type()) << i;
  }
}

TEST(FrameParser, OversizedFrameIsFrameSizeError) {
  Frame f = make_data(1, Bytes(20000, 0x55), false);
  FrameParser p(/*max_frame_size=*/16384);
  p.feed(serialize_frame(f));
  auto out = p.next();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->status().code(), StatusCode::kFrameSizeError);
  // Parser stays poisoned.
  auto again = p.next();
  ASSERT_TRUE(again.has_value());
  EXPECT_FALSE(again->ok());
}

TEST(FrameParser, RaisedLimitAcceptsBigFrames) {
  Frame f = make_data(1, Bytes(20000, 0x55), false);
  FrameParser p(16384);
  p.set_max_frame_size(1 << 20);
  p.feed(serialize_frame(f));
  auto out = p.next();
  ASSERT_TRUE(out.has_value());
  EXPECT_TRUE(out->ok());
  EXPECT_EQ(out->value().as<DataPayload>().data.size(), 20000u);
}

TEST(FrameCodec, SerializeRejectsOversizedPayload) {
  Frame f = make_data(1, Bytes(kMaxAllowedFrameSize + 1, 0), false);
  EXPECT_THROW(serialize_frame(f), std::invalid_argument);
}

TEST(Frame, DescribeIsHumanReadable) {
  EXPECT_EQ(make_rst_stream(3, ErrorCode::kCancel).describe(),
            "RST_STREAM(stream=3, flags=0x0, CANCEL)");
  EXPECT_EQ(make_window_update(0, 100).describe(),
            "WINDOW_UPDATE(stream=0, flags=0x0, +100)");
}

}  // namespace
}  // namespace h2r::h2
