// FaultyTransport behaviour tests: the adversarial delivery schedules the
// chaos scan runs under. The heart is the truncation sweep — cutting the
// server->client stream at *every* octet offset of a real exchange, which
// lands mid-frame-header, mid-payload, and mid-HPACK-block — asserting the
// client always classifies and nothing ever hangs.
#include <gtest/gtest.h>

#include <optional>

#include "core/client.h"
#include "net/transport.h"
#include "server/engine.h"
#include "server/profile.h"
#include "server/site.h"
#include "trace/event.h"
#include "trace/recorder.h"

namespace h2r {
namespace {

using core::ClientConnection;
using core::ClientTerminal;
using server::Http2Server;
using server::Site;

Http2Server make_server() {
  return Http2Server(server::h2o_profile(), Site::standard_testbed_site());
}

/// One GET /small exchange over @p transport; returns the result.
net::ExchangeResult run_get(net::Transport& transport, ClientConnection& client,
                            Http2Server& server, const char* path = "/small") {
  client.send_request(path);
  return transport.run(client, server, {.max_rounds = 512});
}

/// Total server->client octets of the clean reference exchange.
std::uint64_t clean_s2c_bytes() {
  auto server = make_server();
  ClientConnection client;
  net::LockstepTransport transport;
  return run_get(transport, client, server).bytes_s2c;
}

TEST(FaultyTransport, DribbleDeliveryIsProtocolInvisible) {
  // 1-byte segmentation must yield the same client-visible conversation as
  // the whole-buffer lockstep pump: endpoints reassemble any segmentation.
  auto s1 = make_server();
  ClientConnection c1;
  net::LockstepTransport lockstep;
  const auto sid1 = c1.send_request("/small");
  lockstep.run(c1, s1);

  auto s2 = make_server();
  ClientConnection c2;
  net::FaultyTransport dribble({.seed = 1, .max_chunk = 1});
  const auto sid2 = c2.send_request("/small");
  const auto result = dribble.run(c2, s2, {.max_rounds = 4096});

  EXPECT_EQ(result.outcome, net::ExchangeOutcome::kQuiescent);
  EXPECT_EQ(result.fault, net::FaultKind::kNone);
  EXPECT_EQ(c1.data_received(sid1), c2.data_received(sid2));
  EXPECT_EQ(c1.response_headers(sid1), c2.response_headers(sid2));
  EXPECT_EQ(c2.terminal().state, ClientTerminal::kQuiescent);
}

TEST(FaultyTransport, TruncationAtEveryOffsetTerminatesAndClassifies) {
  const std::uint64_t total = clean_s2c_bytes();
  ASSERT_GT(total, 100u);

  for (std::uint64_t cut = 0; cut < total; ++cut) {
    auto server = make_server();
    ClientConnection client;
    net::ExchangeLedger ledger;
    net::FaultyTransport transport({.seed = cut,
                                    .max_chunk = 64,
                                    .kind = net::FaultKind::kTruncate,
                                    .dir = trace::Direction::kServerToClient,
                                    .at_byte = cut},
                                   nullptr, &ledger);
    const auto result = run_get(transport, client, server);

    // Bounded: the cut stream quiesces, it never spins to the round cap.
    ASSERT_FALSE(result.deadline_hit()) << "hang at cut=" << cut;
    ASSERT_EQ(result.fault, net::FaultKind::kTruncate) << cut;
    ASSERT_TRUE(transport.fault_fired()) << cut;
    ASSERT_TRUE(ledger.attempt_truncated) << cut;

    // The client knows the transport died under it — unless the delivered
    // prefix happened to already end the conversation some other way.
    const auto& t = client.terminal();
    ASSERT_NE(t.state, ClientTerminal::kQuiescent) << cut;
    if (t.state == ClientTerminal::kTransportError) {
      ASSERT_EQ(t.byte_offset, cut) << cut;
    }
    ASSERT_FALSE(client.alive()) << cut;
  }
}

TEST(FaultyTransport, TruncationOfTheClientStreamStillAnswers) {
  // Cutting client->server after the preface: the server keeps its half of
  // the connection and the exchange still terminates.
  auto server = make_server();
  ClientConnection client;
  net::FaultyTransport transport({.seed = 3,
                                  .max_chunk = 32,
                                  .kind = net::FaultKind::kTruncate,
                                  .dir = trace::Direction::kClientToServer,
                                  .at_byte = 40});
  const auto result = run_get(transport, client, server);
  EXPECT_FALSE(result.deadline_hit());
  EXPECT_TRUE(transport.fault_fired());
}

TEST(FaultyTransport, DisconnectKillsBothDirectionsAtOnce) {
  auto server = make_server();
  ClientConnection client;
  net::ExchangeLedger ledger;
  net::FaultyTransport transport({.seed = 5,
                                  .max_chunk = 16,
                                  .kind = net::FaultKind::kDisconnect,
                                  .dir = trace::Direction::kServerToClient,
                                  .at_byte = 50},
                                 nullptr, &ledger);
  const auto result = run_get(transport, client, server);
  EXPECT_EQ(result.outcome, net::ExchangeOutcome::kDisconnected);
  EXPECT_EQ(result.fault, net::FaultKind::kDisconnect);
  EXPECT_TRUE(ledger.attempt_disconnect);
  EXPECT_EQ(client.terminal().state, ClientTerminal::kTransportError);
  EXPECT_FALSE(client.alive());
  // Further runs on the dead connection are no-ops, not hangs.
  const auto again = transport.run(client, server, {.max_rounds = 4});
  EXPECT_EQ(again.outcome, net::ExchangeOutcome::kDisconnected);
  EXPECT_EQ(again.rounds, 0);
}

TEST(FaultyTransport, StallDelaysDeliveryButCompletes) {
  auto s1 = make_server();
  ClientConnection c1;
  net::LockstepTransport lockstep;
  const auto sid1 = c1.send_request("/small");
  const auto clean = lockstep.run(c1, s1);

  auto s2 = make_server();
  ClientConnection c2;
  net::FaultyTransport stalled({.seed = 8,
                               .max_chunk = 0,
                               .kind = net::FaultKind::kStall,
                               .dir = trace::Direction::kServerToClient,
                               .at_byte = 30,
                               .stall_rounds = 5});
  const auto sid2 = c2.send_request("/small");
  const auto result = stalled.run(c2, s2, {.max_rounds = 4096});

  EXPECT_EQ(result.outcome, net::ExchangeOutcome::kQuiescent);
  EXPECT_GT(result.rounds, clean.rounds);  // the held rounds still tick
  // Stalls delay but lose nothing: the conversation ends identically.
  EXPECT_EQ(c1.data_received(sid1), c2.data_received(sid2));
  EXPECT_EQ(c2.terminal().state, ClientTerminal::kQuiescent);
}

TEST(FaultyTransport, CorruptionSurfacesAsProtocolOrFlowEffect) {
  const std::uint64_t total = clean_s2c_bytes();
  int protocol_errors = 0;
  for (std::uint64_t at = 0; at < total; ++at) {
    auto server = make_server();
    ClientConnection client;
    net::FaultyTransport transport({.seed = at,
                                    .max_chunk = 128,
                                    .kind = net::FaultKind::kCorrupt,
                                    .dir = trace::Direction::kServerToClient,
                                    .at_byte = at,
                                    .xor_mask = 0x80});
    const auto result = run_get(transport, client, server);
    ASSERT_FALSE(result.deadline_hit()) << at;
    ASSERT_TRUE(transport.fault_fired()) << at;
    if (client.terminal().state == ClientTerminal::kProtocolError) {
      ++protocol_errors;
      // The taxonomy pins the offending frame's stream offset.
      ASSERT_LE(client.terminal().byte_offset, total) << at;
    }
  }
  // Flipping a frame-length or type octet reliably breaks framing for a
  // decent share of offsets; all of them must classify, none may hang.
  EXPECT_GT(protocol_errors, 0);
}

TEST(FaultyTransport, SameFaultPlanReplaysTheSameConversation) {
  const auto run_once = [](std::string* jsonl) {
    auto server = make_server();
    trace::VectorRecorder recorder;
    core::ClientOptions opts;
    opts.recorder = &recorder;
    ClientConnection client(opts);
    net::FaultyTransport transport(
        net::FaultPlan::generate(0xC0FFEE, 1.0), &recorder);
    auto result = transport.run(client, server, {.max_rounds = 512});
    client.send_request("/small");
    result = transport.run(client, server, {.max_rounds = 512});
    *jsonl = trace::to_jsonl(recorder.events(), "replay.example");
    return result;
  };
  std::string a, b;
  const auto ra = run_once(&a);
  const auto rb = run_once(&b);
  EXPECT_EQ(ra.outcome, rb.outcome);
  EXPECT_EQ(ra.rounds, rb.rounds);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);  // byte-identical annotated JSONL
}

TEST(FaultyTransport, FaultsAreRecordedAsTraceEvents) {
  auto server = make_server();
  trace::VectorRecorder recorder;
  core::ClientOptions opts;
  opts.recorder = &recorder;
  ClientConnection client(opts);
  net::FaultyTransport transport({.seed = 2,
                                  .max_chunk = 48,
                                  .kind = net::FaultKind::kTruncate,
                                  .dir = trace::Direction::kServerToClient,
                                  .at_byte = 64},
                                 &recorder);
  client.send_request("/small");
  transport.run(client, server, {.max_rounds = 512});

  std::optional<trace::TraceEvent> fault;
  for (const auto& ev : recorder.events()) {
    if (ev.kind == trace::EventKind::kFault) fault = ev;
  }
  ASSERT_TRUE(fault.has_value());
  EXPECT_EQ(fault->dir, trace::Direction::kServerToClient);
  EXPECT_EQ(fault->detail_a, 64u);
  EXPECT_EQ(fault->note, "truncate");
}

TEST(ExchangeDriver, HugeStallParksInsteadOfSpinning) {
  // A stall holding delivery for thousands of rounds must cost the driver a
  // handful of pump() calls, not thousands: pump() reports kParked with the
  // whole dead stretch, unpark() skips it in one step.
  auto s1 = make_server();
  ClientConnection c1;
  net::LockstepTransport lockstep;
  const auto sid1 = c1.send_request("/small");
  lockstep.run(c1, s1);

  auto s2 = make_server();
  ClientConnection c2;
  net::FaultyTransport stalled({.seed = 8,
                                .max_chunk = 0,
                                .kind = net::FaultKind::kStall,
                                .dir = trace::Direction::kServerToClient,
                                .at_byte = 30,
                                .stall_rounds = 2000});
  const auto sid2 = c2.send_request("/small");

  net::EndpointRef<ClientConnection> client_ep(c2);
  net::EndpointRef<Http2Server> server_ep(s2);
  net::ExchangeDriver driver(stalled, client_ep, server_ep,
                             {.max_rounds = 4096});
  int pumps = 0;
  int parked_rounds = 0;
  while (driver.pump() == net::ExchangeDriver::State::kParked) {
    ++pumps;
    ASSERT_LT(pumps, 32) << "driver spun instead of parking the stall";
    EXPECT_GT(driver.park_rounds(), 0);
    parked_rounds += driver.park_rounds();
    driver.unpark();
  }
  ASSERT_EQ(driver.state(), net::ExchangeDriver::State::kDone);

  const auto& result = driver.result();
  EXPECT_EQ(result.outcome, net::ExchangeOutcome::kQuiescent);
  EXPECT_GE(parked_rounds, 2000 - 32);  // the stall was parked, not pumped
  EXPECT_GT(result.rounds, 2000);       // ...but the rounds still elapsed
  // Parking loses nothing: the conversation ends as the clean one did.
  EXPECT_EQ(c1.data_received(sid1), c2.data_received(sid2));
  EXPECT_EQ(c2.terminal().state, ClientTerminal::kQuiescent);
}

TEST(ExchangeDriver, ParksAreBookedOnTheLedger) {
  auto server = make_server();
  ClientConnection client;
  net::ExchangeLedger ledger;
  net::FaultyTransport stalled({.seed = 8,
                                .max_chunk = 0,
                                .kind = net::FaultKind::kStall,
                                .dir = trace::Direction::kServerToClient,
                                .at_byte = 30,
                                .stall_rounds = 64},
                               nullptr, &ledger);
  ledger.begin_attempt();
  client.send_request("/small");
  // run() services parks inline; the ledger must still see them — park
  // accounting is a property of the exchange, not of who resumes it.
  const auto result = stalled.run(client, server, {.max_rounds = 4096});
  ledger.settle_attempt();

  EXPECT_EQ(result.outcome, net::ExchangeOutcome::kQuiescent);
  EXPECT_GT(ledger.parks, 0u);
  EXPECT_GE(ledger.parked_rounds, 64u);
  ASSERT_EQ(ledger.park_durations.size(), ledger.parks);
  std::uint64_t total = 0;
  for (const int d : ledger.park_durations) {
    EXPECT_GT(d, 0);
    total += static_cast<std::uint64_t>(d);
  }
  EXPECT_EQ(total, ledger.parked_rounds);
}

}  // namespace
}  // namespace h2r
