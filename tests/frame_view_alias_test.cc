// The zero-copy parse path: FrameParser::next_view() must validate frames
// in place — its body span aliasing the reassembly buffer, no payload
// copy — while materialize() reproduces, bit for bit, what next() has
// always returned. Run under ASan (the asan-ubsan CI job runs the full
// suite) this also proves the view's documented validity window is
// honoured by the accessors themselves.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "h2/constants.h"
#include "h2/frame.h"
#include "h2/frame_codec.h"
#include "h2/frame_view.h"

namespace h2r::h2 {
namespace {

Bytes pattern_bytes(std::size_t n, std::uint8_t start) {
  Bytes out(n);
  std::iota(out.begin(), out.end(), start);
  return out;
}

std::vector<Frame> sample_frames() {
  std::vector<Frame> frames;
  frames.push_back(make_settings({{SettingId::kInitialWindowSize, 1u << 20},
                                  {SettingId::kMaxConcurrentStreams, 128}}));
  frames.push_back(make_settings_ack());
  frames.push_back(make_headers(1, pattern_bytes(40, 3), /*end_stream=*/false,
                                /*end_headers=*/false,
                                PriorityInfo{.dependency = 0,
                                             .weight_field = 201,
                                             .exclusive = true}));
  frames.push_back(make_continuation(1, pattern_bytes(17, 9), true));
  frames.push_back(make_data(1, pattern_bytes(333, 0), /*end_stream=*/true));
  frames.push_back(make_priority(3, {.dependency = 1, .weight_field = 15}));
  frames.push_back(make_rst_stream(3, ErrorCode::kCancel));
  frames.push_back(make_push_promise(1, 2, pattern_bytes(25, 40)));
  frames.push_back(make_ping({1, 2, 3, 4, 5, 6, 7, 8}));
  frames.push_back(make_window_update(0, 0x7FFF0000));
  frames.push_back(make_goaway(5, ErrorCode::kEnhanceYourCalm, "debug-data"));
  return frames;
}

// next_view() + materialize() and next() must yield identical frames —
// compared on the wire, where every payload detail shows up — whether the
// bytes arrive in one block or one octet at a time.
TEST(FrameViewAlias, MaterializedViewsMatchOwningParsePath) {
  const Bytes wire = serialize_frames(sample_frames());

  FrameParser owning;
  owning.feed(wire);
  FrameParser viewing;
  for (std::uint8_t b : wire) viewing.feed({&b, 1});  // worst-case trickle

  std::size_t count = 0;
  for (;;) {
    auto classic = owning.next();
    auto view = viewing.next_view();
    ASSERT_EQ(classic.has_value(), view.has_value());
    if (!classic) break;
    ASSERT_TRUE(classic->ok());
    ASSERT_TRUE(view->ok());
    const Frame from_view = materialize(view->value());
    EXPECT_EQ(serialize_frame(classic->value()), serialize_frame(from_view));
    EXPECT_EQ(classic->value().flags, from_view.flags);
    EXPECT_EQ(classic->value().stream_id, from_view.stream_id);
    ++count;
  }
  EXPECT_EQ(count, sample_frames().size());
  EXPECT_EQ(viewing.buffered_bytes(), owning.buffered_bytes());
}

// The body span of a view points into the parser's buffer: two frames fed
// as one block yield views whose payloads sit exactly one frame header
// apart in the same allocation. (Frame 2 dwarfs frame 1 so the lazy
// compaction between the calls doesn't trigger and move the buffer.)
TEST(FrameViewAlias, BodySpanAliasesReassemblyBuffer) {
  const Bytes small = pattern_bytes(16, 1);
  const Bytes big = pattern_bytes(4000, 7);
  Bytes wire = serialize_frame(make_data(1, small, false));
  const Bytes second = serialize_frame(make_data(1, big, true));
  wire.insert(wire.end(), second.begin(), second.end());

  FrameParser parser;
  parser.feed(wire);

  auto first = parser.next_view();
  ASSERT_TRUE(first && first->ok());
  const auto p1 = reinterpret_cast<std::uintptr_t>(first->value().body.data());
  ASSERT_EQ(first->value().body.size(), small.size());

  auto next = parser.next_view();
  ASSERT_TRUE(next && next->ok());
  const FrameView& view = next->value();
  const auto p2 = reinterpret_cast<std::uintptr_t>(view.body.data());
  // payload2 starts (payload1 size + one 9-octet header) after payload1.
  EXPECT_EQ(p2 - p1, small.size() + 9);

  EXPECT_EQ(view.type(), FrameType::kData);
  EXPECT_TRUE(view.has_flag(flags::kEndStream));
  EXPECT_EQ(view.payload_wire_octets, big.size());
  ASSERT_EQ(view.body.size(), big.size());
  // Read every aliased octet while the view is valid — ASan checks this
  // stays inside the live buffer.
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < big.size(); ++i) {
    mismatches += (view.body[i] != big[i]) ? 1 : 0;
  }
  EXPECT_EQ(mismatches, 0u);
}

// Padding is stripped from the aliased body but still counted by the
// flow-control length, same as the owning path.
TEST(FrameViewAlias, PaddedDataBodyIsUnpadded) {
  const Bytes data = pattern_bytes(20, 60);
  constexpr std::uint8_t kPad = 7;
  ByteWriter out;
  write_frame_header(out, 1 + data.size() + kPad, FrameType::kData,
                     flags::kPadded | flags::kEndStream, 5);
  out.write_u8(kPad);
  out.write_bytes(data);
  out.write_zeros(kPad);
  const Bytes wire = out.take();

  FrameParser parser;
  parser.feed(wire);
  auto view = parser.next_view();
  ASSERT_TRUE(view && view->ok());
  EXPECT_EQ(view->value().payload_wire_octets, 1 + data.size() + kPad);
  ASSERT_EQ(view->value().body.size(), data.size());
  EXPECT_TRUE(std::equal(data.begin(), data.end(), view->value().body.begin()));

  const Frame frame = materialize(view->value());
  ASSERT_TRUE(frame.is<DataPayload>());
  EXPECT_EQ(frame.as<DataPayload>().data, data);
}

// Error semantics are shared: the same malformed input poisons a
// next_view() parser with the same status and error context as next().
TEST(FrameViewAlias, ViewPathPoisonsLikeOwningPath) {
  ByteWriter out;
  // RST_STREAM payload must be exactly 4 octets; send 3.
  write_frame_header(out, 3, FrameType::kRstStream, 0, 1);
  out.write_zeros(3);
  const Bytes wire = out.take();

  FrameParser owning;
  owning.feed(wire);
  FrameParser viewing;
  viewing.feed(wire);

  auto classic = owning.next();
  auto view = viewing.next_view();
  ASSERT_TRUE(classic && view);
  ASSERT_FALSE(classic->ok());
  ASSERT_FALSE(view->ok());
  EXPECT_EQ(classic->status().message(), view->status().message());

  ASSERT_TRUE(viewing.error_context().has_value());
  ASSERT_TRUE(owning.error_context().has_value());
  EXPECT_EQ(viewing.error_context()->frame_offset,
            owning.error_context()->frame_offset);
  EXPECT_EQ(viewing.error_context()->frame_type,
            owning.error_context()->frame_type);

  // Poison is sticky on both paths.
  auto again = viewing.next_view();
  ASSERT_TRUE(again);
  EXPECT_FALSE(again->ok());
}

}  // namespace
}  // namespace h2r::h2
