// Violation-annotator tests: Table III from traces alone.
//
// The six testbed profiles each deviate from RFC 7540 along a known axis
// set (server/profile.cc encodes the paper's findings). Running the full
// probe suite under the H2Wiretap and annotating the trace must recover
// exactly those deviations — no more (false positives on compliant
// connections are the failure mode that would poison wild-corpus numbers),
// no fewer. derive_table3_quirks() must then agree with the probe-derived
// Table III cells, which is what makes a trace dump a sufficient artifact
// for the paper's headline table.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/report.h"
#include "h2/constants.h"
#include "server/profile.h"
#include "trace/annotate.h"
#include "trace/event.h"
#include "trace/recorder.h"

namespace h2r::trace {
namespace {

std::vector<std::string> traced_tags(const server::ServerProfile& profile) {
  Rng rng(7);
  VectorRecorder recorder;
  const auto c =
      core::characterize_traced(core::Target::testbed(profile), rng, recorder);
  return c.violation_tags;
}

using Tags = std::vector<std::string>;

// ------------------------------------------------ six-profile quirk matrix

TEST(WiretapAnnotator, NginxQuirks) {
  EXPECT_EQ(traced_tags(server::nginx_profile()),
            (Tags{tags::kHpackNoDynamicIndexing, tags::kPriorityInversion,
                  tags::kZeroWuConnIgnored, tags::kZeroWuStreamIgnored}));
}

TEST(WiretapAnnotator, LitespeedQuirks) {
  EXPECT_EQ(traced_tags(server::litespeed_profile()),
            (Tags{tags::kFlowControlOnHeaders, tags::kPriorityInversion,
                  tags::kSelfDependencyIgnored}));
}

TEST(WiretapAnnotator, H2oQuirks) {
  EXPECT_EQ(traced_tags(server::h2o_profile()),
            (Tags{tags::kSelfDependencyGoaway}));
}

TEST(WiretapAnnotator, NghttpdQuirks) {
  EXPECT_EQ(traced_tags(server::nghttpd_profile()),
            (Tags{tags::kSelfDependencyGoaway, tags::kZeroWuStreamGoaway}));
}

TEST(WiretapAnnotator, TengineQuirks) {
  EXPECT_EQ(traced_tags(server::tengine_profile()),
            (Tags{tags::kHpackNoDynamicIndexing, tags::kPriorityInversion,
                  tags::kZeroWuConnIgnored, tags::kZeroWuStreamIgnored}));
}

TEST(WiretapAnnotator, ApacheQuirks) {
  EXPECT_EQ(traced_tags(server::apache_profile()),
            (Tags{tags::kSelfDependencyGoaway, tags::kZeroWuStreamGoaway}));
}

// --------------------------------------- trace-derived Table III equality

TEST(WiretapAnnotator, DerivedQuirksMatchProbeDerivedTable3) {
  // The nine deviation-capable rows the annotator covers; the other five
  // (ALPN/NPN/multiplexing/push/PING) are capability rows, not violations.
  const std::vector<std::string> derivable = {
      "Flow Control on DATA Frames",
      "Flow Control on HEADERS Frames",
      "Zero Window Update on stream",
      "Zero Window Update on connection",
      "Large Window Update (Connection)",
      "Large Window Update (Stream)",
      "Priority Mechanism Testing (Algorithm 1)",
      "Self-dependent Stream",
      "Header Compression",
  };
  const auto& labels = core::Characterization::row_labels();

  Rng rng(7);
  for (const auto& profile : server::testbed_profiles()) {
    VectorRecorder recorder;
    const auto c = core::characterize_traced(core::Target::testbed(profile),
                                             rng, recorder);
    const auto derived = core::derive_table3_quirks(c.violation_tags);
    const auto values = c.row_values();
    for (const auto& row : derivable) {
      const auto it = std::find(labels.begin(), labels.end(), row);
      ASSERT_NE(it, labels.end()) << row;
      const auto idx = static_cast<std::size_t>(it - labels.begin());
      ASSERT_TRUE(derived.count(row)) << profile.key << ": " << row;
      EXPECT_EQ(derived.at(row), values[idx]) << profile.key << ": " << row;
    }
  }
}

// --------------------------------------------- synthetic trace edge cases

TraceEvent frame(Direction dir, h2::FrameType type, std::uint32_t stream,
                 std::uint32_t a = 0, std::uint8_t flags = 0,
                 std::uint32_t b = 0) {
  TraceEvent ev;
  ev.kind = EventKind::kFrame;
  ev.dir = dir;
  ev.frame_type = static_cast<std::uint8_t>(type);
  ev.stream_id = stream;
  ev.detail_a = a;
  ev.detail_b = b;
  ev.flags = flags;
  return ev;
}

constexpr auto kC2s = Direction::kClientToServer;
constexpr auto kS2c = Direction::kServerToClient;

TEST(WiretapAnnotator, LargeWindowUpdateIgnoredOnSyntheticTrace) {
  // Stream window 65535 + 2^31-1 overflows; no server reaction follows.
  std::vector<TraceEvent> events;
  events.push_back(frame(kC2s, h2::FrameType::kHeaders, 1));
  events.push_back(frame(kC2s, h2::FrameType::kWindowUpdate, 1, 0x7FFFFFFF));
  events.push_back(frame(kS2c, h2::FrameType::kHeaders, 1));
  const auto tags = annotate_violations(events);
  EXPECT_EQ(tags, (Tags{tags::kLargeWuStreamIgnored}));
  EXPECT_EQ(events[1].tags, (Tags{tags::kLargeWuStreamIgnored}));
}

TEST(WiretapAnnotator, ReplenishingWindowUpdatesAreNotOverflows) {
  // Regression: a client refilling exactly what DATA consumed never pushes
  // the shadow window past 2^31-1, even against a huge initial window.
  std::vector<TraceEvent> events;
  TraceEvent settings;
  settings.kind = EventKind::kSettingsApplied;
  settings.dir = kC2s;
  settings.detail_a = 4;           // SETTINGS_INITIAL_WINDOW_SIZE
  settings.detail_b = 0x7FFFFFFF;  // maximum legal window
  events.push_back(settings);
  events.push_back(frame(kC2s, h2::FrameType::kHeaders, 1));
  for (int i = 0; i < 4; ++i) {
    events.push_back(frame(kS2c, h2::FrameType::kData, 1, 10000));
    events.push_back(frame(kC2s, h2::FrameType::kWindowUpdate, 1, 10000));
    events.push_back(frame(kC2s, h2::FrameType::kWindowUpdate, 0, 10000));
  }
  EXPECT_TRUE(annotate_violations(events).empty());
}

TEST(WiretapAnnotator, DataBeyondAdvertisedBudgetIsTagged) {
  // Client never raised the connection window beyond the 65535 default, but
  // the server shipped 80000 octets on one stream: both scopes violated.
  std::vector<TraceEvent> events;
  TraceEvent settings;
  settings.kind = EventKind::kSettingsApplied;
  settings.dir = kC2s;
  settings.detail_a = 4;
  settings.detail_b = 30000;
  events.push_back(settings);
  events.push_back(frame(kC2s, h2::FrameType::kHeaders, 1));
  events.push_back(frame(kS2c, h2::FrameType::kData, 1, 40000));
  events.push_back(frame(kS2c, h2::FrameType::kData, 1, 40000, 0x1));
  const auto tags = annotate_violations(events);
  EXPECT_EQ(tags,
            (Tags{tags::kDataExceedsConnWindow, tags::kDataExceedsStreamWindow}));
}

TEST(WiretapAnnotator, TinyWindowDeviationsOnSyntheticTraces) {
  // Zero-length END_STREAM DATA before any payload under a 1-octet window.
  std::vector<TraceEvent> zero_len;
  TraceEvent settings;
  settings.kind = EventKind::kSettingsApplied;
  settings.dir = kC2s;
  settings.detail_a = 4;
  settings.detail_b = 1;
  zero_len.push_back(settings);
  zero_len.push_back(frame(kC2s, h2::FrameType::kHeaders, 1));
  zero_len.push_back(frame(kS2c, h2::FrameType::kHeaders, 1));
  zero_len.push_back(frame(kS2c, h2::FrameType::kData, 1, 0, 0x1));
  EXPECT_EQ(annotate_violations(zero_len),
            (Tags{tags::kZeroLengthDataUnderTinyWindow}));

  // Same window, but the server answers with nothing at all.
  std::vector<TraceEvent> stalled;
  stalled.push_back(settings);
  stalled.push_back(frame(kC2s, h2::FrameType::kHeaders, 1));
  EXPECT_EQ(annotate_violations(stalled),
            (Tags{tags::kStalledUnderTinyWindow}));

  // A compliant 1-octet DATA response under the same window: no tags.
  std::vector<TraceEvent> compliant;
  compliant.push_back(settings);
  compliant.push_back(frame(kC2s, h2::FrameType::kHeaders, 1));
  compliant.push_back(frame(kS2c, h2::FrameType::kHeaders, 1));
  compliant.push_back(frame(kS2c, h2::FrameType::kData, 1, 1));
  EXPECT_TRUE(annotate_violations(compliant).empty());
}

TEST(WiretapAnnotator, SegmentsIsolateConnections) {
  // A violation in connection 1 must not leak tags into connection 2's
  // events, and per-connection state (windows, priority tree) resets.
  std::vector<TraceEvent> events;
  TraceEvent start;
  start.kind = EventKind::kConnectionStart;
  events.push_back(start);
  events.push_back(frame(kC2s, h2::FrameType::kHeaders, 1));
  events.push_back(frame(kC2s, h2::FrameType::kWindowUpdate, 1, 0));  // zero WU
  events.push_back(start);
  events.push_back(frame(kC2s, h2::FrameType::kHeaders, 1));
  events.push_back(frame(kS2c, h2::FrameType::kHeaders, 1));
  events.push_back(frame(kS2c, h2::FrameType::kData, 1, 100, 0x1));
  const auto tags = annotate_violations(events);
  EXPECT_EQ(tags, (Tags{tags::kZeroWuStreamIgnored}));
  for (std::size_t i = 3; i < events.size(); ++i) {
    EXPECT_TRUE(events[i].tags.empty()) << i;
  }
}

}  // namespace
}  // namespace h2r::trace
