// Site/content-model tests plus cross-cutting invariants (Huffman table
// integrity, settings last-wins) that don't fit the per-module suites.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "h2/settings.h"
#include "hpack/huffman_table.h"
#include "server/site.h"

namespace h2r {
namespace {

using server::Resource;
using server::Site;

TEST(Site, FindReturnsRegisteredResources) {
  Site site("x.test");
  site.add_resource({.path = "/a", .size = 10, .content_type = "text/plain"});
  ASSERT_NE(site.find("/a"), nullptr);
  EXPECT_EQ(site.find("/a")->size, 10u);
  EXPECT_EQ(site.find("/missing"), nullptr);
}

TEST(Site, PushListOnlyForConfiguredTrigger) {
  Site site("x.test");
  site.set_push_list("/", {"/a", "/b"});
  ASSERT_NE(site.push_list("/"), nullptr);
  EXPECT_EQ(site.push_list("/")->size(), 2u);
  EXPECT_EQ(site.push_list("/other"), nullptr);
}

TEST(Site, StandardTestbedHasProbeEssentials) {
  const Site site = Site::standard_testbed_site();
  ASSERT_NE(site.find("/"), nullptr);
  ASSERT_NE(site.find("/small"), nullptr);
  // Multiplexing needs several objects spanning many DATA frames.
  for (int i = 0; i < 4; ++i) {
    const auto* large = site.find("/large/" + std::to_string(i));
    ASSERT_NE(large, nullptr);
    EXPECT_GT(large->size, 4u * 16'384u);
  }
  // Algorithm 1 needs a >65,535-octet drain object plus six more.
  for (int i = 0; i < 7; ++i) {
    const auto* obj = site.find("/object/" + std::to_string(i));
    ASSERT_NE(obj, nullptr);
    EXPECT_GT(obj->size, 65'535u);
  }
  ASSERT_NE(site.push_list("/"), nullptr);
}

TEST(ResourceBody, DeterministicAndDistinctPerPath) {
  const Resource a{.path = "/x", .size = 1000, .content_type = ""};
  const Resource b{.path = "/y", .size = 1000, .content_type = ""};
  EXPECT_EQ(resource_body(a, 0, 100), resource_body(a, 0, 100));
  EXPECT_NE(resource_body(a, 0, 100), resource_body(b, 0, 100));
}

TEST(ResourceBody, OffsetsComposeSeamlessly) {
  const Resource r{.path = "/x", .size = 256, .content_type = ""};
  const Bytes whole = resource_body(r, 0, 256);
  Bytes stitched = resource_body(r, 0, 100);
  const Bytes rest = resource_body(r, 100, 156);
  stitched.insert(stitched.end(), rest.begin(), rest.end());
  EXPECT_EQ(stitched, whole);
}

TEST(ResourceBody, ClampsAtResourceEnd) {
  const Resource r{.path = "/x", .size = 10, .content_type = ""};
  EXPECT_EQ(resource_body(r, 8, 100).size(), 2u);
  EXPECT_TRUE(resource_body(r, 10, 5).empty());
  EXPECT_TRUE(resource_body(r, 999, 5).empty());
}

TEST(HuffmanTable, IsAPrefixFreeCanonicalCode) {
  // Structural integrity of the embedded RFC 7541 Appendix B table:
  // 257 codes, lengths within [5, 30], all distinct, prefix-free.
  using hpack::detail::kHuffmanTable;
  ASSERT_EQ(kHuffmanTable.size(), 257u);
  std::set<std::pair<std::uint32_t, int>> seen;
  for (const auto& [bits, length] : kHuffmanTable) {
    EXPECT_GE(length, 5);
    EXPECT_LE(length, 30);
    EXPECT_LT(static_cast<std::uint64_t>(bits), 1ull << length);
    EXPECT_TRUE(seen.emplace(bits, length).second) << "duplicate code";
  }
  // Prefix-freedom: no code is a prefix of a longer one.
  for (const auto& [b1, l1] : kHuffmanTable) {
    for (const auto& [b2, l2] : kHuffmanTable) {
      if (l1 >= l2 || (b1 == b2 && l1 == static_cast<int>(l2))) continue;
      EXPECT_NE(b2 >> (l2 - l1), b1)
          << "code " << b1 << "/" << int(l1) << " prefixes " << b2 << "/"
          << int(l2);
    }
  }
  // Kraft equality for a complete code: sum 2^-len == 1.
  long double kraft = 0;
  for (const auto& [bits, length] : kHuffmanTable) {
    kraft += std::pow(2.0L, -static_cast<long double>(length));
  }
  EXPECT_NEAR(static_cast<double>(kraft), 1.0, 1e-12);
  // EOS is the all-ones 30-bit code (§5.2 padding depends on this).
  EXPECT_EQ(kHuffmanTable[256].bits, 0x3FFFFFFFu);
  EXPECT_EQ(kHuffmanTable[256].length, 30);
}

TEST(Settings, RepeatedApplyLastWins) {
  h2::SettingsMap s;
  ASSERT_TRUE(s.apply(0x3, 100).ok());
  ASSERT_TRUE(s.apply(0x3, 7).ok());
  EXPECT_EQ(s.max_concurrent_streams(), std::optional<std::uint32_t>(7));
}

}  // namespace
}  // namespace h2r
