// Property tests for the frame codec: randomized frames survive
// serialization under arbitrary transport chunking, and the parser is
// crash-free on arbitrary byte soup and on bit-flipped valid streams.
#include <gtest/gtest.h>

#include "h2/frame.h"
#include "h2/frame_codec.h"
#include "util/rng.h"

namespace h2r::h2 {
namespace {

Bytes random_bytes(Rng& rng, std::size_t max_len) {
  Bytes out(rng.next_below(max_len + 1));
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next_below(256));
  return out;
}

Frame random_frame(Rng& rng) {
  const std::uint32_t stream = 1 + 2 * static_cast<std::uint32_t>(rng.next_below(50));
  switch (rng.next_below(10)) {
    case 0: {
      Frame f = make_data(stream, random_bytes(rng, 300), rng.next_bool(0.5));
      f.as<DataPayload>().pad_length =
          static_cast<std::uint8_t>(rng.next_below(32));
      return f;
    }
    case 1: {
      std::optional<PriorityInfo> prio;
      if (rng.next_bool(0.5)) {
        prio = PriorityInfo{
            .dependency = static_cast<std::uint32_t>(rng.next_below(100)),
            .weight_field = static_cast<std::uint8_t>(rng.next_below(256)),
            .exclusive = rng.next_bool(0.5)};
      }
      Frame f = make_headers(stream, random_bytes(rng, 200), rng.next_bool(0.5),
                             rng.next_bool(0.9), prio);
      f.as<HeadersPayload>().pad_length =
          static_cast<std::uint8_t>(rng.next_below(16));
      return f;
    }
    case 2:
      return make_priority(
          stream, {.dependency = static_cast<std::uint32_t>(rng.next_below(100)),
                   .weight_field = static_cast<std::uint8_t>(rng.next_below(256)),
                   .exclusive = rng.next_bool(0.5)});
    case 3:
      return make_rst_stream(stream,
                             static_cast<ErrorCode>(rng.next_below(14)));
    case 4: {
      std::vector<std::pair<SettingId, std::uint32_t>> entries;
      const std::size_t n = rng.next_below(5);
      for (std::size_t i = 0; i < n; ++i) {
        entries.emplace_back(static_cast<SettingId>(1 + rng.next_below(6)),
                             static_cast<std::uint32_t>(rng.next_below(1 << 20)));
      }
      return make_settings(std::move(entries));
    }
    case 5:
      return make_push_promise(
          stream, 2 * static_cast<std::uint32_t>(1 + rng.next_below(50)),
          random_bytes(rng, 100));
    case 6: {
      std::array<std::uint8_t, 8> opaque{};
      for (auto& b : opaque) b = static_cast<std::uint8_t>(rng.next_below(256));
      return make_ping(opaque, rng.next_bool(0.5));
    }
    case 7:
      return make_goaway(static_cast<std::uint32_t>(rng.next_below(100)),
                         static_cast<ErrorCode>(rng.next_below(14)),
                         std::string(rng.next_below(40), 'd'));
    case 8:
      return make_window_update(
          rng.next_bool(0.3) ? 0 : stream,
          static_cast<std::uint32_t>(rng.next_below(0x7FFFFFFF)));
    default:
      return make_continuation(stream, random_bytes(rng, 150),
                               rng.next_bool(0.5));
  }
}

bool frames_equal(const Frame& a, const Frame& b) {
  // Padding is consumed at parse time, so compare semantic content only.
  if (a.type() != b.type() || a.stream_id != b.stream_id) return false;
  if (a.is<DataPayload>()) {
    return a.as<DataPayload>().data == b.as<DataPayload>().data;
  }
  if (a.is<HeadersPayload>()) {
    return a.as<HeadersPayload>().fragment == b.as<HeadersPayload>().fragment &&
           a.as<HeadersPayload>().priority == b.as<HeadersPayload>().priority;
  }
  if (a.is<PriorityPayload>()) {
    return a.as<PriorityPayload>().info == b.as<PriorityPayload>().info;
  }
  if (a.is<RstStreamPayload>()) {
    return a.as<RstStreamPayload>().error == b.as<RstStreamPayload>().error;
  }
  if (a.is<SettingsPayload>()) {
    return a.as<SettingsPayload>().entries == b.as<SettingsPayload>().entries;
  }
  if (a.is<PushPromisePayload>()) {
    return a.as<PushPromisePayload>().promised_stream_id ==
               b.as<PushPromisePayload>().promised_stream_id &&
           a.as<PushPromisePayload>().fragment ==
               b.as<PushPromisePayload>().fragment;
  }
  if (a.is<PingPayload>()) {
    return a.as<PingPayload>().opaque == b.as<PingPayload>().opaque;
  }
  if (a.is<GoawayPayload>()) {
    return a.as<GoawayPayload>().last_stream_id ==
               b.as<GoawayPayload>().last_stream_id &&
           a.as<GoawayPayload>().error == b.as<GoawayPayload>().error &&
           a.as<GoawayPayload>().debug_data == b.as<GoawayPayload>().debug_data;
  }
  if (a.is<WindowUpdatePayload>()) {
    return a.as<WindowUpdatePayload>().increment ==
           b.as<WindowUpdatePayload>().increment;
  }
  if (a.is<ContinuationPayload>()) {
    return a.as<ContinuationPayload>().fragment ==
           b.as<ContinuationPayload>().fragment;
  }
  return false;
}

class FrameRoundTripProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FrameRoundTripProperty, RandomFramesSurviveRandomChunking) {
  Rng rng(GetParam());
  std::vector<Frame> sent;
  for (int i = 0; i < 50; ++i) sent.push_back(random_frame(rng));
  const Bytes wire = serialize_frames(sent);

  FrameParser parser(kMaxAllowedFrameSize);
  std::vector<Frame> parsed;
  std::size_t pos = 0;
  while (pos < wire.size()) {
    const std::size_t chunk =
        std::min<std::size_t>(1 + rng.next_below(97), wire.size() - pos);
    parser.feed({wire.data() + pos, chunk});
    pos += chunk;
    while (auto next = parser.next()) {
      ASSERT_TRUE(next->ok()) << next->status().to_string();
      parsed.push_back(std::move(next->value()));
    }
  }
  ASSERT_EQ(parsed.size(), sent.size());
  for (std::size_t i = 0; i < sent.size(); ++i) {
    EXPECT_TRUE(frames_equal(sent[i], parsed[i])) << "frame " << i << ": "
                                                  << sent[i].describe();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FrameRoundTripProperty,
                         ::testing::Range<std::uint64_t>(1, 17));

class FrameParserFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FrameParserFuzz, ArbitraryBytesNeverCrash) {
  Rng rng(GetParam() * 0x9E3779B9u);
  FrameParser parser;
  for (int round = 0; round < 200; ++round) {
    parser.feed(random_bytes(rng, 128));
    // Drain; errors are expected and fine, crashes are not.
    for (int i = 0; i < 64; ++i) {
      auto next = parser.next();
      if (!next || !next->ok()) break;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FrameParserFuzz,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST(FrameParserFuzzMutation, BitFlippedValidStreamsNeverCrash) {
  Rng rng(0xBEEF);
  std::vector<Frame> frames;
  for (int i = 0; i < 20; ++i) frames.push_back(random_frame(rng));
  const Bytes original = serialize_frames(frames);
  for (int trial = 0; trial < 300; ++trial) {
    Bytes mutated = original;
    const std::size_t flips = 1 + rng.next_below(8);
    for (std::size_t f = 0; f < flips; ++f) {
      const std::size_t pos = rng.next_below(mutated.size());
      mutated[pos] ^= static_cast<std::uint8_t>(1u << rng.next_below(8));
    }
    FrameParser parser(kMaxAllowedFrameSize);
    parser.feed(mutated);
    for (int i = 0; i < 64; ++i) {
      auto next = parser.next();
      if (!next || !next->ok()) break;
    }
  }
}

}  // namespace
}  // namespace h2r::h2
