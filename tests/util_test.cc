// Unit tests for the util layer: bytes, status, rng, stats.
#include <gtest/gtest.h>

#include "util/bytes.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/status.h"

namespace h2r {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = ProtocolViolationError("bad frame");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kProtocolError);
  EXPECT_EQ(s.message(), "bad frame");
  EXPECT_EQ(s.to_string(), "PROTOCOL_ERROR: bad frame");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = OutOfRangeError("x");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, ValueAccessOnErrorThrows) {
  Result<int> r = OutOfRangeError("x");
  EXPECT_THROW((void)r.value(), std::logic_error);
}

TEST(ResultTest, ConstructFromOkStatusThrows) {
  EXPECT_THROW((Result<int>{OkStatus()}), std::logic_error);
}

TEST(ByteWriterTest, BigEndianLayout) {
  ByteWriter w;
  w.write_u8(0x01);
  w.write_u16(0x0203);
  w.write_u24(0x040506);
  w.write_u32(0x0708090A);
  EXPECT_EQ(to_hex(w.bytes()), "0102030405060708090a");
}

TEST(ByteWriterTest, U24RejectsOverflow) {
  ByteWriter w;
  EXPECT_THROW(w.write_u24(0x1000000), std::invalid_argument);
}

TEST(ByteReaderTest, RoundTripsWriter) {
  ByteWriter w;
  w.write_u8(0xAB);
  w.write_u16(0xCDEF);
  w.write_u24(0x123456);
  w.write_u32(0xDEADBEEF);
  w.write_string("hi");
  const Bytes buf = w.take();
  ByteReader r({buf.data(), buf.size()});
  EXPECT_EQ(r.read_u8().value(), 0xAB);
  EXPECT_EQ(r.read_u16().value(), 0xCDEF);
  EXPECT_EQ(r.read_u24().value(), 0x123456u);
  EXPECT_EQ(r.read_u32().value(), 0xDEADBEEFu);
  EXPECT_EQ(r.read_string(2).value(), "hi");
  EXPECT_TRUE(r.empty());
}

TEST(ByteReaderTest, TruncationYieldsOutOfRange) {
  const Bytes buf = {0x01};
  ByteReader r({buf.data(), buf.size()});
  EXPECT_EQ(r.read_u32().status().code(), StatusCode::kOutOfRange);
}

TEST(ByteReaderTest, SkipAndPeek) {
  const Bytes buf = {1, 2, 3};
  ByteReader r({buf.data(), buf.size()});
  EXPECT_EQ(r.peek_u8().value(), 1);
  ASSERT_TRUE(r.skip(2).ok());
  EXPECT_EQ(r.read_u8().value(), 3);
  EXPECT_FALSE(r.skip(1).ok());
}

TEST(HexTest, RoundTrip) {
  const Bytes data = {0x00, 0xFF, 0x5A};
  EXPECT_EQ(to_hex(data), "00ff5a");
  auto back = from_hex("00 ff 5a");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, data);
}

TEST(HexTest, RejectsBadInput) {
  EXPECT_FALSE(from_hex("xyz").ok());
  EXPECT_FALSE(from_hex("abc").ok());  // odd digit count
}

TEST(RngTest, Deterministic) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
  EXPECT_THROW(rng.next_below(0), std::invalid_argument);
}

TEST(RngTest, NextInInclusiveBounds) {
  Rng rng(42);
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 2000; ++i) {
    auto v = rng.next_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    hit_lo |= v == -3;
    hit_hi |= v == 3;
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(RngTest, WeightedRespectsZeroWeights) {
  Rng rng(42);
  const double w[] = {0.0, 1.0, 0.0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.next_weighted(w), 1u);
  }
}

TEST(RngTest, WeightedApproximatesProportions) {
  Rng rng(42);
  const double w[] = {1.0, 3.0};
  int counts[2] = {0, 0};
  for (int i = 0; i < 40000; ++i) ++counts[rng.next_weighted(w)];
  const double frac = static_cast<double>(counts[1]) / 40000.0;
  EXPECT_NEAR(frac, 0.75, 0.02);
}

TEST(RngTest, ForkIndependence) {
  Rng parent(9);
  Rng c1 = parent.fork(1);
  Rng c2 = parent.fork(2);
  EXPECT_NE(c1.next_u64(), c2.next_u64());
}

TEST(SampleSetTest, BasicMoments) {
  SampleSet s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.median(), 2.5);
}

TEST(SampleSetTest, QuantileInterpolates) {
  SampleSet s;
  for (double v : {0.0, 10.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.quantile(0.25), 2.5);
}

TEST(SampleSetTest, CdfAt) {
  SampleSet s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.cdf_at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.cdf_at(2.0), 0.5);
  EXPECT_DOUBLE_EQ(s.cdf_at(100.0), 1.0);
}

TEST(SampleSetTest, CdfPointsDeduplicates) {
  SampleSet s;
  for (double v : {1.0, 1.0, 2.0}) s.add(v);
  auto pts = s.cdf_points();
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_DOUBLE_EQ(pts[0].second, 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(pts[1].second, 1.0);
}

TEST(SampleSetTest, EmptyThrows) {
  SampleSet s;
  EXPECT_THROW((void)s.mean(), std::logic_error);
  EXPECT_THROW((void)s.quantile(0.5), std::logic_error);
}

TEST(ValueCounterTest, CountsValues) {
  ValueCounter c;
  c.add(65535);
  c.add(65535);
  c.add(16384, 10);
  EXPECT_EQ(c.total(), 12u);
  EXPECT_EQ(c.count_of(65535), 2u);
  EXPECT_EQ(c.count_of(16384), 10u);
  EXPECT_EQ(c.count_of(1), 0u);
}

TEST(TextTableTest, RendersAligned) {
  TextTable t({"name", "count"});
  t.add_row({"nginx", "27394"});
  const std::string out = t.render();
  EXPECT_NE(out.find("nginx"), std::string::npos);
  EXPECT_NE(out.find("27394"), std::string::npos);
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(WithCommasTest, Formats) {
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(with_commas(1000), "1,000");
  EXPECT_EQ(with_commas(1234567), "1,234,567");
}

}  // namespace
}  // namespace h2r
