// The event-loop scan core must be a pure scheduling change: a scan run on
// the shard reactor (corpus/reactor.h — virtual clock, timer wheel, up to
// max_in_flight multiplexed SiteTasks) has to produce a ScanReport bitwise
// identical to the historical one-site-at-a-time worker pool, for any
// thread count, fault seed, in-flight cap, and wiretap setting. The park
// accounting (wakeups, parked rounds) is booked per site, so even the
// reactor observability block of the wire-metrics JSON must match across
// drivers and shard layouts.
#include <gtest/gtest.h>

#include <string>

#include "corpus/population.h"
#include "corpus/scan.h"
#include "scan_fingerprint.h"

namespace h2r::corpus {
namespace {

TEST(ScanReactor, CleanScanMatchesSequentialDriver) {
  const Population pop = generate_population(Epoch::kExp2, 7, /*scale=*/1000);
  ASSERT_FALSE(pop.sites.empty());

  ScanOptions sequential;
  sequential.event_loop = false;
  sequential.threads = 1;
  const std::string want = fingerprint(scan_population(pop, sequential));

  for (int threads : {1, 2, 8}) {
    ScanOptions reactor;
    reactor.event_loop = true;
    reactor.threads = threads;
    const ScanReport got = scan_population(pop, reactor);
    EXPECT_EQ(want, fingerprint(got)) << "threads=" << threads;
    // Clean scans never park, and a lockstep exchange never suspends its
    // coroutine, so the reactor adds zero bookkeeping to the report.
    EXPECT_EQ(got.wire_metrics.reactor_parks, 0u);
    EXPECT_EQ(got.wire_metrics.reactor_parked_rounds, 0u);
  }
}

TEST(ScanReactor, FaultedScanMatchesSequentialDriver) {
  const Population pop = generate_population(Epoch::kExp2, 7, /*scale=*/1000);

  for (std::uint64_t seed : {std::uint64_t{0xFA017}, std::uint64_t{2}}) {
    ScanOptions sequential;
    sequential.event_loop = false;
    sequential.fault_injection = true;
    sequential.fault_seed = seed;
    sequential.threads = 1;
    const ScanReport base = scan_population(pop, sequential);
    ASSERT_GT(base.fault_injected, 0u);  // the chaos path actually ran
    // The sequential driver services parks too (immediately) — the park
    // points are a property of the exchange, not of the scheduler.
    EXPECT_GT(base.wire_metrics.reactor_parks, 0u);

    for (int threads : {1, 2, 8}) {
      ScanOptions reactor = sequential;
      reactor.event_loop = true;
      reactor.threads = threads;
      const ScanReport got = scan_population(pop, reactor);
      EXPECT_EQ(fingerprint(base), fingerprint(got))
          << "seed=" << seed << " threads=" << threads;
      // Wakeup counts and park durations are per-site facts; the JSON
      // snapshot (which excludes the shard-shape peak gauge) must be
      // byte-identical across drivers and thread counts.
      EXPECT_EQ(base.wire_metrics.to_json(), got.wire_metrics.to_json())
          << "seed=" << seed << " threads=" << threads;
    }
  }
}

TEST(ScanReactor, InFlightCapDoesNotChangeTheReport) {
  // Shrinking the cap reshuffles which sites share the wheel at any instant
  // but must not change any published aggregate — including the park
  // metrics in the JSON snapshot.
  const Population pop = generate_population(Epoch::kExp2, 7, /*scale=*/1000);

  ScanOptions wide;
  wide.event_loop = true;
  wide.fault_injection = true;
  wide.threads = 2;
  wide.max_in_flight = 1024;
  ScanOptions narrow = wide;
  narrow.max_in_flight = 3;

  const ScanReport a = scan_population(pop, wide);
  const ScanReport b = scan_population(pop, narrow);
  EXPECT_EQ(fingerprint(a), fingerprint(b));
  EXPECT_EQ(a.wire_metrics.to_json(), b.wire_metrics.to_json());
  // The gauge is the one field allowed to differ; sanity-check it tracks
  // the cap.
  EXPECT_LE(b.wire_metrics.reactor_peak_in_flight, 3u);
  EXPECT_GE(a.wire_metrics.reactor_peak_in_flight,
            b.wire_metrics.reactor_peak_in_flight);
}

TEST(ScanReactor, WiretapIdenticalAcrossDrivers) {
  const Population pop = generate_population(Epoch::kExp2, 9, /*scale=*/4000);
  ASSERT_FALSE(pop.sites.empty());

  ScanOptions sequential;
  sequential.event_loop = false;
  sequential.threads = 2;
  sequential.wiretap_traces = true;
  ScanOptions reactor = sequential;
  reactor.event_loop = true;

  const ScanReport a = scan_population(pop, sequential);
  const ScanReport b = scan_population(pop, reactor);
  ASSERT_FALSE(a.site_traces.empty());
  EXPECT_EQ(a.site_traces, b.site_traces);  // byte-identical JSONL per site
  EXPECT_EQ(a.wire_metrics.to_json(), b.wire_metrics.to_json());
  EXPECT_EQ(fingerprint(a), fingerprint(b));
}

TEST(ScanReactor, StallStormCompletesWithoutSpinning) {
  // Worst case for the old scan core: (nearly) every connection faulted, so
  // (nearly) every site parks, repeatedly. The reactor must drain the storm
  // by jumping its virtual clock across the parked stretches — visible as
  // parked_rounds booked without being pumped — and still classify every
  // site.
  const Population pop = generate_population(Epoch::kExp2, 7, /*scale=*/1000);

  ScanOptions storm;
  storm.event_loop = true;
  storm.fault_injection = true;
  storm.fault_floor = 0.97;
  storm.threads = 2;
  storm.max_in_flight = 64;
  const ScanReport r = scan_population(pop, storm);

  const std::size_t classified = r.sites_ok + r.sites_retried_ok +
                                 r.sites_truncated + r.sites_disconnected +
                                 r.sites_timed_out;
  EXPECT_GT(classified, 0u);
  EXPECT_GT(r.fault_injected, 0u);
  EXPECT_GT(r.wire_metrics.reactor_parks, 0u);
  // Parks cover multi-round stall stretches; if the loop were spinning one
  // round per wakeup these two would be equal.
  EXPECT_GT(r.wire_metrics.reactor_parked_rounds,
            r.wire_metrics.reactor_parks);
  EXPECT_EQ(r.wire_metrics.wakeups_per_site.count(), classified);

  // And the storm, too, is driver-independent.
  ScanOptions storm_seq = storm;
  storm_seq.event_loop = false;
  storm_seq.threads = 1;
  const ScanReport s = scan_population(pop, storm_seq);
  EXPECT_EQ(fingerprint(s), fingerprint(r));
  EXPECT_EQ(s.wire_metrics.to_json(), r.wire_metrics.to_json());
}

}  // namespace
}  // namespace h2r::corpus
