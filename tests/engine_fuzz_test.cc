// Robustness tests for the server engine: a scanner-facing endpoint must
// survive arbitrary garbage, protocol-shaped garbage, and mutated valid
// traffic without crashing — failing *gracefully* with GOAWAY/RST is the
// only acceptable failure mode.
#include <gtest/gtest.h>

#include "core/client.h"
#include "net/transport.h"
#include "h2/frame_codec.h"
#include "server/engine.h"
#include "util/rng.h"

namespace h2r {
namespace {

using server::Http2Server;
using server::Site;

Http2Server fresh_server() {
  return Http2Server(server::h2o_profile(), Site::standard_testbed_site());
}

Bytes preface_bytes() {
  return Bytes(h2::kClientPreface.begin(), h2::kClientPreface.end());
}

class EngineFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineFuzz, RawGarbageAfterPrefaceNeverCrashes) {
  Rng rng(GetParam());
  for (int round = 0; round < 50; ++round) {
    auto server = fresh_server();
    server.receive(preface_bytes());
    for (int chunk = 0; chunk < 20; ++chunk) {
      Bytes junk(rng.next_below(200), 0);
      for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next_below(256));
      server.receive(junk);
      (void)server.take_output();
      if (!server.alive()) break;
    }
  }
}

TEST_P(EngineFuzz, ProtocolShapedGarbageNeverCrashes) {
  // Well-framed but semantically wild frames: random types, flags, stream
  // ids and payloads. The engine must answer every one deterministically.
  Rng rng(GetParam() * 0xABCDu);
  for (int round = 0; round < 40; ++round) {
    auto server = fresh_server();
    server.receive(preface_bytes());
    for (int i = 0; i < 30 && server.alive(); ++i) {
      h2::Frame f;
      f.flags = static_cast<std::uint8_t>(rng.next_below(256));
      f.stream_id = static_cast<std::uint32_t>(rng.next_below(16));
      Bytes payload(rng.next_below(40), 0);
      for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next_below(256));
      f.payload = h2::UnknownPayload{
          .type = static_cast<std::uint8_t>(rng.next_below(12)),
          .data = std::move(payload)};
      server.receive(h2::serialize_frame(f));
      (void)server.take_output();
    }
  }
}

TEST_P(EngineFuzz, MutatedValidSessionsNeverCrash) {
  Rng rng(GetParam() * 0x5151u);
  // Record one valid client session's bytes...
  Bytes valid = preface_bytes();
  {
    core::ClientConnection client;
    client.send_request("/");
    client.send_request("/small");
    client.send_ping({1, 2, 3, 4, 5, 6, 7, 8});
    client.send_window_update(0, 1000);
    const Bytes out = client.take_output();
    valid.assign(out.begin(), out.end());
  }
  // ...then replay bit-flipped variants.
  for (int trial = 0; trial < 150; ++trial) {
    Bytes mutated = valid;
    const std::size_t flips = 1 + rng.next_below(6);
    for (std::size_t f = 0; f < flips; ++f) {
      mutated[rng.next_below(mutated.size())] ^=
          static_cast<std::uint8_t>(1u << rng.next_below(8));
    }
    auto server = fresh_server();
    server.receive(mutated);
    (void)server.take_output();
  }
}

TEST_P(EngineFuzz, RandomValidOperationsKeepInvariants) {
  // A monkey client doing legal-ish things: the server must stay consistent
  // (responses complete, stream count bounded) or die with GOAWAY.
  Rng rng(GetParam() * 0x7777u);
  auto server = fresh_server();
  core::ClientConnection client;
  net::LockstepTransport transport(client.recorder());  // one connection
  std::vector<std::uint32_t> open;
  for (int step = 0; step < 120 && server.alive(); ++step) {
    switch (rng.next_below(6)) {
      case 0:
        open.push_back(client.send_request(
            rng.next_bool(0.5) ? "/small" : "/object/0"));
        break;
      case 1:
        if (!open.empty()) {
          client.send_rst_stream(open[rng.next_below(open.size())],
                                 h2::ErrorCode::kCancel);
        }
        break;
      case 2:
        if (!open.empty()) {
          client.send_priority(
              open[rng.next_below(open.size())],
              {.dependency = rng.next_bool(0.8)
                                 ? 0
                                 : open[rng.next_below(open.size())],
               .weight_field = static_cast<std::uint8_t>(rng.next_below(256))});
        }
        break;
      case 3:
        client.send_window_update(
            0, 1 + static_cast<std::uint32_t>(rng.next_below(1 << 16)));
        break;
      case 4:
        client.send_ping({9, 9, 9, 9, 9, 9, 9, 9});
        break;
      default:
        client.send_settings(
            {{h2::SettingId::kInitialWindowSize,
              static_cast<std::uint32_t>(rng.next_below(1 << 20))}});
        break;
    }
    transport.run(client, server);
    EXPECT_LE(server.active_stream_count(), open.size() + 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineFuzz, ::testing::Range<std::uint64_t>(1, 7));

TEST(EngineFuzzEdge, TruncatedPrefaceThenGarbage) {
  auto server = fresh_server();
  const Bytes preface = preface_bytes();
  server.receive({preface.data(), 10});  // half the preface
  Bytes junk = {0xFF, 0xFF, 0xFF, 0xFF};
  server.receive(junk);  // mismatch mid-preface
  EXPECT_FALSE(server.alive());
}

TEST(EngineFuzzEdge, EmptyReceivesAreHarmless) {
  auto server = fresh_server();
  server.receive({});
  server.receive(preface_bytes());
  server.receive({});
  EXPECT_TRUE(server.alive());
}

TEST(EngineFuzzEdge, OutputAfterDeathIsRetrievableOnce) {
  auto server = fresh_server();
  const std::string junk = "NOT A PREFACE AT ALL......";
  server.receive(
      {reinterpret_cast<const std::uint8_t*>(junk.data()), junk.size()});
  EXPECT_FALSE(server.alive());
  const Bytes dying = server.take_output();
  EXPECT_FALSE(dying.empty());  // SETTINGS + GOAWAY
  EXPECT_TRUE(server.take_output().empty());
}

}  // namespace
}  // namespace h2r
