// Characterization/report coherence tests and ASCII rendering smoke tests.
#include <gtest/gtest.h>

#include "core/report.h"
#include "util/stats.h"

namespace h2r {
namespace {

TEST(Report, LabelsValuesAndRfcColumnAgreeInLength) {
  Rng rng(5);
  const auto c = core::characterize(
      core::Target::testbed(server::h2o_profile()), rng);
  const auto labels = core::Characterization::row_labels();
  EXPECT_EQ(c.row_values().size(), labels.size());
  EXPECT_EQ(core::rfc7540_reference_column().size(), labels.size());
  EXPECT_EQ(labels.size(), 14u);  // the paper's Table III has 14 rows
}

TEST(Report, RfcColumnMatchesPaper) {
  const auto rfc = core::rfc7540_reference_column();
  EXPECT_EQ(rfc[0], "support");            // ALPN
  EXPECT_EQ(rfc[1], "does not require");   // NPN
  EXPECT_EQ(rfc[4], "no");                 // no flow control on HEADERS
  EXPECT_EQ(rfc[5], "RST_STREAM");         // zero window update on stream
  EXPECT_EQ(rfc[11], "RST_STREAM");        // self-dependent stream
}

TEST(Report, FullyConformantProfileOnlyDeviatesWhereDocumented) {
  // H2O's only Table III deviation from the RFC column is self-dependency
  // (GOAWAY instead of RST_STREAM) and NPN (which the RFC doesn't require).
  Rng rng(6);
  const auto c = core::characterize(
      core::Target::testbed(server::h2o_profile()), rng);
  const auto values = c.row_values();
  const auto rfc = core::rfc7540_reference_column();
  int deviations = 0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (rfc[i] == "does not require") continue;
    if (values[i] != rfc[i]) ++deviations;
  }
  EXPECT_EQ(deviations, 1);  // the self-dependency GOAWAY
}

TEST(Report, CharacterizationIsDeterministic) {
  Rng rng1(9), rng2(9);
  const auto a = core::characterize(
      core::Target::testbed(server::nginx_profile()), rng1);
  const auto b = core::characterize(
      core::Target::testbed(server::nginx_profile()), rng2);
  EXPECT_EQ(a.row_values(), b.row_values());
  EXPECT_DOUBLE_EQ(a.hpack.ratio, b.hpack.ratio);
}

TEST(AsciiCdf, RendersSeriesAndLegend) {
  SampleSet s;
  for (double v : {1.0, 2.0, 3.0, 10.0}) s.add(v);
  const auto out = render_ascii_cdf({{"mine", s.cdf_points()}}, 40, 8);
  EXPECT_NE(out.find("[*] mine"), std::string::npos);
  EXPECT_NE(out.find("CDF"), std::string::npos);
}

TEST(AsciiCdf, LogScaleHandlesWideRanges) {
  SampleSet s;
  for (double v : {1.0, 100.0, 100000.0}) s.add(v);
  const auto out =
      render_ascii_cdf({{"wide", s.cdf_points()}}, 40, 8, /*log_x=*/true);
  EXPECT_NE(out.find("log10(x)"), std::string::npos);
}

TEST(AsciiCdf, EmptyInputsDoNotCrash) {
  EXPECT_NE(render_ascii_cdf({}).find("no series"), std::string::npos);
  EXPECT_NE(render_ascii_cdf({{"empty", {}}}).find("empty"),
            std::string::npos);
}

}  // namespace
}  // namespace h2r
