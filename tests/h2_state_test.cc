// Settings, flow-control, and stream state machine tests.
#include <gtest/gtest.h>

#include "h2/flow_control.h"
#include "h2/settings.h"
#include "h2/stream.h"

namespace h2r::h2 {
namespace {

// ---------------------------------------------------------------- settings

TEST(Settings, DefaultsMatchRfc) {
  SettingsMap s;
  EXPECT_EQ(s.header_table_size(), 4096u);
  EXPECT_TRUE(s.enable_push());
  EXPECT_EQ(s.max_concurrent_streams(), std::nullopt);  // unlimited
  EXPECT_EQ(s.initial_window_size(), 65535u);
  EXPECT_EQ(s.max_frame_size(), 16384u);
  EXPECT_EQ(s.max_header_list_size(), std::nullopt);  // unlimited
}

TEST(Settings, ApplyOverridesDefaults) {
  SettingsMap s;
  ASSERT_TRUE(s.apply(0x4, 1048576).ok());
  ASSERT_TRUE(s.apply(0x3, 100).ok());
  EXPECT_EQ(s.initial_window_size(), 1048576u);
  EXPECT_EQ(s.max_concurrent_streams(), std::optional<std::uint32_t>(100));
}

TEST(Settings, EnablePushMustBeBoolean) {
  SettingsMap s;
  EXPECT_TRUE(s.apply(0x2, 0).ok());
  EXPECT_TRUE(s.apply(0x2, 1).ok());
  EXPECT_EQ(s.apply(0x2, 2).code(), StatusCode::kProtocolError);
}

TEST(Settings, InitialWindowSizeCappedAt2G) {
  SettingsMap s;
  EXPECT_TRUE(s.apply(0x4, 0x7FFFFFFF).ok());
  EXPECT_EQ(s.apply(0x4, 0x80000000u).code(), StatusCode::kFlowControlError);
}

TEST(Settings, MaxFrameSizeBounds) {
  SettingsMap s;
  EXPECT_EQ(s.apply(0x5, 16383).code(), StatusCode::kProtocolError);
  EXPECT_TRUE(s.apply(0x5, 16384).ok());
  EXPECT_TRUE(s.apply(0x5, 16777215).ok());
  EXPECT_EQ(s.apply(0x5, 16777216).code(), StatusCode::kProtocolError);
}

TEST(Settings, UnknownIdsIgnoredButRecorded) {
  SettingsMap s;
  EXPECT_TRUE(s.apply(0xDEAD, 42).ok());
  // Does not disturb known values.
  EXPECT_EQ(s.initial_window_size(), 65535u);
}

TEST(Settings, ToEntriesRoundTrips) {
  SettingsMap s;
  ASSERT_TRUE(s.apply(0x4, 0).ok());
  ASSERT_TRUE(s.apply(0x3, 128).ok());
  auto entries = s.to_entries();
  SettingsMap t;
  for (auto [id, v] : entries) {
    ASSERT_TRUE(t.apply(static_cast<std::uint16_t>(id), v).ok());
  }
  EXPECT_EQ(t.initial_window_size(), 0u);
  EXPECT_EQ(t.max_concurrent_streams(), std::optional<std::uint32_t>(128));
}

// ------------------------------------------------------------ flow control

TEST(FlowWindow, ConsumeDecrements) {
  FlowWindow w(100);
  ASSERT_TRUE(w.consume(60).ok());
  EXPECT_EQ(w.available(), 40);
  ASSERT_TRUE(w.consume(40).ok());
  EXPECT_EQ(w.available(), 0);
}

TEST(FlowWindow, OverConsumeIsFlowControlError) {
  FlowWindow w(10);
  EXPECT_EQ(w.consume(11).code(), StatusCode::kFlowControlError);
  EXPECT_EQ(w.available(), 10);  // untouched on failure
}

TEST(FlowWindow, ZeroIncrementIsProtocolError) {
  // RFC 7540 §6.9: a receiver MUST treat a 0 increment as an error —
  // this is precisely what the paper's zero-window-update probe measures.
  FlowWindow w;
  EXPECT_EQ(w.expand(0).code(), StatusCode::kProtocolError);
}

TEST(FlowWindow, OverflowBeyond2GIsFlowControlError) {
  // §6.9.1: the large-window-update probe drives the sum past 2^31-1.
  FlowWindow w(65535);
  ASSERT_TRUE(w.expand(0x7FFFFFFF - 65535).ok());
  EXPECT_EQ(w.available(), 0x7FFFFFFF);
  EXPECT_EQ(w.expand(1).code(), StatusCode::kFlowControlError);
}

TEST(FlowWindow, SettingsAdjustmentCanGoNegative) {
  // §6.9.2: lowering SETTINGS_INITIAL_WINDOW_SIZE after octets were sent.
  FlowWindow w(65535);
  ASSERT_TRUE(w.consume(60000).ok());
  ASSERT_TRUE(w.adjust_initial(65535, 0).ok());
  EXPECT_EQ(w.available(), 5535 - 65535);  // = -60000, legally negative
}

TEST(FlowWindow, SettingsAdjustmentOverflowCaught) {
  FlowWindow w(0x7FFFFFFF);
  EXPECT_EQ(w.adjust_initial(0, 100).code(), StatusCode::kFlowControlError);
}

// -------------------------------------------------------------- stream SM

TEST(StreamSM, RequestResponseLifecycle) {
  // Client view of a GET: send HEADERS+END_STREAM, receive response.
  StreamStateMachine sm(1);
  ASSERT_TRUE(sm.on_send_headers(/*end_stream=*/true).ok());
  EXPECT_EQ(sm.state(), StreamState::kHalfClosedLocal);
  ASSERT_TRUE(sm.on_recv_headers(false).ok());
  ASSERT_TRUE(sm.on_recv_data(false).ok());
  ASSERT_TRUE(sm.on_recv_data(true).ok());
  EXPECT_EQ(sm.state(), StreamState::kClosed);
}

TEST(StreamSM, ServerViewOfRequest) {
  StreamStateMachine sm(1);
  ASSERT_TRUE(sm.on_recv_headers(true).ok());
  EXPECT_EQ(sm.state(), StreamState::kHalfClosedRemote);
  EXPECT_TRUE(sm.can_send_data());
  ASSERT_TRUE(sm.on_send_headers(false).ok());
  ASSERT_TRUE(sm.on_send_data(true).ok());
  EXPECT_EQ(sm.state(), StreamState::kClosed);
}

TEST(StreamSM, PushLifecycleOnPromisedStream) {
  // Server side: PUSH_PROMISE reserves, response HEADERS half-closes.
  StreamStateMachine sm(2);
  ASSERT_TRUE(sm.on_send_push_promise().ok());
  EXPECT_EQ(sm.state(), StreamState::kReservedLocal);
  ASSERT_TRUE(sm.on_send_headers(false).ok());
  EXPECT_EQ(sm.state(), StreamState::kHalfClosedRemote);
  ASSERT_TRUE(sm.on_send_data(true).ok());
  EXPECT_EQ(sm.state(), StreamState::kClosed);
}

TEST(StreamSM, ClientViewOfPush) {
  StreamStateMachine sm(2);
  ASSERT_TRUE(sm.on_recv_push_promise().ok());
  EXPECT_EQ(sm.state(), StreamState::kReservedRemote);
  ASSERT_TRUE(sm.on_recv_headers(false).ok());
  EXPECT_EQ(sm.state(), StreamState::kHalfClosedLocal);
  ASSERT_TRUE(sm.on_recv_data(true).ok());
  EXPECT_TRUE(sm.closed());
}

TEST(StreamSM, DataOnIdleStreamIsProtocolError) {
  StreamStateMachine sm(1);
  EXPECT_EQ(sm.on_recv_data(false).code(), StatusCode::kProtocolError);
}

TEST(StreamSM, DataAfterEndStreamIsError) {
  StreamStateMachine sm(1);
  ASSERT_TRUE(sm.on_recv_headers(true).ok());
  EXPECT_FALSE(sm.on_recv_data(false).ok());
}

TEST(StreamSM, RstClosesFromAnyActiveState) {
  StreamStateMachine sm(1);
  ASSERT_TRUE(sm.on_recv_headers(false).ok());
  ASSERT_TRUE(sm.on_recv_rst().ok());
  EXPECT_TRUE(sm.closed());
}

TEST(StreamSM, RstOnIdleIsProtocolError) {
  StreamStateMachine sm(1);
  EXPECT_EQ(sm.on_recv_rst().code(), StatusCode::kProtocolError);
}

TEST(StreamSM, PushPromiseOnNonIdleIsProtocolError) {
  StreamStateMachine sm(2);
  ASSERT_TRUE(sm.on_recv_headers(false).ok());
  EXPECT_EQ(sm.on_recv_push_promise().code(), StatusCode::kProtocolError);
}

TEST(StreamSM, HeadersOnClosedIsProtocolError) {
  StreamStateMachine sm(1);
  ASSERT_TRUE(sm.on_recv_headers(true).ok());
  ASSERT_TRUE(sm.on_send_headers(true).ok());
  EXPECT_TRUE(sm.closed());
  EXPECT_FALSE(sm.on_recv_headers(false).ok());
}

}  // namespace
}  // namespace h2r::h2
