// Coalesced probe scheduling must be a pure performance change: a scan run
// with ProbeSession (one shared connection per site for the shareable
// probes) has to produce a ScanReport bitwise identical to the sequential
// fresh-connection-per-probe scan, for any thread count, and the session's
// individual probe results must match the probes.h free functions field
// for field on every testbed profile.
#include <gtest/gtest.h>

#include <string>

#include "core/probes.h"
#include "core/session.h"
#include "corpus/population.h"
#include "corpus/scan.h"
#include "scan_fingerprint.h"
#include "server/profile.h"

namespace h2r::corpus {
namespace {

TEST(ScanCoalesce, ReportMatchesSequentialScan) {
  // 1/1000 of the epoch-2 list exercises every probe and family bucket.
  const Population pop = generate_population(Epoch::kExp2, 7, /*scale=*/1000);
  ASSERT_FALSE(pop.sites.empty());

  ScanOptions sequential;
  sequential.coalesce = false;
  sequential.threads = 1;
  ScanOptions coalesced;
  coalesced.coalesce = true;
  coalesced.threads = 1;

  const std::string seq = fingerprint(scan_population(pop, sequential));
  EXPECT_EQ(seq, fingerprint(scan_population(pop, coalesced)));

  // Same equivalence under the worker pool.
  sequential.threads = 8;
  coalesced.threads = 8;
  EXPECT_EQ(seq, fingerprint(scan_population(pop, sequential)));
  EXPECT_EQ(seq, fingerprint(scan_population(pop, coalesced)));
}

TEST(ScanCoalesce, ReportMatchesSequentialUnderFaultInjection) {
  // Under FaultyTransport the scan silently pins itself sequential (retry
  // semantics are per fresh connection), so the coalesce flag must be a
  // no-op — including the ledger-derived outcome and fault counters.
  const Population pop = generate_population(Epoch::kExp2, 7, /*scale=*/1000);

  ScanOptions sequential;
  sequential.coalesce = false;
  sequential.threads = 4;
  sequential.fault_injection = true;
  ScanOptions coalesced = sequential;
  coalesced.coalesce = true;

  const ScanReport a = scan_population(pop, sequential);
  const ScanReport b = scan_population(pop, coalesced);
  EXPECT_EQ(fingerprint(a), fingerprint(b));
  EXPECT_GT(a.fault_injected, 0u);  // the chaos path actually ran
}

TEST(ScanCoalesce, WiretapTracesUnaffectedByCoalesceFlag) {
  // The wiretap's frame record depends on the connection layout, so a
  // recording scan also stays sequential: traces and wire metrics must be
  // byte-identical whatever the flag says.
  const Population pop = generate_population(Epoch::kExp2, 9, /*scale=*/4000);
  ASSERT_FALSE(pop.sites.empty());

  ScanOptions sequential;
  sequential.coalesce = false;
  sequential.threads = 2;
  sequential.wiretap_traces = true;
  ScanOptions coalesced = sequential;
  coalesced.coalesce = true;

  const ScanReport a = scan_population(pop, sequential);
  const ScanReport b = scan_population(pop, coalesced);
  ASSERT_FALSE(a.site_traces.empty());
  EXPECT_EQ(a.site_traces, b.site_traces);
  EXPECT_EQ(fingerprint(a), fingerprint(b));
}

// Field-for-field session-vs-fresh comparison on every testbed profile —
// when the aggregate test above fails, this one names the probe and the
// profile that diverged.
class SessionEquivalence : public ::testing::TestWithParam<std::string> {};

TEST_P(SessionEquivalence, ProbesMatchFreshConnections) {
  const core::Target target =
      core::Target::testbed(server::profile_by_key(GetParam()));
  core::ProbeSession session(target);

  // Mirror the scan's call order: settings first (it establishes the
  // baseline), then priority, self-dependency, push, hpack.
  const auto settings = session.settings();
  const auto prio = session.priority();
  const auto self_dep = session.self_dependency();
  const auto push = session.push();
  const auto hpack = session.hpack_ratio();

  const core::Target fresh =
      core::Target::testbed(server::profile_by_key(GetParam()));
  const auto settings_f = core::probe_settings(fresh);
  EXPECT_EQ(settings.headers_received, settings_f.headers_received);
  EXPECT_EQ(settings.settings_entry_count, settings_f.settings_entry_count);
  EXPECT_EQ(settings.header_table_size, settings_f.header_table_size);
  EXPECT_EQ(settings.max_concurrent_streams, settings_f.max_concurrent_streams);
  EXPECT_EQ(settings.initial_window_size, settings_f.initial_window_size);
  EXPECT_EQ(settings.max_frame_size, settings_f.max_frame_size);
  EXPECT_EQ(settings.max_header_list_size, settings_f.max_header_list_size);
  EXPECT_EQ(settings.preemptive_window_bonus,
            settings_f.preemptive_window_bonus);
  EXPECT_EQ(settings.server_header, settings_f.server_header);

  const auto prio_f = core::probe_priority_mechanism(fresh);
  EXPECT_EQ(prio.ran, prio_f.ran);
  EXPECT_EQ(prio.pass_by_last_data, prio_f.pass_by_last_data);
  EXPECT_EQ(prio.pass_by_first_data, prio_f.pass_by_first_data);
  EXPECT_EQ(prio.pass_by_both, prio_f.pass_by_both);
  EXPECT_EQ(prio.headers_during_zero_window, prio_f.headers_during_zero_window);

  const auto self_dep_f = core::probe_self_dependency(fresh);
  EXPECT_EQ(self_dep.reaction, self_dep_f.reaction);

  const auto push_f = core::probe_server_push(fresh);
  EXPECT_EQ(push.push_received, push_f.push_received);
  EXPECT_EQ(push.pushed_paths, push_f.pushed_paths);
  EXPECT_EQ(push.pushed_bytes, push_f.pushed_bytes);

  const auto hpack_f = core::probe_hpack_ratio(fresh);
  EXPECT_EQ(hpack.ran, hpack_f.ran);
  EXPECT_EQ(hpack.header_sizes, hpack_f.header_sizes);
  EXPECT_EQ(hpack.ratio, hpack_f.ratio);  // bitwise, not approximately
}

INSTANTIATE_TEST_SUITE_P(
    AllProfiles, SessionEquivalence,
    ::testing::Values("nginx", "litespeed", "h2o", "nghttpd", "tengine",
                      "apache", "gse", "cloudflare-nginx", "ideawebserver",
                      "tengine-aserver"),
    [](const auto& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(ScanCoalesce, SessionScratchReuseIsObservablyFresh) {
  // The per-worker scratch hands the same client/engine to site after
  // site; a session on reused endpoints must observe exactly what a
  // session on fresh ones does.
  core::SessionScratch scratch;
  const core::Target first =
      core::Target::testbed(server::profile_by_key("nginx"));
  core::ProbeSession warmup(first, {}, &scratch);
  (void)warmup.settings();
  (void)warmup.priority();
  (void)warmup.self_dependency();

  const core::Target second =
      core::Target::testbed(server::profile_by_key("gse"));
  core::ProbeSession reused(second, {}, &scratch);
  core::ProbeSession owned(second);
  EXPECT_EQ(reused.settings().server_header, owned.settings().server_header);
  EXPECT_EQ(reused.priority().pass_by_both, owned.priority().pass_by_both);
  EXPECT_EQ(reused.push().pushed_paths, owned.push().pushed_paths);
  EXPECT_EQ(reused.hpack_ratio().ratio, owned.hpack_ratio().ratio);
}

}  // namespace
}  // namespace h2r::corpus
