// Property tests for HPACK: randomized header lists must round-trip through
// every encoder configuration, and encoder/decoder dynamic tables must stay
// synchronized over long block sequences — the invariant the whole protocol
// rests on (RFC 7541 §2.2).
#include <gtest/gtest.h>

#include <string>

#include "hpack/decoder.h"
#include "hpack/encoder.h"
#include "hpack/integer.h"
#include "hpack/table.h"
#include "util/rng.h"

namespace h2r::hpack {
namespace {

std::string random_token(Rng& rng, std::size_t max_len, bool binary) {
  const std::size_t len = rng.next_below(max_len + 1);
  std::string out;
  out.reserve(len);
  static constexpr char kTokenChars[] =
      "abcdefghijklmnopqrstuvwxyz0123456789-_.:/ =;";
  for (std::size_t i = 0; i < len; ++i) {
    if (binary) {
      out.push_back(static_cast<char>(rng.next_below(256)));
    } else {
      out.push_back(kTokenChars[rng.next_below(sizeof(kTokenChars) - 1)]);
    }
  }
  return out;
}

HeaderList random_headers(Rng& rng, bool binary_values) {
  HeaderList headers;
  const std::size_t n = 1 + rng.next_below(12);
  for (std::size_t i = 0; i < n; ++i) {
    HeaderField f;
    if (rng.next_bool(0.4)) {
      // Bias towards names the static table knows.
      f.name = std::string(
          static_table_entry(1 + static_cast<std::uint32_t>(rng.next_below(61)))
              .name);
    } else {
      f.name = "x-" + random_token(rng, 16, false);
    }
    f.value = random_token(rng, 40, binary_values);
    f.never_indexed = rng.next_bool(0.1);
    headers.push_back(std::move(f));
  }
  return headers;
}

struct HpackPropertyCase {
  std::uint64_t seed;
  IndexingPolicy policy;
  bool huffman;
  bool binary_values;
};

class HpackRoundTrip : public ::testing::TestWithParam<HpackPropertyCase> {};

TEST_P(HpackRoundTrip, ManyBlocksDecodeExactly) {
  const auto& param = GetParam();
  Rng rng(param.seed);
  Encoder enc({.policy = param.policy, .use_huffman = param.huffman});
  Decoder dec;
  for (int block = 0; block < 40; ++block) {
    const HeaderList headers = random_headers(rng, param.binary_values);
    auto decoded = dec.decode(enc.encode(headers));
    ASSERT_TRUE(decoded.ok())
        << "block " << block << ": " << decoded.status().to_string();
    ASSERT_EQ(decoded->size(), headers.size()) << "block " << block;
    for (std::size_t i = 0; i < headers.size(); ++i) {
      EXPECT_EQ((*decoded)[i].name, headers[i].name);
      EXPECT_EQ((*decoded)[i].value, headers[i].value);
      EXPECT_EQ((*decoded)[i].never_indexed, headers[i].never_indexed);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HpackRoundTrip,
    ::testing::Values(
        HpackPropertyCase{1, IndexingPolicy::kAggressive, true, false},
        HpackPropertyCase{2, IndexingPolicy::kAggressive, true, true},
        HpackPropertyCase{3, IndexingPolicy::kAggressive, false, false},
        HpackPropertyCase{4, IndexingPolicy::kAggressive, false, true},
        HpackPropertyCase{5, IndexingPolicy::kStaticOnly, true, false},
        HpackPropertyCase{6, IndexingPolicy::kStaticOnly, false, true},
        HpackPropertyCase{7, IndexingPolicy::kNone, true, false},
        HpackPropertyCase{8, IndexingPolicy::kNone, false, true}),
    [](const ::testing::TestParamInfo<HpackPropertyCase>& info) {
      const auto& p = info.param;
      std::string name = "seed" + std::to_string(p.seed);
      name += p.policy == IndexingPolicy::kAggressive  ? "_aggressive"
              : p.policy == IndexingPolicy::kStaticOnly ? "_staticonly"
                                                        : "_none";
      name += p.huffman ? "_huffman" : "_plain";
      name += p.binary_values ? "_binary" : "_token";
      return name;
    });

class HpackTinyTable : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(HpackTinyTable, EvictionNeverDesynchronizes) {
  // Stress the eviction path: the table is barely big enough for one or two
  // entries, so nearly every insertion evicts.
  const std::uint32_t capacity = GetParam();
  Rng rng(99);
  Encoder enc({.policy = IndexingPolicy::kAggressive, .table_capacity = capacity});
  Decoder dec;
  enc.set_table_capacity(capacity);  // emits the size-update instruction
  for (int block = 0; block < 60; ++block) {
    const HeaderList headers = random_headers(rng, false);
    auto decoded = dec.decode(enc.encode(headers));
    ASSERT_TRUE(decoded.ok()) << decoded.status().to_string();
    ASSERT_EQ(decoded->size(), headers.size());
    for (std::size_t i = 0; i < headers.size(); ++i) {
      EXPECT_EQ((*decoded)[i], headers[i]);
    }
    EXPECT_LE(enc.table().size_octets(), capacity);
    EXPECT_LE(dec.table().size_octets(), capacity);
    EXPECT_EQ(enc.table().dynamic_entry_count(), dec.table().dynamic_entry_count());
  }
}

INSTANTIATE_TEST_SUITE_P(Capacities, HpackTinyTable,
                         ::testing::Values(0u, 32u, 64u, 100u, 500u, 4096u));

class HpackIntegerSweep
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(HpackIntegerSweep, RandomValuesRoundTrip) {
  const int prefix = std::get<0>(GetParam());
  Rng rng(std::get<1>(GetParam()));
  for (int i = 0; i < 2000; ++i) {
    // Log-uniform draw to cover every magnitude.
    const int bits = static_cast<int>(rng.next_below(33));
    const std::uint32_t v = static_cast<std::uint32_t>(
        rng.next_u64() & ((bits >= 32 ? ~0ull : (1ull << bits) - 1)));
    ByteWriter w;
    encode_integer(w, v, prefix, 0);
    const Bytes buf = w.take();
    ByteReader r({buf.data(), buf.size()});
    const std::uint8_t first = r.read_u8().value();
    auto back = decode_integer(r, first, prefix);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, v);
    EXPECT_TRUE(r.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Prefixes, HpackIntegerSweep,
                         ::testing::Combine(::testing::Range(1, 9),
                                            ::testing::Values(7ull)));

TEST(HpackDecoderFuzz, RandomBytesNeverCrash) {
  // Garbage input must produce errors, never UB. (The scanner feeds the
  // decoder whatever a remote endpoint sends.)
  Rng rng(0xF00D);
  Decoder dec;
  int ok = 0, failed = 0;
  for (int round = 0; round < 3000; ++round) {
    Bytes junk(rng.next_below(64), 0);
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next_below(256));
    auto result = dec.decode(junk);
    (result.ok() ? ok : failed) += 1;
  }
  // Some random blocks happen to be valid (e.g. single indexed fields);
  // the point is every call returns.
  EXPECT_GT(failed, 0);
  EXPECT_GT(ok + failed, 0);
}

TEST(HpackEncoderProperty, EncodedSizeIsMonotonicInPolicyStrictness) {
  // For repeated identical blocks, aggressive <= static-only <= none.
  Rng rng(123);
  for (int trial = 0; trial < 20; ++trial) {
    const HeaderList headers = random_headers(rng, false);
    std::size_t totals[3] = {0, 0, 0};
    const IndexingPolicy policies[3] = {IndexingPolicy::kAggressive,
                                        IndexingPolicy::kStaticOnly,
                                        IndexingPolicy::kNone};
    for (int p = 0; p < 3; ++p) {
      Encoder enc({.policy = policies[p], .use_huffman = false});
      for (int i = 0; i < 5; ++i) totals[p] += enc.encode(headers).size();
    }
    EXPECT_LE(totals[0], totals[1]) << "trial " << trial;
    EXPECT_LE(totals[1], totals[2]) << "trial " << trial;
  }
}

TEST(HpackEncoderProperty, HuffmanNeverInflates) {
  // The encoder only huffman-codes strings that actually shrink, so the
  // huffman-enabled wire size is never larger than plain.
  Rng rng(321);
  for (int trial = 0; trial < 40; ++trial) {
    const HeaderList headers = random_headers(rng, trial % 2 == 1);
    Encoder plain({.policy = IndexingPolicy::kNone, .use_huffman = false});
    Encoder huff({.policy = IndexingPolicy::kNone, .use_huffman = true});
    EXPECT_LE(huff.encode(headers).size(), plain.encode(headers).size());
  }
}

}  // namespace
}  // namespace h2r::hpack
