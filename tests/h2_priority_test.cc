// Priority dependency tree tests (RFC 7540 §5.3), including the paper's
// Figure 1 / Tables I & II worked example and the RFC §5.3.3 descendant
// reprioritization example — the structures the Algorithm 1 probe relies on.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "h2/priority_tree.h"

namespace h2r::h2 {
namespace {

bool contains_child(const PriorityTree& t, std::uint32_t parent,
                    std::uint32_t child) {
  auto c = t.children_of(parent);
  return std::find(c.begin(), c.end(), child) != c.end();
}

// Stream letters from the paper's Fig. 1, mapped to client stream ids.
constexpr std::uint32_t A = 1, B = 3, C = 5, D = 7, E = 9, F = 11;

PriorityTree build_paper_tree() {
  // Table I: A dep 0; B,C,D dep A (weight 1); E dep B; F dep D.
  PriorityTree t;
  EXPECT_TRUE(t.declare(A, {.dependency = 0, .weight_field = 0}).ok());
  EXPECT_TRUE(t.declare(B, {.dependency = A, .weight_field = 0}).ok());
  EXPECT_TRUE(t.declare(C, {.dependency = A, .weight_field = 0}).ok());
  EXPECT_TRUE(t.declare(D, {.dependency = A, .weight_field = 0}).ok());
  EXPECT_TRUE(t.declare(E, {.dependency = B, .weight_field = 0}).ok());
  EXPECT_TRUE(t.declare(F, {.dependency = D, .weight_field = 0}).ok());
  return t;
}

TEST(PriorityTree, PaperTableI_BuildsFig1Tree) {
  PriorityTree t = build_paper_tree();
  EXPECT_EQ(t.parent_of(A), 0u);
  EXPECT_EQ(t.parent_of(B), A);
  EXPECT_EQ(t.parent_of(C), A);
  EXPECT_EQ(t.parent_of(D), A);
  EXPECT_EQ(t.parent_of(E), B);
  EXPECT_EQ(t.parent_of(F), D);
  EXPECT_EQ(t.children_of(A).size(), 3u);
}

TEST(PriorityTree, PaperTableII_Row1_ExclusiveReprioritization) {
  // PRIORITY frame: A depends on B, exclusive — Fig. 1 sub-figure (2):
  // B moves to the root position of the subtree; A becomes B's only child
  // and adopts B's former children (E) alongside its own remaining
  // children (C, D).
  PriorityTree t = build_paper_tree();
  ASSERT_TRUE(
      t.reprioritize(A, {.dependency = B, .weight_field = 0, .exclusive = true})
          .ok());
  EXPECT_EQ(t.parent_of(B), 0u);
  EXPECT_EQ(t.parent_of(A), B);
  EXPECT_EQ(t.children_of(B).size(), 1u);  // exclusively A
  // A's children: E (adopted from B), C, D.
  EXPECT_TRUE(contains_child(t, A, E));
  EXPECT_TRUE(contains_child(t, A, C));
  EXPECT_TRUE(contains_child(t, A, D));
  EXPECT_EQ(t.parent_of(F), D);
}

TEST(PriorityTree, PaperTableII_Row2_NonExclusiveReprioritization) {
  // PRIORITY frame: A depends on B, non-exclusive — Fig. 1 sub-figure (3):
  // B keeps E; A joins as a sibling of E under B.
  PriorityTree t = build_paper_tree();
  ASSERT_TRUE(
      t.reprioritize(A, {.dependency = B, .weight_field = 0, .exclusive = false})
          .ok());
  EXPECT_EQ(t.parent_of(B), 0u);
  EXPECT_EQ(t.parent_of(A), B);
  EXPECT_EQ(t.parent_of(E), B);
  EXPECT_EQ(t.children_of(B).size(), 2u);  // E and A
  EXPECT_TRUE(contains_child(t, A, C));
  EXPECT_TRUE(contains_child(t, A, D));
  EXPECT_FALSE(contains_child(t, A, E));
}

TEST(PriorityTree, SelfDependencyIsProtocolError) {
  PriorityTree t = build_paper_tree();
  EXPECT_EQ(t.reprioritize(A, {.dependency = A}).code(),
            StatusCode::kProtocolError);
  PriorityTree fresh;
  EXPECT_EQ(fresh.declare(1, {.dependency = 1}).code(),
            StatusCode::kProtocolError);
}

TEST(PriorityTree, DefaultDeclarationHangsOffRoot) {
  PriorityTree t;
  ASSERT_TRUE(t.declare_default(1).ok());
  EXPECT_EQ(t.parent_of(1), 0u);
  EXPECT_EQ(t.weight_of(1), kDefaultWeight);
}

TEST(PriorityTree, PhantomParentCreatedOnDemand) {
  PriorityTree t;
  // Depend on stream 99 that was never declared — §5.3.1 allows this.
  ASSERT_TRUE(t.declare(1, {.dependency = 99}).ok());
  EXPECT_TRUE(t.contains(99));
  EXPECT_EQ(t.parent_of(99), 0u);
  EXPECT_EQ(t.parent_of(1), 99u);
}

TEST(PriorityTree, PriorityFrameOnIdleStreamCreatesIt) {
  PriorityTree t;
  ASSERT_TRUE(t.reprioritize(5, {.dependency = 0, .weight_field = 99}).ok());
  EXPECT_TRUE(t.contains(5));
  EXPECT_EQ(t.weight_of(5), 100);
}

TEST(PriorityTree, Rfc533_DescendantBecomesParent) {
  // RFC 7540 §5.3.3 example: when a stream is made dependent on one of its
  // own descendants, the descendant is first moved up to the reprioritized
  // stream's former parent.
  PriorityTree t;
  ASSERT_TRUE(t.declare(1, {.dependency = 0}).ok());
  ASSERT_TRUE(t.declare(3, {.dependency = 1}).ok());
  ASSERT_TRUE(t.declare(5, {.dependency = 3}).ok());
  // Make 1 depend on 5 (its grandchild), non-exclusive.
  ASSERT_TRUE(t.reprioritize(1, {.dependency = 5}).ok());
  EXPECT_EQ(t.parent_of(5), 0u);  // moved to 1's old parent (root)
  EXPECT_EQ(t.parent_of(1), 5u);
  EXPECT_EQ(t.parent_of(3), 1u);  // untouched
}

TEST(PriorityTree, Rfc533_DescendantBecomesParentExclusive) {
  PriorityTree t;
  ASSERT_TRUE(t.declare(1, {.dependency = 0}).ok());
  ASSERT_TRUE(t.declare(3, {.dependency = 1}).ok());
  ASSERT_TRUE(t.declare(5, {.dependency = 3}).ok());
  ASSERT_TRUE(t.declare(7, {.dependency = 5}).ok());
  // Exclusive: 1 becomes 5's only child, adopting 5's former children (7).
  ASSERT_TRUE(
      t.reprioritize(1, {.dependency = 5, .exclusive = true}).ok());
  EXPECT_EQ(t.parent_of(5), 0u);
  EXPECT_EQ(t.children_of(5).size(), 1u);
  EXPECT_EQ(t.parent_of(1), 5u);
  EXPECT_TRUE(contains_child(t, 1, 7));
  EXPECT_TRUE(contains_child(t, 1, 3));
}

TEST(PriorityTree, RemoveRedistributesWeightProportionally) {
  // §5.3.4: closed stream's children move to its parent with weights scaled
  // by the closed stream's weight.
  PriorityTree t;
  ASSERT_TRUE(t.declare(1, {.dependency = 0, .weight_field = 31}).ok());  // w=32
  ASSERT_TRUE(t.declare(3, {.dependency = 1, .weight_field = 15}).ok());  // w=16
  ASSERT_TRUE(t.declare(5, {.dependency = 1, .weight_field = 47}).ok());  // w=48
  t.remove(1);
  EXPECT_FALSE(t.contains(1));
  EXPECT_EQ(t.parent_of(3), 0u);
  EXPECT_EQ(t.parent_of(5), 0u);
  // Children shared 16:48; scaled into parent weight 32 -> 8 and 24.
  EXPECT_EQ(t.weight_of(3), 8);
  EXPECT_EQ(t.weight_of(5), 24);
}

TEST(PriorityTree, RemoveUnknownOrRootIsNoOp) {
  PriorityTree t;
  t.remove(0);
  t.remove(77);
  EXPECT_EQ(t.size(), 0u);
}

TEST(PriorityTree, IsAncestorWalksRootPath) {
  PriorityTree t = build_paper_tree();
  EXPECT_TRUE(t.is_ancestor(A, E));
  EXPECT_TRUE(t.is_ancestor(B, E));
  EXPECT_FALSE(t.is_ancestor(C, E));
  EXPECT_TRUE(t.is_ancestor(0, A));
}

// ----------------------------------------------------------- scheduling

TEST(PriorityScheduler, ParentServedBeforeDependents) {
  PriorityTree t = build_paper_tree();
  std::map<std::uint32_t, int> pending = {{A, 2}, {B, 2}, {E, 2}};
  auto wants = [&](std::uint32_t id) { return pending[id] > 0; };
  // A (the common ancestor) must be fully drained before B; B before E.
  std::vector<std::uint32_t> order;
  while (std::uint32_t next = t.next_stream(wants)) {
    order.push_back(next);
    --pending[next];
    t.account(next, 1000);
  }
  ASSERT_EQ(order.size(), 6u);
  EXPECT_EQ(std::vector<std::uint32_t>(order.begin(), order.begin() + 2),
            (std::vector<std::uint32_t>{A, A}));
  EXPECT_EQ(std::vector<std::uint32_t>(order.begin() + 2, order.begin() + 4),
            (std::vector<std::uint32_t>{B, B}));
  EXPECT_EQ(std::vector<std::uint32_t>(order.begin() + 4, order.end()),
            (std::vector<std::uint32_t>{E, E}));
}

TEST(PriorityScheduler, SiblingsShareByWeight) {
  PriorityTree t;
  ASSERT_TRUE(t.declare(1, {.dependency = 0, .weight_field = 63}).ok());   // w=64
  ASSERT_TRUE(t.declare(3, {.dependency = 0, .weight_field = 191}).ok());  // w=192
  std::map<std::uint32_t, int> served = {{1, 0}, {3, 0}};
  auto wants = [](std::uint32_t) { return true; };
  for (int i = 0; i < 400; ++i) {
    const std::uint32_t next = t.next_stream(wants);
    ASSERT_NE(next, 0u);
    ++served[next];
    t.account(next, 1000);
  }
  // 64:192 = 1:3 split, within rounding.
  EXPECT_NEAR(static_cast<double>(served[3]) / 400.0, 0.75, 0.02);
}

TEST(PriorityScheduler, BlockedParentUnblocksSubtree) {
  // The flow-control interaction the paper highlights in §III-C: when the
  // parent cannot send (no window), dependents are served instead.
  PriorityTree t = build_paper_tree();
  std::map<std::uint32_t, bool> blocked = {{A, true}};
  std::map<std::uint32_t, int> pending = {{A, 1}, {B, 1}};
  auto wants = [&](std::uint32_t id) { return pending[id] > 0 && !blocked[id]; };
  EXPECT_EQ(t.next_stream(wants), B);
  blocked[A] = false;
  EXPECT_EQ(t.next_stream(wants), A);
}

TEST(PriorityScheduler, NothingEligibleReturnsZero) {
  PriorityTree t = build_paper_tree();
  auto wants = [](std::uint32_t) { return false; };
  EXPECT_EQ(t.next_stream(wants), 0u);
}

TEST(PriorityScheduler, DeepChainServedTopDown) {
  PriorityTree t;
  // 1 <- 3 <- 5 <- 7 (each depends on the previous).
  ASSERT_TRUE(t.declare(1, {.dependency = 0}).ok());
  ASSERT_TRUE(t.declare(3, {.dependency = 1}).ok());
  ASSERT_TRUE(t.declare(5, {.dependency = 3}).ok());
  ASSERT_TRUE(t.declare(7, {.dependency = 5}).ok());
  std::map<std::uint32_t, int> pending = {{1, 1}, {3, 1}, {5, 1}, {7, 1}};
  auto wants = [&](std::uint32_t id) { return pending[id] > 0; };
  std::vector<std::uint32_t> order;
  while (std::uint32_t next = t.next_stream(wants)) {
    order.push_back(next);
    --pending[next];
    t.account(next, 100);
  }
  EXPECT_EQ(order, (std::vector<std::uint32_t>{1, 3, 5, 7}));
}

}  // namespace
}  // namespace h2r::h2
