// Attack scenario pack + server-side mitigation: every scenario terminates
// in a bounded, classified state against every testbed profile; the
// hardened MitigationPolicy degrades gracefully (throttle -> RST ->
// ENHANCE_YOUR_CALM GOAWAY); mitigation frames are tagged by the annotator
// without disturbing the Table III quirk record; and results are
// deterministic (fingerprint-stable across runs).
#include <gtest/gtest.h>

#include <string>

#include "attack/scenario.h"
#include "core/client.h"
#include "core/probes.h"
#include "net/transport.h"
#include "server/engine.h"
#include "server/mitigation.h"
#include "trace/annotate.h"
#include "trace/metrics.h"
#include "trace/recorder.h"

namespace h2r::attack {
namespace {

/// CI-sized config: above every detector threshold, seconds per cell.
ScenarioConfig smoke(ScenarioKind kind) {
  ScenarioConfig cfg;
  cfg.kind = kind;
  cfg.rounds = 24;
  cfg.streams = 8;
  cfg.frames_per_round = 16;
  return cfg;
}

core::Target hardened_testbed(server::ServerProfile profile) {
  profile.mitigation = server::MitigationPolicy::hardened();
  return core::Target::testbed(profile);
}

TEST(AttackScenario, EveryScenarioBoundedOnEveryProfile) {
  for (const server::ServerProfile& profile : server::testbed_profiles()) {
    for (ScenarioKind kind : all_scenarios()) {
      for (bool mitigated : {false, true}) {
        const core::Target target =
            mitigated ? hardened_testbed(profile)
                      : core::Target::testbed(profile);
        const AttackResult r = AttackScenario(smoke(kind)).run(target);
        SCOPED_TRACE(profile.key + "/" + std::string(to_string(kind)) +
                     (mitigated ? "/on" : "/off"));
        EXPECT_TRUE(r.bounded());
        EXPECT_FALSE(r.deadline_hit);
        EXPECT_GT(r.rounds_run, 0u);
        if (!mitigated) {
          // Unhardened profiles reproduce the paper's servers: no
          // mitigation machinery may engage.
          EXPECT_EQ(r.final_level, server::MitigationLevel::kNone);
          EXPECT_EQ(r.suspected, trace::AttackClass::kNone);
          EXPECT_NE(r.termination, Termination::kMitigatedGoaway);
        }
      }
    }
  }
}

TEST(AttackScenario, UnmitigatedSlowReadPinsLinearlyInStreams) {
  // §VI amplification: each of the 8 streams pins a whole 512 KiB /large
  // response (the peak is sampled at acceptance, before the single octet
  // the tiny window lets out is delivered).
  const AttackResult r = AttackScenario(smoke(ScenarioKind::kSlowRead))
                             .run(core::Target::testbed(server::h2o_profile()));
  EXPECT_EQ(r.termination, Termination::kAttackerExhausted);
  EXPECT_EQ(r.peak_pinned_octets, 8u * 512u * 1024u);
  EXPECT_EQ(r.peak_active_streams, 8u);
}

TEST(AttackScenario, MitigatedSlowReadEscalatesToRstOffenders) {
  // The pinned-octets budget trips, throttle engages, then the pinning
  // streams are reset with ENHANCE_YOUR_CALM — which releases the memory,
  // so the ladder never needs the GOAWAY rung: the connection survives.
  ScenarioConfig cfg = smoke(ScenarioKind::kSlowRead);
  cfg.rounds = 64;
  const AttackResult r =
      AttackScenario(cfg).run(hardened_testbed(server::h2o_profile()));
  EXPECT_EQ(r.termination, Termination::kAttackerExhausted);
  EXPECT_EQ(r.final_level, server::MitigationLevel::kRstOffenders);
  EXPECT_EQ(r.suspected, trace::AttackClass::kSlowRead);
}

TEST(AttackScenario, MitigatedRapidResetEndsInDistinguishableGoaway) {
  const AttackResult r = AttackScenario(smoke(ScenarioKind::kRapidReset))
                             .run(hardened_testbed(server::nginx_profile()));
  EXPECT_EQ(r.termination, Termination::kMitigatedGoaway);
  EXPECT_TRUE(r.goaway_received);
  EXPECT_EQ(r.goaway_code, h2::ErrorCode::kEnhanceYourCalm);
  EXPECT_EQ(r.final_level, server::MitigationLevel::kGoaway);
  EXPECT_EQ(r.suspected, trace::AttackClass::kRapidReset);
}

TEST(AttackScenario, MitigatedFloodsClassifyAndTerminate) {
  for (ScenarioKind kind : {ScenarioKind::kPingFlood,
                            ScenarioKind::kSettingsFlood,
                            ScenarioKind::kPriorityChurn}) {
    SCOPED_TRACE(std::string(to_string(kind)));
    const AttackResult r = AttackScenario(smoke(kind))
                               .run(hardened_testbed(server::apache_profile()));
    EXPECT_EQ(r.termination, Termination::kMitigatedGoaway);
    EXPECT_EQ(r.goaway_code, h2::ErrorCode::kEnhanceYourCalm);
    EXPECT_EQ(r.suspected, expected_class(kind));
  }
}

TEST(AttackScenario, MitigatedSlowPostTripsAgeBudget) {
  // The dribble check ages in received frames (512 by default): 8 upload
  // streams at one DATA each per round cross it near round 64.
  ScenarioConfig cfg = smoke(ScenarioKind::kSlowPost);
  cfg.rounds = 96;
  const AttackResult r =
      AttackScenario(cfg).run(hardened_testbed(server::nghttpd_profile()));
  EXPECT_GE(r.final_level, server::MitigationLevel::kThrottle);
  EXPECT_EQ(r.suspected, trace::AttackClass::kSlowPost);
  EXPECT_TRUE(r.bounded());
}

TEST(AttackScenario, ResultFingerprintIsDeterministic) {
  for (ScenarioKind kind : all_scenarios()) {
    const core::Target target = hardened_testbed(server::tengine_profile());
    const AttackResult a = AttackScenario(smoke(kind)).run(target);
    const AttackResult b = AttackScenario(smoke(kind)).run(target);
    EXPECT_EQ(a.fingerprint(), b.fingerprint())
        << "scenario " << to_string(kind);
  }
}

TEST(AttackScenario, BenignBulkTransferNeverTripsMitigation) {
  // A well-behaved client pulling every /large resource pins megabytes
  // transiently but makes progress each round — the slow-read budget's
  // stall clause must keep mitigation disengaged.
  core::Target target = hardened_testbed(server::h2o_profile());
  auto server = target.make_server();
  core::ClientConnection client(target.client_options());
  for (int i = 0; i < 8; ++i) {
    client.send_request("/large/" + std::to_string(i));
  }
  net::LockstepTransport().run(client, server);
  EXPECT_EQ(server.mitigation_level(), server::MitigationLevel::kNone);
  EXPECT_EQ(server.pinned_response_octets(), 0u);
  for (std::uint32_t sid = 1; sid <= 15; sid += 2) {
    EXPECT_TRUE(client.stream_complete(sid)) << "stream " << sid;
    EXPECT_EQ(client.data_received(sid), 512u * 1024u);
  }
}

TEST(AttackScenario, SlowReadStanceMatchesAdHocIdiom) {
  // The promoted ClientOptions knob reproduces the historical bench idiom
  // byte-for-byte: announce a tiny INITIAL_WINDOW_SIZE, never replenish
  // stream windows.
  const core::ClientOptions stance = core::ClientOptions::slow_read_stance();
  ASSERT_EQ(stance.settings.size(), 1u);
  EXPECT_EQ(stance.settings[0].first, h2::SettingId::kInitialWindowSize);
  EXPECT_EQ(stance.settings[0].second, 1u);
  EXPECT_FALSE(stance.auto_stream_window_update);
  EXPECT_TRUE(stance.auto_connection_window_update);
  // with_initial_window replaces an existing entry rather than stacking.
  core::ClientOptions opts = core::ClientOptions::slow_read_stance(1);
  opts.with_initial_window(7);
  ASSERT_EQ(opts.settings.size(), 1u);
  EXPECT_EQ(opts.settings[0].second, 7u);
}

TEST(AttackAnnotation, MitigationFramesAreTaggedAndCounted) {
  // Run a mitigated rapid-reset under the wiretap: the escalation steps
  // appear as kMitigation events, the 0xb GOAWAY carries the
  // mitigation-goaway tag, and the metrics registry counts escalations.
  trace::VectorRecorder recorder;
  core::Target target = hardened_testbed(server::nginx_profile());
  target.recorder = &recorder;
  const AttackResult r = AttackScenario(smoke(ScenarioKind::kRapidReset))
                             .run(target);
  ASSERT_EQ(r.termination, Termination::kMitigatedGoaway);

  trace::annotate_violations(recorder.events());
  bool saw_escalation = false;
  bool goaway_tagged = false;
  bool rst_tagged = false;
  for (const trace::TraceEvent& ev : recorder.events()) {
    if (ev.kind == trace::EventKind::kMitigation) saw_escalation = true;
    for (const std::string& tag : ev.tags) {
      if (tag == trace::tags::kMitigationGoaway) goaway_tagged = true;
      if (tag == trace::tags::kMitigationRst) rst_tagged = true;
      // Mitigation reactions must never surface as Table III quirk tags —
      // a mitigated profile derives the same quirk row as its plain twin.
      EXPECT_TRUE(tag.rfind("mitigation-", 0) == 0) << "unexpected " << tag;
    }
  }
  EXPECT_TRUE(saw_escalation);
  EXPECT_TRUE(goaway_tagged);
  EXPECT_TRUE(rst_tagged);

  trace::MetricsRegistry metrics;
  trace::consume(metrics, recorder.events());
  EXPECT_GT(metrics.mitigation_events, 0u);
  EXPECT_NE(metrics.to_json().find("\"mitigation_events\""),
            std::string::npos);
}

}  // namespace
}  // namespace h2r::attack
