// SequenceDetector: per-class detection with bounded time-to-detect, zero
// false positives on the benign (and faulted) probe battery, report
// aggregation independent of H2R_THREADS sharding, and replay == live.
#include <gtest/gtest.h>

#include <string>

#include "attack/scenario.h"
#include "core/probes.h"
#include "corpus/population.h"
#include "corpus/scan.h"
#include "server/profile.h"
#include "trace/detector.h"
#include "trace/recorder.h"

namespace h2r::trace {
namespace {

attack::ScenarioConfig smoke(attack::ScenarioKind kind) {
  attack::ScenarioConfig cfg;
  cfg.kind = kind;
  cfg.rounds = 24;
  cfg.streams = 8;
  cfg.frames_per_round = 16;
  return cfg;
}

TEST(SequenceDetector, FlagsEveryAttackClassWithBoundedTimeToDetect) {
  for (attack::ScenarioKind kind : attack::all_scenarios()) {
    SCOPED_TRACE(std::string(to_string(kind)));
    SequenceDetector detector;
    core::Target target = core::Target::testbed(server::h2o_profile());
    target.recorder = &detector;
    (void)attack::AttackScenario(smoke(kind)).run(target);
    detector.finish();

    const DetectorReport& report = detector.report();
    const AttackClass expected = attack::expected_class(kind);
    EXPECT_EQ(report.connections, 1u);
    EXPECT_EQ(report.detections(expected), 1u);
    // Exactly the expected class — an attack of one class must not
    // cross-fire another's rule.
    EXPECT_EQ(report.total_detections(), 1u);
    // Detection happened mid-run, not at the end-of-trace fold.
    EXPECT_GT(report.mean_events_to_detect(expected), 0.0);
    EXPECT_GT(report.mean_rounds_to_detect(expected), 0.0);
    EXPECT_LT(report.mean_rounds_to_detect(expected), 24.0);
  }
}

TEST(SequenceDetector, BenignProbeBatteryScansClean) {
  // The whole Section III probe battery — which legitimately sends tiny
  // windows, PRIORITY frames, stream cancels and PINGs — must stay below
  // every rule threshold at default settings.
  const corpus::Population pop =
      corpus::generate_population(corpus::Epoch::kExp2, 7, /*scale=*/1000);
  ASSERT_FALSE(pop.sites.empty());

  corpus::ScanOptions opts;
  opts.threads = 2;
  opts.detect_attacks = true;
  const corpus::ScanReport report = corpus::scan_population(pop, opts);
  EXPECT_GT(report.attack_detections.connections, 0u);
  EXPECT_EQ(report.attack_detections.total_detections(), 0u);
}

TEST(SequenceDetector, FaultedBenignScanStillCleanAndCoversOutcomes) {
  // Truncated / stalled / disconnected delivery must not manufacture
  // attack signatures either, and nothing may hang.
  const corpus::Population pop =
      corpus::generate_population(corpus::Epoch::kExp2, 7, /*scale=*/1000);

  corpus::ScanOptions opts;
  opts.threads = 2;
  opts.detect_attacks = true;
  opts.fault_injection = true;
  const corpus::ScanReport report = corpus::scan_population(pop, opts);
  EXPECT_EQ(report.attack_detections.total_detections(), 0u);
  EXPECT_GT(report.fault_injected, 0u);
  EXPECT_EQ(report.fault_deadline_hits, 0u);
  // The faulted scan exercises more than one site-outcome class.
  EXPECT_GT(report.sites_ok + report.sites_retried_ok, 0u);
  EXPECT_GT(report.sites_truncated + report.sites_disconnected +
                report.sites_timed_out,
            0u);
}

TEST(SequenceDetector, ReportIndependentOfThreadCount) {
  // flagged[] and the ttd histograms are sums / bucket-wise sums, so the
  // sharding across workers must not show in the merged report.
  const corpus::Population pop =
      corpus::generate_population(corpus::Epoch::kExp2, 7, /*scale=*/1000);

  corpus::ScanOptions single;
  single.threads = 1;
  single.detect_attacks = true;
  single.fault_injection = true;
  corpus::ScanOptions pooled = single;
  pooled.threads = 3;

  const corpus::ScanReport a = corpus::scan_population(pop, single);
  const corpus::ScanReport b = corpus::scan_population(pop, pooled);
  EXPECT_EQ(a.attack_detections.to_json(), b.attack_detections.to_json());
  EXPECT_EQ(a.attack_detections.connections, b.attack_detections.connections);
}

TEST(SequenceDetector, ReplayOverRetainedTraceEqualsLiveAttachment) {
  for (attack::ScenarioKind kind :
       {attack::ScenarioKind::kSlowRead, attack::ScenarioKind::kRapidReset}) {
    SCOPED_TRACE(std::string(to_string(kind)));
    // Live: the detector is the wiretap sink.
    SequenceDetector live;
    core::Target live_target = core::Target::testbed(server::nginx_profile());
    live_target.recorder = &live;
    (void)attack::AttackScenario(smoke(kind)).run(live_target);
    live.finish();

    // Replay: a VectorRecorder retains the trace, the detector reads it
    // back afterwards.
    VectorRecorder recorder;
    core::Target replay_target =
        core::Target::testbed(server::nginx_profile());
    replay_target.recorder = &recorder;
    (void)attack::AttackScenario(smoke(kind)).run(replay_target);
    SequenceDetector replay;
    replay.observe_all(recorder.events());
    replay.finish();

    EXPECT_EQ(live.report().to_json(), replay.report().to_json());
  }
}

TEST(SequenceDetector, LiveDetectionsVisibleBeforeConnectionEnds) {
  // An inline defense reads live_detections() mid-connection; the report
  // only folds at the next kConnectionStart or finish().
  SequenceDetector detector;
  core::Target target = core::Target::testbed(server::h2o_profile());
  target.recorder = &detector;
  (void)attack::AttackScenario(smoke(attack::ScenarioKind::kPingFlood))
      .run(target);
  ASSERT_EQ(detector.live_detections().size(), 1u);
  EXPECT_EQ(detector.live_detections()[0].cls, AttackClass::kControlFlood);
  EXPECT_EQ(detector.report().total_detections(), 0u);  // not folded yet
  detector.finish();
  EXPECT_EQ(detector.report().total_detections(), 1u);
}

TEST(DetectorReport, JsonIsStableAndMergeIsCommutative) {
  DetectorReport a;
  a.connections = 2;
  a.flagged[static_cast<std::size_t>(AttackClass::kSlowRead)] = 1;
  a.events_to_detect[static_cast<std::size_t>(AttackClass::kSlowRead)].add(40);
  a.rounds_to_detect[static_cast<std::size_t>(AttackClass::kSlowRead)].add(12);
  DetectorReport b;
  b.connections = 1;
  b.flagged[static_cast<std::size_t>(AttackClass::kRapidReset)] = 1;
  b.events_to_detect[static_cast<std::size_t>(AttackClass::kRapidReset)].add(9);
  b.rounds_to_detect[static_cast<std::size_t>(AttackClass::kRapidReset)].add(2);

  DetectorReport ab = a;
  ab.merge(b);
  DetectorReport ba = b;
  ba.merge(a);
  EXPECT_EQ(ab.to_json(), ba.to_json());
  EXPECT_EQ(ab.connections, 3u);
  EXPECT_EQ(ab.total_detections(), 2u);
  EXPECT_NE(ab.to_json().find("\"slow-read\""), std::string::npos);
}

}  // namespace
}  // namespace h2r::trace
