// h2c bootstrap and graceful-shutdown lifecycle tests for the engine.
#include <gtest/gtest.h>

#include "core/client.h"
#include "net/transport.h"
#include "net/upgrade.h"
#include "server/engine.h"

namespace h2r {
namespace {

using core::ClientConnection;
using server::Http2Server;
using server::Site;

/// The net::Transport replacement for the retired run_exchange shim: one
/// lockstep connection pump, wired to the client's recorder.
void pump(ClientConnection& client, Http2Server& server) {
  net::LockstepTransport(client.recorder()).run(client, server);
}

void feed_text(Http2Server& server, const std::string& text) {
  server.receive(
      {reinterpret_cast<const std::uint8_t*>(text.data()), text.size()});
}

std::string drain_text_head(Http2Server& server) {
  const Bytes out = server.take_output();
  // HTTP/1.1 text ends at the first CRLFCRLF; frames may follow.
  const std::string all(out.begin(), out.end());
  const auto end = all.find("\r\n\r\n");
  return end == std::string::npos ? all : all.substr(0, end + 4);
}

TEST(H2cLifecycle, UpgradeServesTheOriginalRequestOnStream1) {
  Http2Server server(server::nghttpd_profile(), Site::standard_testbed_site(),
                     Http2Server::StartMode::kH2c);
  net::UpgradeRequest req;
  req.host = "testbed.local";
  feed_text(server, net::render_upgrade_request(req));

  const Bytes out = server.take_output();
  const std::string text(out.begin(), out.end());
  ASSERT_NE(text.find("HTTP/1.1 101 Switching Protocols"), std::string::npos);
  EXPECT_TRUE(server.upgraded());
  EXPECT_TRUE(server.alive());

  // After the 101 come the server preface and the stream-1 response.
  const auto frames_start = text.find("\r\n\r\n") + 4;
  ClientConnection client;  // parses frames; its own preface goes nowhere
  (void)client.take_output();
  client.receive({out.data() + frames_start, out.size() - frames_start});
  // Complete the h2 side: client preface + SETTINGS, then exchange.
  feed_text(server, std::string(h2::kClientPreface));
  pump(client, server);
  EXPECT_TRUE(client.stream_complete(1));
  EXPECT_EQ(client.data_received(1), 2048u);  // the site's front page
  auto headers = client.response_headers(1);
  ASSERT_TRUE(headers.has_value());
  EXPECT_EQ(hpack::find_header(*headers, ":status"), "200");
}

TEST(H2cLifecycle, SmuggledSettingsGovernTheUpgradedConnection) {
  Http2Server server(server::nghttpd_profile(), Site::standard_testbed_site(),
                     Http2Server::StartMode::kH2c);
  net::UpgradeRequest req;
  req.host = "x";
  req.settings = {{h2::SettingId::kInitialWindowSize, 100}};
  feed_text(server, net::render_upgrade_request(req));
  const Bytes out = server.take_output();
  const std::string text(out.begin(), out.end());
  ASSERT_NE(text.find("101"), std::string::npos);
  // Stream-1 DATA must respect the smuggled 100-octet window: with no
  // further WINDOW_UPDATEs only 100 octets may have been sent.
  const auto frames_start = text.find("\r\n\r\n") + 4;
  ClientConnection client;
  (void)client.take_output();
  client.receive({out.data() + frames_start, out.size() - frames_start});
  EXPECT_LE(client.data_received(1), 100u);
}

TEST(H2cLifecycle, DecliningServerAnswersHttp11AndCloses) {
  auto profile = server::nginx_profile();
  profile.supports_h2c = false;
  Http2Server server(profile, Site::standard_testbed_site(),
                     Http2Server::StartMode::kH2c);
  net::UpgradeRequest req;
  req.host = "x";
  feed_text(server, net::render_upgrade_request(req));
  EXPECT_FALSE(server.upgraded());
  EXPECT_FALSE(server.alive());
  EXPECT_NE(drain_text_head(server).find("HTTP/1.1 200 OK"),
            std::string::npos);
}

TEST(H2cLifecycle, PartialRequestWaitsForMoreBytes) {
  Http2Server server(server::nghttpd_profile(), Site::standard_testbed_site(),
                     Http2Server::StartMode::kH2c);
  net::UpgradeRequest req;
  req.host = "x";
  const std::string text = net::render_upgrade_request(req);
  feed_text(server, text.substr(0, 25));
  EXPECT_TRUE(server.take_output().empty());  // nothing yet
  feed_text(server, text.substr(25));
  EXPECT_TRUE(server.upgraded());
}

TEST(Shutdown, GracefulDrainCompletesActiveStreams) {
  Http2Server server(server::h2o_profile(), Site::standard_testbed_site());
  core::ClientOptions opts;
  opts.auto_stream_window_update = false;  // keep the stream open a while
  ClientConnection client(opts);
  const auto sid = client.send_request("/large/0");
  pump(client, server);
  EXPECT_FALSE(client.stream_complete(sid));

  server.shutdown();
  client.receive(server.take_output());
  ASSERT_TRUE(client.goaway_received());
  EXPECT_EQ(client.goaway()->error, h2::ErrorCode::kNoError);
  EXPECT_EQ(client.goaway()->last_stream_id, sid);
  EXPECT_TRUE(server.alive());  // still draining

  // The in-flight stream finishes...
  client.send_window_update(sid, 1 << 20);
  pump(client, server);
  EXPECT_TRUE(client.stream_complete(sid));
  // ...and the drained connection dies.
  EXPECT_FALSE(server.alive());
}

TEST(Shutdown, NewStreamsRefusedWhileDraining) {
  Http2Server server(server::h2o_profile(), Site::standard_testbed_site());
  core::ClientOptions opts;
  opts.auto_stream_window_update = false;
  ClientConnection client(opts);
  const auto before = client.send_request("/large/0");
  pump(client, server);
  server.shutdown();
  const auto after = client.send_request("/small");
  pump(client, server);
  EXPECT_EQ(client.rst_on(after),
            std::optional<h2::ErrorCode>(h2::ErrorCode::kRefusedStream));
  EXPECT_FALSE(client.rst_on(before).has_value());
}

TEST(Shutdown, IdleConnectionDiesImmediately) {
  Http2Server server(server::h2o_profile(), Site::standard_testbed_site());
  ClientConnection client;
  pump(client, server);
  server.shutdown();
  EXPECT_FALSE(server.alive());
}

}  // namespace
}  // namespace h2r
