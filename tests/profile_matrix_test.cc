// Parameterized conformance sweep: every server profile (testbed + corpus
// families) must sustain the complete probe suite and basic workloads
// without surprises — the "no profile left untested" matrix.
#include <gtest/gtest.h>

#include "core/report.h"
#include "net/transport.h"

namespace h2r::core {
namespace {

/// The net::Transport replacement for the retired run_exchange shim.
void pump(ClientConnection& client, server::Http2Server& server) {
  net::LockstepTransport(client.recorder()).run(client, server);
}

const std::vector<std::string>& all_profile_keys() {
  static const std::vector<std::string> kKeys = {
      "nginx",   "litespeed",        "h2o",
      "nghttpd", "tengine",          "apache",
      "gse",     "cloudflare-nginx", "ideawebserver",
      "tengine-aserver"};
  return kKeys;
}

class ProfileMatrix : public ::testing::TestWithParam<std::string> {
 protected:
  Target target() { return Target::testbed(server::profile_by_key(GetParam())); }
};

TEST_P(ProfileMatrix, ServesBasicGet) {
  auto t = target();
  auto server = t.make_server();
  ClientConnection client;
  const auto sid = client.send_request("/small");
  pump(client, server);
  ASSERT_TRUE(client.stream_complete(sid)) << GetParam();
  EXPECT_EQ(client.data_received(sid), 256u);
  auto headers = client.response_headers(sid);
  ASSERT_TRUE(headers.has_value());
  EXPECT_EQ(hpack::find_header(*headers, "server"),
            t.profile.server_header);
}

TEST_P(ProfileMatrix, ServesManyConcurrentRequests) {
  auto t = target();
  auto server = t.make_server();
  ClientConnection client;
  std::vector<std::uint32_t> streams;
  for (int i = 0; i < 8; ++i) {
    streams.push_back(client.send_request("/object/" + std::to_string(i % 8)));
  }
  pump(client, server);
  for (auto sid : streams) {
    EXPECT_TRUE(client.stream_complete(sid)) << GetParam() << " stream " << sid;
    EXPECT_EQ(client.data_received(sid), 64u * 1024u);
  }
}

TEST_P(ProfileMatrix, AnswersPing) {
  auto t = target();
  auto server = t.make_server();
  ClientConnection client;
  client.send_ping({0xAA, 0xBB, 0xCC, 0xDD, 0xEE, 0xFF, 0x00, 0x11});
  pump(client, server);
  const auto pings = client.frames_of(h2::FrameType::kPing);
  ASSERT_EQ(pings.size(), 1u) << GetParam();
  EXPECT_TRUE(pings[0]->frame.has_flag(h2::flags::kAck));
}

TEST_P(ProfileMatrix, FullCharacterizationCompletes) {
  Rng rng(77);
  const auto c = characterize(target(), rng);
  // Whatever the profile, the characterization must be internally coherent.
  EXPECT_TRUE(c.negotiation.alpn_h2) << GetParam();  // all profiles do ALPN
  EXPECT_TRUE(c.multiplexing.supported) << GetParam();
  EXPECT_TRUE(c.ping.supported) << GetParam();
  EXPECT_TRUE(c.hpack.ran) << GetParam();
  EXPECT_GT(c.hpack.ratio, 0.0);
  EXPECT_LE(c.hpack.ratio, 1.001);
  EXPECT_TRUE(c.priority.ran) << GetParam();
  EXPECT_EQ(c.row_values().size(), Characterization::row_labels().size());
}

TEST_P(ProfileMatrix, SurvivesAbruptClientGoaway) {
  auto t = target();
  auto server = t.make_server();
  ClientConnection client;
  client.send_request("/large/0");
  client.send_frame(h2::make_goaway(0, h2::ErrorCode::kNoError));
  pump(client, server);
  // Connection drains; new streams after GOAWAY would be refused but the
  // engine must not crash or loop.
  SUCCEED();
}

TEST_P(ProfileMatrix, PushOnlyWhenProfileSupportsIt) {
  auto t = target();
  const auto r = probe_server_push(t);
  EXPECT_EQ(r.push_received, t.profile.supports_push) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllProfiles, ProfileMatrix,
                         ::testing::ValuesIn(all_profile_keys()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace h2r::core
