// ClientConnection unit tests: the observation vocabulary every probe is
// built from must itself be trustworthy.
#include <gtest/gtest.h>

#include "core/client.h"
#include "net/transport.h"
#include "server/engine.h"

namespace h2r::core {
namespace {

using server::Http2Server;
using server::Site;

Http2Server make_server() {
  return Http2Server(server::h2o_profile(), Site::standard_testbed_site());
}

/// The net::Transport replacement for the retired run_exchange shim: one
/// lockstep connection pump, wired to the client's recorder.
void pump(ClientConnection& client, Http2Server& server) {
  net::LockstepTransport(client.recorder()).run(client, server);
}

TEST(Client, EmitsPrefaceAndSettingsFirst) {
  ClientConnection client;
  const Bytes out = client.take_output();
  ASSERT_GT(out.size(), h2::kClientPreface.size());
  EXPECT_EQ(std::string(out.begin(),
                        out.begin() + static_cast<std::ptrdiff_t>(
                                          h2::kClientPreface.size())),
            h2::kClientPreface);
  h2::FrameParser parser;
  parser.feed({out.data() + h2::kClientPreface.size(),
               out.size() - h2::kClientPreface.size()});
  auto first = parser.next();
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(first->ok());
  EXPECT_EQ(first->value().type(), h2::FrameType::kSettings);
}

TEST(Client, PlantsRequestedSettings) {
  ClientConnection client(
      {.settings = {{h2::SettingId::kInitialWindowSize, 1},
                    {h2::SettingId::kEnablePush, 0}}});
  const Bytes out = client.take_output();
  h2::FrameParser parser;
  parser.feed({out.data() + h2::kClientPreface.size(),
               out.size() - h2::kClientPreface.size()});
  auto first = parser.next();
  ASSERT_TRUE(first.has_value() && first->ok());
  const auto& entries = first->value().as<h2::SettingsPayload>().entries;
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].first, 0x4);
  EXPECT_EQ(entries[0].second, 1u);
}

TEST(Client, StreamIdsAreOddAndIncreasing) {
  ClientConnection client;
  EXPECT_EQ(client.send_request("/a"), 1u);
  EXPECT_EQ(client.send_request("/b"), 3u);
  EXPECT_EQ(client.send_request("/c"), 5u);
  EXPECT_EQ(client.last_stream_id(), 5u);
}

TEST(Client, EventsPreserveArrivalOrderAndSequence) {
  auto server = make_server();
  ClientConnection client;
  client.send_request("/small");
  pump(client, server);
  const auto& events = client.events();
  ASSERT_GE(events.size(), 3u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].sequence, i);
  }
  // SETTINGS arrives before any response frame.
  EXPECT_EQ(events[0].frame.type(), h2::FrameType::kSettings);
}

TEST(Client, FramesOfFiltersByTypeAndStream) {
  auto server = make_server();
  ClientConnection client;
  const auto a = client.send_request("/small");
  const auto b = client.send_request("/style.css");
  pump(client, server);
  const auto data_a = client.frames_of(h2::FrameType::kData, a);
  const auto data_b = client.frames_of(h2::FrameType::kData, b);
  const auto all_data = client.frames_of(h2::FrameType::kData);
  EXPECT_FALSE(data_a.empty());
  EXPECT_FALSE(data_b.empty());
  EXPECT_EQ(all_data.size(), data_a.size() + data_b.size());
  for (const auto* ev : data_a) EXPECT_EQ(ev->frame.stream_id, a);
}

TEST(Client, RecordsServerSettingsAndAcks) {
  auto server = make_server();
  ClientConnection client;
  pump(client, server);
  EXPECT_TRUE(client.server_settings_received());
  EXPECT_EQ(client.server_settings().max_frame_size(), 16'777'215u);
  EXPECT_GT(client.server_settings_entry_count(), 0u);
}

TEST(Client, AnswersServerPing) {
  // If the *server* pinged us we must ACK — exercised via a raw frame.
  ClientConnection client;
  const Bytes ping = h2::serialize_frame(h2::make_ping({1, 2, 3, 4, 5, 6, 7, 8}));
  client.receive(ping);
  const Bytes out = client.take_output();
  // Skip preface + SETTINGS, find the PING ACK.
  h2::FrameParser parser;
  parser.feed({out.data() + h2::kClientPreface.size(),
               out.size() - h2::kClientPreface.size()});
  bool saw_ack = false;
  while (auto f = parser.next()) {
    ASSERT_TRUE(f->ok());
    if (f->value().type() == h2::FrameType::kPing &&
        f->value().has_flag(h2::flags::kAck)) {
      saw_ack = true;
    }
  }
  EXPECT_TRUE(saw_ack);
}

TEST(Client, ParseErrorPoisonsConnection) {
  ClientConnection client;
  // A 7-octet PING violates §6.7's fixed length: FRAME_SIZE_ERROR.
  Bytes bogus = {0x00, 0x00, 0x07, 0x06, 0x00, 0x00, 0x00, 0x00, 0x00,
                 1,    2,    3,    4,    5,    6,    7};
  client.receive(bogus);
  EXPECT_FALSE(client.alive());
}

TEST(Client, RstRecordsCode) {
  ClientConnection client;
  client.receive(h2::serialize_frame(
      h2::make_rst_stream(5, h2::ErrorCode::kEnhanceYourCalm)));
  EXPECT_EQ(client.rst_on(5),
            std::optional<h2::ErrorCode>(h2::ErrorCode::kEnhanceYourCalm));
  EXPECT_EQ(client.rst_on(7), std::nullopt);
}

TEST(Client, GoawayRecordsCodeAndDebug) {
  ClientConnection client;
  client.receive(h2::serialize_frame(
      h2::make_goaway(9, h2::ErrorCode::kProtocolError, "boom")));
  ASSERT_TRUE(client.goaway_received());
  EXPECT_EQ(client.goaway()->last_stream_id, 9u);
  EXPECT_EQ(std::string(client.goaway()->debug_data.begin(),
                        client.goaway()->debug_data.end()),
            "boom");
}

TEST(Client, AutoWindowUpdatesCanBeDisabledIndependently) {
  // Connection updates off, stream updates on: the server can refill
  // streams but the connection window eventually starves.
  auto server = make_server();
  ClientOptions opts;
  opts.auto_connection_window_update = false;
  opts.auto_stream_window_update = true;
  ClientConnection client(opts);
  const auto sid = client.send_request("/large/0");  // 512 KiB
  pump(client, server);
  EXPECT_EQ(client.data_received(sid), h2::kDefaultInitialWindowSize);
  EXPECT_FALSE(client.stream_complete(sid));
}

}  // namespace
}  // namespace h2r::core
