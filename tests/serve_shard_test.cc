// Sharded-serving tests: zero-error loopback runs at 2 and 4 shards, the
// acceptor fallback's deterministic round-robin, merged-stats = per-shard
// sums, GOAWAY on every shard at drain (with an untorn merged trace), a
// fingerprint-identity check that sharding never alters wire behaviour, and
// the response header-block cache's byte-identity guarantees.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/client.h"
#include "h2/constants.h"
#include "net/transport.h"
#include "netio/load.h"
#include "netio/serve_shard.h"
#include "server/engine.h"
#include "server/profile.h"
#include "server/site.h"
#include "trace/recorder.h"

namespace h2r {
namespace {

// --------------------------------------------------------------- harness

/// Runs a ShardedServe on a background thread; stop() drains gracefully.
struct ShardedRunner {
  explicit ShardedRunner(const netio::ShardedServeOptions& opts) {
    auto created = netio::ShardedServe::create(opts);
    EXPECT_TRUE(created.ok()) << created.status().message();
    if (!created.ok()) return;
    serve = std::move(created.value());
    thread = std::thread([this] {
      const Status run = serve->run();
      EXPECT_TRUE(run.ok()) << run.message();
    });
  }

  void stop() {
    if (!serve || stopped) return;
    serve->request_shutdown();
    thread.join();
    stopped = true;
  }

  ~ShardedRunner() { stop(); }

  std::unique_ptr<netio::ShardedServe> serve;
  std::thread thread;
  bool stopped = false;
};

/// Everything a client can observe about a conversation, flattened into a
/// comparable string (same shape as netio_test's lockstep-identity helper).
std::string fingerprint(const core::ClientConnection& client) {
  std::string out;
  for (const auto& received : client.events()) {
    out += std::to_string(static_cast<int>(received.frame.type()));
    out += ":" + std::to_string(received.frame.stream_id);
    out += ":" + std::to_string(static_cast<int>(received.frame.flags));
    out += ":" + std::to_string(received.header_block_size);
    if (received.headers.has_value()) {
      for (const auto& header : *received.headers) {
        out += "|" + header.name + "=" + header.value;
      }
    }
    out += "\n";
  }
  return out;
}

/// Pumps one scripted GET (plus any promised pushes) through @p port and
/// returns the client-side fingerprint.
std::string sharded_socket_fingerprint(std::uint16_t port) {
  auto sock = netio::SocketClient::connect("127.0.0.1", port);
  EXPECT_TRUE(sock.ok()) << sock.status().message();
  if (!sock.ok()) return {};
  auto& client = sock.value()->client();
  const std::uint32_t sid = client.send_request("/");
  const Status pumped =
      sock.value()->pump_until([sid](core::ClientConnection& c) {
        if (!c.stream_complete(sid)) return false;
        for (const auto& [pushed_id, headers] : c.pushes()) {
          (void)headers;
          if (!c.stream_complete(pushed_id)) return false;
        }
        return true;
      });
  EXPECT_TRUE(pumped.ok()) << pumped.message();
  EXPECT_TRUE(sock.value()->finish().ok());
  return fingerprint(client);
}

// ------------------------------------------------ zero-error sharded runs

void run_sharded_load(unsigned shards, bool force_fallback) {
  netio::ShardedServeOptions opts;
  opts.base.profile_key = "nginx";
  opts.shards = shards;
  opts.force_accept_fallback = force_fallback;
  ShardedRunner runner(opts);
  ASSERT_TRUE(runner.serve);

  netio::LoadOptions load;
  load.port = runner.serve->port();
  load.connections = static_cast<int>(shards) * 2;
  load.requests = 400;
  load.streams = 4;
  load.threads = 2;
  const netio::LoadReport report = netio::run_load(load);
  EXPECT_EQ(report.completed, 400u);
  EXPECT_EQ(report.failed, 0u);
  EXPECT_EQ(report.total_errors(), 0u);
  EXPECT_EQ(report.clean_closes, static_cast<std::uint64_t>(load.connections));

  runner.stop();
  const netio::ServeStats& stats = runner.serve->stats();
  EXPECT_EQ(stats.accepted, static_cast<std::uint64_t>(load.connections));
  EXPECT_EQ(stats.served_clean, static_cast<std::uint64_t>(load.connections));
  EXPECT_TRUE(stats.errors.empty());
  EXPECT_EQ(stats.trace_drops, 0u);
  // Repeated GETs for the same resources must hit the header-block cache.
  EXPECT_GT(stats.header_cache_hits, 0u);
}

TEST(ShardedServe, TwoShardsServeLoadWithZeroErrors) {
  run_sharded_load(2, /*force_fallback=*/false);
}

TEST(ShardedServe, FourShardsServeLoadWithZeroErrors) {
  run_sharded_load(4, /*force_fallback=*/false);
}

TEST(ShardedServe, FallbackAcceptorServesLoadWithZeroErrors) {
  run_sharded_load(3, /*force_fallback=*/true);
}

// ------------------------------------------- deterministic fallback intake

TEST(ShardedServe, FallbackRoundRobinsConnectionsAcrossShards) {
  netio::ShardedServeOptions opts;
  opts.base.profile_key = "nginx";
  opts.shards = 3;
  opts.force_accept_fallback = true;
  ShardedRunner runner(opts);
  ASSERT_TRUE(runner.serve);
  EXPECT_FALSE(runner.serve->used_reuseport());
  EXPECT_EQ(runner.serve->shard_count(), 3u);

  // Connect strictly one at a time — completing a request proves the accept
  // happened — so accept order (and thus the round-robin) is deterministic.
  for (int i = 0; i < 6; ++i) {
    auto sock = netio::SocketClient::connect("127.0.0.1", runner.serve->port());
    ASSERT_TRUE(sock.ok()) << sock.status().message();
    auto& client = sock.value()->client();
    const std::uint32_t sid = client.send_request("/");
    ASSERT_TRUE(sock.value()
                    ->pump_until([sid](core::ClientConnection& c) {
                      return c.stream_complete(sid);
                    })
                    .ok());
    EXPECT_TRUE(sock.value()->finish().ok());
  }

  runner.stop();
  // Connection i lands on shard i % 3: exactly two per shard.
  for (std::size_t shard = 0; shard < 3; ++shard) {
    EXPECT_EQ(runner.serve->shard_stats(shard).accepted, 2u)
        << "shard " << shard;
  }
}

// -------------------------------------------------- merged-stats identity

TEST(ShardedServe, MergedStatsEqualPerShardSums) {
  netio::ShardedServeOptions opts;
  opts.base.profile_key = "nginx";
  opts.shards = 2;
  opts.force_accept_fallback = true;  // both shards are guaranteed traffic
  ShardedRunner runner(opts);
  ASSERT_TRUE(runner.serve);

  netio::LoadOptions load;
  load.port = runner.serve->port();
  load.connections = 4;
  load.requests = 200;
  load.streams = 2;
  const netio::LoadReport report = netio::run_load(load);
  EXPECT_EQ(report.total_errors(), 0u);

  runner.stop();
  netio::ServeStats summed;
  for (std::size_t shard = 0; shard < runner.serve->shard_count(); ++shard) {
    summed.merge(runner.serve->shard_stats(shard));
  }
  const netio::ServeStats& merged = runner.serve->stats();
  EXPECT_EQ(merged.accepted, summed.accepted);
  EXPECT_EQ(merged.served_clean, summed.served_clean);
  EXPECT_EQ(merged.disconnected, summed.disconnected);
  EXPECT_EQ(merged.declined_h1, summed.declined_h1);
  EXPECT_EQ(merged.accept_refused, summed.accept_refused);
  EXPECT_EQ(merged.drain_expired, summed.drain_expired);
  EXPECT_EQ(merged.rounds, summed.rounds);
  EXPECT_EQ(merged.bytes_in, summed.bytes_in);
  EXPECT_EQ(merged.bytes_out, summed.bytes_out);
  EXPECT_EQ(merged.trace_drops, summed.trace_drops);
  EXPECT_EQ(merged.header_cache_hits, summed.header_cache_hits);
  EXPECT_EQ(merged.header_cache_misses, summed.header_cache_misses);
  EXPECT_EQ(merged.errors, summed.errors);
  // Each shard did real work — the sums are not trivially one shard's.
  EXPECT_GT(runner.serve->shard_stats(0).accepted, 0u);
  EXPECT_GT(runner.serve->shard_stats(1).accepted, 0u);
}

// -------------------------------------------------------- drain broadcast

TEST(ShardedServe, DrainSendsGoawayOnEveryShardAndMergesTraceUntorn) {
  trace::VectorRecorder tape;
  netio::ShardedServeOptions opts;
  opts.base.profile_key = "nginx";
  opts.base.recorder = &tape;
  opts.shards = 3;
  opts.force_accept_fallback = true;  // one live connection per shard
  ShardedRunner runner(opts);
  ASSERT_TRUE(runner.serve);

  std::vector<std::unique_ptr<netio::SocketClient>> clients;
  for (int i = 0; i < 3; ++i) {
    auto sock = netio::SocketClient::connect("127.0.0.1", runner.serve->port());
    ASSERT_TRUE(sock.ok()) << sock.status().message();
    const std::uint32_t sid = sock.value()->client().send_request("/");
    ASSERT_TRUE(sock.value()
                    ->pump_until([sid](core::ClientConnection& c) {
                      return c.stream_complete(sid);
                    })
                    .ok());
    clients.push_back(std::move(sock.value()));
  }

  // Drain with one idle connection parked on every shard: the broadcast
  // must reach all three reactors, and each engine must GOAWAY its peer.
  runner.serve->request_shutdown();
  for (auto& sock : clients) {
    const Status pumped = sock->pump_until(
        [](core::ClientConnection& c) { return c.goaway_received(); });
    EXPECT_TRUE(pumped.ok()) << pumped.message();
    EXPECT_TRUE(sock->client().goaway_received());
  }
  clients.clear();
  runner.stop();

  const netio::ServeStats& stats = runner.serve->stats();
  EXPECT_EQ(stats.accepted, 3u);
  EXPECT_EQ(stats.served_clean, 3u);
  EXPECT_EQ(stats.drain_expired, 0u);
  EXPECT_EQ(stats.trace_drops, 0u);

  // The merged tape holds one contiguous segment per connection, and every
  // segment carries the drain GOAWAY (s2c, type 0x7).
  int segments = 0;
  std::vector<bool> goaway_in_segment;
  for (const auto& event : tape.events()) {
    if (event.kind == trace::EventKind::kConnectionStart) {
      ++segments;
      goaway_in_segment.push_back(false);
      continue;
    }
    ASSERT_GT(segments, 0) << "record before any kConnectionStart";
    if (event.kind == trace::EventKind::kFrame &&
        event.dir == trace::Direction::kServerToClient &&
        event.frame_type == static_cast<std::uint8_t>(h2::FrameType::kGoaway)) {
      goaway_in_segment.back() = true;
    }
  }
  EXPECT_EQ(segments, 3);
  for (std::size_t i = 0; i < goaway_in_segment.size(); ++i) {
    EXPECT_TRUE(goaway_in_segment[i]) << "connection segment " << i;
  }
}

// --------------------------------------------------- wire-behaviour parity

/// The single-ServeLoop-equivalent reference: one GET served in-process.
std::string lockstep_reference(const std::string& profile_key) {
  server::Http2Server server(server::profile_by_key(profile_key),
                             server::Site::standard_testbed_site());
  core::ClientConnection client;
  client.send_request("/");
  net::LockstepTransport().run(client, server);
  return fingerprint(client);
}

TEST(ShardedServe, ShardingNeverAltersWireBehaviour) {
  for (const std::string profile : {"nginx", "h2o"}) {
    const std::string reference = lockstep_reference(profile);
    ASSERT_FALSE(reference.empty());
    for (const bool fallback : {false, true}) {
      netio::ShardedServeOptions opts;
      opts.base.profile_key = profile;
      opts.shards = 2;
      opts.force_accept_fallback = fallback;
      ShardedRunner runner(opts);
      ASSERT_TRUE(runner.serve);
      EXPECT_EQ(sharded_socket_fingerprint(runner.serve->port()), reference)
          << profile << (fallback ? " fallback" : " reuseport");
    }
  }
}

// ------------------------------------------------- header-block cache

struct LockstepOutcome {
  std::string print;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};

/// Serves @p repeats GETs for "/" over one lockstep connection, optionally
/// shrinking the server's HPACK encode table mid-run via client SETTINGS.
LockstepOutcome serve_repeats(const std::string& profile_key, server::Site site,
                              bool cache_on, int repeats,
                              bool resize_table_mid_run) {
  server::Http2Server server(server::profile_by_key(profile_key),
                             std::move(site));
  server.set_header_block_cache(cache_on);
  core::ClientConnection client;
  client.send_request("/");
  if (resize_table_mid_run) {
    client.send_settings({{h2::SettingId::kHeaderTableSize, 64}});
  }
  for (int i = 1; i < repeats; ++i) client.send_request("/");
  net::LockstepTransport().run(client, server);
  return {fingerprint(client), server.header_cache_hits(),
          server.header_cache_misses()};
}

TEST(HeaderBlockCache, CachedBlocksAreByteIdenticalToFreshEncodes) {
  for (const std::string profile : {"nginx", "h2o"}) {
    const LockstepOutcome cached = serve_repeats(
        profile, server::Site::standard_testbed_site(), true, 8, false);
    const LockstepOutcome fresh = serve_repeats(
        profile, server::Site::standard_testbed_site(), false, 8, false);
    ASSERT_FALSE(cached.print.empty());
    EXPECT_EQ(cached.print, fresh.print) << profile;
    EXPECT_GT(cached.hits, 0u) << profile;
    EXPECT_EQ(fresh.hits, 0u) << profile;
  }
}

TEST(HeaderBlockCache, CookieChurnSitesNeverServeCachedBlocks) {
  auto churn_site = [] {
    server::Site site = server::Site::standard_testbed_site();
    site.set_cookie_churn(true);
    return site;
  };
  const LockstepOutcome cached =
      serve_repeats("nginx", churn_site(), true, 6, false);
  const LockstepOutcome fresh =
      serve_repeats("nginx", churn_site(), false, 6, false);
  ASSERT_FALSE(cached.print.empty());
  // Every response carries a fresh set-cookie, so a replayed block would be
  // visibly wrong — the cache must stand aside entirely.
  EXPECT_EQ(cached.print, fresh.print);
  EXPECT_EQ(cached.hits, 0u);
}

TEST(HeaderBlockCache, PeerTableResizeInvalidatesWithoutCorruption) {
  for (const std::string profile : {"nginx", "h2o"}) {
    const LockstepOutcome cached = serve_repeats(
        profile, server::Site::standard_testbed_site(), true, 8, true);
    const LockstepOutcome fresh = serve_repeats(
        profile, server::Site::standard_testbed_site(), false, 8, true);
    ASSERT_FALSE(cached.print.empty());
    // A §6.3 table-size update changes every block encoded after it; stale
    // entries from before the resize must never replay.
    EXPECT_EQ(cached.print, fresh.print) << profile;
  }
}

}  // namespace
}  // namespace h2r
