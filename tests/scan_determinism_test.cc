// Scan-aggregate determinism: the worker pool hands sites to threads in
// arrival order, so which worker observes which site is scheduling noise.
// The merged ScanReport must nonetheless be byte-identical whatever the
// thread count — the paper's tables may not depend on how the scanner was
// parallelized. The fingerprint covers every aggregate field, with doubles
// rendered as hexfloats so "identical" means bitwise, not approximately.
#include <gtest/gtest.h>

#include <string>

#include "corpus/population.h"
#include "corpus/scan.h"
#include "scan_fingerprint.h"

namespace h2r::corpus {
namespace {

TEST(ScanDeterminism, ReportIndependentOfThreadCount) {
  // 1/1000 of the epoch-2 list still exercises every probe and every
  // family bucket, in a few hundred milliseconds.
  const Population pop = generate_population(Epoch::kExp2, 7, /*scale=*/1000);
  ASSERT_FALSE(pop.sites.empty());

  ScanOptions single;
  single.threads = 1;
  ScanOptions pooled;
  pooled.threads = 8;

  const std::string a = fingerprint(scan_population(pop, single));
  const std::string b = fingerprint(scan_population(pop, pooled));
  EXPECT_EQ(a, b);
}

TEST(ScanDeterminism, FaultedScanIndependentOfThreadCount) {
  // A site's fault stream is a function of (fault_seed, host) only, so the
  // chaos scan must aggregate identically however the pool is sliced.
  const Population pop = generate_population(Epoch::kExp2, 7, /*scale=*/1000);

  ScanOptions single;
  single.threads = 1;
  single.fault_injection = true;
  ScanOptions pooled = single;
  pooled.threads = 8;

  const ScanReport a = scan_population(pop, single);
  const ScanReport b = scan_population(pop, pooled);
  EXPECT_EQ(fingerprint(a), fingerprint(b));
  // Faults actually fired, were recovered by retries, and nothing hung.
  EXPECT_GT(a.fault_injected, 0u);
  EXPECT_GT(a.sites_retried_ok, 0u);
  EXPECT_EQ(a.fault_deadline_hits, 0u);
  // Exactly one outcome class per h2-offering site.
  EXPECT_EQ(a.sites_ok + a.sites_retried_ok + a.sites_truncated +
                a.sites_disconnected + a.sites_timed_out,
            pop.sites.size());
}

TEST(ScanDeterminism, FaultedWiretapTracesAreSeedStable) {
  // Same fault seed => byte-identical annotated JSONL, even though the
  // traces now interleave kFault events with protocol frames.
  const Population pop = generate_population(Epoch::kExp2, 9, /*scale=*/4000);
  ASSERT_FALSE(pop.sites.empty());
  ScanOptions opts;
  opts.threads = 3;
  opts.fault_injection = true;
  opts.wiretap_traces = true;
  const ScanReport a = scan_population(pop, opts);
  opts.threads = 1;
  const ScanReport b = scan_population(pop, opts);
  ASSERT_FALSE(a.site_traces.empty());
  EXPECT_EQ(a.site_traces, b.site_traces);
  // A different seed reshuffles the fault schedules.
  opts.fault_seed ^= 0xBEEF;
  const ScanReport c = scan_population(pop, opts);
  EXPECT_NE(a.site_traces, c.site_traces);
}

TEST(ScanDeterminism, LockstepScanBooksEverySiteOk) {
  const Population pop = generate_population(Epoch::kExp1, 7, /*scale=*/2000);
  const ScanReport r = scan_population(pop, {});
  EXPECT_EQ(r.sites_ok, pop.sites.size());
  EXPECT_EQ(r.sites_retried_ok + r.sites_truncated + r.sites_disconnected +
                r.sites_timed_out,
            0u);
  EXPECT_EQ(r.fault_exchanges, 0u);
}

TEST(ScanDeterminism, RepeatedScansAreIdentical) {
  const Population pop = generate_population(Epoch::kExp1, 11, /*scale=*/2000);
  ScanOptions opts;
  opts.threads = 4;
  const std::string a = fingerprint(scan_population(pop, opts));
  const std::string b = fingerprint(scan_population(pop, opts));
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace h2r::corpus
