// Corpus generation and scan tests: the synthetic population must carry the
// paper's marginals exactly, and a scan at reduced scale must recover them
// proportionally.
#include <gtest/gtest.h>

#include <map>

#include "corpus/marginals.h"
#include "corpus/population.h"
#include "corpus/scan.h"

namespace h2r::corpus {
namespace {

const Population& exp1_population() {
  static const Population pop = generate_population(Epoch::kExp1, 42);
  return pop;
}

TEST(Marginals, TableTotalsAreConsistent) {
  for (Epoch e : {Epoch::kExp1, Epoch::kExp2}) {
    const auto& m = marginals(e);
    auto sum = [](const std::vector<ValueCount>& rows) {
      std::size_t n = 0;
      for (const auto& vc : rows) n += vc.count;
      return n;
    };
    // Tables V, VI and VII each cover every responding site exactly once.
    EXPECT_EQ(sum(m.initial_window_size), m.responding_sites) << to_string(e);
    EXPECT_EQ(sum(m.max_frame_size), m.responding_sites) << to_string(e);
    EXPECT_EQ(sum(m.max_header_list_size), m.responding_sites) << to_string(e);
    // §V-D1 categories partition the responding sites.
    EXPECT_EQ(m.sframe_respecting_sites + m.sframe_zero_length_sites +
                  m.sframe_no_response_sites,
              m.responding_sites)
        << to_string(e);
    // §V-D4 stream categories partition them too.
    EXPECT_LE(m.large_wu_stream_rst_sites, m.responding_sites);
    // Table IV families fit inside the responding population.
    std::size_t family_sum = 0;
    for (const auto& [_, c] : m.server_families) family_sum += c;
    EXPECT_EQ(family_sum + m.other_family_sites, m.responding_sites);
  }
}

TEST(Population, DeterministicForSameSeed) {
  Population a = generate_population(Epoch::kExp1, 9, /*scale=*/100);
  Population b = generate_population(Epoch::kExp1, 9, /*scale=*/100);
  ASSERT_EQ(a.sites.size(), b.sites.size());
  for (std::size_t i = 0; i < a.sites.size(); ++i) {
    EXPECT_EQ(a.sites[i].host, b.sites[i].host);
    EXPECT_EQ(a.sites[i].family, b.sites[i].family);
    EXPECT_EQ(a.sites[i].scheduler, b.sites[i].scheduler);
  }
}

TEST(Population, CarriesExactAdoptionCounts) {
  const auto& pop = exp1_population();
  const auto& m = marginals(Epoch::kExp1);
  std::size_t npn = 0, alpn = 0, responding = 0;
  for (const auto& s : pop.sites) {
    npn += s.npn_h2;
    alpn += s.alpn_h2;
    responding += s.responds;
  }
  EXPECT_EQ(npn, m.npn_sites);
  EXPECT_EQ(alpn, m.alpn_sites);
  EXPECT_EQ(responding, m.responding_sites);
}

TEST(Population, CarriesExactSettingsMarginals) {
  const auto& pop = exp1_population();
  const auto& m = marginals(Epoch::kExp1);
  std::map<std::int64_t, std::size_t> iws;
  for (const auto& s : pop.sites) {
    if (!s.responds) continue;
    if (s.null_settings) {
      ++iws[kNullValue];
    } else {
      ASSERT_TRUE(s.initial_window_size.has_value());
      ++iws[*s.initial_window_size];
    }
  }
  for (const auto& vc : m.initial_window_size) {
    EXPECT_EQ(iws[vc.value], vc.count) << "IWS value " << vc.value;
  }
}

TEST(Population, CarriesExactBehaviourCounts) {
  const auto& pop = exp1_population();
  const auto& m = marginals(Epoch::kExp1);
  std::size_t stall = 0, zero_len = 0, headers_ok = 0, prio_both = 0,
              prio_first = 0, prio_last = 0, self_rst = 0, push = 0;
  for (const auto& s : pop.sites) {
    if (!s.responds) continue;
    stall += s.small_window == server::SmallWindowBehavior::kStall;
    zero_len += s.small_window == server::SmallWindowBehavior::kZeroLengthData;
    headers_ok += !s.flow_control_on_headers;
    prio_both += s.scheduler == server::SchedulerKind::kPriorityTree;
    prio_first += s.scheduler == server::SchedulerKind::kPriorityStart;
    prio_last += s.scheduler == server::SchedulerKind::kFairShare;
    self_rst += s.self_dependency == server::ErrorReaction::kRstStream;
    push += s.supports_push;
  }
  EXPECT_EQ(stall, m.sframe_no_response_sites);
  EXPECT_EQ(zero_len, m.sframe_zero_length_sites);
  EXPECT_EQ(headers_ok, m.zero_window_headers_sites);
  EXPECT_EQ(prio_both, m.priority_pass_both_sites);
  EXPECT_EQ(prio_both + prio_first, m.priority_pass_first_sites);
  EXPECT_EQ(prio_both + prio_last, m.priority_pass_last_sites);
  EXPECT_EQ(self_rst, m.self_dep_rst_sites);
  EXPECT_EQ(push, m.push_sites.size());
}

TEST(Population, StallSitesAreMostlyLiteSpeed) {
  const auto& pop = exp1_population();
  const auto& m = marginals(Epoch::kExp1);
  std::size_t litespeed_stall = 0;
  for (const auto& s : pop.sites) {
    if (s.responds && s.family == "litespeed" &&
        s.small_window == server::SmallWindowBehavior::kStall) {
      ++litespeed_stall;
    }
  }
  EXPECT_EQ(litespeed_stall, m.sframe_silent_litespeed);
}

TEST(Population, PushSitesCarryThePapersHostnames) {
  const auto& pop = exp1_population();
  std::vector<std::string> hosts;
  for (const auto& s : pop.sites) {
    if (s.supports_push) hosts.push_back(s.host);
  }
  ASSERT_EQ(hosts.size(), 6u);
  EXPECT_NE(std::find(hosts.begin(), hosts.end(), "nghttp2.org"), hosts.end());
  EXPECT_NE(std::find(hosts.begin(), hosts.end(), "miconcinemas.com"),
            hosts.end());
}

TEST(Population, ScaleSubsamplesProportionally) {
  Population full = exp1_population();
  Population small = generate_population(Epoch::kExp1, 42, /*scale=*/50);
  const double ratio = static_cast<double>(small.sites.size()) /
                       static_cast<double>(full.sites.size());
  EXPECT_NEAR(ratio, 1.0 / 50.0, 0.002);
  const double resp_ratio = static_cast<double>(small.responding_count()) /
                            static_cast<double>(full.responding_count());
  EXPECT_NEAR(resp_ratio, 1.0 / 50.0, 0.005);
}

TEST(Population, SiteSpecMaterializesConsistentProfile) {
  const auto& pop = exp1_population();
  for (std::size_t i = 0; i < 50; ++i) {
    const SiteSpec& s = pop.sites[i];
    if (!s.responds) continue;
    const auto p = s.to_profile();
    EXPECT_EQ(p.scheduler, s.scheduler) << s.host;
    EXPECT_EQ(p.supports_push, s.supports_push) << s.host;
    if (!s.null_settings && s.initial_window_size) {
      EXPECT_EQ(p.initial_window_size, s.initial_window_size) << s.host;
    }
  }
}

TEST(Scan, ScaledScanRecoversMarginalShape) {
  // A 1/200 subsample scanned end-to-end through the real probe pipeline
  // must land near the scaled paper numbers in every dimension.
  Population pop = generate_population(Epoch::kExp1, 42, /*scale=*/200);
  ScanOptions opts;
  opts.threads = 4;
  const ScanReport report = scan_population(pop, opts);
  const auto& m = marginals(Epoch::kExp1);
  const double f = 1.0 / 200.0;
  auto near = [&](std::size_t got, std::size_t paper, double tol_frac,
                  const char* what) {
    const double expected = static_cast<double>(paper) * f;
    EXPECT_NEAR(static_cast<double>(got), expected,
                std::max(8.0, expected * tol_frac))
        << what;
  };
  near(report.responding_sites, m.responding_sites, 0.05, "responding");
  near(report.npn_sites, m.npn_sites, 0.05, "npn");
  near(report.alpn_sites, m.alpn_sites, 0.05, "alpn");
  near(report.sframe_respecting, m.sframe_respecting_sites, 0.1, "sframe ok");
  near(report.sframe_no_response, m.sframe_no_response_sites, 0.25, "stall");
  near(report.zero_window_headers_ok, m.zero_window_headers_sites, 0.15,
       "zero-window headers");
  near(report.zero_wu_rst, m.zero_wu_rst_sites, 0.15, "zero WU RST");
  near(report.large_wu_stream_rst, m.large_wu_stream_rst_sites, 0.15,
       "large WU RST");
  near(report.self_dep_rst, m.self_dep_rst_sites, 0.15, "self-dep RST");
  // Settings tables: the dominant IWS value must dominate the scan too.
  EXPECT_GT(report.initial_window_size.count_of(65'536),
            report.initial_window_size.count_of(0));
}

TEST(Scan, RespectsProbeToggles) {
  Population pop = generate_population(Epoch::kExp1, 42, /*scale=*/500);
  ScanOptions opts;
  opts.threads = 2;
  opts.probe_flow_control = false;
  opts.probe_priority = false;
  opts.probe_push = false;
  opts.probe_hpack = false;
  const ScanReport report = scan_population(pop, opts);
  EXPECT_GT(report.responding_sites, 0u);
  EXPECT_EQ(report.sframe_respecting, 0u);
  EXPECT_EQ(report.priority_pass_last, 0u);
  EXPECT_TRUE(report.push_hosts.empty());
  EXPECT_EQ(report.hpack_sample_size(), 0u);
}

TEST(Scan, HpackFamiliesSeparate) {
  Population pop = generate_population(Epoch::kExp1, 42, /*scale=*/100);
  ScanOptions opts;
  opts.threads = 4;
  opts.probe_flow_control = false;
  opts.probe_priority = false;
  opts.probe_push = false;
  const ScanReport report = scan_population(pop, opts);
  // GSE compresses aggressively; nginx sits at ratio 1 (§V-G).
  const auto& gse = report.hpack_ratio_by_family.at("gse");
  ASSERT_FALSE(gse.empty());
  double gse_below_03 = 0;
  for (double r : gse) gse_below_03 += r < 0.3;
  EXPECT_GT(gse_below_03 / static_cast<double>(gse.size()), 0.9);

  const auto& nginx = report.hpack_ratio_by_family.at("nginx");
  ASSERT_FALSE(nginx.empty());
  double nginx_at_1 = 0;
  for (double r : nginx) nginx_at_1 += r >= 0.97;
  EXPECT_GT(nginx_at_1 / static_cast<double>(nginx.size()), 0.8);
}

// ---------------------------------------------------------------- epoch 2

TEST(PopulationExp2, CarriesExactAdoptionCounts) {
  Population pop = generate_population(Epoch::kExp2, 42);
  const auto& m = marginals(Epoch::kExp2);
  std::size_t npn = 0, alpn = 0, responding = 0;
  for (const auto& s : pop.sites) {
    npn += s.npn_h2;
    alpn += s.alpn_h2;
    responding += s.responds;
  }
  EXPECT_EQ(npn, m.npn_sites);
  EXPECT_EQ(alpn, m.alpn_sites);
  EXPECT_EQ(responding, m.responding_sites);
}

TEST(PopulationExp2, TengineAserverAppearsOnlyInExp2) {
  Population e1 = generate_population(Epoch::kExp1, 42, 20);
  Population e2 = generate_population(Epoch::kExp2, 42, 20);
  auto count_family = [](const Population& p, const std::string& f) {
    std::size_t n = 0;
    for (const auto& s : p.sites) n += s.family == f;
    return n;
  };
  EXPECT_EQ(count_family(e1, "tengine-aserver"), 0u);
  EXPECT_GT(count_family(e2, "tengine-aserver"), 0u);
  // Tengine shrinks between experiments (the tmall.com rename, §V-B2).
  EXPECT_GT(count_family(e1, "tengine"), count_family(e2, "tengine"));
}

TEST(PopulationExp2, LiteSpeedSilentCountMatchesPaper) {
  Population pop = generate_population(Epoch::kExp2, 42);
  std::size_t litespeed_stall = 0;
  for (const auto& s : pop.sites) {
    if (s.responds && s.family == "litespeed" &&
        s.small_window == server::SmallWindowBehavior::kStall) {
      ++litespeed_stall;
    }
  }
  EXPECT_EQ(litespeed_stall, 10'472u);  // reported explicitly in §V-D1
}

TEST(PopulationExp2, FifteenPushSites) {
  Population pop = generate_population(Epoch::kExp2, 42);
  std::size_t push = 0;
  for (const auto& s : pop.sites) push += s.supports_push;
  EXPECT_EQ(push, 15u);
}

TEST(Scan, DeterministicAcrossRuns) {
  Population pop = generate_population(Epoch::kExp1, 7, 500);
  ScanOptions opts;
  opts.threads = 3;
  const ScanReport a = scan_population(pop, opts);
  const ScanReport b = scan_population(pop, opts);
  EXPECT_EQ(a.responding_sites, b.responding_sites);
  EXPECT_EQ(a.npn_sites, b.npn_sites);
  EXPECT_EQ(a.server_counts, b.server_counts);
  EXPECT_EQ(a.zero_wu_rst, b.zero_wu_rst);
  EXPECT_EQ(a.priority_pass_last, b.priority_pass_last);
  EXPECT_EQ(a.initial_window_size.counts(), b.initial_window_size.counts());
}

TEST(Scan, ThreadCountDoesNotChangeAggregates) {
  Population pop = generate_population(Epoch::kExp1, 7, 500);
  ScanOptions one;
  one.threads = 1;
  ScanOptions many;
  many.threads = 8;
  const ScanReport a = scan_population(pop, one);
  const ScanReport b = scan_population(pop, many);
  EXPECT_EQ(a.responding_sites, b.responding_sites);
  EXPECT_EQ(a.server_counts, b.server_counts);
  EXPECT_EQ(a.sframe_respecting, b.sframe_respecting);
  EXPECT_EQ(a.self_dep_rst, b.self_dep_rst);
}

TEST(Scan, PushHostsAreTheNamedSites) {
  Population pop = generate_population(Epoch::kExp1, 42);
  // Only probe the first sites (the named ones are indices 0..5) — a full
  // push scan is exercised at scale in the §V-F bench.
  pop.sites.resize(50);
  ScanOptions opts;
  opts.threads = 2;
  opts.probe_flow_control = false;
  opts.probe_priority = false;
  opts.probe_settings = false;
  opts.probe_hpack = false;
  const ScanReport report = scan_population(pop, opts);
  ASSERT_EQ(report.push_hosts.size(), 6u);
  EXPECT_NE(std::find(report.push_hosts.begin(), report.push_hosts.end(),
                      "nghttp2.org"),
            report.push_hosts.end());
}

}  // namespace
}  // namespace h2r::corpus
