// Test helper: a byte-exact rendering of every aggregate field of a
// ScanReport, with doubles as hexfloats so "identical" means bitwise, not
// approximately. Shared by the thread-count determinism tests and the
// coalesced-vs-sequential equivalence tests.
#pragma once

#include <sstream>
#include <string>

#include "corpus/scan.h"

namespace h2r::corpus {

inline std::string fingerprint(const ScanReport& r) {
  std::ostringstream out;
  out << std::hexfloat;
  out << "epoch=" << static_cast<int>(r.epoch)
      << " total_scanned=" << r.total_scanned << "\n";
  out << "npn=" << r.npn_sites << " alpn=" << r.alpn_sites
      << " responding=" << r.responding_sites << "\n";
  out << "server_kinds=" << r.distinct_server_kinds << "\n";
  for (const auto& [name, count] : r.server_counts) {
    out << "server[" << name << "]=" << count << "\n";
  }
  const auto counter = [&out](const char* label, const ValueCounter& c) {
    for (const auto& [value, count] : c.counts()) {
      out << label << "[" << value << "]=" << count << "\n";
    }
  };
  counter("iws", r.initial_window_size);
  counter("mfs", r.max_frame_size);
  counter("mhls", r.max_header_list_size);
  counter("mcs", r.max_concurrent_streams);
  out << "sframe=" << r.sframe_respecting << "," << r.sframe_zero_length
      << "," << r.sframe_no_response << ","
      << r.sframe_no_response_litespeed << "\n";
  out << "zero_window_headers_ok=" << r.zero_window_headers_ok << "\n";
  out << "zero_wu=" << r.zero_wu_rst << "," << r.zero_wu_ignore << ","
      << r.zero_wu_goaway << "," << r.zero_wu_goaway_debug << ","
      << r.zero_wu_conn_error << "\n";
  out << "large_wu=" << r.large_wu_conn_goaway << "," << r.large_wu_stream_rst
      << "," << r.large_wu_stream_ignore << "\n";
  out << "priority=" << r.priority_pass_last << "," << r.priority_pass_first
      << "," << r.priority_pass_both << "\n";
  out << "self_dep=" << r.self_dep_rst << "," << r.self_dep_goaway << ","
      << r.self_dep_ignore << "\n";
  for (const auto& host : r.push_hosts) out << "push=" << host << "\n";
  for (const auto& [family, ratios] : r.hpack_ratio_by_family) {
    out << "hpack[" << family << "]=";
    for (double ratio : ratios) out << ratio << ";";
    out << "\n";
  }
  out << "hpack_filtered_out=" << r.hpack_filtered_out << "\n";
  out << "outcomes=" << r.sites_ok << "," << r.sites_retried_ok << ","
      << r.sites_truncated << "," << r.sites_disconnected << ","
      << r.sites_timed_out << "\n";
  out << "faults=" << r.fault_exchanges << "," << r.fault_injected << ","
      << r.fault_retries << "," << r.fault_deadline_hits << ","
      << r.fault_backoff_ms << "\n";
  return out.str();
}

}  // namespace h2r::corpus
