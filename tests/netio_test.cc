// netio unit + integration tests: the shared timer wheel, strict CLI/env
// parsing, the errno → terminal-taxonomy mapping, and the load-bearing
// property of the whole subsystem — that a real-socket exchange is
// observably identical to the lockstep transport for the same profile.
#include <gtest/gtest.h>

#include <cerrno>
#include <string>
#include <thread>

#include "core/client.h"
#include "net/readiness.h"
#include "net/transport.h"
#include "netio/load.h"
#include "netio/serve.h"
#include "netio/socket.h"
#include "server/engine.h"
#include "server/profile.h"
#include "server/site.h"
#include "util/parse.h"

namespace h2r {
namespace {

// ----------------------------------------------------------- timer wheel

TEST(TimerWheel, DrainsInTickOrderThenInsertionOrder) {
  net::TimerWheel<int> wheel;
  wheel.park(30, 1);
  wheel.park(10, 2);
  wheel.park(30, 3);
  wheel.park(20, 4);
  EXPECT_EQ(wheel.parked(), 4u);
  EXPECT_EQ(wheel.next_tick(), 10u);

  auto first = wheel.pop_next();
  EXPECT_EQ(first.first, 10u);
  EXPECT_EQ(first.second, std::vector<int>{2});

  auto second = wheel.pop_next();
  EXPECT_EQ(second.first, 20u);
  EXPECT_EQ(second.second, std::vector<int>{4});

  // Same tick drains in insertion order.
  auto third = wheel.pop_next();
  EXPECT_EQ(third.first, 30u);
  EXPECT_EQ(third.second, (std::vector<int>{1, 3}));
  EXPECT_TRUE(wheel.empty());
}

TEST(TimerWheel, PopDueSweepsEverythingAtOrBeforeTheTick) {
  net::TimerWheel<int> wheel;
  wheel.park(5, 1);
  wheel.park(7, 2);
  wheel.park(9, 3);
  EXPECT_TRUE(wheel.pop_due(4).empty());
  EXPECT_EQ(wheel.pop_due(7), (std::vector<int>{1, 2}));
  EXPECT_EQ(wheel.parked(), 1u);
  EXPECT_EQ(wheel.pop_due(100), std::vector<int>{3});
  EXPECT_TRUE(wheel.empty());
}

// ---------------------------------------------------------- strict parse

TEST(StrictParse, AcceptsWholeStringsOnly) {
  EXPECT_EQ(strict_long("42"), 42);
  EXPECT_EQ(strict_long("-7"), -7);
  EXPECT_EQ(strict_long(" 8"), 8);  // strtol skips leading whitespace
  EXPECT_FALSE(strict_long("2x10").has_value());
  EXPECT_FALSE(strict_long("42 ").has_value());
  EXPECT_FALSE(strict_long("").has_value());
  EXPECT_FALSE(strict_long(nullptr).has_value());

  EXPECT_EQ(strict_double("1.5"), 1.5);
  EXPECT_FALSE(strict_double("1.5abc").has_value());
  EXPECT_FALSE(strict_double("abc").has_value());
}

TEST(StrictParse, RangeCheckRejectsOutOfBounds) {
  EXPECT_EQ(strict_long_in("3000", 0, 65535), 3000);
  EXPECT_FALSE(strict_long_in("65536", 0, 65535).has_value());
  EXPECT_FALSE(strict_long_in("-1", 0, 65535).has_value());
  EXPECT_FALSE(strict_long_in("80x", 0, 65535).has_value());
}

// ---------------------------------------------------------- errno mapping

TEST(ErrnoTaxonomy, ConnectionLossMapsToUnavailable) {
  for (const int err : {ECONNRESET, EPIPE, ECONNREFUSED, ECONNABORTED,
                        ETIMEDOUT, EHOSTUNREACH, ENETUNREACH}) {
    const Status s = netio::errno_status(err, "test");
    EXPECT_EQ(s.code(), StatusCode::kUnavailable) << netio::errno_key(err);
  }
}

TEST(ErrnoTaxonomy, ResourceExhaustionMapsToRefused) {
  for (const int err : {EMFILE, ENFILE, ENOBUFS, ENOMEM}) {
    const Status s = netio::errno_status(err, "test");
    EXPECT_EQ(s.code(), StatusCode::kRefused) << netio::errno_key(err);
  }
}

TEST(ErrnoTaxonomy, KeysAreStableNames) {
  EXPECT_EQ(netio::errno_key(ECONNRESET), "ECONNRESET");
  EXPECT_EQ(netio::errno_key(EPIPE), "EPIPE");
  EXPECT_EQ(netio::errno_key(EMFILE), "EMFILE");
  // Unnamed errnos still get a stable, greppable key.
  EXPECT_EQ(netio::errno_key(9999), "errno-9999");
}

// ------------------------------------------------- lockstep vs real socket

/// Everything a client can observe about a conversation, flattened into a
/// comparable string: frame types, stream ids, flags, parsed payload sizes
/// and decoded header lists, in arrival order.
std::string fingerprint(const core::ClientConnection& client) {
  std::string out;
  for (const auto& received : client.events()) {
    out += std::to_string(static_cast<int>(received.frame.type()));
    out += ":" + std::to_string(received.frame.stream_id);
    out += ":" + std::to_string(static_cast<int>(received.frame.flags));
    out += ":" + std::to_string(received.header_block_size);
    if (received.headers.has_value()) {
      for (const auto& header : *received.headers) {
        out += "|" + header.name + "=" + header.value;
      }
    }
    out += "\n";
  }
  return out;
}

/// The lockstep reference: one GET served entirely in-process.
std::string lockstep_fingerprint(const std::string& profile_key) {
  server::Http2Server server(server::profile_by_key(profile_key),
                             server::Site::standard_testbed_site());
  core::ClientConnection client;
  client.send_request("/");
  net::LockstepTransport().run(client, server);
  return fingerprint(client);
}

/// The same GET through a real listener on an ephemeral loopback port.
std::string socket_fingerprint(const std::string& profile_key) {
  netio::ServeOptions opts;
  opts.profile_key = profile_key;
  auto serve = netio::ServeLoop::create(opts);
  EXPECT_TRUE(serve.ok()) << serve.status().message();
  std::thread server_thread([&] { EXPECT_TRUE(serve.value()->run().ok()); });

  std::string print;
  {
    auto sock =
        netio::SocketClient::connect("127.0.0.1", serve.value()->port());
    EXPECT_TRUE(sock.ok()) << sock.status().message();
    auto& client = sock.value()->client();
    const std::uint32_t sid = client.send_request("/");
    const Status pumped = sock.value()->pump_until(
        [sid](core::ClientConnection& c) {
          if (!c.stream_complete(sid)) return false;
          // Wait out promised push streams too: the lockstep run drains
          // them, so the socket run must observe the same tail.
          for (const auto& [pushed_id, headers] : c.pushes()) {
            (void)headers;
            if (!c.stream_complete(pushed_id)) return false;
          }
          return true;
        });
    EXPECT_TRUE(pumped.ok()) << pumped.message();
    EXPECT_TRUE(sock.value()->finish().ok());
    print = fingerprint(client);
  }
  serve.value()->request_shutdown();
  server_thread.join();
  EXPECT_EQ(serve.value()->stats().served_clean, 1u);
  return print;
}

TEST(SocketFingerprint, H2oMatchesLockstep) {
  const std::string lockstep = lockstep_fingerprint("h2o");
  ASSERT_FALSE(lockstep.empty());
  EXPECT_EQ(socket_fingerprint("h2o"), lockstep);
}

TEST(SocketFingerprint, NginxMatchesLockstep) {
  const std::string lockstep = lockstep_fingerprint("nginx");
  ASSERT_FALSE(lockstep.empty());
  EXPECT_EQ(socket_fingerprint("nginx"), lockstep);
}

}  // namespace
}  // namespace h2r
