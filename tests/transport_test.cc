// net::Transport seam tests: lockstep parity with the historical pump,
// exchange deadlines, fault-plan determinism, ledger bookkeeping, and the
// Target / probe_with_retry wiring on top.
#include <gtest/gtest.h>

#include "core/client.h"
#include "core/probes.h"
#include "net/transport.h"
#include "server/engine.h"
#include "server/profile.h"
#include "server/site.h"

namespace h2r {
namespace {

using core::ClientConnection;
using server::Http2Server;
using server::Site;

Http2Server make_server() {
  return Http2Server(server::h2o_profile(), Site::standard_testbed_site());
}

TEST(LockstepTransport, MatchesTheHistoricalPump) {
  // Hand-rolled reference pump (the pre-seam core::run_exchange loop).
  Http2Server s1 = make_server();
  ClientConnection c1;
  const auto sid1 = c1.send_request("/small");
  int hand_rounds = 0;
  for (int i = 0; i < 4096; ++i) {
    const Bytes c2s = c1.take_output();
    if (!c2s.empty()) s1.receive(c2s);
    const Bytes s2c = s1.take_output();
    if (!s2c.empty()) c1.receive(s2c);
    if (c2s.empty() && s2c.empty()) break;
    ++hand_rounds;
  }

  Http2Server s2 = make_server();
  ClientConnection c2;
  const auto sid2 = c2.send_request("/small");
  net::LockstepTransport transport;
  const auto result = transport.run(c2, s2);

  EXPECT_EQ(result.outcome, net::ExchangeOutcome::kQuiescent);
  EXPECT_EQ(result.rounds, hand_rounds);
  EXPECT_EQ(c1.data_received(sid1), c2.data_received(sid2));
  EXPECT_EQ(c1.events().size(), c2.events().size());
  EXPECT_GT(result.bytes_s2c, result.bytes_c2s);  // response dwarfs request
}

TEST(LockstepTransport, RoundCapIsADeadline) {
  auto server = make_server();
  ClientConnection client;
  client.send_request("/large/0");
  net::ExchangeLedger ledger;
  net::LockstepTransport transport(nullptr, &ledger);
  const auto result = transport.run(client, server, {.max_rounds = 1});
  EXPECT_EQ(result.outcome, net::ExchangeOutcome::kRoundCap);
  EXPECT_TRUE(result.deadline_hit());
  EXPECT_EQ(ledger.deadline_hits, 1u);
  EXPECT_TRUE(ledger.attempt_deadline);
}

TEST(LockstepTransport, ByteCapIsADeadline) {
  auto server = make_server();
  ClientConnection client;
  client.send_request("/large/0");  // 512 KiB response
  net::LockstepTransport transport;
  const auto result = transport.run(client, server, {.max_bytes = 1024});
  EXPECT_EQ(result.outcome, net::ExchangeOutcome::kByteCap);
  EXPECT_TRUE(result.deadline_hit());
}

TEST(FaultPlan, GenerateIsAPureFunctionOfSeed) {
  for (std::uint64_t seed : {1ull, 7ull, 0xDEADull, 0xFFFF'FFFF'FFFFull}) {
    const auto a = net::FaultPlan::generate(seed, 0.5);
    const auto b = net::FaultPlan::generate(seed, 0.5);
    EXPECT_EQ(a, b) << seed;
    EXPECT_EQ(a.describe(), b.describe());
  }
  // Different seeds land different schedules (for these seeds, verified).
  EXPECT_NE(net::FaultPlan::generate(1, 1.0), net::FaultPlan::generate(2, 1.0));
}

TEST(FaultPlan, ProbabilityZeroMeansCleanPlans) {
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    const auto plan = net::FaultPlan::generate(seed, 0.0);
    EXPECT_EQ(plan.kind, net::FaultKind::kNone) << seed;
    EXPECT_GE(plan.max_chunk, 1u);  // segmentation is always on
  }
}

TEST(FaultPlan, ProbabilityOneMeansAlwaysFaulted) {
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    EXPECT_NE(net::FaultPlan::generate(seed, 1.0).kind, net::FaultKind::kNone)
        << seed;
  }
}

TEST(FaultProbability, FloorsAndClamps) {
  EXPECT_DOUBLE_EQ(net::fault_probability(0.0, 0.2), 0.2);
  EXPECT_DOUBLE_EQ(net::fault_probability(0.01, 0.2), 0.45);
  EXPECT_DOUBLE_EQ(net::fault_probability(1.0, 0.2), 0.95);  // clamped
  EXPECT_DOUBLE_EQ(net::fault_probability(0.0, 0.0), 0.0);
}

TEST(Target, MakeTransportIsLockstepWithoutFaults) {
  const core::Target target = core::Target::testbed(server::h2o_profile());
  EXPECT_EQ(target.make_transport()->name(), "lockstep");
}

TEST(Target, MakeTransportDerivesPerConnectionPlans) {
  core::Target target = core::Target::testbed(server::h2o_profile());
  target.faults.enabled = true;
  target.faults.seed = 42;
  target.faults.probability = 1.0;
  const auto t1 = target.make_transport();
  const auto t2 = target.make_transport();
  const auto* first = dynamic_cast<const net::FaultyTransport*>(t1.get());
  const auto* second = dynamic_cast<const net::FaultyTransport*>(t2.get());
  ASSERT_NE(first, nullptr);
  ASSERT_NE(second, nullptr);
  // The connection ordinal advances the stream.
  EXPECT_NE(first->plan(), second->plan());

  // A fresh target with the same config replays the same plan sequence.
  core::Target replay = core::Target::testbed(server::h2o_profile());
  replay.faults = target.faults;
  const auto r1 = replay.make_transport();
  const auto* replayed = dynamic_cast<const net::FaultyTransport*>(r1.get());
  ASSERT_NE(replayed, nullptr);
  EXPECT_EQ(first->plan(), replayed->plan());
}

TEST(ProbeWithRetry, RetriesFaultedAttemptsAndBooksBackoff) {
  core::Target target = core::Target::testbed(server::h2o_profile());
  net::ExchangeLedger ledger;
  target.ledger = &ledger;
  core::RetryPolicy policy;
  policy.max_attempts = 3;

  int calls = 0;
  const int result = core::probe_with_retry(target, policy, [&] {
    ++calls;
    if (calls < 3) ledger.attempt_truncated = true;  // simulated fault
    return calls;
  });
  EXPECT_EQ(result, 3);  // the final attempt's value is returned
  EXPECT_EQ(ledger.retries, 2u);
  EXPECT_DOUBLE_EQ(ledger.backoff_ms, 50.0 + 100.0);
  // The failed attempts' flags were dropped: only the clean final attempt
  // settles into the per-site classification.
  EXPECT_FALSE(ledger.final_truncated);
}

TEST(ProbeWithRetry, ExhaustedAttemptsSettleTheFault) {
  core::Target target = core::Target::testbed(server::h2o_profile());
  net::ExchangeLedger ledger;
  target.ledger = &ledger;
  core::RetryPolicy policy;
  policy.max_attempts = 2;
  int calls = 0;
  (void)core::probe_with_retry(target, policy, [&] {
    ++calls;
    ledger.attempt_truncated = true;  // every attempt faults
    return calls;
  });
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(ledger.retries, 1u);
  EXPECT_TRUE(ledger.final_truncated);
}

TEST(ProbeWithRetry, NoLedgerCollapsesToOneCall) {
  const core::Target target = core::Target::testbed(server::h2o_profile());
  int calls = 0;
  (void)core::probe_with_retry(target, {}, [&] { return ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(ClientTerminal, ParseErrorSurfacesOffsetAndFrameType) {
  ClientConnection client;
  (void)client.take_output();
  // A well-formed preamble frame first, so the offending frame does not
  // start the stream: 8-octet PING (type 0x6), then a SETTINGS frame whose
  // 5-octet length violates the multiple-of-6 rule (RFC 7540 §6.5).
  const Bytes ping = {0, 0, 8, 0x6, 0, 0, 0, 0, 0, 1, 2, 3, 4, 5, 6, 7, 8};
  const Bytes bad_settings = {0, 0, 5, 0x4, 0, 0, 0, 0, 0, 9, 9, 9, 9, 9};
  client.receive(ping);
  EXPECT_EQ(client.terminal().state, core::ClientTerminal::kQuiescent);
  client.receive(bad_settings);
  const auto& t = client.terminal();
  EXPECT_EQ(t.state, core::ClientTerminal::kProtocolError);
  EXPECT_FALSE(t.status.ok());
  EXPECT_EQ(t.byte_offset, ping.size());  // the offending frame's start
  EXPECT_TRUE(t.frame_type_known);
  EXPECT_EQ(t.frame_type, 0x4);  // SETTINGS
  EXPECT_FALSE(client.alive());
}

TEST(ClientTerminal, TransportCloseIsATransportError) {
  ClientConnection client;
  (void)client.take_output();
  const Bytes ping = {0, 0, 8, 0x6, 0, 0, 0, 0, 0, 1, 2, 3, 4, 5, 6, 7, 8};
  client.receive(ping);
  client.on_transport_close(UnavailableError("transport truncated"));
  EXPECT_EQ(client.terminal().state, core::ClientTerminal::kTransportError);
  EXPECT_EQ(client.terminal().byte_offset, ping.size());
  EXPECT_FALSE(client.alive());
}

TEST(ClientTerminal, ProtocolCauseOutranksTransportDeath) {
  ClientConnection client;
  (void)client.take_output();
  const Bytes bad_settings = {0, 0, 5, 0x4, 0, 0, 0, 0, 0, 9, 9, 9, 9, 9};
  client.receive(bad_settings);
  // A truncation notification after the parse error must not relabel it.
  client.on_transport_close(UnavailableError("transport truncated"));
  EXPECT_EQ(client.terminal().state, core::ClientTerminal::kProtocolError);
}

}  // namespace
}  // namespace h2r
