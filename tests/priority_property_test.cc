// Property tests for the priority dependency tree: random operation
// sequences must preserve the §5.3 structural invariants, and both
// scheduler disciplines must honour their contracts on random trees.
#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <set>
#include <vector>

#include "h2/priority_tree.h"
#include "util/rng.h"

namespace h2r::h2 {
namespace {

/// Walks the tree from the root and checks the §5.3 structural invariants:
/// acyclic, fully reachable, parent/child links consistent, weights in
/// [1, 256].
void check_invariants(const PriorityTree& tree,
                      const std::vector<std::uint32_t>& live_ids) {
  std::set<std::uint32_t> reached;
  std::function<void(std::uint32_t)> visit = [&](std::uint32_t node) {
    for (std::uint32_t child : tree.children_of(node)) {
      ASSERT_TRUE(reached.insert(child).second)
          << "stream " << child << " reachable twice (cycle or dup link)";
      ASSERT_EQ(tree.parent_of(child), node) << "parent link broken";
      const int w = tree.weight_of(child);
      ASSERT_GE(w, 1);
      ASSERT_LE(w, 256);
      visit(child);
    }
  };
  visit(0);
  for (std::uint32_t id : live_ids) {
    EXPECT_TRUE(reached.count(id))
        << "stream " << id << " unreachable from the root";
  }
  EXPECT_EQ(reached.size(), tree.size());
}

class PriorityTreeChurnProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(PriorityTreeChurnProperty, RandomOperationsPreserveInvariants) {
  Rng rng(GetParam());
  PriorityTree tree;
  std::vector<std::uint32_t> live;
  std::uint32_t next_id = 1;

  for (int op = 0; op < 400; ++op) {
    const double draw = rng.next_double();
    if (draw < 0.45 || live.empty()) {
      // Declare a new stream with a random dependency.
      const std::uint32_t id = next_id;
      next_id += 2;
      PriorityInfo info;
      info.dependency =
          live.empty() || rng.next_bool(0.3)
              ? 0
              : live[rng.next_below(live.size())];
      info.weight_field = static_cast<std::uint8_t>(rng.next_below(256));
      info.exclusive = rng.next_bool(0.25);
      ASSERT_TRUE(tree.declare(id, info).ok());
      live.push_back(id);
    } else if (draw < 0.8) {
      // Reprioritize a random live stream, possibly onto a descendant.
      const std::uint32_t id = live[rng.next_below(live.size())];
      PriorityInfo info;
      info.dependency =
          rng.next_bool(0.3) ? 0 : live[rng.next_below(live.size())];
      info.weight_field = static_cast<std::uint8_t>(rng.next_below(256));
      info.exclusive = rng.next_bool(0.25);
      const Status s = tree.reprioritize(id, info);
      if (info.dependency == id) {
        EXPECT_EQ(s.code(), StatusCode::kProtocolError);
      } else {
        EXPECT_TRUE(s.ok());
      }
    } else {
      // Close a random stream.
      const std::size_t idx = rng.next_below(live.size());
      tree.remove(live[idx]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
    }
    check_invariants(tree, live);
    if (HasFatalFailure()) return;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PriorityTreeChurnProperty,
                         ::testing::Range<std::uint64_t>(1, 11));

class SchedulerContractProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(SchedulerContractProperty, GatedSchedulerNeverServesBelowEagerAncestor) {
  Rng rng(GetParam() * 31);
  PriorityTree tree;
  std::vector<std::uint32_t> ids;
  for (std::uint32_t i = 1; i <= 41; i += 2) {
    PriorityInfo info;
    info.dependency = ids.empty() || rng.next_bool(0.4)
                          ? 0
                          : ids[rng.next_below(ids.size())];
    info.weight_field = static_cast<std::uint8_t>(rng.next_below(256));
    ASSERT_TRUE(tree.declare(i, info).ok());
    ids.push_back(i);
  }
  std::map<std::uint32_t, bool> eager;
  for (std::uint32_t id : ids) eager[id] = rng.next_bool(0.5);
  auto wants = [&](std::uint32_t id) { return eager[id]; };

  for (int round = 0; round < 200; ++round) {
    const std::uint32_t next = tree.next_stream(wants);
    if (next == 0) break;
    ASSERT_TRUE(eager[next]);
    // Contract: no proper ancestor of the served stream is itself eager.
    for (std::uint32_t other : ids) {
      if (other != next && eager[other]) {
        EXPECT_FALSE(tree.is_ancestor(other, next))
            << "served " << next << " below eager ancestor " << other;
      }
    }
    tree.account(next, 100);
    if (rng.next_bool(0.2)) eager[next] = false;  // stream drains
    if (rng.next_bool(0.1)) {
      const std::uint32_t id = ids[rng.next_below(ids.size())];
      eager[id] = !eager[id];
    }
  }
}

TEST_P(SchedulerContractProperty, FairSchedulerServesOnlyEagerStreams) {
  Rng rng(GetParam() * 57);
  PriorityTree tree;
  std::vector<std::uint32_t> ids;
  for (std::uint32_t i = 1; i <= 21; i += 2) {
    PriorityInfo info;
    info.dependency = ids.empty() || rng.next_bool(0.5)
                          ? 0
                          : ids[rng.next_below(ids.size())];
    info.weight_field = static_cast<std::uint8_t>(rng.next_below(256));
    ASSERT_TRUE(tree.declare(i, info).ok());
    ids.push_back(i);
  }
  std::map<std::uint32_t, bool> eager;
  for (std::uint32_t id : ids) eager[id] = rng.next_bool(0.6);
  auto wants = [&](std::uint32_t id) { return eager[id]; };
  int served = 0;
  for (int round = 0; round < 300; ++round) {
    const std::uint32_t next = tree.next_stream_fair(wants);
    if (next == 0) break;
    ASSERT_TRUE(eager[next]);
    ++served;
    tree.account(next, 64);
    if (rng.next_bool(0.05)) eager[next] = false;
  }
  bool any_eager = false;
  for (std::uint32_t id : ids) {
    any_eager |= eager[id];
  }
  if (any_eager) {
    EXPECT_EQ(served, 300);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerContractProperty,
                         ::testing::Range<std::uint64_t>(1, 9));

class WeightShareProperty
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(WeightShareProperty, SiblingsConvergeToWeightRatio) {
  const auto [w1, w2] = GetParam();
  PriorityTree tree;
  ASSERT_TRUE(tree.declare(1, {.dependency = 0,
                               .weight_field = static_cast<std::uint8_t>(w1 - 1)})
                  .ok());
  ASSERT_TRUE(tree.declare(3, {.dependency = 0,
                               .weight_field = static_cast<std::uint8_t>(w2 - 1)})
                  .ok());
  std::map<std::uint32_t, int> served;
  auto wants = [](std::uint32_t) { return true; };
  const int rounds = 2000;
  for (int i = 0; i < rounds; ++i) {
    const std::uint32_t next = tree.next_stream(wants);
    ASSERT_NE(next, 0u);
    ++served[next];
    tree.account(next, 1000);
  }
  const double expected =
      static_cast<double>(w2) / static_cast<double>(w1 + w2);
  EXPECT_NEAR(static_cast<double>(served[3]) / rounds, expected, 0.02)
      << "weights " << w1 << ":" << w2;
}

INSTANTIATE_TEST_SUITE_P(
    Ratios, WeightShareProperty,
    ::testing::Values(std::pair{1, 1}, std::pair{1, 3}, std::pair{1, 255},
                      std::pair{16, 64}, std::pair{100, 156},
                      std::pair{255, 256}));

}  // namespace
}  // namespace h2r::h2
