// Upload (POST) path tests: client-side flow control against every window
// regime, including the Nginx zero-window idiom that requires the server to
// grant per-stream windows before any body can flow.
#include <gtest/gtest.h>

#include "core/client.h"
#include "net/transport.h"
#include "server/engine.h"
#include "server/profile.h"
#include "server/site.h"

namespace h2r {
namespace {

using core::ClientConnection;
using server::Http2Server;
using server::Site;

/// The net::Transport replacement for the retired run_exchange shim: one
/// lockstep connection pump, wired to the client's recorder.
void pump(ClientConnection& client, Http2Server& server) {
  net::LockstepTransport(client.recorder()).run(client, server);
}

Bytes body_of(std::size_t n) {
  Bytes b(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = static_cast<std::uint8_t>(i * 7);
  return b;
}

std::size_t reported_received(const ClientConnection& client,
                              std::uint32_t sid) {
  auto headers = client.response_headers(sid);
  if (!headers) return static_cast<std::size_t>(-1);
  const auto v = hpack::find_header(*headers, "x-received-bytes");
  return static_cast<std::size_t>(std::stoull(std::string(v)));
}

TEST(Upload, SmallBodyEchoesCount) {
  auto server = Http2Server(server::h2o_profile(), Site::standard_testbed_site());
  ClientConnection client;
  const auto sid = client.send_request_with_body("/upload", body_of(1000));
  pump(client, server);
  EXPECT_TRUE(client.stream_complete(sid));
  EXPECT_EQ(reported_received(client, sid), 1000u);
  EXPECT_EQ(client.pending_upload_bytes(), 0u);
}

TEST(Upload, EmptyBodyStillCompletes) {
  auto server = Http2Server(server::h2o_profile(), Site::standard_testbed_site());
  ClientConnection client;
  const auto sid = client.send_request_with_body("/upload", {});
  pump(client, server);
  EXPECT_TRUE(client.stream_complete(sid));
  EXPECT_EQ(reported_received(client, sid), 0u);
}

TEST(Upload, LargeBodyCrossesConnectionWindowManyTimes) {
  // 1 MiB through the default 65,535-octet connection window: requires the
  // server's replenishing WINDOW_UPDATEs round after round.
  auto server = Http2Server(server::h2o_profile(), Site::standard_testbed_site());
  ClientConnection client;
  const std::size_t size = 1 << 20;
  const auto sid = client.send_request_with_body("/upload", body_of(size));
  pump(client, server);
  EXPECT_TRUE(client.stream_complete(sid)) << "upload stalled";
  EXPECT_EQ(reported_received(client, sid), size);
  EXPECT_EQ(client.pending_upload_bytes(), 0u);
  EXPECT_TRUE(server.alive());  // no flow-control violation occurred
}

TEST(Upload, RespectsNginxZeroWindowIdiom) {
  // Nginx announces SETTINGS_INITIAL_WINDOW_SIZE = 0: not one body octet
  // may flow until the server grants a per-stream WINDOW_UPDATE. The
  // engine's nginx profile grants on demand; the client must wait for it.
  auto server = Http2Server(server::nginx_profile(), Site::standard_testbed_site());
  ClientConnection client;
  pump(client, server);  // learn the server SETTINGS first
  const auto sid = client.send_request_with_body("/upload", body_of(50'000));
  pump(client, server);
  EXPECT_TRUE(client.stream_complete(sid));
  EXPECT_EQ(reported_received(client, sid), 50'000u);
  EXPECT_TRUE(server.alive());
}

TEST(Upload, ClientWaitsWhenRequestRacesSettings) {
  // Request sent before the server's SETTINGS arrive: the client assumes
  // the RFC default window and must reconcile when SETTINGS come in
  // (§6.9.2) — against nginx that means an *adjustment to zero*.
  auto server = Http2Server(server::nginx_profile(), Site::standard_testbed_site());
  ClientConnection client;
  const auto sid = client.send_request_with_body("/upload", body_of(200'000));
  pump(client, server);
  EXPECT_TRUE(client.stream_complete(sid));
  EXPECT_EQ(reported_received(client, sid), 200'000u);
  EXPECT_TRUE(server.alive());
}

TEST(Upload, ManyConcurrentUploadsShareTheConnectionWindow) {
  auto server = Http2Server(server::h2o_profile(), Site::standard_testbed_site());
  ClientConnection client;
  std::vector<std::uint32_t> streams;
  for (int i = 0; i < 5; ++i) {
    streams.push_back(
        client.send_request_with_body("/upload", body_of(100'000)));
  }
  pump(client, server);
  for (auto sid : streams) {
    EXPECT_TRUE(client.stream_complete(sid)) << sid;
    EXPECT_EQ(reported_received(client, sid), 100'000u) << sid;
  }
  EXPECT_TRUE(server.alive());
}

TEST(Upload, OverflowingUploadIsPunished) {
  // A misbehaving client ignoring the window draws a flow-control error —
  // the receive-side enforcement of §6.9.
  auto server = Http2Server(server::h2o_profile(), Site::standard_testbed_site());
  ClientConnection client;
  // Open the stream legitimately, then blast a raw oversized DATA frame.
  hpack::Encoder enc;
  client.send_frame(h2::make_headers(
      1,
      enc.encode({{":method", "POST"},
                  {":scheme", "https"},
                  {":authority", "x"},
                  {":path", "/upload"},
                  {"content-length", "100000"}}),
      /*end_stream=*/false));
  // The connection window is 65,535; send 66,000 octets in one go.
  client.send_frame(h2::make_data(1, Bytes(66'000, 0xAB), false));
  pump(client, server);
  EXPECT_TRUE(client.goaway_received());
  EXPECT_EQ(client.goaway()->error, h2::ErrorCode::kFlowControlError);
}

TEST(Upload, TrailersCompleteTheRequest) {
  // §8.1: HEADERS (no ES) + DATA (no ES) + trailer HEADERS (ES). The
  // response must fire only once the trailers end the stream.
  auto server = Http2Server(server::h2o_profile(), Site::standard_testbed_site());
  ClientConnection client;
  hpack::Encoder enc;
  client.send_frame(h2::make_headers(
      1,
      enc.encode({{":method", "POST"},
                  {":scheme", "https"},
                  {":authority", "x"},
                  {":path", "/upload"},
                  {"trailer", "x-checksum"}}),
      /*end_stream=*/false));
  client.send_frame(h2::make_data(1, Bytes(500, 0x42), /*end_stream=*/false));
  pump(client, server);
  EXPECT_FALSE(client.stream_complete(1));  // request still open
  client.send_frame(h2::make_headers(
      1, enc.encode({{"x-checksum", "abc123"}}), /*end_stream=*/true));
  pump(client, server);
  EXPECT_TRUE(client.stream_complete(1));
  EXPECT_EQ(reported_received(client, 1), 500u);
}

TEST(Upload, GetRequestsStillAnsweredImmediately) {
  // Regression guard: deferring POST responses must not delay GETs.
  auto server = Http2Server(server::h2o_profile(), Site::standard_testbed_site());
  ClientConnection client;
  const auto get = client.send_request("/small");
  const auto post = client.send_request_with_body("/upload", body_of(10));
  pump(client, server);
  EXPECT_TRUE(client.stream_complete(get));
  EXPECT_TRUE(client.stream_complete(post));
}

}  // namespace
}  // namespace h2r
