// HPACK conformance tests, anchored on the RFC 7541 Appendix C vectors
// (validated externally against an independent implementation), plus unit
// coverage for the integer/Huffman primitives and table mechanics.
#include <gtest/gtest.h>

#include "hpack/decoder.h"
#include "hpack/encoder.h"
#include "hpack/huffman.h"
#include "hpack/integer.h"
#include "hpack/table.h"
#include "util/bytes.h"

namespace h2r::hpack {
namespace {

Bytes hex(std::string_view s) {
  auto r = from_hex(s);
  EXPECT_TRUE(r.ok()) << s;
  return r.value_or(Bytes{});
}

// ---------------------------------------------------------------- integers

TEST(HpackInteger, AppendixC1_SmallValueFitsPrefix) {
  ByteWriter w;
  encode_integer(w, 10, 5, 0);
  EXPECT_EQ(to_hex(w.bytes()), "0a");
}

TEST(HpackInteger, AppendixC1_1337With5BitPrefix) {
  ByteWriter w;
  encode_integer(w, 1337, 5, 0);
  EXPECT_EQ(to_hex(w.bytes()), "1f9a0a");
}

TEST(HpackInteger, AppendixC1_42With8BitPrefix) {
  ByteWriter w;
  encode_integer(w, 42, 8, 0);
  EXPECT_EQ(to_hex(w.bytes()), "2a");
}

TEST(HpackInteger, RoundTripsBoundaryValues) {
  for (int prefix = 1; prefix <= 8; ++prefix) {
    for (std::uint32_t v :
         {0u, 1u, 30u, 31u, 32u, 127u, 128u, 16383u, 0xFFFFFFFFu}) {
      ByteWriter w;
      encode_integer(w, v, prefix, 0);
      const Bytes buf = w.take();
      ByteReader r({buf.data(), buf.size()});
      const std::uint8_t first = r.read_u8().value();
      auto decoded = decode_integer(r, first, prefix);
      ASSERT_TRUE(decoded.ok()) << "prefix=" << prefix << " v=" << v;
      EXPECT_EQ(*decoded, v);
      EXPECT_TRUE(r.empty());
    }
  }
}

TEST(HpackInteger, DecodeRejectsOverflow) {
  // Prefix-full first octet followed by continuations pushing past 2^32-1.
  const Bytes buf = {0x80, 0x80, 0x80, 0x80, 0x10};  // ~2^32+
  ByteReader r({buf.data(), buf.size()});
  auto v = decode_integer(r, 0xFF, 8);
  EXPECT_EQ(v.status().code(), StatusCode::kCompressionError);
}

TEST(HpackInteger, DecodeRejectsTruncation) {
  const Bytes buf = {0x80};  // continuation bit set, no next octet
  ByteReader r({buf.data(), buf.size()});
  auto v = decode_integer(r, 0x1F, 5);
  EXPECT_FALSE(v.ok());
}

TEST(HpackInteger, EncodeRejectsBadPrefix) {
  ByteWriter w;
  EXPECT_THROW(encode_integer(w, 1, 0, 0), std::invalid_argument);
  EXPECT_THROW(encode_integer(w, 1, 9, 0), std::invalid_argument);
  EXPECT_THROW(encode_integer(w, 1, 5, 0x1F), std::invalid_argument);
}

// ----------------------------------------------------------------- huffman

TEST(Huffman, EncodesKnownVectors) {
  // From RFC 7541 C.4.1 / C.4.2: the Huffman codings of well-known strings.
  ByteWriter w1;
  huffman_encode(w1, "www.example.com");
  EXPECT_EQ(to_hex(w1.bytes()), "f1e3c2e5f23a6ba0ab90f4ff");

  ByteWriter w2;
  huffman_encode(w2, "no-cache");
  EXPECT_EQ(to_hex(w2.bytes()), "a8eb10649cbf");

  ByteWriter w3;
  huffman_encode(w3, "custom-key");
  EXPECT_EQ(to_hex(w3.bytes()), "25a849e95ba97d7f");
}

TEST(Huffman, DecodesKnownVectors) {
  auto d = huffman_decode(hex("f1e3c2e5f23a6ba0ab90f4ff"));
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(*d, "www.example.com");
}

TEST(Huffman, RoundTripsAllOctets) {
  std::string all;
  for (int i = 0; i < 256; ++i) all.push_back(static_cast<char>(i));
  ByteWriter w;
  huffman_encode(w, all);
  auto back = huffman_decode(w.bytes());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, all);
}

TEST(Huffman, EncodedSizePredictionMatches) {
  for (std::string_view s :
       {"", "a", "www.example.com", "Mon, 21 Oct 2013 20:13:21 GMT",
        "\x01\x02\xFE\xFF"}) {
    ByteWriter w;
    huffman_encode(w, s);
    EXPECT_EQ(w.size(), huffman_encoded_size(s)) << s;
  }
}

TEST(Huffman, RejectsEosInBody) {
  // 30 one-bits = the EOS code followed by valid padding.
  const Bytes buf = {0xFF, 0xFF, 0xFF, 0xFF};
  EXPECT_EQ(huffman_decode(buf).status().code(), StatusCode::kCompressionError);
}

TEST(Huffman, RejectsNonEosPadding) {
  // '0' encodes as 00000 (5 bits); remaining 3 bits zero = invalid padding.
  const Bytes buf = {0x00};
  EXPECT_EQ(huffman_decode(buf).status().code(), StatusCode::kCompressionError);
}

TEST(Huffman, AcceptsEosPrefixPadding) {
  // 'a' = 00011 (5 bits) + 111 padding = 0x1F.
  auto d = huffman_decode(hex("1f"));
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(*d, "a");
}

TEST(Huffman, EmptyInputDecodesToEmpty) {
  auto d = huffman_decode({});
  ASSERT_TRUE(d.ok());
  EXPECT_TRUE(d->empty());
}

// ------------------------------------------------------------------ tables

TEST(StaticTable, KnownAnchors) {
  EXPECT_EQ(static_table_entry(1).name, ":authority");
  EXPECT_EQ(static_table_entry(2).name, ":method");
  EXPECT_EQ(static_table_entry(2).value, "GET");
  EXPECT_EQ(static_table_entry(8).value, "200");
  EXPECT_EQ(static_table_entry(38).name, "host");
  EXPECT_EQ(static_table_entry(54).name, "server");
  EXPECT_EQ(static_table_entry(61).name, "www-authenticate");
  EXPECT_THROW(static_table_entry(0), std::out_of_range);
  EXPECT_THROW(static_table_entry(62), std::out_of_range);
}

TEST(IndexTable, InsertionOrderAndAddressing) {
  IndexTable t;
  t.insert({"x-a", "1"});
  t.insert({"x-b", "2"});
  // Most recent insertion occupies index 62.
  EXPECT_EQ(t.at(62)->name, "x-b");
  EXPECT_EQ(t.at(63)->name, "x-a");
  EXPECT_EQ(t.at(64).status().code(), StatusCode::kCompressionError);
  EXPECT_EQ(t.at(0).status().code(), StatusCode::kCompressionError);
}

TEST(IndexTable, SizeAccountingUses32OctetOverhead) {
  IndexTable t;
  t.insert({"ab", "cd"});  // 2 + 2 + 32 = 36
  EXPECT_EQ(t.size_octets(), 36u);
}

TEST(IndexTable, EvictsFromTail) {
  IndexTable t(/*capacity=*/72);  // room for exactly two 36-octet entries
  t.insert({"x1", "v1"});
  t.insert({"x2", "v2"});
  t.insert({"x3", "v3"});
  EXPECT_EQ(t.dynamic_entry_count(), 2u);
  EXPECT_EQ(t.at(62)->name, "x3");
  EXPECT_EQ(t.at(63)->name, "x2");  // x1 evicted
}

TEST(IndexTable, OversizeEntryFlushesTable) {
  IndexTable t(/*capacity=*/40);
  t.insert({"ab", "cd"});
  t.insert({"this-name-is-way-too-long-to-fit", "and-so-is-this-value"});
  EXPECT_EQ(t.dynamic_entry_count(), 0u);
  EXPECT_EQ(t.size_octets(), 0u);
}

TEST(IndexTable, CapacityReductionEvicts) {
  IndexTable t;
  t.insert({"x1", "v1"});
  t.insert({"x2", "v2"});
  t.set_capacity(36);
  EXPECT_EQ(t.dynamic_entry_count(), 1u);
  EXPECT_EQ(t.at(62)->name, "x2");
}

TEST(IndexTable, FindPrefersFullMatch) {
  IndexTable t;
  // ":method GET" fully matches static index 2.
  auto m = t.find({":method", "GET"});
  EXPECT_EQ(m.index, 2u);
  EXPECT_TRUE(m.value_matched);
  // ":method DELETE" name-matches index 2 (first :method entry).
  m = t.find({":method", "DELETE"});
  EXPECT_EQ(m.index, 2u);
  EXPECT_FALSE(m.value_matched);
  // Unknown name: no match.
  m = t.find({"x-nope", "1"});
  EXPECT_EQ(m.index, 0u);
}

TEST(IndexTable, FindSeesDynamicEntries) {
  IndexTable t;
  t.insert({"x-custom", "abc"});
  auto m = t.find({"x-custom", "abc"});
  EXPECT_EQ(m.index, 62u);
  EXPECT_TRUE(m.value_matched);
}

// --------------------------------------------- Appendix C: header blocks

const HeaderList kRequest1 = {{":method", "GET"},
                              {":scheme", "http"},
                              {":path", "/"},
                              {":authority", "www.example.com"}};
const HeaderList kRequest2 = {{":method", "GET"},
                              {":scheme", "http"},
                              {":path", "/"},
                              {":authority", "www.example.com"},
                              {"cache-control", "no-cache"}};
const HeaderList kRequest3 = {{":method", "GET"},
                              {":scheme", "https"},
                              {":path", "/index.html"},
                              {":authority", "www.example.com"},
                              {"custom-key", "custom-value"}};

TEST(HpackAppendixC, C3_RequestsWithoutHuffman_EncodeExactly) {
  Encoder enc({.policy = IndexingPolicy::kAggressive, .use_huffman = false});
  EXPECT_EQ(to_hex(enc.encode(kRequest1)),
            "828684410f7777772e6578616d706c652e636f6d");
  EXPECT_EQ(to_hex(enc.encode(kRequest2)), "828684be58086e6f2d6361636865");
  EXPECT_EQ(to_hex(enc.encode(kRequest3)),
            "828785bf400a637573746f6d2d6b65790c637573746f6d2d76616c7565");
  EXPECT_EQ(enc.table().dynamic_entry_count(), 3u);
}

TEST(HpackAppendixC, C4_RequestsWithHuffman_EncodeExactly) {
  Encoder enc({.policy = IndexingPolicy::kAggressive, .use_huffman = true});
  EXPECT_EQ(to_hex(enc.encode(kRequest1)),
            "828684418cf1e3c2e5f23a6ba0ab90f4ff");
  EXPECT_EQ(to_hex(enc.encode(kRequest2)), "828684be5886a8eb10649cbf");
  EXPECT_EQ(to_hex(enc.encode(kRequest3)),
            "828785bf408825a849e95ba97d7f8925a849e95bb8e8b4bf");
}

TEST(HpackAppendixC, C3_RequestsDecodeExactly) {
  Decoder dec;
  auto h1 = dec.decode(hex("828684410f7777772e6578616d706c652e636f6d"));
  ASSERT_TRUE(h1.ok());
  EXPECT_EQ(*h1, kRequest1);
  auto h2 = dec.decode(hex("828684be58086e6f2d6361636865"));
  ASSERT_TRUE(h2.ok());
  EXPECT_EQ(*h2, kRequest2);
  auto h3 =
      dec.decode(hex("828785bf400a637573746f6d2d6b65790c637573746f6d2d76616c7565"));
  ASSERT_TRUE(h3.ok());
  EXPECT_EQ(*h3, kRequest3);
}

TEST(HpackAppendixC, C4_HuffmanRequestsDecodeExactly) {
  Decoder dec;
  auto h1 = dec.decode(hex("828684418cf1e3c2e5f23a6ba0ab90f4ff"));
  ASSERT_TRUE(h1.ok());
  EXPECT_EQ(*h1, kRequest1);
  auto h2 = dec.decode(hex("828684be5886a8eb10649cbf"));
  ASSERT_TRUE(h2.ok());
  EXPECT_EQ(*h2, kRequest2);
  auto h3 = dec.decode(
      hex("828785bf408825a849e95ba97d7f8925a849e95bb8e8b4bf"));
  ASSERT_TRUE(h3.ok());
  EXPECT_EQ(*h3, kRequest3);
}

const HeaderList kResponse1 = {
    {":status", "302"},
    {"cache-control", "private"},
    {"date", "Mon, 21 Oct 2013 20:13:21 GMT"},
    {"location", "https://www.example.com"}};
const HeaderList kResponse2 = {
    {":status", "307"},
    {"cache-control", "private"},
    {"date", "Mon, 21 Oct 2013 20:13:21 GMT"},
    {"location", "https://www.example.com"}};
const HeaderList kResponse3 = {
    {":status", "200"},
    {"cache-control", "private"},
    {"date", "Mon, 21 Oct 2013 20:13:22 GMT"},
    {"location", "https://www.example.com"},
    {"content-encoding", "gzip"},
    {"set-cookie", "foo=ASDJKHQKBZXOQWEOPIUAXQWEOIU; max-age=3600; version=1"}};

TEST(HpackAppendixC, C5_ResponsesWithEvictionDecodeExactly) {
  // Table capacity 256 forces evictions across the three blocks.
  Decoder dec({.max_table_capacity = 256, .max_header_list_size = {}});
  auto h1 = dec.decode(hex(
      "4803333032580770726976617465611d4d6f6e2c203231204f637420323031332032"
      "303a31333a323120474d546e1768747470733a2f2f7777772e6578616d706c652e63"
      "6f6d"));
  ASSERT_TRUE(h1.ok()) << h1.status().to_string();
  EXPECT_EQ(*h1, kResponse1);
  auto h2 = dec.decode(hex("4803333037c1c0bf"));
  ASSERT_TRUE(h2.ok()) << h2.status().to_string();
  EXPECT_EQ(*h2, kResponse2);
  auto h3 = dec.decode(hex(
      "88c1611d4d6f6e2c203231204f637420323031332032303a31333a323220474d54c0"
      "5a04677a69707738666f6f3d4153444a4b48514b425a584f5157454f504955415851"
      "57454f49553b206d61782d6167653d333630303b2076657273696f6e3d31"));
  ASSERT_TRUE(h3.ok()) << h3.status().to_string();
  EXPECT_EQ(*h3, kResponse3);
}

TEST(HpackAppendixC, C6_HuffmanResponsesDecodeExactly) {
  Decoder dec({.max_table_capacity = 256, .max_header_list_size = {}});
  auto h1 = dec.decode(hex(
      "488264025885aec3771a4b6196d07abe941054d444a8200595040b8166e082a62d1b"
      "ff6e919d29ad171863c78f0b97c8e9ae82ae43d3"));
  ASSERT_TRUE(h1.ok()) << h1.status().to_string();
  EXPECT_EQ(*h1, kResponse1);
  auto h2 = dec.decode(hex("4883640effc1c0bf"));
  ASSERT_TRUE(h2.ok()) << h2.status().to_string();
  EXPECT_EQ(*h2, kResponse2);
  auto h3 = dec.decode(hex(
      "88c16196d07abe941054d444a8200595040b8166e084a62d1bffc05a839bd9ab77ad"
      "94e7821dd7f2e6c7b335dfdfcd5b3960d5af27087f3672c1ab270fb5291f95873160"
      "65c003ed4ee5b1063d5007"));
  ASSERT_TRUE(h3.ok()) << h3.status().to_string();
  EXPECT_EQ(*h3, kResponse3);
  // After block 3 the table holds the three most recent entries only.
  EXPECT_EQ(dec.table().dynamic_entry_count(), 3u);
}

// ------------------------------------------------- encoder/decoder pairing

TEST(HpackPair, RoundTripUnderAllPolicies) {
  const HeaderList headers = {{":status", "200"},
                              {"server", "h2o/1.6.2"},
                              {"x-custom-header", "some opaque value"},
                              {"set-cookie", "a=b; Secure", /*never=*/true}};
  for (auto policy : {IndexingPolicy::kAggressive, IndexingPolicy::kStaticOnly,
                      IndexingPolicy::kNone}) {
    for (bool huffman : {false, true}) {
      Encoder enc({.policy = policy, .use_huffman = huffman});
      Decoder dec;
      for (int round = 0; round < 3; ++round) {
        auto got = dec.decode(enc.encode(headers));
        ASSERT_TRUE(got.ok()) << got.status().to_string();
        ASSERT_EQ(got->size(), headers.size());
        for (std::size_t i = 0; i < headers.size(); ++i) {
          EXPECT_EQ((*got)[i].name, headers[i].name);
          EXPECT_EQ((*got)[i].value, headers[i].value);
        }
      }
    }
  }
}

TEST(HpackPair, NeverIndexedSurvivesRoundTrip) {
  Encoder enc;
  Decoder dec;
  const HeaderList headers = {{"authorization", "Bearer token", true}};
  auto got = dec.decode(enc.encode(headers));
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE((*got)[0].never_indexed);
}

TEST(HpackPair, AggressiveShrinksRepeatedBlocks) {
  Encoder enc({.policy = IndexingPolicy::kAggressive});
  const HeaderList headers = {{":status", "200"},
                              {"server", "nginx/1.9.15"},
                              {"etag", "\"abc123\""}};
  const std::size_t first = enc.encode(headers).size();
  const std::size_t second = enc.encode(headers).size();
  EXPECT_LT(second, first);
  EXPECT_EQ(second, headers.size());  // one indexed octet per field
}

TEST(HpackPair, StaticOnlyPolicyNeverShrinks) {
  Encoder enc({.policy = IndexingPolicy::kStaticOnly});
  const HeaderList headers = {{":status", "200"},
                              {"server", "nginx/1.9.15"},
                              {"etag", "\"abc123\""}};
  const std::size_t first = enc.encode(headers).size();
  const std::size_t second = enc.encode(headers).size();
  EXPECT_EQ(second, first);
  EXPECT_EQ(enc.table().dynamic_entry_count(), 0u);
}

TEST(HpackPair, TableCapacityUpdateInstructionFlows) {
  Encoder enc;
  Decoder dec;
  enc.set_table_capacity(128);
  auto got = dec.decode(enc.encode({{"x", "y"}}));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(dec.table().capacity(), 128u);
}

TEST(HpackDecoder, RejectsTableUpdateBeyondAdvertised) {
  // Size update to 8192 when we advertised 4096: compression error.
  ByteWriter w;
  encode_integer(w, 8192, 5, 0x20);
  Decoder dec;
  EXPECT_EQ(dec.decode(w.bytes()).status().code(),
            StatusCode::kCompressionError);
}

TEST(HpackDecoder, RejectsTableUpdateAfterFields) {
  ByteWriter w;
  w.write_u8(0x82);                    // :method GET
  encode_integer(w, 0, 5, 0x20);       // size update — illegal here
  Decoder dec;
  EXPECT_EQ(dec.decode(w.bytes()).status().code(),
            StatusCode::kCompressionError);
}

TEST(HpackDecoder, RejectsInvalidIndex) {
  Decoder dec;
  const Bytes buf = {0xFF, 0x00};  // indexed field, index 127: empty dynamic
  EXPECT_EQ(dec.decode(buf).status().code(), StatusCode::kCompressionError);
}

TEST(HpackDecoder, EnforcesMaxHeaderListSize) {
  Decoder dec({.max_header_list_size = 50});
  Encoder enc;
  const HeaderList big = {{"x-large-header", std::string(100, 'v')}};
  EXPECT_EQ(dec.decode(enc.encode(big)).status().code(), StatusCode::kRefused);
}

TEST(HpackDecoder, TruncatedLiteralFails) {
  // Literal with incremental indexing announcing a 10-octet name, 2 given.
  const Bytes buf = {0x40, 0x0a, 'a', 'b'};
  Decoder dec;
  EXPECT_FALSE(dec.decode(buf).ok());
}

}  // namespace
}  // namespace h2r::hpack
