// Probe-suite integration tests: each probe, run against the testbed
// profiles, must reproduce the corresponding cell of the paper's Table III.
#include <gtest/gtest.h>

#include "core/probes.h"
#include "core/report.h"

namespace h2r::core {
namespace {

Target testbed(const std::string& key) {
  return Target::testbed(server::profile_by_key(key));
}

TEST(NegotiationProbe, ApacheLacksNpn) {
  auto apache = probe_negotiation(testbed("apache"));
  EXPECT_TRUE(apache.alpn_h2);
  EXPECT_FALSE(apache.npn_h2);
  EXPECT_TRUE(apache.h2_established);
  auto nginx = probe_negotiation(testbed("nginx"));
  EXPECT_TRUE(nginx.alpn_h2);
  EXPECT_TRUE(nginx.npn_h2);
}

TEST(NegotiationProbe, NonH2SiteFailsToEstablish) {
  Target t = testbed("nginx");
  t.profile.tls.protocols = {net::kProtoHttp11};
  auto r = probe_negotiation(t);
  EXPECT_FALSE(r.h2_established);
}

TEST(H2cProbe, UpgradeFollowsProfileFlag) {
  Target yes = testbed("nghttpd");
  yes.profile.supports_h2c = true;
  auto r1 = probe_h2c_upgrade(yes);
  EXPECT_TRUE(r1.switched);
  EXPECT_EQ(r1.status_line, "HTTP/1.1 101 Switching Protocols");

  Target no = testbed("nginx");
  no.profile.supports_h2c = false;
  auto r2 = probe_h2c_upgrade(no);
  EXPECT_FALSE(r2.switched);
  EXPECT_EQ(r2.status_line, "HTTP/1.1 200 OK");
}

TEST(SettingsProbe, ReadsAnnouncedValues) {
  auto r = probe_settings(testbed("h2o"));
  EXPECT_TRUE(r.headers_received);
  EXPECT_EQ(r.max_concurrent_streams, std::optional<std::uint32_t>(100));
  EXPECT_EQ(r.initial_window_size, std::optional<std::uint32_t>(16'777'216));
  EXPECT_EQ(r.max_frame_size, std::optional<std::uint32_t>(16'777'215));
  EXPECT_EQ(r.max_header_list_size, std::nullopt);  // unlimited
  EXPECT_EQ(r.server_header, "h2o/1.6.2");
}

TEST(SettingsProbe, SeesNginxZeroWindowIdiom) {
  auto r = probe_settings(testbed("nginx"));
  EXPECT_EQ(r.initial_window_size, std::optional<std::uint32_t>(0));
  EXPECT_GT(r.preemptive_window_bonus, 0u);
  EXPECT_EQ(r.server_header, "nginx/1.9.15");
}

TEST(MultiplexingProbe, AllTestbedServersInterleave) {
  for (const auto& p : server::testbed_profiles()) {
    auto r = probe_multiplexing(Target::testbed(p));
    EXPECT_TRUE(r.supported) << p.key;
    EXPECT_EQ(r.streams_completed, 4) << p.key;
  }
}

TEST(MultiplexingProbe, FcfsAblationDoesNotInterleave) {
  Target t = testbed("h2o");
  t.profile.scheduler = server::SchedulerKind::kFcfs;
  auto r = probe_multiplexing(t);
  EXPECT_FALSE(r.supported);
  EXPECT_EQ(r.streams_completed, 4);  // everything arrives, just serially
  EXPECT_EQ(r.interleave_switches, 3);
}

TEST(ConcurrencyLimitProbe, RefusalsMatchPaper) {
  // §V-A last paragraph (measured on Nginx/Tengine).
  for (const std::string key : {"nginx", "tengine"}) {
    auto r = probe_concurrency_limit(testbed(key));
    EXPECT_TRUE(r.refused_when_zero) << key;
    EXPECT_TRUE(r.refused_second_when_one) << key;
  }
}

TEST(DataFrameControlProbe, TestbedServersRespectSframe) {
  for (const auto& p : server::testbed_profiles()) {
    auto r = probe_data_frame_control(Target::testbed(p));
    EXPECT_EQ(r.outcome, SmallWindowOutcome::kRespectsWindow) << p.key;
    EXPECT_EQ(r.first_data_size, 1u) << p.key;
  }
}

TEST(DataFrameControlProbe, DetectsWildVariants) {
  Target zero = testbed("h2o");
  zero.profile.small_window_behavior =
      server::SmallWindowBehavior::kZeroLengthData;
  EXPECT_EQ(probe_data_frame_control(zero).outcome,
            SmallWindowOutcome::kZeroLengthData);

  Target stall = testbed("litespeed");
  stall.profile.small_window_behavior = server::SmallWindowBehavior::kStall;
  EXPECT_EQ(probe_data_frame_control(stall).outcome,
            SmallWindowOutcome::kNoResponse);
}

TEST(ZeroWindowHeadersProbe, OnlyLiteSpeedWithholdsHeaders) {
  for (const auto& p : server::testbed_profiles()) {
    auto r = probe_zero_window_headers(Target::testbed(p));
    if (p.key == "litespeed") {
      EXPECT_FALSE(r.headers_received) << p.key;
    } else {
      EXPECT_TRUE(r.headers_received) << p.key;
    }
    EXPECT_FALSE(r.data_received) << p.key;
  }
}

TEST(WindowUpdateProbe, ZeroUpdateReactionsMatchTable3) {
  const std::map<std::string, UpdateReaction> expected_stream = {
      {"nginx", UpdateReaction::kIgnored},
      {"litespeed", UpdateReaction::kRstStream},
      {"h2o", UpdateReaction::kRstStream},
      {"nghttpd", UpdateReaction::kGoaway},
      {"tengine", UpdateReaction::kIgnored},
      {"apache", UpdateReaction::kGoaway},
  };
  const std::map<std::string, UpdateReaction> expected_conn = {
      {"nginx", UpdateReaction::kIgnored},
      {"litespeed", UpdateReaction::kGoaway},
      {"h2o", UpdateReaction::kGoaway},
      {"nghttpd", UpdateReaction::kGoaway},
      {"tengine", UpdateReaction::kIgnored},
      {"apache", UpdateReaction::kGoaway},
  };
  for (const auto& p : server::testbed_profiles()) {
    auto r = probe_window_update_reactions(Target::testbed(p));
    EXPECT_EQ(r.zero_on_stream, expected_stream.at(p.key)) << p.key;
    EXPECT_EQ(r.zero_on_connection, expected_conn.at(p.key)) << p.key;
  }
}

TEST(WindowUpdateProbe, LargeUpdateReactionsUniformAcrossTestbed) {
  // Table III: every server answers overflow with RST_STREAM (stream) and
  // GOAWAY (connection).
  for (const auto& p : server::testbed_profiles()) {
    auto r = probe_window_update_reactions(Target::testbed(p));
    EXPECT_EQ(r.large_on_stream, UpdateReaction::kRstStream) << p.key;
    EXPECT_EQ(r.large_on_connection, UpdateReaction::kGoaway) << p.key;
  }
}

TEST(WindowUpdateProbe, DebugDataVariantSurfacesText) {
  Target t = testbed("h2o");
  t.profile.zero_window_update_stream = server::ErrorReaction::kGoawayWithDebug;
  auto r = probe_window_update_reactions(t);
  EXPECT_EQ(r.zero_on_stream, UpdateReaction::kGoawayWithDebug);
  EXPECT_EQ(r.zero_debug_data, "window update shouldn't be zero");
}

TEST(PriorityProbe, PassFailMatchesTable3) {
  const std::map<std::string, bool> expected = {
      {"nginx", false},   {"litespeed", false}, {"h2o", true},
      {"nghttpd", true},  {"tengine", false},   {"apache", true},
  };
  for (const auto& p : server::testbed_profiles()) {
    auto r = probe_priority_mechanism(Target::testbed(p));
    EXPECT_TRUE(r.ran) << p.key;
    EXPECT_EQ(r.passes(), expected.at(p.key)) << p.key;
  }
}

TEST(PriorityProbe, FairShareSchedulerPassesLastRuleOnly) {
  // The wild-corpus servers behind the "1,147 / 2,187 sites by last-DATA"
  // numbers of SectionV-E1.
  Target t = testbed("h2o");
  t.profile.scheduler = server::SchedulerKind::kFairShare;
  auto r = probe_priority_mechanism(t);
  ASSERT_TRUE(r.ran);
  EXPECT_TRUE(r.pass_by_last_data);
  EXPECT_FALSE(r.pass_by_first_data);
  EXPECT_FALSE(r.passes());
}

TEST(PriorityProbe, PriorityStartSchedulerPassesFirstRuleOnly) {
  Target t = testbed("h2o");
  t.profile.scheduler = server::SchedulerKind::kPriorityStart;
  auto r = probe_priority_mechanism(t);
  ASSERT_TRUE(r.ran);
  EXPECT_TRUE(r.pass_by_first_data);
  EXPECT_FALSE(r.pass_by_last_data);
  EXPECT_FALSE(r.passes());
}

TEST(PriorityProbe, PassingServersSatisfyBothOrderings) {
  auto r = probe_priority_mechanism(testbed("nghttpd"));
  EXPECT_TRUE(r.pass_by_first_data);
  EXPECT_TRUE(r.pass_by_last_data);
}

TEST(SelfDependencyProbe, ReactionsMatchTable3) {
  const std::map<std::string, UpdateReaction> expected = {
      {"nginx", UpdateReaction::kRstStream},
      {"litespeed", UpdateReaction::kIgnored},
      {"h2o", UpdateReaction::kGoaway},
      {"nghttpd", UpdateReaction::kGoaway},
      {"tengine", UpdateReaction::kRstStream},
      {"apache", UpdateReaction::kGoaway},
  };
  for (const auto& p : server::testbed_profiles()) {
    auto r = probe_self_dependency(Target::testbed(p));
    EXPECT_EQ(r.reaction, expected.at(p.key)) << p.key;
  }
}

TEST(PushProbe, SupportMatchesTable3) {
  const std::map<std::string, bool> expected = {
      {"nginx", false},  {"litespeed", false}, {"h2o", true},
      {"nghttpd", true}, {"tengine", false},   {"apache", true},
  };
  for (const auto& p : server::testbed_profiles()) {
    auto r = probe_server_push(Target::testbed(p));
    EXPECT_EQ(r.push_received, expected.at(p.key)) << p.key;
    if (r.push_received) {
      EXPECT_EQ(r.pushed_paths.size(), 3u) << p.key;
      EXPECT_GT(r.pushed_bytes, 0u) << p.key;
    }
  }
}

TEST(PushProbe, NoPushOnNonFrontPage) {
  auto r = probe_server_push(testbed("h2o"), "/small");
  EXPECT_FALSE(r.push_received);  // §V-F: only front pages push
}

TEST(HpackProbe, AggressiveServersCompressWell) {
  for (const std::string key : {"h2o", "nghttpd", "apache", "litespeed"}) {
    auto r = probe_hpack_ratio(testbed(key));
    ASSERT_TRUE(r.ran) << key;
    EXPECT_LT(r.ratio, 0.45) << key;  // paper: well below 1
    // Followers are dramatically smaller than the first block.
    EXPECT_LT(r.header_sizes.back(), r.header_sizes.front() / 3) << key;
  }
}

TEST(HpackProbe, NginxTengineRatioIsOne) {
  for (const std::string key : {"nginx", "tengine"}) {
    auto r = probe_hpack_ratio(testbed(key));
    ASSERT_TRUE(r.ran) << key;
    EXPECT_DOUBLE_EQ(r.ratio, 1.0) << key;  // §V-G: 93.5% of Nginx at r=1
  }
}

TEST(HpackProbe, CookieChurnPushesRatioAboveOne) {
  // Churn only exceeds 1 on servers that don't index response headers —
  // indexed later blocks would otherwise shrink below the first.
  Target t = testbed("nginx");
  t.site.set_cookie_churn(true);
  auto r = probe_hpack_ratio(t);
  ASSERT_TRUE(r.ran);
  EXPECT_GT(r.ratio, 1.0);  // the sites the paper filters out (§V-G)
}

TEST(PingProbe, AllTestbedServersAnswer) {
  Rng rng(1);
  for (const auto& p : server::testbed_profiles()) {
    auto r = probe_ping(Target::testbed(p), 4, rng);
    EXPECT_TRUE(r.supported) << p.key;
    EXPECT_EQ(r.h2_ping_ms.size(), 4u) << p.key;
  }
}

TEST(PingProbe, Http11EstimateIsSlower) {
  Rng rng(2);
  auto r = probe_ping(testbed("nginx"), 32, rng);
  double ping_avg = 0, http_avg = 0;
  for (double v : r.h2_ping_ms) ping_avg += v;
  for (double v : r.http11_ms) http_avg += v;
  EXPECT_GT(http_avg / 32, ping_avg / 32 + 10);  // think time dominates
}

TEST(Characterize, ReproducesTable3Columns) {
  // End-to-end: the full characterization of each testbed server must equal
  // the corresponding Table III column, cell for cell.
  using Row = std::vector<std::string>;
  const std::map<std::string, Row> expected = {
      {"nginx",
       {"support", "support", "support", "yes", "no", "ignore", "ignore",
        "GOAWAY", "RST_STREAM", "no", "fail", "RST_STREAM", "support*",
        "support"}},
      {"litespeed",
       {"support", "support", "support", "yes", "yes", "RST_STREAM", "GOAWAY",
        "GOAWAY", "RST_STREAM", "no", "fail", "ignore", "support", "support"}},
      {"h2o",
       {"support", "support", "support", "yes", "no", "RST_STREAM", "GOAWAY",
        "GOAWAY", "RST_STREAM", "yes", "pass", "GOAWAY", "support", "support"}},
      {"nghttpd",
       {"support", "support", "support", "yes", "no", "GOAWAY", "GOAWAY",
        "GOAWAY", "RST_STREAM", "yes", "pass", "GOAWAY", "support", "support"}},
      {"tengine",
       {"support", "support", "support", "yes", "no", "ignore", "ignore",
        "GOAWAY", "RST_STREAM", "no", "fail", "RST_STREAM", "support*",
        "support"}},
      {"apache",
       {"support", "no support", "support", "yes", "no", "GOAWAY", "GOAWAY",
        "GOAWAY", "RST_STREAM", "yes", "pass", "GOAWAY", "support", "support"}},
  };
  Rng rng(3);
  for (const auto& p : server::testbed_profiles()) {
    const auto c = characterize(Target::testbed(p), rng);
    EXPECT_EQ(c.row_values(), expected.at(p.key)) << p.key;
  }
}

}  // namespace
}  // namespace h2r::core
