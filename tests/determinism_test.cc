// Determinism guarantees: the whole system is a pure function of its inputs
// and seeds — the property that makes the measurement reproduction
// re-runnable bit-for-bit, and the one most easily broken by an accidental
// wall-clock or unordered-container dependency.
#include <gtest/gtest.h>

#include "core/client.h"
#include "core/report.h"
#include "net/transport.h"
#include "pageload/loader.h"
#include "server/engine.h"

namespace h2r {
namespace {

using core::ClientConnection;
using server::Http2Server;
using server::Site;

/// Client-side wire tap: the endpoint vocabulary over a real client, with
/// every server-emitted octet mirrored into @p sink before delivery.
struct TappedClient {
  ClientConnection& client;
  Bytes& sink;

  [[nodiscard]] Bytes take_output() { return client.take_output(); }
  void receive(std::span<const std::uint8_t> bytes) {
    sink.insert(sink.end(), bytes.begin(), bytes.end());
    client.receive(bytes);
  }
  void recycle(Bytes buffer) { client.recycle(std::move(buffer)); }
  [[nodiscard]] bool alive() const { return client.alive(); }
};

/// Runs one scripted session and returns every byte the server emitted.
Bytes scripted_session_output(const server::ServerProfile& profile) {
  Http2Server server(profile, Site::standard_testbed_site());
  ClientConnection client;
  Bytes all;
  TappedClient tap{client, all};
  net::LockstepTransport transport;  // one transport, one connection
  auto pump = [&] { transport.run(tap, server); };
  client.send_request("/");
  pump();
  client.send_request("/large/0",
                      h2::PriorityInfo{.dependency = 1, .weight_field = 99});
  client.send_request("/object/3");
  pump();
  client.send_ping({1, 2, 3, 4, 5, 6, 7, 8});
  client.send_window_update(0, 12345);
  pump();
  client.send_request_with_body("/upload", Bytes(70'000, 0x5C));
  pump();
  return all;
}

class DeterminismMatrix : public ::testing::TestWithParam<std::string> {};

TEST_P(DeterminismMatrix, ServerByteStreamIsReproducible) {
  const auto profile = server::profile_by_key(GetParam());
  const Bytes first = scripted_session_output(profile);
  const Bytes second = scripted_session_output(profile);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Profiles, DeterminismMatrix,
                         ::testing::Values("nginx", "litespeed", "h2o",
                                           "nghttpd", "apache", "gse"));

TEST(Determinism, CharacterizationStableAcrossProcessOrder) {
  // Characterizing B then A must equal A then B: probes share no state.
  Rng r1(42), r2(42);
  const auto a1 = core::characterize(
      core::Target::testbed(server::nginx_profile()), r1);
  (void)core::characterize(core::Target::testbed(server::apache_profile()), r2);
  const auto a2 = core::characterize(
      core::Target::testbed(server::nginx_profile()), r2);
  EXPECT_EQ(a1.row_values(), a2.row_values());
  EXPECT_EQ(a1.hpack.header_sizes, a2.hpack.header_sizes);
}

TEST(Determinism, PageLoadIsSeedStable) {
  Rng build(3);
  const pageload::Page page = pageload::Page::synthesize("det.example", build);
  pageload::LoadConditions cond;
  cond.path.base_rtt_ms = 77;
  Rng v1(9), v2(9);
  EXPECT_DOUBLE_EQ(pageload::simulate_page_load_ms(page, cond, v1),
                   pageload::simulate_page_load_ms(page, cond, v2));
}

}  // namespace
}  // namespace h2r
