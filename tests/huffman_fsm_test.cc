// Differential tests for the Huffman FSM decoder: on every input — valid
// encodings, random garbage, and hand-built adversarial paddings — the
// byte-at-a-time FSM must agree with the retained bit-walk reference
// decoder on both the decoded value and the exact error message. The
// probes key error categories off those messages, so "agree" means
// string-equal, not merely both-failed.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "hpack/huffman.h"
#include "util/bytes.h"
#include "util/rng.h"

namespace h2r::hpack {
namespace {

/// Asserts FSM and reference agree exactly on @p data.
void expect_agreement(const Bytes& data) {
  const auto fsm = huffman_decode(data);
  const auto ref = huffman_decode_reference(data);
  ASSERT_EQ(fsm.ok(), ref.ok()) << "input: " << to_hex(data);
  if (fsm.ok()) {
    EXPECT_EQ(fsm.value(), ref.value()) << "input: " << to_hex(data);
  } else {
    EXPECT_EQ(fsm.status().message(), ref.status().message())
        << "input: " << to_hex(data);
  }
}

Bytes encode(const std::string& s) {
  ByteWriter out;
  huffman_encode(out, s);
  return out.take();
}

TEST(HuffmanFsm, DecodesEveryRoundTrippedSingleOctet) {
  for (int c = 0; c < 256; ++c) {
    const std::string s(1, static_cast<char>(c));
    const Bytes wire = encode(s);
    const auto decoded = huffman_decode(wire);
    ASSERT_TRUE(decoded.ok()) << c;
    EXPECT_EQ(decoded.value(), s) << c;
    expect_agreement(wire);
  }
}

TEST(HuffmanFsm, AgreesOnRandomStrings) {
  Rng rng(20170605);
  for (int iter = 0; iter < 2000; ++iter) {
    const std::size_t len = rng.next_below(64);
    std::string s;
    s.reserve(len);
    for (std::size_t i = 0; i < len; ++i) {
      s.push_back(static_cast<char>(rng.next_below(256)));
    }
    const Bytes wire = encode(s);
    const auto decoded = huffman_decode(wire);
    ASSERT_TRUE(decoded.ok()) << to_hex(wire);
    EXPECT_EQ(decoded.value(), s);
    expect_agreement(wire);
  }
}

TEST(HuffmanFsm, AgreesOnRandomRawBytes) {
  // Mostly invalid streams: wrong padding, truncated codes, EOS prefixes.
  // The FSM must reproduce the reference's verdict byte-for-byte.
  Rng rng(41);
  for (int iter = 0; iter < 5000; ++iter) {
    const std::size_t len = rng.next_below(24);
    Bytes data;
    data.reserve(len);
    for (std::size_t i = 0; i < len; ++i) {
      data.push_back(static_cast<std::uint8_t>(rng.next_below(256)));
    }
    expect_agreement(data);
  }
}

TEST(HuffmanFsm, AgreesOnAllOnesTails) {
  // Valid encodings with 0..4 extra 0xff octets appended: the first extra
  // octet pushes the pending EOS prefix past 7 bits, later ones walk into
  // the EOS leaf itself.
  Rng rng(7);
  for (int iter = 0; iter < 200; ++iter) {
    std::string s;
    const std::size_t len = rng.next_below(16);
    for (std::size_t i = 0; i < len; ++i) {
      s.push_back(static_cast<char>(rng.next_below(256)));
    }
    Bytes wire = encode(s);
    for (int extra = 0; extra < 4; ++extra) {
      wire.push_back(0xff);
      expect_agreement(wire);
    }
  }
}

TEST(HuffmanFsm, RejectsEosPrefixPaddingLongerThanSevenBits) {
  // 16 one-bits: a strict EOS prefix, but twice the §5.2 limit.
  const Bytes data = {0xff, 0xff};
  const auto decoded = huffman_decode(data);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().message(), "Huffman: padding longer than 7 bits");
  expect_agreement(data);
}

TEST(HuffmanFsm, RejectsEosDecodedInBody) {
  // 32 one-bits: the EOS code (30 ones) completes inside the stream.
  const Bytes data = {0xff, 0xff, 0xff, 0xff};
  const auto decoded = huffman_decode(data);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().message(), "Huffman: EOS decoded in body");
  expect_agreement(data);
}

TEST(HuffmanFsm, RejectsNonOnesPadding) {
  // 'a' = 00011 (5 bits) followed by 000: padding must be EOS bits (ones).
  const Bytes data = {0x18};
  const auto decoded = huffman_decode(data);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().message(), "Huffman: padding is not an EOS prefix");
  expect_agreement(data);
}

TEST(HuffmanFsm, RejectsTruncatedSymbol) {
  // '\x01' has a 26-bit code; its first octet alone leaves a 8-bit pending
  // path, which can never be valid padding.
  const Bytes full = encode(std::string(1, '\x01'));
  ASSERT_GT(full.size(), 1u);
  for (std::size_t cut = 1; cut < full.size(); ++cut) {
    const Bytes truncated(full.begin(), full.begin() + static_cast<long>(cut));
    EXPECT_FALSE(huffman_decode(truncated).ok()) << cut;
    expect_agreement(truncated);
  }
}

TEST(HuffmanFsm, EmptyInputDecodesToEmptyString) {
  const Bytes data;
  const auto decoded = huffman_decode(data);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded.value().empty());
  expect_agreement(data);
}

}  // namespace
}  // namespace h2r::hpack
