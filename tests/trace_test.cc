// H2Wiretap determinism and aggregation tests.
//
// The subsystem's whole value rests on two properties: (1) identical probe
// runs produce byte-identical JSONL traces, so traces can be diffed across
// code versions, and (2) metrics aggregation is independent of how the
// scan was sharded across H2R_THREADS workers, so reports are comparable
// across machines.
#include <gtest/gtest.h>

#include <string>

#include "core/report.h"
#include "corpus/population.h"
#include "net/clock.h"
#include "corpus/scan.h"
#include "server/profile.h"
#include "trace/annotate.h"
#include "trace/event.h"
#include "trace/metrics.h"
#include "trace/recorder.h"

namespace h2r::trace {
namespace {

// ------------------------------------------------------------- event model

TEST(TraceEvent, JsonlHasStableFieldOrderAndEscaping) {
  TraceEvent ev;
  ev.seq = 3;
  ev.dir = Direction::kServerToClient;
  ev.kind = EventKind::kFrame;
  ev.stream_id = 5;
  ev.frame_type = 0x0;  // DATA
  ev.flags = 0x1;
  ev.wire_length = 17;
  ev.detail_a = 8;
  ev.note = "quote\" and \\slash";
  ev.tags = {"a-tag"};

  std::string line;
  append_jsonl(line, ev, "host.test");
  EXPECT_EQ(line,
            "{\"site\":\"host.test\",\"seq\":3,\"t\":0.000,\"dir\":\"s2c\","
            "\"kind\":\"frame\",\"stream\":5,\"type\":\"DATA\",\"flags\":1,"
            "\"len\":17,\"a\":8,\"b\":0,\"note\":\"quote\\\" and "
            "\\\\slash\",\"tags\":[\"a-tag\"]}\n");
}

TEST(TraceRecorder, NullSinkIsSafeAndVectorSinkStampsSequence) {
  Recorder* none = nullptr;
  begin(none, "ignored");  // null-safe helper: must be a no-op

  VectorRecorder rec;
  rec.begin_connection("c1");
  rec.record({.kind = EventKind::kRoundMark});
  ASSERT_EQ(rec.events().size(), 2u);
  EXPECT_EQ(rec.events()[0].kind, EventKind::kConnectionStart);
  EXPECT_EQ(rec.events()[0].seq, 0u);
  EXPECT_EQ(rec.events()[0].note, "c1");
  EXPECT_EQ(rec.events()[1].seq, 1u);
  EXPECT_EQ(rec.events_recorded(), 2u);

  // clear() restarts numbering: a reused sink's trace is indistinguishable
  // from a fresh one's.
  rec.clear();
  rec.begin_connection("c2");
  ASSERT_EQ(rec.events().size(), 1u);
  EXPECT_EQ(rec.events()[0].seq, 0u);
  EXPECT_EQ(rec.events()[0].note, "c2");
}

TEST(TraceRecorder, StringTableInternsAndSurvivesClear) {
  StringTable table;
  EXPECT_EQ(table.at(0), "");  // ref 0 is always the empty string
  const std::uint32_t a = table.intern("alpha");
  const std::uint32_t b = table.intern("beta");
  EXPECT_NE(a, 0u);
  EXPECT_NE(a, b);
  EXPECT_EQ(table.intern("alpha"), a);  // equal strings share one ref
  EXPECT_EQ(table.at(a), "alpha");
  EXPECT_EQ(table.at(b), "beta");
  // Enough distinct notes to force at least one rehash.
  for (int i = 0; i < 100; ++i) {
    const std::string s = "note-" + std::to_string(i);
    const std::uint32_t ref = table.intern(s);
    EXPECT_EQ(table.at(ref), s);
    EXPECT_EQ(table.intern(s), ref);
  }
  EXPECT_EQ(table.intern("alpha"), a);  // still stable after growth
  table.clear();
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.at(0), "");
}

// -------------------------------------------------------- ring semantics

TEST(RingRecorder, BoundedRingEvictsOldestFirstAndCountsDrops) {
  RingRecorder ring(/*capacity=*/4);
  for (std::uint32_t i = 0; i < 7; ++i) {
    ring.record({.kind = EventKind::kRoundMark, .detail_a = i});
  }
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.drops(), 3u);       // records 0..2 evicted, oldest first
  EXPECT_EQ(ring.first_seq(), 3u);   // oldest retained record's seq
  for (std::size_t i = 0; i < ring.size(); ++i) {
    EXPECT_EQ(ring.at(i).detail_a, 3u + i) << i;
  }

  std::vector<TraceEvent> decoded = ring.decode();
  ASSERT_EQ(decoded.size(), 4u);
  for (std::size_t i = 0; i < decoded.size(); ++i) {
    EXPECT_EQ(decoded[i].seq, 3u + i);       // seq survives eviction
    EXPECT_EQ(decoded[i].detail_a, 3u + i);  // newest four, in order
  }

  // clear() resets retention, the drop counter, and numbering.
  ring.clear();
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.drops(), 0u);
  ring.record({.kind = EventKind::kRoundMark, .detail_a = 9});
  EXPECT_EQ(ring.decode().at(0).seq, 0u);
}

TEST(RingRecorder, UnboundedTapeRetainsEverythingAndInternsNotes) {
  RingRecorder tape;  // capacity 0 = unbounded
  tape.begin_connection("conn-a");
  for (int i = 0; i < 1000; ++i) {
    tape.record({.kind = EventKind::kRoundMark,
                 .detail_a = static_cast<std::uint32_t>(i),
                 .note = "repeated-note"});
  }
  EXPECT_EQ(tape.size(), 1001u);
  EXPECT_EQ(tape.drops(), 0u);
  EXPECT_EQ(tape.first_seq(), 0u);
  EXPECT_EQ(tape.note_at(0), "conn-a");
  EXPECT_EQ(tape.note_at(1), "repeated-note");
  // One interned copy serves every repeat.
  EXPECT_EQ(tape.at(1).note_ref, tape.at(1000).note_ref);
}

TEST(RingRecorder, ReplayIntoPreservesTimeAndRestampsSequence) {
  net::VirtualClock clock;
  RingRecorder tape;
  tape.set_clock(&clock);
  clock.advance_ms(12.5);
  tape.record({.kind = EventKind::kRoundMark, .detail_a = 1});
  clock.advance_ms(2.25);
  tape.record({.kind = EventKind::kRoundMark, .detail_a = 2, .note = "n"});

  VectorRecorder sink;
  sink.begin_connection("pre-existing");  // flush appends after prior events
  tape.replay_into(sink);
  ASSERT_EQ(sink.events().size(), 3u);
  EXPECT_EQ(sink.events()[1].seq, 1u);  // sink stamps fresh sequence numbers
  EXPECT_EQ(sink.events()[2].seq, 2u);
  EXPECT_EQ(sink.events()[1].time_ms, 12.5);  // record's own timestamp kept
  EXPECT_EQ(sink.events()[2].time_ms, 14.75);
  EXPECT_EQ(sink.events()[2].note, "n");
  EXPECT_EQ(sink.events()[2].detail_a, 2u);
}

TEST(MetricsRegistry, TraceDropsMergeAndConditionalExport) {
  MetricsRegistry a;
  MetricsRegistry b;
  // Zero drops stay invisible: snapshots from drop-free runs are
  // byte-identical to the pre-ring exporter's.
  EXPECT_EQ(a.to_json().find("trace_drops"), std::string::npos);
  EXPECT_EQ(a.to_text().find("trace ring drops"), std::string::npos);

  a.trace_drops = 2;
  b.trace_drops = 3;
  a.merge(b);
  EXPECT_EQ(a.trace_drops, 5u);  // fieldwise sum: shard-count independent
  EXPECT_NE(a.to_json().find("\"trace_drops\":5"), std::string::npos);
  EXPECT_NE(a.to_text().find("trace ring drops 5"), std::string::npos);
}

// ------------------------------------------------------ binary dump format

TEST(TraceBinaryDump, SerializeParsesBackToIdenticalEvents) {
  net::VirtualClock clock;
  RingRecorder ring(/*capacity=*/3);
  ring.set_clock(&clock);
  ring.begin_connection("will-be-evicted");
  clock.advance_ms(1.125);
  for (std::uint32_t i = 0; i < 3; ++i) {
    ring.record({.dir = Direction::kServerToClient,
                 .kind = EventKind::kFrame,
                 .stream_id = 2 * i + 1,
                 .frame_type = 0x0,
                 .flags = 0x1,
                 .wire_length = 17 + i,
                 .detail_a = 8,
                 .note = i == 2 ? "tail-note" : ""});
  }

  std::string bytes;
  ring.serialize(bytes);

  std::vector<TraceEvent> parsed;
  std::uint64_t drops = 0;
  std::string error;
  ASSERT_TRUE(parse_trace_bin(bytes, parsed, drops, error)) << error;
  EXPECT_EQ(drops, 1u);  // the connection-start marker was evicted
  const std::vector<TraceEvent> want = ring.decode();
  ASSERT_EQ(parsed.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(to_jsonl(parsed, "s"), to_jsonl(want, "s"));
    EXPECT_EQ(parsed[i].seq, want[i].seq);
    EXPECT_EQ(parsed[i].time_ms, want[i].time_ms);  // exact bit round-trip
  }
}

TEST(TraceBinaryDump, StrictParserRejectsCorruptDumps) {
  RingRecorder ring;
  ring.begin_connection("c");
  ring.record({.kind = EventKind::kRoundMark});
  std::string good;
  ring.serialize(good);

  std::vector<TraceEvent> out;
  std::uint64_t drops = 0;
  std::string error;

  std::string bad_magic = good;
  bad_magic[0] = 'X';
  EXPECT_FALSE(parse_trace_bin(bad_magic, out, drops, error));

  std::string bad_version = good;
  bad_version[4] = 0x7f;
  EXPECT_FALSE(parse_trace_bin(bad_version, out, drops, error));

  // Truncation anywhere — header, note table, record block — must fail,
  // never yield a partial parse.
  for (const std::size_t len : {std::size_t{3}, std::size_t{20},
                                good.size() - 1}) {
    EXPECT_FALSE(
        parse_trace_bin(std::string_view(good).substr(0, len), out, drops,
                        error))
        << len;
  }

  std::string trailing = good + "x";
  EXPECT_FALSE(parse_trace_bin(trailing, out, drops, error));
  EXPECT_FALSE(error.empty());

  EXPECT_TRUE(parse_trace_bin(good, out, drops, error)) << error;
}

// ------------------------------------------------------- golden identity

TEST(TraceGoldenIdentity, RingDecodePathMatchesLegacyJsonlAcrossProfiles) {
  // The contract the whole binary path rests on: record the Section III
  // exchange as 32-byte WireRecords, decode offline, annotate, export —
  // and the JSONL is byte-identical to the legacy retain-TraceEvents
  // path. One shared ring reused via clear() across all six Table III
  // profiles also proves sequence restart on reuse.
  const server::ServerProfile profiles[] = {
      server::nginx_profile(),   server::litespeed_profile(),
      server::h2o_profile(),     server::nghttpd_profile(),
      server::tengine_profile(), server::apache_profile()};
  RingRecorder ring;  // unbounded retaining mode, reused across profiles
  for (const auto& profile : profiles) {
    Rng legacy_rng(7);
    VectorRecorder legacy;
    core::characterize_traced(core::Target::testbed(profile), legacy_rng,
                              legacy);
    const std::string want = to_jsonl(legacy.events(), profile.key);
    ASSERT_FALSE(want.empty()) << profile.key;

    ring.clear();
    Rng rng(7);
    core::Target target = core::Target::testbed(profile);
    target.recorder = &ring;
    core::characterize(target, rng);
    std::vector<TraceEvent> decoded = ring.decode();
    annotate_violations(decoded);
    EXPECT_EQ(to_jsonl(decoded, profile.key), want) << profile.key;

    // The binary dump round-trips to the same trace, so an h2trace-decode
    // of a serialized ring reproduces the exporter's JSONL byte for byte.
    std::string bytes;
    ring.serialize(bytes);
    std::vector<TraceEvent> parsed;
    std::uint64_t drops = 0;
    std::string error;
    ASSERT_TRUE(parse_trace_bin(bytes, parsed, drops, error)) << error;
    EXPECT_EQ(drops, 0u);
    annotate_violations(parsed);
    EXPECT_EQ(to_jsonl(parsed, profile.key), want) << profile.key;
  }
}

// ------------------------------------------------------------- histograms

TEST(Histogram, Log2BucketsAndMerge) {
  Histogram h;
  h.add(0);        // bucket 0
  h.add(1);        // bucket 1
  h.add(2);        // bucket 2
  h.add(3);        // bucket 2
  h.add(1024, 5);  // bucket 11, five times
  EXPECT_EQ(h.count(), 9u);
  EXPECT_EQ(h.sum(), 0u + 1 + 2 + 3 + 5 * 1024);
  EXPECT_EQ(h.buckets()[0], 1u);
  EXPECT_EQ(h.buckets()[1], 1u);
  EXPECT_EQ(h.buckets()[2], 2u);
  EXPECT_EQ(h.buckets()[11], 5u);

  Histogram other;
  other.add(3);
  other.merge(h);
  EXPECT_EQ(other.count(), 10u);
  EXPECT_EQ(other.buckets()[2], 3u);
}

TEST(MetricsRegistry, MergeIsFieldwiseSum) {
  MetricsRegistry a;
  a.connections = 2;
  a.frames_c2s[0] = 7;
  a.violation_tags["x"] = 1;
  a.frame_size.add(100);

  MetricsRegistry b;
  b.connections = 3;
  b.frames_c2s[0] = 1;
  b.violation_tags["x"] = 2;
  b.violation_tags["y"] = 5;

  a.merge(b);
  EXPECT_EQ(a.connections, 5u);
  EXPECT_EQ(a.frames_c2s[0], 8u);
  EXPECT_EQ(a.violation_tags.at("x"), 3u);
  EXPECT_EQ(a.violation_tags.at("y"), 5u);
  EXPECT_EQ(a.total_violations(), 8u);
  EXPECT_EQ(a.frame_size.count(), 1u);
}

// -------------------------------------------------- end-to-end determinism

TEST(TraceDeterminism, RepeatedCharacterizationsProduceIdenticalJsonl) {
  const auto run = [] {
    Rng rng(7);
    VectorRecorder recorder;
    core::characterize_traced(
        core::Target::testbed(server::litespeed_profile()), rng, recorder);
    return to_jsonl(recorder.events(), "litespeed");
  };
  const std::string a = run();
  const std::string b = run();
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST(TraceDeterminism, CharacterizeTracedRecordsFullDuplexConversation) {
  Rng rng(7);
  VectorRecorder recorder;
  const auto c = core::characterize_traced(
      core::Target::testbed(server::nghttpd_profile()), rng, recorder);

  const auto& m = c.wire_metrics;
  EXPECT_GT(m.connections, 10u);  // one per probe connection
  EXPECT_GT(m.rounds, 0u);
  // Both directions must be present: client HEADERS, server DATA.
  constexpr std::size_t kHeadersSlot = 1, kDataSlot = 0, kSettingsSlot = 4;
  EXPECT_GT(m.frames_c2s[kHeadersSlot], 0u);
  EXPECT_GT(m.frames_s2c[kDataSlot], 0u);
  EXPECT_GT(m.frames_c2s[kSettingsSlot], 0u);
  EXPECT_GT(m.frames_s2c[kSettingsSlot], 0u);
  EXPECT_GT(m.bytes_s2c, m.bytes_c2s);  // responses dwarf requests
  EXPECT_GT(m.settings_applied, 0u);
  EXPECT_GT(m.hpack_inserts, 0u);  // nghttpd indexes aggressively
  EXPECT_EQ(m.parse_errors, 0u);
  // The registry's violation counts mirror the annotated tags.
  EXPECT_EQ(m.total_violations() > 0, !c.violation_tags.empty());
  // Equation-1 ratio histogram: nghttpd compresses, so ratios land well
  // below 100%.
  EXPECT_GT(m.compression_ratio_pct.count(), 0u);
  EXPECT_LT(m.compression_ratio_pct.mean(), 100.0);
}

TEST(TraceDeterminism, ScanWiretapIndependentOfThreadCount) {
  // 1/1000 of the epoch-2 list, as in scan_determinism_test: every probe
  // and family bucket, a few hundred ms. wiretap_traces keeps the JSONL of
  // every site, so the comparison covers traces and metrics both.
  const corpus::Population pop =
      corpus::generate_population(corpus::Epoch::kExp2, 7, /*scale=*/1000);
  ASSERT_FALSE(pop.sites.empty());

  corpus::ScanOptions single;
  single.threads = 1;
  single.wiretap_metrics = true;
  single.wiretap_traces = true;
  corpus::ScanOptions pooled = single;
  pooled.threads = 8;

  const auto a = corpus::scan_population(pop, single);
  const auto b = corpus::scan_population(pop, pooled);

  EXPECT_EQ(a.wire_metrics.to_json(), b.wire_metrics.to_json());
  ASSERT_EQ(a.wire_metrics_by_family.size(), b.wire_metrics_by_family.size());
  for (const auto& [family, metrics] : a.wire_metrics_by_family) {
    ASSERT_TRUE(b.wire_metrics_by_family.count(family)) << family;
    EXPECT_EQ(metrics.to_json(), b.wire_metrics_by_family.at(family).to_json())
        << family;
  }
  EXPECT_FALSE(a.site_traces.empty());
  EXPECT_EQ(a.site_traces, b.site_traces);  // byte-identical JSONL per site
  EXPECT_GT(a.wire_metrics.total_frames(), 0u);

  // The text rendering is derived from the same registry; spot-check it
  // round-trips the headline counters.
  const std::string text = a.wire_metrics.to_text();
  EXPECT_NE(text.find("connections"), std::string::npos);

  // Tracing must not perturb the scan's published aggregates.
  corpus::ScanOptions plain;
  plain.threads = 3;
  const auto c = corpus::scan_population(pop, plain);
  EXPECT_EQ(c.responding_sites, a.responding_sites);
  EXPECT_EQ(c.server_counts, a.server_counts);
  EXPECT_TRUE(c.site_traces.empty());  // wiretap off: nothing retained
  EXPECT_EQ(c.wire_metrics.total_frames(), 0u);
}

}  // namespace
}  // namespace h2r::trace
