// H2Wiretap determinism and aggregation tests.
//
// The subsystem's whole value rests on two properties: (1) identical probe
// runs produce byte-identical JSONL traces, so traces can be diffed across
// code versions, and (2) metrics aggregation is independent of how the
// scan was sharded across H2R_THREADS workers, so reports are comparable
// across machines.
#include <gtest/gtest.h>

#include <string>

#include "core/report.h"
#include "corpus/population.h"
#include "corpus/scan.h"
#include "server/profile.h"
#include "trace/annotate.h"
#include "trace/event.h"
#include "trace/metrics.h"
#include "trace/recorder.h"

namespace h2r::trace {
namespace {

// ------------------------------------------------------------- event model

TEST(TraceEvent, JsonlHasStableFieldOrderAndEscaping) {
  TraceEvent ev;
  ev.seq = 3;
  ev.dir = Direction::kServerToClient;
  ev.kind = EventKind::kFrame;
  ev.stream_id = 5;
  ev.frame_type = 0x0;  // DATA
  ev.flags = 0x1;
  ev.wire_length = 17;
  ev.detail_a = 8;
  ev.note = "quote\" and \\slash";
  ev.tags = {"a-tag"};

  std::string line;
  append_jsonl(line, ev, "host.test");
  EXPECT_EQ(line,
            "{\"site\":\"host.test\",\"seq\":3,\"t\":0.000,\"dir\":\"s2c\","
            "\"kind\":\"frame\",\"stream\":5,\"type\":\"DATA\",\"flags\":1,"
            "\"len\":17,\"a\":8,\"b\":0,\"note\":\"quote\\\" and "
            "\\\\slash\",\"tags\":[\"a-tag\"]}\n");
}

TEST(TraceRecorder, NullSinkIsSafeAndVectorSinkStampsSequence) {
  Recorder* none = nullptr;
  begin(none, "ignored");  // null-safe helper: must be a no-op

  VectorRecorder rec;
  rec.begin_connection("c1");
  TraceEvent ev;
  ev.kind = EventKind::kRoundMark;
  rec.record(std::move(ev));
  ASSERT_EQ(rec.events().size(), 2u);
  EXPECT_EQ(rec.events()[0].kind, EventKind::kConnectionStart);
  EXPECT_EQ(rec.events()[0].seq, 0u);
  EXPECT_EQ(rec.events()[1].seq, 1u);
}

// ------------------------------------------------------------- histograms

TEST(Histogram, Log2BucketsAndMerge) {
  Histogram h;
  h.add(0);        // bucket 0
  h.add(1);        // bucket 1
  h.add(2);        // bucket 2
  h.add(3);        // bucket 2
  h.add(1024, 5);  // bucket 11, five times
  EXPECT_EQ(h.count(), 9u);
  EXPECT_EQ(h.sum(), 0u + 1 + 2 + 3 + 5 * 1024);
  EXPECT_EQ(h.buckets()[0], 1u);
  EXPECT_EQ(h.buckets()[1], 1u);
  EXPECT_EQ(h.buckets()[2], 2u);
  EXPECT_EQ(h.buckets()[11], 5u);

  Histogram other;
  other.add(3);
  other.merge(h);
  EXPECT_EQ(other.count(), 10u);
  EXPECT_EQ(other.buckets()[2], 3u);
}

TEST(MetricsRegistry, MergeIsFieldwiseSum) {
  MetricsRegistry a;
  a.connections = 2;
  a.frames_c2s[0] = 7;
  a.violation_tags["x"] = 1;
  a.frame_size.add(100);

  MetricsRegistry b;
  b.connections = 3;
  b.frames_c2s[0] = 1;
  b.violation_tags["x"] = 2;
  b.violation_tags["y"] = 5;

  a.merge(b);
  EXPECT_EQ(a.connections, 5u);
  EXPECT_EQ(a.frames_c2s[0], 8u);
  EXPECT_EQ(a.violation_tags.at("x"), 3u);
  EXPECT_EQ(a.violation_tags.at("y"), 5u);
  EXPECT_EQ(a.total_violations(), 8u);
  EXPECT_EQ(a.frame_size.count(), 1u);
}

// -------------------------------------------------- end-to-end determinism

TEST(TraceDeterminism, RepeatedCharacterizationsProduceIdenticalJsonl) {
  const auto run = [] {
    Rng rng(7);
    VectorRecorder recorder;
    core::characterize_traced(
        core::Target::testbed(server::litespeed_profile()), rng, recorder);
    return to_jsonl(recorder.events(), "litespeed");
  };
  const std::string a = run();
  const std::string b = run();
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST(TraceDeterminism, CharacterizeTracedRecordsFullDuplexConversation) {
  Rng rng(7);
  VectorRecorder recorder;
  const auto c = core::characterize_traced(
      core::Target::testbed(server::nghttpd_profile()), rng, recorder);

  const auto& m = c.wire_metrics;
  EXPECT_GT(m.connections, 10u);  // one per probe connection
  EXPECT_GT(m.rounds, 0u);
  // Both directions must be present: client HEADERS, server DATA.
  constexpr std::size_t kHeadersSlot = 1, kDataSlot = 0, kSettingsSlot = 4;
  EXPECT_GT(m.frames_c2s[kHeadersSlot], 0u);
  EXPECT_GT(m.frames_s2c[kDataSlot], 0u);
  EXPECT_GT(m.frames_c2s[kSettingsSlot], 0u);
  EXPECT_GT(m.frames_s2c[kSettingsSlot], 0u);
  EXPECT_GT(m.bytes_s2c, m.bytes_c2s);  // responses dwarf requests
  EXPECT_GT(m.settings_applied, 0u);
  EXPECT_GT(m.hpack_inserts, 0u);  // nghttpd indexes aggressively
  EXPECT_EQ(m.parse_errors, 0u);
  // The registry's violation counts mirror the annotated tags.
  EXPECT_EQ(m.total_violations() > 0, !c.violation_tags.empty());
  // Equation-1 ratio histogram: nghttpd compresses, so ratios land well
  // below 100%.
  EXPECT_GT(m.compression_ratio_pct.count(), 0u);
  EXPECT_LT(m.compression_ratio_pct.mean(), 100.0);
}

TEST(TraceDeterminism, ScanWiretapIndependentOfThreadCount) {
  // 1/1000 of the epoch-2 list, as in scan_determinism_test: every probe
  // and family bucket, a few hundred ms. wiretap_traces keeps the JSONL of
  // every site, so the comparison covers traces and metrics both.
  const corpus::Population pop =
      corpus::generate_population(corpus::Epoch::kExp2, 7, /*scale=*/1000);
  ASSERT_FALSE(pop.sites.empty());

  corpus::ScanOptions single;
  single.threads = 1;
  single.wiretap_metrics = true;
  single.wiretap_traces = true;
  corpus::ScanOptions pooled = single;
  pooled.threads = 8;

  const auto a = corpus::scan_population(pop, single);
  const auto b = corpus::scan_population(pop, pooled);

  EXPECT_EQ(a.wire_metrics.to_json(), b.wire_metrics.to_json());
  ASSERT_EQ(a.wire_metrics_by_family.size(), b.wire_metrics_by_family.size());
  for (const auto& [family, metrics] : a.wire_metrics_by_family) {
    ASSERT_TRUE(b.wire_metrics_by_family.count(family)) << family;
    EXPECT_EQ(metrics.to_json(), b.wire_metrics_by_family.at(family).to_json())
        << family;
  }
  EXPECT_FALSE(a.site_traces.empty());
  EXPECT_EQ(a.site_traces, b.site_traces);  // byte-identical JSONL per site
  EXPECT_GT(a.wire_metrics.total_frames(), 0u);

  // The text rendering is derived from the same registry; spot-check it
  // round-trips the headline counters.
  const std::string text = a.wire_metrics.to_text();
  EXPECT_NE(text.find("connections"), std::string::npos);

  // Tracing must not perturb the scan's published aggregates.
  corpus::ScanOptions plain;
  plain.threads = 3;
  const auto c = corpus::scan_population(pop, plain);
  EXPECT_EQ(c.responding_sites, a.responding_sites);
  EXPECT_EQ(c.server_counts, a.server_counts);
  EXPECT_TRUE(c.site_traces.empty());  // wiretap off: nothing retained
  EXPECT_EQ(c.wire_metrics.total_frames(), 0u);
}

}  // namespace
}  // namespace h2r::trace
