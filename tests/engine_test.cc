// Server engine unit/integration tests: connection lifecycle, request
// handling, flow control enforcement, scheduling, push, error reactions.
#include <gtest/gtest.h>

#include "core/client.h"
#include "net/transport.h"
#include "server/engine.h"
#include "server/profile.h"
#include "server/site.h"

namespace h2r {
namespace {

using core::ClientConnection;
using core::ClientOptions;
using h2::ErrorCode;
using h2::FrameType;
using h2::SettingId;
using server::Http2Server;
using server::ServerProfile;
using server::Site;

ServerProfile plain_profile() {
  // A fully conformant profile for behaviour-neutral tests.
  ServerProfile p = server::h2o_profile();
  return p;
}

Http2Server make_server(ServerProfile p = plain_profile()) {
  return Http2Server(std::move(p), Site::standard_testbed_site());
}

/// The net::Transport replacement for the retired run_exchange shim: one
/// lockstep connection pump, wired to the client's recorder.
void pump(ClientConnection& client, Http2Server& server) {
  net::LockstepTransport(client.recorder()).run(client, server);
}

TEST(Engine, SendsSettingsPrefaceImmediately) {
  auto server = make_server();
  const Bytes out = server.take_output();
  ASSERT_FALSE(out.empty());
  h2::FrameParser parser;
  parser.feed(out);
  auto first = parser.next();
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(first->ok());
  EXPECT_EQ(first->value().type(), FrameType::kSettings);
}

TEST(Engine, NginxAnnouncesZeroWindowThenUpdates) {
  auto server = Http2Server(server::nginx_profile(),
                            Site::standard_testbed_site());
  ClientConnection client;
  pump(client, server);
  EXPECT_EQ(client.server_settings().raw(SettingId::kInitialWindowSize),
            std::optional<std::uint32_t>(0));
  EXPECT_GT(client.preemptive_window_bonus(), 0u);
}

TEST(Engine, BadPrefaceKillsConnection) {
  auto server = make_server();
  const std::string junk = "GET / HTTP/1.1\r\n\r\n";
  server.receive({reinterpret_cast<const std::uint8_t*>(junk.data()),
                  junk.size()});
  EXPECT_FALSE(server.alive());
  // The dying breath is a GOAWAY.
  ClientConnection client;
  client.receive(server.take_output());
  EXPECT_TRUE(client.goaway_received());
}

TEST(Engine, ServesSimpleGet) {
  auto server = make_server();
  ClientConnection client;
  const auto sid = client.send_request("/small");
  pump(client, server);
  auto headers = client.response_headers(sid);
  ASSERT_TRUE(headers.has_value());
  EXPECT_EQ(hpack::find_header(*headers, ":status"), "200");
  EXPECT_EQ(hpack::find_header(*headers, "server"), "h2o/1.6.2");
  EXPECT_EQ(hpack::find_header(*headers, "content-length"), "256");
  EXPECT_EQ(client.data_received(sid), 256u);
  EXPECT_TRUE(client.stream_complete(sid));
}

TEST(Engine, Returns404ForUnknownPath) {
  auto server = make_server();
  ClientConnection client;
  const auto sid = client.send_request("/no/such/thing");
  pump(client, server);
  auto headers = client.response_headers(sid);
  ASSERT_TRUE(headers.has_value());
  EXPECT_EQ(hpack::find_header(*headers, ":status"), "404");
  EXPECT_TRUE(client.stream_complete(sid));
}

TEST(Engine, ResponseBodyIsDeterministic) {
  auto s1 = make_server();
  auto s2 = make_server();
  ClientConnection c1, c2;
  const auto id1 = c1.send_request("/small");
  const auto id2 = c2.send_request("/small");
  pump(c1, s1);
  pump(c2, s2);
  const auto d1 = c1.frames_of(FrameType::kData, id1);
  const auto d2 = c2.frames_of(FrameType::kData, id2);
  ASSERT_FALSE(d1.empty());
  ASSERT_EQ(d1.size(), d2.size());
  EXPECT_EQ(d1.front()->frame.as<h2::DataPayload>().data,
            d2.front()->frame.as<h2::DataPayload>().data);
}

TEST(Engine, LargeDownloadCompletesAcrossWindowRefills) {
  auto server = make_server();
  ClientConnection client;
  const auto sid = client.send_request("/large/0");
  pump(client, server);
  EXPECT_EQ(client.data_received(sid), 512u * 1024u);
  EXPECT_TRUE(client.stream_complete(sid));
}

TEST(Engine, RespectsTinyStreamWindow) {
  auto server = make_server();
  ClientConnection client({.settings = {{SettingId::kInitialWindowSize, 1}}});
  const auto sid = client.send_request("/small");
  pump(client, server);
  const auto data = client.frames_of(FrameType::kData, sid);
  ASSERT_FALSE(data.empty());
  EXPECT_EQ(data.front()->frame.as<h2::DataPayload>().data.size(), 1u);
  EXPECT_TRUE(client.stream_complete(sid));  // 256 one-octet frames later
}

TEST(Engine, PingAnsweredWithIdenticalPayload) {
  auto server = make_server();
  ClientConnection client;
  const std::array<std::uint8_t, 8> opaque = {9, 8, 7, 6, 5, 4, 3, 2};
  client.send_ping(opaque);
  pump(client, server);
  const auto pings = client.frames_of(FrameType::kPing);
  ASSERT_EQ(pings.size(), 1u);
  EXPECT_TRUE(pings.front()->frame.has_flag(h2::flags::kAck));
  EXPECT_EQ(pings.front()->frame.as<h2::PingPayload>().opaque, opaque);
}

TEST(Engine, PushedResourcesArriveWhenEnabled) {
  auto server = make_server();  // h2o profile pushes
  ClientConnection client;
  client.send_request("/");
  pump(client, server);
  ASSERT_EQ(client.pushes().size(), 3u);  // style.css, app.js, logo.png
  for (const auto& [promised, request] : client.pushes()) {
    EXPECT_EQ(promised % 2, 0u) << "push streams must be even";
    EXPECT_TRUE(client.stream_complete(promised));
    EXPECT_GT(client.data_received(promised), 0u);
  }
}

TEST(Engine, PushSuppressedByClientSetting) {
  auto server = make_server();
  ClientConnection client({.settings = {{SettingId::kEnablePush, 0}}});
  client.send_request("/");
  pump(client, server);
  EXPECT_TRUE(client.pushes().empty());
}

TEST(Engine, PushSuppressedByProfile) {
  auto server = Http2Server(server::nginx_profile(),
                            Site::standard_testbed_site());
  ClientConnection client;
  client.send_request("/");
  pump(client, server);
  EXPECT_TRUE(client.pushes().empty());
}

TEST(Engine, RefusesStreamsBeyondConcurrencyLimit) {
  ServerProfile p = plain_profile();
  p.max_concurrent_streams = 1;
  auto server = Http2Server(p, Site::standard_testbed_site());
  ClientConnection client;
  const auto first = client.send_request("/large/0");
  const auto second = client.send_request("/large/1");
  pump(client, server);
  EXPECT_FALSE(client.rst_on(first).has_value());
  EXPECT_EQ(client.rst_on(second),
            std::optional<ErrorCode>(ErrorCode::kRefusedStream));
  EXPECT_TRUE(client.stream_complete(first));
}

TEST(Engine, ClientRstCancelsResponse) {
  auto server = make_server();
  core::ClientOptions opts;
  opts.auto_stream_window_update = false;  // keep the download incomplete
  ClientConnection client(opts);
  const auto sid = client.send_request("/large/0");
  pump(client, server);
  const std::size_t received = client.data_received(sid);
  EXPECT_LT(received, 512u * 1024u);
  client.send_rst_stream(sid, ErrorCode::kCancel);
  client.send_window_update(sid, 1 << 20);  // would resume if not cancelled
  pump(client, server);
  EXPECT_EQ(client.data_received(sid), received);
}

TEST(Engine, HeadersOnStreamZeroIsConnectionError) {
  auto server = make_server();
  ClientConnection client;
  client.send_frame(h2::make_headers(0, bytes_of("\x82"), true));
  pump(client, server);
  EXPECT_TRUE(client.goaway_received());
  EXPECT_FALSE(server.alive());
}

TEST(Engine, EvenStreamIdFromClientIsConnectionError) {
  auto server = make_server();
  ClientConnection client;
  client.send_frame(h2::make_headers(2, bytes_of("\x82"), true));
  pump(client, server);
  EXPECT_TRUE(client.goaway_received());
}

TEST(Engine, ReusedStreamIdIsConnectionError) {
  auto server = make_server();
  ClientConnection client;
  client.send_request("/small");
  client.send_request("/small");
  pump(client, server);
  EXPECT_FALSE(client.goaway_received());
  // Manually fabricate a HEADERS on the already-used id 1.
  client.send_frame(h2::make_headers(1, bytes_of("\x82"), true));
  pump(client, server);
  EXPECT_TRUE(client.goaway_received());
}

TEST(Engine, ClientPushPromiseIsConnectionError) {
  auto server = make_server();
  ClientConnection client;
  client.send_frame(h2::make_push_promise(1, 2, bytes_of("\x82")));
  pump(client, server);
  EXPECT_TRUE(client.goaway_received());
  EXPECT_EQ(client.goaway()->error, ErrorCode::kProtocolError);
}

TEST(Engine, GarbageHpackIsCompressionError) {
  auto server = make_server();
  ClientConnection client;
  // 0x40 literal-with-indexing announcing a 63-octet name, then nothing.
  client.send_frame(h2::make_headers(1, Bytes{0x40, 0x3F}, true));
  pump(client, server);
  ASSERT_TRUE(client.goaway_received());
  EXPECT_EQ(client.goaway()->error, ErrorCode::kCompressionError);
}

TEST(Engine, ContinuationReassemblyWorks) {
  auto server = make_server();
  ClientConnection client;
  // Split a valid header block across HEADERS + 2 CONTINUATIONs.
  hpack::Encoder enc;
  const Bytes block = enc.encode({{":method", "GET"},
                                  {":scheme", "https"},
                                  {":authority", "x"},
                                  {":path", "/small"}});
  ASSERT_GT(block.size(), 6u);
  const std::size_t third = block.size() / 3;
  Bytes p1(block.begin(), block.begin() + third);
  Bytes p2(block.begin() + third, block.begin() + 2 * third);
  Bytes p3(block.begin() + 2 * third, block.end());
  client.send_frame(h2::make_headers(1, p1, /*end_stream=*/true,
                                     /*end_headers=*/false));
  client.send_frame(h2::make_continuation(1, p2, false));
  client.send_frame(h2::make_continuation(1, p3, true));
  pump(client, server);
  EXPECT_TRUE(client.stream_complete(1));
  EXPECT_EQ(client.data_received(1), 256u);
}

TEST(Engine, InterleavedFrameDuringHeaderBlockIsError) {
  auto server = make_server();
  ClientConnection client;
  client.send_frame(h2::make_headers(1, bytes_of("\x82"), true,
                                     /*end_headers=*/false));
  client.send_ping({});
  pump(client, server);
  EXPECT_TRUE(client.goaway_received());
}

TEST(Engine, SettingsChangeAdjustsOpenStreamWindows) {
  auto server = make_server();
  ClientOptions opts;
  opts.auto_stream_window_update = false;
  ClientConnection client(opts);
  const auto sid = client.send_request("/large/0");
  pump(client, server);
  const std::size_t at_default = client.data_received(sid);
  EXPECT_EQ(at_default, 65535u);  // stream window exhausted
  // Raising INITIAL_WINDOW_SIZE retroactively widens the open stream.
  client.send_settings({{SettingId::kInitialWindowSize, 100000}});
  pump(client, server);
  EXPECT_EQ(client.data_received(sid), 100000u);
}

TEST(Engine, ZeroLengthDataVariantEmitsEmptyFrame) {
  ServerProfile p = plain_profile();
  p.small_window_behavior = server::SmallWindowBehavior::kZeroLengthData;
  auto server = Http2Server(p, Site::standard_testbed_site());
  ClientConnection client({.settings = {{SettingId::kInitialWindowSize, 1}}});
  const auto sid = client.send_request("/small");
  pump(client, server);
  const auto data = client.frames_of(FrameType::kData, sid);
  ASSERT_EQ(data.size(), 1u);
  EXPECT_TRUE(data.front()->frame.as<h2::DataPayload>().data.empty());
  EXPECT_TRUE(client.stream_complete(sid));
}

TEST(Engine, StallVariantSendsNothingUnderTinyWindow) {
  ServerProfile p = plain_profile();
  p.small_window_behavior = server::SmallWindowBehavior::kStall;
  auto server = Http2Server(p, Site::standard_testbed_site());
  ClientConnection client({.settings = {{SettingId::kInitialWindowSize, 1}}});
  const auto sid = client.send_request("/small");
  pump(client, server);
  EXPECT_FALSE(client.response_headers(sid).has_value());
  EXPECT_EQ(client.data_received(sid), 0u);
  // ...but behaves normally once the window is reasonable.
  auto server2 = Http2Server(p, Site::standard_testbed_site());
  ClientConnection client2;
  const auto sid2 = client2.send_request("/small");
  pump(client2, server2);
  EXPECT_TRUE(client2.stream_complete(sid2));
}

TEST(Engine, LiteSpeedWithholdsHeadersAtZeroWindow) {
  auto server = Http2Server(server::litespeed_profile(),
                            Site::standard_testbed_site());
  ClientConnection client({.settings = {{SettingId::kInitialWindowSize, 0}}});
  const auto sid = client.send_request("/small");
  pump(client, server);
  EXPECT_FALSE(client.response_headers(sid).has_value());
  // Opening the window releases both HEADERS and DATA.
  client.send_window_update(sid, 65535);
  pump(client, server);
  EXPECT_TRUE(client.response_headers(sid).has_value());
  EXPECT_TRUE(client.stream_complete(sid));
}

TEST(Engine, OversizedResponseHeadersSplitIntoContinuations) {
  // A response header block beyond the client's SETTINGS_MAX_FRAME_SIZE
  // must be carried by HEADERS + CONTINUATION (§4.3). The client announces
  // the minimum frame size, and the site carries a bulky response header.
  Site site = Site::standard_testbed_site();
  site.add_response_header("x-giant", std::string(40'000, 'g'));
  auto server = Http2Server(plain_profile(), std::move(site));
  ClientConnection client;  // default SETTINGS_MAX_FRAME_SIZE = 16,384
  const auto sid = client.send_request("/small");
  pump(client, server);
  EXPECT_FALSE(client.frames_of(FrameType::kContinuation, sid).empty());
  auto headers = client.response_headers(sid);
  ASSERT_TRUE(headers.has_value());
  EXPECT_EQ(hpack::find_header(*headers, "x-giant").size(), 40'000u);
  EXPECT_TRUE(client.stream_complete(sid));
  EXPECT_EQ(client.data_received(sid), 256u);
}

TEST(Engine, ConformantServerSendsHeadersAtZeroWindow) {
  auto server = make_server();
  ClientConnection client({.settings = {{SettingId::kInitialWindowSize, 0}}});
  const auto sid = client.send_request("/small");
  pump(client, server);
  EXPECT_TRUE(client.response_headers(sid).has_value());
  EXPECT_EQ(client.data_received(sid), 0u);
}

}  // namespace
}  // namespace h2r
