// End-to-end tests for the real-socket serving mode: the listener + load
// generator pair on loopback, graceful shutdown semantics, and the socket
// error taxonomy (refused connects, abrupt resets, non-h2 clients).
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <netinet/in.h>
#include <poll.h>
#include <string>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>

#include "core/client.h"
#include "h2/constants.h"
#include "netio/load.h"
#include "netio/serve.h"
#include "netio/socket.h"
#include "trace/annotate.h"
#include "trace/event.h"
#include "trace/recorder.h"

namespace h2r {
namespace {

struct RunningServer {
  explicit RunningServer(netio::ServeOptions opts) {
    auto created = netio::ServeLoop::create(opts);
    EXPECT_TRUE(created.ok()) << created.status().message();
    serve = std::move(created).value();
    thread = std::thread([this] {
      const Status s = serve->run();
      EXPECT_TRUE(s.ok()) << s.message();
    });
  }
  ~RunningServer() {
    if (thread.joinable()) {
      serve->request_shutdown();
      thread.join();
    }
  }
  void stop() {
    serve->request_shutdown();
    thread.join();
  }

  std::unique_ptr<netio::ServeLoop> serve;
  std::thread thread;
};

TEST(ServeLoopback, LoadRunCompletesWithZeroErrors) {
  netio::ServeOptions sopts;
  sopts.profile_key = "h2o";
  RunningServer server(sopts);

  netio::LoadOptions lopts;
  lopts.port = server.serve->port();
  lopts.connections = 4;
  lopts.requests = 100;
  lopts.streams = 4;
  const netio::LoadReport report = netio::run_load(lopts);

  EXPECT_EQ(report.completed, 100u);
  EXPECT_EQ(report.failed, 0u);
  EXPECT_EQ(report.total_errors(), 0u);
  EXPECT_EQ(report.clean_closes, 4u);
  EXPECT_GT(report.rps, 0.0);
  EXPECT_EQ(report.latency_ms.size(), 100u);

  server.stop();
  const netio::ServeStats& stats = server.serve->stats();
  EXPECT_EQ(stats.accepted, 4u);
  EXPECT_EQ(stats.served_clean, 4u);
  EXPECT_EQ(stats.disconnected, 0u);
  EXPECT_TRUE(stats.errors.empty());
}

TEST(ServeLoopback, HardenedProfileServesWellBehavedLoadCleanly) {
  netio::ServeOptions sopts;
  sopts.profile_key = "nginx";
  sopts.hardened = true;
  RunningServer server(sopts);

  netio::LoadOptions lopts;
  lopts.port = server.serve->port();
  lopts.connections = 2;
  lopts.requests = 50;
  lopts.streams = 2;
  const netio::LoadReport report = netio::run_load(lopts);

  // Mitigation budgets must not fire on legitimate traffic (the PR-6
  // false-positive guarantee, now over a real socket).
  EXPECT_EQ(report.completed, 50u);
  EXPECT_EQ(report.total_errors(), 0u);
  server.stop();
  EXPECT_EQ(server.serve->stats().served_clean, 2u);
}

TEST(ServeLoopback, GracefulShutdownSendsGoawayAndFlushesWholeTrace) {
  trace::VectorRecorder recorder;
  netio::ServeOptions sopts;
  sopts.profile_key = "h2o";
  sopts.recorder = &recorder;
  RunningServer server(sopts);

  auto sock = netio::SocketClient::connect("127.0.0.1", server.serve->port());
  ASSERT_TRUE(sock.ok()) << sock.status().message();
  auto& client = sock.value()->client();
  const std::uint32_t sid = client.send_request("/");
  ASSERT_TRUE(sock.value()
                  ->pump_until([sid](core::ClientConnection& c) {
                    return c.stream_complete(sid);
                  })
                  .ok());

  // Shut the listener down while the connection is idle-open: the engine
  // must say GOAWAY before the socket closes.
  server.serve->request_shutdown();
  ASSERT_TRUE(sock.value()
                  ->pump_until([](core::ClientConnection& c) {
                    return c.goaway_received() || !c.alive();
                  })
                  .ok());
  EXPECT_TRUE(client.goaway_received());
  server.thread.join();

  // The retained trace is a complete, untorn event stream: annotation and
  // JSONL serialization both walk it end to end, and every line is a
  // balanced JSON object. The engine tapes the remote client's frames too
  // (c2s), so the segment is a faithful wiretap — the flow-control
  // annotator must find nothing to flag in a clean serve.
  ASSERT_FALSE(recorder.events().empty());
  std::size_t starts = 0;
  std::size_t c2s_frames = 0;
  for (const auto& event : recorder.events()) {
    if (event.kind == trace::EventKind::kConnectionStart) ++starts;
    if (event.kind == trace::EventKind::kFrame &&
        event.dir == trace::Direction::kClientToServer) {
      ++c2s_frames;
    }
  }
  EXPECT_EQ(starts, 1u);
  EXPECT_GT(c2s_frames, 0u);
  EXPECT_TRUE(trace::annotate_violations(recorder.events()).empty());
  const std::string jsonl = trace::to_jsonl(recorder.events());
  ASSERT_FALSE(jsonl.empty());
  std::size_t lines = 0;
  std::size_t start = 0;
  while (start < jsonl.size()) {
    std::size_t end = jsonl.find('\n', start);
    ASSERT_NE(end, std::string::npos) << "torn trailing line";
    EXPECT_EQ(jsonl[start], '{');
    EXPECT_EQ(jsonl[end - 1], '}');
    ++lines;
    start = end + 1;
  }
  EXPECT_GT(lines, 0u);
}

TEST(ServeLoopback, ConnectionRefusedLandsInTheTaxonomy) {
  // Bind-then-close guarantees a dead port.
  auto listener = netio::listen_loopback(0, 1);
  ASSERT_TRUE(listener.ok());
  auto dead_port = netio::local_port(listener.value().get());
  ASSERT_TRUE(dead_port.ok());
  listener.value().reset();

  netio::LoadOptions lopts;
  lopts.port = dead_port.value();
  lopts.connections = 2;
  lopts.requests = 10;
  lopts.connect_timeout_ms = 2000;
  lopts.run_timeout_ms = 5000;
  const netio::LoadReport report = netio::run_load(lopts);

  EXPECT_EQ(report.completed, 0u);
  EXPECT_EQ(report.failed, 10u);
  EXPECT_EQ(report.connect_errors, 2u);
  EXPECT_TRUE(report.errors.contains("ECONNREFUSED") ||
              report.errors.contains("connect"))
      << report.json();
}

TEST(ServeLoopback, AbruptResetCountsAsEconnreset) {
  netio::ServeOptions sopts;
  sopts.profile_key = "h2o";
  RunningServer server(sopts);

  auto fd = netio::connect_tcp("127.0.0.1", server.serve->port());
  ASSERT_TRUE(fd.ok());
  pollfd ready{fd.value().get(), POLLOUT, 0};
  ASSERT_GT(::poll(&ready, 1, 2000), 0);
  ASSERT_EQ(netio::pending_socket_error(fd.value().get()), 0);

  // Full preface so the listener finishes its sniff and parks the engine,
  // then SO_LINGER(0) + close turns our close into an RST on the wire.
  ASSERT_EQ(::send(fd.value().get(), h2::kClientPreface.data(),
                   h2::kClientPreface.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(h2::kClientPreface.size()));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  struct linger hard {};
  hard.l_onoff = 1;
  hard.l_linger = 0;
  ASSERT_EQ(::setsockopt(fd.value().get(), SOL_SOCKET, SO_LINGER, &hard,
                         sizeof(hard)),
            0);
  fd.value().reset();  // close → RST

  // Give the reactor a moment to observe the reset, then stop.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  server.stop();
  const netio::ServeStats& stats = server.serve->stats();
  EXPECT_EQ(stats.accepted, 1u);
  EXPECT_EQ(stats.disconnected, 1u);
  EXPECT_TRUE(stats.errors.contains("ECONNRESET")) << stats.json();
}

TEST(ServeLoopback, PlainHttp1ClientIsDeclinedNotCrashed) {
  netio::ServeOptions sopts;
  sopts.profile_key = "h2o";
  RunningServer server(sopts);

  auto fd = netio::connect_tcp("127.0.0.1", server.serve->port());
  ASSERT_TRUE(fd.ok());
  pollfd ready{fd.value().get(), POLLOUT, 0};
  ASSERT_GT(::poll(&ready, 1, 2000), 0);
  ASSERT_EQ(netio::pending_socket_error(fd.value().get()), 0);

  const std::string request =
      "GET / HTTP/1.1\r\nHost: loopback.test\r\n\r\n";
  ASSERT_EQ(::send(fd.value().get(), request.data(), request.size(),
                   MSG_NOSIGNAL),
            static_cast<ssize_t>(request.size()));

  // The engine answers in HTTP/1.1 and closes; read until EOF.
  std::string answer;
  char buf[512];
  while (true) {
    pollfd readable{fd.value().get(), POLLIN, 0};
    ASSERT_GT(::poll(&readable, 1, 2000), 0) << "no HTTP/1.1 answer";
    const ssize_t n = ::recv(fd.value().get(), buf, sizeof(buf), 0);
    ASSERT_GE(n, 0);
    if (n == 0) break;
    answer.append(buf, static_cast<std::size_t>(n));
  }
  EXPECT_EQ(answer.rfind("HTTP/1.1", 0), 0u) << answer;
  fd.value().reset();

  server.stop();
  EXPECT_EQ(server.serve->stats().declined_h1, 1u);
}

}  // namespace
}  // namespace h2r
