// Page-load simulator tests (Figure 3 machinery).
#include <gtest/gtest.h>

#include "pageload/loader.h"
#include "pageload/page.h"

namespace h2r::pageload {
namespace {

net::PathModel slow_path() {
  net::PathModel p;
  p.base_rtt_ms = 200;
  p.jitter_ms = 20;
  return p;
}

TEST(Page, SynthesisIsDeterministicPerSeed) {
  Rng a(5), b(5);
  Page pa = Page::synthesize("x.com", a);
  Page pb = Page::synthesize("x.com", b);
  EXPECT_EQ(pa.html_size, pb.html_size);
  ASSERT_EQ(pa.resources.size(), pb.resources.size());
  EXPECT_EQ(pa.total_bytes(), pb.total_bytes());
}

TEST(Page, HasPushableDepth1Resources) {
  Rng rng(7);
  Page p = Page::synthesize("x.com", rng);
  int pushable = 0, depth1 = 0;
  for (const auto& r : p.resources) {
    if (r.depth == 1) ++depth1;
    if (r.pushable) {
      ++pushable;
      EXPECT_EQ(r.depth, 1);  // only depth-1 resources are pushable
    }
  }
  EXPECT_GT(pushable, 0);
  EXPECT_GT(depth1, pushable / 2);
  EXPECT_GE(p.max_depth(), 2);
}

TEST(Loader, PushReducesPageLoadTime) {
  // The Figure 3 claim: enabling push reduces PLT in most cases.
  Rng rng(11);
  Page page = Page::synthesize("rememberthemilk.com", rng);
  LoadConditions with_push{.path = slow_path(), .push_enabled = true};
  LoadConditions without{.path = slow_path(), .push_enabled = false};
  Rng visit_rng_a(1), visit_rng_b(1);  // identical jitter draws
  const double on = simulate_page_load_ms(page, with_push, visit_rng_a);
  const double off = simulate_page_load_ms(page, without, visit_rng_b);
  EXPECT_LT(on, off);
  // The saving is about one discovery round trip.
  EXPECT_NEAR(off - on, slow_path().base_rtt_ms, 120.0);
}

TEST(Loader, PushSavingGrowsWithLatency) {
  // §V-F cites [21]: push helps more when latency is high.
  Rng rng(13);
  Page page = Page::synthesize("nghttp2.org", rng);
  auto median_saving = [&](double rtt) {
    net::PathModel p;
    p.base_rtt_ms = rtt;
    p.jitter_ms = 0;
    LoadConditions on{.path = p, .push_enabled = true};
    LoadConditions off{.path = p, .push_enabled = false};
    Rng ra(3), rb(3);
    return simulate_page_load_ms(page, off, rb) -
           simulate_page_load_ms(page, on, ra);
  };
  EXPECT_GT(median_saving(300), median_saving(30));
}

TEST(Loader, PltInPaperRange) {
  // Figure 3's y-axis spans roughly 1-10 seconds.
  Rng rng(17);
  for (int site = 0; site < 15; ++site) {
    Page page = Page::synthesize("site" + std::to_string(site), rng);
    net::PathModel p;
    p.base_rtt_ms = 80 + 20 * site;
    LoadConditions cond{.path = p, .bandwidth_kbps = 3'000,
                        .push_enabled = false};
    const double plt = simulate_page_load_ms(page, cond, rng);
    EXPECT_GT(plt, 500.0);
    EXPECT_LT(plt, 12'000.0);
  }
}

TEST(Loader, RepeatVisitsVary) {
  Rng rng(19);
  Page page = Page::synthesize("x.com", rng);
  LoadConditions cond{.path = slow_path()};
  auto samples = visit_repeatedly(page, cond, 30, rng);
  ASSERT_EQ(samples.size(), 30u);
  const auto [lo, hi] = std::minmax_element(samples.begin(), samples.end());
  EXPECT_GT(*hi - *lo, 1.0);  // jitter shows up
}

TEST(Loader, LossThrottlesSingleConnection) {
  // §VI: one lossy TCP connection caps HTTP/2 throughput (Mathis model).
  Rng rng(23);
  Page page = Page::synthesize("lossy.com", rng);
  net::PathModel clean;
  clean.base_rtt_ms = 120;
  clean.jitter_ms = 0;
  net::PathModel lossy = clean;
  lossy.loss_rate = 0.02;
  LoadConditions c1{.path = clean, .push_enabled = false};
  LoadConditions c2{.path = lossy, .push_enabled = false};
  Rng ra(1), rb(1);
  EXPECT_GT(simulate_page_load_ms(page, c2, rb),
            simulate_page_load_ms(page, c1, ra) * 1.5);
}

TEST(Loader, ShardingMitigatesLoss) {
  // §VI: "Using more than one TCP connection could mitigate such problem."
  Rng rng(29);
  Page page = Page::synthesize("shard.com", rng);
  net::PathModel lossy;
  lossy.base_rtt_ms = 120;
  lossy.jitter_ms = 0;
  lossy.loss_rate = 0.02;
  LoadConditions one{.path = lossy, .push_enabled = false, .connections = 1};
  LoadConditions six = one;
  six.connections = 6;
  Rng ra(1), rb(1);
  EXPECT_LT(simulate_page_load_ms(page, six, rb),
            simulate_page_load_ms(page, one, ra));
}

TEST(Loader, ShardingDoesNotExceedLinkBandwidth) {
  // Loss-free, extra connections must not beat the link rate.
  Rng rng(31);
  Page page = Page::synthesize("clean.com", rng);
  net::PathModel clean;
  clean.base_rtt_ms = 50;
  clean.jitter_ms = 0;
  LoadConditions one{.path = clean, .push_enabled = false, .connections = 1};
  LoadConditions six = one;
  six.connections = 6;
  Rng ra(1), rb(1);
  EXPECT_DOUBLE_EQ(simulate_page_load_ms(page, one, ra),
                   simulate_page_load_ms(page, six, rb));
}

TEST(Loader, WarmCacheMakesPushWasteful) {
  // §VI: pushed copies of cached objects waste exactly their size.
  Rng rng(37);
  Page page = Page::synthesize("warm.com", rng);
  net::PathModel path;
  path.base_rtt_ms = 100;
  path.jitter_ms = 0;
  LoadConditions cold{.path = path, .push_enabled = true, .cached_fraction = 0};
  LoadConditions warm = cold;
  warm.cached_fraction = 1.0;
  Rng ra(1), rb(1);
  const auto r_cold = simulate_page_load(page, cold, ra);
  const auto r_warm = simulate_page_load(page, warm, rb);
  EXPECT_EQ(r_cold.wasted_push_bytes, 0u);
  EXPECT_EQ(r_warm.wasted_push_bytes, r_warm.pushed_bytes);
  EXPECT_GT(r_warm.pushed_bytes, 0u);
}

TEST(Loader, CacheWarmthMonotonicallyIncreasesWaste) {
  Rng rng(41);
  Page page = Page::synthesize("mono.com", rng);
  net::PathModel path;
  path.jitter_ms = 0;
  std::size_t prev = 0;
  for (double warmth : {0.0, 0.3, 0.6, 1.0}) {
    LoadConditions cond{.path = path, .push_enabled = true,
                        .cached_fraction = warmth};
    Rng visit(1);
    const auto r = simulate_page_load(page, cond, visit);
    EXPECT_GE(r.wasted_push_bytes, prev) << "warmth " << warmth;
    prev = r.wasted_push_bytes;
  }
}

}  // namespace
}  // namespace h2r::pageload
