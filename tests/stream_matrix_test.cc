// Systematic stream-state transition matrix (RFC 7540 §5.1): every
// (state, event) pair is checked against the specification's figure-2
// transition diagram, including the umbrella header compiling standalone.
#include <gtest/gtest.h>

#include "h2ready.h"  // also proves the umbrella header is self-contained

namespace h2r::h2 {
namespace {

enum class Event {
  kSendHeaders,
  kRecvHeaders,
  kSendHeadersEs,
  kRecvHeadersEs,
  kSendData,
  kRecvData,
  kSendDataEs,
  kRecvDataEs,
  kSendRst,
  kRecvRst,
  kSendPp,
  kRecvPp,
};

const char* name(Event e) {
  switch (e) {
    case Event::kSendHeaders: return "send HEADERS";
    case Event::kRecvHeaders: return "recv HEADERS";
    case Event::kSendHeadersEs: return "send HEADERS+ES";
    case Event::kRecvHeadersEs: return "recv HEADERS+ES";
    case Event::kSendData: return "send DATA";
    case Event::kRecvData: return "recv DATA";
    case Event::kSendDataEs: return "send DATA+ES";
    case Event::kRecvDataEs: return "recv DATA+ES";
    case Event::kSendRst: return "send RST";
    case Event::kRecvRst: return "recv RST";
    case Event::kSendPp: return "send PUSH_PROMISE";
    case Event::kRecvPp: return "recv PUSH_PROMISE";
  }
  return "?";
}

Status apply(StreamStateMachine& sm, Event e) {
  switch (e) {
    case Event::kSendHeaders: return sm.on_send_headers(false);
    case Event::kRecvHeaders: return sm.on_recv_headers(false);
    case Event::kSendHeadersEs: return sm.on_send_headers(true);
    case Event::kRecvHeadersEs: return sm.on_recv_headers(true);
    case Event::kSendData: return sm.on_send_data(false);
    case Event::kRecvData: return sm.on_recv_data(false);
    case Event::kSendDataEs: return sm.on_send_data(true);
    case Event::kRecvDataEs: return sm.on_recv_data(true);
    case Event::kSendRst: return sm.on_send_rst();
    case Event::kRecvRst: return sm.on_recv_rst();
    case Event::kSendPp: return sm.on_send_push_promise();
    case Event::kRecvPp: return sm.on_recv_push_promise();
  }
  return InternalError("unreachable");
}

/// Drives a fresh machine into @p target via a legal path.
StreamStateMachine at(StreamState target) {
  StreamStateMachine sm(1);
  switch (target) {
    case StreamState::kIdle:
      break;
    case StreamState::kReservedLocal:
      EXPECT_TRUE(sm.on_send_push_promise().ok());
      break;
    case StreamState::kReservedRemote:
      EXPECT_TRUE(sm.on_recv_push_promise().ok());
      break;
    case StreamState::kOpen:
      EXPECT_TRUE(sm.on_recv_headers(false).ok());
      break;
    case StreamState::kHalfClosedLocal:
      EXPECT_TRUE(sm.on_send_headers(true).ok());
      break;
    case StreamState::kHalfClosedRemote:
      EXPECT_TRUE(sm.on_recv_headers(true).ok());
      break;
    case StreamState::kClosed:
      EXPECT_TRUE(sm.on_recv_headers(false).ok());
      EXPECT_TRUE(sm.on_recv_rst().ok());
      break;
  }
  EXPECT_EQ(sm.state(), target);
  return sm;
}

struct Expectation {
  StreamState from;
  Event event;
  bool legal;
  StreamState to;  // meaningful when legal
};

// The §5.1 diagram, row by row (endpoint view; "send PP"/"recv PP" act on
// the *promised* stream, hence legal only from idle).
const Expectation kMatrix[] = {
    // idle
    {StreamState::kIdle, Event::kSendHeaders, true, StreamState::kOpen},
    {StreamState::kIdle, Event::kRecvHeaders, true, StreamState::kOpen},
    {StreamState::kIdle, Event::kSendHeadersEs, true, StreamState::kHalfClosedLocal},
    {StreamState::kIdle, Event::kRecvHeadersEs, true, StreamState::kHalfClosedRemote},
    {StreamState::kIdle, Event::kSendPp, true, StreamState::kReservedLocal},
    {StreamState::kIdle, Event::kRecvPp, true, StreamState::kReservedRemote},
    {StreamState::kIdle, Event::kSendData, false, {}},
    {StreamState::kIdle, Event::kRecvData, false, {}},
    {StreamState::kIdle, Event::kSendRst, false, {}},
    {StreamState::kIdle, Event::kRecvRst, false, {}},
    // reserved (local)
    {StreamState::kReservedLocal, Event::kSendHeaders, true, StreamState::kHalfClosedRemote},
    {StreamState::kReservedLocal, Event::kSendRst, true, StreamState::kClosed},
    {StreamState::kReservedLocal, Event::kRecvRst, true, StreamState::kClosed},
    {StreamState::kReservedLocal, Event::kRecvData, false, {}},
    {StreamState::kReservedLocal, Event::kSendData, false, {}},
    {StreamState::kReservedLocal, Event::kRecvPp, false, {}},
    // reserved (remote)
    {StreamState::kReservedRemote, Event::kRecvHeaders, true, StreamState::kHalfClosedLocal},
    {StreamState::kReservedRemote, Event::kSendRst, true, StreamState::kClosed},
    {StreamState::kReservedRemote, Event::kRecvRst, true, StreamState::kClosed},
    {StreamState::kReservedRemote, Event::kSendData, false, {}},
    {StreamState::kReservedRemote, Event::kSendPp, false, {}},
    // open
    {StreamState::kOpen, Event::kSendData, true, StreamState::kOpen},
    {StreamState::kOpen, Event::kRecvData, true, StreamState::kOpen},
    {StreamState::kOpen, Event::kSendDataEs, true, StreamState::kHalfClosedLocal},
    {StreamState::kOpen, Event::kRecvDataEs, true, StreamState::kHalfClosedRemote},
    {StreamState::kOpen, Event::kSendHeaders, true, StreamState::kOpen},
    {StreamState::kOpen, Event::kRecvHeaders, true, StreamState::kOpen},
    {StreamState::kOpen, Event::kSendRst, true, StreamState::kClosed},
    {StreamState::kOpen, Event::kRecvRst, true, StreamState::kClosed},
    {StreamState::kOpen, Event::kSendPp, false, {}},
    {StreamState::kOpen, Event::kRecvPp, false, {}},
    // half-closed (local): we may only receive
    {StreamState::kHalfClosedLocal, Event::kRecvData, true, StreamState::kHalfClosedLocal},
    {StreamState::kHalfClosedLocal, Event::kRecvDataEs, true, StreamState::kClosed},
    {StreamState::kHalfClosedLocal, Event::kRecvHeadersEs, true, StreamState::kClosed},
    {StreamState::kHalfClosedLocal, Event::kSendData, false, {}},
    {StreamState::kHalfClosedLocal, Event::kSendRst, true, StreamState::kClosed},
    {StreamState::kHalfClosedLocal, Event::kRecvRst, true, StreamState::kClosed},
    // half-closed (remote): we may only send
    {StreamState::kHalfClosedRemote, Event::kSendData, true, StreamState::kHalfClosedRemote},
    {StreamState::kHalfClosedRemote, Event::kSendDataEs, true, StreamState::kClosed},
    {StreamState::kHalfClosedRemote, Event::kSendHeadersEs, true, StreamState::kClosed},
    {StreamState::kHalfClosedRemote, Event::kRecvData, false, {}},
    {StreamState::kHalfClosedRemote, Event::kSendRst, true, StreamState::kClosed},
    {StreamState::kHalfClosedRemote, Event::kRecvRst, true, StreamState::kClosed},
    // closed
    {StreamState::kClosed, Event::kSendData, false, {}},
    {StreamState::kClosed, Event::kRecvData, false, {}},
    {StreamState::kClosed, Event::kRecvHeaders, false, {}},
    {StreamState::kClosed, Event::kSendPp, false, {}},
    {StreamState::kClosed, Event::kRecvPp, false, {}},
};

class StreamMatrix : public ::testing::TestWithParam<std::size_t> {};

TEST_P(StreamMatrix, TransitionMatchesRfc51) {
  const Expectation& exp = kMatrix[GetParam()];
  StreamStateMachine sm = at(exp.from);
  const Status result = apply(sm, exp.event);
  if (exp.legal) {
    EXPECT_TRUE(result.ok()) << to_string(exp.from) << " + " << name(exp.event)
                             << ": " << result.to_string();
    EXPECT_EQ(sm.state(), exp.to)
        << to_string(exp.from) << " + " << name(exp.event);
  } else {
    EXPECT_FALSE(result.ok())
        << to_string(exp.from) << " + " << name(exp.event)
        << " should be illegal";
  }
}

INSTANTIATE_TEST_SUITE_P(Rfc51, StreamMatrix,
                         ::testing::Range<std::size_t>(0, std::size(kMatrix)));

}  // namespace
}  // namespace h2r::h2
