// Tests for the network layer: ALPN/NPN negotiation directionality, the
// h2c upgrade path, path-model delay composition, and the virtual clock.
#include <gtest/gtest.h>

#include "net/alpn.h"
#include "net/clock.h"
#include "net/path.h"
#include "net/upgrade.h"
#include "util/bytes.h"

namespace h2r::net {
namespace {

// ------------------------------------------------------------------ ALPN

TEST(Alpn, ServerPreferenceWins) {
  TlsEndpointConfig server;
  server.protocols = {kProtoH2, kProtoHttp11};
  // Client prefers http/1.1 but the server picks its own favourite.
  auto r = negotiate_alpn({kProtoHttp11, kProtoH2}, server);
  EXPECT_TRUE(r.used_alpn);
  EXPECT_EQ(r.protocol, kProtoH2);
}

TEST(Alpn, NoOverlapYieldsEmpty) {
  TlsEndpointConfig server;
  server.protocols = {kProtoSpdy31};
  auto r = negotiate_alpn({kProtoH2}, server);
  EXPECT_TRUE(r.protocol.empty());
}

TEST(Alpn, DisabledServerDoesNotNegotiate) {
  TlsEndpointConfig server;
  server.supports_alpn = false;
  auto r = negotiate_alpn({kProtoH2}, server);
  EXPECT_FALSE(r.used_alpn);
  EXPECT_TRUE(r.protocol.empty());
}

TEST(Npn, ClientPreferenceWins) {
  // NPN reverses the direction: the server advertises, the client picks.
  TlsEndpointConfig server;
  server.protocols = {kProtoHttp11, kProtoH2};  // server prefers http/1.1
  auto r = negotiate_npn({kProtoH2, kProtoHttp11}, server);
  EXPECT_TRUE(r.used_npn);
  EXPECT_EQ(r.protocol, kProtoH2);  // ...but the client wanted h2
}

TEST(Negotiate, FallsBackFromAlpnToNpn) {
  TlsEndpointConfig server;
  server.supports_alpn = false;  // pre-OpenSSL-1.0.2 deployment (§V-B)
  server.supports_npn = true;
  auto r = negotiate({kProtoH2, kProtoHttp11}, server);
  EXPECT_EQ(r.protocol, kProtoH2);
  EXPECT_TRUE(r.used_npn);
  EXPECT_FALSE(r.used_alpn);
}

TEST(Negotiate, ReportsAttemptsOnTotalFailure) {
  TlsEndpointConfig server;
  server.protocols = {kProtoHttp11};
  auto r = negotiate({kProtoH2}, server);
  EXPECT_TRUE(r.protocol.empty());
  EXPECT_TRUE(r.used_alpn);
  EXPECT_TRUE(r.used_npn);
}

// ------------------------------------------------------------- base64url

TEST(Base64Url, KnownVectors) {
  EXPECT_EQ(base64url_encode(bytes_of("")), "");
  EXPECT_EQ(base64url_encode(bytes_of("f")), "Zg");
  EXPECT_EQ(base64url_encode(bytes_of("fo")), "Zm8");
  EXPECT_EQ(base64url_encode(bytes_of("foo")), "Zm9v");
  EXPECT_EQ(base64url_encode(bytes_of("foob")), "Zm9vYg");
  EXPECT_EQ(base64url_encode(bytes_of("fooba")), "Zm9vYmE");
  EXPECT_EQ(base64url_encode(bytes_of("foobar")), "Zm9vYmFy");
}

TEST(Base64Url, UsesUrlSafeAlphabet) {
  // 0xFB 0xFF maps onto '-'/'_' territory in the url-safe alphabet.
  const Bytes data = {0xFB, 0xEF, 0xFF};
  const std::string encoded = base64url_encode(data);
  EXPECT_EQ(encoded.find('+'), std::string::npos);
  EXPECT_EQ(encoded.find('/'), std::string::npos);
  auto back = base64url_decode(encoded);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, data);
}

TEST(Base64Url, RoundTripsBinary) {
  Bytes data;
  for (int i = 0; i < 256; ++i) data.push_back(static_cast<std::uint8_t>(i));
  auto back = base64url_decode(base64url_encode(data));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, data);
}

TEST(Base64Url, RejectsGarbage) {
  EXPECT_FALSE(base64url_decode("a+b").ok());  // '+' is not url-safe
  EXPECT_FALSE(base64url_decode("a").ok());    // impossible length
}

// ------------------------------------------------------------ h2c upgrade

TEST(Upgrade, WellFormedRequestRendersAllHeaders) {
  UpgradeRequest req;
  req.host = "example.org";
  req.settings = {{h2::SettingId::kInitialWindowSize, 65535}};
  const std::string text = render_upgrade_request(req);
  EXPECT_NE(text.find("GET / HTTP/1.1"), std::string::npos);
  EXPECT_NE(text.find("Upgrade: h2c"), std::string::npos);
  EXPECT_NE(text.find("Connection: Upgrade, HTTP2-Settings"), std::string::npos);
  EXPECT_NE(text.find("HTTP2-Settings: "), std::string::npos);
}

TEST(Upgrade, WillingServerSwitchesAndReadsSettings) {
  UpgradeRequest req;
  req.host = "example.org";
  req.settings = {{h2::SettingId::kInitialWindowSize, 123456},
                  {h2::SettingId::kMaxConcurrentStreams, 7}};
  auto result = process_upgrade_request(render_upgrade_request(req),
                                        /*server_supports_h2c=*/true);
  EXPECT_TRUE(result.switched);
  EXPECT_EQ(result.status_line, "HTTP/1.1 101 Switching Protocols");
  EXPECT_EQ(result.client_settings.initial_window_size(), 123456u);
  EXPECT_EQ(result.client_settings.max_concurrent_streams(),
            std::optional<std::uint32_t>(7));
}

TEST(Upgrade, UnwillingServerAnswersHttp11) {
  UpgradeRequest req;
  req.host = "example.org";
  auto result = process_upgrade_request(render_upgrade_request(req),
                                        /*server_supports_h2c=*/false);
  EXPECT_FALSE(result.switched);
  EXPECT_EQ(result.status_line, "HTTP/1.1 200 OK");
}

TEST(Upgrade, PlainRequestIsNotUpgraded) {
  auto result = process_upgrade_request(
      "GET / HTTP/1.1\r\nHost: example.org\r\n\r\n", true);
  EXPECT_FALSE(result.switched);
}

TEST(Upgrade, MalformedSmuggledSettingsIs400) {
  const std::string bad =
      "GET / HTTP/1.1\r\nHost: x\r\nConnection: Upgrade, HTTP2-Settings\r\n"
      "Upgrade: h2c\r\nHTTP2-Settings: !!!!\r\n\r\n";
  auto result = process_upgrade_request(bad, true);
  EXPECT_FALSE(result.switched);
  EXPECT_EQ(result.status_line, "HTTP/1.1 400 Bad Request");
}

TEST(Upgrade, InvalidSettingValueIs400) {
  // ENABLE_PUSH=7 violates §6.5.2 even when smuggled through HTTP/1.1.
  UpgradeRequest req;
  req.host = "x";
  ByteWriter w;
  w.write_u16(0x2);
  w.write_u32(7);
  const std::string text =
      "GET / HTTP/1.1\r\nHost: x\r\nConnection: Upgrade, HTTP2-Settings\r\n"
      "Upgrade: h2c\r\nHTTP2-Settings: " +
      base64url_encode(w.bytes()) + "\r\n\r\n";
  auto result = process_upgrade_request(text, true);
  EXPECT_EQ(result.status_line, "HTTP/1.1 400 Bad Request");
}

TEST(Upgrade, HeaderNamesAreCaseInsensitive) {
  const std::string text =
      "GET / HTTP/1.1\r\nHost: x\r\nconnection: upgrade, http2-settings\r\n"
      "UPGRADE: h2c\r\nhttp2-settings: \r\n\r\n";
  auto result = process_upgrade_request(text, true);
  EXPECT_TRUE(result.switched);
}

// ------------------------------------------------------------ path model

TEST(PathModel, Http11IncludesThinkTime) {
  PathModel path;
  path.base_rtt_ms = 100;
  path.jitter_ms = 0;
  Rng rng(3);
  EXPECT_GT(path.sample_http11(rng), path.sample_icmp(rng) + 10);
}

TEST(PathModel, FastMethodsAgreeWithinJitter) {
  PathModel path;
  path.base_rtt_ms = 80;
  path.jitter_ms = 2;
  Rng rng(3);
  double icmp = 0, tcp = 0, ping = 0;
  for (int i = 0; i < 200; ++i) {
    icmp += path.sample_icmp(rng);
    tcp += path.sample_tcp_handshake(rng);
    ping += path.sample_h2_ping(rng);
  }
  EXPECT_NEAR(icmp / 200, tcp / 200, 1.0);
  EXPECT_NEAR(tcp / 200, ping / 200, 1.0);
}

TEST(PathModel, OneWayIsHalfRtt) {
  PathModel path;
  path.base_rtt_ms = 100;
  path.jitter_ms = 0;
  Rng rng(1);
  EXPECT_DOUBLE_EQ(path.sample_one_way(rng), 50.0);
}

TEST(VirtualClock, AdvancesMonotonically) {
  VirtualClock clock;
  EXPECT_DOUBLE_EQ(clock.now_ms(), 0.0);
  clock.advance_ms(12.5);
  clock.advance_ms(-5);  // clamped: time never goes backwards
  EXPECT_DOUBLE_EQ(clock.now_ms(), 12.5);
}

}  // namespace
}  // namespace h2r::net
