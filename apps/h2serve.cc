// h2serve — the reproduction's deviation engines behind a real TCP port.
//
// Binds an h2c listener on 127.0.0.1 and serves every connection with the
// profile-driven Http2Server engine the corpus scan probes in-process, so
// real clients can poke the same Table III deviations:
//
//   h2serve --port 3000 --profile nginx
//   curl --http2-prior-knowledge http://127.0.0.1:3000/
//
// Prior-knowledge clients (raw preface) and HTTP/1.1 Upgrade: h2c clients
// are both handled; which path a connection took is visible in the stats.
// SIGINT/SIGTERM shut down gracefully: GOAWAY on every live connection, a
// bounded drain (--drain-ms), then the serve stats — and, with --trace-out,
// the H2Wiretap trace + metrics snapshot — are flushed in one piece.
//
// The wiretap is always on: every connection records onto a bounded binary
// tape (32 bytes/record, see ServeOptions::tape_capacity) replayed into a
// process-wide ring on retirement. Without --trace-out that ring keeps only
// the newest records under a fixed memory budget; with --trace-out it
// retains everything and exports on exit, either as the legacy JSONL or as
// the raw "H2WT" binary dump (--trace-format=bin, decode offline with
// h2trace-decode).
//
// Flags (strict parsing: trailing garbage rejects the value):
//   --port N        listen port, 0 = ephemeral  [env H2R_LISTEN_PORT; 3000]
//   --profile KEY   server profile              [env H2R_SERVE_PROFILE; h2o]
//   --shards N      serve shards (threads), SO_REUSEPORT accept [1]
//   --accept-fallback  force the single-acceptor round-robin path
//   --no-header-cache  disable the response header-block cache (ablation)
//   --hardened      enable MitigationPolicy::hardened()
//   --drain-ms N    graceful-shutdown drain budget [2000]
//   --max-conns N   concurrent-connection cap       [1024]
//   --trace-out P   H2Wiretap trace path (+ P.metrics.json) [env H2R_TRACE_OUT]
//   --trace-format F  trace-out encoding: "jsonl" or "bin"  [jsonl]
//   --json          print stats as JSON only (no banner)
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "netio/serve.h"
#include "netio/serve_shard.h"
#include "trace/annotate.h"
#include "trace/event.h"
#include "trace/metrics.h"
#include "trace/recorder.h"
#include "util/parse.h"

namespace {

std::atomic<h2r::netio::ShardedServe*> g_serve{nullptr};

void on_signal(int) {
  if (auto* serve = g_serve.load()) serve->request_shutdown();
}

/// Process-wide ring bound when the trace is not being exported: always-on
/// tracing keeps the newest ~2 MiB of records instead of growing with
/// uptime. --trace-out switches to the unbounded retaining mode.
constexpr std::size_t kIdleTapeRecords = 65536;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--port N] [--profile KEY] [--shards N] "
               "[--accept-fallback] [--no-header-cache] [--hardened] "
               "[--drain-ms N] [--max-conns N] [--trace-out PATH] "
               "[--trace-format jsonl|bin] [--json]\n",
               argv0);
  return 2;
}

bool write_whole_file(const std::string& path, const std::string& contents) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok =
      std::fwrite(contents.data(), 1, contents.size(), f) == contents.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace h2r;

  netio::ServeOptions opts;
  opts.profile_key = "h2o";
  long port = 3000;
  long shards = 1;
  bool accept_fallback = false;
  bool json_only = false;
  std::string trace_out;
  bool trace_bin = false;

  if (const char* env = std::getenv("H2R_SERVE_PROFILE")) {
    opts.profile_key = env;
  }
  if (const char* env = std::getenv("H2R_LISTEN_PORT")) {
    const auto v = strict_long_in(env, 0, 65535);
    if (!v.has_value()) {
      std::fprintf(stderr, "h2serve: H2R_LISTEN_PORT=\"%s\" is not a port\n",
                   env);
      return 2;
    }
    port = *v;
  }
  if (const char* env = std::getenv("H2R_TRACE_OUT")) trace_out = env;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--port") {
      const auto v = strict_long_in(value(), 0, 65535);
      if (!v.has_value()) return usage(argv[0]);
      port = *v;
    } else if (arg == "--profile") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      opts.profile_key = v;
    } else if (arg == "--shards") {
      const auto v = strict_long_in(value(), 1, 64);
      if (!v.has_value()) return usage(argv[0]);
      shards = *v;
    } else if (arg == "--accept-fallback") {
      accept_fallback = true;
    } else if (arg == "--no-header-cache") {
      opts.header_block_cache = false;
    } else if (arg == "--hardened") {
      opts.hardened = true;
    } else if (arg == "--drain-ms") {
      const auto v = strict_long_in(value(), 0, 3'600'000);
      if (!v.has_value()) return usage(argv[0]);
      opts.drain_ms = static_cast<int>(*v);
    } else if (arg == "--max-conns") {
      const auto v = strict_long_in(value(), 1, 1'000'000);
      if (!v.has_value()) return usage(argv[0]);
      opts.max_connections = static_cast<std::size_t>(*v);
    } else if (arg == "--trace-out") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      trace_out = v;
    } else if (arg == "--trace-format") {
      // Strict like the numeric flags: only the two exact tokens parse, so
      // "binx" or "jsonl " fail loudly instead of silently picking a mode.
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      if (std::strcmp(v, "bin") == 0) {
        trace_bin = true;
      } else if (std::strcmp(v, "jsonl") == 0) {
        trace_bin = false;
      } else {
        std::fprintf(stderr,
                     "h2serve: --trace-format \"%s\" is neither \"jsonl\" "
                     "nor \"bin\"\n",
                     v);
        return usage(argv[0]);
      }
    } else if (arg == "--json") {
      json_only = true;
    } else {
      std::fprintf(stderr, "h2serve: unknown flag \"%s\"\n", argv[i]);
      return usage(argv[0]);
    }
  }
  opts.port = static_cast<std::uint16_t>(port);

  // Always-on wiretap: the sink is a binary ring in both modes. Exporting
  // runs it unbounded so the dump is whole; otherwise it is a fixed-budget
  // ring — recording costs the same either way (the bench's traced rows),
  // only retention differs.
  trace::RingRecorder recorder(trace_out.empty() ? kIdleTapeRecords : 0);
  opts.recorder = &recorder;

  netio::ShardedServeOptions sharded_opts;
  sharded_opts.base = opts;
  sharded_opts.shards = static_cast<unsigned>(shards);
  sharded_opts.force_accept_fallback = accept_fallback;
  auto serve = netio::ShardedServe::create(sharded_opts);
  if (!serve.ok()) {
    std::fprintf(stderr, "h2serve: %s\n",
                 std::string(serve.status().message()).c_str());
    return 1;
  }
  g_serve.store(serve.value().get());

  struct sigaction sa{};
  sa.sa_handler = on_signal;
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);

  if (!json_only) {
    std::printf("h2serve: listening profile=%s%s port=%u shards=%zu (%s) "
                "drain_ms=%d%s\n",
                opts.profile_key.c_str(), opts.hardened ? " (hardened)" : "",
                serve.value()->port(), serve.value()->shard_count(),
                serve.value()->used_reuseport() ? "reuseport"
                                                : "acceptor-fallback",
                opts.drain_ms,
                trace_out.empty() ? "" : (" trace=" + trace_out).c_str());
    std::printf("h2serve: try: curl --http2-prior-knowledge "
                "http://127.0.0.1:%u/\n",
                serve.value()->port());
    std::fflush(stdout);
  }

  const Status run_status = serve.value()->run();
  g_serve.store(nullptr);
  if (!run_status.ok()) {
    std::fprintf(stderr, "h2serve: reactor failed: %s\n",
                 std::string(run_status.message()).c_str());
    return 1;
  }

  // Exports happen after the loop has fully drained, so the trace and the
  // metrics snapshot are written exactly once, whole — never torn by a
  // signal landing mid-write. The binary dump carries no annotator tags
  // (tags are offline-derived); h2trace-decode --annotate reproduces the
  // JSONL this process would have written, byte for byte.
  if (!trace_out.empty()) {
    if (trace_bin) {
      std::string bytes;
      recorder.serialize(bytes);
      if (!write_whole_file(trace_out, bytes)) {
        std::fprintf(stderr, "h2serve: could not write %s\n",
                     trace_out.c_str());
      }
    }
    std::vector<trace::TraceEvent> events = recorder.decode();
    const auto tags = trace::annotate_violations(events);
    if (!trace_bin && !write_whole_file(trace_out, trace::to_jsonl(events))) {
      std::fprintf(stderr, "h2serve: could not write %s\n", trace_out.c_str());
    }
    trace::MetricsRegistry registry;
    trace::consume(registry, events);
    registry.trace_drops =
        serve.value()->stats().trace_drops + recorder.drops();
    if (!write_whole_file(trace_out + ".metrics.json",
                          registry.to_json() + "\n")) {
      std::fprintf(stderr, "h2serve: could not write %s.metrics.json\n",
                   trace_out.c_str());
    }
    if (!json_only && !tags.empty()) {
      std::fprintf(stderr, "h2serve: %zu violation tag(s) in trace\n",
                   tags.size());
    }
  }

  std::printf("%s\n", serve.value()->stats().json().c_str());
  return 0;
}
