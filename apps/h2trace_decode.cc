// h2trace-decode — offline expansion of "H2WT" binary wiretap dumps.
//
// Reads a dump written by h2serve --trace-format=bin (or any
// RingRecorder::serialize() output), expands the 32-byte records back into
// TraceEvents, and prints the H2Wiretap JSONL to stdout — byte-identical to
// what the producing process would have written with --trace-format=jsonl
// when --annotate is given (the binary path never stores tags; violation
// annotation is an offline pass by design).
//
//   h2serve --trace-out t.bin --trace-format=bin ... ; h2trace-decode --annotate t.bin
//
// Parsing is strict: bad magic or version, truncation, trailing garbage,
// and out-of-range note refs all fail with a message on stderr and exit 1.
//
// Flags:
//   --annotate    run the violation annotator before printing (tags column)
//   --site NAME   prepend a site field to every line (multi-dump merges)
//   FILE          the dump; "-" reads stdin
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "trace/annotate.h"
#include "trace/event.h"
#include "trace/recorder.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr, "usage: %s [--annotate] [--site NAME] FILE|-\n", argv0);
  return 2;
}

bool read_whole(const char* path, std::string& out) {
  std::FILE* f = std::strcmp(path, "-") == 0 ? stdin : std::fopen(path, "rb");
  if (f == nullptr) return false;
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  const bool ok = std::ferror(f) == 0;
  if (f != stdin) std::fclose(f);
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace h2r;

  bool annotate = false;
  const char* site = "";
  const char* path = nullptr;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--annotate") {
      annotate = true;
    } else if (arg == "--site") {
      if (i + 1 >= argc) return usage(argv[0]);
      site = argv[++i];
    } else if (arg == "-" || arg[0] != '-') {
      if (path != nullptr) return usage(argv[0]);
      path = argv[i];
    } else {
      std::fprintf(stderr, "h2trace-decode: unknown flag \"%s\"\n", argv[i]);
      return usage(argv[0]);
    }
  }
  if (path == nullptr) return usage(argv[0]);

  std::string bytes;
  if (!read_whole(path, bytes)) {
    std::fprintf(stderr, "h2trace-decode: could not read %s\n", path);
    return 1;
  }

  std::vector<trace::TraceEvent> events;
  std::uint64_t drops = 0;
  std::string error;
  if (!trace::parse_trace_bin(bytes, events, drops, error)) {
    std::fprintf(stderr, "h2trace-decode: %s: %s\n", path, error.c_str());
    return 1;
  }
  if (annotate) trace::annotate_violations(events);
  if (drops != 0) {
    std::fprintf(stderr,
                 "h2trace-decode: note: %llu older record(s) were evicted "
                 "from the producing ring before this dump\n",
                 static_cast<unsigned long long>(drops));
  }

  const std::string jsonl = trace::to_jsonl(events, site);
  if (std::fwrite(jsonl.data(), 1, jsonl.size(), stdout) != jsonl.size()) {
    std::fprintf(stderr, "h2trace-decode: short write to stdout\n");
    return 1;
  }
  return 0;
}
