// h2load-mini — seawreck-style load generator for the h2serve listener.
//
// Opens --con TCP connections, keeps --streams GETs multiplexed on each,
// and spreads a total budget of --req requests across them; reports RPS,
// the per-request latency distribution, and the error taxonomy:
//
//   h2load-mini --port 3000 --con 8 --req 2000 --streams 4
//
// Exit status: 0 when every budgeted request completed with zero transport
// errors, 1 otherwise — so CI smoke jobs can assert on it directly.
//
// Flags (strict parsing: trailing garbage rejects the value):
//   --host A        server address               [127.0.0.1]
//   --port N        server port   [env H2R_LISTEN_PORT; required]
//   --con N         concurrent connections       [4]
//   --req M         total requests               [100]
//   --streams K     in-flight streams/connection [1]
//   --threads T     generator threads (runners)  [1]
//   --path P        resource to GET              [/]
//   --timeout-ms N  whole-run deadline           [60000]
//   --json          print the JSON report only
#include <cstdio>
#include <string>

#include "netio/load.h"
#include "util/parse.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --port N [--host A] [--con N] [--req M] "
               "[--streams K] [--threads T] [--path P] [--timeout-ms N] "
               "[--json]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace h2r;

  netio::LoadOptions opts;
  long port = -1;
  bool json_only = false;

  if (const char* env = std::getenv("H2R_LISTEN_PORT")) {
    const auto v = strict_long_in(env, 1, 65535);
    if (!v.has_value()) {
      std::fprintf(stderr,
                   "h2load-mini: H2R_LISTEN_PORT=\"%s\" is not a port\n", env);
      return 2;
    }
    port = *v;
  }

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--port") {
      const auto v = strict_long_in(value(), 1, 65535);
      if (!v.has_value()) return usage(argv[0]);
      port = *v;
    } else if (arg == "--host") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      opts.host = v;
    } else if (arg == "--con") {
      const auto v = strict_long_in(value(), 1, 10'000);
      if (!v.has_value()) return usage(argv[0]);
      opts.connections = static_cast<int>(*v);
    } else if (arg == "--req") {
      const auto v = strict_long_in(value(), 1, 100'000'000);
      if (!v.has_value()) return usage(argv[0]);
      opts.requests = static_cast<int>(*v);
    } else if (arg == "--streams") {
      const auto v = strict_long_in(value(), 1, 10'000);
      if (!v.has_value()) return usage(argv[0]);
      opts.streams = static_cast<int>(*v);
    } else if (arg == "--threads") {
      const auto v = strict_long_in(value(), 1, 256);
      if (!v.has_value()) return usage(argv[0]);
      opts.threads = static_cast<int>(*v);
    } else if (arg == "--path") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      opts.path = v;
    } else if (arg == "--timeout-ms") {
      const auto v = strict_long_in(value(), 1, 3'600'000);
      if (!v.has_value()) return usage(argv[0]);
      opts.run_timeout_ms = static_cast<int>(*v);
    } else if (arg == "--json") {
      json_only = true;
    } else {
      std::fprintf(stderr, "h2load-mini: unknown flag \"%s\"\n", argv[i]);
      return usage(argv[0]);
    }
  }
  if (port < 0) {
    std::fprintf(stderr, "h2load-mini: --port (or H2R_LISTEN_PORT) is "
                 "required\n");
    return usage(argv[0]);
  }
  opts.port = static_cast<std::uint16_t>(port);

  if (!json_only) {
    std::printf(
        "h2load-mini: %s:%u con=%d req=%d streams=%d threads=%d path=%s\n",
        opts.host.c_str(), opts.port, opts.connections, opts.requests,
        opts.streams, opts.threads, opts.path.c_str());
    std::fflush(stdout);
  }

  const netio::LoadReport report = netio::run_load(opts);

  if (!json_only) {
    std::printf("completed %llu/%d in %.1f ms  (%.1f req/s)\n",
                static_cast<unsigned long long>(report.completed),
                opts.requests, report.wall_ms, report.rps);
    if (!report.latency_ms.empty()) {
      std::printf("latency ms: mean=%.3f p50=%.3f p90=%.3f p99=%.3f "
                  "p999=%.3f max=%.3f\n",
                  report.latency_ms.mean(), report.latency_ms.quantile(0.50),
                  report.latency_ms.quantile(0.90),
                  report.latency_ms.quantile(0.99),
                  report.latency_ms.quantile(0.999), report.latency_ms.max());
    }
    for (const auto& [key, count] : report.errors) {
      std::printf("error %-16s %llu\n", key.c_str(),
                  static_cast<unsigned long long>(count));
    }
  }
  std::printf("%s\n", report.json().c_str());

  const bool ok = report.total_errors() == 0 && report.failed == 0 &&
                  report.completed ==
                      static_cast<std::uint64_t>(opts.requests);
  return ok ? 0 : 1;
}
