#include "trace/detector.h"

#include <cstdio>

#include "h2/constants.h"

namespace h2r::trace {
namespace {

using h2::FrameType;

// Settings identifier for SETTINGS_INITIAL_WINDOW_SIZE (RFC 7540 §6.5.2).
constexpr std::uint32_t kInitialWindowSizeId = 4;

constexpr AttackClass kReportedClasses[] = {
    AttackClass::kSlowRead,    AttackClass::kSlowPost,
    AttackClass::kRapidReset,  AttackClass::kControlFlood,
    AttackClass::kPriorityChurn,
};

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

void append_ttd(std::string& out, const char* name, const Histogram& hist) {
  out += '"';
  out += name;
  out += "\":{\"count\":";
  append_u64(out, hist.count());
  out += ",\"sum\":";
  append_u64(out, hist.sum());
  char buf[32];
  std::snprintf(buf, sizeof buf, ",\"mean\":%.3f}", hist.mean());
  out += buf;
}

}  // namespace

std::string_view to_string(AttackClass cls) noexcept {
  switch (cls) {
    case AttackClass::kNone:
      return "none";
    case AttackClass::kSlowRead:
      return "slow-read";
    case AttackClass::kSlowPost:
      return "slow-post";
    case AttackClass::kRapidReset:
      return "rapid-reset";
    case AttackClass::kControlFlood:
      return "control-flood";
    case AttackClass::kPriorityChurn:
      return "priority-churn";
  }
  return "?";
}

void DetectorReport::merge(const DetectorReport& other) {
  connections += other.connections;
  for (std::size_t i = 0; i < kAttackClassCount; ++i) {
    flagged[i] += other.flagged[i];
    events_to_detect[i].merge(other.events_to_detect[i]);
    rounds_to_detect[i].merge(other.rounds_to_detect[i]);
  }
}

std::uint64_t DetectorReport::total_detections() const noexcept {
  std::uint64_t n = 0;
  for (std::size_t i = 1; i < kAttackClassCount; ++i) n += flagged[i];
  return n;
}

std::string DetectorReport::to_json() const {
  std::string out;
  out.reserve(512);
  out += "{\"connections\":";
  append_u64(out, connections);
  out += ",\"total_detections\":";
  append_u64(out, total_detections());
  out += ",\"classes\":{";
  bool first = true;
  for (const AttackClass cls : kReportedClasses) {
    const auto i = static_cast<std::size_t>(cls);
    if (!first) out += ',';
    first = false;
    out += '"';
    out += to_string(cls);
    out += "\":{\"flagged\":";
    append_u64(out, flagged[i]);
    out += ',';
    append_ttd(out, "events_to_detect", events_to_detect[i]);
    out += ',';
    append_ttd(out, "rounds_to_detect", rounds_to_detect[i]);
    out += '}';
  }
  out += "}}";
  return out;
}

void SequenceDetector::observe(const TraceEvent& ev) {
  if (ev.kind == EventKind::kConnectionStart) {
    fold_connection();
    saw_connection_ = true;
    return;
  }
  saw_connection_ = true;
  ++conn_events_;

  switch (ev.kind) {
    case EventKind::kRoundMark:
      ++rounds_;
      // Slow-read is the one rule whose clock is rounds, not frames: many
      // tiny-window request streams held open with stream replenishment
      // withheld. Evaluated on round boundaries.
      if (!fired_[static_cast<std::size_t>(AttackClass::kSlowRead)] &&
          any_request_ && client_iws_ < thresholds_.tiny_window &&
          request_streams_ >= thresholds_.slow_read_min_streams &&
          stream_window_updates_ == 0 &&
          rounds_ - first_request_round_ >= thresholds_.slow_read_min_rounds) {
        flag(AttackClass::kSlowRead);
      }
      return;
    case EventKind::kSettingsApplied:
      if (ev.dir == Direction::kClientToServer &&
          ev.detail_a == kInitialWindowSizeId) {
        client_iws_ = ev.detail_b;
      }
      return;
    case EventKind::kFrame:
      break;
    default:
      return;
  }
  if (ev.dir != Direction::kClientToServer) return;

  switch (static_cast<FrameType>(ev.frame_type)) {
    case FrameType::kHeaders: {
      ++request_streams_;
      if (!any_request_) {
        any_request_ = true;
        first_request_round_ = rounds_;
      }
      if ((ev.flags & h2::flags::kEndStream) == 0) {
        uploads_.try_emplace(ev.stream_id,
                             UploadState{rounds_, rounds_, 0, false});
      }
      break;
    }
    case FrameType::kData: {
      auto it = uploads_.find(ev.stream_id);
      if (it == uploads_.end()) break;
      if ((ev.flags & h2::flags::kEndStream) != 0) {
        uploads_.erase(it);  // upload completed normally
        break;
      }
      UploadState& up = it->second;
      up.last_round = rounds_;
      if (ev.detail_a <= thresholds_.slow_post_max_chunk) {
        ++up.dribble_frames;
      } else {
        up.oversized = true;
      }
      if (!fired_[static_cast<std::size_t>(AttackClass::kSlowPost)] &&
          !up.oversized &&
          up.dribble_frames >= thresholds_.slow_post_min_frames &&
          up.last_round - up.first_round >= thresholds_.slow_post_min_rounds) {
        flag(AttackClass::kSlowPost);
      }
      break;
    }
    case FrameType::kRstStream:
      ++client_resets_;
      uploads_.erase(ev.stream_id);
      if (!fired_[static_cast<std::size_t>(AttackClass::kRapidReset)] &&
          client_resets_ >= thresholds_.rapid_reset_min) {
        flag(AttackClass::kRapidReset);
      }
      break;
    case FrameType::kPing:
    case FrameType::kSettings:
      if ((ev.flags & h2::flags::kAck) != 0) break;
      ++control_frames_;
      if (!fired_[static_cast<std::size_t>(AttackClass::kControlFlood)] &&
          control_frames_ >= thresholds_.control_flood_min) {
        flag(AttackClass::kControlFlood);
      }
      break;
    case FrameType::kPriority:
      ++priority_frames_;
      if (!fired_[static_cast<std::size_t>(AttackClass::kPriorityChurn)] &&
          priority_frames_ >= thresholds_.priority_churn_min) {
        flag(AttackClass::kPriorityChurn);
      }
      break;
    case FrameType::kWindowUpdate:
      if (ev.stream_id != 0) ++stream_window_updates_;
      break;
    default:
      break;
  }
}

void SequenceDetector::flag(AttackClass cls) {
  fired_[static_cast<std::size_t>(cls)] = true;
  live_.push_back(Detection{cls, conn_events_, rounds_});
}

void SequenceDetector::fold_connection() {
  if (!saw_connection_) return;
  ++report_.connections;
  for (const Detection& d : live_) {
    const auto i = static_cast<std::size_t>(d.cls);
    ++report_.flagged[i];
    report_.events_to_detect[i].add(d.events_to_detect);
    report_.rounds_to_detect[i].add(d.rounds_to_detect);
  }
  live_.clear();
  saw_connection_ = false;
  conn_events_ = 0;
  rounds_ = 0;
  client_iws_ = 65535;
  request_streams_ = 0;
  first_request_round_ = 0;
  any_request_ = false;
  stream_window_updates_ = 0;
  client_resets_ = 0;
  control_frames_ = 0;
  priority_frames_ = 0;
  uploads_.clear();
  fired_ = {};
}

void SequenceDetector::finish() { fold_connection(); }

}  // namespace h2r::trace
