#include "trace/recorder.h"

#include <cstring>

namespace h2r::trace {
namespace {

using h2::FrameType;

std::uint64_t fnv1a64(std::string_view s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

// ------------------------------------------------------------- binary dump
//
// Layout (all integers little-endian):
//   "H2WT"            4-byte magic
//   u32  version      = 1
//   u64  record_count
//   u64  first_seq    seq of the first record (== drops for a ring)
//   u64  drops        records evicted by the bounded ring
//   u32  string_count interned note table (entry 0 is always "")
//   string_count x { u32 len, len bytes }
//   record_count x 32-byte WireRecord:
//     u64 time_bits, u32 stream_id, u32 wire_length, u32 detail_a,
//     u32 detail_b, u32 note_ref, u8 dir, u8 kind, u8 frame_type, u8 flags

constexpr char kMagic[4] = {'H', '2', 'W', 'T'};
constexpr std::uint32_t kVersion = 1;

void put_u32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
  out.push_back(static_cast<char>((v >> 16) & 0xff));
  out.push_back(static_cast<char>((v >> 24) & 0xff));
}

void put_u64(std::string& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v & 0xffffffffull));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

/// Bounds-checked little-endian reader over the dump.
class ByteReader {
 public:
  explicit ByteReader(std::string_view bytes) : bytes_(bytes) {}

  bool u32(std::uint32_t& v) {
    if (bytes_.size() - pos_ < 4) return false;
    const auto* p = reinterpret_cast<const unsigned char*>(bytes_.data() + pos_);
    v = static_cast<std::uint32_t>(p[0]) |
        (static_cast<std::uint32_t>(p[1]) << 8) |
        (static_cast<std::uint32_t>(p[2]) << 16) |
        (static_cast<std::uint32_t>(p[3]) << 24);
    pos_ += 4;
    return true;
  }
  bool u64(std::uint64_t& v) {
    std::uint32_t lo = 0;
    std::uint32_t hi = 0;
    if (!u32(lo) || !u32(hi)) return false;
    v = static_cast<std::uint64_t>(lo) | (static_cast<std::uint64_t>(hi) << 32);
    return true;
  }
  bool u8(std::uint8_t& v) {
    if (bytes_.size() == pos_) return false;
    v = static_cast<std::uint8_t>(bytes_[pos_++]);
    return true;
  }
  bool bytes(std::size_t n, std::string_view& out) {
    if (bytes_.size() - pos_ < n) return false;
    out = bytes_.substr(pos_, n);
    pos_ += n;
    return true;
  }
  [[nodiscard]] std::size_t remaining() const noexcept {
    return bytes_.size() - pos_;
  }

 private:
  std::string_view bytes_;
  std::size_t pos_ = 0;
};

}  // namespace

// ------------------------------------------------------------- StringTable

std::uint32_t StringTable::intern(std::string_view s) {
  if (s.empty()) return 0;
  const std::uint64_t hash = fnv1a64(s);
  const std::size_t mask = slots_.size() - 1;
  std::size_t i = static_cast<std::size_t>(hash) & mask;
  while (slots_[i] != 0) {
    const std::uint32_t ref = slots_[i] - 1;
    if (hashes_[ref] == hash && strings_[ref] == s) return ref;
    i = (i + 1) & mask;
  }
  // New entry. Entries beyond live_ are retired strings kept for their
  // buffers (see clear()): assign() into one reuses its capacity, so a
  // recorder cycling through per-site vocabularies stops allocating once
  // its note buffers have warmed up.
  const auto ref = static_cast<std::uint32_t>(live_);
  if (live_ < strings_.size()) {
    strings_[live_].assign(s.data(), s.size());
    hashes_[live_] = hash;
  } else {
    strings_.emplace_back(s);
    hashes_.push_back(hash);
  }
  ++live_;
  slots_[i] = ref + 1;
  if (live_ * 4 >= slots_.size() * 3) rehash(slots_.size() * 2);
  return ref;
}

void StringTable::clear() {
  // Keep the string buffers: drop the table down to just ref 0 ("") but
  // leave retired entries in place for intern() to overwrite.
  if (strings_.empty()) {
    strings_.emplace_back();
    hashes_.push_back(0);
  }
  live_ = 1;
  slots_.assign(slots_.empty() ? 16 : slots_.size(), 0);
}

void StringTable::rehash(std::size_t buckets) {
  slots_.assign(buckets, 0);
  const std::size_t mask = buckets - 1;
  for (std::uint32_t ref = 1; ref < live_; ++ref) {
    std::size_t i = static_cast<std::size_t>(hashes_[ref]) & mask;
    while (slots_[i] != 0) i = (i + 1) & mask;
    slots_[i] = ref + 1;
  }
}

// ------------------------------------------------------------ record_frame

void Recorder::record_frame(Direction dir, const h2::Frame& frame,
                            std::size_t wire_length) {
  EventArgs args;
  args.dir = dir;
  args.kind = EventKind::kFrame;
  args.stream_id = frame.stream_id;
  args.flags = frame.flags;
  args.wire_length = static_cast<std::uint32_t>(wire_length);

  const FrameType type = frame.type();
  args.frame_type = frame.is<h2::UnknownPayload>()
                        ? frame.as<h2::UnknownPayload>().type
                        : static_cast<std::uint8_t>(type);
  switch (type) {
    case FrameType::kData:
      args.detail_a =
          static_cast<std::uint32_t>(frame.as<h2::DataPayload>().data.size());
      break;
    case FrameType::kHeaders: {
      const auto& p = frame.as<h2::HeadersPayload>();
      if (p.priority) {
        args.detail_a = p.priority->dependency;
        args.detail_b = kPriorityPresentBit | p.priority->weight_field |
                        (p.priority->exclusive ? kExclusiveBit : 0);
      }
      break;
    }
    case FrameType::kPriority: {
      const auto& info = frame.as<h2::PriorityPayload>().info;
      args.detail_a = info.dependency;
      args.detail_b = info.weight_field | (info.exclusive ? kExclusiveBit : 0);
      break;
    }
    case FrameType::kRstStream: {
      const auto code = frame.as<h2::RstStreamPayload>().error;
      args.detail_a = static_cast<std::uint32_t>(code);
      args.note = h2::to_string(code);
      break;
    }
    case FrameType::kSettings:
      args.detail_a = static_cast<std::uint32_t>(
          frame.as<h2::SettingsPayload>().entries.size());
      break;
    case FrameType::kPushPromise:
      args.detail_a = frame.as<h2::PushPromisePayload>().promised_stream_id;
      break;
    case FrameType::kGoaway: {
      const auto& p = frame.as<h2::GoawayPayload>();
      args.detail_a = static_cast<std::uint32_t>(p.error);
      args.detail_b = p.last_stream_id;
      if (p.debug_data.empty()) {
        args.note = h2::to_string(p.error);
      } else {
        note_scratch_.assign(h2::to_string(p.error));
        note_scratch_ += ':';
        note_scratch_.append(p.debug_data.begin(), p.debug_data.end());
        args.note = note_scratch_;
      }
      break;
    }
    case FrameType::kWindowUpdate:
      args.detail_a = frame.as<h2::WindowUpdatePayload>().increment;
      break;
    default:
      if (frame.is<h2::UnknownPayload>()) {
        args.detail_a = frame.as<h2::UnknownPayload>().type;
      }
      break;
  }
  record(args);
}

void Recorder::record_frame(Direction dir, const h2::FrameView& view,
                            std::size_t wire_length) {
  EventArgs args;
  args.dir = dir;
  args.kind = EventKind::kFrame;
  args.stream_id = view.stream_id;
  args.flags = view.flags;
  args.wire_length = static_cast<std::uint32_t>(wire_length);
  args.frame_type = view.raw_type;

  switch (view.type()) {
    case FrameType::kData:
      args.detail_a = static_cast<std::uint32_t>(view.body.size());
      break;
    case FrameType::kHeaders:
      if (view.priority) {
        args.detail_a = view.priority->dependency;
        args.detail_b = kPriorityPresentBit | view.priority->weight_field |
                        (view.priority->exclusive ? kExclusiveBit : 0);
      }
      break;
    case FrameType::kPriority:
      if (view.priority) {
        args.detail_a = view.priority->dependency;
        args.detail_b = view.priority->weight_field |
                        (view.priority->exclusive ? kExclusiveBit : 0);
      }
      break;
    case FrameType::kRstStream:
      args.detail_a = static_cast<std::uint32_t>(view.error);
      args.note = h2::to_string(view.error);
      break;
    case FrameType::kSettings:
      args.detail_a = static_cast<std::uint32_t>(view.settings_entry_count());
      break;
    case FrameType::kPushPromise:
      args.detail_a = view.promised_stream_id;
      break;
    case FrameType::kGoaway:
      args.detail_a = static_cast<std::uint32_t>(view.error);
      args.detail_b = view.last_stream_id;
      if (view.body.empty()) {
        args.note = h2::to_string(view.error);
      } else {
        note_scratch_.assign(h2::to_string(view.error));
        note_scratch_ += ':';
        note_scratch_.append(view.body.begin(), view.body.end());
        args.note = note_scratch_;
      }
      break;
    case FrameType::kWindowUpdate:
      args.detail_a = view.increment;
      break;
    default:
      if (!view.known_type()) args.detail_a = view.raw_type;
      break;
  }
  record(args);
}

// ------------------------------------------------------------ RingRecorder

void RingRecorder::decode_into(std::vector<TraceEvent>& out) const {
  out.resize(records_.size());
  const std::uint64_t base = first_seq();
  for (std::size_t i = 0; i < records_.size(); ++i) {
    const WireRecord& rec = records_[index(i)];
    decode_record(base + i, rec, notes_.at(rec.note_ref), out[i]);
  }
}

void RingRecorder::serialize(std::string& out) const {
  out.append(kMagic, sizeof kMagic);
  put_u32(out, kVersion);
  put_u64(out, records_.size());
  put_u64(out, first_seq());
  put_u64(out, dropped_);
  put_u32(out, static_cast<std::uint32_t>(notes_.size()));
  for (std::uint32_t ref = 0; ref < notes_.size(); ++ref) {
    const std::string_view s = notes_.at(ref);
    put_u32(out, static_cast<std::uint32_t>(s.size()));
    out.append(s.data(), s.size());
  }
  for (std::size_t i = 0; i < records_.size(); ++i) {
    const WireRecord& rec = records_[index(i)];
    put_u64(out, rec.time_bits);
    put_u32(out, rec.stream_id);
    put_u32(out, rec.wire_length);
    put_u32(out, rec.detail_a);
    put_u32(out, rec.detail_b);
    put_u32(out, rec.note_ref);
    out.push_back(static_cast<char>(rec.dir));
    out.push_back(static_cast<char>(rec.kind));
    out.push_back(static_cast<char>(rec.frame_type));
    out.push_back(static_cast<char>(rec.flags));
  }
}

bool parse_trace_bin(std::string_view bytes, std::vector<TraceEvent>& out,
                     std::uint64_t& drops, std::string& error) {
  out.clear();
  drops = 0;
  ByteReader in(bytes);
  std::string_view magic;
  if (!in.bytes(sizeof kMagic, magic) ||
      std::memcmp(magic.data(), kMagic, sizeof kMagic) != 0) {
    error = "not an H2WT binary trace (bad magic)";
    return false;
  }
  std::uint32_t version = 0;
  if (!in.u32(version) || version != kVersion) {
    error = "unsupported H2WT trace version";
    return false;
  }
  std::uint64_t record_count = 0;
  std::uint64_t first_seq = 0;
  std::uint32_t string_count = 0;
  if (!in.u64(record_count) || !in.u64(first_seq) || !in.u64(drops) ||
      !in.u32(string_count) || string_count == 0) {
    error = "truncated H2WT trace header";
    return false;
  }
  std::vector<std::string_view> notes;
  notes.reserve(string_count);
  for (std::uint32_t i = 0; i < string_count; ++i) {
    std::uint32_t len = 0;
    std::string_view s;
    if (!in.u32(len) || !in.bytes(len, s)) {
      error = "truncated H2WT note table";
      return false;
    }
    notes.push_back(s);
  }
  if (!notes[0].empty()) {
    error = "H2WT note table entry 0 must be empty";
    return false;
  }
  out.resize(record_count);
  for (std::uint64_t i = 0; i < record_count; ++i) {
    WireRecord rec;
    if (!in.u64(rec.time_bits) || !in.u32(rec.stream_id) ||
        !in.u32(rec.wire_length) || !in.u32(rec.detail_a) ||
        !in.u32(rec.detail_b) || !in.u32(rec.note_ref) || !in.u8(rec.dir) ||
        !in.u8(rec.kind) || !in.u8(rec.frame_type) || !in.u8(rec.flags)) {
      error = "truncated H2WT record block";
      out.clear();
      return false;
    }
    if (rec.dir > 1 ||
        rec.kind > static_cast<std::uint8_t>(EventKind::kMitigation) ||
        rec.note_ref >= notes.size()) {
      error = "corrupt H2WT record";
      out.clear();
      return false;
    }
    decode_record(first_seq + i, rec, notes[rec.note_ref], out[i]);
  }
  if (in.remaining() != 0) {
    error = "trailing garbage after H2WT records";
    out.clear();
    return false;
  }
  return true;
}

}  // namespace h2r::trace
