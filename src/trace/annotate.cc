#include "trace/annotate.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>

#include "h2/constants.h"

namespace h2r::trace {
namespace {

using h2::FrameType;

constexpr std::uint64_t kMaxWindow = 0x7FFFFFFFull;
// Settings identifier for SETTINGS_INITIAL_WINDOW_SIZE (RFC 7540 §6.5.2).
constexpr std::uint32_t kInitialWindowSizeId = 4;
constexpr std::uint64_t kDefaultWindow = 65535;
// Windows below this are "tiny" — the paper's §V-D1 small-window probe uses
// single-digit values; anything under 1 KiB cannot carry a realistic
// response in one flight.
constexpr std::uint64_t kTinyWindowLimit = 1024;

bool is_frame(const TraceEvent& ev, Direction dir, FrameType type) {
  return ev.kind == EventKind::kFrame && ev.dir == dir &&
         ev.frame_type == static_cast<std::uint8_t>(type);
}

bool goaway_has_debug(const TraceEvent& ev) {
  // GOAWAY notes are "<ERROR_NAME>" or "<ERROR_NAME>:<debug data>".
  return ev.note.find(':') != std::string::npos;
}

// Mitigation reactions (server::MitigationPolicy) are coded
// ENHANCE_YOUR_CALM so the quirk passes can tell them apart from genuine
// protocol reactions and leave the Table III derivation untouched.
bool is_mitigation_frame(const TraceEvent& ev) {
  return ev.kind == EventKind::kFrame &&
         ev.dir == Direction::kServerToClient &&
         (ev.frame_type == static_cast<std::uint8_t>(FrameType::kRstStream) ||
          ev.frame_type == static_cast<std::uint8_t>(FrameType::kGoaway)) &&
         ev.detail_a == static_cast<std::uint32_t>(h2::ErrorCode::kEnhanceYourCalm);
}

/// How the server reacted to a client-side protocol trigger.
enum class Reaction { kNone, kRst, kGoaway, kGoawayDebug };

class SegmentAnnotator {
 public:
  SegmentAnnotator(std::vector<TraceEvent>& events, std::size_t begin,
                   std::size_t end, std::set<std::string>& found)
      : events_(events), begin_(begin), end_(end), found_(found) {}

  void run() {
    scan_client_window();
    annotate_window_updates();
    annotate_self_dependency();
    annotate_headers_and_tiny_window();
    annotate_data_budget();
    annotate_priority_order();
    annotate_hpack_indexing();
    annotate_mitigation();
  }

 private:
  void tag(TraceEvent& ev, const char* name) {
    ev.tags.emplace_back(name);
    found_.insert(name);
  }

  /// First server reaction recorded after @p trigger: an RST_STREAM on
  /// @p stream (when stream-scoped) or any GOAWAY. ENHANCE_YOUR_CALM frames
  /// are mitigation, not a reaction to the probe trigger, and are skipped.
  Reaction reaction_after(std::size_t trigger, std::uint32_t stream) const {
    for (std::size_t i = trigger + 1; i < end_; ++i) {
      const TraceEvent& ev = events_[i];
      if (is_mitigation_frame(ev)) continue;
      if (stream != 0 &&
          is_frame(ev, Direction::kServerToClient, FrameType::kRstStream) &&
          ev.stream_id == stream) {
        return Reaction::kRst;
      }
      if (is_frame(ev, Direction::kServerToClient, FrameType::kGoaway)) {
        return goaway_has_debug(ev) ? Reaction::kGoawayDebug : Reaction::kGoaway;
      }
    }
    return Reaction::kNone;
  }

  /// The client's SETTINGS_INITIAL_WINDOW_SIZE, taken from the first
  /// server-side "settings applied" event of the segment (before any request
  /// is served the server has processed the client preface, so this is the
  /// value every response stream starts with).
  void scan_client_window() {
    client_iws_ = kDefaultWindow;
    for (std::size_t i = begin_; i < end_; ++i) {
      const TraceEvent& ev = events_[i];
      if (ev.kind == EventKind::kSettingsApplied &&
          ev.dir == Direction::kClientToServer &&
          ev.detail_a == kInitialWindowSizeId) {
        client_iws_ = ev.detail_b;
        return;
      }
    }
  }

  // §6.9: zero-increment and overflowing WINDOW_UPDATEs. RFC-prescribed
  // reactions (stream error -> RST_STREAM, connection error -> GOAWAY) stay
  // untagged; everything else gets the matching reaction-suffix tag. The
  // shadow windows replay the real arithmetic — server DATA debits them —
  // so the client's routine replenishment never reads as an overflow.
  void annotate_window_updates() {
    std::map<std::uint32_t, std::int64_t> stream_window;
    std::int64_t conn_window = static_cast<std::int64_t>(kDefaultWindow);
    bool conn_overflowed = false;
    const auto initial = static_cast<std::int64_t>(client_iws_);
    for (std::size_t i = begin_; i < end_; ++i) {
      TraceEvent& ev = events_[i];
      if (is_frame(ev, Direction::kServerToClient, FrameType::kData)) {
        const auto payload = static_cast<std::int64_t>(ev.detail_a);
        conn_window -= payload;
        stream_window.try_emplace(ev.stream_id, initial).first->second -=
            payload;
        continue;
      }
      if (!is_frame(ev, Direction::kClientToServer, FrameType::kWindowUpdate)) {
        continue;
      }
      const std::uint32_t stream = ev.stream_id;
      const auto increment = static_cast<std::int64_t>(ev.detail_a);
      if (increment == 0) {
        const Reaction r = reaction_after(i, stream);
        if (stream != 0) {
          if (r == Reaction::kNone) tag(ev, tags::kZeroWuStreamIgnored);
          if (r == Reaction::kGoaway) tag(ev, tags::kZeroWuStreamGoaway);
          if (r == Reaction::kGoawayDebug) {
            tag(ev, tags::kZeroWuStreamGoawayDebug);
          }
        } else {
          if (r == Reaction::kNone) tag(ev, tags::kZeroWuConnIgnored);
          if (r == Reaction::kGoawayDebug) tag(ev, tags::kZeroWuConnGoawayDebug);
        }
        continue;
      }
      if (stream != 0) {
        auto [it, inserted] = stream_window.try_emplace(stream, initial);
        const bool was_over = it->second > static_cast<std::int64_t>(kMaxWindow);
        it->second += increment;
        if (it->second > static_cast<std::int64_t>(kMaxWindow) && !was_over) {
          const Reaction r = reaction_after(i, stream);
          if (r == Reaction::kNone) tag(ev, tags::kLargeWuStreamIgnored);
          if (r == Reaction::kGoaway) tag(ev, tags::kLargeWuStreamGoaway);
          if (r == Reaction::kGoawayDebug) {
            tag(ev, tags::kLargeWuStreamGoawayDebug);
          }
        }
      } else {
        conn_window += increment;
        if (conn_window > static_cast<std::int64_t>(kMaxWindow) &&
            !conn_overflowed) {
          conn_overflowed = true;
          const Reaction r = reaction_after(i, 0);
          if (r == Reaction::kNone) tag(ev, tags::kLargeWuConnIgnored);
          if (r == Reaction::kGoawayDebug) tag(ev, tags::kLargeWuConnGoawayDebug);
        }
      }
    }
  }

  // §5.3.1: a stream depending on itself is a PROTOCOL_ERROR stream error.
  void annotate_self_dependency() {
    for (std::size_t i = begin_; i < end_; ++i) {
      TraceEvent& ev = events_[i];
      const bool priority_self =
          is_frame(ev, Direction::kClientToServer, FrameType::kPriority) &&
          ev.detail_a == ev.stream_id && ev.stream_id != 0;
      const bool headers_self =
          is_frame(ev, Direction::kClientToServer, FrameType::kHeaders) &&
          (ev.detail_b & kPriorityPresentBit) != 0 &&
          ev.detail_a == ev.stream_id && ev.stream_id != 0;
      if (!priority_self && !headers_self) continue;
      const Reaction r = reaction_after(i, ev.stream_id);
      if (r == Reaction::kNone) tag(ev, tags::kSelfDependencyIgnored);
      if (r == Reaction::kGoaway) tag(ev, tags::kSelfDependencyGoaway);
      if (r == Reaction::kGoawayDebug) tag(ev, tags::kSelfDependencyGoawayDebug);
    }
  }

  // Under INITIAL_WINDOW_SIZE = 0 a compliant server still sends HEADERS
  // (flow control covers DATA only). A request answered with nothing at all
  // — no HEADERS, no RST_STREAM, no GOAWAY — exposes flow control applied
  // to the header frames. Under a tiny-but-nonzero window, a zero-length
  // END_STREAM DATA (before any payload) or a fully silent stream is the
  // paper's small-frame deviation pair.
  void annotate_headers_and_tiny_window() {
    const bool zero_window = client_iws_ == 0;
    const bool tiny_window = client_iws_ > 0 && client_iws_ < kTinyWindowLimit;
    if (!zero_window && !tiny_window) return;
    bool any_goaway = false;
    for (std::size_t i = begin_; i < end_; ++i) {
      if (is_frame(events_[i], Direction::kServerToClient, FrameType::kGoaway) &&
          !is_mitigation_frame(events_[i])) {
        any_goaway = true;
      }
    }
    if (any_goaway) return;  // connection-level reaction, not a silent stall

    struct StreamState {
      std::size_t request_idx = 0;
      bool response_headers = false;
      bool reset = false;
      bool payload_seen = false;
      bool tagged = false;
    };
    std::map<std::uint32_t, StreamState> streams;
    for (std::size_t i = begin_; i < end_; ++i) {
      TraceEvent& ev = events_[i];
      if (is_frame(ev, Direction::kClientToServer, FrameType::kHeaders)) {
        auto [it, inserted] = streams.try_emplace(ev.stream_id);
        if (inserted) it->second.request_idx = i;
        continue;
      }
      if (ev.kind != EventKind::kFrame || ev.dir != Direction::kServerToClient) {
        continue;
      }
      auto it = streams.find(ev.stream_id);
      if (it == streams.end()) continue;
      StreamState& st = it->second;
      if (ev.frame_type == static_cast<std::uint8_t>(FrameType::kHeaders)) {
        st.response_headers = true;
      }
      if (ev.frame_type == static_cast<std::uint8_t>(FrameType::kRstStream) &&
          !is_mitigation_frame(ev)) {
        st.reset = true;
      }
      if (tiny_window &&
          ev.frame_type == static_cast<std::uint8_t>(FrameType::kData)) {
        if (ev.detail_a == 0 && (ev.flags & h2::flags::kEndStream) != 0 &&
            !st.payload_seen && !st.tagged) {
          tag(ev, tags::kZeroLengthDataUnderTinyWindow);
          st.tagged = true;
        }
        if (ev.detail_a > 0) st.payload_seen = true;
      }
    }
    for (auto& [stream, st] : streams) {
      if (st.response_headers || st.reset || st.tagged) continue;
      if (zero_window) {
        tag(events_[st.request_idx], tags::kFlowControlOnHeaders);
      } else {
        tag(events_[st.request_idx], tags::kStalledUnderTinyWindow);
      }
    }
  }

  // §6.9: response DATA must fit in the budget the client advertised. The
  // trace records client WINDOW_UPDATEs when the client emits them, which
  // is never later than when the server credits them, so cumulative DATA
  // exceeding the trace-order budget is a true violation. Mid-connection
  // INITIAL_WINDOW_SIZE changes are not modelled (the probes never resize).
  void annotate_data_budget() {
    std::map<std::uint32_t, std::uint64_t> stream_allowed;
    std::map<std::uint32_t, std::uint64_t> stream_sent;
    std::uint64_t conn_allowed = kDefaultWindow;
    std::uint64_t conn_sent = 0;
    bool conn_tagged = false;
    std::set<std::uint32_t> stream_tagged;
    for (std::size_t i = begin_; i < end_; ++i) {
      TraceEvent& ev = events_[i];
      if (is_frame(ev, Direction::kClientToServer, FrameType::kWindowUpdate)) {
        if (ev.stream_id == 0) {
          conn_allowed += ev.detail_a;
        } else {
          auto [it, inserted] =
              stream_allowed.try_emplace(ev.stream_id, client_iws_);
          it->second += ev.detail_a;
        }
        continue;
      }
      if (!is_frame(ev, Direction::kServerToClient, FrameType::kData) ||
          ev.stream_id == 0) {
        continue;
      }
      const std::uint64_t payload = ev.detail_a;
      conn_sent += payload;
      auto [it, inserted] = stream_allowed.try_emplace(ev.stream_id, client_iws_);
      std::uint64_t& sent = stream_sent[ev.stream_id];
      sent += payload;
      if (sent > it->second && stream_tagged.insert(ev.stream_id).second) {
        tag(ev, tags::kDataExceedsStreamWindow);
      }
      if (conn_sent > conn_allowed && !conn_tagged) {
        conn_tagged = true;
        tag(ev, tags::kDataExceedsConnWindow);
      }
    }
  }

  // §5.3 / paper Algorithm 1: once the client declares a dependency tree,
  // response DATA for a stream whose declared ancestor is still requested,
  // unserved and unreset means the scheduler ignored the tree. The shadow
  // tree mirrors client-sent PRIORITY / HEADERS-with-priority signals,
  // including exclusive reparenting.
  void annotate_priority_order() {
    std::map<std::uint32_t, std::uint32_t> parent;
    std::set<std::uint32_t> requested;
    std::set<std::uint32_t> closed;
    bool tagged = false;

    auto apply_signal = [&](std::uint32_t stream, std::uint32_t dependency,
                            bool exclusive) {
      if (stream == 0 || dependency == stream) return;  // self-dep handled above
      if (exclusive) {
        for (auto& [child, par] : parent) {
          if (par == dependency && child != stream) par = stream;
        }
      }
      parent[stream] = dependency;
    };

    for (std::size_t i = begin_; i < end_ && !tagged; ++i) {
      TraceEvent& ev = events_[i];
      if (ev.kind != EventKind::kFrame) continue;
      if (ev.dir == Direction::kClientToServer) {
        if (ev.frame_type == static_cast<std::uint8_t>(FrameType::kHeaders)) {
          requested.insert(ev.stream_id);
          if ((ev.detail_b & kPriorityPresentBit) != 0) {
            apply_signal(ev.stream_id, ev.detail_a,
                         (ev.detail_b & kExclusiveBit) != 0);
          }
        } else if (ev.frame_type ==
                   static_cast<std::uint8_t>(FrameType::kPriority)) {
          apply_signal(ev.stream_id, ev.detail_a,
                       (ev.detail_b & kExclusiveBit) != 0);
        } else if (ev.frame_type ==
                   static_cast<std::uint8_t>(FrameType::kRstStream)) {
          closed.insert(ev.stream_id);  // client cancelled (e.g. drain stream)
        }
        continue;
      }
      // Server side: track completion, then check ordering on payload DATA.
      const auto type = static_cast<FrameType>(ev.frame_type);
      if (type == FrameType::kRstStream) {
        closed.insert(ev.stream_id);
        continue;
      }
      if (type == FrameType::kGoaway) {
        if (is_mitigation_frame(ev)) continue;
        break;
      }
      const bool ends_stream = (type == FrameType::kData ||
                                type == FrameType::kHeaders) &&
                               (ev.flags & h2::flags::kEndStream) != 0;
      if (type == FrameType::kData && ev.detail_a > 0 &&
          requested.count(ev.stream_id) != 0 &&
          closed.count(ev.stream_id) == 0) {
        std::set<std::uint32_t> visited;
        std::uint32_t node = ev.stream_id;
        while (visited.insert(node).second) {
          const auto it = parent.find(node);
          if (it == parent.end() || it->second == 0) break;
          node = it->second;
          if (requested.count(node) != 0 && closed.count(node) == 0) {
            tag(ev, tags::kPriorityInversion);
            tagged = true;
            break;
          }
        }
      }
      if (ends_stream) closed.insert(ev.stream_id);
    }
  }

  // RFC 7541: a connection carrying several response header blocks that
  // never grows the response dynamic table is serving from the static table
  // only — the compression ratio is pinned at 1 (Table III "support*").
  void annotate_hpack_indexing() {
    std::size_t response_blocks = 0;
    std::size_t last_headers = 0;
    std::uint64_t inserts = 0;
    for (std::size_t i = begin_; i < end_; ++i) {
      const TraceEvent& ev = events_[i];
      if (is_frame(ev, Direction::kServerToClient, FrameType::kHeaders)) {
        ++response_blocks;
        last_headers = i;
      }
      if (ev.kind == EventKind::kHpackInsert &&
          ev.dir == Direction::kServerToClient) {
        inserts += ev.detail_a;
      }
    }
    if (response_blocks >= 2 && inserts == 0) {
      tag(events_[last_headers], tags::kHpackNoDynamicIndexing);
    }
  }

  // Mitigation annotation class: ENHANCE_YOUR_CALM frames and kMitigation
  // escalation events get their own tags (never the quirk tags above).
  void annotate_mitigation() {
    for (std::size_t i = begin_; i < end_; ++i) {
      TraceEvent& ev = events_[i];
      if (ev.kind == EventKind::kMitigation) {
        switch (ev.detail_a) {
          case 0:
            tag(ev, tags::kMitigationRelease);
            break;
          case 1:
            tag(ev, tags::kMitigationThrottle);
            break;
          case 2:
            tag(ev, tags::kMitigationRst);
            break;
          default:
            tag(ev, tags::kMitigationGoaway);
            break;
        }
        continue;
      }
      if (!is_mitigation_frame(ev)) continue;
      tag(ev, ev.frame_type == static_cast<std::uint8_t>(FrameType::kGoaway)
                  ? tags::kMitigationGoaway
                  : tags::kMitigationRst);
    }
  }

  std::vector<TraceEvent>& events_;
  std::size_t begin_;
  std::size_t end_;
  std::set<std::string>& found_;
  std::uint64_t client_iws_ = kDefaultWindow;
};

}  // namespace

std::vector<std::string> annotate_violations(std::vector<TraceEvent>& events) {
  std::set<std::string> found;
  std::size_t segment_begin = 0;
  bool in_segment = false;
  auto close_segment = [&](std::size_t end) {
    if (in_segment && end > segment_begin) {
      SegmentAnnotator(events, segment_begin, end, found).run();
    }
  };
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (events[i].kind == EventKind::kConnectionStart) {
      close_segment(i);
      segment_begin = i;
      in_segment = true;
    }
  }
  // Traces may omit connection markers (hand-built event lists); treat the
  // whole vector as one segment then.
  if (!in_segment && !events.empty()) {
    segment_begin = 0;
    in_segment = true;
  }
  close_segment(events.size());
  return {found.begin(), found.end()};
}

}  // namespace h2r::trace
