#include "trace/annotate.h"

#include <algorithm>
#include <cstdint>
#include <set>
#include <utility>
#include <vector>

#include "h2/constants.h"
#include "trace/metrics.h"
#include "trace/wire_record.h"

namespace h2r::trace {
namespace {

using h2::FrameType;

constexpr std::uint64_t kMaxWindow = 0x7FFFFFFFull;
// Settings identifier for SETTINGS_INITIAL_WINDOW_SIZE (RFC 7540 §6.5.2).
constexpr std::uint32_t kInitialWindowSizeId = 4;
constexpr std::uint64_t kDefaultWindow = 65535;
// Windows below this are "tiny" — the paper's §V-D1 small-window probe uses
// single-digit values; anything under 1 KiB cannot carry a realistic
// response in one flight.
constexpr std::uint64_t kTinyWindowLimit = 1024;

// The annotator is written once against the field accessors in
// wire_record.h (kind_of, dir_of, ...) and instantiated for both event
// representations: decoded TraceEvents (the legacy / JSONL-export path) and
// raw ring WireRecords (the always-on scan path, which never materializes
// TraceEvents at all). Same template body ⇒ the two paths cannot drift
// apart.
template <typename E>
bool is_frame(const E& ev, Direction dir, FrameType type) {
  return kind_of(ev) == EventKind::kFrame && dir_of(ev) == dir &&
         type_of(ev) == static_cast<std::uint8_t>(type);
}

// Mitigation reactions (server::MitigationPolicy) are coded
// ENHANCE_YOUR_CALM so the quirk passes can tell them apart from genuine
// protocol reactions and leave the Table III derivation untouched.
template <typename E>
bool is_mitigation_frame(const E& ev) {
  return kind_of(ev) == EventKind::kFrame &&
         dir_of(ev) == Direction::kServerToClient &&
         (type_of(ev) == static_cast<std::uint8_t>(FrameType::kRstStream) ||
          type_of(ev) == static_cast<std::uint8_t>(FrameType::kGoaway)) &&
         a_of(ev) == static_cast<std::uint32_t>(h2::ErrorCode::kEnhanceYourCalm);
}

/// View over decoded TraceEvents: tags land on the events themselves (the
/// JSONL exporter emits them) and in the caller's dedup set.
struct EventsView {
  std::vector<TraceEvent>& events;
  std::set<std::string>& found;

  [[nodiscard]] std::size_t size() const noexcept { return events.size(); }
  const TraceEvent& operator[](std::size_t i) const noexcept {
    return events[i];
  }
  // GOAWAY notes are "<ERROR_NAME>" or "<ERROR_NAME>:<debug data>".
  [[nodiscard]] bool goaway_has_debug(std::size_t i) const {
    return events[i].note.find(':') != std::string::npos;
  }
  void tag(std::size_t i, const char* name) {
    events[i].tags.emplace_back(name);
    found.insert(name);
  }
  void tee(std::size_t) {}
};

/// View over a ring's raw WireRecords: tags become occurrence counts keyed
/// by the interned tag constants (pointer identity — every tag() call in
/// this file passes a tags::k* constant), and each record can be folded
/// into a MetricsRecorder as the segmentation sweep passes over it.
struct RingView {
  const RingRecorder& ring;
  TagCounts& counts;
  MetricsRecorder* fold;
  std::uint64_t first_seq;

  [[nodiscard]] std::size_t size() const noexcept { return ring.size(); }
  const WireRecord& operator[](std::size_t i) const noexcept {
    return ring.at(i);
  }
  [[nodiscard]] bool goaway_has_debug(std::size_t i) const {
    return ring.note_at(i).find(':') != std::string_view::npos;
  }
  void tag(std::size_t i, const char* name) {
    (void)i;
    for (auto& [existing, n] : counts) {
      if (existing == name) {
        ++n;
        return;
      }
    }
    counts.emplace_back(name, 1);
  }
  void tee(std::size_t i) {
    if (fold != nullptr) fold->fold_record(first_seq + i, ring.at(i));
  }
};

/// How the server reacted to a client-side protocol trigger.
enum class Reaction { kNone, kRst, kGoaway, kGoawayDebug };

/// Flat (stream -> value) shadow state: returns the entry for @p key,
/// inserting it with @p init on first sight. Segments hold a handful of
/// streams, so linear probes beat node-based maps — and with the scratch
/// buffers reused across segments the passes allocate almost never.
template <typename T>
T& shadow_get(std::vector<std::pair<std::uint32_t, T>>& v, std::uint32_t key,
              T init) {
  for (auto& [k, value] : v) {
    if (k == key) return value;
  }
  return v.emplace_back(key, init).second;
}

template <typename T>
T* shadow_find(std::vector<std::pair<std::uint32_t, T>>& v,
               std::uint32_t key) {
  for (auto& [k, value] : v) {
    if (k == key) return &value;
  }
  return nullptr;
}

bool id_contains(const std::vector<std::uint32_t>& v, std::uint32_t key) {
  return std::find(v.begin(), v.end(), key) != v.end();
}

/// Returns true when @p key was not yet present (set-insert semantics).
bool id_insert(std::vector<std::uint32_t>& v, std::uint32_t key) {
  if (id_contains(v, key)) return false;
  v.push_back(key);
  return true;
}

/// Per-stream state for the zero/tiny-window stall pass.
struct StallState {
  std::size_t request_idx = 0;
  bool response_headers = false;
  bool reset = false;
  bool payload_seen = false;
  bool tagged = false;
};

/// Shadow-state buffers shared by every segment of one annotate call;
/// cleared (capacity kept) between segments.
struct ShadowScratch {
  std::vector<std::pair<std::uint32_t, std::int64_t>> window;
  std::vector<std::pair<std::uint32_t, StallState>> stalls;
  std::vector<std::pair<std::uint32_t, std::uint64_t>> allowed;
  std::vector<std::pair<std::uint32_t, std::uint64_t>> sent;
  std::vector<std::uint32_t> tagged_streams;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> parent;
  std::vector<std::uint32_t> requested;
  std::vector<std::uint32_t> closed;

  void reset() {
    window.clear();
    stalls.clear();
    allowed.clear();
    sent.clear();
    tagged_streams.clear();
    parent.clear();
    requested.clear();
    closed.clear();
  }
};

/// What one sweep over a segment witnessed: the client's
/// SETTINGS_INITIAL_WINDOW_SIZE (from the first server-side "settings
/// applied" event — before any request is served the server has processed
/// the client preface, so this is the value every response stream starts
/// with), one trigger flag per quirk pass, and the response-header-block
/// counts the HPACK rule needs. Collected incrementally by the caller's
/// segmentation sweep so annotation needs no separate pre-scan pass.
struct SegmentWitness {
  std::uint64_t client_iws = kDefaultWindow;
  bool iws_seen = false;
  bool has_c2s_window_update = false;
  bool has_c2s_wu_zero = false;
  bool has_priority_signal = false;
  bool has_s2c_data = false;
  bool has_s2c_goaway = false;  ///< non-mitigation server GOAWAY
  bool has_mitigation = false;
  std::size_t response_blocks = 0;
  std::size_t last_response_headers = 0;
  std::uint64_t s2c_hpack_inserts = 0;
  /// Conservative aggregates for the pass gates below: the summed c2s
  /// WINDOW_UPDATE increments bound any single shadow window from above
  /// (debits only shrink it), and the summed s2c DATA payload bounds any
  /// single stream's spend. A pass whose violation is arithmetically
  /// impossible under these bounds is skipped without walking the segment.
  std::uint64_t c2s_wu_sum = 0;
  std::uint64_t s2c_data_payload = 0;

  void reset() { *this = SegmentWitness{}; }

  template <typename E>
  void observe(const E& ev, std::size_t index) {
    if (kind_of(ev) == EventKind::kSettingsApplied) {
      if (!iws_seen && dir_of(ev) == Direction::kClientToServer &&
          a_of(ev) == kInitialWindowSizeId) {
        client_iws = b_of(ev);
        iws_seen = true;
      }
      return;
    }
    if (kind_of(ev) == EventKind::kMitigation) {
      has_mitigation = true;
      return;
    }
    if (kind_of(ev) == EventKind::kHpackInsert &&
        dir_of(ev) == Direction::kServerToClient) {
      s2c_hpack_inserts += a_of(ev);
      return;
    }
    if (kind_of(ev) != EventKind::kFrame) return;
    if (dir_of(ev) == Direction::kClientToServer) {
      if (type_of(ev) == static_cast<std::uint8_t>(FrameType::kWindowUpdate)) {
        has_c2s_window_update = true;
        if (a_of(ev) == 0) has_c2s_wu_zero = true;
        c2s_wu_sum += a_of(ev);
      } else if (type_of(ev) ==
                 static_cast<std::uint8_t>(FrameType::kPriority)) {
        has_priority_signal = true;
      } else if (type_of(ev) ==
                     static_cast<std::uint8_t>(FrameType::kHeaders) &&
                 (b_of(ev) & kPriorityPresentBit) != 0) {
        has_priority_signal = true;
      }
      return;
    }
    if (type_of(ev) == static_cast<std::uint8_t>(FrameType::kData)) {
      has_s2c_data = true;
      s2c_data_payload += a_of(ev);
    } else if (type_of(ev) == static_cast<std::uint8_t>(FrameType::kHeaders)) {
      ++response_blocks;
      last_response_headers = index;
    } else if (is_mitigation_frame(ev)) {
      has_mitigation = true;
    } else if (type_of(ev) == static_cast<std::uint8_t>(FrameType::kGoaway)) {
      has_s2c_goaway = true;
    }
  }
};

template <typename View>
class SegmentAnnotator {
 public:
  SegmentAnnotator(View& view, std::size_t begin, std::size_t end,
                   ShadowScratch& scratch, const SegmentWitness& witness)
      : view_(view), begin_(begin), end_(end), sc_(scratch), w_(witness),
        client_iws_(witness.client_iws) {
    sc_.reset();
  }

  void run() {
    // The caller's sweep already decided which quirk passes can possibly
    // tag anything; most probe connections trigger none. Each gate is
    // conservative — it skips a pass only when the witness aggregates make
    // every one of that pass's tags arithmetically impossible — so skipping
    // cannot change the annotation.
    //
    // window_updates tags zero increments and window overflow. Overflow
    // needs some shadow window above 2^31-1, and every window is bounded by
    // its initial value (client IWS for streams, the protocol default for
    // the connection) plus the segment's total c2s increments: DATA only
    // debits. Routine replenishment on a clean connection never crosses
    // either bound, so the common case skips the walk entirely.
    const bool wu_can_tag =
        w_.has_c2s_wu_zero ||
        std::max(client_iws_, kDefaultWindow) + w_.c2s_wu_sum > kMaxWindow;
    if (w_.has_c2s_window_update && wu_can_tag) annotate_window_updates();
    if (w_.has_priority_signal) annotate_self_dependency();
    annotate_headers_and_tiny_window();  // self-gates on the client window
    // data_budget tags spend above budget. Any stream's spend is bounded by
    // the segment's total s2c DATA payload, and both budgets (stream:
    // client IWS, connection: protocol default) only ever grow from their
    // initial values — total payload under both initials means no stream
    // and not the connection can be over budget.
    if (w_.has_s2c_data &&
        w_.s2c_data_payload > std::min(client_iws_, kDefaultWindow)) {
      annotate_data_budget();
    }
    if (w_.has_priority_signal && w_.s2c_data_payload > 0) {
      annotate_priority_order();
    }
    if (w_.response_blocks >= 2 && w_.s2c_hpack_inserts == 0) {
      // RFC 7541: several response header blocks, no dynamic-table growth —
      // static-table-only compression (Table III "support*").
      tag(w_.last_response_headers, tags::kHpackNoDynamicIndexing);
    }
    if (w_.has_mitigation) annotate_mitigation();
  }

 private:
  void tag(std::size_t i, const char* name) { view_.tag(i, name); }

  /// First server reaction recorded after @p trigger: an RST_STREAM on
  /// @p stream (when stream-scoped) or any GOAWAY. ENHANCE_YOUR_CALM frames
  /// are mitigation, not a reaction to the probe trigger, and are skipped.
  Reaction reaction_after(std::size_t trigger, std::uint32_t stream) const {
    for (std::size_t i = trigger + 1; i < end_; ++i) {
      const auto& ev = view_[i];
      if (is_mitigation_frame(ev)) continue;
      if (stream != 0 &&
          is_frame(ev, Direction::kServerToClient, FrameType::kRstStream) &&
          stream_of(ev) == stream) {
        return Reaction::kRst;
      }
      if (is_frame(ev, Direction::kServerToClient, FrameType::kGoaway)) {
        return view_.goaway_has_debug(i) ? Reaction::kGoawayDebug
                                         : Reaction::kGoaway;
      }
    }
    return Reaction::kNone;
  }

  // §6.9: zero-increment and overflowing WINDOW_UPDATEs. RFC-prescribed
  // reactions (stream error -> RST_STREAM, connection error -> GOAWAY) stay
  // untagged; everything else gets the matching reaction-suffix tag. The
  // shadow windows replay the real arithmetic — server DATA debits them —
  // so the client's routine replenishment never reads as an overflow.
  void annotate_window_updates() {
    std::vector<std::pair<std::uint32_t, std::int64_t>>& stream_window =
        sc_.window;
    std::int64_t conn_window = static_cast<std::int64_t>(kDefaultWindow);
    bool conn_overflowed = false;
    const auto initial = static_cast<std::int64_t>(client_iws_);
    for (std::size_t i = begin_; i < end_; ++i) {
      const auto& ev = view_[i];
      if (is_frame(ev, Direction::kServerToClient, FrameType::kData)) {
        const auto payload = static_cast<std::int64_t>(a_of(ev));
        conn_window -= payload;
        shadow_get(stream_window, stream_of(ev), initial) -= payload;
        continue;
      }
      if (!is_frame(ev, Direction::kClientToServer, FrameType::kWindowUpdate)) {
        continue;
      }
      const std::uint32_t stream = stream_of(ev);
      const auto increment = static_cast<std::int64_t>(a_of(ev));
      if (increment == 0) {
        const Reaction r = reaction_after(i, stream);
        if (stream != 0) {
          if (r == Reaction::kNone) tag(i, tags::kZeroWuStreamIgnored);
          if (r == Reaction::kGoaway) tag(i, tags::kZeroWuStreamGoaway);
          if (r == Reaction::kGoawayDebug) {
            tag(i, tags::kZeroWuStreamGoawayDebug);
          }
        } else {
          if (r == Reaction::kNone) tag(i, tags::kZeroWuConnIgnored);
          if (r == Reaction::kGoawayDebug) tag(i, tags::kZeroWuConnGoawayDebug);
        }
        continue;
      }
      if (stream != 0) {
        std::int64_t& window = shadow_get(stream_window, stream, initial);
        const bool was_over = window > static_cast<std::int64_t>(kMaxWindow);
        window += increment;
        if (window > static_cast<std::int64_t>(kMaxWindow) && !was_over) {
          const Reaction r = reaction_after(i, stream);
          if (r == Reaction::kNone) tag(i, tags::kLargeWuStreamIgnored);
          if (r == Reaction::kGoaway) tag(i, tags::kLargeWuStreamGoaway);
          if (r == Reaction::kGoawayDebug) {
            tag(i, tags::kLargeWuStreamGoawayDebug);
          }
        }
      } else {
        conn_window += increment;
        if (conn_window > static_cast<std::int64_t>(kMaxWindow) &&
            !conn_overflowed) {
          conn_overflowed = true;
          const Reaction r = reaction_after(i, 0);
          if (r == Reaction::kNone) tag(i, tags::kLargeWuConnIgnored);
          if (r == Reaction::kGoawayDebug) tag(i, tags::kLargeWuConnGoawayDebug);
        }
      }
    }
  }

  // §5.3.1: a stream depending on itself is a PROTOCOL_ERROR stream error.
  void annotate_self_dependency() {
    for (std::size_t i = begin_; i < end_; ++i) {
      const auto& ev = view_[i];
      const bool priority_self =
          is_frame(ev, Direction::kClientToServer, FrameType::kPriority) &&
          a_of(ev) == stream_of(ev) && stream_of(ev) != 0;
      const bool headers_self =
          is_frame(ev, Direction::kClientToServer, FrameType::kHeaders) &&
          (b_of(ev) & kPriorityPresentBit) != 0 &&
          a_of(ev) == stream_of(ev) && stream_of(ev) != 0;
      if (!priority_self && !headers_self) continue;
      const Reaction r = reaction_after(i, stream_of(ev));
      if (r == Reaction::kNone) tag(i, tags::kSelfDependencyIgnored);
      if (r == Reaction::kGoaway) tag(i, tags::kSelfDependencyGoaway);
      if (r == Reaction::kGoawayDebug) tag(i, tags::kSelfDependencyGoawayDebug);
    }
  }

  // Under INITIAL_WINDOW_SIZE = 0 a compliant server still sends HEADERS
  // (flow control covers DATA only). A request answered with nothing at all
  // — no HEADERS, no RST_STREAM, no GOAWAY — exposes flow control applied
  // to the header frames. Under a tiny-but-nonzero window, a zero-length
  // END_STREAM DATA (before any payload) or a fully silent stream is the
  // paper's small-frame deviation pair.
  void annotate_headers_and_tiny_window() {
    const bool zero_window = client_iws_ == 0;
    const bool tiny_window = client_iws_ > 0 && client_iws_ < kTinyWindowLimit;
    if (!zero_window && !tiny_window) return;
    // A non-mitigation GOAWAY (witnessed by the segmentation sweep) is a
    // connection-level reaction, not a silent stall.
    if (w_.has_s2c_goaway) return;

    std::vector<std::pair<std::uint32_t, StallState>>& streams = sc_.stalls;
    for (std::size_t i = begin_; i < end_; ++i) {
      const auto& ev = view_[i];
      if (is_frame(ev, Direction::kClientToServer, FrameType::kHeaders)) {
        if (shadow_find(streams, stream_of(ev)) == nullptr) {
          streams.emplace_back(stream_of(ev), StallState{.request_idx = i});
        }
        continue;
      }
      if (kind_of(ev) != EventKind::kFrame ||
          dir_of(ev) != Direction::kServerToClient) {
        continue;
      }
      StallState* found = shadow_find(streams, stream_of(ev));
      if (found == nullptr) continue;
      StallState& st = *found;
      if (type_of(ev) == static_cast<std::uint8_t>(FrameType::kHeaders)) {
        st.response_headers = true;
      }
      if (type_of(ev) == static_cast<std::uint8_t>(FrameType::kRstStream) &&
          !is_mitigation_frame(ev)) {
        st.reset = true;
      }
      if (tiny_window &&
          type_of(ev) == static_cast<std::uint8_t>(FrameType::kData)) {
        if (a_of(ev) == 0 && (flags_of(ev) & h2::flags::kEndStream) != 0 &&
            !st.payload_seen && !st.tagged) {
          tag(i, tags::kZeroLengthDataUnderTinyWindow);
          st.tagged = true;
        }
        if (a_of(ev) > 0) st.payload_seen = true;
      }
    }
    for (auto& [stream, st] : streams) {
      if (st.response_headers || st.reset || st.tagged) continue;
      if (zero_window) {
        tag(st.request_idx, tags::kFlowControlOnHeaders);
      } else {
        tag(st.request_idx, tags::kStalledUnderTinyWindow);
      }
    }
  }

  // §6.9: response DATA must fit in the budget the client advertised. The
  // trace records client WINDOW_UPDATEs when the client emits them, which
  // is never later than when the server credits them, so cumulative DATA
  // exceeding the trace-order budget is a true violation. Mid-connection
  // INITIAL_WINDOW_SIZE changes are not modelled (the probes never resize).
  void annotate_data_budget() {
    std::vector<std::pair<std::uint32_t, std::uint64_t>>& stream_allowed =
        sc_.allowed;
    std::vector<std::pair<std::uint32_t, std::uint64_t>>& stream_sent =
        sc_.sent;
    std::uint64_t conn_allowed = kDefaultWindow;
    std::uint64_t conn_sent = 0;
    bool conn_tagged = false;
    std::vector<std::uint32_t>& stream_tagged = sc_.tagged_streams;
    for (std::size_t i = begin_; i < end_; ++i) {
      const auto& ev = view_[i];
      if (is_frame(ev, Direction::kClientToServer, FrameType::kWindowUpdate)) {
        if (stream_of(ev) == 0) {
          conn_allowed += a_of(ev);
        } else {
          shadow_get(stream_allowed, stream_of(ev),
                     static_cast<std::uint64_t>(client_iws_)) += a_of(ev);
        }
        continue;
      }
      if (!is_frame(ev, Direction::kServerToClient, FrameType::kData) ||
          stream_of(ev) == 0) {
        continue;
      }
      const std::uint64_t payload = a_of(ev);
      conn_sent += payload;
      const std::uint64_t allowed = shadow_get(
          stream_allowed, stream_of(ev),
          static_cast<std::uint64_t>(client_iws_));
      std::uint64_t& sent =
          shadow_get(stream_sent, stream_of(ev), std::uint64_t{0});
      sent += payload;
      if (sent > allowed && id_insert(stream_tagged, stream_of(ev))) {
        tag(i, tags::kDataExceedsStreamWindow);
      }
      if (conn_sent > conn_allowed && !conn_tagged) {
        conn_tagged = true;
        tag(i, tags::kDataExceedsConnWindow);
      }
    }
  }

  // §5.3 / paper Algorithm 1: once the client declares a dependency tree,
  // response DATA for a stream whose declared ancestor is still requested,
  // unserved and unreset means the scheduler ignored the tree. The shadow
  // tree mirrors client-sent PRIORITY / HEADERS-with-priority signals,
  // including exclusive reparenting.
  void annotate_priority_order() {
    std::vector<std::pair<std::uint32_t, std::uint32_t>>& parent = sc_.parent;
    std::vector<std::uint32_t>& requested = sc_.requested;
    std::vector<std::uint32_t>& closed = sc_.closed;
    bool tagged = false;

    auto apply_signal = [&](std::uint32_t stream, std::uint32_t dependency,
                            bool exclusive) {
      if (stream == 0 || dependency == stream) return;  // self-dep handled above
      if (exclusive) {
        for (auto& [child, par] : parent) {
          if (par == dependency && child != stream) par = stream;
        }
      }
      shadow_get(parent, stream, std::uint32_t{0}) = dependency;
    };

    for (std::size_t i = begin_; i < end_ && !tagged; ++i) {
      const auto& ev = view_[i];
      if (kind_of(ev) != EventKind::kFrame) continue;
      if (dir_of(ev) == Direction::kClientToServer) {
        if (type_of(ev) == static_cast<std::uint8_t>(FrameType::kHeaders)) {
          id_insert(requested, stream_of(ev));
          if ((b_of(ev) & kPriorityPresentBit) != 0) {
            apply_signal(stream_of(ev), a_of(ev),
                         (b_of(ev) & kExclusiveBit) != 0);
          }
        } else if (type_of(ev) ==
                   static_cast<std::uint8_t>(FrameType::kPriority)) {
          apply_signal(stream_of(ev), a_of(ev),
                       (b_of(ev) & kExclusiveBit) != 0);
        } else if (type_of(ev) ==
                   static_cast<std::uint8_t>(FrameType::kRstStream)) {
          id_insert(closed, stream_of(ev));  // client cancelled (drain stream)
        }
        continue;
      }
      // Server side: track completion, then check ordering on payload DATA.
      const auto type = static_cast<FrameType>(type_of(ev));
      if (type == FrameType::kRstStream) {
        id_insert(closed, stream_of(ev));
        continue;
      }
      if (type == FrameType::kGoaway) {
        if (is_mitigation_frame(ev)) continue;
        break;
      }
      const bool ends_stream = (type == FrameType::kData ||
                                type == FrameType::kHeaders) &&
                               (flags_of(ev) & h2::flags::kEndStream) != 0;
      if (type == FrameType::kData && a_of(ev) > 0 &&
          id_contains(requested, stream_of(ev)) &&
          !id_contains(closed, stream_of(ev))) {
        // Ancestor walk, cycle-safe by hop bound: an acyclic chain visits
        // each parent edge at most once, so walking more than parent.size()
        // hops means the chain looped back through nodes already checked.
        std::uint32_t node = stream_of(ev);
        for (std::size_t hops = 0; hops <= parent.size(); ++hops) {
          const std::uint32_t* par = shadow_find(parent, node);
          if (par == nullptr || *par == 0) break;
          node = *par;
          if (id_contains(requested, node) && !id_contains(closed, node)) {
            tag(i, tags::kPriorityInversion);
            tagged = true;
            break;
          }
        }
      }
      if (ends_stream) id_insert(closed, stream_of(ev));
    }
  }

  // Mitigation annotation class: ENHANCE_YOUR_CALM frames and kMitigation
  // escalation events get their own tags (never the quirk tags above).
  void annotate_mitigation() {
    for (std::size_t i = begin_; i < end_; ++i) {
      const auto& ev = view_[i];
      if (kind_of(ev) == EventKind::kMitigation) {
        switch (a_of(ev)) {
          case 0:
            tag(i, tags::kMitigationRelease);
            break;
          case 1:
            tag(i, tags::kMitigationThrottle);
            break;
          case 2:
            tag(i, tags::kMitigationRst);
            break;
          default:
            tag(i, tags::kMitigationGoaway);
            break;
        }
        continue;
      }
      if (!is_mitigation_frame(ev)) continue;
      tag(i, type_of(ev) == static_cast<std::uint8_t>(FrameType::kGoaway)
                 ? tags::kMitigationGoaway
                 : tags::kMitigationRst);
    }
  }

  View& view_;
  std::size_t begin_;
  std::size_t end_;
  ShadowScratch& sc_;
  const SegmentWitness& w_;
  std::uint64_t client_iws_;
};

/// The shared driver: one sweep segments the trace on kConnectionStart
/// markers and collects each segment's witness (and tees every record into
/// the view's live sink, so the metrics fold rides the same walk), then the
/// gated passes run per segment.
template <typename View>
void annotate_with(View& view) {
  // Shared across segments — and, being thread-local, across calls: a scan
  // worker annotating hundreds of sites reuses the same shadow buffers
  // instead of growing fresh ones per site. Every segment starts from
  // reset() state (the SegmentAnnotator ctor clears), so reuse is
  // invisible to the annotation.
  thread_local ShadowScratch scratch;
  SegmentWitness witness;  // collected by the sweep below, per segment
  std::size_t segment_begin = 0;
  bool in_segment = false;
  const std::size_t n = view.size();
  auto close_segment = [&](std::size_t end) {
    if (in_segment && end > segment_begin) {
      SegmentAnnotator<View>(view, segment_begin, end, scratch, witness).run();
    }
  };
  for (std::size_t i = 0; i < n; ++i) {
    view.tee(i);
    const auto& ev = view[i];
    if (kind_of(ev) == EventKind::kConnectionStart) {
      close_segment(i);
      segment_begin = i;
      in_segment = true;
      witness.reset();
      continue;
    }
    witness.observe(ev, i);
  }
  // Traces may omit connection markers (hand-built event lists); treat the
  // whole vector as one segment then. The witness already covers the whole
  // vector in that case (segment_begin never moved off zero).
  if (!in_segment && n != 0) {
    segment_begin = 0;
    in_segment = true;
  }
  close_segment(n);
}

}  // namespace

std::vector<std::string> annotate_violations(std::vector<TraceEvent>& events) {
  std::set<std::string> found;
  EventsView view{events, found};
  annotate_with(view);
  return {found.begin(), found.end()};
}

void annotate_ring(const RingRecorder& ring, TagCounts& counts,
                   MetricsRecorder* fold) {
  RingView view{ring, counts, fold, ring.first_seq()};
  annotate_with(view);
}

}  // namespace h2r::trace
