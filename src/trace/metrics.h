// H2Wiretap aggregation: counters + histograms over trace events.
//
// A MetricsRegistry is a plain value — each scan worker folds its own sites
// into a private registry and merge() combines them; every field is a sum
// (or a bucket-wise sum), so the merged result is independent of how sites
// were sharded across `H2R_THREADS` workers. to_json()/to_text() emit
// snapshots with stable field ordering, byte-identical for identical
// registries.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "trace/event.h"
#include "trace/recorder.h"

namespace h2r::trace {

/// Fixed log2-bucket histogram: bucket 0 holds zeros, bucket i>=1 holds
/// values with bit width i (i.e. [2^(i-1), 2^i)). Fixed geometry is what
/// makes merge() a plain bucket-wise sum.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 40;

  void add(std::uint64_t value, std::uint64_t times = 1);
  void merge(const Histogram& other);

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }
  [[nodiscard]] const std::array<std::uint64_t, kBuckets>& buckets()
      const noexcept {
    return buckets_;
  }

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
};

/// Slot count for per-frame-type counters: the ten RFC 7540 types plus one
/// shared slot for unknown type octets.
inline constexpr std::size_t kFrameTypeSlots = 11;

/// Returns the counter slot for a raw frame-type octet.
[[nodiscard]] std::size_t frame_type_slot(std::uint8_t type_octet) noexcept;

struct MetricsRegistry {
  std::uint64_t connections = 0;
  std::uint64_t rounds = 0;
  std::array<std::uint64_t, kFrameTypeSlots> frames_c2s{};
  std::array<std::uint64_t, kFrameTypeSlots> frames_s2c{};
  std::uint64_t bytes_c2s = 0;
  std::uint64_t bytes_s2c = 0;
  std::uint64_t settings_applied = 0;
  std::uint64_t hpack_inserts = 0;
  std::uint64_t hpack_evictions = 0;
  std::uint64_t rst_streams = 0;
  std::uint64_t goaways = 0;
  std::uint64_t window_stalls = 0;
  std::uint64_t parse_errors = 0;
  std::uint64_t faults_injected = 0;  ///< transport faults (EventKind::kFault)
  std::uint64_t mitigation_events = 0;  ///< escalations (EventKind::kMitigation)
  /// Violation-annotator tag counts (tag -> occurrences).
  std::map<std::string, std::uint64_t> violation_tags;

  // Reactor observability (populated by faulted scans: the scan core books
  // one park per stall stretch or retry backoff regardless of which driver
  // — event-loop or sequential — serviced it, so these are sums a merge
  // keeps independent of H2R_THREADS).
  std::uint64_t reactor_parks = 0;         ///< times any site parked
  std::uint64_t reactor_parked_rounds = 0; ///< simulated rounds spent parked
  /// Most sites simultaneously in flight on any one shard. Unlike every
  /// other field this is a property of the run *shape* (thread count, shard
  /// sizes), so merge() takes the max and to_json() never emits it —
  /// snapshots stay byte-identical across H2R_THREADS. to_text() shows it.
  std::uint64_t reactor_peak_in_flight = 0;

  Histogram frame_size;             ///< wire octets per frame, both directions
  Histogram stream_wire_bytes;      ///< wire octets per non-zero stream
  Histogram stall_span_events;      ///< stall->resume distance in trace events
  Histogram compression_ratio_pct;  ///< per-connection Equation-1 ratio x100
  Histogram park_duration_rounds;   ///< simulated rounds per individual park
  Histogram wakeups_per_site;       ///< reactor wakeups each site needed

  void merge(const MetricsRegistry& other);
  [[nodiscard]] std::uint64_t total_frames() const noexcept;
  [[nodiscard]] std::uint64_t total_violations() const noexcept;

  /// JSON snapshot, stable field order, no trailing whitespace.
  [[nodiscard]] std::string to_json() const;
  /// Human-readable snapshot (same content as to_json).
  [[nodiscard]] std::string to_text() const;
};

/// Folds events into a registry as they are recorded, retaining nothing but
/// small per-connection state (per-stream byte tallies, open stall marks,
/// response header-block sizes for the Equation-1 compression ratio). Call
/// finish() — or let the destructor — to flush the final connection.
class MetricsRecorder : public Recorder {
 public:
  explicit MetricsRecorder(MetricsRegistry& registry) : registry_(registry) {}
  ~MetricsRecorder() override { finish(); }

  /// Feeds an already-stamped event (replay path used by consume()).
  void replay(const TraceEvent& event) { on_event(event); }

  /// Flushes per-connection state into the registry. Idempotent.
  void finish();

 protected:
  void on_event(const TraceEvent& event) override;

 private:
  void flush_connection();

  MetricsRegistry& registry_;
  std::map<std::uint32_t, std::uint64_t> stream_bytes_;
  std::map<std::uint32_t, std::uint64_t> open_stalls_;  ///< stream -> seq
  std::vector<std::uint64_t> response_block_sizes_;
};

/// Replays @p events (e.g. a VectorRecorder's, after annotation) into
/// @p registry.
void consume(MetricsRegistry& registry, const std::vector<TraceEvent>& events);

}  // namespace h2r::trace
