// H2Wiretap aggregation: counters + histograms over trace events.
//
// A MetricsRegistry is a plain value — each scan worker folds its own sites
// into a private registry and merge() combines them; every field is a sum
// (or a bucket-wise sum), so the merged result is independent of how sites
// were sharded across `H2R_THREADS` workers. to_json()/to_text() emit
// snapshots with stable field ordering, byte-identical for identical
// registries.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "h2/constants.h"
#include "trace/event.h"
#include "trace/recorder.h"

namespace h2r::trace {

/// Fixed log2-bucket histogram: bucket 0 holds zeros, bucket i>=1 holds
/// values with bit width i (i.e. [2^(i-1), 2^i)). Fixed geometry is what
/// makes merge() a plain bucket-wise sum.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 40;

  void add(std::uint64_t value, std::uint64_t times = 1);
  void merge(const Histogram& other);

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }
  [[nodiscard]] const std::array<std::uint64_t, kBuckets>& buckets()
      const noexcept {
    return buckets_;
  }

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
};

/// Slot count for per-frame-type counters: the ten RFC 7540 types plus one
/// shared slot for unknown type octets.
inline constexpr std::size_t kFrameTypeSlots = 11;

/// Returns the counter slot for a raw frame-type octet.
[[nodiscard]] std::size_t frame_type_slot(std::uint8_t type_octet) noexcept;

struct MetricsRegistry {
  std::uint64_t connections = 0;
  std::uint64_t rounds = 0;
  std::array<std::uint64_t, kFrameTypeSlots> frames_c2s{};
  std::array<std::uint64_t, kFrameTypeSlots> frames_s2c{};
  std::uint64_t bytes_c2s = 0;
  std::uint64_t bytes_s2c = 0;
  std::uint64_t settings_applied = 0;
  std::uint64_t hpack_inserts = 0;
  std::uint64_t hpack_evictions = 0;
  std::uint64_t rst_streams = 0;
  std::uint64_t goaways = 0;
  std::uint64_t window_stalls = 0;
  std::uint64_t parse_errors = 0;
  std::uint64_t faults_injected = 0;  ///< transport faults (EventKind::kFault)
  std::uint64_t mitigation_events = 0;  ///< escalations (EventKind::kMitigation)
  /// Records evicted by bounded trace rings (RingRecorder::drops) before
  /// they could be decoded — the price of always-on tracing under a fixed
  /// memory budget. A plain sum, so merged snapshots stay independent of
  /// how connections were sharded across threads.
  std::uint64_t trace_drops = 0;
  /// Violation-annotator tag counts (tag -> occurrences). The transparent
  /// comparator lets the scan's hot fold bump counts by string_view /
  /// interned char* without materializing a temporary key per lookup;
  /// iteration order (and thus JSON output) is plain lexicographic either
  /// way.
  std::map<std::string, std::uint64_t, std::less<>> violation_tags;

  /// Adds @p n occurrences of @p tag without allocating when the key is
  /// already present.
  void add_violation(std::string_view tag, std::uint64_t n) {
    auto it = violation_tags.find(tag);
    if (it == violation_tags.end()) {
      violation_tags.emplace(std::string(tag), n);
    } else {
      it->second += n;
    }
  }

  // Reactor observability (populated by faulted scans: the scan core books
  // one park per stall stretch or retry backoff regardless of which driver
  // — event-loop or sequential — serviced it, so these are sums a merge
  // keeps independent of H2R_THREADS).
  std::uint64_t reactor_parks = 0;         ///< times any site parked
  std::uint64_t reactor_parked_rounds = 0; ///< simulated rounds spent parked
  /// Most sites simultaneously in flight on any one shard. Unlike every
  /// other field this is a property of the run *shape* (thread count, shard
  /// sizes), so merge() takes the max and to_json() never emits it —
  /// snapshots stay byte-identical across H2R_THREADS. to_text() shows it.
  std::uint64_t reactor_peak_in_flight = 0;

  Histogram frame_size;             ///< wire octets per frame, both directions
  Histogram stream_wire_bytes;      ///< wire octets per non-zero stream
  Histogram stall_span_events;      ///< stall->resume distance in trace events
  Histogram compression_ratio_pct;  ///< per-connection Equation-1 ratio x100
  Histogram park_duration_rounds;   ///< simulated rounds per individual park
  Histogram wakeups_per_site;       ///< reactor wakeups each site needed

  void merge(const MetricsRegistry& other);
  [[nodiscard]] std::uint64_t total_frames() const noexcept;
  [[nodiscard]] std::uint64_t total_violations() const noexcept;

  /// JSON snapshot, stable field order, no trailing whitespace.
  [[nodiscard]] std::string to_json() const;
  /// Human-readable snapshot (same content as to_json).
  [[nodiscard]] std::string to_text() const;
};

/// Folds events into a registry as they are recorded, retaining nothing but
/// small per-connection state (per-stream byte tallies, open stall marks,
/// response header-block sizes for the Equation-1 compression ratio). Call
/// finish() — or let the destructor — to flush the final connection.
class MetricsRecorder : public DecodedRecorder {
 public:
  explicit MetricsRecorder(MetricsRegistry& registry) : registry_(&registry) {}
  ~MetricsRecorder() override { finish(); }

  /// Feeds an already-stamped event (replay path used by consume()).
  void replay(const TraceEvent& event) { on_event(event); }

  /// Flushes the current connection into the old registry and retargets
  /// the fold. A long-lived recorder (scan worker scratch) folds each
  /// site's trace straight into that site's destination registry instead
  /// of paying a fold-into-scratch + registry merge per site.
  void rebind(MetricsRegistry& registry) {
    finish();
    registry_ = &registry;
  }

  /// Folds one raw ring record directly — the same fold body as on_event()
  /// instantiated over WireRecord fields, skipping TraceEvent
  /// materialization entirely. Records carry no tags (only the offline
  /// annotator produces those); @p seq is the record's ring sequence,
  /// RingRecorder::first_seq() + index. Defined in the header so the scan's
  /// single-pass fold inlines it into the annotator's sweep.
  void fold_record(std::uint64_t seq, const WireRecord& rec) {
    fold(seq, rec);
  }

  /// Flushes per-connection state into the registry. Idempotent.
  void finish();

 protected:
  void on_event(const TraceEvent& event) override;

 private:
  /// The shared fold body, written against the wire_record.h field
  /// accessors (kind_of, dir_of, ...) so decoded TraceEvents and raw
  /// WireRecords take the same code path.
  template <typename E>
  void fold(std::uint64_t seq, const E& ev) {
    switch (kind_of(ev)) {
      case EventKind::kConnectionStart:
        flush_connection();
        ++registry_->connections;
        return;
      case EventKind::kRoundMark:
        ++registry_->rounds;
        return;
      case EventKind::kParseError:
        ++registry_->parse_errors;
        return;
      case EventKind::kSettingsApplied:
        ++registry_->settings_applied;
        return;
      case EventKind::kHpackInsert:
        registry_->hpack_inserts += a_of(ev);
        return;
      case EventKind::kHpackEvict:
        registry_->hpack_evictions += a_of(ev);
        return;
      case EventKind::kFault:
        ++registry_->faults_injected;
        return;
      case EventKind::kMitigation:
        ++registry_->mitigation_events;
        return;
      case EventKind::kWindowStall: {
        ++registry_->window_stalls;
        for (auto& [stream, open_seq] : open_stalls_) {
          if (stream == stream_of(ev)) {
            open_seq = seq;
            return;
          }
        }
        open_stalls_.emplace_back(stream_of(ev), seq);
        return;
      }
      case EventKind::kWindowResume: {
        for (auto it = open_stalls_.begin(); it != open_stalls_.end(); ++it) {
          if (it->first == stream_of(ev)) {
            registry_->stall_span_events.add(seq - it->second);
            *it = open_stalls_.back();
            open_stalls_.pop_back();
            break;
          }
        }
        return;
      }
      case EventKind::kFrame:
        break;
    }

    auto& slots = dir_of(ev) == Direction::kClientToServer
                      ? registry_->frames_c2s
                      : registry_->frames_s2c;
    ++slots[frame_type_slot(type_of(ev))];
    (dir_of(ev) == Direction::kClientToServer ? registry_->bytes_c2s
                                              : registry_->bytes_s2c) +=
        len_of(ev);
    registry_->frame_size.add(len_of(ev));
    if (stream_of(ev) != 0) {
      bool found = false;
      for (auto& [stream, bytes] : stream_bytes_) {
        if (stream == stream_of(ev)) {
          bytes += len_of(ev);
          found = true;
          break;
        }
      }
      if (!found) stream_bytes_.emplace_back(stream_of(ev), len_of(ev));
    }

    const auto type = static_cast<h2::FrameType>(type_of(ev));
    if (type == h2::FrameType::kRstStream) ++registry_->rst_streams;
    if (type == h2::FrameType::kGoaway) ++registry_->goaways;
    if (type == h2::FrameType::kHeaders &&
        dir_of(ev) == Direction::kServerToClient &&
        len_of(ev) > h2::kFrameHeaderSize) {
      // Response header block size for the paper's Equation-1 ratio. The
      // engine sends responses unpadded and without priority, so the HPACK
      // block is the whole payload.
      response_block_sizes_.push_back(len_of(ev) - h2::kFrameHeaderSize);
    }
    // A stream's wire footprint closes with END_STREAM or RST_STREAM.
    const bool ends_stream =
        ((type == h2::FrameType::kData || type == h2::FrameType::kHeaders) &&
         (flags_of(ev) & h2::flags::kEndStream) != 0) ||
        type == h2::FrameType::kRstStream;
    if (ends_stream && stream_of(ev) != 0) {
      for (auto it = stream_bytes_.begin(); it != stream_bytes_.end(); ++it) {
        if (it->first == stream_of(ev)) {
          registry_->stream_wire_bytes.add(it->second);
          *it = stream_bytes_.back();
          stream_bytes_.pop_back();
          break;
        }
      }
    }
  }

  void flush_connection();

  MetricsRegistry* registry_;
  // Per-connection scratch as flat (stream, value) vectors: a probe
  // connection keeps a handful of live streams, so linear scans beat
  // node-based maps and the fold allocates nothing per frame once warmed
  // up. Order is irrelevant — everything folds into order-independent sums.
  std::vector<std::pair<std::uint32_t, std::uint64_t>> stream_bytes_;
  std::vector<std::pair<std::uint32_t, std::uint64_t>> open_stalls_;
  std::vector<std::uint64_t> response_block_sizes_;
};

/// Replays @p events (e.g. a VectorRecorder's, after annotation) into
/// @p registry.
void consume(MetricsRegistry& registry, const std::vector<TraceEvent>& events);

}  // namespace h2r::trace
