// The H2Wiretap's on-the-wire representation: one fixed-width 32-byte POD
// per trace event.
//
// This is what the hot path writes (RingRecorder appends one WireRecord per
// record() — no strings, no vectors, no heap) and what the offline decoder
// expands back into TraceEvents for the annotator, the JSONL exporter, and
// every existing consumer. Two fields of the TraceEvent shape live outside
// the record: `seq` is implicit (a ring's records are contiguous, so seq =
// first_seq + index) and `note` is interned into the owning recorder's
// string table (`note_ref`; 0 names the empty string). `tags` never existed
// on the hot path at all — only the offline annotator produces them.
//
// The virtual-clock timestamp is stored as the raw bit pattern of the
// `double` (time_bits), so a decode round-trips to the exact value the
// legacy path would have stamped — the JSONL exporter's `%.3f` output is
// byte-identical, not merely close.
#pragma once

#include <bit>
#include <cstdint>
#include <type_traits>

#include "trace/event.h"

namespace h2r::trace {

/// One binary trace record. 32 bytes, trivially copyable, stable layout
/// (serialized field-by-field little-endian by RingRecorder::serialize).
struct WireRecord {
  std::uint64_t time_bits = 0;    ///< std::bit_cast of TraceEvent::time_ms
  std::uint32_t stream_id = 0;
  std::uint32_t wire_length = 0;
  std::uint32_t detail_a = 0;
  std::uint32_t detail_b = 0;
  std::uint32_t note_ref = 0;     ///< string-table index; 0 = empty note
  std::uint8_t dir = 0;           ///< Direction
  std::uint8_t kind = 0;          ///< EventKind
  std::uint8_t frame_type = 0;
  std::uint8_t flags = 0;
};
static_assert(sizeof(WireRecord) == 32, "WireRecord must stay 32 bytes");
static_assert(std::is_trivially_copyable_v<WireRecord>);

/// The arguments a call site hands to Recorder::record(): the TraceEvent
/// fields minus everything the recorder stamps (seq, time) or the annotator
/// owns (tags). `note` is a view — borrowed for the duration of the call,
/// interned or copied by the sink if it retains events.
struct EventArgs {
  Direction dir = Direction::kClientToServer;
  EventKind kind = EventKind::kFrame;
  std::uint32_t stream_id = 0;
  std::uint8_t frame_type = 0;
  std::uint8_t flags = 0;
  std::uint32_t wire_length = 0;
  std::uint32_t detail_a = 0;
  std::uint32_t detail_b = 0;
  std::string_view note{};
};

// Shared field accessors: generic trace consumers (the violation annotator,
// the metrics fold) are written once against these overloads and
// instantiated for both event representations — decoded TraceEvents and raw
// WireRecords — so the hot binary path and the legacy decoded path run the
// same logic by construction.
[[nodiscard]] inline EventKind kind_of(const TraceEvent& ev) noexcept {
  return ev.kind;
}
[[nodiscard]] inline EventKind kind_of(const WireRecord& r) noexcept {
  return static_cast<EventKind>(r.kind);
}
[[nodiscard]] inline Direction dir_of(const TraceEvent& ev) noexcept {
  return ev.dir;
}
[[nodiscard]] inline Direction dir_of(const WireRecord& r) noexcept {
  return static_cast<Direction>(r.dir);
}
[[nodiscard]] inline std::uint8_t type_of(const TraceEvent& ev) noexcept {
  return ev.frame_type;
}
[[nodiscard]] inline std::uint8_t type_of(const WireRecord& r) noexcept {
  return r.frame_type;
}
[[nodiscard]] inline std::uint8_t flags_of(const TraceEvent& ev) noexcept {
  return ev.flags;
}
[[nodiscard]] inline std::uint8_t flags_of(const WireRecord& r) noexcept {
  return r.flags;
}
[[nodiscard]] inline std::uint32_t stream_of(const TraceEvent& ev) noexcept {
  return ev.stream_id;
}
[[nodiscard]] inline std::uint32_t stream_of(const WireRecord& r) noexcept {
  return r.stream_id;
}
[[nodiscard]] inline std::uint32_t len_of(const TraceEvent& ev) noexcept {
  return ev.wire_length;
}
[[nodiscard]] inline std::uint32_t len_of(const WireRecord& r) noexcept {
  return r.wire_length;
}
[[nodiscard]] inline std::uint32_t a_of(const TraceEvent& ev) noexcept {
  return ev.detail_a;
}
[[nodiscard]] inline std::uint32_t a_of(const WireRecord& r) noexcept {
  return r.detail_a;
}
[[nodiscard]] inline std::uint32_t b_of(const TraceEvent& ev) noexcept {
  return ev.detail_b;
}
[[nodiscard]] inline std::uint32_t b_of(const WireRecord& r) noexcept {
  return r.detail_b;
}

/// Expands (seq, record, note) into @p out in place, reusing out's note
/// capacity — the decode loop over a per-site ring is allocation-free once
/// the scratch vector has warmed up. `tags` is cleared, never populated:
/// tags are the offline annotator's to write.
inline void decode_record(std::uint64_t seq, const WireRecord& rec,
                          std::string_view note, TraceEvent& out) {
  out.seq = seq;
  out.time_ms = std::bit_cast<double>(rec.time_bits);
  out.dir = static_cast<Direction>(rec.dir);
  out.kind = static_cast<EventKind>(rec.kind);
  out.stream_id = rec.stream_id;
  out.frame_type = rec.frame_type;
  out.flags = rec.flags;
  out.wire_length = rec.wire_length;
  out.detail_a = rec.detail_a;
  out.detail_b = rec.detail_b;
  if (note.empty()) {
    out.note.clear();  // empty views may carry a null data()
  } else {
    out.note.assign(note.data(), note.size());
  }
  out.tags.clear();
}

}  // namespace h2r::trace
