// H2Wiretap event model: one record per observable wire or protocol event.
//
// The trace layer sits *under* the probe stack: ClientConnection and
// Http2Server report every frame they put on the wire (each endpoint records
// its own sends, so one shared Recorder sees the full duplex conversation in
// order, without double counting) plus the protocol-level events the paper's
// analysis cares about — SETTINGS taking effect, flow-control stalls, HPACK
// dynamic-table churn, parse errors. Events carry a logical timestamp from
// net::VirtualClock when one is attached; with no clock, `seq` alone orders
// the trace (everything here is single-connection deterministic anyway).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "h2/constants.h"
#include "h2/frame.h"

namespace h2r::trace {

/// Who put the bytes on the wire.
enum class Direction : std::uint8_t {
  kClientToServer = 0,
  kServerToClient = 1,
};

enum class EventKind : std::uint8_t {
  kConnectionStart,  ///< a new connection began; `note` labels it
  kRoundMark,        ///< one lockstep exchange round completed (detail_a = #)
  kFrame,            ///< a frame hit the wire (frame_type/flags/wire_length)
  kParseError,       ///< inbound bytes poisoned the parser; `note` = reason,
                     ///< a = offending frame's stream offset, b = 1 when
                     ///< frame_type names the offending frame

  kSettingsApplied,  ///< receiver applied one SETTINGS entry (a = id, b = value)
  kWindowStall,      ///< a response stream became flow-control blocked
  kWindowResume,     ///< a previously stalled stream can progress again
  kHpackInsert,      ///< dynamic-table insertions while coding a block (a = n)
  kHpackEvict,       ///< dynamic-table evictions while coding a block (a = n)
  kFault,            ///< transport injected a delivery fault (`note` = kind,
                     ///< a = octet offset, b = per-kind detail)
  kMitigation,       ///< server mitigation escalation step (a = level,
                     ///< b = suspected attack class, `note` = class name)
};

std::string_view to_string(Direction d) noexcept;
std::string_view to_string(EventKind k) noexcept;

/// One trace record. `detail_a`/`detail_b` are per-kind scalars (documented
/// at frame_event() for frames and at EventKind above for protocol events);
/// `note` carries free text (GOAWAY cause, parse-error message, connection
/// label) and `tags` is filled by the violation annotator after the fact.
struct TraceEvent {
  std::uint64_t seq = 0;     ///< stamped by the Recorder, 0-based
  double time_ms = 0.0;      ///< virtual clock, 0 when no clock is attached
  Direction dir = Direction::kClientToServer;
  EventKind kind = EventKind::kFrame;
  std::uint32_t stream_id = 0;
  std::uint8_t frame_type = 0;  ///< raw type octet; meaningful for kFrame only
  std::uint8_t flags = 0;
  std::uint32_t wire_length = 0;  ///< octets on the wire incl. 9-octet header
  std::uint32_t detail_a = 0;
  std::uint32_t detail_b = 0;
  std::string note;
  std::vector<std::string> tags;
};

/// Bit set in detail_b of HEADERS/PRIORITY frame events when the priority
/// triple had the exclusive flag; kPriorityPresentBit marks HEADERS that
/// carried a priority block at all.
inline constexpr std::uint32_t kExclusiveBit = 0x100;
inline constexpr std::uint32_t kPriorityPresentBit = 0x200;

/// Builds the kFrame event for @p frame as serialized (@p wire_length octets
/// including the frame header). Per-type details:
///   DATA           a = payload octets
///   HEADERS        a = dependency, b = priority bits | weight octet
///   PRIORITY       a = dependency, b = exclusive bit | weight octet
///   RST_STREAM     a = error code, note = code name
///   SETTINGS       a = entry count
///   PUSH_PROMISE   a = promised stream id
///   GOAWAY         a = error code, b = last stream id, note = name[:debug]
///   WINDOW_UPDATE  a = increment
///   unknown        a = raw type octet
TraceEvent frame_event(Direction dir, const h2::Frame& frame,
                       std::size_t wire_length);

/// JSONL exporters: one event per line, fixed key order
/// (site?, seq, t, dir, kind, stream, type, flags, len, a, b, note, tags) —
/// byte-identical output for identical event sequences. @p site, when
/// non-empty, is prepended to every line so multi-site dumps stay queryable.
void append_jsonl(std::string& out, const TraceEvent& event,
                  std::string_view site = {});
[[nodiscard]] std::string to_jsonl(const std::vector<TraceEvent>& events,
                                   std::string_view site = {});

}  // namespace h2r::trace
