// Real-time slow-HTTP/2 attack detection over the H2Wiretap event stream.
//
// "Delays have Dangerous Ends" (PAPERS.md) detects slow-rate HTTP/2 attacks
// by sequence analysis of the event stream rather than by volumetric
// thresholds; the H2Wiretap already emits exactly the events its rules need
// (frames with per-type details, SETTINGS application, round marks). The
// SequenceDetector is a Recorder, so it can be attached *live* as a probe
// or attack runs (the h2olog model: always-on, cheap enough for full
// scans — per-event work is a handful of counter bumps), or replayed over
// a retained VectorRecorder trace; both paths produce identical reports.
//
// Detection is per connection segment (kConnectionStart delimits) and each
// attack class fires at most once per connection, recording time-to-detect
// both in events (trace records seen since the connection began) and in
// lockstep rounds. The default thresholds sit well above everything the
// benign probe battery emits, which tests/detector_test.cc pins by scanning
// a seeded FaultyTransport population and asserting zero detections.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "trace/event.h"
#include "trace/metrics.h"
#include "trace/recorder.h"

namespace h2r::trace {

/// The §VI / "Delays have Dangerous Ends" attack taxonomy. Lives in trace
/// (not attack/) so the server's MitigationPolicy and the detector share one
/// vocabulary without either linking the attack client.
enum class AttackClass : std::uint8_t {
  kNone = 0,
  kSlowRead,       ///< tiny stream windows + withheld WINDOW_UPDATEs
  kSlowPost,       ///< open upload streams dribbling tiny DATA frames
  kRapidReset,     ///< request + immediate RST_STREAM churn
  kControlFlood,   ///< non-ACK PING / SETTINGS flood
  kPriorityChurn,  ///< PRIORITY tree rebuild flood
};
inline constexpr std::size_t kAttackClassCount = 6;

std::string_view to_string(AttackClass cls) noexcept;

/// Rule thresholds. Defaults are calibrated against the benign probe
/// battery (see header comment): every counter a normal scan connection
/// reaches stays at least 4x below its threshold.
struct DetectorThresholds {
  /// Client INITIAL_WINDOW_SIZE below this is "tiny" (the data_frame_control
  /// probe announces 1 on a single stream; slow-read needs many streams).
  std::uint32_t tiny_window = 1024;
  /// Slow-read: >= this many concurrent tiny-window request streams ...
  std::uint32_t slow_read_min_streams = 8;
  /// ... held open for this many rounds with zero stream WINDOW_UPDATEs.
  std::uint32_t slow_read_min_rounds = 12;
  /// Slow-POST: a single upload stream dribbling >= this many DATA frames...
  std::uint32_t slow_post_min_frames = 16;
  /// ... no larger than this, spanning >= slow_post_min_rounds rounds.
  std::uint32_t slow_post_max_chunk = 256;
  std::uint32_t slow_post_min_rounds = 12;
  /// Rapid reset: client RST_STREAM count (priority probes cancel ~1).
  std::uint32_t rapid_reset_min = 64;
  /// Control flood: non-ACK PING + non-ACK SETTINGS count (every connection
  /// sends one preface SETTINGS; ping probes send tens).
  std::uint32_t control_flood_min = 128;
  /// Priority churn: client PRIORITY frame count (Algorithm 1 sends ~5).
  std::uint32_t priority_churn_min = 128;
};

/// One detection: class plus time-to-detect from the connection's start.
struct Detection {
  AttackClass cls = AttackClass::kNone;
  std::uint64_t events_to_detect = 0;  ///< trace events into the connection
  std::uint32_t rounds_to_detect = 0;  ///< lockstep rounds into the connection
};

/// Mergeable detection aggregate. Every field is a sum or a bucket-wise sum,
/// so merging per-worker reports is independent of how connections were
/// sharded across H2R_THREADS — same guarantee as MetricsRegistry.
struct DetectorReport {
  std::uint64_t connections = 0;
  /// Connections flagged per class (index = AttackClass; slot 0 unused).
  std::array<std::uint64_t, kAttackClassCount> flagged{};
  std::array<Histogram, kAttackClassCount> events_to_detect;
  std::array<Histogram, kAttackClassCount> rounds_to_detect;

  void merge(const DetectorReport& other);
  [[nodiscard]] std::uint64_t total_detections() const noexcept;
  [[nodiscard]] std::uint64_t detections(AttackClass cls) const noexcept {
    return flagged[static_cast<std::size_t>(cls)];
  }
  /// Mean time-to-detect in events / rounds for @p cls (0 when never fired).
  [[nodiscard]] double mean_events_to_detect(AttackClass cls) const noexcept {
    return events_to_detect[static_cast<std::size_t>(cls)].mean();
  }
  [[nodiscard]] double mean_rounds_to_detect(AttackClass cls) const noexcept {
    return rounds_to_detect[static_cast<std::size_t>(cls)].mean();
  }
  /// JSON snapshot, stable field order, byte-identical for equal reports.
  [[nodiscard]] std::string to_json() const;
};

/// Live sequence detector. Attach as the Recorder on a Target / client /
/// server (cheap path, nothing retained), or replay a retained trace with
/// observe_all(). Call finish() to fold the final connection before reading
/// report().
class SequenceDetector : public DecodedRecorder {
 public:
  explicit SequenceDetector(DetectorThresholds thresholds = {})
      : thresholds_(thresholds) {}
  ~SequenceDetector() override { finish(); }

  /// Feeds one already-stamped event (replay path).
  void observe(const TraceEvent& event);
  void observe_all(const std::vector<TraceEvent>& events) {
    for (const auto& ev : events) observe(ev);
  }

  /// Folds the open connection into the report. Idempotent.
  void finish();

  [[nodiscard]] const DetectorReport& report() const noexcept {
    return report_;
  }
  /// Detections for the connection currently being observed (live view —
  /// what an inline defense would act on before the connection ends).
  [[nodiscard]] const std::vector<Detection>& live_detections()
      const noexcept {
    return live_;
  }

 protected:
  void on_event(const TraceEvent& event) override { observe(event); }

 private:
  struct UploadState {
    std::uint32_t first_round = 0;
    std::uint32_t last_round = 0;
    std::uint32_t dribble_frames = 0;  ///< DATA frames <= slow_post_max_chunk
    bool oversized = false;            ///< saw a chunk above the dribble cap
  };

  void evaluate_rules();
  void flag(AttackClass cls);
  void fold_connection();

  DetectorThresholds thresholds_;
  DetectorReport report_;
  std::vector<Detection> live_;

  // Per-connection state, reset at every kConnectionStart.
  bool saw_connection_ = false;
  std::uint64_t conn_events_ = 0;
  std::uint32_t rounds_ = 0;
  std::uint64_t client_iws_ = 65535;
  std::uint32_t request_streams_ = 0;       ///< c2s HEADERS (new streams)
  std::uint32_t first_request_round_ = 0;
  bool any_request_ = false;
  std::uint32_t stream_window_updates_ = 0;  ///< c2s, stream-scoped
  std::uint32_t client_resets_ = 0;
  std::uint32_t control_frames_ = 0;         ///< non-ACK PING + SETTINGS
  std::uint32_t priority_frames_ = 0;
  std::map<std::uint32_t, UploadState> uploads_;
  std::array<bool, kAttackClassCount> fired_{};
};

}  // namespace h2r::trace
