// H2Wiretap violation annotator.
//
// Post-processes a recorded trace and tags events where the server's
// observable behaviour deviates from RFC 7540 — exactly the quirk axes of
// the paper's Table III. The annotator works purely on the event stream
// (per connection segment, delimited by kConnectionStart), so a server's
// deviation column can be *derived from traces* instead of being read back
// from bespoke probe counters; core::derive_table3_quirks() does that
// mapping.
//
// Reaction-style tags follow one scheme: `<axis>-ignored`, `<axis>-goaway`,
// `<axis>-goaway-debug` — the RFC-prescribed reaction (RST_STREAM for
// stream-scoped errors, plain GOAWAY for connection-scoped ones) is never
// tagged. The `-goaway-debug` variants mark GOAWAYs carrying debug data,
// which the paper counts separately (§V-D).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "trace/event.h"
#include "trace/recorder.h"

namespace h2r::trace {

namespace tags {

// §6.9 WINDOW_UPDATE with a zero increment (RFC: stream error / conn error).
inline constexpr const char* kZeroWuStreamIgnored =
    "zero-window-update-stream-ignored";
inline constexpr const char* kZeroWuStreamGoaway =
    "zero-window-update-stream-goaway";
inline constexpr const char* kZeroWuStreamGoawayDebug =
    "zero-window-update-stream-goaway-debug";
inline constexpr const char* kZeroWuConnIgnored =
    "zero-window-update-connection-ignored";
inline constexpr const char* kZeroWuConnGoawayDebug =
    "zero-window-update-connection-goaway-debug";

// §6.9.1 window overflow past 2^31-1 (RFC: RST_STREAM / GOAWAY).
inline constexpr const char* kLargeWuStreamIgnored =
    "large-window-update-stream-ignored";
inline constexpr const char* kLargeWuStreamGoaway =
    "large-window-update-stream-goaway";
inline constexpr const char* kLargeWuStreamGoawayDebug =
    "large-window-update-stream-goaway-debug";
inline constexpr const char* kLargeWuConnIgnored =
    "large-window-update-connection-ignored";
inline constexpr const char* kLargeWuConnGoawayDebug =
    "large-window-update-connection-goaway-debug";

// §5.3.1 self-dependent stream (RFC: stream error PROTOCOL_ERROR).
inline constexpr const char* kSelfDependencyIgnored = "self-dependency-ignored";
inline constexpr const char* kSelfDependencyGoaway = "self-dependency-goaway";
inline constexpr const char* kSelfDependencyGoawayDebug =
    "self-dependency-goaway-debug";

// §6.9/§4.2: flow control governs DATA only; a request that gets neither
// HEADERS nor an error under INITIAL_WINDOW_SIZE = 0 reveals flow control
// misapplied to HEADERS (the LiteSpeed deviation).
inline constexpr const char* kFlowControlOnHeaders = "flow-control-on-headers";

// §V-D1 small-window deviations: a zero-length END_STREAM DATA frame in
// place of window-respecting chunks; or a response that never starts.
inline constexpr const char* kZeroLengthDataUnderTinyWindow =
    "zero-length-data-under-tiny-window";
inline constexpr const char* kStalledUnderTinyWindow =
    "stalled-under-tiny-window";

// §6.9: DATA beyond the advertised stream / connection budget.
inline constexpr const char* kDataExceedsStreamWindow =
    "data-exceeds-stream-window";
inline constexpr const char* kDataExceedsConnWindow =
    "data-exceeds-connection-window";

// §5.3 scheduling: DATA on a stream while a declared ancestor is requested,
// unfinished and unreset (round-robin servers fail Algorithm 1 this way).
inline constexpr const char* kPriorityInversion = "priority-inversion";

// RFC 7541: >= 2 response header blocks with zero dynamic-table insertions
// (the "support*" compression column — ratio pinned at 1).
inline constexpr const char* kHpackNoDynamicIndexing =
    "hpack-no-dynamic-indexing";

// Mitigation annotation class: server::MitigationPolicy reactions, carried
// on ENHANCE_YOUR_CALM-coded frames and kMitigation escalation events. The
// quirk passes above skip these frames entirely so a mitigation-enabled
// profile derives the same Table III row as its unmitigated twin.
inline constexpr const char* kMitigationThrottle = "mitigation-throttle";
inline constexpr const char* kMitigationRst = "mitigation-rst";
inline constexpr const char* kMitigationGoaway = "mitigation-goaway";
inline constexpr const char* kMitigationRelease = "mitigation-release";

}  // namespace tags

/// Scans @p events connection by connection, appends violation tags to the
/// offending events in place, and returns the sorted, de-duplicated set of
/// tags found anywhere in the trace.
std::vector<std::string> annotate_violations(std::vector<TraceEvent>& events);

/// Tag-occurrence counts keyed by the interned tag constants above. Keyed
/// by pointer identity (the annotator only ever emits tags::k* constants),
/// so the hot scan path counts violations with zero string traffic.
using TagCounts = std::vector<std::pair<const char*, std::uint64_t>>;

class MetricsRecorder;  // metrics.h

/// Annotates straight off a ring's raw WireRecords — the always-on scan
/// path. Identical pass logic to annotate_violations() (one shared template
/// body), but instead of materializing TraceEvents it accumulates tag
/// occurrence counts into @p counts (appended, not cleared). When @p fold
/// is non-null every record is additionally folded into it in trace order
/// during the segmentation sweep (MetricsRecorder::fold_record, with the
/// record's exact ring sequence) — the wiretap metrics ride the same walk,
/// so the whole trace is consumed in a single pass over the 32-byte
/// records.
void annotate_ring(const RingRecorder& ring, TagCounts& counts,
                   MetricsRecorder* fold = nullptr);

}  // namespace h2r::trace
