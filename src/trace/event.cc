#include "trace/event.h"

#include <cstdio>

namespace h2r::trace {
namespace {

using h2::FrameType;

void put_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

std::string_view to_string(Direction d) noexcept {
  return d == Direction::kClientToServer ? "c2s" : "s2c";
}

std::string_view to_string(EventKind k) noexcept {
  switch (k) {
    case EventKind::kConnectionStart:
      return "conn-start";
    case EventKind::kRoundMark:
      return "round";
    case EventKind::kFrame:
      return "frame";
    case EventKind::kParseError:
      return "parse-error";
    case EventKind::kSettingsApplied:
      return "settings-applied";
    case EventKind::kWindowStall:
      return "window-stall";
    case EventKind::kWindowResume:
      return "window-resume";
    case EventKind::kHpackInsert:
      return "hpack-insert";
    case EventKind::kHpackEvict:
      return "hpack-evict";
    case EventKind::kFault:
      return "fault";
    case EventKind::kMitigation:
      return "mitigation";
  }
  return "?";
}

TraceEvent frame_event(Direction dir, const h2::Frame& frame,
                       std::size_t wire_length) {
  TraceEvent ev;
  ev.dir = dir;
  ev.kind = EventKind::kFrame;
  ev.stream_id = frame.stream_id;
  ev.flags = frame.flags;
  ev.wire_length = static_cast<std::uint32_t>(wire_length);

  const FrameType type = frame.type();
  ev.frame_type = frame.is<h2::UnknownPayload>()
                      ? frame.as<h2::UnknownPayload>().type
                      : static_cast<std::uint8_t>(type);
  switch (type) {
    case FrameType::kData:
      ev.detail_a =
          static_cast<std::uint32_t>(frame.as<h2::DataPayload>().data.size());
      break;
    case FrameType::kHeaders: {
      const auto& p = frame.as<h2::HeadersPayload>();
      if (p.priority) {
        ev.detail_a = p.priority->dependency;
        ev.detail_b = kPriorityPresentBit | p.priority->weight_field |
                      (p.priority->exclusive ? kExclusiveBit : 0);
      }
      break;
    }
    case FrameType::kPriority: {
      const auto& info = frame.as<h2::PriorityPayload>().info;
      ev.detail_a = info.dependency;
      ev.detail_b = info.weight_field | (info.exclusive ? kExclusiveBit : 0);
      break;
    }
    case FrameType::kRstStream: {
      const auto code = frame.as<h2::RstStreamPayload>().error;
      ev.detail_a = static_cast<std::uint32_t>(code);
      ev.note = std::string(h2::to_string(code));
      break;
    }
    case FrameType::kSettings:
      ev.detail_a = static_cast<std::uint32_t>(
          frame.as<h2::SettingsPayload>().entries.size());
      break;
    case FrameType::kPushPromise:
      ev.detail_a = frame.as<h2::PushPromisePayload>().promised_stream_id;
      break;
    case FrameType::kGoaway: {
      const auto& p = frame.as<h2::GoawayPayload>();
      ev.detail_a = static_cast<std::uint32_t>(p.error);
      ev.detail_b = p.last_stream_id;
      ev.note = std::string(h2::to_string(p.error));
      if (!p.debug_data.empty()) {
        ev.note += ':';
        ev.note.append(p.debug_data.begin(), p.debug_data.end());
      }
      break;
    }
    case FrameType::kWindowUpdate:
      ev.detail_a = frame.as<h2::WindowUpdatePayload>().increment;
      break;
    default:
      if (frame.is<h2::UnknownPayload>()) {
        ev.detail_a = frame.as<h2::UnknownPayload>().type;
      }
      break;
  }
  return ev;
}

void append_jsonl(std::string& out, const TraceEvent& ev,
                  std::string_view site) {
  char buf[160];
  out += '{';
  if (!site.empty()) {
    out += "\"site\":\"";
    put_escaped(out, site);
    out += "\",";
  }
  std::snprintf(buf, sizeof buf, "\"seq\":%llu,\"t\":%.3f,",
                static_cast<unsigned long long>(ev.seq), ev.time_ms);
  out += buf;
  out += "\"dir\":\"";
  out += to_string(ev.dir);
  out += "\",\"kind\":\"";
  out += to_string(ev.kind);
  out += "\",";
  // kParseError events name the offending frame type too (detail_b = 1
  // marks the type octet as meaningful — see ClientConnection::receive).
  const bool has_type =
      ev.kind == EventKind::kFrame ||
      (ev.kind == EventKind::kParseError && ev.detail_b != 0);
  const std::string_view type_name =
      has_type ? h2::to_string(static_cast<h2::FrameType>(ev.frame_type))
               : std::string_view{};
  std::snprintf(buf, sizeof buf, "\"stream\":%u,\"type\":\"", ev.stream_id);
  out += buf;
  put_escaped(out, type_name);
  std::snprintf(buf, sizeof buf,
                "\",\"flags\":%u,\"len\":%u,\"a\":%u,\"b\":%u,\"note\":\"",
                ev.flags, ev.wire_length, ev.detail_a, ev.detail_b);
  out += buf;
  put_escaped(out, ev.note);
  out += "\",\"tags\":[";
  for (std::size_t i = 0; i < ev.tags.size(); ++i) {
    if (i > 0) out += ',';
    out += '"';
    put_escaped(out, ev.tags[i]);
    out += '"';
  }
  out += "]}\n";
}

std::string to_jsonl(const std::vector<TraceEvent>& events,
                     std::string_view site) {
  std::string out;
  out.reserve(events.size() * 96);
  for (const auto& ev : events) append_jsonl(out, ev, site);
  return out;
}

}  // namespace h2r::trace
