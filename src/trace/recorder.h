// H2Wiretap sinks.
//
// A `Recorder*` threads through ClientOptions / Http2Server / Target; null
// means tracing is off and every hook reduces to one pointer test (the
// "null sink" — measured by bench_scan_throughput's exchange_untraced /
// exchange_traced rows). The base class stamps sequence numbers (and the
// virtual-clock time when a clock is attached) so sinks see a totally
// ordered stream; concrete sinks either retain events (VectorRecorder, for
// JSONL dumps and the violation annotator) or fold them straight into a
// MetricsRegistry without retention (MetricsRecorder, in metrics.h).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "net/clock.h"
#include "trace/event.h"

namespace h2r::trace {

class Recorder {
 public:
  virtual ~Recorder() = default;

  /// Stamps seq/time and forwards to the sink. Not reentrant.
  void record(TraceEvent event) {
    event.seq = next_seq_++;
    if (clock_ != nullptr) event.time_ms = clock_->now_ms();
    on_event(event);
  }

  /// Marks the start of a new connection; @p label (host, probe name, ...)
  /// lands in the event's note. Segmentation boundaries for the annotator
  /// and for per-connection metrics.
  void begin_connection(std::string_view label) {
    TraceEvent ev;
    ev.kind = EventKind::kConnectionStart;
    ev.note = label;
    record(std::move(ev));
  }

  /// Attaches a virtual clock; events record now_ms() from then on.
  void set_clock(const net::VirtualClock* clock) noexcept { clock_ = clock; }

  [[nodiscard]] std::uint64_t events_recorded() const noexcept {
    return next_seq_;
  }

 protected:
  virtual void on_event(const TraceEvent& event) = 0;

  /// Restarts event numbering from zero — for sinks that drop their
  /// retained events and start a logically new trace (VectorRecorder::
  /// clear), so a reused sink's output matches a freshly constructed one.
  void restart_sequence() noexcept { next_seq_ = 0; }

 private:
  std::uint64_t next_seq_ = 0;
  const net::VirtualClock* clock_ = nullptr;
};

/// Null-safe connection marker, for call sites holding a maybe-null sink.
inline void begin(Recorder* recorder, std::string_view label) {
  if (recorder != nullptr) recorder->begin_connection(label);
}

/// Retains every event in order — the trace proper.
class VectorRecorder : public Recorder {
 public:
  [[nodiscard]] const std::vector<TraceEvent>& events() const noexcept {
    return events_;
  }
  /// Mutable access for the violation annotator (tags are written in place).
  [[nodiscard]] std::vector<TraceEvent>& events() noexcept { return events_; }

  /// Drops every retained event and restarts numbering: the scan's
  /// per-worker scratch reuses one recorder across sites, and a cleared
  /// recorder's trace is indistinguishable from a fresh one's.
  void clear() noexcept {
    events_.clear();
    restart_sequence();
  }

 protected:
  void on_event(const TraceEvent& event) override { events_.push_back(event); }

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace h2r::trace
