// H2Wiretap sinks.
//
// A `Recorder*` threads through ClientOptions / Http2Server / Target; null
// means tracing is off and every hook reduces to one pointer test (the
// "null sink" — measured by bench_scan_throughput's exchange_untraced /
// exchange_traced rows). The base class encodes each record() into a
// fixed-width binary WireRecord and stamps sequence numbers (and the
// virtual-clock time when a clock is attached) so sinks see a totally
// ordered stream. Concrete sinks split two ways:
//
//   RingRecorder     retains WireRecords (bounded ring or unbounded tape)
//                    plus an interned note table — the hot-path sink; the
//                    offline decoder expands it back into TraceEvents.
//   DecodedRecorder  adapter for live consumers (MetricsRecorder in
//                    metrics.h, SequenceDetector in detector.h,
//                    VectorRecorder below): decodes each record into one
//                    reusable scratch TraceEvent and forwards it to the
//                    classic on_event(const TraceEvent&) hook.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "h2/frame.h"
#include "h2/frame_view.h"
#include "net/clock.h"
#include "trace/event.h"
#include "trace/wire_record.h"

namespace h2r::trace {

/// Interned note storage: ref 0 is always the empty string; equal strings
/// share one ref. Lookup is an open-addressed probe over precomputed
/// hashes — no allocation unless a genuinely new note appears (notes come
/// from small fixed vocabularies: error-code names, fault kinds,
/// connection labels).
class StringTable {
 public:
  StringTable() { clear(); }

  /// Returns the ref for @p s, interning it on first sight.
  std::uint32_t intern(std::string_view s);
  [[nodiscard]] std::string_view at(std::uint32_t ref) const noexcept {
    return ref < live_ ? std::string_view(strings_[ref]) : std::string_view{};
  }
  [[nodiscard]] std::size_t size() const noexcept { return live_; }

  /// Back to just the empty string. Keeps allocated capacity — including
  /// the retired entries' string buffers, which intern() overwrites in
  /// place, so a recorder reused across connections stops allocating once
  /// its note vocabulary has been seen.
  void clear();

 private:
  void rehash(std::size_t buckets);

  std::vector<std::string> strings_;   // strings_[0..live_) live; rest retired
  std::size_t live_ = 0;               // interned entry count (>= 1: ref 0 = "")
  std::vector<std::uint64_t> hashes_;  // hashes_[i] = hash(strings_[i])
  std::vector<std::uint32_t> slots_;   // open addressing; ref+1, 0 = empty
};

class Recorder {
 public:
  virtual ~Recorder() = default;

  /// Encodes @p args into a WireRecord, stamps seq/time, and forwards to
  /// the sink. Not reentrant. `args.note` is borrowed only for the call.
  void record(const EventArgs& args) {
    WireRecord rec;
    if (clock_ != nullptr) {
      rec.time_bits = std::bit_cast<std::uint64_t>(clock_->now_ms());
    }
    rec.stream_id = args.stream_id;
    rec.wire_length = args.wire_length;
    rec.detail_a = args.detail_a;
    rec.detail_b = args.detail_b;
    rec.dir = static_cast<std::uint8_t>(args.dir);
    rec.kind = static_cast<std::uint8_t>(args.kind);
    rec.frame_type = args.frame_type;
    rec.flags = args.flags;
    on_record(next_seq_++, rec, args.note);
  }

  /// Records the kFrame event for @p frame as serialized (@p wire_length
  /// octets including the frame header). Same per-type details as
  /// frame_event() — see event.h — without constructing a TraceEvent.
  void record_frame(Direction dir, const h2::Frame& frame,
                    std::size_t wire_length);
  /// Same, straight off a parsed FrameView — no materialize() copy. The
  /// record is identical to record_frame(dir, materialize(view), ...).
  void record_frame(Direction dir, const h2::FrameView& view,
                    std::size_t wire_length);

  /// Marks the start of a new connection; @p label (host, probe name, ...)
  /// lands in the event's note. Segmentation boundaries for the annotator
  /// and for per-connection metrics.
  void begin_connection(std::string_view label) {
    record({.kind = EventKind::kConnectionStart, .note = label});
  }

  /// Re-records an already-encoded record: stamps a fresh seq but keeps
  /// the record's own timestamp. This is the tape-flush path — a per-
  /// connection ring replays into the process-wide sink, and flush order
  /// becomes the total order.
  void replay_record(const WireRecord& rec, std::string_view note) {
    on_record(next_seq_++, rec, note);
  }

  /// Attaches a virtual clock; events record now_ms() from then on.
  void set_clock(const net::VirtualClock* clock) noexcept { clock_ = clock; }

  [[nodiscard]] std::uint64_t events_recorded() const noexcept {
    return next_seq_;
  }

 protected:
  /// The sink hook: @p note aliases caller storage (or this recorder's
  /// GOAWAY scratch) and is only valid for the duration of the call.
  virtual void on_record(std::uint64_t seq, const WireRecord& rec,
                         std::string_view note) = 0;

  /// Restarts event numbering from zero — for sinks that drop their
  /// retained events and start a logically new trace (RingRecorder::clear,
  /// VectorRecorder::clear), so a reused sink's output matches a freshly
  /// constructed one's.
  void restart_sequence() noexcept { next_seq_ = 0; }

 private:
  std::uint64_t next_seq_ = 0;
  const net::VirtualClock* clock_ = nullptr;
  std::string note_scratch_;  ///< GOAWAY "name:debug" assembly, reused
};

/// Null-safe connection marker, for call sites holding a maybe-null sink.
inline void begin(Recorder* recorder, std::string_view label) {
  if (recorder != nullptr) recorder->begin_connection(label);
}

/// Retains WireRecords — the hot-path sink. With capacity 0 (the default)
/// it is an unbounded tape preserving every record, the retaining mode the
/// scan's per-site scratch uses. With a nonzero capacity it is a bounded
/// ring: the newest `capacity` records are kept, older ones are evicted
/// oldest-first and counted in drops() — the always-on serving mode, where
/// a trace must never grow with connection lifetime.
class RingRecorder : public Recorder {
 public:
  explicit RingRecorder(std::size_t capacity = 0) : capacity_(capacity) {}

  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }
  [[nodiscard]] bool empty() const noexcept { return records_.empty(); }
  /// Records evicted by the bounded ring since the last clear().
  [[nodiscard]] std::uint64_t drops() const noexcept { return dropped_; }
  /// Sequence number of the oldest retained record (0 until a drop).
  [[nodiscard]] std::uint64_t first_seq() const noexcept { return dropped_; }
  /// i-th oldest retained record / its note.
  [[nodiscard]] const WireRecord& at(std::size_t i) const noexcept {
    return records_[index(i)];
  }
  [[nodiscard]] std::string_view note_at(std::size_t i) const noexcept {
    return notes_.at(records_[index(i)].note_ref);
  }

  /// Expands the retained records into TraceEvents (seq = first_seq() + i,
  /// exact time round-trip, empty tags). Overwrites @p out in place,
  /// reusing element capacity — allocation-free once warmed up.
  void decode_into(std::vector<TraceEvent>& out) const;
  [[nodiscard]] std::vector<TraceEvent> decode() const {
    std::vector<TraceEvent> out;
    decode_into(out);
    return out;
  }

  /// Replays every retained record into @p sink in order, preserving
  /// timestamps; @p sink stamps fresh sequence numbers.
  void replay_into(Recorder& sink) const {
    for (std::size_t i = 0; i < records_.size(); ++i) {
      sink.replay_record(at(i), note_at(i));
    }
  }

  /// Appends the binary dump format (see serialize() in recorder.cc for
  /// the layout) to @p out.
  void serialize(std::string& out) const;

  /// Drops every retained record, the note table, and the drop counter,
  /// and restarts numbering: a cleared ring's trace is indistinguishable
  /// from a fresh one's. Keeps allocated capacity.
  void clear() noexcept {
    records_.clear();
    head_ = 0;
    dropped_ = 0;
    notes_.clear();
    restart_sequence();
  }

 protected:
  void on_record(std::uint64_t seq, const WireRecord& rec,
                 std::string_view note) override {
    (void)seq;
    WireRecord stored = rec;
    stored.note_ref = note.empty() ? 0 : notes_.intern(note);
    if (capacity_ == 0 || records_.size() < capacity_) {
      records_.push_back(stored);
    } else {
      records_[head_] = stored;
      head_ = head_ + 1 == capacity_ ? 0 : head_ + 1;
      ++dropped_;
    }
  }

 private:
  [[nodiscard]] std::size_t index(std::size_t i) const noexcept {
    const std::size_t j = head_ + i;
    return j >= records_.size() ? j - records_.size() : j;
  }

  std::vector<WireRecord> records_;
  std::size_t head_ = 0;  ///< index of the oldest record once wrapped
  std::size_t capacity_;  ///< 0 = unbounded
  std::uint64_t dropped_ = 0;
  StringTable notes_;
};

/// Parses a binary dump produced by RingRecorder::serialize() back into
/// TraceEvents. Strict: bad magic/version, truncation, trailing garbage,
/// or an out-of-range note ref fail the parse. @p drops receives the
/// dump's recorded eviction count.
[[nodiscard]] bool parse_trace_bin(std::string_view bytes,
                                   std::vector<TraceEvent>& out,
                                   std::uint64_t& drops, std::string& error);

/// Adapter for live consumers: decodes each record into one reusable
/// scratch TraceEvent and forwards it to on_event() — the classic hook,
/// unchanged since the JSONL-first recorder, so MetricsRecorder and
/// SequenceDetector logic runs identically live and on replayed traces.
class DecodedRecorder : public Recorder {
 protected:
  void on_record(std::uint64_t seq, const WireRecord& rec,
                 std::string_view note) final {
    decode_record(seq, rec, note, scratch_);
    on_event(scratch_);
  }

  virtual void on_event(const TraceEvent& event) = 0;

 private:
  TraceEvent scratch_;
};

/// Retains every event in decoded form — the test-facing tape. Prefer
/// RingRecorder on hot paths; this adapter exists for tests and offline
/// flows that want to poke TraceEvents directly (the violation annotator
/// writes tags in place).
class VectorRecorder : public DecodedRecorder {
 public:
  [[nodiscard]] const std::vector<TraceEvent>& events() const noexcept {
    return events_;
  }
  /// Mutable access for the violation annotator (tags are written in place).
  [[nodiscard]] std::vector<TraceEvent>& events() noexcept { return events_; }

  /// Drops every retained event and restarts numbering: a cleared
  /// recorder's trace is indistinguishable from a fresh one's.
  void clear() noexcept {
    events_.clear();
    restart_sequence();
  }

 protected:
  void on_event(const TraceEvent& event) override { events_.push_back(event); }

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace h2r::trace
