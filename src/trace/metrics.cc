#include "trace/metrics.h"

#include <bit>
#include <cmath>
#include <cstdio>

#include "h2/constants.h"

namespace h2r::trace {
namespace {

using h2::FrameType;

/// Fixed display order for the per-type counters (wire order 0x0..0x9).
constexpr const char* kTypeNames[kFrameTypeSlots] = {
    "DATA",     "HEADERS", "PRIORITY", "RST_STREAM",    "SETTINGS",
    "PUSH_PROMISE", "PING",    "GOAWAY",   "WINDOW_UPDATE", "CONTINUATION",
    "UNKNOWN"};

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

void append_frames_object(
    std::string& out, const std::array<std::uint64_t, kFrameTypeSlots>& slots) {
  out += '{';
  for (std::size_t i = 0; i < kFrameTypeSlots; ++i) {
    if (i > 0) out += ',';
    out += '"';
    out += kTypeNames[i];
    out += "\":";
    append_u64(out, slots[i]);
  }
  out += '}';
}

void append_histogram(std::string& out, const char* name,
                      const Histogram& hist) {
  out += '"';
  out += name;
  out += "\":{\"count\":";
  append_u64(out, hist.count());
  out += ",\"sum\":";
  append_u64(out, hist.sum());
  char buf[32];
  std::snprintf(buf, sizeof buf, ",\"mean\":%.3f", hist.mean());
  out += buf;
  out += ",\"log2_buckets\":[";
  // Trailing zero buckets are trimmed; the geometry is fixed so trimmed
  // output still merges/compares deterministically.
  std::size_t last = 0;
  for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
    if (hist.buckets()[i] != 0) last = i + 1;
  }
  for (std::size_t i = 0; i < last; ++i) {
    if (i > 0) out += ',';
    append_u64(out, hist.buckets()[i]);
  }
  out += "]}";
}

}  // namespace

void Histogram::add(std::uint64_t value, std::uint64_t times) {
  std::size_t b = value == 0 ? 0 : static_cast<std::size_t>(std::bit_width(value));
  if (b >= kBuckets) b = kBuckets - 1;
  buckets_[b] += times;
  count_ += times;
  sum_ += value * times;
}

void Histogram::merge(const Histogram& other) {
  for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
}

std::size_t frame_type_slot(std::uint8_t type_octet) noexcept {
  return type_octet < 10 ? type_octet : kFrameTypeSlots - 1;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  connections += other.connections;
  rounds += other.rounds;
  for (std::size_t i = 0; i < kFrameTypeSlots; ++i) {
    frames_c2s[i] += other.frames_c2s[i];
    frames_s2c[i] += other.frames_s2c[i];
  }
  bytes_c2s += other.bytes_c2s;
  bytes_s2c += other.bytes_s2c;
  settings_applied += other.settings_applied;
  hpack_inserts += other.hpack_inserts;
  hpack_evictions += other.hpack_evictions;
  rst_streams += other.rst_streams;
  goaways += other.goaways;
  window_stalls += other.window_stalls;
  parse_errors += other.parse_errors;
  faults_injected += other.faults_injected;
  mitigation_events += other.mitigation_events;
  trace_drops += other.trace_drops;
  for (const auto& [tag, n] : other.violation_tags) violation_tags[tag] += n;
  reactor_parks += other.reactor_parks;
  reactor_parked_rounds += other.reactor_parked_rounds;
  // A gauge, not a counter: the fleet-wide peak is the max over shards.
  reactor_peak_in_flight =
      reactor_peak_in_flight > other.reactor_peak_in_flight
          ? reactor_peak_in_flight
          : other.reactor_peak_in_flight;
  frame_size.merge(other.frame_size);
  stream_wire_bytes.merge(other.stream_wire_bytes);
  stall_span_events.merge(other.stall_span_events);
  compression_ratio_pct.merge(other.compression_ratio_pct);
  park_duration_rounds.merge(other.park_duration_rounds);
  wakeups_per_site.merge(other.wakeups_per_site);
}

std::uint64_t MetricsRegistry::total_frames() const noexcept {
  std::uint64_t n = 0;
  for (std::size_t i = 0; i < kFrameTypeSlots; ++i) {
    n += frames_c2s[i] + frames_s2c[i];
  }
  return n;
}

std::uint64_t MetricsRegistry::total_violations() const noexcept {
  std::uint64_t n = 0;
  for (const auto& [tag, c] : violation_tags) n += c;
  return n;
}

std::string MetricsRegistry::to_json() const {
  std::string out;
  out.reserve(1024);
  out += "{\"connections\":";
  append_u64(out, connections);
  out += ",\"rounds\":";
  append_u64(out, rounds);
  out += ",\"frames\":{\"c2s\":";
  append_frames_object(out, frames_c2s);
  out += ",\"s2c\":";
  append_frames_object(out, frames_s2c);
  out += "},\"bytes\":{\"c2s\":";
  append_u64(out, bytes_c2s);
  out += ",\"s2c\":";
  append_u64(out, bytes_s2c);
  out += "},\"settings_applied\":";
  append_u64(out, settings_applied);
  out += ",\"hpack\":{\"inserts\":";
  append_u64(out, hpack_inserts);
  out += ",\"evictions\":";
  append_u64(out, hpack_evictions);
  out += "},\"rst_streams\":";
  append_u64(out, rst_streams);
  out += ",\"goaways\":";
  append_u64(out, goaways);
  out += ",\"window_stalls\":";
  append_u64(out, window_stalls);
  out += ",\"parse_errors\":";
  append_u64(out, parse_errors);
  // Emitted only when present so fault-free snapshots stay byte-identical
  // to pre-fault-injection output (same policy as the violations map).
  if (faults_injected != 0) {
    out += ",\"faults_injected\":";
    append_u64(out, faults_injected);
  }
  if (mitigation_events != 0) {
    out += ",\"mitigation_events\":";
    append_u64(out, mitigation_events);
  }
  if (trace_drops != 0) {
    out += ",\"trace_drops\":";
    append_u64(out, trace_drops);
  }
  // Park bookkeeping comes from the site ledgers, so it is identical for
  // every driver and thread count — safe to emit. The in-flight peak is
  // not (it depends on shard sizes), so it stays out of the JSON snapshot
  // entirely; to_text() reports it.
  if (reactor_parks != 0 || wakeups_per_site.count() != 0) {
    out += ",\"reactor\":{\"parks\":";
    append_u64(out, reactor_parks);
    out += ",\"parked_rounds\":";
    append_u64(out, reactor_parked_rounds);
    out += ',';
    append_histogram(out, "park_duration_rounds", park_duration_rounds);
    out += ',';
    append_histogram(out, "wakeups_per_site", wakeups_per_site);
    out += '}';
  }
  out += ",\"violations\":{";
  bool first = true;
  for (const auto& [tag, n] : violation_tags) {  // std::map: sorted, stable
    if (!first) out += ',';
    first = false;
    out += '"';
    out += tag;
    out += "\":";
    append_u64(out, n);
  }
  out += "},\"histograms\":{";
  append_histogram(out, "frame_size", frame_size);
  out += ',';
  append_histogram(out, "stream_wire_bytes", stream_wire_bytes);
  out += ',';
  append_histogram(out, "stall_span_events", stall_span_events);
  out += ',';
  append_histogram(out, "compression_ratio_pct", compression_ratio_pct);
  out += "}}";
  return out;
}

std::string MetricsRegistry::to_text() const {
  std::string out;
  char buf[128];
  std::snprintf(buf, sizeof buf,
                "wiretap: %llu connections, %llu frames, %llu+%llu bytes "
                "(c2s+s2c)\n",
                static_cast<unsigned long long>(connections),
                static_cast<unsigned long long>(total_frames()),
                static_cast<unsigned long long>(bytes_c2s),
                static_cast<unsigned long long>(bytes_s2c));
  out += buf;
  out += "  frames by type (c2s / s2c):\n";
  for (std::size_t i = 0; i < kFrameTypeSlots; ++i) {
    if (frames_c2s[i] == 0 && frames_s2c[i] == 0) continue;
    std::snprintf(buf, sizeof buf, "    %-14s %10llu / %llu\n", kTypeNames[i],
                  static_cast<unsigned long long>(frames_c2s[i]),
                  static_cast<unsigned long long>(frames_s2c[i]));
    out += buf;
  }
  std::snprintf(buf, sizeof buf,
                "  settings applied %llu, hpack +%llu/-%llu, rst %llu, "
                "goaway %llu, stalls %llu, parse errors %llu\n",
                static_cast<unsigned long long>(settings_applied),
                static_cast<unsigned long long>(hpack_inserts),
                static_cast<unsigned long long>(hpack_evictions),
                static_cast<unsigned long long>(rst_streams),
                static_cast<unsigned long long>(goaways),
                static_cast<unsigned long long>(window_stalls),
                static_cast<unsigned long long>(parse_errors));
  out += buf;
  if (faults_injected != 0) {
    std::snprintf(buf, sizeof buf, "  transport faults injected %llu\n",
                  static_cast<unsigned long long>(faults_injected));
    out += buf;
  }
  if (mitigation_events != 0) {
    std::snprintf(buf, sizeof buf, "  mitigation escalations %llu\n",
                  static_cast<unsigned long long>(mitigation_events));
    out += buf;
  }
  if (trace_drops != 0) {
    std::snprintf(buf, sizeof buf, "  trace ring drops %llu\n",
                  static_cast<unsigned long long>(trace_drops));
    out += buf;
  }
  if (reactor_parks != 0 || reactor_peak_in_flight != 0) {
    std::snprintf(buf, sizeof buf,
                  "  reactor: %llu parks over %llu rounds (mean park %.1f, "
                  "mean wakeups/site %.1f), peak in-flight %llu\n",
                  static_cast<unsigned long long>(reactor_parks),
                  static_cast<unsigned long long>(reactor_parked_rounds),
                  park_duration_rounds.mean(), wakeups_per_site.mean(),
                  static_cast<unsigned long long>(reactor_peak_in_flight));
    out += buf;
  }
  std::snprintf(buf, sizeof buf,
                "  frame size mean %.1fB; stream wire bytes mean %.1fB; "
                "compression ratio mean %.2f (%llu conns); stall span mean "
                "%.1f events\n",
                frame_size.mean(), stream_wire_bytes.mean(),
                compression_ratio_pct.mean() / 100.0,
                static_cast<unsigned long long>(compression_ratio_pct.count()),
                stall_span_events.mean());
  out += buf;
  if (!violation_tags.empty()) {
    out += "  violations:\n";
    for (const auto& [tag, n] : violation_tags) {
      std::snprintf(buf, sizeof buf, "    %-44s %llu\n", tag.c_str(),
                    static_cast<unsigned long long>(n));
      out += buf;
    }
  }
  return out;
}

void MetricsRecorder::on_event(const TraceEvent& ev) {
  for (const auto& tag : ev.tags) ++registry_->violation_tags[tag];
  fold(ev.seq, ev);
}

void MetricsRecorder::flush_connection() {
  for (const auto& [stream, bytes] : stream_bytes_) {
    registry_->stream_wire_bytes.add(bytes);
  }
  stream_bytes_.clear();
  open_stalls_.clear();
  if (response_block_sizes_.size() >= 2) {
    double sum = 0;
    for (const std::uint64_t s : response_block_sizes_) {
      sum += static_cast<double>(s);
    }
    const double s1 = static_cast<double>(response_block_sizes_.front());
    const double ratio =
        sum / (s1 * static_cast<double>(response_block_sizes_.size()));
    registry_->compression_ratio_pct.add(
        static_cast<std::uint64_t>(std::llround(ratio * 100.0)));
  }
  response_block_sizes_.clear();
}

void MetricsRecorder::finish() { flush_connection(); }

void consume(MetricsRegistry& registry, const std::vector<TraceEvent>& events) {
  MetricsRecorder folder(registry);
  for (const auto& ev : events) folder.replay(ev);
  folder.finish();
}

}  // namespace h2r::trace
