#include "h2/constants.h"

namespace h2r::h2 {

std::string_view to_string(FrameType type) noexcept {
  switch (type) {
    case FrameType::kData:
      return "DATA";
    case FrameType::kHeaders:
      return "HEADERS";
    case FrameType::kPriority:
      return "PRIORITY";
    case FrameType::kRstStream:
      return "RST_STREAM";
    case FrameType::kSettings:
      return "SETTINGS";
    case FrameType::kPushPromise:
      return "PUSH_PROMISE";
    case FrameType::kPing:
      return "PING";
    case FrameType::kGoaway:
      return "GOAWAY";
    case FrameType::kWindowUpdate:
      return "WINDOW_UPDATE";
    case FrameType::kContinuation:
      return "CONTINUATION";
  }
  return "UNKNOWN";
}

std::string_view to_string(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kNoError:
      return "NO_ERROR";
    case ErrorCode::kProtocolError:
      return "PROTOCOL_ERROR";
    case ErrorCode::kInternalError:
      return "INTERNAL_ERROR";
    case ErrorCode::kFlowControlError:
      return "FLOW_CONTROL_ERROR";
    case ErrorCode::kSettingsTimeout:
      return "SETTINGS_TIMEOUT";
    case ErrorCode::kStreamClosed:
      return "STREAM_CLOSED";
    case ErrorCode::kFrameSizeError:
      return "FRAME_SIZE_ERROR";
    case ErrorCode::kRefusedStream:
      return "REFUSED_STREAM";
    case ErrorCode::kCancel:
      return "CANCEL";
    case ErrorCode::kCompressionError:
      return "COMPRESSION_ERROR";
    case ErrorCode::kConnectError:
      return "CONNECT_ERROR";
    case ErrorCode::kEnhanceYourCalm:
      return "ENHANCE_YOUR_CALM";
    case ErrorCode::kInadequateSecurity:
      return "INADEQUATE_SECURITY";
    case ErrorCode::kHttp11Required:
      return "HTTP_1_1_REQUIRED";
  }
  return "UNKNOWN";
}

std::string_view to_string(SettingId id) noexcept {
  switch (id) {
    case SettingId::kHeaderTableSize:
      return "SETTINGS_HEADER_TABLE_SIZE";
    case SettingId::kEnablePush:
      return "SETTINGS_ENABLE_PUSH";
    case SettingId::kMaxConcurrentStreams:
      return "SETTINGS_MAX_CONCURRENT_STREAMS";
    case SettingId::kInitialWindowSize:
      return "SETTINGS_INITIAL_WINDOW_SIZE";
    case SettingId::kMaxFrameSize:
      return "SETTINGS_MAX_FRAME_SIZE";
    case SettingId::kMaxHeaderListSize:
      return "SETTINGS_MAX_HEADER_LIST_SIZE";
  }
  return "SETTINGS_UNKNOWN";
}

}  // namespace h2r::h2
