#include "h2/frame_codec.h"

#include <algorithm>
#include <stdexcept>

namespace h2r::h2 {
namespace {

constexpr std::uint32_t kStreamIdMask = 0x7FFF'FFFFu;

void write_priority_info(ByteWriter& out, const PriorityInfo& p) {
  out.write_u32((p.dependency & kStreamIdMask) |
                (p.exclusive ? 0x8000'0000u : 0u));
  out.write_u8(p.weight_field);
}

struct SerializeVisitor {
  const Frame& frame;
  ByteWriter& out;

  void operator()(const DataPayload& p) const {
    const bool padded = p.pad_length > 0;
    const std::size_t length =
        p.data.size() + (padded ? 1 + p.pad_length : 0);
    write_frame_header(out, length, FrameType::kData,
                       static_cast<std::uint8_t>(frame.flags |
                                                 (padded ? flags::kPadded : 0)),
                       frame.stream_id);
    if (padded) out.write_u8(p.pad_length);
    out.write_bytes(p.data);
    out.write_zeros(p.pad_length);
  }

  void operator()(const HeadersPayload& p) const {
    const bool padded = p.pad_length > 0;
    std::uint8_t flagbits = frame.flags;
    std::size_t length = p.fragment.size();
    if (padded) {
      flagbits |= flags::kPadded;
      length += 1 + p.pad_length;
    }
    if (p.priority) {
      flagbits |= flags::kPriority;
      length += 5;
    }
    write_frame_header(out, length, FrameType::kHeaders, flagbits,
                       frame.stream_id);
    if (padded) out.write_u8(p.pad_length);
    if (p.priority) write_priority_info(out, *p.priority);
    out.write_bytes(p.fragment);
    out.write_zeros(p.pad_length);
  }

  void operator()(const PriorityPayload& p) const {
    write_frame_header(out, 5, FrameType::kPriority, frame.flags,
                       frame.stream_id);
    write_priority_info(out, p.info);
  }

  void operator()(const RstStreamPayload& p) const {
    write_frame_header(out, 4, FrameType::kRstStream, frame.flags,
                       frame.stream_id);
    out.write_u32(static_cast<std::uint32_t>(p.error));
  }

  void operator()(const SettingsPayload& p) const {
    write_frame_header(out, p.entries.size() * 6, FrameType::kSettings,
                       frame.flags, frame.stream_id);
    for (const auto& [id, value] : p.entries) {
      out.write_u16(id);
      out.write_u32(value);
    }
  }

  void operator()(const PushPromisePayload& p) const {
    const bool padded = p.pad_length > 0;
    std::uint8_t flagbits = frame.flags;
    std::size_t length = 4 + p.fragment.size();
    if (padded) {
      flagbits |= flags::kPadded;
      length += 1 + p.pad_length;
    }
    write_frame_header(out, length, FrameType::kPushPromise, flagbits,
                       frame.stream_id);
    if (padded) out.write_u8(p.pad_length);
    out.write_u32(p.promised_stream_id & kStreamIdMask);
    out.write_bytes(p.fragment);
    out.write_zeros(p.pad_length);
  }

  void operator()(const PingPayload& p) const {
    write_frame_header(out, kPingPayloadSize, FrameType::kPing, frame.flags,
                       frame.stream_id);
    out.write_bytes(p.opaque);
  }

  void operator()(const GoawayPayload& p) const {
    write_frame_header(out, 8 + p.debug_data.size(), FrameType::kGoaway,
                       frame.flags, frame.stream_id);
    out.write_u32(p.last_stream_id & kStreamIdMask);
    out.write_u32(static_cast<std::uint32_t>(p.error));
    out.write_bytes(p.debug_data);
  }

  void operator()(const WindowUpdatePayload& p) const {
    write_frame_header(out, 4, FrameType::kWindowUpdate, frame.flags,
                       frame.stream_id);
    out.write_u32(p.increment & kStreamIdMask);
  }

  void operator()(const ContinuationPayload& p) const {
    write_frame_header(out, p.fragment.size(), FrameType::kContinuation,
                       frame.flags, frame.stream_id);
    out.write_bytes(p.fragment);
  }

  void operator()(const UnknownPayload& p) const {
    write_frame_header(out, p.data.size(), static_cast<FrameType>(p.type),
                       frame.flags, frame.stream_id);
    out.write_bytes(p.data);
  }
};

/// Strips the optional Pad Length prefix and trailing padding. Returns the
/// unpadded body view or a PROTOCOL_ERROR when padding >= remaining length.
Result<std::span<const std::uint8_t>> strip_padding(
    std::span<const std::uint8_t> payload, bool padded) {
  if (!padded) return payload;
  if (payload.empty()) {
    return ProtocolViolationError("PADDED frame with empty payload");
  }
  const std::uint8_t pad = payload[0];
  if (pad + 1u > payload.size()) {
    return ProtocolViolationError("padding exceeds frame payload");
  }
  return payload.subspan(1, payload.size() - 1 - pad);
}

PriorityInfo read_priority_info(ByteReader& r) {
  // Caller has verified at least 5 octets remain.
  const std::uint32_t word = r.read_u32().value();
  PriorityInfo p;
  p.exclusive = (word & 0x8000'0000u) != 0;
  p.dependency = word & kStreamIdMask;
  p.weight_field = r.read_u8().value();
  return p;
}

}  // namespace

void write_frame_header(ByteWriter& out, std::size_t length, FrameType type,
                        std::uint8_t flagbits, std::uint32_t stream_id) {
  if (length > kMaxAllowedFrameSize) {
    throw std::invalid_argument("frame payload exceeds 2^24-1");
  }
  out.reserve(kFrameHeaderSize + length);
  out.write_u24(static_cast<std::uint32_t>(length));
  out.write_u8(static_cast<std::uint8_t>(type));
  out.write_u8(flagbits);
  out.write_u32(stream_id & kStreamIdMask);
}

std::size_t serialize_frame_into(ByteWriter& out, const Frame& frame) {
  const std::size_t before = out.size();
  std::visit(SerializeVisitor{frame, out}, frame.payload);
  return out.size() - before;
}

Bytes serialize_frame(const Frame& frame) {
  ByteWriter out;
  serialize_frame_into(out, frame);
  return out.take();
}

Bytes serialize_frames(std::span<const Frame> frames) {
  ByteWriter out;
  for (const auto& f : frames) {
    serialize_frame_into(out, f);
  }
  return out.take();
}

FrameParser::FrameParser(std::uint32_t max_frame_size)
    : max_frame_size_(max_frame_size) {}

void FrameParser::feed(std::span<const std::uint8_t> bytes) {
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
  fed_total_ += bytes.size();
}

std::optional<Result<Frame>> FrameParser::next() {
  auto view = next_view();
  if (!view) return std::nullopt;
  if (!view->ok()) return Result<Frame>{view->status()};
  return materialize(view->value());
}

std::optional<Result<FrameView>> FrameParser::next_view() {
  if (poisoned_) return Result<FrameView>{*poisoned_};
  // Compact lazily so feed() stays amortized O(1).
  if (consumed_ > 0 && consumed_ * 2 > buf_.size()) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  const std::span<const std::uint8_t> avail{buf_.data() + consumed_,
                                            buf_.size() - consumed_};
  if (avail.size() < kFrameHeaderSize) return std::nullopt;

  // Stream offset of the frame header we are about to read: everything fed
  // minus what is still unparsed in front of us.
  const std::uint64_t frame_offset = fed_total_ - avail.size();

  ByteReader header(avail.first(kFrameHeaderSize));
  const std::uint32_t length = header.read_u24().value();
  const std::uint8_t type = header.read_u8().value();
  const std::uint8_t flagbits = header.read_u8().value();
  const std::uint32_t stream_id = header.read_u32().value() & kStreamIdMask;

  if (length > max_frame_size_) {
    poisoned_ = FrameSizeViolationError("frame exceeds SETTINGS_MAX_FRAME_SIZE");
    error_context_ = ParseErrorContext{frame_offset, type, true};
    return Result<FrameView>{*poisoned_};
  }
  if (avail.size() < kFrameHeaderSize + length) return std::nullopt;

  const auto payload = avail.subspan(kFrameHeaderSize, length);
  consumed_ += kFrameHeaderSize + length;

  auto parsed = parse_view(type, flagbits, stream_id, payload);
  if (!parsed.ok()) {
    poisoned_ = parsed.status();
    error_context_ = ParseErrorContext{frame_offset, type, true};
  }
  return parsed;
}

Result<FrameView> FrameParser::parse_view(std::uint8_t type,
                                          std::uint8_t flagbits,
                                          std::uint32_t stream_id,
                                          std::span<const std::uint8_t> payload) {
  FrameView v;
  v.raw_type = type;
  v.flags = flagbits;
  v.stream_id = stream_id;
  v.payload_wire_octets = static_cast<std::uint32_t>(payload.size());

  switch (static_cast<FrameType>(type)) {
    case FrameType::kData: {
      H2R_ASSIGN_OR_RETURN(v.body,
                           strip_padding(payload, flagbits & flags::kPadded));
      return v;
    }
    case FrameType::kHeaders: {
      H2R_ASSIGN_OR_RETURN(auto body,
                           strip_padding(payload, flagbits & flags::kPadded));
      ByteReader r(body);
      if (flagbits & flags::kPriority) {
        if (r.remaining() < 5) {
          return FrameSizeViolationError("HEADERS with PRIORITY too short");
        }
        v.priority = read_priority_info(r);
      }
      v.body = body.subspan(r.position());
      return v;
    }
    case FrameType::kPriority: {
      if (payload.size() != 5) {
        return FrameSizeViolationError("PRIORITY length != 5");
      }
      ByteReader r(payload);
      v.priority = read_priority_info(r);
      return v;
    }
    case FrameType::kRstStream: {
      if (payload.size() != 4) {
        return FrameSizeViolationError("RST_STREAM length != 4");
      }
      ByteReader r(payload);
      v.error = static_cast<ErrorCode>(r.read_u32().value());
      return v;
    }
    case FrameType::kSettings: {
      if (payload.size() % 6 != 0) {
        return FrameSizeViolationError("SETTINGS length not multiple of 6");
      }
      if ((flagbits & flags::kAck) && !payload.empty()) {
        return FrameSizeViolationError("SETTINGS ACK with payload");
      }
      v.body = payload;
      return v;
    }
    case FrameType::kPushPromise: {
      H2R_ASSIGN_OR_RETURN(auto body,
                           strip_padding(payload, flagbits & flags::kPadded));
      if (body.size() < 4) {
        return FrameSizeViolationError("PUSH_PROMISE too short");
      }
      ByteReader r(body);
      v.promised_stream_id = r.read_u32().value() & kStreamIdMask;
      v.body = body.subspan(r.position());
      return v;
    }
    case FrameType::kPing: {
      if (payload.size() != kPingPayloadSize) {
        return FrameSizeViolationError("PING length != 8");
      }
      v.body = payload;
      return v;
    }
    case FrameType::kGoaway: {
      if (payload.size() < 8) {
        return FrameSizeViolationError("GOAWAY too short");
      }
      ByteReader r(payload);
      v.last_stream_id = r.read_u32().value() & kStreamIdMask;
      v.error = static_cast<ErrorCode>(r.read_u32().value());
      v.body = payload.subspan(r.position());
      return v;
    }
    case FrameType::kWindowUpdate: {
      if (payload.size() != 4) {
        return FrameSizeViolationError("WINDOW_UPDATE length != 4");
      }
      ByteReader r(payload);
      v.increment = r.read_u32().value() & kStreamIdMask;
      return v;
    }
    case FrameType::kContinuation: {
      v.body = payload;
      return v;
    }
  }
  // §4.1: unknown types must be ignored; we surface them tagged so a caller
  // can choose to skip.
  v.body = payload;
  return v;
}

Frame materialize(const FrameView& view) {
  Frame f;
  f.flags = view.flags;
  f.stream_id = view.stream_id;
  const auto& body = view.body;

  switch (view.type()) {
    case FrameType::kData:
      f.payload = DataPayload{.data = Bytes(body.begin(), body.end())};
      return f;
    case FrameType::kHeaders: {
      HeadersPayload hp;
      hp.priority = view.priority;
      hp.fragment.assign(body.begin(), body.end());
      f.payload = std::move(hp);
      return f;
    }
    case FrameType::kPriority:
      f.payload = PriorityPayload{.info = view.priority.value_or(PriorityInfo{})};
      return f;
    case FrameType::kRstStream:
      f.payload = RstStreamPayload{.error = view.error};
      return f;
    case FrameType::kSettings: {
      SettingsPayload sp;
      sp.entries.reserve(view.settings_entry_count());
      for (std::size_t i = 0; i < view.settings_entry_count(); ++i) {
        sp.entries.push_back(view.setting_at(i));
      }
      f.payload = std::move(sp);
      return f;
    }
    case FrameType::kPushPromise: {
      PushPromisePayload pp;
      pp.promised_stream_id = view.promised_stream_id;
      pp.fragment.assign(body.begin(), body.end());
      f.payload = std::move(pp);
      return f;
    }
    case FrameType::kPing: {
      PingPayload pp;
      std::copy(body.begin(), body.end(), pp.opaque.begin());
      f.payload = pp;
      return f;
    }
    case FrameType::kGoaway: {
      GoawayPayload gp;
      gp.last_stream_id = view.last_stream_id;
      gp.error = view.error;
      gp.debug_data.assign(body.begin(), body.end());
      f.payload = std::move(gp);
      return f;
    }
    case FrameType::kWindowUpdate:
      f.payload = WindowUpdatePayload{.increment = view.increment};
      return f;
    case FrameType::kContinuation:
      f.payload = ContinuationPayload{.fragment = Bytes(body.begin(), body.end())};
      return f;
  }
  f.payload =
      UnknownPayload{.type = view.raw_type, .data = Bytes(body.begin(), body.end())};
  return f;
}

}  // namespace h2r::h2
