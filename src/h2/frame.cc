#include "h2/frame.h"

#include <sstream>

namespace h2r::h2 {
namespace {

struct TypeVisitor {
  FrameType operator()(const DataPayload&) const { return FrameType::kData; }
  FrameType operator()(const HeadersPayload&) const { return FrameType::kHeaders; }
  FrameType operator()(const PriorityPayload&) const { return FrameType::kPriority; }
  FrameType operator()(const RstStreamPayload&) const { return FrameType::kRstStream; }
  FrameType operator()(const SettingsPayload&) const { return FrameType::kSettings; }
  FrameType operator()(const PushPromisePayload&) const {
    return FrameType::kPushPromise;
  }
  FrameType operator()(const PingPayload&) const { return FrameType::kPing; }
  FrameType operator()(const GoawayPayload&) const { return FrameType::kGoaway; }
  FrameType operator()(const WindowUpdatePayload&) const {
    return FrameType::kWindowUpdate;
  }
  FrameType operator()(const ContinuationPayload&) const {
    return FrameType::kContinuation;
  }
  FrameType operator()(const UnknownPayload& u) const {
    return static_cast<FrameType>(u.type);
  }
};

std::size_t payload_size_hint(const Frame& f) {
  if (f.is<DataPayload>()) return f.as<DataPayload>().data.size();
  if (f.is<HeadersPayload>()) return f.as<HeadersPayload>().fragment.size();
  if (f.is<GoawayPayload>()) return 8 + f.as<GoawayPayload>().debug_data.size();
  if (f.is<SettingsPayload>()) return 6 * f.as<SettingsPayload>().entries.size();
  return 0;
}

}  // namespace

FrameType Frame::type() const noexcept { return std::visit(TypeVisitor{}, payload); }

std::string Frame::describe() const {
  std::ostringstream os;
  os << to_string(type()) << "(stream=" << stream_id << ", flags=0x" << std::hex
     << static_cast<int>(flags) << std::dec;
  const std::size_t n = payload_size_hint(*this);
  if (n > 0) os << ", " << n << "B";
  if (is<RstStreamPayload>()) {
    os << ", " << to_string(as<RstStreamPayload>().error);
  }
  if (is<GoawayPayload>()) {
    os << ", " << to_string(as<GoawayPayload>().error);
  }
  if (is<WindowUpdatePayload>()) {
    os << ", +" << as<WindowUpdatePayload>().increment;
  }
  os << ")";
  return os.str();
}

Frame make_data(std::uint32_t stream_id, Bytes data, bool end_stream) {
  Frame f;
  f.stream_id = stream_id;
  f.flags = end_stream ? flags::kEndStream : 0;
  f.payload = DataPayload{.data = std::move(data)};
  return f;
}

Frame make_headers(std::uint32_t stream_id, Bytes fragment, bool end_stream,
                   bool end_headers, std::optional<PriorityInfo> priority) {
  Frame f;
  f.stream_id = stream_id;
  f.flags = static_cast<std::uint8_t>((end_stream ? flags::kEndStream : 0) |
                                      (end_headers ? flags::kEndHeaders : 0) |
                                      (priority ? flags::kPriority : 0));
  f.payload = HeadersPayload{.fragment = std::move(fragment), .priority = priority};
  return f;
}

Frame make_priority(std::uint32_t stream_id, PriorityInfo info) {
  Frame f;
  f.stream_id = stream_id;
  f.payload = PriorityPayload{.info = info};
  return f;
}

Frame make_rst_stream(std::uint32_t stream_id, ErrorCode error) {
  Frame f;
  f.stream_id = stream_id;
  f.payload = RstStreamPayload{.error = error};
  return f;
}

Frame make_settings(std::vector<std::pair<SettingId, std::uint32_t>> entries) {
  Frame f;
  SettingsPayload payload;
  payload.entries.reserve(entries.size());
  for (const auto& [id, value] : entries) {
    payload.entries.emplace_back(static_cast<std::uint16_t>(id), value);
  }
  f.payload = std::move(payload);
  return f;
}

Frame make_settings_ack() {
  Frame f;
  f.flags = flags::kAck;
  f.payload = SettingsPayload{};
  return f;
}

Frame make_push_promise(std::uint32_t stream_id, std::uint32_t promised_id,
                        Bytes fragment) {
  Frame f;
  f.stream_id = stream_id;
  f.flags = flags::kEndHeaders;
  f.payload = PushPromisePayload{.promised_stream_id = promised_id,
                                 .fragment = std::move(fragment)};
  return f;
}

Frame make_ping(std::array<std::uint8_t, kPingPayloadSize> opaque, bool ack) {
  Frame f;
  f.flags = ack ? flags::kAck : 0;
  f.payload = PingPayload{.opaque = opaque};
  return f;
}

Frame make_goaway(std::uint32_t last_stream_id, ErrorCode error,
                  std::string debug) {
  Frame f;
  f.payload = GoawayPayload{.last_stream_id = last_stream_id,
                            .error = error,
                            .debug_data = bytes_of(debug)};
  return f;
}

Frame make_window_update(std::uint32_t stream_id, std::uint32_t increment) {
  Frame f;
  f.stream_id = stream_id;
  f.payload = WindowUpdatePayload{.increment = increment};
  return f;
}

Frame make_continuation(std::uint32_t stream_id, Bytes fragment,
                        bool end_headers) {
  Frame f;
  f.stream_id = stream_id;
  f.flags = end_headers ? flags::kEndHeaders : 0;
  f.payload = ContinuationPayload{.fragment = std::move(fragment)};
  return f;
}

}  // namespace h2r::h2
