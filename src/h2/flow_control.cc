#include "h2/flow_control.h"

namespace h2r::h2 {

Status FlowWindow::consume(std::int64_t n) {
  if (n < 0) return InvalidArgumentError("consume: negative octet count");
  if (n > window_) {
    return FlowControlViolationError("DATA exceeds flow-control window");
  }
  window_ -= n;
  return OkStatus();
}

Status FlowWindow::expand(std::uint32_t increment) {
  if (increment == 0) {
    return ProtocolViolationError("WINDOW_UPDATE increment of 0");
  }
  const std::int64_t next = window_ + static_cast<std::int64_t>(increment);
  if (next > kMaxWindowSize) {
    return FlowControlViolationError("flow-control window exceeds 2^31-1");
  }
  window_ = next;
  return OkStatus();
}

Status FlowWindow::adjust_initial(std::int64_t old_initial,
                                  std::int64_t new_initial) {
  const std::int64_t next = window_ + (new_initial - old_initial);
  if (next > kMaxWindowSize) {
    return FlowControlViolationError(
        "SETTINGS window adjustment exceeds 2^31-1");
  }
  window_ = next;
  return OkStatus();
}

}  // namespace h2r::h2
