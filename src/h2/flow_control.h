// Flow-control window accounting (RFC 7540 §5.2, §6.9).
//
// One FlowWindow instance tracks one direction of one scope (a stream, or
// the connection). Windows are signed: a SETTINGS_INITIAL_WINDOW_SIZE
// decrease can legally drive a stream window negative (§6.9.2).
//
// The paper's flow-control probes (Section III-B) hammer on exactly the two
// edge rules encoded here: an increment of zero is an error for the
// receiver, and total window must never exceed 2^31-1.
#pragma once

#include <cstdint>

#include "h2/constants.h"
#include "util/status.h"

namespace h2r::h2 {

class FlowWindow {
 public:
  explicit FlowWindow(std::int64_t initial = kDefaultInitialWindowSize) noexcept
      : window_(initial) {}

  /// Octets currently sendable; <= 0 means blocked.
  [[nodiscard]] std::int64_t available() const noexcept { return window_; }

  /// Consumes @p n octets (a DATA frame was sent/received against this
  /// window). Errors with FLOW_CONTROL_ERROR when n exceeds the window —
  /// the receive-side check of §6.9.
  Status consume(std::int64_t n);

  /// Applies a WINDOW_UPDATE increment. Enforces both §6.9 rules:
  /// increment 0 => PROTOCOL_ERROR (stream error at the caller's scope);
  /// resulting window > 2^31-1 => FLOW_CONTROL_ERROR.
  Status expand(std::uint32_t increment);

  /// Adjusts for a change of SETTINGS_INITIAL_WINDOW_SIZE (§6.9.2): the
  /// delta is applied to the *current* window, which may go negative.
  /// Errors when the adjustment overflows 2^31-1.
  Status adjust_initial(std::int64_t old_initial, std::int64_t new_initial);

  /// Forces an absolute value (used when constructing windows for streams
  /// created after a SETTINGS change).
  void reset_to(std::int64_t value) noexcept { window_ = value; }

 private:
  std::int64_t window_;
};

}  // namespace h2r::h2
