#include "h2/priority_tree.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace h2r::h2 {

PriorityTree::PriorityTree() { nodes_[kConnectionStreamId] = Node{}; }

PriorityTree::Node& PriorityTree::node(std::uint32_t id) {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) throw std::logic_error("PriorityTree: unknown node");
  return it->second;
}

const PriorityTree::Node& PriorityTree::node(std::uint32_t id) const {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) throw std::logic_error("PriorityTree: unknown node");
  return it->second;
}

void PriorityTree::ensure_exists(std::uint32_t id) {
  if (nodes_.count(id)) return;
  // Phantom node: referenced before being declared. Default priority.
  nodes_[id] = Node{};
  nodes_[kConnectionStreamId].children.push_back(id);
}

void PriorityTree::detach(std::uint32_t id) {
  auto& siblings = node(node(id).parent).children;
  siblings.erase(std::remove(siblings.begin(), siblings.end(), id),
                 siblings.end());
}

void PriorityTree::attach(std::uint32_t id, std::uint32_t parent,
                          bool exclusive) {
  Node& p = node(parent);
  if (exclusive) {
    // §5.3.1: the new stream adopts all of the parent's current children.
    Node& self = node(id);
    for (std::uint32_t child : p.children) {
      node(child).parent = id;
      self.children.push_back(child);
    }
    p.children.clear();
  }
  p.children.push_back(id);
  node(id).parent = parent;
}

bool PriorityTree::contains(std::uint32_t stream_id) const {
  return nodes_.count(stream_id) != 0;
}

std::uint32_t PriorityTree::parent_of(std::uint32_t stream_id) const {
  return node(stream_id).parent;
}

int PriorityTree::weight_of(std::uint32_t stream_id) const {
  return node(stream_id).weight;
}

std::vector<std::uint32_t> PriorityTree::children_of(
    std::uint32_t stream_id) const {
  return node(stream_id).children;
}

bool PriorityTree::is_ancestor(std::uint32_t ancestor,
                               std::uint32_t stream_id) const {
  std::uint32_t cur = stream_id;
  while (cur != kConnectionStreamId) {
    cur = node(cur).parent;
    if (cur == ancestor) return true;
  }
  return ancestor == kConnectionStreamId;
}

Status PriorityTree::declare(std::uint32_t stream_id, const PriorityInfo& info) {
  if (info.dependency == stream_id) {
    return ProtocolViolationError("stream depends on itself");
  }
  if (contains(stream_id)) return reprioritize(stream_id, info);
  ensure_exists(info.dependency);
  Node node;
  node.weight = info.weight();
  nodes_[stream_id] = node;
  attach(stream_id, info.dependency, info.exclusive);
  return OkStatus();
}

Status PriorityTree::declare_default(std::uint32_t stream_id) {
  if (contains(stream_id)) return OkStatus();  // phantom already made
  nodes_[stream_id] = Node{};
  nodes_[kConnectionStreamId].children.push_back(stream_id);
  return OkStatus();
}

Status PriorityTree::reprioritize(std::uint32_t stream_id,
                                  const PriorityInfo& info) {
  if (info.dependency == stream_id) {
    return ProtocolViolationError("stream depends on itself");
  }
  if (!contains(stream_id)) {
    // PRIORITY for an undeclared stream creates it (§5.1: PRIORITY is legal
    // in idle state).
    return declare(stream_id, info);
  }
  ensure_exists(info.dependency);

  // §5.3.3: if the new parent currently sits inside our subtree, first move
  // it (with its own subtree) up to our current parent, keeping its weight.
  if (is_ancestor(stream_id, info.dependency)) {
    const std::uint32_t our_parent = node(stream_id).parent;
    detach(info.dependency);
    attach(info.dependency, our_parent, /*exclusive=*/false);
  }

  detach(stream_id);
  node(stream_id).weight = info.weight();
  attach(stream_id, info.dependency, info.exclusive);
  return OkStatus();
}

void PriorityTree::remove(std::uint32_t stream_id) {
  if (stream_id == kConnectionStreamId || !contains(stream_id)) return;
  Node removed = node(stream_id);
  detach(stream_id);

  // §5.3.4: children become dependents of our parent; their weights are
  // scaled in proportion to ours.
  int child_weight_sum = 0;
  for (std::uint32_t child : removed.children) {
    child_weight_sum += node(child).weight;
  }
  Node& parent = node(removed.parent);
  for (std::uint32_t child : removed.children) {
    Node& c = node(child);
    c.parent = removed.parent;
    if (child_weight_sum > 0) {
      c.weight = std::max(1, c.weight * removed.weight / child_weight_sum);
    }
    parent.children.push_back(child);
  }
  nodes_.erase(stream_id);
}

bool PriorityTree::subtree_wants(
    std::uint32_t id,
    const std::function<bool(std::uint32_t)>& wants_data) const {
  if (id != kConnectionStreamId && wants_data(id)) return true;
  for (std::uint32_t child : node(id).children) {
    if (subtree_wants(child, wants_data)) return true;
  }
  return false;
}

std::uint32_t PriorityTree::next_stream(
    const std::function<bool(std::uint32_t)>& wants_data) const {
  std::uint32_t cur = kConnectionStreamId;
  for (;;) {
    if (cur != kConnectionStreamId && wants_data(cur)) return cur;
    // Choose the eager child subtree with the least weighted service so
    // siblings converge to bandwidth shares proportional to their weights.
    const Node& n = node(cur);
    std::uint32_t best = 0;
    double best_vtime = std::numeric_limits<double>::infinity();
    for (std::uint32_t child : n.children) {
      if (!subtree_wants(child, wants_data)) continue;
      const double vt = node(child).vtime;
      if (vt < best_vtime) {
        best_vtime = vt;
        best = child;
      }
    }
    if (best == 0) return 0;  // nothing eligible below cur
    cur = best;
  }
}

std::uint32_t PriorityTree::next_stream_fair(
    const std::function<bool(std::uint32_t)>& wants_data) const {
  // Generalized processor sharing: every eager stream owns a bandwidth
  // share derived from the tree (a node's own stream competes with its
  // eager child subtrees, weight-proportionally, for the parent share), and
  // the stream with the smallest served/share quotient goes next, ties to
  // the earliest stream id. First-byte order therefore follows *arrival*,
  // while completion order follows the dependency tree.
  std::map<std::uint32_t, double> share;
  const std::function<void(std::uint32_t, double)> assign =
      [&](std::uint32_t id, double s) {
        const Node& n = node(id);
        const bool self_eager = id != kConnectionStreamId && wants_data(id);
        double total = self_eager ? static_cast<double>(n.weight) : 0.0;
        std::vector<std::uint32_t> eager;
        for (std::uint32_t child : n.children) {
          if (!subtree_wants(child, wants_data)) continue;
          eager.push_back(child);
          total += static_cast<double>(node(child).weight);
        }
        if (total <= 0) return;
        if (self_eager) {
          share[id] = s * static_cast<double>(n.weight) / total;
        }
        for (std::uint32_t child : eager) {
          assign(child, s * static_cast<double>(node(child).weight) / total);
        }
      };
  assign(kConnectionStreamId, 1.0);

  std::uint32_t best = 0;
  double best_key = std::numeric_limits<double>::infinity();
  for (const auto& [id, s] : share) {  // ascending id => arrival tie-break
    const Node& n = node(id);
    const double served = n.self_vtime * static_cast<double>(n.weight);
    const double key = served / s;
    if (key < best_key) {
      best_key = key;
      best = id;
    }
  }
  return best;
}

void PriorityTree::account(std::uint32_t stream_id, std::size_t octets) {
  if (!contains(stream_id) || stream_id == kConnectionStreamId) return;
  node(stream_id).self_vtime +=
      static_cast<double>(octets) / static_cast<double>(node(stream_id).weight);
  // Charge every node on the root path: a child's traffic is also its
  // parent's traffic from the scheduler's point of view.
  std::uint32_t cur = stream_id;
  while (cur != kConnectionStreamId) {
    Node& n = node(cur);
    n.vtime += static_cast<double>(octets) / static_cast<double>(n.weight);
    cur = n.parent;
  }
}

}  // namespace h2r::h2
