// Stream lifecycle state machine (RFC 7540 §5.1).
//
// Tracks one stream from the perspective of one endpoint. Transition
// methods return PROTOCOL_ERROR / STREAM_CLOSED statuses when a frame is
// illegal in the current state, mirroring the RFC's error assignments.
#pragma once

#include <cstdint>
#include <string_view>

#include "util/status.h"

namespace h2r::h2 {

enum class StreamState : std::uint8_t {
  kIdle,
  kReservedLocal,   // we sent PUSH_PROMISE
  kReservedRemote,  // peer sent PUSH_PROMISE
  kOpen,
  kHalfClosedLocal,   // we sent END_STREAM
  kHalfClosedRemote,  // peer sent END_STREAM
  kClosed,
};

std::string_view to_string(StreamState state) noexcept;

class StreamStateMachine {
 public:
  explicit StreamStateMachine(std::uint32_t stream_id,
                              StreamState initial = StreamState::kIdle) noexcept
      : id_(stream_id), state_(initial) {}

  [[nodiscard]] std::uint32_t id() const noexcept { return id_; }
  [[nodiscard]] StreamState state() const noexcept { return state_; }
  [[nodiscard]] bool closed() const noexcept {
    return state_ == StreamState::kClosed;
  }

  /// True when this endpoint may still send DATA on the stream.
  [[nodiscard]] bool can_send_data() const noexcept {
    return state_ == StreamState::kOpen ||
           state_ == StreamState::kHalfClosedRemote;
  }

  /// True when DATA from the peer is acceptable.
  [[nodiscard]] bool can_receive_data() const noexcept {
    return state_ == StreamState::kOpen ||
           state_ == StreamState::kHalfClosedLocal;
  }

  // -- transitions; @p end_stream marks the END_STREAM flag ---------------
  Status on_send_headers(bool end_stream);
  Status on_recv_headers(bool end_stream);
  Status on_send_data(bool end_stream);
  Status on_recv_data(bool end_stream);
  Status on_send_rst();
  Status on_recv_rst();
  /// PUSH_PROMISE reserves the *promised* stream; call on that stream's SM.
  Status on_send_push_promise();
  Status on_recv_push_promise();

 private:
  Status close_from_send_end();
  Status close_from_recv_end();

  std::uint32_t id_;
  StreamState state_;
};

}  // namespace h2r::h2
