// Wire-level constants of RFC 7540.
#pragma once

#include <cstdint>
#include <string_view>

namespace h2r::h2 {

/// The ten frame types of RFC 7540 §6 (values are the on-wire type octet).
enum class FrameType : std::uint8_t {
  kData = 0x0,
  kHeaders = 0x1,
  kPriority = 0x2,
  kRstStream = 0x3,
  kSettings = 0x4,
  kPushPromise = 0x5,
  kPing = 0x6,
  kGoaway = 0x7,
  kWindowUpdate = 0x8,
  kContinuation = 0x9,
};

std::string_view to_string(FrameType type) noexcept;

/// Frame flags (§6.*); meaning depends on the frame type.
namespace flags {
inline constexpr std::uint8_t kEndStream = 0x1;   // DATA, HEADERS
inline constexpr std::uint8_t kAck = 0x1;         // SETTINGS, PING
inline constexpr std::uint8_t kEndHeaders = 0x4;  // HEADERS, PUSH_PROMISE, CONTINUATION
inline constexpr std::uint8_t kPadded = 0x8;      // DATA, HEADERS, PUSH_PROMISE
inline constexpr std::uint8_t kPriority = 0x20;   // HEADERS
}  // namespace flags

/// Error codes (§7).
enum class ErrorCode : std::uint32_t {
  kNoError = 0x0,
  kProtocolError = 0x1,
  kInternalError = 0x2,
  kFlowControlError = 0x3,
  kSettingsTimeout = 0x4,
  kStreamClosed = 0x5,
  kFrameSizeError = 0x6,
  kRefusedStream = 0x7,
  kCancel = 0x8,
  kCompressionError = 0x9,
  kConnectError = 0xa,
  kEnhanceYourCalm = 0xb,
  kInadequateSecurity = 0xc,
  kHttp11Required = 0xd,
};

std::string_view to_string(ErrorCode code) noexcept;

/// SETTINGS parameter identifiers (§6.5.2).
enum class SettingId : std::uint16_t {
  kHeaderTableSize = 0x1,
  kEnablePush = 0x2,
  kMaxConcurrentStreams = 0x3,
  kInitialWindowSize = 0x4,
  kMaxFrameSize = 0x5,
  kMaxHeaderListSize = 0x6,
};

std::string_view to_string(SettingId id) noexcept;

/// Protocol defaults (§6.5.2, §6.9).
inline constexpr std::uint32_t kDefaultHeaderTableSize = 4096;
inline constexpr std::uint32_t kDefaultEnablePush = 1;
inline constexpr std::uint32_t kDefaultInitialWindowSize = 65'535;
inline constexpr std::uint32_t kDefaultMaxFrameSize = 16'384;
inline constexpr std::uint32_t kMaxAllowedFrameSize = 16'777'215;  // 2^24-1
inline constexpr std::int64_t kMaxWindowSize = 0x7FFF'FFFF;        // 2^31-1
inline constexpr std::uint32_t kMaxStreamId = 0x7FFF'FFFF;

/// Size of the fixed frame header (§4.1).
inline constexpr std::size_t kFrameHeaderSize = 9;

/// PING opaque payload size (§6.7).
inline constexpr std::size_t kPingPayloadSize = 8;

/// Client connection preface (§3.5).
inline constexpr std::string_view kClientPreface =
    "PRI * HTTP/2.0\r\n\r\nSM\r\n\r\n";

/// Stream-0 alias used for connection-scoped frames.
inline constexpr std::uint32_t kConnectionStreamId = 0;

/// Default weight assigned when priority information is absent (§5.3.5).
inline constexpr int kDefaultWeight = 16;

}  // namespace h2r::h2
