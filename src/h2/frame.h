// Typed in-memory frame model (RFC 7540 §4, §6).
//
// A Frame is the parsed form: type-specific payloads live in a variant, and
// padding has already been stripped/accounted. The codec (frame_codec.h)
// converts between this model and wire bytes.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "h2/constants.h"
#include "util/bytes.h"

namespace h2r::h2 {

/// Stream dependency triple carried by PRIORITY frames and prioritized
/// HEADERS (§5.3.1). `weight_field` is the on-wire octet; effective weight
/// is weight_field + 1 (1..256).
struct PriorityInfo {
  std::uint32_t dependency = 0;
  std::uint8_t weight_field = kDefaultWeight - 1;
  bool exclusive = false;

  [[nodiscard]] int weight() const noexcept { return weight_field + 1; }

  friend bool operator==(const PriorityInfo&, const PriorityInfo&) = default;
};

struct DataPayload {
  Bytes data;
  std::uint8_t pad_length = 0;  ///< padding octets requested at serialization
};

struct HeadersPayload {
  Bytes fragment;  ///< HPACK header block fragment
  std::optional<PriorityInfo> priority;
  std::uint8_t pad_length = 0;
};

struct PriorityPayload {
  PriorityInfo info;
};

struct RstStreamPayload {
  ErrorCode error = ErrorCode::kNoError;
};

struct SettingsPayload {
  /// Raw (id, value) pairs in wire order; unknown ids are preserved, as
  /// required by §6.5.2 ("must ignore" = skip, not reject).
  std::vector<std::pair<std::uint16_t, std::uint32_t>> entries;
};

struct PushPromisePayload {
  std::uint32_t promised_stream_id = 0;
  Bytes fragment;
  std::uint8_t pad_length = 0;
};

struct PingPayload {
  std::array<std::uint8_t, kPingPayloadSize> opaque{};
};

struct GoawayPayload {
  std::uint32_t last_stream_id = 0;
  ErrorCode error = ErrorCode::kNoError;
  Bytes debug_data;
};

struct WindowUpdatePayload {
  std::uint32_t increment = 0;
};

struct ContinuationPayload {
  Bytes fragment;
};

/// Frames with a type octet outside 0x0..0x9 — must be ignored (§4.1) but
/// are surfaced so probes can send them deliberately.
struct UnknownPayload {
  std::uint8_t type = 0;
  Bytes data;
};

using FramePayload =
    std::variant<DataPayload, HeadersPayload, PriorityPayload, RstStreamPayload,
                 SettingsPayload, PushPromisePayload, PingPayload, GoawayPayload,
                 WindowUpdatePayload, ContinuationPayload, UnknownPayload>;

/// One parsed HTTP/2 frame.
struct Frame {
  std::uint8_t flags = 0;
  std::uint32_t stream_id = 0;
  FramePayload payload;

  /// The frame's wire type (derived from the payload alternative).
  [[nodiscard]] FrameType type() const noexcept;

  [[nodiscard]] bool has_flag(std::uint8_t flag) const noexcept {
    return (flags & flag) != 0;
  }

  /// Typed payload access; throws std::bad_variant_access on mismatch
  /// (programmer error — check type() first for data-driven paths).
  template <typename T>
  [[nodiscard]] const T& as() const {
    return std::get<T>(payload);
  }
  template <typename T>
  [[nodiscard]] T& as() {
    return std::get<T>(payload);
  }

  template <typename T>
  [[nodiscard]] bool is() const noexcept {
    return std::holds_alternative<T>(payload);
  }

  /// One-line rendering for traces: "HEADERS(stream=1, flags=0x5, 23B)".
  [[nodiscard]] std::string describe() const;
};

// ---- Factories for the common cases (keep call sites declarative). ----

Frame make_data(std::uint32_t stream_id, Bytes data, bool end_stream);
Frame make_headers(std::uint32_t stream_id, Bytes fragment, bool end_stream,
                   bool end_headers = true,
                   std::optional<PriorityInfo> priority = std::nullopt);
Frame make_priority(std::uint32_t stream_id, PriorityInfo info);
Frame make_rst_stream(std::uint32_t stream_id, ErrorCode error);
Frame make_settings(std::vector<std::pair<SettingId, std::uint32_t>> entries);
Frame make_settings_ack();
Frame make_push_promise(std::uint32_t stream_id, std::uint32_t promised_id,
                        Bytes fragment);
Frame make_ping(std::array<std::uint8_t, kPingPayloadSize> opaque,
                bool ack = false);
Frame make_goaway(std::uint32_t last_stream_id, ErrorCode error,
                  std::string debug = {});
Frame make_window_update(std::uint32_t stream_id, std::uint32_t increment);
Frame make_continuation(std::uint32_t stream_id, Bytes fragment,
                        bool end_headers);

}  // namespace h2r::h2
