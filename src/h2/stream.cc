#include "h2/stream.h"

namespace h2r::h2 {

std::string_view to_string(StreamState state) noexcept {
  switch (state) {
    case StreamState::kIdle:
      return "idle";
    case StreamState::kReservedLocal:
      return "reserved(local)";
    case StreamState::kReservedRemote:
      return "reserved(remote)";
    case StreamState::kOpen:
      return "open";
    case StreamState::kHalfClosedLocal:
      return "half-closed(local)";
    case StreamState::kHalfClosedRemote:
      return "half-closed(remote)";
    case StreamState::kClosed:
      return "closed";
  }
  return "?";
}

Status StreamStateMachine::close_from_send_end() {
  switch (state_) {
    case StreamState::kOpen:
      state_ = StreamState::kHalfClosedLocal;
      return OkStatus();
    case StreamState::kHalfClosedRemote:
      state_ = StreamState::kClosed;
      return OkStatus();
    default:
      return InternalError("END_STREAM sent in state " +
                           std::string(to_string(state_)));
  }
}

Status StreamStateMachine::close_from_recv_end() {
  switch (state_) {
    case StreamState::kOpen:
      state_ = StreamState::kHalfClosedRemote;
      return OkStatus();
    case StreamState::kHalfClosedLocal:
      state_ = StreamState::kClosed;
      return OkStatus();
    default:
      return ProtocolViolationError("END_STREAM received in state " +
                                    std::string(to_string(state_)));
  }
}

Status StreamStateMachine::on_send_headers(bool end_stream) {
  switch (state_) {
    case StreamState::kIdle:
      state_ = StreamState::kOpen;
      break;
    case StreamState::kReservedLocal:
      // Pushed response headers: reserved(local) -> half-closed(remote).
      state_ = StreamState::kHalfClosedRemote;
      break;
    case StreamState::kOpen:
    case StreamState::kHalfClosedRemote:
      break;  // trailers
    default:
      return InternalError("HEADERS sent in state " +
                           std::string(to_string(state_)));
  }
  if (end_stream) return close_from_send_end();
  return OkStatus();
}

Status StreamStateMachine::on_recv_headers(bool end_stream) {
  switch (state_) {
    case StreamState::kIdle:
      state_ = StreamState::kOpen;
      break;
    case StreamState::kReservedRemote:
      state_ = StreamState::kHalfClosedLocal;
      break;
    case StreamState::kOpen:
    case StreamState::kHalfClosedLocal:
      break;  // trailers
    case StreamState::kClosed:
      return Status{StatusCode::kProtocolError, "HEADERS on closed stream"};
    default:
      return ProtocolViolationError("HEADERS received in state " +
                                    std::string(to_string(state_)));
  }
  if (end_stream) return close_from_recv_end();
  return OkStatus();
}

Status StreamStateMachine::on_send_data(bool end_stream) {
  if (!can_send_data()) {
    return InternalError("DATA sent in state " + std::string(to_string(state_)));
  }
  if (end_stream) return close_from_send_end();
  return OkStatus();
}

Status StreamStateMachine::on_recv_data(bool end_stream) {
  if (!can_receive_data()) {
    return Status{StatusCode::kProtocolError,
                  "DATA received in state " + std::string(to_string(state_))};
  }
  if (end_stream) return close_from_recv_end();
  return OkStatus();
}

Status StreamStateMachine::on_send_rst() {
  if (state_ == StreamState::kIdle) {
    return InternalError("RST_STREAM sent on idle stream");
  }
  state_ = StreamState::kClosed;
  return OkStatus();
}

Status StreamStateMachine::on_recv_rst() {
  if (state_ == StreamState::kIdle) {
    return ProtocolViolationError("RST_STREAM received on idle stream");
  }
  state_ = StreamState::kClosed;
  return OkStatus();
}

Status StreamStateMachine::on_send_push_promise() {
  if (state_ != StreamState::kIdle) {
    return InternalError("PUSH_PROMISE reserves non-idle stream");
  }
  state_ = StreamState::kReservedLocal;
  return OkStatus();
}

Status StreamStateMachine::on_recv_push_promise() {
  if (state_ != StreamState::kIdle) {
    return ProtocolViolationError("PUSH_PROMISE reserves non-idle stream");
  }
  state_ = StreamState::kReservedRemote;
  return OkStatus();
}

}  // namespace h2r::h2
