// SETTINGS parameter book-keeping (RFC 7540 §6.5).
//
// Each endpoint tracks two SettingsMaps: the values *it* advertised (its own
// limits) and the values the *peer* advertised (limits it must respect).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "h2/constants.h"
#include "h2/frame.h"
#include "h2/frame_view.h"
#include "util/status.h"

namespace h2r::h2 {

/// Current effective values of the six defined parameters, with RFC
/// defaults for everything never advertised.
class SettingsMap {
 public:
  SettingsMap() = default;

  /// Validates and applies one (id, value) pair. Unknown ids are recorded
  /// but otherwise ignored, as §6.5.2 requires.
  /// Errors: ENABLE_PUSH not in {0,1} (PROTOCOL_ERROR), INITIAL_WINDOW_SIZE
  /// > 2^31-1 (FLOW_CONTROL_ERROR), MAX_FRAME_SIZE outside [2^14, 2^24-1]
  /// (PROTOCOL_ERROR).
  Status apply(std::uint16_t id, std::uint32_t value);

  /// Applies every entry of a SETTINGS frame payload, in order.
  Status apply_frame(const SettingsPayload& payload);

  /// Same, straight from a zero-copy SETTINGS FrameView.
  Status apply_frame(const FrameView& view);

  [[nodiscard]] std::uint32_t header_table_size() const;
  [[nodiscard]] bool enable_push() const;
  /// nullopt = unlimited (parameter absent), per §6.5.2.
  [[nodiscard]] std::optional<std::uint32_t> max_concurrent_streams() const;
  [[nodiscard]] std::uint32_t initial_window_size() const;
  [[nodiscard]] std::uint32_t max_frame_size() const;
  /// nullopt = unlimited.
  [[nodiscard]] std::optional<std::uint32_t> max_header_list_size() const;

  /// Raw value if this id was ever advertised.
  [[nodiscard]] std::optional<std::uint32_t> raw(SettingId id) const;

  /// Entries that differ from defaults, in a stable order — what an endpoint
  /// puts into its initial SETTINGS frame.
  [[nodiscard]] std::vector<std::pair<SettingId, std::uint32_t>> to_entries() const;

 private:
  std::map<std::uint16_t, std::uint32_t> values_;
};

}  // namespace h2r::h2
