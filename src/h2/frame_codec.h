// Frame <-> bytes conversion (RFC 7540 §4.1-4.2, §6).
//
// `serialize_frame` is pure. `FrameParser` is incremental: feed it arbitrary
// byte chunks (as a transport delivers them) and poll complete frames out.
// Violations that RFC 7540 defines as connection errors (oversized frames,
// malformed fixed-size payloads, bad padding) surface as error Results.
#pragma once

#include <deque>
#include <optional>

#include "h2/frame.h"
#include "h2/frame_view.h"
#include "util/bytes.h"
#include "util/status.h"

namespace h2r::h2 {

/// Serializes one frame, including its 9-octet header, appending to @p out.
/// This is the zero-copy path: endpoints serialize straight into their
/// transport output buffer instead of materializing a per-frame vector.
/// Returns the number of octets written (the frame's wire length).
std::size_t serialize_frame_into(ByteWriter& out, const Frame& frame);

/// Writes just the 9-octet frame header (§4.1). The engine's DATA emission
/// fast path writes this and then synthesizes the payload directly into
/// @p out, skipping the intermediate Frame entirely.
void write_frame_header(ByteWriter& out, std::size_t length, FrameType type,
                        std::uint8_t flagbits, std::uint32_t stream_id);

/// Serializes one frame, including its 9-octet header.
/// Throws std::invalid_argument for unserializable model states (payload
/// larger than 2^24-1, pad >= payload+1, increments with the reserved bit).
Bytes serialize_frame(const Frame& frame);

/// Serializes a sequence of frames back-to-back.
Bytes serialize_frames(std::span<const Frame> frames);

/// Where in the inbound byte stream a parse error happened — kept by the
/// parser so the connection's error taxonomy (and the wiretap parse_error
/// event) can name the offending frame instead of just "parse error".
struct ParseErrorContext {
  /// Octet offset, from the first octet ever fed, of the frame whose
  /// header or payload failed to parse.
  std::uint64_t frame_offset = 0;
  /// Raw type octet from the offending frame header.
  std::uint8_t frame_type = 0;
  /// False when the stream died before a full 9-octet header was read
  /// (frame_type is meaningless then).
  bool type_known = false;
};

/// Incremental parser for one direction of a connection.
class FrameParser {
 public:
  /// @param max_frame_size our advertised SETTINGS_MAX_FRAME_SIZE: inbound
  ///        frames longer than this are FRAME_SIZE_ERRORs.
  explicit FrameParser(std::uint32_t max_frame_size = kDefaultMaxFrameSize);

  /// Appends transport bytes to the internal reassembly buffer.
  void feed(std::span<const std::uint8_t> bytes);

  /// Extracts the next complete frame.
  /// - nullopt: need more bytes.
  /// - Result with error: stream is poisoned (connection error); subsequent
  ///   calls keep returning the same error.
  [[nodiscard]] std::optional<Result<Frame>> next();

  /// Zero-copy variant of next(): validates the frame in place and returns
  /// a FrameView whose `body` aliases the internal buffer. The view (and
  /// any spans derived from it) is valid only until the next call to
  /// feed(), next() or next_view(). Error semantics are identical to
  /// next(): the same inputs poison the stream with the same status.
  [[nodiscard]] std::optional<Result<FrameView>> next_view();

  /// Raises the acceptable frame size (after the peer ACKs our SETTINGS).
  void set_max_frame_size(std::uint32_t size) { max_frame_size_ = size; }

  [[nodiscard]] std::size_t buffered_bytes() const noexcept { return buf_.size(); }

  /// Total octets ever fed to this parser (consumed or still buffered).
  [[nodiscard]] std::uint64_t fed_total() const noexcept { return fed_total_; }

  /// Populated once the parser poisons; empty while the stream is healthy.
  [[nodiscard]] const std::optional<ParseErrorContext>& error_context()
      const noexcept {
    return error_context_;
  }

 private:
  [[nodiscard]] Result<FrameView> parse_view(std::uint8_t type,
                                             std::uint8_t flagbits,
                                             std::uint32_t stream_id,
                                             std::span<const std::uint8_t> payload);

  std::vector<std::uint8_t> buf_;
  std::size_t consumed_ = 0;  // bytes of buf_ already parsed
  std::uint64_t fed_total_ = 0;  // octets ever fed (for error offsets)
  std::uint32_t max_frame_size_;
  std::optional<Status> poisoned_;
  std::optional<ParseErrorContext> error_context_;
};

}  // namespace h2r::h2
