// Stream priority dependency tree (RFC 7540 §5.3).
//
// Implements the full §5.3 semantics the paper's Algorithm 1 probes:
//   * dependency insertion, exclusive insertion (Fig 1 of the paper),
//   * reprioritization including the descendant-parent move rule (§5.3.3),
//   * self-dependency detection (§5.3.1: stream error PROTOCOL_ERROR),
//   * weight redistribution when a stream closes (§5.3.4),
//   * a weighted-fair scheduler: a stream receives transmission resources
//     only when no ancestor wants to send; siblings share in proportion to
//     their weights.
//
// Unknown parents create "phantom" idle nodes (the nghttp2 strategy), so
// PRIORITY frames may arrive in any order relative to HEADERS.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "h2/constants.h"
#include "h2/frame.h"
#include "util/status.h"

namespace h2r::h2 {

class PriorityTree {
 public:
  PriorityTree();

  /// Inserts (or re-declares) @p stream_id with the given priority triple.
  /// Errors with PROTOCOL_ERROR on self-dependency.
  Status declare(std::uint32_t stream_id, const PriorityInfo& info);

  /// Inserts with default priority: child of the root, weight 16 (§5.3.5).
  Status declare_default(std::uint32_t stream_id);

  /// Applies a PRIORITY frame to an existing or phantom stream (§5.3.3).
  Status reprioritize(std::uint32_t stream_id, const PriorityInfo& info);

  /// Removes a closed stream, re-parenting children with proportionally
  /// redistributed weights (§5.3.4).
  void remove(std::uint32_t stream_id);

  [[nodiscard]] bool contains(std::uint32_t stream_id) const;
  [[nodiscard]] std::uint32_t parent_of(std::uint32_t stream_id) const;
  [[nodiscard]] int weight_of(std::uint32_t stream_id) const;
  /// Children in insertion order (most informative order for tests).
  [[nodiscard]] std::vector<std::uint32_t> children_of(std::uint32_t stream_id) const;
  /// True when @p ancestor lies on the root path of @p stream_id.
  [[nodiscard]] bool is_ancestor(std::uint32_t ancestor,
                                 std::uint32_t stream_id) const;
  [[nodiscard]] std::size_t size() const noexcept { return nodes_.size() - 1; }

  /// Chooses the stream to serve next.
  ///
  /// @param wants_data predicate: does this stream have queued octets *and*
  ///        an open flow-control path?
  /// @returns 0 when nothing is eligible.
  ///
  /// Resource rule: descend from the root; at each level pick, among the
  /// children whose subtree contains an eager stream, the one with the
  /// smallest weighted virtual time; stop at the first eager node. Call
  /// `account` afterwards to charge the transmission.
  [[nodiscard]] std::uint32_t next_stream(
      const std::function<bool(std::uint32_t)>& wants_data) const;

  /// Non-gated variant: a node with pending data *competes* with its eager
  /// children instead of preempting them, so every stream progresses
  /// concurrently while ancestors still receive the larger share. This
  /// models the wild servers that honour priority in stream *completion*
  /// order but not in first-byte order (§V-E1's "last DATA frame" rule).
  [[nodiscard]] std::uint32_t next_stream_fair(
      const std::function<bool(std::uint32_t)>& wants_data) const;

  /// Charges @p octets of service to @p stream_id for weighted fairness.
  void account(std::uint32_t stream_id, std::size_t octets);

 private:
  struct Node {
    std::uint32_t parent = 0;
    int weight = kDefaultWeight;
    std::vector<std::uint32_t> children;  // insertion order
    double vtime = 0;       // weighted service of the whole subtree
    double self_vtime = 0;  // weighted service of this node's own stream
  };

  Node& node(std::uint32_t id);
  [[nodiscard]] const Node& node(std::uint32_t id) const;
  void ensure_exists(std::uint32_t id);
  void detach(std::uint32_t id);
  void attach(std::uint32_t id, std::uint32_t parent, bool exclusive);
  [[nodiscard]] bool subtree_wants(
      std::uint32_t id,
      const std::function<bool(std::uint32_t)>& wants_data) const;

  std::map<std::uint32_t, Node> nodes_;  // includes the root, id 0
};

}  // namespace h2r::h2
