// Non-owning view of one parsed frame (RFC 7540 §4.1-4.2, §6).
//
// `FrameParser::next_view()` validates a frame in place and returns a
// FrameView whose `body` span aliases the parser's reassembly buffer:
// small fixed fields (priority info, error codes, window increments) are
// decoded eagerly, variable-length payloads (DATA bytes, header-block
// fragments, GOAWAY debug data) stay where the transport wrote them. The
// engine and client consume frames through this path so a 512 KiB DATA
// frame costs a span, not a heap copy. `materialize()` converts a view
// into the classic owning `Frame` — bit-identical to what
// `FrameParser::next()` has always produced — for callers that must keep
// the frame beyond the view's lifetime (event logs, tests).
#pragma once

#include <optional>
#include <span>

#include "h2/frame.h"

namespace h2r::h2 {

struct FrameView {
  std::uint8_t raw_type = 0;
  std::uint8_t flags = 0;
  std::uint32_t stream_id = 0;
  /// Payload length field from the 9-octet header — the flow-controlled
  /// size for DATA, including any padding that `body` has stripped.
  std::uint32_t payload_wire_octets = 0;
  /// Type-specific variable-length payload, unpadded, aliasing the parse
  /// buffer: DATA bytes, HEADERS/PUSH_PROMISE/CONTINUATION header-block
  /// fragment (after the fixed prefix), raw SETTINGS entries, PING opaque
  /// octets, GOAWAY debug data, or an unknown frame's payload. Valid only
  /// until the parser's next feed()/next()/next_view() call.
  std::span<const std::uint8_t> body;

  std::optional<PriorityInfo> priority;   ///< PRIORITY, HEADERS+PRIORITY
  std::uint32_t promised_stream_id = 0;   ///< PUSH_PROMISE
  std::uint32_t last_stream_id = 0;       ///< GOAWAY
  ErrorCode error = ErrorCode::kNoError;  ///< RST_STREAM, GOAWAY
  std::uint32_t increment = 0;            ///< WINDOW_UPDATE

  [[nodiscard]] FrameType type() const noexcept {
    return static_cast<FrameType>(raw_type);
  }
  [[nodiscard]] bool known_type() const noexcept {
    return raw_type <= static_cast<std::uint8_t>(FrameType::kContinuation);
  }
  [[nodiscard]] bool has_flag(std::uint8_t bit) const noexcept {
    return (flags & bit) != 0;
  }

  [[nodiscard]] std::size_t settings_entry_count() const noexcept {
    return body.size() / 6;
  }
  /// (identifier, value) of the i-th SETTINGS entry; caller bounds-checks
  /// against settings_entry_count().
  [[nodiscard]] std::pair<std::uint16_t, std::uint32_t> setting_at(
      std::size_t i) const noexcept {
    const std::uint8_t* p = body.data() + i * 6;
    const auto id = static_cast<std::uint16_t>((p[0] << 8) | p[1]);
    const std::uint32_t value = (static_cast<std::uint32_t>(p[2]) << 24) |
                                (static_cast<std::uint32_t>(p[3]) << 16) |
                                (static_cast<std::uint32_t>(p[4]) << 8) |
                                static_cast<std::uint32_t>(p[5]);
    return {id, value};
  }
};

/// Owning Frame built from a view — the copies happen here, and only for
/// callers that ask.
[[nodiscard]] Frame materialize(const FrameView& view);

}  // namespace h2r::h2
