#include "h2/settings.h"

namespace h2r::h2 {

Status SettingsMap::apply(std::uint16_t id, std::uint32_t value) {
  switch (static_cast<SettingId>(id)) {
    case SettingId::kEnablePush:
      if (value > 1) {
        return ProtocolViolationError("SETTINGS_ENABLE_PUSH must be 0 or 1");
      }
      break;
    case SettingId::kInitialWindowSize:
      if (value > static_cast<std::uint32_t>(kMaxWindowSize)) {
        return FlowControlViolationError(
            "SETTINGS_INITIAL_WINDOW_SIZE exceeds 2^31-1");
      }
      break;
    case SettingId::kMaxFrameSize:
      if (value < kDefaultMaxFrameSize || value > kMaxAllowedFrameSize) {
        return ProtocolViolationError(
            "SETTINGS_MAX_FRAME_SIZE outside [2^14, 2^24-1]");
      }
      break;
    default:
      break;  // unknown or unconstrained ids: record as-is
  }
  values_[id] = value;
  return OkStatus();
}

Status SettingsMap::apply_frame(const SettingsPayload& payload) {
  for (const auto& [id, value] : payload.entries) {
    H2R_RETURN_IF_ERROR(apply(id, value));
  }
  return OkStatus();
}

Status SettingsMap::apply_frame(const FrameView& view) {
  for (std::size_t i = 0; i < view.settings_entry_count(); ++i) {
    const auto [id, value] = view.setting_at(i);
    H2R_RETURN_IF_ERROR(apply(id, value));
  }
  return OkStatus();
}

std::uint32_t SettingsMap::header_table_size() const {
  return raw(SettingId::kHeaderTableSize).value_or(kDefaultHeaderTableSize);
}

bool SettingsMap::enable_push() const {
  return raw(SettingId::kEnablePush).value_or(kDefaultEnablePush) == 1;
}

std::optional<std::uint32_t> SettingsMap::max_concurrent_streams() const {
  return raw(SettingId::kMaxConcurrentStreams);
}

std::uint32_t SettingsMap::initial_window_size() const {
  return raw(SettingId::kInitialWindowSize).value_or(kDefaultInitialWindowSize);
}

std::uint32_t SettingsMap::max_frame_size() const {
  return raw(SettingId::kMaxFrameSize).value_or(kDefaultMaxFrameSize);
}

std::optional<std::uint32_t> SettingsMap::max_header_list_size() const {
  return raw(SettingId::kMaxHeaderListSize);
}

std::optional<std::uint32_t> SettingsMap::raw(SettingId id) const {
  auto it = values_.find(static_cast<std::uint16_t>(id));
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::vector<std::pair<SettingId, std::uint32_t>> SettingsMap::to_entries() const {
  std::vector<std::pair<SettingId, std::uint32_t>> out;
  for (const auto& [id, value] : values_) {
    out.emplace_back(static_cast<SettingId>(id), value);
  }
  return out;
}

}  // namespace h2r::h2
