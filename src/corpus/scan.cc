#include "corpus/scan.h"

#include <algorithm>
#include <atomic>
#include <string_view>
#include <thread>

#include "core/session.h"
#include "net/transport.h"
#include "trace/annotate.h"
#include "trace/event.h"
#include "trace/recorder.h"
#include "util/rng.h"

namespace h2r::corpus {
namespace {

using core::ProbeKind;
using core::SmallWindowOutcome;
using core::Target;
using core::UpdateReaction;

// The coalesced scheduler below substitutes ProbeSession for exactly the
// probes the trait marks shareable; everything else stays on fresh
// connections. Keep the two in sync.
static_assert(!core::needs_fresh_connection(ProbeKind::kSettings));
static_assert(!core::needs_fresh_connection(ProbeKind::kPriority));
static_assert(!core::needs_fresh_connection(ProbeKind::kSelfDependency));
static_assert(!core::needs_fresh_connection(ProbeKind::kPush));
static_assert(!core::needs_fresh_connection(ProbeKind::kHpackRatio));
static_assert(core::needs_fresh_connection(ProbeKind::kNegotiation));
static_assert(core::needs_fresh_connection(ProbeKind::kDataFrameControl));
static_assert(core::needs_fresh_connection(ProbeKind::kZeroWindowHeaders));
static_assert(core::needs_fresh_connection(ProbeKind::kWindowUpdateReactions));

/// Per-worker reusable scratch: one wiretap buffer and one client/engine
/// pair serve every site the worker scans, rewound between sites instead
/// of reallocated.
struct WorkerContext {
  trace::VectorRecorder recorder;
  core::SessionScratch session;

  void reset() { recorder.clear(); }
};

/// FNV-1a 64. Hashing the host (instead of the scan index) makes a site's
/// fault stream a pure function of (fault_seed, host) — independent of
/// H2R_THREADS, scan order, and the subsample scale.
std::uint64_t fnv1a64(std::string_view s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

/// Families whose HPACK ratio CDFs the paper plots (Figures 4 and 5).
bool hpack_family_of_interest(const std::string& family) {
  return family == "gse" || family == "nginx" || family == "tengine" ||
         family == "litespeed" || family == "ideawebserver" ||
         family == "tengine-aserver";
}

/// Per-worker accumulator, merged under a single lock at the end.
struct Partial {
  ScanReport r;

  void observe(const SiteSpec& spec, const ScanOptions& opts,
               WorkerContext& ctx) {
    ctx.reset();
    Target target = spec.to_target();

    // One ledger per site: every connection any probe opens against this
    // target folds its outcome here, and the final-attempt flags classify
    // the site below.
    net::ExchangeLedger ledger;
    if (opts.fault_injection) {
      std::uint64_t mix = opts.fault_seed ^ fnv1a64(spec.host);
      target.faults.enabled = true;
      target.faults.seed = splitmix64(mix);
      target.faults.probability =
          net::fault_probability(target.path.loss_rate, opts.fault_floor);
      target.ledger = &ledger;
    }

    // The probe sequence bails out early on dead or non-h2 sites, so the
    // wiretap wraps it: record, run, then always annotate + fold.
    const bool wiretap = opts.wiretap_metrics || opts.wiretap_traces;
    trace::VectorRecorder& recorder = ctx.recorder;
    if (wiretap) target.recorder = &recorder;

    // Sequence detection: live when it can be the sink itself, replayed
    // from the retained trace when the wiretap already owns the sink. The
    // two paths produce identical reports (tests/detector_test.cc pins
    // replay == live). Either way detection rides a per-connection sink,
    // which — like the wiretap — keeps the scan on the sequential path.
    std::optional<trace::SequenceDetector> detector;
    if (opts.detect_attacks) {
      detector.emplace(opts.detector_thresholds);
      if (!wiretap) target.recorder = &*detector;
    }

    run_probes(target, spec, opts, ctx);

    if (detector) {
      if (wiretap) detector->observe_all(recorder.events());
      detector->finish();
      r.attack_detections.merge(detector->report());
    }

    // Exactly one outcome class per site (precedence: a deadline outranks a
    // disconnect outranks a truncation; anything clean that needed retries
    // is retried_ok). A lockstep scan books every site as sites_ok.
    if (ledger.final_deadline) {
      ++r.sites_timed_out;
    } else if (ledger.final_disconnect) {
      ++r.sites_disconnected;
    } else if (ledger.final_truncated) {
      ++r.sites_truncated;
    } else if (ledger.retries > 0) {
      ++r.sites_retried_ok;
    } else {
      ++r.sites_ok;
    }
    r.fault_exchanges += ledger.exchanges;
    r.fault_injected += ledger.faults_injected;
    r.fault_retries += ledger.retries;
    r.fault_deadline_hits += ledger.deadline_hits;
    r.fault_backoff_ms += ledger.backoff_ms;

    if (wiretap) {
      trace::annotate_violations(recorder.events());
      trace::consume(r.wire_metrics, recorder.events());
      trace::consume(r.wire_metrics_by_family[spec.family], recorder.events());
      if (opts.wiretap_traces) {
        r.site_traces[spec.host] = trace::to_jsonl(recorder.events(), spec.host);
      }
    }
  }

  void run_probes(const Target& target, const SiteSpec& spec,
                  const ScanOptions& opts, WorkerContext& ctx) {
    // Faulted probes are re-run on fresh connections (bounded by
    // opts.retry); with no ledger the wrapper collapses to one plain call,
    // so the lockstep path is untouched.
    auto retried = [&](auto probe) {
      return core::probe_with_retry(target, opts.retry, probe);
    };

    const auto negotiation = core::probe_negotiation(target);
    if (negotiation.npn_h2) ++r.npn_sites;
    if (negotiation.alpn_h2) ++r.alpn_sites;
    if (!negotiation.h2_established) return;

    // Coalesced scheduling: the shareable probes run as streams of one
    // connection (core::ProbeSession). Fault injection keeps the
    // sequential path — its retry semantics are per fresh connection — as
    // does the wiretap, whose frame record legitimately depends on the
    // connection layout. Report-identity between the two paths is asserted
    // by tests/scan_coalesce_test.cc.
    std::optional<core::ProbeSession> session;
    if (opts.coalesce && !target.faults.enabled &&
        target.recorder == nullptr) {
      const core::ProbeSession::Options session_opts{
          .hpack_h = opts.hpack_h,
          .expect_hpack =
              opts.probe_hpack && hpack_family_of_interest(spec.family)};
      session.emplace(target, session_opts, &ctx.session);
    }

    const auto settings = session
                              ? session->settings()
                              : retried([&] { return core::probe_settings(target); });
    if (!settings.headers_received) return;
    ++r.responding_sites;
    ++r.server_counts[settings.server_header];

    if (opts.probe_settings) {
      if (settings.settings_entry_count == 0) {
        r.initial_window_size.add(kNullValue);
        r.max_frame_size.add(kNullValue);
        r.max_header_list_size.add(kNullValue);
        r.max_concurrent_streams.add(kNullValue);
      } else {
        r.initial_window_size.add(
            settings.initial_window_size
                ? static_cast<std::int64_t>(*settings.initial_window_size)
                : kUnlimitedValue);
        r.max_frame_size.add(
            settings.max_frame_size
                ? static_cast<std::int64_t>(*settings.max_frame_size)
                : kUnlimitedValue);
        r.max_header_list_size.add(
            settings.max_header_list_size
                ? static_cast<std::int64_t>(*settings.max_header_list_size)
                : kUnlimitedValue);
        r.max_concurrent_streams.add(
            settings.max_concurrent_streams
                ? static_cast<std::int64_t>(*settings.max_concurrent_streams)
                : kUnlimitedValue);
      }
    }

    if (opts.probe_flow_control) {
      const auto sframe =
          retried([&] { return core::probe_data_frame_control(target); });
      switch (sframe.outcome) {
        case SmallWindowOutcome::kRespectsWindow:
          ++r.sframe_respecting;
          break;
        case SmallWindowOutcome::kZeroLengthData:
          ++r.sframe_zero_length;
          break;
        case SmallWindowOutcome::kNoResponse:
          ++r.sframe_no_response;
          if (spec.family == "litespeed") ++r.sframe_no_response_litespeed;
          break;
        case SmallWindowOutcome::kOversized:
          break;
      }
      if (retried([&] { return core::probe_zero_window_headers(target); })
              .headers_received) {
        ++r.zero_window_headers_ok;
      }
      const auto wu =
          retried([&] { return core::probe_window_update_reactions(target); });
      switch (wu.zero_on_stream) {
        case UpdateReaction::kRstStream:
          ++r.zero_wu_rst;
          break;
        case UpdateReaction::kIgnored:
          ++r.zero_wu_ignore;
          break;
        case UpdateReaction::kGoaway:
          ++r.zero_wu_goaway;
          break;
        case UpdateReaction::kGoawayWithDebug:
          ++r.zero_wu_goaway_debug;
          break;
      }
      if (wu.zero_on_connection != UpdateReaction::kIgnored) {
        ++r.zero_wu_conn_error;
      }
      if (wu.large_on_connection == UpdateReaction::kGoaway) {
        ++r.large_wu_conn_goaway;
      }
      if (wu.large_on_stream == UpdateReaction::kRstStream) {
        ++r.large_wu_stream_rst;
      } else {
        ++r.large_wu_stream_ignore;
      }
    }

    if (opts.probe_priority) {
      const auto prio =
          session ? session->priority()
                  : retried([&] { return core::probe_priority_mechanism(target); });
      if (prio.ran) {
        if (prio.pass_by_last_data) ++r.priority_pass_last;
        if (prio.pass_by_first_data) ++r.priority_pass_first;
        if (prio.pass_by_both) ++r.priority_pass_both;
      }
      const auto self_dep =
          session ? session->self_dependency()
                  : retried([&] { return core::probe_self_dependency(target); });
      switch (self_dep.reaction) {
        case UpdateReaction::kRstStream:
          ++r.self_dep_rst;
          break;
        case UpdateReaction::kGoaway:
        case UpdateReaction::kGoawayWithDebug:
          ++r.self_dep_goaway;
          break;
        case UpdateReaction::kIgnored:
          ++r.self_dep_ignore;
          break;
      }
    }

    if (opts.probe_push) {
      const auto push =
          session ? session->push()
                  : retried([&] { return core::probe_server_push(target); });
      if (push.push_received) {
        r.push_hosts.push_back(spec.host);
      }
    }

    if (opts.probe_hpack && hpack_family_of_interest(spec.family)) {
      const auto hpack =
          session ? session->hpack_ratio()
                  : retried([&] { return core::probe_hpack_ratio(target, opts.hpack_h); });
      if (hpack.ran) {
        if (hpack.ratio > 1.0) {
          ++r.hpack_filtered_out;  // the paper drops r > 1 (§V-G)
        } else {
          r.hpack_ratio_by_family[spec.family].push_back(hpack.ratio);
        }
      }
    }
  }

};

}  // namespace

std::size_t ScanReport::hpack_sample_size() const {
  std::size_t n = 0;
  for (const auto& [family, ratios] : hpack_ratio_by_family) n += ratios.size();
  return n;
}

void ScanReport::merge(const ScanReport& other) {
  npn_sites += other.npn_sites;
  alpn_sites += other.alpn_sites;
  responding_sites += other.responding_sites;
  for (const auto& [name, count] : other.server_counts) {
    server_counts[name] += count;
  }
  for (const auto& [v, c] : other.initial_window_size.counts()) {
    initial_window_size.add(v, c);
  }
  for (const auto& [v, c] : other.max_frame_size.counts()) {
    max_frame_size.add(v, c);
  }
  for (const auto& [v, c] : other.max_header_list_size.counts()) {
    max_header_list_size.add(v, c);
  }
  for (const auto& [v, c] : other.max_concurrent_streams.counts()) {
    max_concurrent_streams.add(v, c);
  }
  sframe_respecting += other.sframe_respecting;
  sframe_zero_length += other.sframe_zero_length;
  sframe_no_response += other.sframe_no_response;
  sframe_no_response_litespeed += other.sframe_no_response_litespeed;
  zero_window_headers_ok += other.zero_window_headers_ok;
  zero_wu_rst += other.zero_wu_rst;
  zero_wu_ignore += other.zero_wu_ignore;
  zero_wu_goaway += other.zero_wu_goaway;
  zero_wu_goaway_debug += other.zero_wu_goaway_debug;
  zero_wu_conn_error += other.zero_wu_conn_error;
  large_wu_conn_goaway += other.large_wu_conn_goaway;
  large_wu_stream_rst += other.large_wu_stream_rst;
  large_wu_stream_ignore += other.large_wu_stream_ignore;
  priority_pass_last += other.priority_pass_last;
  priority_pass_first += other.priority_pass_first;
  priority_pass_both += other.priority_pass_both;
  self_dep_rst += other.self_dep_rst;
  self_dep_goaway += other.self_dep_goaway;
  self_dep_ignore += other.self_dep_ignore;
  push_hosts.insert(push_hosts.end(), other.push_hosts.begin(),
                    other.push_hosts.end());
  for (const auto& [family, ratios] : other.hpack_ratio_by_family) {
    auto& dst = hpack_ratio_by_family[family];
    dst.insert(dst.end(), ratios.begin(), ratios.end());
  }
  hpack_filtered_out += other.hpack_filtered_out;
  sites_ok += other.sites_ok;
  sites_retried_ok += other.sites_retried_ok;
  sites_truncated += other.sites_truncated;
  sites_disconnected += other.sites_disconnected;
  sites_timed_out += other.sites_timed_out;
  fault_exchanges += other.fault_exchanges;
  fault_injected += other.fault_injected;
  fault_retries += other.fault_retries;
  fault_deadline_hits += other.fault_deadline_hits;
  fault_backoff_ms += other.fault_backoff_ms;
  wire_metrics.merge(other.wire_metrics);
  for (const auto& [family, metrics] : other.wire_metrics_by_family) {
    wire_metrics_by_family[family].merge(metrics);
  }
  attack_detections.merge(other.attack_detections);
  // Each site appears exactly once across all workers, so inserting the
  // per-site traces into the ordered map reassembles the same final
  // contents for any H2R_THREADS.
  for (const auto& [host, jsonl] : other.site_traces) {
    site_traces.emplace(host, jsonl);
  }
}

ScanReport scan_population(const Population& population,
                           const ScanOptions& options) {
  int threads = options.threads > 0
                    ? options.threads
                    : static_cast<int>(std::max(
                          1u, std::thread::hardware_concurrency()));
  // No point spinning up more workers than there are sites to pull.
  threads = static_cast<int>(std::min<std::size_t>(
      static_cast<std::size_t>(threads),
      std::max<std::size_t>(1, population.sites.size())));

  std::vector<Partial> partials(static_cast<std::size_t>(threads));
  std::atomic<std::size_t> cursor{0};
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      // Like the paper's scanner: each worker pulls the next unscanned
      // site, reusing its own scratch endpoints site after site.
      WorkerContext ctx;
      for (;;) {
        const std::size_t i = cursor.fetch_add(1);
        if (i >= population.sites.size()) return;
        partials[static_cast<std::size_t>(t)].observe(population.sites[i],
                                                      options, ctx);
      }
    });
  }
  for (auto& th : pool) th.join();

  ScanReport total;
  total.epoch = population.epoch;
  total.total_scanned = population.total_scanned;
  for (const auto& p : partials) total.merge(p.r);
  total.distinct_server_kinds = total.server_counts.size();
  std::sort(total.push_hosts.begin(), total.push_hosts.end());
  // Which worker saw which site depends on scheduling; sorting the ratio
  // samples makes the report bitwise independent of the thread count (all
  // consumers — CDFs, quantiles, fractions — are order-agnostic anyway).
  for (auto& [family, ratios] : total.hpack_ratio_by_family) {
    std::sort(ratios.begin(), ratios.end());
  }
  return total;
}

}  // namespace h2r::corpus
