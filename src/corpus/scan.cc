#include "corpus/scan.h"

#include <algorithm>
#include <atomic>
#include <string_view>
#include <thread>

#include "net/transport.h"
#include "trace/annotate.h"
#include "trace/event.h"
#include "trace/recorder.h"
#include "util/rng.h"

namespace h2r::corpus {
namespace {

using core::SmallWindowOutcome;
using core::Target;
using core::UpdateReaction;

/// FNV-1a 64. Hashing the host (instead of the scan index) makes a site's
/// fault stream a pure function of (fault_seed, host) — independent of
/// H2R_THREADS, scan order, and the subsample scale.
std::uint64_t fnv1a64(std::string_view s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

/// Families whose HPACK ratio CDFs the paper plots (Figures 4 and 5).
bool hpack_family_of_interest(const std::string& family) {
  return family == "gse" || family == "nginx" || family == "tengine" ||
         family == "litespeed" || family == "ideawebserver" ||
         family == "tengine-aserver";
}

/// Per-worker accumulator, merged under a single lock at the end.
struct Partial {
  ScanReport r;

  void observe(const SiteSpec& spec, const ScanOptions& opts) {
    Target target = spec.to_target();

    // One ledger per site: every connection any probe opens against this
    // target folds its outcome here, and the final-attempt flags classify
    // the site below.
    net::ExchangeLedger ledger;
    if (opts.fault_injection) {
      std::uint64_t mix = opts.fault_seed ^ fnv1a64(spec.host);
      target.faults.enabled = true;
      target.faults.seed = splitmix64(mix);
      target.faults.probability =
          net::fault_probability(target.path.loss_rate, opts.fault_floor);
      target.ledger = &ledger;
    }

    // The probe sequence bails out early on dead or non-h2 sites, so the
    // wiretap wraps it: record, run, then always annotate + fold.
    const bool wiretap = opts.wiretap_metrics || opts.wiretap_traces;
    trace::VectorRecorder recorder;
    if (wiretap) target.recorder = &recorder;

    run_probes(target, spec, opts);

    // Exactly one outcome class per site (precedence: a deadline outranks a
    // disconnect outranks a truncation; anything clean that needed retries
    // is retried_ok). A lockstep scan books every site as sites_ok.
    if (ledger.final_deadline) {
      ++r.sites_timed_out;
    } else if (ledger.final_disconnect) {
      ++r.sites_disconnected;
    } else if (ledger.final_truncated) {
      ++r.sites_truncated;
    } else if (ledger.retries > 0) {
      ++r.sites_retried_ok;
    } else {
      ++r.sites_ok;
    }
    r.fault_exchanges += ledger.exchanges;
    r.fault_injected += ledger.faults_injected;
    r.fault_retries += ledger.retries;
    r.fault_deadline_hits += ledger.deadline_hits;
    r.fault_backoff_ms += ledger.backoff_ms;

    if (wiretap) {
      trace::annotate_violations(recorder.events());
      trace::consume(r.wire_metrics, recorder.events());
      trace::consume(r.wire_metrics_by_family[spec.family], recorder.events());
      if (opts.wiretap_traces) {
        r.site_traces[spec.host] = trace::to_jsonl(recorder.events(), spec.host);
      }
    }
  }

  void run_probes(const Target& target, const SiteSpec& spec,
                  const ScanOptions& opts) {
    // Faulted probes are re-run on fresh connections (bounded by
    // opts.retry); with no ledger the wrapper collapses to one plain call,
    // so the lockstep path is untouched.
    auto retried = [&](auto probe) {
      return core::probe_with_retry(target, opts.retry, probe);
    };

    const auto negotiation = core::probe_negotiation(target);
    if (negotiation.npn_h2) ++r.npn_sites;
    if (negotiation.alpn_h2) ++r.alpn_sites;
    if (!negotiation.h2_established) return;

    const auto settings =
        retried([&] { return core::probe_settings(target); });
    if (!settings.headers_received) return;
    ++r.responding_sites;
    ++r.server_counts[settings.server_header];

    if (opts.probe_settings) {
      if (settings.settings_entry_count == 0) {
        r.initial_window_size.add(kNullValue);
        r.max_frame_size.add(kNullValue);
        r.max_header_list_size.add(kNullValue);
        r.max_concurrent_streams.add(kNullValue);
      } else {
        r.initial_window_size.add(
            settings.initial_window_size
                ? static_cast<std::int64_t>(*settings.initial_window_size)
                : kUnlimitedValue);
        r.max_frame_size.add(
            settings.max_frame_size
                ? static_cast<std::int64_t>(*settings.max_frame_size)
                : kUnlimitedValue);
        r.max_header_list_size.add(
            settings.max_header_list_size
                ? static_cast<std::int64_t>(*settings.max_header_list_size)
                : kUnlimitedValue);
        r.max_concurrent_streams.add(
            settings.max_concurrent_streams
                ? static_cast<std::int64_t>(*settings.max_concurrent_streams)
                : kUnlimitedValue);
      }
    }

    if (opts.probe_flow_control) {
      const auto sframe =
          retried([&] { return core::probe_data_frame_control(target); });
      switch (sframe.outcome) {
        case SmallWindowOutcome::kRespectsWindow:
          ++r.sframe_respecting;
          break;
        case SmallWindowOutcome::kZeroLengthData:
          ++r.sframe_zero_length;
          break;
        case SmallWindowOutcome::kNoResponse:
          ++r.sframe_no_response;
          if (spec.family == "litespeed") ++r.sframe_no_response_litespeed;
          break;
        case SmallWindowOutcome::kOversized:
          break;
      }
      if (retried([&] { return core::probe_zero_window_headers(target); })
              .headers_received) {
        ++r.zero_window_headers_ok;
      }
      const auto wu =
          retried([&] { return core::probe_window_update_reactions(target); });
      switch (wu.zero_on_stream) {
        case UpdateReaction::kRstStream:
          ++r.zero_wu_rst;
          break;
        case UpdateReaction::kIgnored:
          ++r.zero_wu_ignore;
          break;
        case UpdateReaction::kGoaway:
          ++r.zero_wu_goaway;
          break;
        case UpdateReaction::kGoawayWithDebug:
          ++r.zero_wu_goaway_debug;
          break;
      }
      if (wu.zero_on_connection != UpdateReaction::kIgnored) {
        ++r.zero_wu_conn_error;
      }
      if (wu.large_on_connection == UpdateReaction::kGoaway) {
        ++r.large_wu_conn_goaway;
      }
      if (wu.large_on_stream == UpdateReaction::kRstStream) {
        ++r.large_wu_stream_rst;
      } else {
        ++r.large_wu_stream_ignore;
      }
    }

    if (opts.probe_priority) {
      const auto prio =
          retried([&] { return core::probe_priority_mechanism(target); });
      if (prio.ran) {
        if (prio.pass_by_last_data) ++r.priority_pass_last;
        if (prio.pass_by_first_data) ++r.priority_pass_first;
        if (prio.pass_by_both) ++r.priority_pass_both;
      }
      switch (retried([&] { return core::probe_self_dependency(target); })
                  .reaction) {
        case UpdateReaction::kRstStream:
          ++r.self_dep_rst;
          break;
        case UpdateReaction::kGoaway:
        case UpdateReaction::kGoawayWithDebug:
          ++r.self_dep_goaway;
          break;
        case UpdateReaction::kIgnored:
          ++r.self_dep_ignore;
          break;
      }
    }

    if (opts.probe_push) {
      if (retried([&] { return core::probe_server_push(target); })
              .push_received) {
        r.push_hosts.push_back(spec.host);
      }
    }

    if (opts.probe_hpack && hpack_family_of_interest(spec.family)) {
      const auto hpack =
          retried([&] { return core::probe_hpack_ratio(target, opts.hpack_h); });
      if (hpack.ran) {
        if (hpack.ratio > 1.0) {
          ++r.hpack_filtered_out;  // the paper drops r > 1 (§V-G)
        } else {
          r.hpack_ratio_by_family[spec.family].push_back(hpack.ratio);
        }
      }
    }
  }

  void merge_into(ScanReport& total) const {
    total.npn_sites += r.npn_sites;
    total.alpn_sites += r.alpn_sites;
    total.responding_sites += r.responding_sites;
    for (const auto& [name, count] : r.server_counts) {
      total.server_counts[name] += count;
    }
    for (const auto& [v, c] : r.initial_window_size.counts()) {
      total.initial_window_size.add(v, c);
    }
    for (const auto& [v, c] : r.max_frame_size.counts()) {
      total.max_frame_size.add(v, c);
    }
    for (const auto& [v, c] : r.max_header_list_size.counts()) {
      total.max_header_list_size.add(v, c);
    }
    for (const auto& [v, c] : r.max_concurrent_streams.counts()) {
      total.max_concurrent_streams.add(v, c);
    }
    total.sframe_respecting += r.sframe_respecting;
    total.sframe_zero_length += r.sframe_zero_length;
    total.sframe_no_response += r.sframe_no_response;
    total.sframe_no_response_litespeed += r.sframe_no_response_litespeed;
    total.zero_window_headers_ok += r.zero_window_headers_ok;
    total.zero_wu_rst += r.zero_wu_rst;
    total.zero_wu_ignore += r.zero_wu_ignore;
    total.zero_wu_goaway += r.zero_wu_goaway;
    total.zero_wu_goaway_debug += r.zero_wu_goaway_debug;
    total.zero_wu_conn_error += r.zero_wu_conn_error;
    total.large_wu_conn_goaway += r.large_wu_conn_goaway;
    total.large_wu_stream_rst += r.large_wu_stream_rst;
    total.large_wu_stream_ignore += r.large_wu_stream_ignore;
    total.priority_pass_last += r.priority_pass_last;
    total.priority_pass_first += r.priority_pass_first;
    total.priority_pass_both += r.priority_pass_both;
    total.self_dep_rst += r.self_dep_rst;
    total.self_dep_goaway += r.self_dep_goaway;
    total.self_dep_ignore += r.self_dep_ignore;
    total.push_hosts.insert(total.push_hosts.end(), r.push_hosts.begin(),
                            r.push_hosts.end());
    for (const auto& [family, ratios] : r.hpack_ratio_by_family) {
      auto& dst = total.hpack_ratio_by_family[family];
      dst.insert(dst.end(), ratios.begin(), ratios.end());
    }
    total.hpack_filtered_out += r.hpack_filtered_out;
    total.sites_ok += r.sites_ok;
    total.sites_retried_ok += r.sites_retried_ok;
    total.sites_truncated += r.sites_truncated;
    total.sites_disconnected += r.sites_disconnected;
    total.sites_timed_out += r.sites_timed_out;
    total.fault_exchanges += r.fault_exchanges;
    total.fault_injected += r.fault_injected;
    total.fault_retries += r.fault_retries;
    total.fault_deadline_hits += r.fault_deadline_hits;
    total.fault_backoff_ms += r.fault_backoff_ms;
    total.wire_metrics.merge(r.wire_metrics);
    for (const auto& [family, metrics] : r.wire_metrics_by_family) {
      total.wire_metrics_by_family[family].merge(metrics);
    }
    // Each site appears exactly once across all workers, so inserting the
    // per-site traces into the ordered map reassembles the same final
    // contents for any H2R_THREADS.
    for (const auto& [host, jsonl] : r.site_traces) {
      total.site_traces.emplace(host, jsonl);
    }
  }
};

}  // namespace

std::size_t ScanReport::hpack_sample_size() const {
  std::size_t n = 0;
  for (const auto& [family, ratios] : hpack_ratio_by_family) n += ratios.size();
  return n;
}

ScanReport scan_population(const Population& population,
                           const ScanOptions& options) {
  const int threads = options.threads > 0
                          ? options.threads
                          : static_cast<int>(std::max(
                                1u, std::thread::hardware_concurrency()));

  std::vector<Partial> partials(static_cast<std::size_t>(threads));
  std::atomic<std::size_t> cursor{0};
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      // Like the paper's scanner: each worker pulls the next unscanned site.
      for (;;) {
        const std::size_t i = cursor.fetch_add(1);
        if (i >= population.sites.size()) return;
        partials[static_cast<std::size_t>(t)].observe(population.sites[i],
                                                      options);
      }
    });
  }
  for (auto& th : pool) th.join();

  ScanReport total;
  total.epoch = population.epoch;
  total.total_scanned = population.total_scanned;
  for (const auto& p : partials) p.merge_into(total);
  total.distinct_server_kinds = total.server_counts.size();
  std::sort(total.push_hosts.begin(), total.push_hosts.end());
  // Which worker saw which site depends on scheduling; sorting the ratio
  // samples makes the report bitwise independent of the thread count (all
  // consumers — CDFs, quantiles, fractions — are order-agnostic anyway).
  for (auto& [family, ratios] : total.hpack_ratio_by_family) {
    std::sort(ratios.begin(), ratios.end());
  }
  return total;
}

}  // namespace h2r::corpus
