#include "corpus/scan.h"

#include <algorithm>
#include <atomic>
#include <thread>

#include "corpus/reactor.h"
#include "corpus/site_task.h"

namespace h2r::corpus {

std::size_t ScanReport::hpack_sample_size() const {
  std::size_t n = 0;
  for (const auto& [family, ratios] : hpack_ratio_by_family) n += ratios.size();
  return n;
}

void ScanReport::merge(const ScanReport& other) {
  npn_sites += other.npn_sites;
  alpn_sites += other.alpn_sites;
  responding_sites += other.responding_sites;
  for (const auto& [name, count] : other.server_counts) {
    server_counts[name] += count;
  }
  for (const auto& [v, c] : other.initial_window_size.counts()) {
    initial_window_size.add(v, c);
  }
  for (const auto& [v, c] : other.max_frame_size.counts()) {
    max_frame_size.add(v, c);
  }
  for (const auto& [v, c] : other.max_header_list_size.counts()) {
    max_header_list_size.add(v, c);
  }
  for (const auto& [v, c] : other.max_concurrent_streams.counts()) {
    max_concurrent_streams.add(v, c);
  }
  sframe_respecting += other.sframe_respecting;
  sframe_zero_length += other.sframe_zero_length;
  sframe_no_response += other.sframe_no_response;
  sframe_no_response_litespeed += other.sframe_no_response_litespeed;
  zero_window_headers_ok += other.zero_window_headers_ok;
  zero_wu_rst += other.zero_wu_rst;
  zero_wu_ignore += other.zero_wu_ignore;
  zero_wu_goaway += other.zero_wu_goaway;
  zero_wu_goaway_debug += other.zero_wu_goaway_debug;
  zero_wu_conn_error += other.zero_wu_conn_error;
  large_wu_conn_goaway += other.large_wu_conn_goaway;
  large_wu_stream_rst += other.large_wu_stream_rst;
  large_wu_stream_ignore += other.large_wu_stream_ignore;
  priority_pass_last += other.priority_pass_last;
  priority_pass_first += other.priority_pass_first;
  priority_pass_both += other.priority_pass_both;
  self_dep_rst += other.self_dep_rst;
  self_dep_goaway += other.self_dep_goaway;
  self_dep_ignore += other.self_dep_ignore;
  push_hosts.insert(push_hosts.end(), other.push_hosts.begin(),
                    other.push_hosts.end());
  for (const auto& [family, ratios] : other.hpack_ratio_by_family) {
    auto& dst = hpack_ratio_by_family[family];
    dst.insert(dst.end(), ratios.begin(), ratios.end());
  }
  hpack_filtered_out += other.hpack_filtered_out;
  sites_ok += other.sites_ok;
  sites_retried_ok += other.sites_retried_ok;
  sites_truncated += other.sites_truncated;
  sites_disconnected += other.sites_disconnected;
  sites_timed_out += other.sites_timed_out;
  fault_exchanges += other.fault_exchanges;
  fault_injected += other.fault_injected;
  fault_retries += other.fault_retries;
  fault_deadline_hits += other.fault_deadline_hits;
  fault_backoff_ms += other.fault_backoff_ms;
  wire_metrics.merge(other.wire_metrics);
  for (const auto& [family, metrics] : other.wire_metrics_by_family) {
    wire_metrics_by_family[family].merge(metrics);
  }
  attack_detections.merge(other.attack_detections);
  // Each site appears exactly once across all workers, so inserting the
  // per-site traces into the ordered map reassembles the same final
  // contents for any H2R_THREADS.
  for (const auto& [host, jsonl] : other.site_traces) {
    site_traces.emplace(host, jsonl);
  }
}

ScanReport scan_population(const Population& population,
                           const ScanOptions& options) {
  int threads = options.threads > 0
                    ? options.threads
                    : static_cast<int>(std::max(
                          1u, std::thread::hardware_concurrency()));
  // No point spinning up more workers than there are sites to pull.
  threads = static_cast<int>(std::min<std::size_t>(
      static_cast<std::size_t>(threads),
      std::max<std::size_t>(1, population.sites.size())));

  const std::size_t n = population.sites.size();
  std::vector<ScanReport> partials(static_cast<std::size_t>(threads));
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  std::atomic<std::size_t> cursor{0};

  if (options.event_loop) {
    // Shard-per-worker: each worker owns one contiguous block of the site
    // list and a reactor multiplexing its in-flight SiteTasks. No state is
    // shared across shards, so the merge below is the only join point.
    const std::size_t per =
        (n + static_cast<std::size_t>(threads) - 1) /
        static_cast<std::size_t>(threads);
    for (int t = 0; t < threads; ++t) {
      const std::size_t begin =
          std::min(n, static_cast<std::size_t>(t) * per);
      const std::size_t end = std::min(n, begin + per);
      pool.emplace_back([&, t, begin, end] {
        Reactor reactor(
            std::span<const SiteSpec>(population.sites.data() + begin,
                                      end - begin),
            options, partials[static_cast<std::size_t>(t)]);
        reactor.run();
        auto& gauge =
            partials[static_cast<std::size_t>(t)].wire_metrics
                .reactor_peak_in_flight;
        gauge = std::max<std::uint64_t>(gauge, reactor.peak_in_flight());
      });
    }
  } else {
    // The historical sequential driver: each worker pulls the next
    // unscanned site and drives its SiteTask to completion, servicing
    // every park immediately (simulated time is free to a blocking
    // worker). Same SiteTask, same probe coroutines — only the
    // scheduling differs.
    for (int t = 0; t < threads; ++t) {
      pool.emplace_back([&, t] {
        SiteScratch scratch;
        ScanReport& r = partials[static_cast<std::size_t>(t)];
        bool scanned = false;
        for (;;) {
          const std::size_t i = cursor.fetch_add(1);
          if (i >= n) break;
          scanned = true;
          SiteTask task(population.sites[i], options, r, scratch);
          while (!task.advance()) {
          }
        }
        if (scanned) {
          r.wire_metrics.reactor_peak_in_flight = std::max<std::uint64_t>(
              r.wire_metrics.reactor_peak_in_flight, 1);
        }
      });
    }
  }
  for (auto& th : pool) th.join();

  ScanReport total;
  total.epoch = population.epoch;
  total.total_scanned = population.total_scanned;
  for (const auto& p : partials) total.merge(p);
  // Sites fold wiretap metrics into their family registry only; the global
  // snapshot is assembled here with one merge per family instead of two
  // registry merges per site. Field-wise sums make the result identical.
  for (const auto& [family, metrics] : total.wire_metrics_by_family) {
    total.wire_metrics.merge(metrics);
  }
  total.distinct_server_kinds = total.server_counts.size();
  std::sort(total.push_hosts.begin(), total.push_hosts.end());
  // Which worker saw which site depends on scheduling; sorting the ratio
  // samples makes the report bitwise independent of the thread count (all
  // consumers — CDFs, quantiles, fractions — are order-agnostic anyway).
  for (auto& [family, ratios] : total.hpack_ratio_by_family) {
    std::sort(ratios.begin(), ratios.end());
  }
  return total;
}

}  // namespace h2r::corpus
