// One in-flight scan site: the Section III probe sequence as a resumable
// coroutine (core::Task), plus everything the site owns while in flight —
// its Target, fault ledger, wiretap buffer, and sequence detector.
//
// Both scan drivers run SiteTasks. The sequential worker drives one task to
// completion (advance() in a loop, servicing each park immediately); the
// shard reactor (corpus/reactor.h) keeps many in flight and sleeps parked
// ones on its timer wheel. The probe work, trace events, ledger accounting,
// and report folds are identical either way — only the interleaving
// differs, and every ScanReport aggregate is interleaving-independent
// (asserted by tests/scan_reactor_test.cc).
#pragma once

#include <cstdint>
#include <optional>

#include "core/probes.h"
#include "core/session.h"
#include "core/task.h"
#include "corpus/population.h"
#include "corpus/scan.h"
#include "net/transport.h"
#include "trace/annotate.h"
#include "trace/detector.h"
#include "trace/metrics.h"
#include "trace/recorder.h"

namespace h2r::corpus {

/// Reusable per-slot scratch: one wiretap buffer and one client/engine pair
/// serve every site a sequential worker (or reactor slot) scans, rewound
/// between sites instead of reallocated. The recorder is an unbounded
/// binary ring (32 bytes per event, no per-event heap traffic). The default
/// metrics fold runs straight off the raw records (annotate_ring with a
/// MetricsRecorder tee), so `decoded` — the offline-expansion scratch — is
/// only touched when the site's TraceEvents are actually needed (JSONL
/// export, sequence detector).
struct SiteScratch {
  trace::RingRecorder recorder;
  std::vector<trace::TraceEvent> decoded;
  trace::TagCounts tag_counts;
  // Shared metrics fold. Each site rebind()s the folder onto its family
  // registry and folds straight into it — no per-site scratch registry to
  // re-zero, no per-site merge — while the folder's per-connection scratch
  // vectors keep their capacity across the hundreds of sites one slot
  // serves. site_metrics is only the folder's initial (never-folded-into)
  // binding; the pointers never
  // dangle: a SiteScratch lives on a worker's stack or behind a unique_ptr
  // (reactor slots) and is never copied or moved, and family registries are
  // std::map values with stable addresses.
  trace::MetricsRegistry site_metrics;
  trace::MetricsRecorder folder{site_metrics};
  core::SessionScratch session;

  void reset() {
    recorder.clear();
    tag_counts.clear();
  }
};

class SiteTask {
 public:
  /// Wires the site up (fault stream, wiretap, detector) but runs nothing:
  /// the first advance() starts the probe sequence. @p scratch is borrowed
  /// for this site's lifetime and reset here.
  SiteTask(const SiteSpec& spec, const ScanOptions& opts, ScanReport& report,
           SiteScratch& scratch);
  SiteTask(const SiteTask&) = delete;
  SiteTask& operator=(const SiteTask&) = delete;

  /// Starts or resumes the probe sequence, servicing at most one park per
  /// call. Returns true once the site finished and folded into the report;
  /// false means the task parked — park_rounds() says for how long.
  bool advance();
  /// Virtual rounds until this task wants to run again; valid after an
  /// advance() that returned false.
  [[nodiscard]] int park_rounds() const;

 private:
  core::Task<void> run();   ///< the probe sequence (negotiation gate + probes)
  void book_wake(int parked);
  void finish();            ///< outcome class + ledger + wiretap folds

  const SiteSpec& spec_;
  const ScanOptions& opts_;
  ScanReport& r_;
  SiteScratch& scratch_;
  core::Target target_;
  net::ExchangeLedger ledger_;
  std::optional<trace::SequenceDetector> detector_;
  core::TaskContext ctx_;
  bool started_ = false;
  bool finished_ = false;
  // Park observability, booked identically by both drivers (one wake per
  // park serviced) and folded into ScanReport::wire_metrics at completion.
  std::uint64_t wakeups_ = 0;
  std::uint64_t parked_rounds_ = 0;
  trace::Histogram park_hist_;
  core::Task<void> task_;   ///< last: frames reference the members above
};

}  // namespace h2r::corpus
