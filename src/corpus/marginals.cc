#include "corpus/marginals.h"

namespace h2r::corpus {
namespace {

/// Figure 2 has no table in the paper; this multiset is calibrated to its
/// described shape: 100 and 128 dominate, the vast majority of sites are at
/// or above 100, small tails reach 10^0 and 10^5.
std::vector<ValueCount> fig2_mcs_multiset(std::size_t announcing_sites) {
  const std::vector<std::pair<std::int64_t, double>> shape = {
      {1, 0.002},      {8, 0.003},    {32, 0.008},    {64, 0.012},
      {100, 0.40},     {101, 0.01},   {128, 0.38},    {150, 0.02},
      {200, 0.03},     {256, 0.06},   {512, 0.02},    {1000, 0.02},
      {4096, 0.012},   {10000, 0.008},{65536, 0.006}, {100000, 0.009},
  };
  std::vector<ValueCount> out;
  std::size_t assigned = 0;
  for (const auto& [value, fraction] : shape) {
    const auto n = static_cast<std::size_t>(
        static_cast<double>(announcing_sites) * fraction);
    out.push_back({value, n});
    assigned += n;
  }
  // Rounding remainder lands on the most popular value, 100.
  for (auto& vc : out) {
    if (vc.value == 100) vc.count += announcing_sites - assigned;
  }
  return out;
}

EpochMarginals build_exp1() {
  EpochMarginals m;
  m.epoch = Epoch::kExp1;
  m.total_scanned = 1'000'000;
  m.npn_sites = 49'334;
  m.alpn_sites = 47'966;
  m.responding_sites = 44'390;

  // Table IV, first experiment.
  m.server_families = {
      {"litespeed", 12'637}, {"nginx", 11'293},
      {"gse", 9'928},        {"tengine", 2'535},
      {"cloudflare-nginx", 1'197},
      {"ideawebserver", 1'128},
      // Tengine/Aserver: 0 sites in experiment one.
  };
  m.other_family_sites = 44'390 - (12'637 + 11'293 + 9'928 + 2'535 + 1'197 + 1'128);

  // Table V.
  m.initial_window_size = {
      {kNullValue, 1'050}, {0, 3'072},          {32'768, 3},
      {65'535, 49},        {65'536, 20'477},    {131'072, 1},
      {262'144, 1},        {1'048'576, 10'799}, {16'777'216, 11},
      {20'000'000, 1},     {2'147'483'647, 8'926},
  };
  // Table VI.
  m.max_frame_size = {
      {kNullValue, 1'050},
      {16'384, 24'781},
      {1'048'576, 27},
      {16'777'215, 18'532},
  };
  // Table VII.
  m.max_header_list_size = {
      {kNullValue, 1'050}, {kUnlimitedValue, 32'568}, {16'384, 10'717},
      {32'768, 3},         {81'920, 2},               {131'072, 24},
      {1'048'896, 26},
  };
  m.max_concurrent_streams = fig2_mcs_multiset(44'390 - 1'050);

  // §V-D.
  m.sframe_respecting_sites = 37'525;
  m.sframe_zero_length_sites = 2'433;
  m.sframe_no_response_sites = 4'432;
  m.sframe_silent_litespeed = 3'900;  // per-family split not reported in exp1
  m.zero_window_headers_sites = 17'191;
  m.zero_wu_rst_sites = 23'673;
  m.zero_wu_goaway_sites = 31;
  m.zero_wu_debug_sites = 26;
  m.large_wu_conn_goaway_sites = 40'567;
  m.large_wu_stream_rst_sites = 36'619;

  // §V-E.
  m.priority_pass_last_sites = 1'147;
  m.priority_pass_first_sites = 46;
  m.priority_pass_both_sites = 38;
  m.self_dep_rst_sites = 18'237;

  // §V-F / Figure 3 (the first six sites observed pushing).
  m.push_sites = {"miconcinemas.com",     "nghttp2.org", "paperculture.com",
                  "rememberthemilk.com",  "tollmanz.com", "travelground.com"};

  // §V-G / Figure 4.
  m.hpack_aggressive_fraction = {
      {"gse", 1.0},        {"litespeed", 0.80}, {"nginx", 0.065},
      {"tengine", 0.0},    {"cloudflare-nginx", 0.065},
      {"ideawebserver", 0.05},
  };
  m.cookie_churn_fraction = 0.015;
  return m;
}

EpochMarginals build_exp2() {
  EpochMarginals m;
  m.epoch = Epoch::kExp2;
  m.total_scanned = 1'000'000;
  m.npn_sites = 78'714;
  m.alpn_sites = 70'859;
  m.responding_sites = 64'299;

  // Table IV, second experiment.
  m.server_families = {
      {"litespeed", 13'626}, {"nginx", 27'394},
      {"gse", 9'929},        {"tengine", 674},
      {"cloudflare-nginx", 1'766},
      {"ideawebserver", 1'261},
      {"tengine-aserver", 2'620},
  };
  m.other_family_sites =
      64'299 - (13'626 + 27'394 + 9'929 + 674 + 1'766 + 1'261 + 2'620);

  m.initial_window_size = {
      {kNullValue, 1'015}, {0, 7'499},          {32'768, 59},
      {65'535, 106},       {65'536, 40'612},    {131'072, 1},
      {262'144, 1},        {1'048'576, 10'929}, {16'777'216, 15},
      {2'147'483'647, 4'062},
  };
  m.max_frame_size = {
      {kNullValue, 1'015},
      {16'384, 25'987},
      {1'048'576, 81},
      {16'777'215, 37'216},
  };
  m.max_header_list_size = {
      {kNullValue, 1'015}, {kUnlimitedValue, 52'311}, {16'384, 10'806},
      {32'768, 59},        {81'920, 3},               {131'072, 25},
      {1'048'896, 80},
  };
  m.max_concurrent_streams = fig2_mcs_multiset(64'299 - 1'015);

  m.sframe_respecting_sites = 44'204;
  m.sframe_zero_length_sites = 8'056;
  m.sframe_no_response_sites = 12'039;
  m.sframe_silent_litespeed = 10'472;  // reported explicitly in §V-D1
  m.zero_window_headers_sites = 23'834;
  m.zero_wu_rst_sites = 26'156;
  m.zero_wu_goaway_sites = 162;
  m.zero_wu_debug_sites = 42;
  m.large_wu_conn_goaway_sites = 62'668;
  m.large_wu_stream_rst_sites = 44'057;

  m.priority_pass_last_sites = 2'187;
  m.priority_pass_first_sites = 117;
  m.priority_pass_both_sites = 111;
  m.self_dep_rst_sites = 53'379;

  // The six exp-1 sites plus the nine newly observed in exp 2 (Fig. 3).
  m.push_sites = {"miconcinemas.com",    "nghttp2.org",    "paperculture.com",
                  "rememberthemilk.com", "tollmanz.com",   "travelground.com",
                  "addtoany.com",        "cloudflare.com", "eotica.com.br",
                  "getapp.com",          "intimshop.ru",   "neobux.com",
                  "powerforen.de",       "recreoviral.com","tvgazeta.com.br"};

  // §V-G / Figure 5: Tengine sites diversify after the Aserver rename.
  m.hpack_aggressive_fraction = {
      {"gse", 1.0},        {"litespeed", 0.80}, {"nginx", 0.065},
      {"tengine", 0.35},   {"tengine-aserver", 0.0},
      {"cloudflare-nginx", 0.065},
      {"ideawebserver", 0.05},
  };
  m.cookie_churn_fraction = 0.015;
  return m;
}

}  // namespace

std::string_view to_string(Epoch e) noexcept {
  return e == Epoch::kExp1 ? "Exp1 (Jul 2016)" : "Exp2 (Jan 2017)";
}

const EpochMarginals& marginals(Epoch epoch) {
  static const EpochMarginals kExp1 = build_exp1();
  static const EpochMarginals kExp2 = build_exp2();
  return epoch == Epoch::kExp1 ? kExp1 : kExp2;
}

}  // namespace h2r::corpus
