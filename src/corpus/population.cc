#include "corpus/population.h"

#include <algorithm>
#include <stdexcept>

#include "util/rng.h"

namespace h2r::corpus {
namespace {

using server::ErrorReaction;
using server::SchedulerKind;
using server::ServerProfile;
using server::SmallWindowBehavior;

/// Fisher-Yates shuffle driven by our deterministic RNG.
template <typename T>
void shuffle(std::vector<T>& v, Rng& rng) {
  for (std::size_t i = v.size(); i > 1; --i) {
    const std::size_t j = rng.next_below(i);
    // Value-wise swap keeps std::vector<bool>'s proxy references happy.
    T tmp = v[i - 1];
    v[i - 1] = v[j];
    v[j] = tmp;
  }
}

/// Expands (value, count) rows into a flat shuffled column.
std::vector<std::int64_t> expand_column(const std::vector<ValueCount>& rows,
                                        Rng& rng) {
  std::vector<std::int64_t> out;
  for (const auto& [value, count] : rows) {
    out.insert(out.end(), count, value);
  }
  shuffle(out, rng);
  return out;
}

/// Builds the family column: Table IV names at their exact counts plus a
/// Zipf-distributed long tail of synthetic "other-NNN" families (the paper
/// saw 223 / 345 distinct server strings).
std::vector<std::string> family_column(const EpochMarginals& m, Rng& rng) {
  std::vector<std::string> out;
  for (const auto& [name, count] : m.server_families) {
    out.insert(out.end(), count, name);
  }
  // Zipf-ish tail, offset so no synthetic family crosses the paper's
  // 1,000-site Table IV threshold.
  const int tail_kinds = m.epoch == Epoch::kExp1 ? 217 : 338;
  double weight_sum = 0;
  for (int k = 1; k <= tail_kinds; ++k) weight_sum += 1.0 / (k + 7);
  std::size_t assigned = 0;
  for (int k = 1; k <= tail_kinds; ++k) {
    const std::size_t n = static_cast<std::size_t>(
        static_cast<double>(m.other_family_sites) * (1.0 / (k + 7)) /
        weight_sum);
    char buf[16];
    std::snprintf(buf, sizeof buf, "other-%03d", k);
    out.insert(out.end(), n, buf);
    assigned += n;
  }
  // Rounding remainder spreads across the first tail families, one each.
  for (std::size_t r = 0; r < m.other_family_sites - assigned; ++r) {
    char buf[16];
    std::snprintf(buf, sizeof buf, "other-%03d",
                  static_cast<int>(r % 50) + 1);
    out.emplace_back(buf);
  }
  shuffle(out, rng);
  return out;
}

/// A column of n values where the first counts[i] entries are values[i]
/// and the remainder is `fill`, shuffled.
template <typename T>
std::vector<T> reaction_column(std::size_t n,
                               std::vector<std::pair<T, std::size_t>> counts,
                               T fill, Rng& rng) {
  std::vector<T> out;
  std::size_t assigned = 0;
  for (const auto& [value, count] : counts) {
    out.insert(out.end(), count, value);
    assigned += count;
  }
  if (assigned > n) {
    throw std::logic_error("reaction_column: counts exceed population");
  }
  out.insert(out.end(), n - assigned, fill);
  shuffle(out, rng);
  return out;
}

/// The content every corpus site serves: enough objects for every scan
/// probe, sized for scan throughput rather than testbed fidelity.
server::Site corpus_site(const SiteSpec& spec) {
  server::Site site(spec.host);
  site.add_resource({.path = "/", .size = 2'048, .content_type = "text/html"});
  site.add_resource({.path = "/small", .size = 48, .content_type = "text/plain"});
  // One object larger than the 65,535-octet connection window for the
  // window-update and self-dependency probes.
  site.add_resource({.path = "/large/0",
                     .size = 128 * 1024,
                     .content_type = "application/octet-stream"});
  site.add_resource({.path = "/large/1",
                     .size = 128 * 1024,
                     .content_type = "application/octet-stream"});
  // Seven equal objects for Algorithm 1 (one drain + six prioritized).
  for (int i = 0; i < 7; ++i) {
    site.add_resource({.path = "/object/" + std::to_string(i),
                       .size = 64 * 1024,
                       .content_type = "application/octet-stream"});
  }
  if (spec.supports_push) {
    site.add_resource(
        {.path = "/style.css", .size = 4'096, .content_type = "text/css"});
    site.add_resource({.path = "/app.js",
                       .size = 8'192,
                       .content_type = "application/javascript"});
    site.add_resource(
        {.path = "/logo.png", .size = 16'384, .content_type = "image/png"});
    site.set_push_list("/", {"/style.css", "/app.js", "/logo.png"});
  }
  // Site-specific response headers give the HPACK probe per-site variety.
  std::uint64_t h = 0x9E3779B97F4A7C15ull;
  for (char c : spec.host) h = (h ^ static_cast<unsigned char>(c)) * 0x100000001B3ull;
  static const char* kNames[] = {"x-cache",       "via",         "etag",
                                 "cache-control", "x-request-id", "vary",
                                 "x-frame-options"};
  for (int i = 0; i < spec.extra_header_count; ++i) {
    site.add_response_header(kNames[i % 7],
                             "v" + std::to_string((h >> (i * 8)) & 0xFFFF));
  }
  site.set_cookie_churn(spec.cookie_churn);
  return site;
}

}  // namespace

ServerProfile SiteSpec::to_profile() const {
  ServerProfile p;
  const bool known = family.rfind("other-", 0) != 0;
  if (known) {
    p = server::profile_by_key(family);
  } else {
    p.key = family;
    p.server_header = family + "/1.0";
  }
  p.tls.supports_alpn = alpn_h2;
  p.tls.supports_npn = npn_h2;
  if (!responds) {
    // Site negotiates h2 but never answers requests: it refuses every
    // stream, so the scanner sees no HEADERS and records it as
    // non-responding (the gap between §V-B's NPN/ALPN counts and the
    // HEADERS counts).
    p.max_concurrent_streams = 0;
    return p;
  }

  if (null_settings) {
    p.max_concurrent_streams = std::nullopt;
    p.initial_window_size = std::nullopt;
    p.max_frame_size = std::nullopt;
    p.max_header_list_size = std::nullopt;
    p.window_update_after_settings = false;
  } else {
    p.max_concurrent_streams = max_concurrent_streams;
    p.initial_window_size = initial_window_size;
    p.max_frame_size = max_frame_size;
    p.max_header_list_size = max_header_list_size;
    // The Nginx idiom (§V-C): sites announcing window 0 immediately re-open
    // the connection window.
    p.window_update_after_settings =
        initial_window_size.has_value() && *initial_window_size == 0;
    p.connection_window_bonus =
        p.window_update_after_settings ? 0x7FFF0000u - 65'535 : 0;
  }

  p.small_window_behavior = small_window;
  p.flow_control_on_headers = flow_control_on_headers;
  p.zero_window_update_stream = zero_wu_stream;
  p.zero_window_update_connection = zero_wu_conn;
  p.large_window_update_stream = large_wu_stream;
  p.large_window_update_connection = large_wu_conn;
  p.scheduler = scheduler;
  p.self_dependency = self_dependency;
  p.supports_push = supports_push;
  p.response_indexing = hpack_aggressive ? hpack::IndexingPolicy::kAggressive
                                         : hpack::IndexingPolicy::kStaticOnly;
  return p;
}

core::Target SiteSpec::to_target() const {
  core::Target t;
  t.host = host;
  t.profile = to_profile();
  t.site = corpus_site(*this);
  t.path.label = host;
  t.path.base_rtt_ms = base_rtt_ms;
  t.path.loss_rate = loss_rate;
  t.offers_h2 = npn_h2 || alpn_h2;
  return t;
}

std::size_t Population::responding_count() const {
  std::size_t n = 0;
  for (const auto& s : sites) n += s.responds ? 1 : 0;
  return n;
}

Population generate_population(Epoch epoch, std::uint64_t seed, double scale) {
  if (scale < 1.0) throw std::invalid_argument("scale must be >= 1");
  const EpochMarginals& m = marginals(epoch);
  Rng rng(seed ^ (epoch == Epoch::kExp1 ? 0x1111ull : 0x2222ull));

  // --- negotiation universe (§V-B): sites offering h2 at all -------------
  // |NPN ∪ ALPN| is not reported; we fix the union so that the NPN-only
  // remainder matches the paper's note about >100 server kinds speaking
  // only NPN, and derive the overlap.
  const std::size_t universe = epoch == Epoch::kExp1 ? 53'000 : 82'000;
  const std::size_t both = m.npn_sites + m.alpn_sites - universe;
  const std::size_t npn_only = m.npn_sites - both;
  const std::size_t alpn_only = m.alpn_sites - both;
  const std::size_t responding = m.responding_sites;

  // --- full-size per-dimension columns ------------------------------------
  // Sites [0, responding) respond; [responding, universe) negotiate only.
  enum class Neg : std::uint8_t { kBoth, kNpnOnly, kAlpnOnly };
  auto negotiation = reaction_column<Neg>(
      universe, {{Neg::kNpnOnly, npn_only}, {Neg::kAlpnOnly, alpn_only}},
      Neg::kBoth, rng);

  auto families = family_column(m, rng);

  std::size_t nulls = 0;
  for (const auto& vc : m.initial_window_size) {
    if (vc.value == kNullValue) nulls += vc.count;
  }
  auto null_col = reaction_column<bool>(responding, {{true, nulls}}, false, rng);

  auto strip_null = [](const std::vector<ValueCount>& rows) {
    std::vector<ValueCount> out;
    for (const auto& vc : rows) {
      if (vc.value != kNullValue) out.push_back(vc);
    }
    return out;
  };
  auto iws_col = expand_column(strip_null(m.initial_window_size), rng);
  auto mfs_col = expand_column(strip_null(m.max_frame_size), rng);
  auto mhls_col = expand_column(strip_null(m.max_header_list_size), rng);
  auto mcs_col = expand_column(strip_null(m.max_concurrent_streams), rng);

  auto zero_wu_stream_col = reaction_column<ErrorReaction>(
      responding,
      {{ErrorReaction::kRstStream, m.zero_wu_rst_sites},
       {ErrorReaction::kGoaway, m.zero_wu_goaway_sites},
       {ErrorReaction::kGoawayWithDebug, m.zero_wu_debug_sites}},
      ErrorReaction::kIgnore, rng);
  // §V-D3: "nearly all the websites return connection error" on the
  // connection-scoped variant.
  auto zero_wu_conn_col = reaction_column<ErrorReaction>(
      responding, {{ErrorReaction::kIgnore, epoch == Epoch::kExp1 ? 300u : 400u}},
      ErrorReaction::kGoaway, rng);
  auto large_wu_conn_col = reaction_column<ErrorReaction>(
      responding, {{ErrorReaction::kGoaway, m.large_wu_conn_goaway_sites}},
      ErrorReaction::kIgnore, rng);
  auto large_wu_stream_col = reaction_column<ErrorReaction>(
      responding, {{ErrorReaction::kRstStream, m.large_wu_stream_rst_sites}},
      ErrorReaction::kIgnore, rng);

  auto scheduler_col = reaction_column<SchedulerKind>(
      responding,
      {{SchedulerKind::kPriorityTree, m.priority_pass_both_sites},
       {SchedulerKind::kPriorityStart,
        m.priority_pass_first_sites - m.priority_pass_both_sites},
       {SchedulerKind::kFairShare,
        m.priority_pass_last_sites - m.priority_pass_both_sites}},
      SchedulerKind::kRoundRobin, rng);

  const std::size_t self_rest = responding - m.self_dep_rst_sites;
  auto self_dep_col = reaction_column<ErrorReaction>(
      responding,
      {{ErrorReaction::kRstStream, m.self_dep_rst_sites},
       {ErrorReaction::kGoaway, self_rest / 2}},
      ErrorReaction::kIgnore, rng);

  // --- assemble ------------------------------------------------------------
  Population pop;
  pop.epoch = epoch;
  pop.scale = scale;
  pop.total_scanned =
      static_cast<std::size_t>(static_cast<double>(m.total_scanned) / scale);
  pop.non_h2_sites = static_cast<std::size_t>(
      static_cast<double>(m.total_scanned - universe) / scale);

  std::vector<SiteSpec> sites(universe);
  std::size_t settings_cursor = 0;  // index into non-NULL settings columns
  const std::size_t headers_ok_left = m.zero_window_headers_sites;

  for (std::size_t i = 0; i < universe; ++i) {
    SiteSpec& s = sites[i];
    Rng site_rng = rng.fork(i);
    s.host = "site-" + std::to_string(i + 1) + ".example";
    s.family = families[i % families.size()];
    s.npn_h2 = negotiation[i] != Neg::kAlpnOnly;
    s.alpn_h2 = negotiation[i] != Neg::kNpnOnly;
    s.responds = i < responding;
    s.base_rtt_ms = 10.0 + site_rng.next_double() * 290.0;
    s.extra_header_count = 2 + static_cast<int>(site_rng.next_below(5));
    if (!s.responds) continue;

    s.null_settings = null_col[i];
    if (!s.null_settings) {
      s.initial_window_size = static_cast<std::uint32_t>(iws_col[settings_cursor]);
      s.max_frame_size = static_cast<std::uint32_t>(mfs_col[settings_cursor]);
      const std::int64_t mhls = mhls_col[settings_cursor];
      if (mhls != kUnlimitedValue) {
        s.max_header_list_size = static_cast<std::uint32_t>(mhls);
      }
      s.max_concurrent_streams =
          static_cast<std::uint32_t>(mcs_col[settings_cursor]);
      ++settings_cursor;
    }

    s.zero_wu_stream = zero_wu_stream_col[i];
    s.zero_wu_conn = zero_wu_conn_col[i];
    s.large_wu_stream = large_wu_stream_col[i];
    s.large_wu_conn = large_wu_conn_col[i];
    s.scheduler = scheduler_col[i];
    s.self_dependency = self_dep_col[i];
    s.supports_push = false;  // enabled for the named sites below
    s.cookie_churn = site_rng.next_double() < m.cookie_churn_fraction;

    double aggressive_p = 0.5;  // unknown families: coin flip
    for (const auto& [fam, frac] : m.hpack_aggressive_fraction) {
      if (fam == s.family) aggressive_p = frac;
    }
    s.hpack_aggressive = site_rng.next_double() < aggressive_p;
  }

  // Small-window behaviour (§V-D1) with the LiteSpeed coupling, assigned
  // with exact counts: the reported number of silent LiteSpeed sites stalls
  // first; the remaining stall quota goes to non-LiteSpeed sites; the
  // zero-length quota is split proportionally over what is left.
  {
    std::vector<std::size_t> litespeed_idx, other_idx;
    for (std::size_t i = 0; i < responding; ++i) {
      (sites[i].family == "litespeed" ? litespeed_idx : other_idx).push_back(i);
    }
    shuffle(litespeed_idx, rng);
    shuffle(other_idx, rng);

    const std::size_t ls_stall =
        std::min(m.sframe_silent_litespeed, litespeed_idx.size());
    const std::size_t other_stall = m.sframe_no_response_sites - ls_stall;
    for (std::size_t k = 0; k < ls_stall; ++k) {
      sites[litespeed_idx[k]].small_window = SmallWindowBehavior::kStall;
    }
    for (std::size_t k = 0; k < other_stall; ++k) {
      sites[other_idx[k]].small_window = SmallWindowBehavior::kStall;
    }
    // Zero-length sites: split over the two leftover pools proportionally.
    const std::size_t ls_rest = litespeed_idx.size() - ls_stall;
    const std::size_t other_rest = other_idx.size() - other_stall;
    const std::size_t zl_ls = m.sframe_zero_length_sites * ls_rest /
                              std::max<std::size_t>(1, ls_rest + other_rest);
    const std::size_t zl_other = m.sframe_zero_length_sites - zl_ls;
    for (std::size_t k = 0; k < zl_ls; ++k) {
      sites[litespeed_idx[ls_stall + k]].small_window =
          SmallWindowBehavior::kZeroLengthData;
    }
    for (std::size_t k = 0; k < zl_other; ++k) {
      sites[other_idx[other_stall + k]].small_window =
          SmallWindowBehavior::kZeroLengthData;
    }
    // Everyone else keeps the default kRespectWindow.
  }

  // Zero-window HEADERS conformance (§V-D2): the quota of conformant sites
  // spreads uniformly over the non-stall responding sites; stall sites are
  // silent at a zero window by construction.
  {
    std::vector<std::size_t> non_stall_sites;
    for (std::size_t i = 0; i < responding; ++i) {
      if (sites[i].small_window != SmallWindowBehavior::kStall) {
        non_stall_sites.push_back(i);
      } else {
        sites[i].flow_control_on_headers = true;
      }
    }
    shuffle(non_stall_sites, rng);
    for (std::size_t k = 0; k < non_stall_sites.size(); ++k) {
      sites[non_stall_sites[k]].flow_control_on_headers = k >= headers_ok_left;
    }
  }

  // The named push-enabled sites of §V-F / Figure 3 (always responding).
  for (std::size_t k = 0; k < m.push_sites.size() && k < responding; ++k) {
    SiteSpec& s = sites[k];
    s.host = m.push_sites[k];
    s.supports_push = true;
  }

  // Path loss rates, from an *independent* RNG stream so that adding this
  // column leaves every draw above — and therefore every historical site
  // attribute — bit-identical. Roughly 85% of paths are clean, 12% see mild
  // residential loss, and 3% sit on lossy (cellular-like) tails. Assigned
  // before the subsample so a scaled run keeps each site's rate.
  {
    Rng loss_rng(seed ^ 0x10557ull);
    for (std::size_t i = 0; i < universe; ++i) {
      const double roll = loss_rng.next_double();
      if (roll < 0.85) {
        sites[i].loss_rate = 0.0;
      } else if (roll < 0.97) {
        sites[i].loss_rate = 0.002 + 0.008 * loss_rng.next_double();
      } else {
        sites[i].loss_rate = 0.01 + 0.02 * loss_rng.next_double();
      }
    }
  }

  // --- uniform subsample for scale > 1 ------------------------------------
  if (scale > 1.0) {
    std::vector<SiteSpec> sampled;
    const auto keep = static_cast<std::size_t>(
        static_cast<double>(universe) / scale);
    // The columns are already shuffled, so a strided pick is uniform; keep
    // category structure intact by sampling responding and non-responding
    // ranges proportionally.
    for (std::size_t i = 0; i < universe; ++i) {
      if (sampled.size() * universe < keep * (i + 1)) sampled.push_back(sites[i]);
    }
    pop.sites = std::move(sampled);
  } else {
    pop.sites = std::move(sites);
  }
  return pop;
}

}  // namespace h2r::corpus
