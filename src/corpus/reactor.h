// Shard reactor: the scan's event-loop core. One reactor per worker shard
// (own sites, own scratch pool, no cross-shard sharing — the Seastar-style
// shard-per-core model) multiplexes up to ScanOptions::max_in_flight
// resumable SiteTasks over a virtual clock. A task that parks — a stalled
// faulted transport or retry backoff — sleeps on the timer wheel for its
// park stretch while other sites run; nothing ever busy-spins a pump.
//
// Determinism: admission happens in site order, the clock only ever jumps
// to the next occupied wheel instant, and each ready batch drains in
// ascending site index — so the schedule is a pure function of (sites,
// options), independent of wall time. Combined with interleaving-
// independent report aggregates this makes the reactor's ScanReport
// bitwise identical to the sequential driver's.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "corpus/scan.h"
#include "corpus/site_task.h"
#include "net/readiness.h"

namespace h2r::corpus {

class Reactor {
 public:
  /// Prepares to drive @p sites (one shard's contiguous block) into
  /// @p report. Runs nothing until run().
  Reactor(std::span<const SiteSpec> sites, const ScanOptions& opts,
          ScanReport& report);

  /// Drives every site to completion.
  void run();

  /// Most sites ever simultaneously in flight (the in-flight gauge).
  [[nodiscard]] std::size_t peak_in_flight() const noexcept { return peak_; }
  /// Final virtual-clock reading: total ticks the shard slept across.
  [[nodiscard]] std::uint64_t ticks() const noexcept { return tick_; }

 private:
  struct InFlight {
    std::size_t site;  ///< index into sites_, the deterministic drain key
    std::unique_ptr<SiteTask> task;
    std::unique_ptr<SiteScratch> scratch;
  };

  InFlight admit(std::size_t site);
  void retire(InFlight flight);

  std::span<const SiteSpec> sites_;
  const ScanOptions& opts_;
  ScanReport& report_;
  std::size_t cap_;

  /// Timer wheel (net::TimerWheel — the readiness source shared with the
  /// epoll serving loop's deadline sweeps): wake tick -> tasks sleeping
  /// until then, drained in site order.
  net::TimerWheel<InFlight> wheel_;
  /// Scratch slots recycled between sites; at most cap_ ever exist.
  std::vector<std::unique_ptr<SiteScratch>> free_scratch_;

  std::uint64_t tick_ = 0;
  std::size_t live_ = 0;
  std::size_t peak_ = 0;
};

}  // namespace h2r::corpus
