#include "corpus/site_task.h"

#include <string_view>

#include "trace/annotate.h"
#include "trace/event.h"
#include "util/rng.h"

namespace h2r::corpus {
namespace {

using core::ProbeKind;
using core::SmallWindowOutcome;
using core::Target;
using core::UpdateReaction;

// The coalesced scheduler below substitutes ProbeSession for exactly the
// probes the trait marks shareable; everything else stays on fresh
// connections. Keep the two in sync.
static_assert(!core::needs_fresh_connection(ProbeKind::kSettings));
static_assert(!core::needs_fresh_connection(ProbeKind::kPriority));
static_assert(!core::needs_fresh_connection(ProbeKind::kSelfDependency));
static_assert(!core::needs_fresh_connection(ProbeKind::kPush));
static_assert(!core::needs_fresh_connection(ProbeKind::kHpackRatio));
static_assert(core::needs_fresh_connection(ProbeKind::kNegotiation));
static_assert(core::needs_fresh_connection(ProbeKind::kDataFrameControl));
static_assert(core::needs_fresh_connection(ProbeKind::kZeroWindowHeaders));
static_assert(core::needs_fresh_connection(ProbeKind::kWindowUpdateReactions));

/// FNV-1a 64. Hashing the host (instead of the scan index) makes a site's
/// fault stream a pure function of (fault_seed, host) — independent of
/// H2R_THREADS, scan order, the scan driver, and the subsample scale.
std::uint64_t fnv1a64(std::string_view s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

/// Families whose HPACK ratio CDFs the paper plots (Figures 4 and 5).
bool hpack_family_of_interest(const std::string& family) {
  return family == "gse" || family == "nginx" || family == "tengine" ||
         family == "litespeed" || family == "ideawebserver" ||
         family == "tengine-aserver";
}

}  // namespace

SiteTask::SiteTask(const SiteSpec& spec, const ScanOptions& opts,
                   ScanReport& report, SiteScratch& scratch)
    : spec_(spec), opts_(opts), r_(report), scratch_(scratch),
      target_(spec.to_target()), task_(run()) {
  scratch_.reset();

  // One ledger per site: every connection any probe opens against this
  // target folds its outcome here, and the final-attempt flags classify
  // the site in finish().
  if (opts_.fault_injection) {
    std::uint64_t mix = opts_.fault_seed ^ fnv1a64(spec_.host);
    target_.faults.enabled = true;
    target_.faults.seed = splitmix64(mix);
    target_.faults.probability =
        net::fault_probability(target_.path.loss_rate, opts_.fault_floor);
    target_.ledger = &ledger_;
  }

  // The probe sequence bails out early on dead or non-h2 sites, so the
  // wiretap wraps it: record, run, then always annotate + fold.
  const bool wiretap = opts_.wiretap_metrics || opts_.wiretap_traces;
  if (wiretap) target_.recorder = &scratch_.recorder;

  // Sequence detection: live when it can be the sink itself, replayed
  // from the retained trace when the wiretap already owns the sink. The
  // two paths produce identical reports (tests/detector_test.cc pins
  // replay == live).
  if (opts_.detect_attacks) {
    detector_.emplace(opts_.detector_thresholds);
    if (!wiretap) target_.recorder = &*detector_;
  }
}

bool SiteTask::advance() {
  if (!started_) {
    started_ = true;
    task_.start(ctx_);
  } else if (net::ExchangeDriver* d = ctx_.waiting) {
    // A parked exchange: book the slept stretch, skip it, pump on. If the
    // exchange parks again the coroutine stays suspended at the same
    // co_await — only a finished exchange resumes it.
    book_wake(d->park_rounds());
    d->unpark();
    if (d->pump() == net::ExchangeDriver::State::kParked) return false;
    ctx_.waiting = nullptr;
    ctx_.resume_point.resume();
  } else {
    // A pure timer park (retry backoff).
    book_wake(ctx_.park_rounds);
    ctx_.resume_point.resume();
  }
  if (!task_.done()) return false;
  finish();
  return true;
}

int SiteTask::park_rounds() const {
  return ctx_.waiting != nullptr ? ctx_.waiting->park_rounds()
                                 : ctx_.park_rounds;
}

void SiteTask::book_wake(int parked) {
  ++wakeups_;
  parked_rounds_ += static_cast<std::uint64_t>(parked);
  park_hist_.add(static_cast<std::uint64_t>(parked));
}

void SiteTask::finish() {
  if (finished_) return;
  finished_ = true;

  const bool wiretap = opts_.wiretap_metrics || opts_.wiretap_traces;
  // TraceEvents are materialized only when something actually needs them
  // (JSONL export, sequence detector); the default metrics fold runs
  // straight off the ring's raw WireRecords.
  const bool materialize =
      wiretap && (opts_.wiretap_traces || detector_.has_value());
  if (materialize) scratch_.recorder.decode_into(scratch_.decoded);
  if (detector_) {
    if (materialize) detector_->observe_all(scratch_.decoded);
    detector_->finish();
    r_.attack_detections.merge(detector_->report());
  }

  // Exactly one outcome class per site (precedence: a deadline outranks a
  // disconnect outranks a truncation; anything clean that needed retries
  // is retried_ok). A lockstep scan books every site as sites_ok.
  if (ledger_.final_deadline) {
    ++r_.sites_timed_out;
  } else if (ledger_.final_disconnect) {
    ++r_.sites_disconnected;
  } else if (ledger_.final_truncated) {
    ++r_.sites_truncated;
  } else if (ledger_.retries > 0) {
    ++r_.sites_retried_ok;
  } else {
    ++r_.sites_ok;
  }
  r_.fault_exchanges += ledger_.exchanges;
  r_.fault_injected += ledger_.faults_injected;
  r_.fault_retries += ledger_.retries;
  r_.fault_deadline_hits += ledger_.deadline_hits;
  r_.fault_backoff_ms += ledger_.backoff_ms;

  // Reactor observability. Parks are a property of the site's exchanges,
  // not of the scheduler, so these fold identically for both drivers and
  // any thread count. Only booked on faulted scans so clean-scan metric
  // snapshots stay byte-identical to the historical ones.
  if (opts_.fault_injection) {
    r_.wire_metrics.reactor_parks += wakeups_;
    r_.wire_metrics.reactor_parked_rounds += parked_rounds_;
    r_.wire_metrics.park_duration_rounds.merge(park_hist_);
    r_.wire_metrics.wakeups_per_site.add(wakeups_);
  }

  if (wiretap) {
    // Everything folds into the site's per-family registry only; the scan
    // driver sums the family registries into the global snapshot once at
    // the end (MetricsRegistry merges are field-wise sums, so the result
    // is identical to merging per site, minus one merge per site here).
    trace::MetricsRegistry& family = r_.wire_metrics_by_family[spec_.family];
    if (materialize) {
      std::vector<trace::TraceEvent>& events = scratch_.decoded;
      trace::annotate_violations(events);
      trace::consume(family, events);
      if (opts_.wiretap_traces) {
        r_.site_traces[spec_.host] = trace::to_jsonl(events, spec_.host);
      }
    } else {
      // The hot path: one walk over the 32-byte records annotates and — via
      // the fold tee — aggregates the metrics straight into the family
      // registry, with violations landing as interned tag counts instead
      // of per-event tag strings. Identical registry contents to the
      // materialized branch (asserted by the scan tests): the annotator is
      // the same template body, the fold sees records in trace order with
      // their exact ring sequences, and tag counting is order-independent.
      scratch_.tag_counts.clear();
      scratch_.folder.rebind(family);
      trace::annotate_ring(scratch_.recorder, scratch_.tag_counts,
                           &scratch_.folder);
      scratch_.folder.finish();
      for (const auto& [name, n] : scratch_.tag_counts) {
        family.add_violation(name, n);
      }
    }
  }
}

core::Task<void> SiteTask::run() {
  const auto negotiation = core::probe_negotiation(target_);
  if (negotiation.npn_h2) ++r_.npn_sites;
  if (negotiation.alpn_h2) ++r_.alpn_sites;
  if (!negotiation.h2_established) co_return;

  // Faulted probes are re-run on fresh connections (bounded by
  // opts_.retry); with no ledger the wrapper collapses to one plain call,
  // so the lockstep path is untouched. The backoff between attempts parks
  // the whole site task.
  const Target& target = target_;
  auto retried = [&](auto make_task) {
    return core::probe_with_retry_task(target, opts_.retry, make_task);
  };

  // Coalesced scheduling: the shareable probes run as streams of one
  // connection (core::ProbeSession). Fault injection keeps the
  // per-fresh-connection path — its retry semantics are per connection —
  // as does the wiretap, whose frame record legitimately depends on the
  // connection layout. Report-identity between the two paths is asserted
  // by tests/scan_coalesce_test.cc. ProbeSession itself stays synchronous:
  // it only ever runs over the always-ready lockstep transport.
  std::optional<core::ProbeSession> session;
  if (opts_.coalesce && !target.faults.enabled && target.recorder == nullptr) {
    const core::ProbeSession::Options session_opts{
        .hpack_h = opts_.hpack_h,
        .expect_hpack =
            opts_.probe_hpack && hpack_family_of_interest(spec_.family)};
    session.emplace(target, session_opts, &scratch_.session);
  }

  core::SettingsProbeResult settings;
  if (session) {
    settings = session->settings();
  } else {
    settings =
        co_await retried([&] { return core::probe_settings_task(target); });
  }
  if (!settings.headers_received) co_return;
  ++r_.responding_sites;
  ++r_.server_counts[settings.server_header];

  if (opts_.probe_settings) {
    if (settings.settings_entry_count == 0) {
      r_.initial_window_size.add(kNullValue);
      r_.max_frame_size.add(kNullValue);
      r_.max_header_list_size.add(kNullValue);
      r_.max_concurrent_streams.add(kNullValue);
    } else {
      r_.initial_window_size.add(
          settings.initial_window_size
              ? static_cast<std::int64_t>(*settings.initial_window_size)
              : kUnlimitedValue);
      r_.max_frame_size.add(
          settings.max_frame_size
              ? static_cast<std::int64_t>(*settings.max_frame_size)
              : kUnlimitedValue);
      r_.max_header_list_size.add(
          settings.max_header_list_size
              ? static_cast<std::int64_t>(*settings.max_header_list_size)
              : kUnlimitedValue);
      r_.max_concurrent_streams.add(
          settings.max_concurrent_streams
              ? static_cast<std::int64_t>(*settings.max_concurrent_streams)
              : kUnlimitedValue);
    }
  }

  if (opts_.probe_flow_control) {
    const auto sframe = co_await retried(
        [&] { return core::probe_data_frame_control_task(target); });
    switch (sframe.outcome) {
      case SmallWindowOutcome::kRespectsWindow:
        ++r_.sframe_respecting;
        break;
      case SmallWindowOutcome::kZeroLengthData:
        ++r_.sframe_zero_length;
        break;
      case SmallWindowOutcome::kNoResponse:
        ++r_.sframe_no_response;
        if (spec_.family == "litespeed") ++r_.sframe_no_response_litespeed;
        break;
      case SmallWindowOutcome::kOversized:
        break;
    }
    const auto zero_window = co_await retried(
        [&] { return core::probe_zero_window_headers_task(target); });
    if (zero_window.headers_received) {
      ++r_.zero_window_headers_ok;
    }
    const auto wu = co_await retried(
        [&] { return core::probe_window_update_reactions_task(target); });
    switch (wu.zero_on_stream) {
      case UpdateReaction::kRstStream:
        ++r_.zero_wu_rst;
        break;
      case UpdateReaction::kIgnored:
        ++r_.zero_wu_ignore;
        break;
      case UpdateReaction::kGoaway:
        ++r_.zero_wu_goaway;
        break;
      case UpdateReaction::kGoawayWithDebug:
        ++r_.zero_wu_goaway_debug;
        break;
    }
    if (wu.zero_on_connection != UpdateReaction::kIgnored) {
      ++r_.zero_wu_conn_error;
    }
    if (wu.large_on_connection == UpdateReaction::kGoaway) {
      ++r_.large_wu_conn_goaway;
    }
    if (wu.large_on_stream == UpdateReaction::kRstStream) {
      ++r_.large_wu_stream_rst;
    } else {
      ++r_.large_wu_stream_ignore;
    }
  }

  if (opts_.probe_priority) {
    core::PriorityProbeResult prio;
    if (session) {
      prio = session->priority();
    } else {
      prio = co_await retried(
          [&] { return core::probe_priority_mechanism_task(target); });
    }
    if (prio.ran) {
      if (prio.pass_by_last_data) ++r_.priority_pass_last;
      if (prio.pass_by_first_data) ++r_.priority_pass_first;
      if (prio.pass_by_both) ++r_.priority_pass_both;
    }
    core::SelfDependencyProbeResult self_dep;
    if (session) {
      self_dep = session->self_dependency();
    } else {
      self_dep = co_await retried(
          [&] { return core::probe_self_dependency_task(target); });
    }
    switch (self_dep.reaction) {
      case UpdateReaction::kRstStream:
        ++r_.self_dep_rst;
        break;
      case UpdateReaction::kGoaway:
      case UpdateReaction::kGoawayWithDebug:
        ++r_.self_dep_goaway;
        break;
      case UpdateReaction::kIgnored:
        ++r_.self_dep_ignore;
        break;
    }
  }

  if (opts_.probe_push) {
    core::PushProbeResult push;
    if (session) {
      push = session->push();
    } else {
      push = co_await retried(
          [&] { return core::probe_server_push_task(target); });
    }
    if (push.push_received) {
      r_.push_hosts.push_back(spec_.host);
    }
  }

  if (opts_.probe_hpack && hpack_family_of_interest(spec_.family)) {
    core::HpackProbeResult hpack;
    if (session) {
      hpack = session->hpack_ratio();
    } else {
      hpack = co_await retried(
          [&] { return core::probe_hpack_ratio_task(target, opts_.hpack_h); });
    }
    if (hpack.ran) {
      if (hpack.ratio > 1.0) {
        ++r_.hpack_filtered_out;  // the paper drops r > 1 (§V-G)
      } else {
        r_.hpack_ratio_by_family[spec_.family].push_back(hpack.ratio);
      }
    }
  }
}

}  // namespace h2r::corpus
