// Large-scale scan driver: runs the Section III probe suite over a whole
// synthetic population (the paper's H2Scope uses a thread pool the same
// way, Section IV-B) and aggregates the observations into exactly the
// quantities the paper's tables and figures report. Each worker owns one
// contiguous shard of the site list and — by default — drives it with the
// event-loop reactor (corpus/reactor.h), multiplexing in-flight sites and
// parking stalled faulted connections; ScanOptions::event_loop = false
// selects the historical one-blocking-site-per-worker pool. The report is
// bitwise identical either way.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/probes.h"
#include "corpus/population.h"
#include "trace/detector.h"
#include "trace/metrics.h"
#include "util/stats.h"

namespace h2r::corpus {

struct ScanOptions {
  int threads = 0;        ///< 0 = hardware concurrency
  int hpack_h = 8;        ///< requests per site for Equation 1
  bool probe_settings = true;
  bool probe_flow_control = true;
  bool probe_priority = true;
  bool probe_push = true;
  bool probe_hpack = true;
  /// Coalesced probe scheduling (core::ProbeSession): probes that don't
  /// need a pristine connection run as streams of one shared connection
  /// per site. The report is bitwise identical either way (asserted by
  /// tests/scan_coalesce_test.cc); the scan silently stays sequential when
  /// fault injection or the wiretap is active, whose per-connection
  /// semantics are layout-dependent. H2R_COALESCE=0 pins the benches
  /// sequential.
  bool coalesce = true;
  /// Event-loop scan core: each worker owns one contiguous shard of the
  /// site list and runs a virtual-clock reactor (corpus/reactor.h) that
  /// multiplexes up to max_in_flight resumable SiteTasks, parking stalled
  /// faulted connections and retry backoffs on a timer wheel instead of
  /// spinning. false = the historical one-site-at-a-time worker pool. The
  /// report is bitwise identical either way (tests/scan_reactor_test.cc);
  /// H2R_EVENT_LOOP=0 pins the benches sequential.
  bool event_loop = true;
  /// In-flight site cap per reactor shard (event_loop only). The schedule
  /// and the report are cap-independent (tests/scan_reactor_test.cc); the
  /// cap only trades multiplexing width against cache locality. Under the
  /// virtual clock a park costs zero wall time no matter how few sites are
  /// in flight, so the default stays small enough to keep the interleaved
  /// working sets hot; raise it into the thousands when parks cover real
  /// latency (a future epoll-backed transport) instead of virtual rounds.
  int max_in_flight = 64;
  std::uint64_t seed = 7;
  /// H2Wiretap: fold every probe connection's frames into the report's
  /// wire_metrics (and per-family shards). Off by default — the null sink
  /// keeps the hot path free of tracing cost.
  bool wiretap_metrics = false;
  /// Additionally keep the annotated per-site JSONL traces (implies the
  /// recording wiretap_metrics needs; memory-heavy at full population
  /// scale, intended for small scans and debugging).
  bool wiretap_traces = false;
  /// Run every probe connection over a net::FaultyTransport instead of the
  /// perfect lockstep pump. Off by default: the plain scan stays
  /// bit-identical to the historical one.
  bool fault_injection = false;
  /// Base seed for fault schedules. Each site derives its own stream from
  /// (fault_seed, host), so schedules are independent of H2R_THREADS and of
  /// scan order. Override with H2R_FAULT_SEED in the benches.
  std::uint64_t fault_seed = 0xFA017ull;
  /// Scan-wide floor on the per-connection fault probability; each site's
  /// PathModel::loss_rate raises its own probability above this.
  double fault_floor = 0.2;
  /// Fresh-connection retry for faulted probes.
  core::RetryPolicy retry;
  /// Run the trace::SequenceDetector over every probe connection and fold
  /// the per-site reports into ScanReport::attack_detections. On a benign
  /// scan (this whole probe battery) the expected detection count is zero —
  /// the detector's false-positive bar, pinned by tests/detector_test.cc.
  /// Like the wiretap, detection is per *connection*, so enabling it keeps
  /// the scan on the sequential (non-coalesced) path.
  bool detect_attacks = false;
  trace::DetectorThresholds detector_thresholds;
};

/// Everything a full scan learns, pre-aggregated.
struct ScanReport {
  Epoch epoch{};
  std::size_t total_scanned = 0;

  // §V-B adoption.
  std::size_t npn_sites = 0;
  std::size_t alpn_sites = 0;
  std::size_t responding_sites = 0;

  // Table IV (full census; benches filter to >1,000).
  std::map<std::string, std::size_t> server_counts;
  std::size_t distinct_server_kinds = 0;

  // Tables V-VII + Fig 2. kNullValue keys mark empty-SETTINGS sites,
  // kUnlimitedValue marks parameter-absent-but-SETTINGS-present.
  ValueCounter initial_window_size;
  ValueCounter max_frame_size;
  ValueCounter max_header_list_size;
  ValueCounter max_concurrent_streams;

  // §V-D flow control.
  std::size_t sframe_respecting = 0;
  std::size_t sframe_zero_length = 0;
  std::size_t sframe_no_response = 0;
  std::size_t sframe_no_response_litespeed = 0;
  std::size_t zero_window_headers_ok = 0;
  std::size_t zero_wu_rst = 0;
  std::size_t zero_wu_ignore = 0;
  std::size_t zero_wu_goaway = 0;
  std::size_t zero_wu_goaway_debug = 0;
  std::size_t zero_wu_conn_error = 0;
  std::size_t large_wu_conn_goaway = 0;
  std::size_t large_wu_stream_rst = 0;
  std::size_t large_wu_stream_ignore = 0;

  // §V-E priority.
  std::size_t priority_pass_last = 0;
  std::size_t priority_pass_first = 0;
  std::size_t priority_pass_both = 0;
  std::size_t self_dep_rst = 0;
  std::size_t self_dep_goaway = 0;
  std::size_t self_dep_ignore = 0;

  // §V-F push.
  std::vector<std::string> push_hosts;

  // §V-G / Figures 4-5: per-family compression ratios (r <= 1 retained,
  // r > 1 filtered, as the paper does).
  std::map<std::string, std::vector<double>> hpack_ratio_by_family;
  std::size_t hpack_filtered_out = 0;  ///< sites with r > 1

  // H2Wiretap (populated when ScanOptions::wiretap_metrics is set): frame
  // and violation metrics across every probe connection of the scan, plus
  // the same broken out per server family. All counters are sums and the
  // maps are ordered, so the merge is bitwise independent of H2R_THREADS.
  trace::MetricsRegistry wire_metrics;
  std::map<std::string, trace::MetricsRegistry> wire_metrics_by_family;
  /// host -> annotated JSONL trace (when ScanOptions::wiretap_traces).
  std::map<std::string, std::string> site_traces;

  /// Sequence-detector aggregate over every probe connection (populated
  /// when ScanOptions::detect_attacks; all-zero flags on a benign scan).
  trace::DetectorReport attack_detections;

  // Per-site scan outcome, from the final (post-retry) attempt of each
  // site's probe sequence. Every site lands in exactly one class, so the
  // five counters always sum to total h2-offering sites scanned. On a
  // lockstep scan everything is sites_ok.
  std::size_t sites_ok = 0;            ///< clean first attempt
  std::size_t sites_retried_ok = 0;    ///< clean only after >= 1 retry
  std::size_t sites_truncated = 0;     ///< final attempt cut or corrupted
  std::size_t sites_disconnected = 0;  ///< final attempt lost the connection
  std::size_t sites_timed_out = 0;     ///< final attempt hit a deadline
  // Transport-level totals over every connection of the scan (faulted runs
  // only; all zero on a lockstep scan).
  std::uint64_t fault_exchanges = 0;      ///< exchanges run
  std::uint64_t fault_injected = 0;       ///< exchanges with a fired fault
  std::uint64_t fault_retries = 0;        ///< probe re-runs taken
  std::uint64_t fault_deadline_hits = 0;  ///< round/byte caps hit (hangs)
  double fault_backoff_ms = 0;            ///< simulated backoff spent

  /// Sites making up the Figures 4/5 sample (sum over families).
  [[nodiscard]] std::size_t hpack_sample_size() const;

  /// Folds @p other into this report: counters add, ordered maps and
  /// vectors concatenate. Epoch and total_scanned are scan-wide facts, not
  /// merged. Each worker's partial report covers a disjoint site subset,
  /// so merging in any grouping yields the same totals.
  void merge(const ScanReport& other);
};

/// Scans @p population with the probes selected in @p options.
ScanReport scan_population(const Population& population,
                           const ScanOptions& options = {});

}  // namespace h2r::corpus
