// The paper's measured marginal distributions, transcribed as data.
//
// These are the *inputs* to corpus generation: the synthetic Alexa
// population is seeded so that a full H2Scope scan re-derives them. Section
// and table references are to "Are HTTP/2 Servers Ready Yet?" (ICDCS'17).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace h2r::corpus {

/// The two measurement campaigns.
enum class Epoch : std::uint8_t {
  kExp1,  ///< July 2016
  kExp2,  ///< January 2017
};

std::string_view to_string(Epoch e) noexcept;

/// (value, site count) pair for a SETTINGS distribution table.
struct ValueCount {
  std::int64_t value;  ///< kNullValue / kUnlimitedValue are sentinels
  std::size_t count;
};

/// Sentinel: site announces an empty SETTINGS frame ("NULL" rows).
inline constexpr std::int64_t kNullValue = -1;
/// Sentinel: parameter omitted while others are present ("unlimited").
inline constexpr std::int64_t kUnlimitedValue = -2;

struct EpochMarginals {
  Epoch epoch;

  // ---- §V-B adoption ----------------------------------------------------
  std::size_t total_scanned;     ///< 1,000,000 Alexa sites
  std::size_t npn_sites;         ///< h2 via NPN
  std::size_t alpn_sites;        ///< h2 via ALPN
  std::size_t responding_sites;  ///< returned HEADERS; basis of all tables

  // ---- Table IV: server families >1000 sites + remainder ----------------
  std::vector<std::pair<std::string, std::size_t>> server_families;
  std::size_t other_family_sites;  ///< responding sites beyond Table IV

  // ---- Tables V / VI / VII ----------------------------------------------
  std::vector<ValueCount> initial_window_size;    // Table V
  std::vector<ValueCount> max_frame_size;         // Table VI
  std::vector<ValueCount> max_header_list_size;   // Table VII

  // ---- Figure 2 (no exact table in the paper; shape-calibrated) ---------
  std::vector<ValueCount> max_concurrent_streams;

  // ---- §V-D flow control -------------------------------------------------
  std::size_t sframe_respecting_sites;   // V-D1: 1-byte DATA
  std::size_t sframe_zero_length_sites;  // V-D1: zero-length DATA
  std::size_t sframe_no_response_sites;  // V-D1: silent
  std::size_t sframe_silent_litespeed;   // ...of which LiteSpeed
  std::size_t zero_window_headers_sites; // V-D2: HEADERS at window 0
  std::size_t zero_wu_rst_sites;         // V-D3 stream scope
  std::size_t zero_wu_goaway_sites;
  std::size_t zero_wu_debug_sites;
  std::size_t large_wu_conn_goaway_sites;   // V-D4
  std::size_t large_wu_stream_rst_sites;

  // ---- §V-E priority ------------------------------------------------------
  std::size_t priority_pass_last_sites;   // by last-DATA rule (superset)
  std::size_t priority_pass_first_sites;  // by first-DATA rule (superset)
  std::size_t priority_pass_both_sites;
  std::size_t self_dep_rst_sites;  // V-E2; remainder splits GOAWAY/ignore

  // ---- §V-F push -----------------------------------------------------------
  std::vector<std::string> push_sites;  ///< hostnames observed pushing

  // ---- §V-G HPACK -----------------------------------------------------------
  /// Fraction of each family's sites that index response headers (drives
  /// the Figure 4/5 per-family ratio CDFs; keys match server_families).
  std::vector<std::pair<std::string, double>> hpack_aggressive_fraction;
  /// Fraction of responding sites whose responses grow cookies (r > 1,
  /// filtered out of Figures 4/5 by the paper).
  double cookie_churn_fraction;
};

/// The transcribed marginals for an epoch.
const EpochMarginals& marginals(Epoch epoch);

}  // namespace h2r::corpus
