// Synthetic Alexa-1M population generation.
//
// generate_population() expands the paper's marginals (marginals.h) into a
// concrete, deterministic list of per-site behaviour specifications. A full
// H2Scope scan over the result (scan.h) re-derives the marginals — the
// measurement-consistency reproduction described in DESIGN.md §2.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/probes.h"
#include "corpus/marginals.h"
#include "server/profile.h"

namespace h2r::corpus {

/// Complete behavioural specification of one synthetic site.
struct SiteSpec {
  std::string host;
  std::string family;  ///< profile key or synthetic "other-NNN"

  // TLS negotiation surface (§V-B): which extensions offer "h2".
  bool npn_h2 = false;
  bool alpn_h2 = false;
  /// Whether the site answers requests (the paper's tables cover only the
  /// 44,390 / 64,299 sites that returned HEADERS).
  bool responds = false;

  // Advertised SETTINGS; nullopt = omitted from the frame.
  bool null_settings = false;  ///< sends an empty SETTINGS frame
  std::optional<std::uint32_t> max_concurrent_streams;
  std::optional<std::uint32_t> initial_window_size;
  std::optional<std::uint32_t> max_frame_size;
  std::optional<std::uint32_t> max_header_list_size;

  // Behaviour axes (see ServerProfile for semantics).
  server::SmallWindowBehavior small_window =
      server::SmallWindowBehavior::kRespectWindow;
  bool flow_control_on_headers = false;
  server::ErrorReaction zero_wu_stream = server::ErrorReaction::kRstStream;
  server::ErrorReaction zero_wu_conn = server::ErrorReaction::kGoaway;
  server::ErrorReaction large_wu_stream = server::ErrorReaction::kRstStream;
  server::ErrorReaction large_wu_conn = server::ErrorReaction::kGoaway;
  server::SchedulerKind scheduler = server::SchedulerKind::kRoundRobin;
  server::ErrorReaction self_dependency = server::ErrorReaction::kRstStream;
  bool supports_push = false;
  bool hpack_aggressive = true;  ///< index response headers dynamically
  bool cookie_churn = false;
  int extra_header_count = 3;
  double base_rtt_ms = 60;
  /// Path packet-loss rate (PathModel::loss_rate). Most sites sit on clean
  /// paths; a tail is lossy. Feeds net::fault_probability in faulted scans.
  double loss_rate = 0;

  /// Materializes the server profile this site runs.
  [[nodiscard]] server::ServerProfile to_profile() const;
  /// Materializes a full probe target (profile + content + path).
  [[nodiscard]] core::Target to_target() const;
};

struct Population {
  Epoch epoch;
  double scale = 1.0;
  std::size_t total_scanned = 0;  ///< scaled Alexa list size
  std::size_t non_h2_sites = 0;   ///< scaled sites speaking no h2 at all
  std::vector<SiteSpec> sites;    ///< every h2-offering site, materialized

  [[nodiscard]] std::size_t responding_count() const;
};

/// Generates the population for @p epoch. @p scale > 1 subsamples uniformly
/// (1/scale of every category) for fast runs; benches use scale = 1.
Population generate_population(Epoch epoch, std::uint64_t seed,
                               double scale = 1.0);

}  // namespace h2r::corpus
