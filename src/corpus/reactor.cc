#include "corpus/reactor.h"

#include <algorithm>
#include <utility>

namespace h2r::corpus {

Reactor::Reactor(std::span<const SiteSpec> sites, const ScanOptions& opts,
                 ScanReport& report)
    : sites_(sites),
      opts_(opts),
      report_(report),
      cap_(opts.max_in_flight > 0
               ? static_cast<std::size_t>(opts.max_in_flight)
               : 1) {}

Reactor::InFlight Reactor::admit(std::size_t site) {
  std::unique_ptr<SiteScratch> scratch;
  if (!free_scratch_.empty()) {
    scratch = std::move(free_scratch_.back());
    free_scratch_.pop_back();
  } else {
    scratch = std::make_unique<SiteScratch>();
  }
  auto task =
      std::make_unique<SiteTask>(sites_[site], opts_, report_, *scratch);
  return InFlight{site, std::move(task), std::move(scratch)};
}

void Reactor::retire(InFlight flight) {
  flight.task.reset();  // before its scratch goes back in the pool
  free_scratch_.push_back(std::move(flight.scratch));
}

void Reactor::run() {
  std::vector<InFlight> ready;
  std::size_t next = 0;
  while (next < sites_.size() || live_ > 0) {
    // Admission: fill free capacity in site order. Freshly admitted sites
    // form this tick's ready batch; parked sites keep sleeping.
    while (live_ < cap_ && next < sites_.size()) {
      ready.push_back(admit(next++));
      ++live_;
    }
    peak_ = std::max(peak_, live_);

    if (ready.empty()) {
      // Everyone is parked: jump the clock to the next occupied instant.
      auto due = wheel_.pop_next();
      tick_ = due.first;
      ready = std::move(due.second);
    }

    // Drain the batch in ascending site index — with the tick-ordered
    // wheel this is the deterministic (wakeup-tick, site-index) order.
    std::sort(ready.begin(), ready.end(),
              [](const InFlight& a, const InFlight& b) {
                return a.site < b.site;
              });
    for (auto& flight : ready) {
      if (flight.task->advance()) {
        retire(std::move(flight));
        --live_;
      } else {
        // park_rounds >= 1 by construction; clamp anyway so a degenerate
        // park can never wedge the clock.
        const std::uint64_t sleep =
            std::max(1, flight.task->park_rounds());
        wheel_.park(tick_ + sleep, std::move(flight));
      }
    }
    ready.clear();
  }
}

}  // namespace h2r::corpus
