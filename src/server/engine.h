// The HTTP/2 server engine.
//
// A full RFC 7540 server endpoint over an abstract byte stream: connection
// preface, SETTINGS exchange, HPACK header coding, stream lifecycle, both
// flow-control scopes, the §5.3 priority scheduler, server push, PING — with
// every deviation axis of the paper's Table III selected by a ServerProfile.
//
// Transport model: the owner feeds client->server bytes into receive() and
// drains server->client bytes from take_output(). The engine is synchronous
// and deterministic; no threads, no wall clock.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "h2/constants.h"
#include "h2/flow_control.h"
#include "h2/frame.h"
#include "h2/frame_codec.h"
#include "h2/priority_tree.h"
#include "h2/settings.h"
#include "h2/stream.h"
#include "hpack/decoder.h"
#include "hpack/encoder.h"
#include "server/mitigation.h"
#include "server/profile.h"
#include "net/upgrade.h"
#include "server/site.h"
#include "trace/recorder.h"

namespace h2r::server {

/// Prebuilt response header blocks shared by every connection engine on one
/// serving thread (shard). Entries are *static* blocks: produced against a
/// pristine HPACK encoder (empty dynamic table, never resized, no pending
/// size update), so any other pristine engine with the same profile emits
/// the identical bytes. Keyed by Resource pointer (nullptr = the 404 page);
/// sound because sibling engines share one Site, so pointers are stable.
/// Deliberately lock-free and un-shared across threads — one per shard.
struct SharedBlockCache {
  struct Entry {
    const Resource* resource;
    Bytes block;
  };
  std::vector<Entry> entries;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};

class Http2Server {
 public:
  /// How the connection begins.
  enum class StartMode : std::uint8_t {
    kTls,  ///< TLS + ALPN/NPN happened outside; first bytes are the preface
    kH2c,  ///< cleartext: first bytes are an HTTP/1.1 request, possibly an
           ///< Upgrade: h2c offer (RFC 7540 §3.2)
  };

  /// @p recorder is the optional H2Wiretap sink shared with the client side;
  /// the server records every frame it emits (direction s2c), client
  /// SETTINGS it applies, HPACK table churn, scheduler window stalls and
  /// parse errors. Null disables tracing.
  Http2Server(ServerProfile profile, Site site,
              StartMode mode = StartMode::kTls,
              trace::Recorder* recorder = nullptr);

  /// Shared-ownership variant: the engine aliases @p profile / @p site
  /// instead of deep-copying them, so constructing a connection against an
  /// already-materialized profile+site costs no per-connection heap churn.
  /// Target caches shared copies and the scan reuses them across every
  /// connection of a site.
  Http2Server(std::shared_ptr<const ServerProfile> profile,
              std::shared_ptr<const Site> site,
              StartMode mode = StartMode::kTls,
              trace::Recorder* recorder = nullptr);

  /// Rewinds the engine to the just-constructed state of a fresh
  /// connection — parser, HPACK tables, settings, windows, streams and
  /// priority tree all reset; the profile, site and transport buffer pool
  /// are kept. A reset engine is observably identical to a newly
  /// constructed one, minus the allocations.
  void reset();

  /// Reset onto a different profile/site (the scan's per-worker engine slot
  /// serves a different site each time).
  void reset(std::shared_ptr<const ServerProfile> profile,
             std::shared_ptr<const Site> site,
             StartMode mode = StartMode::kTls,
             trace::Recorder* recorder = nullptr);

  /// Feeds client bytes; all complete frames are processed immediately and
  /// any producible response bytes are queued for take_output().
  void receive(std::span<const std::uint8_t> bytes);

  /// Initiates graceful shutdown (§6.8): GOAWAY with the last accepted
  /// stream id and NO_ERROR; in-flight responses complete, new streams are
  /// refused, and the connection dies once drained.
  void shutdown();

  /// True once the h2c upgrade completed (kH2c mode only).
  [[nodiscard]] bool upgraded() const noexcept { return upgraded_; }

  /// True once the client announced a clean close with GOAWAY. The serving
  /// loop uses this to tell a polite EOF (peer said goodbye, then closed)
  /// from an abrupt connection loss when it classifies terminal states.
  [[nodiscard]] bool client_goaway() const noexcept { return client_goaway_; }

  /// Highest client-initiated stream id accepted on this connection —
  /// streams served so far = (id + 1) / 2. Serving-loop bookkeeping.
  [[nodiscard]] std::uint32_t last_client_stream_id() const noexcept {
    return last_client_stream_id_;
  }

  /// True while a graceful shutdown() is draining in-flight streams.
  [[nodiscard]] bool draining() const noexcept { return draining_; }

  /// Opts into recording received frames as c2s wiretap events. In-process
  /// exchanges leave this off — the ClientConnection sharing the recorder
  /// already records its own sends — but when the peer is a real remote
  /// client (the serving loop), the engine is the only party that can put
  /// the client's frames on the tape.
  void record_received_frames(bool on) noexcept { record_received_ = on; }

  /// Enables/disables the encoded response-header-block cache (on by
  /// default). Reuse is byte-identical by construction: a block is cached
  /// only when producing it had no HPACK side effects (no dynamic-table
  /// inserts, evictions, or pending §6.3 size updates) and is replayed only
  /// while the encoder state it was produced against is unchanged — so the
  /// knob exists purely for ablation, never for correctness.
  void set_header_block_cache(bool on) {
    header_cache_enabled_ = on;
    block_cache_.clear();
  }
  [[nodiscard]] std::uint64_t header_cache_hits() const noexcept {
    return header_cache_hits_;
  }
  [[nodiscard]] std::uint64_t header_cache_misses() const noexcept {
    return header_cache_misses_;
  }

  /// Attaches a cache shared by every engine on one serving thread (shard).
  /// It may only hold *static* blocks: encodes produced against a pristine
  /// encoder (empty dynamic table, never resized) with no side effects, so
  /// any other pristine engine with the same profile replays them
  /// byte-identically. Engines whose dynamic table has diverged (aggressive
  /// indexing, peer table resizes) simply stop matching — they fall back to
  /// their private versioned cache. NOT thread-safe: one per shard, by
  /// construction never reached from two threads.
  void set_shared_block_cache(SharedBlockCache* cache) noexcept {
    shared_block_cache_ = cache;
  }

  /// Drains queued server->client bytes.
  [[nodiscard]] Bytes take_output();

  /// Hands a drained output buffer back for reuse, so steady-state frame
  /// emission stops reallocating (the transport loop calls this after it
  /// has shipped the bytes from take_output()).
  void recycle(Bytes buffer) { buffer_pool_.release(std::move(buffer)); }

  /// False once a connection error occurred or GOAWAY was exchanged.
  [[nodiscard]] bool alive() const noexcept { return !dead_; }

  /// The transport under this connection died (net::FaultyTransport's
  /// truncation / disconnect path). No GOAWAY can reach the peer; the
  /// engine just stops. Asserts the death-path invariants: whatever state
  /// the fault interrupted, stream and flow-control accounting must still
  /// be coherent.
  void on_transport_close(const Status& status);

  [[nodiscard]] const ServerProfile& profile() const noexcept { return *profile_; }
  [[nodiscard]] const Site& site() const noexcept { return *site_; }

  // ---- introspection for tests and ablations ---------------------------
  [[nodiscard]] std::size_t active_stream_count() const;
  [[nodiscard]] const h2::PriorityTree& priority_tree() const noexcept {
    return tree_;
  }
  [[nodiscard]] std::int64_t connection_send_window() const noexcept {
    return conn_send_window_.available();
  }
  [[nodiscard]] std::size_t frames_received() const noexcept {
    return frames_received_;
  }
  /// Response octets accepted but not yet deliverable (what a slow-read
  /// attacker pins in server memory — §VI of the paper).
  [[nodiscard]] std::size_t pending_response_octets() const;
  /// Current HPACK decoder dynamic-table occupancy (header-bomb exposure).
  [[nodiscard]] std::size_t decoder_table_octets() const noexcept {
    return decoder_.table().size_octets();
  }

  // ---- mitigation introspection -----------------------------------------
  /// O(1) incremental twin of pending_response_octets() (asserted equal on
  /// the transport-close path) — what the mitigation slow-read budget reads
  /// after every frame — plus its connection-lifetime high-water mark.
  [[nodiscard]] std::size_t pinned_response_octets() const noexcept {
    return pinned_octets_;
  }
  [[nodiscard]] std::size_t peak_pinned_octets() const noexcept {
    return peak_pinned_octets_;
  }
  [[nodiscard]] MitigationLevel mitigation_level() const noexcept {
    return mitigation_level_;
  }
  /// Attack class that first engaged mitigation (kNone when it never did).
  [[nodiscard]] trace::AttackClass suspected_attack() const noexcept {
    return suspected_attack_;
  }

 private:
  struct Stream {
    Stream(std::uint32_t id, std::int64_t send_window, std::int64_t recv_window)
        : sm(id), send_window(send_window), recv_window(recv_window) {}

    h2::StreamStateMachine sm;
    h2::FlowWindow send_window;  ///< server->client DATA budget
    h2::FlowWindow recv_window;  ///< client->server DATA budget (uploads)
    std::size_t uploaded_bytes = 0;
    hpack::HeaderList request_headers;
    hpack::HeaderList response_headers;
    bool response_ready = false;
    bool headers_sent = false;
    std::size_t body_size = 0;
    std::size_t body_offset = 0;
    const Resource* resource = nullptr;  // nullptr => synthetic 404 body
    bool is_push = false;
    bool zero_length_emitted = false;
    bool stalled = false;  ///< SmallWindowBehavior::kStall engaged
    bool stall_traced = false;  ///< open kWindowStall event for this stream
    /// Response headers are a pure function of (profile, site, resource):
    /// the header list build is deferred to first encode and the encoded
    /// block may come from the response-block cache. Never set for POST
    /// (upload-dependent headers) or cookie-churn sites.
    bool cacheable_response = false;
    std::size_t opened_at_frame = 0;  ///< frames_received_ at creation
  };

  // -- frame dispatch (zero-copy: views alias the parser buffer) ----------
  void on_frame(const h2::FrameView& frame);
  void handle_headers(const h2::FrameView& frame);
  void complete_headers(std::uint32_t stream_id,
                        std::span<const std::uint8_t> fragment,
                        bool end_stream,
                        std::optional<h2::PriorityInfo> priority);
  void handle_data(const h2::FrameView& frame);
  void handle_priority(const h2::FrameView& frame);
  void handle_rst_stream(const h2::FrameView& frame);
  void handle_settings(const h2::FrameView& frame);
  void handle_ping(const h2::FrameView& frame);
  void handle_goaway(const h2::FrameView& frame);
  void handle_window_update(const h2::FrameView& frame);
  void handle_continuation(const h2::FrameView& frame);

  // -- request/response ---------------------------------------------------
  void start_response(Stream& stream);
  /// The deterministic GET/404 response header list for @p stream (shared
  /// by the eager path and the cache-miss path).
  [[nodiscard]] hpack::HeaderList build_response_headers(const Stream& stream);
  /// Encoded response HEADERS block for @p stream: a cache memcpy on the
  /// hot path, a build+encode (and possibly a cache store) otherwise.
  [[nodiscard]] Bytes response_block(Stream& stream);
  void maybe_push(Stream& parent);
  void apply_priority_signal(std::uint32_t stream_id,
                             const h2::PriorityInfo& info, bool from_headers);

  // -- emission -----------------------------------------------------------
  void pump();
  [[nodiscard]] bool stream_eligible(const Stream& s) const;
  [[nodiscard]] std::uint32_t pick_round_robin(bool fcfs);
  /// Serves one frame's worth of work on @p stream_id; returns octets of
  /// DATA consumed against the connection window.
  void serve_one(std::uint32_t stream_id);

  // -- plumbing -----------------------------------------------------------
  void send_connection_preface();
  void send_frame(const h2::Frame& frame);
  /// Emits @p block as HEADERS (+ CONTINUATIONs when it exceeds the peer's
  /// SETTINGS_MAX_FRAME_SIZE, §4.3).
  void send_header_block(std::uint32_t stream_id, Bytes block, bool end_stream);
  void react(ErrorReaction reaction, std::uint32_t stream_id,
             h2::ErrorCode stream_code, h2::ErrorCode conn_code,
             std::string debug);
  void stream_error(std::uint32_t stream_id, h2::ErrorCode code);
  void connection_error(h2::ErrorCode code, std::string debug);
  void close_stream(std::uint32_t stream_id);
  [[nodiscard]] bool tiny_window_mode() const;
  /// DATA emission fast path: frame header + procedurally generated body
  /// written straight into the output buffer — no Frame, no payload vector.
  void send_data_direct(std::uint32_t stream_id, const Resource* resource,
                        std::size_t offset, std::size_t chunk, bool end_stream);

  // -- mitigation ---------------------------------------------------------
  void pin_octets(std::size_t n);
  void unpin_octets(std::size_t n);
  [[nodiscard]] bool throttled() const noexcept {
    return mitigation_level_ >= MitigationLevel::kThrottle;
  }
  /// Pre-dispatch per-frame accounting: rolls the rate window, bumps the
  /// per-axis counters, refreshes the amortized slow-POST scan.
  void mitigation_on_frame(const h2::FrameView& frame);
  /// Post-dispatch budget check + escalation / release state machine.
  void mitigation_check();
  [[nodiscard]] trace::AttackClass mitigation_violation() const;
  /// Level-2 response: reset the streams pinning resources for @p cls.
  void rst_offenders(trace::AttackClass cls);
  void note_mitigation(MitigationLevel level, trace::AttackClass cls);

  // -- wiretap ------------------------------------------------------------
  /// encoder_.encode with HPACK table-churn trace events (s2c blocks). Only
  /// the encoding endpoint records churn; the peer's decoder replays the
  /// identical instruction stream.
  Bytes encode_block(const hpack::HeaderList& headers);
  void note_hpack_delta(std::uint64_t inserts, std::uint64_t evictions);
  /// Records a kWindowStall for every stream with deliverable work blocked
  /// on flow control; called when the scheduler comes up empty-handed.
  void note_window_stalls();
  void note_window_resume(Stream& stream);

  std::shared_ptr<const ServerProfile> profile_;
  std::shared_ptr<const Site> site_;

  h2::FrameParser parser_;
  hpack::Encoder encoder_;  ///< server->client header blocks
  hpack::Decoder decoder_;  ///< client->server header blocks
  h2::SettingsMap our_settings_;
  h2::SettingsMap peer_settings_;

  h2::FlowWindow conn_send_window_;  ///< server->client DATA budget
  h2::FlowWindow conn_recv_window_;  ///< client->server DATA budget

  std::map<std::uint32_t, Stream> streams_;
  h2::PriorityTree tree_;

  std::size_t preface_matched_ = 0;
  std::uint32_t last_client_stream_id_ = 0;
  std::uint32_t next_push_stream_id_ = 2;
  std::uint32_t last_round_robin_ = 0;
  std::uint64_t cookie_counter_ = 0;
  std::size_t frames_received_ = 0;

  // Mitigation state (see server/mitigation.h). The pinned-octet pair is
  // maintained unconditionally (two adds per response lifecycle); the rest
  // only moves when profile_->mitigation.enabled.
  std::size_t pinned_octets_ = 0;
  std::size_t peak_pinned_octets_ = 0;
  std::size_t last_progress_frame_ = 0;  ///< frames_received_ at last delivery
  MitigationLevel mitigation_level_ = MitigationLevel::kNone;
  trace::AttackClass suspected_attack_ = trace::AttackClass::kNone;
  std::size_t level_started_frame_ = 0;
  std::size_t last_violation_frame_ = 0;
  std::size_t window_started_frame_ = 0;
  std::uint32_t resets_in_window_ = 0;
  std::uint32_t control_in_window_ = 0;
  std::uint32_t priority_in_window_ = 0;
  bool slow_post_suspect_ = false;  ///< amortized O(streams) scan result

  // Response header-block cache. Keyed by resource identity (nullptr = the
  // synthetic 404); an entry is valid only while the HPACK encoder state it
  // was produced against is untouched, so replaying it is byte-identical to
  // re-encoding. A handful of resources per site → linear scan beats a map.
  struct BlockCacheEntry {
    const Resource* resource;
    Bytes block;
    std::uint64_t inserts;    ///< encoder insert_count at encode time
    std::uint64_t evictions;  ///< encoder eviction_count at encode time
    std::uint64_t cap_epoch;  ///< encoder capacity_epoch at encode time
  };
  [[nodiscard]] bool cache_entry_valid(const BlockCacheEntry& e) const {
    return e.inserts == encoder_.table().insert_count() &&
           e.evictions == encoder_.table().eviction_count() &&
           e.cap_epoch == encoder_.capacity_epoch();
  }
  std::vector<BlockCacheEntry> block_cache_;
  SharedBlockCache* shared_block_cache_ = nullptr;
  bool header_cache_enabled_ = true;
  std::uint64_t header_cache_hits_ = 0;
  std::uint64_t header_cache_misses_ = 0;

  // CONTINUATION reassembly state.
  std::optional<std::uint32_t> continuation_stream_;
  Bytes continuation_fragment_;
  bool continuation_end_stream_ = false;
  std::optional<h2::PriorityInfo> continuation_priority_;

  ByteWriter out_;
  BufferPool buffer_pool_;
  bool dead_ = false;
  bool client_goaway_ = false;
  bool draining_ = false;  ///< graceful shutdown in progress
  bool record_received_ = false;  ///< tape c2s frames (real-socket serving)

  // h2c bootstrap state (StartMode::kH2c).
  StartMode start_mode_;
  bool upgraded_ = false;
  std::string http1_buffer_;

  trace::Recorder* recorder_ = nullptr;  ///< H2Wiretap sink; null = off
};

}  // namespace h2r::server
