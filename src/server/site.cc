#include "server/site.h"

namespace h2r::server {

Site& Site::add_resource(Resource r) {
  resources_[r.path] = std::move(r);
  return *this;
}

Site& Site::set_push_list(std::string trigger_path,
                          std::vector<std::string> paths) {
  push_lists_[std::move(trigger_path)] = std::move(paths);
  return *this;
}

Site& Site::add_response_header(std::string name, std::string value) {
  extra_headers_.emplace_back(std::move(name), std::move(value));
  return *this;
}

const Resource* Site::find(std::string_view path) const {
  auto it = resources_.find(path);
  return it == resources_.end() ? nullptr : &it->second;
}

const std::vector<std::string>* Site::push_list(
    std::string_view trigger_path) const {
  auto it = push_lists_.find(trigger_path);
  return it == push_lists_.end() ? nullptr : &it->second;
}

Site Site::standard_testbed_site(std::string host) {
  Site site(std::move(host));
  site.add_resource({.path = "/", .size = 2'048, .content_type = "text/html"});
  // Large objects so concurrent responses span many DATA frames (§III-A1:
  // small objects finish too fast to observe interleaving).
  for (int i = 0; i < 8; ++i) {
    site.add_resource({.path = "/large/" + std::to_string(i),
                       .size = 512 * 1024,
                       .content_type = "application/octet-stream"});
  }
  // Medium objects for the priority probe (Algorithm 1 serves several
  // streams whose completion order must be distinguishable).
  for (int i = 0; i < 8; ++i) {
    site.add_resource({.path = "/object/" + std::to_string(i),
                       .size = 64 * 1024,
                       .content_type = "application/octet-stream"});
  }
  site.add_resource(
      {.path = "/small", .size = 256, .content_type = "text/plain"});
  site.add_resource(
      {.path = "/style.css", .size = 4'096, .content_type = "text/css"});
  site.add_resource(
      {.path = "/app.js", .size = 8'192, .content_type = "application/javascript"});
  site.add_resource(
      {.path = "/logo.png", .size = 16'384, .content_type = "image/png"});
  site.set_push_list("/", {"/style.css", "/app.js", "/logo.png"});
  return site;
}

namespace {

/// Fills @p out with the body pattern octets for absolute byte indices
/// [offset, offset+out.size()): (h >> (i % 8)) + i * 131, truncated to an
/// octet. The i % 8 lane cycle and the +131 accumulator mod 256 make the
/// sequence periodic every lcm(8, 256/gcd(131·8, 256)) = 256 octets, so
/// large bodies are one 256-octet tile synthesized scalar and then
/// replicated with doubling copies at memcpy speed — the scan delivers
/// hundreds of kilobytes of procedural DATA per site, and the original
/// octet-at-a-time loop dominated whole-scan wall time.
void fill_body_pattern(std::uint64_t h, std::size_t offset,
                       std::span<std::uint8_t> out) {
  constexpr std::size_t kPeriod = 256;
  const std::size_t head = std::min(out.size(), kPeriod);
  std::uint8_t base[8];
  for (int k = 0; k < 8; ++k) base[k] = static_cast<std::uint8_t>(h >> k);
  std::uint8_t mul = static_cast<std::uint8_t>(offset * 131u);
  std::size_t lane = offset % 8;
  for (std::size_t j = 0; j < head; ++j) {
    out[j] = static_cast<std::uint8_t>(base[lane] + mul);
    mul = static_cast<std::uint8_t>(mul + 131u);
    if (++lane == 8) lane = 0;
  }
  std::size_t filled = head;
  while (filled < out.size()) {
    const std::size_t n = std::min(filled, out.size() - filled);
    std::copy_n(out.data(), n, out.data() + filled);
    filled += n;
  }
}

/// FNV-1a over the path seeds the pattern.
std::uint64_t body_seed(const Resource& resource) {
  std::uint64_t h = 1469598103934665603ull;
  for (char c : resource.path) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

void resource_body_into(ByteWriter& out, const Resource& resource,
                        std::size_t offset, std::size_t len) {
  const std::size_t end = std::min(offset + len, resource.size);
  if (end <= offset) return;
  fill_body_pattern(body_seed(resource), offset, out.extend(end - offset));
}

Bytes resource_body(const Resource& resource, std::size_t offset,
                    std::size_t len) {
  ByteWriter w;
  resource_body_into(w, resource, offset, len);
  return w.take();
}

}  // namespace h2r::server
