#include "server/site.h"

namespace h2r::server {

Site& Site::add_resource(Resource r) {
  resources_[r.path] = std::move(r);
  return *this;
}

Site& Site::set_push_list(std::string trigger_path,
                          std::vector<std::string> paths) {
  push_lists_[std::move(trigger_path)] = std::move(paths);
  return *this;
}

Site& Site::add_response_header(std::string name, std::string value) {
  extra_headers_.emplace_back(std::move(name), std::move(value));
  return *this;
}

const Resource* Site::find(const std::string& path) const {
  auto it = resources_.find(path);
  return it == resources_.end() ? nullptr : &it->second;
}

const std::vector<std::string>* Site::push_list(
    const std::string& trigger_path) const {
  auto it = push_lists_.find(trigger_path);
  return it == push_lists_.end() ? nullptr : &it->second;
}

Site Site::standard_testbed_site(std::string host) {
  Site site(std::move(host));
  site.add_resource({.path = "/", .size = 2'048, .content_type = "text/html"});
  // Large objects so concurrent responses span many DATA frames (§III-A1:
  // small objects finish too fast to observe interleaving).
  for (int i = 0; i < 8; ++i) {
    site.add_resource({.path = "/large/" + std::to_string(i),
                       .size = 512 * 1024,
                       .content_type = "application/octet-stream"});
  }
  // Medium objects for the priority probe (Algorithm 1 serves several
  // streams whose completion order must be distinguishable).
  for (int i = 0; i < 8; ++i) {
    site.add_resource({.path = "/object/" + std::to_string(i),
                       .size = 64 * 1024,
                       .content_type = "application/octet-stream"});
  }
  site.add_resource(
      {.path = "/small", .size = 256, .content_type = "text/plain"});
  site.add_resource(
      {.path = "/style.css", .size = 4'096, .content_type = "text/css"});
  site.add_resource(
      {.path = "/app.js", .size = 8'192, .content_type = "application/javascript"});
  site.add_resource(
      {.path = "/logo.png", .size = 16'384, .content_type = "image/png"});
  site.set_push_list("/", {"/style.css", "/app.js", "/logo.png"});
  return site;
}

Bytes resource_body(const Resource& resource, std::size_t offset,
                    std::size_t len) {
  // FNV-1a over the path seeds the pattern.
  std::uint64_t h = 1469598103934665603ull;
  for (char c : resource.path) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  const std::size_t end = std::min(offset + len, resource.size);
  Bytes out;
  out.reserve(end > offset ? end - offset : 0);
  for (std::size_t i = offset; i < end; ++i) {
    out.push_back(static_cast<std::uint8_t>((h >> (i % 8)) + i * 131));
  }
  return out;
}

}  // namespace h2r::server
