// Behaviour profiles for the HTTP/2 server engine.
//
// The paper's Table III is a matrix of *observable deviations* between six
// real implementations. The engine speaks RFC 7540 on the wire; a profile
// selects, per deviation axis, which of the documented behaviours it
// exhibits. The six testbed profiles (and four more server families seen in
// the wild corpus) are constructed here from the paper's findings.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "hpack/encoder.h"
#include "net/alpn.h"
#include "server/mitigation.h"

namespace h2r::server {

/// How a server reacts to a protocol violation it detects.
enum class ErrorReaction : std::uint8_t {
  kIgnore,           ///< silently accept (Nginx on zero window update)
  kRstStream,        ///< RST_STREAM on the offending stream (RFC-suggested)
  kGoaway,           ///< treat as connection error
  kGoawayWithDebug,  ///< GOAWAY carrying explanatory debug data (rare, §V-D3)
};

std::string_view to_string(ErrorReaction r) noexcept;

/// Response scheduling discipline across concurrent streams.
enum class SchedulerKind : std::uint8_t {
  kPriorityTree,  ///< RFC 7540 §5.3 weighted dependency tree (H2O/nghttpd/Apache)
  kRoundRobin,    ///< interleaves but ignores priority (Nginx/LiteSpeed/Tengine)
  kFcfs,          ///< serial per-request, no interleaving (ablation baseline)
  /// Weighted fair sharing without parent-first gating: priority shows in
  /// stream *completion* order but not first-byte order — the wild servers
  /// that pass §V-E1's last-DATA rule only.
  kFairShare,
  /// Priority honoured for each stream's first DATA chunk, round-robin
  /// afterwards — passes the first-DATA rule only (rare in the wild).
  kPriorityStart,
};

/// True for disciplines that consult the §5.3 dependency tree.
bool scheduler_uses_tree(SchedulerKind k) noexcept;

std::string_view to_string(SchedulerKind k) noexcept;

/// What happens when the client forces a tiny stream window (§V-D1).
enum class SmallWindowBehavior : std::uint8_t {
  kRespectWindow,   ///< emit Sframe-sized DATA, as RFC requires
  kZeroLengthData,  ///< emit a zero-length DATA frame (observed on ~8k sites)
  kStall,           ///< send nothing at all (observed LiteSpeed behaviour)
};

std::string_view to_string(SmallWindowBehavior b) noexcept;

struct ServerProfile {
  std::string key;            ///< stable profile id, e.g. "nginx"
  std::string server_header;  ///< value of the `server` response header

  net::TlsEndpointConfig tls;
  /// Whether the server accepts cleartext HTTP/1.1 Upgrade: h2c (§3.2).
  bool supports_h2c = true;

  // ---- advertised SETTINGS --------------------------------------------
  std::optional<std::uint32_t> max_concurrent_streams = 100;
  /// Value announced for SETTINGS_INITIAL_WINDOW_SIZE; nullopt = omitted
  /// from the SETTINGS frame ("NULL" rows of Table V).
  std::optional<std::uint32_t> initial_window_size = 65'535;
  std::optional<std::uint32_t> max_frame_size = 16'384;
  std::optional<std::uint32_t> max_header_list_size;  ///< nullopt = unlimited
  std::uint32_t header_table_size = 4096;             ///< all servers: default
  /// Nginx idiom (§V-C): announce window 0, then immediately raise the
  /// connection window with WINDOW_UPDATE.
  bool window_update_after_settings = false;
  std::uint32_t connection_window_bonus = 0;  ///< WINDOW_UPDATE increment if above

  // ---- flow control ----------------------------------------------------
  /// LiteSpeed deviation: HEADERS withheld when the stream window is 0.
  bool flow_control_on_headers = false;
  /// Conservative deviation seen in the wild: HEADERS withheld while the
  /// *connection* window is 0 (noted in §III-C / §V-D2).
  bool headers_blocked_by_conn_window = false;
  SmallWindowBehavior small_window_behavior = SmallWindowBehavior::kRespectWindow;
  ErrorReaction zero_window_update_stream = ErrorReaction::kRstStream;
  ErrorReaction zero_window_update_connection = ErrorReaction::kGoaway;
  ErrorReaction large_window_update_stream = ErrorReaction::kRstStream;
  ErrorReaction large_window_update_connection = ErrorReaction::kGoaway;

  // ---- priority ---------------------------------------------------------
  SchedulerKind scheduler = SchedulerKind::kPriorityTree;
  ErrorReaction self_dependency = ErrorReaction::kRstStream;

  // ---- push -------------------------------------------------------------
  bool supports_push = false;

  // ---- HPACK ------------------------------------------------------------
  hpack::IndexingPolicy response_indexing = hpack::IndexingPolicy::kAggressive;
  bool use_huffman = true;

  // ---- DoS mitigation ---------------------------------------------------
  /// Disabled by default: the Table III testbed profiles reproduce the
  /// paper's (unhardened) servers. The attack matrix enables it per copy.
  MitigationPolicy mitigation;
};

/// The six testbed profiles of Table III, version-matched to the paper.
ServerProfile nginx_profile();      // Nginx 1.9.15
ServerProfile litespeed_profile();  // LiteSpeed 5.0.11
ServerProfile h2o_profile();        // H2O 1.6.2
ServerProfile nghttpd_profile();    // nghttpd 1.12.0
ServerProfile tengine_profile();    // Tengine 2.1.2
ServerProfile apache_profile();     // Apache 2.4.23

/// Additional families needed for the wild-corpus reproduction (Table IV).
ServerProfile gse_profile();               // Google GSE
ServerProfile cloudflare_nginx_profile();  // cloudflare-nginx
ServerProfile ideawebserver_profile();     // IdeaWebServer/v0.80
ServerProfile tengine_aserver_profile();   // Tengine/Aserver (tmall.com)

/// All testbed profiles in the paper's column order.
std::vector<ServerProfile> testbed_profiles();

/// Lookup by key ("nginx", "litespeed", ...). Throws std::out_of_range for
/// unknown keys.
ServerProfile profile_by_key(const std::string& key);

}  // namespace h2r::server
