// Server-side slow-HTTP/2 mitigation policy.
//
// §VI of the paper warns that flow-control windows, PRIORITY trees and
// HPACK tables are DoS amplifiers; a server that implements them naively
// pins memory (response octets accepted but undeliverable) or burns CPU
// (control-frame and reset churn) linearly in attacker effort. The
// MitigationPolicy gives server::Http2Server per-connection budgets over
// exactly those axes and a graceful escalation ladder:
//
//   kThrottle      new streams refused (REFUSED_STREAM), PING replies and
//                  PRIORITY tree operations suppressed — attack amplification
//                  stops but the connection and its in-flight work survive.
//   kRstOffenders  the streams pinning resources are reset with
//                  ENHANCE_YOUR_CALM, releasing the pinned octets.
//   kGoaway        the connection is closed with GOAWAY ENHANCE_YOUR_CALM
//                  and debug data naming the suspected attack class.
//
// ENHANCE_YOUR_CALM (0xb) is used for every mitigation frame so clients —
// and the trace annotator (trace/annotate.h) — can distinguish mitigation
// from protocol-error reactions; Table III quirk derivation skips these
// frames entirely. Escalation is clocked in *received frames*, never wall
// time, so mitigation behaviour is deterministic and unaffected by
// transport stalls (a FaultyTransport stall delivers no frames, so it ages
// nothing).
//
// The policy is disabled by default: every existing profile behaves exactly
// as before unless a caller opts in (profile.mitigation = hardened()).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "trace/detector.h"  // trace::AttackClass — shared taxonomy

namespace h2r::server {

/// Escalation ladder, in order. Numeric values appear in kMitigation trace
/// events (detail_a) and in bench output.
enum class MitigationLevel : std::uint8_t {
  kNone = 0,
  kThrottle = 1,
  kRstOffenders = 2,
  kGoaway = 3,
};

inline std::string_view to_string(MitigationLevel level) noexcept {
  switch (level) {
    case MitigationLevel::kNone:
      return "none";
    case MitigationLevel::kThrottle:
      return "throttle";
    case MitigationLevel::kRstOffenders:
      return "rst-offenders";
    case MitigationLevel::kGoaway:
      return "goaway";
  }
  return "?";
}

/// Per-connection resource budgets. A budget of 0 disables that axis.
/// Defaults are calibrated against the benign probe battery: normal scans
/// never trip any of them (pinned by tests/attack_test.cc), while each
/// attack scenario trips its axis within a bounded number of frames.
struct MitigationPolicy {
  bool enabled = false;

  /// Received-frame window over which the rate budgets below apply; the
  /// per-window counters reset every window_frames frames.
  std::uint32_t window_frames = 1024;
  /// Frames a violating connection is given at each escalation level before
  /// the next one engages (and before a throttle is released once the
  /// violation subsides).
  std::uint32_t escalation_patience = 48;

  /// Slow-read axis: response octets accepted-but-undeliverable. The budget
  /// trips only when the connection has also made *no* delivery progress
  /// for slow_read_stall_frames received frames — benign bulk transfers pin
  /// megabytes transiently but progress every round.
  std::size_t max_pinned_octets = 256 * 1024;
  std::uint32_t slow_read_stall_frames = 48;

  /// Rapid-reset axis: client RST_STREAMs per window.
  std::uint32_t max_resets_per_window = 128;
  /// Control-flood axis: non-ACK PING + SETTINGS per window.
  std::uint32_t max_control_per_window = 256;
  /// Priority-churn axis: PRIORITY frames per window.
  std::uint32_t max_priority_per_window = 256;

  /// Slow-POST axis: an upload stream older than this many received frames
  /// that has delivered fewer than slow_post_min_bytes is a dribble.
  /// (Scanned every 32 frames — the one O(streams) check.)
  std::uint32_t slow_post_age_frames = 512;
  std::size_t slow_post_min_bytes = 4096;

  /// Enabled policy with the default budgets.
  static MitigationPolicy hardened() {
    MitigationPolicy p;
    p.enabled = true;
    return p;
  }
};

}  // namespace h2r::server
