#include "server/engine.h"

#include <algorithm>
#include <cassert>

namespace h2r::server {
namespace {

using h2::ErrorCode;
using h2::Frame;
using h2::FrameType;

constexpr std::size_t kEmitQuantum = 16'384;  ///< per-pick DATA chunk cap
constexpr std::uint32_t kTinyWindowThreshold = 1'024;

/// Fixed virtual date — the engine never reads a wall clock.
constexpr const char* kHttpDate = "Mon, 04 Jul 2016 10:00:00 GMT";

hpack::EncoderOptions encoder_options(const ServerProfile& p) {
  return {.policy = p.response_indexing,
          .use_huffman = p.use_huffman,
          .table_capacity = h2::kDefaultHeaderTableSize};
}

hpack::DecoderOptions decoder_options(const ServerProfile& p) {
  hpack::DecoderOptions o;
  o.max_table_capacity = p.header_table_size;
  if (p.max_header_list_size) o.max_header_list_size = *p.max_header_list_size;
  return o;
}

}  // namespace

Http2Server::Http2Server(ServerProfile profile, Site site, StartMode mode,
                         trace::Recorder* recorder)
    : Http2Server(std::make_shared<const ServerProfile>(std::move(profile)),
                  std::make_shared<const Site>(std::move(site)), mode,
                  recorder) {}

Http2Server::Http2Server(std::shared_ptr<const ServerProfile> profile,
                         std::shared_ptr<const Site> site, StartMode mode,
                         trace::Recorder* recorder)
    : profile_(std::move(profile)),
      site_(std::move(site)),
      encoder_(encoder_options(*profile_)),
      decoder_(decoder_options(*profile_)),
      conn_send_window_(h2::kDefaultInitialWindowSize),
      conn_recv_window_(h2::kDefaultInitialWindowSize),
      start_mode_(mode),
      recorder_(recorder) {
  if (start_mode_ == StartMode::kH2c) {
    // Nothing is sent until the HTTP/1.1 upgrade offer arrives (§3.2).
    return;
  }
  send_connection_preface();
}

void Http2Server::reset() { reset(profile_, site_, start_mode_, recorder_); }

void Http2Server::reset(std::shared_ptr<const ServerProfile> profile,
                        std::shared_ptr<const Site> site, StartMode mode,
                        trace::Recorder* recorder) {
  profile_ = std::move(profile);
  site_ = std::move(site);
  parser_ = h2::FrameParser();
  encoder_ = hpack::Encoder(encoder_options(*profile_));
  decoder_ = hpack::Decoder(decoder_options(*profile_));
  our_settings_ = h2::SettingsMap();
  peer_settings_ = h2::SettingsMap();
  conn_send_window_ = h2::FlowWindow(h2::kDefaultInitialWindowSize);
  conn_recv_window_ = h2::FlowWindow(h2::kDefaultInitialWindowSize);
  streams_.clear();
  tree_ = h2::PriorityTree();
  preface_matched_ = 0;
  last_client_stream_id_ = 0;
  next_push_stream_id_ = 2;
  last_round_robin_ = 0;
  cookie_counter_ = 0;
  frames_received_ = 0;
  pinned_octets_ = 0;
  peak_pinned_octets_ = 0;
  last_progress_frame_ = 0;
  mitigation_level_ = MitigationLevel::kNone;
  suspected_attack_ = trace::AttackClass::kNone;
  level_started_frame_ = 0;
  last_violation_frame_ = 0;
  window_started_frame_ = 0;
  resets_in_window_ = 0;
  control_in_window_ = 0;
  priority_in_window_ = 0;
  slow_post_suspect_ = false;
  continuation_stream_.reset();
  continuation_fragment_.clear();
  continuation_end_stream_ = false;
  continuation_priority_.reset();
  block_cache_.clear();
  header_cache_hits_ = 0;
  header_cache_misses_ = 0;
  out_ = ByteWriter(buffer_pool_.acquire());
  dead_ = false;
  client_goaway_ = false;
  draining_ = false;
  start_mode_ = mode;
  upgraded_ = false;
  http1_buffer_.clear();
  recorder_ = recorder;
  if (start_mode_ != StartMode::kH2c) send_connection_preface();
}

void Http2Server::send_connection_preface() {
  // Server connection preface: a SETTINGS frame (§3.5), possibly followed by
  // the Nginx-style connection WINDOW_UPDATE (§V-C of the paper).
  std::vector<std::pair<h2::SettingId, std::uint32_t>> entries;
  // Default-valued HEADER_TABLE_SIZE is omitted, like real deployments: the
  // paper infers "all servers use the default" from its absence (§V-C), and
  // the corpus "NULL" sites send an entirely empty SETTINGS frame.
  if (profile_->header_table_size != h2::kDefaultHeaderTableSize) {
    entries.emplace_back(h2::SettingId::kHeaderTableSize,
                         profile_->header_table_size);
  }
  if (profile_->max_concurrent_streams) {
    entries.emplace_back(h2::SettingId::kMaxConcurrentStreams,
                         *profile_->max_concurrent_streams);
  }
  if (profile_->initial_window_size) {
    entries.emplace_back(h2::SettingId::kInitialWindowSize,
                         *profile_->initial_window_size);
  }
  if (profile_->max_frame_size) {
    entries.emplace_back(h2::SettingId::kMaxFrameSize, *profile_->max_frame_size);
  }
  if (profile_->max_header_list_size) {
    entries.emplace_back(h2::SettingId::kMaxHeaderListSize,
                         *profile_->max_header_list_size);
  }
  for (const auto& [id, value] : entries) {
    (void)our_settings_.apply(static_cast<std::uint16_t>(id), value);
  }
  // Inbound frame size limit is what *we* advertised, not what the peer did.
  parser_.set_max_frame_size(
      profile_->max_frame_size.value_or(h2::kDefaultMaxFrameSize));
  send_frame(h2::make_settings(entries));
  if (profile_->window_update_after_settings &&
      profile_->connection_window_bonus > 0) {
    (void)conn_recv_window_.expand(profile_->connection_window_bonus);
    send_frame(h2::make_window_update(0, profile_->connection_window_bonus));
  }
}

void Http2Server::shutdown() {
  if (dead_ || draining_) return;
  draining_ = true;
  send_frame(h2::make_goaway(last_client_stream_id_, ErrorCode::kNoError,
                             "shutting down"));
  pump();
  if (active_stream_count() == 0) dead_ = true;
}

void Http2Server::on_transport_close(const Status& status) {
  (void)status;
  // Death-path invariants. A fault can interrupt the connection at any
  // octet — mid-preface, mid-frame-header, mid-HPACK-block — but it must
  // never leave the engine with incoherent accounting: windows within the
  // RFC 7540 §6.9.1 bound and response cursors within their bodies. A
  // violation here means partial delivery tore an update in half, which
  // the frame reassembly layer is supposed to make impossible.
  assert(conn_send_window_.available() <= h2::kMaxWindowSize);
  assert(conn_recv_window_.available() <= h2::kMaxWindowSize);
  for (const auto& [id, s] : streams_) {
    (void)id;
    assert(s.body_offset <= s.body_size);
    assert(s.send_window.available() <= h2::kMaxWindowSize);
    assert(s.recv_window.available() <= h2::kMaxWindowSize);
  }
  // CONTINUATION reassembly may legitimately be cut mid-block, but only on
  // a stream the engine actually opened.
  assert(!continuation_stream_.has_value() ||
         *continuation_stream_ <= last_client_stream_id_ ||
         *continuation_stream_ >= 2);
  // The incremental pinned-octet counter must agree with the O(streams)
  // recomputation no matter where the fault cut the connection.
  assert(pinned_octets_ == pending_response_octets());
  dead_ = true;
}

void Http2Server::receive(std::span<const std::uint8_t> bytes) {
  if (dead_) return;

  // h2c bootstrap: buffer HTTP/1.1 text until the upgrade offer is complete.
  if (start_mode_ == StartMode::kH2c && !upgraded_) {
    http1_buffer_.append(reinterpret_cast<const char*>(bytes.data()),
                         bytes.size());
    const auto end = http1_buffer_.find("\r\n\r\n");
    if (end == std::string::npos) return;  // request incomplete
    const std::string request = http1_buffer_.substr(0, end + 4);
    const std::string leftover = http1_buffer_.substr(end + 4);
    http1_buffer_.clear();

    const auto result =
        net::process_upgrade_request(request, profile_->supports_h2c);
    if (!result.switched) {
      // Declined: answer over HTTP/1.1 and close (this engine is h2-only).
      const std::string response = result.status_line +
                                   "\r\nContent-Length: 0\r\nConnection: "
                                   "close\r\n\r\n";
      out_.write_string(response);
      dead_ = true;
      return;
    }
    const std::string switching =
        result.status_line + "\r\nConnection: Upgrade\r\nUpgrade: h2c\r\n\r\n";
    out_.write_string(switching);
    upgraded_ = true;
    peer_settings_ = result.client_settings;  // HTTP2-Settings (§3.2.1)
    send_connection_preface();

    // §3.2: the upgraded request becomes stream 1, half-closed (remote).
    last_client_stream_id_ = 1;
    Stream stream(1, peer_settings_.initial_window_size(),
                  our_settings_.initial_window_size());
    (void)stream.sm.on_recv_headers(/*end_stream=*/true);
    stream.request_headers = {{":method", "GET"},
                              {":scheme", "http"},
                              {":authority", site_->host()},
                              {":path", "/"}};
    auto [pos, inserted] = streams_.emplace(1u, std::move(stream));
    if (scheduler_uses_tree(profile_->scheduler)) {
      (void)tree_.declare_default(1);
    }
    start_response(pos->second);
    if (!dead_) maybe_push(pos->second);
    pump();
    if (leftover.empty()) return;
    // The client may have optimistically begun the h2 preface.
    receive({reinterpret_cast<const std::uint8_t*>(leftover.data()),
             leftover.size()});
    return;
  }

  // Consume the client connection preface before framing starts (§3.5).
  std::size_t offset = 0;
  while (preface_matched_ < h2::kClientPreface.size() && offset < bytes.size()) {
    if (bytes[offset] !=
        static_cast<std::uint8_t>(h2::kClientPreface[preface_matched_])) {
      connection_error(ErrorCode::kProtocolError, "bad connection preface");
      return;
    }
    ++preface_matched_;
    ++offset;
  }
  parser_.feed(bytes.subspan(offset));

  while (auto next = parser_.next_view()) {
    if (!next->ok()) {
      if (recorder_ != nullptr) {
        recorder_->record({.dir = trace::Direction::kClientToServer,
                           .kind = trace::EventKind::kParseError,
                           .note = next->status().message()});
      }
      const auto code = next->status().code() == StatusCode::kFrameSizeError
                            ? ErrorCode::kFrameSizeError
                            : ErrorCode::kProtocolError;
      connection_error(code, next->status().message());
      return;
    }
    ++frames_received_;
    if (record_received_ && recorder_ != nullptr) {
      recorder_->record_frame(
          trace::Direction::kClientToServer, next->value(),
          h2::kFrameHeaderSize + next->value().payload_wire_octets);
    }
    if (profile_->mitigation.enabled) mitigation_on_frame(next->value());
    on_frame(next->value());
    if (dead_) return;
    if (profile_->mitigation.enabled) mitigation_check();
    if (dead_) return;
  }
  pump();
}

Bytes Http2Server::take_output() {
  Bytes drained = out_.take();
  // Re-arm the writer with a recycled buffer so the next round of frames
  // appends into already-allocated storage.
  out_ = ByteWriter(buffer_pool_.acquire());
  return drained;
}

std::size_t Http2Server::pending_response_octets() const {
  std::size_t total = 0;
  for (const auto& [id, s] : streams_) {
    if (s.response_ready) total += s.body_size - s.body_offset;
  }
  return total;
}

std::size_t Http2Server::active_stream_count() const {
  std::size_t n = 0;
  for (const auto& [id, s] : streams_) {
    if (!s.sm.closed() && !s.is_push) ++n;
  }
  return n;
}

// --------------------------------------------------------------- dispatch

void Http2Server::on_frame(const h2::FrameView& frame) {
  // A header block in flight admits only CONTINUATION on the same stream.
  if (continuation_stream_ && frame.type() != FrameType::kContinuation) {
    connection_error(ErrorCode::kProtocolError,
                     "frame interleaved into header block");
    return;
  }
  switch (frame.type()) {
    case FrameType::kData:
      return handle_data(frame);
    case FrameType::kHeaders:
      return handle_headers(frame);
    case FrameType::kPriority:
      return handle_priority(frame);
    case FrameType::kRstStream:
      return handle_rst_stream(frame);
    case FrameType::kSettings:
      return handle_settings(frame);
    case FrameType::kPushPromise:
      return connection_error(ErrorCode::kProtocolError,
                              "client attempted PUSH_PROMISE");
    case FrameType::kPing:
      return handle_ping(frame);
    case FrameType::kGoaway:
      return handle_goaway(frame);
    case FrameType::kWindowUpdate:
      return handle_window_update(frame);
    case FrameType::kContinuation:
      return handle_continuation(frame);
    default:
      return;  // §4.1: unknown frame types are ignored
  }
}

void Http2Server::handle_headers(const h2::FrameView& frame) {
  if (frame.stream_id == 0) {
    return connection_error(ErrorCode::kProtocolError, "HEADERS on stream 0");
  }
  if (frame.stream_id % 2 == 0) {
    return connection_error(ErrorCode::kProtocolError,
                            "client HEADERS on even stream id");
  }
  if (!frame.has_flag(h2::flags::kEndHeaders)) {
    continuation_stream_ = frame.stream_id;
    continuation_fragment_.assign(frame.body.begin(), frame.body.end());
    continuation_end_stream_ = frame.has_flag(h2::flags::kEndStream);
    continuation_priority_ = frame.priority;
    return;
  }
  complete_headers(frame.stream_id, frame.body,
                   frame.has_flag(h2::flags::kEndStream), frame.priority);
}

void Http2Server::handle_continuation(const h2::FrameView& frame) {
  if (!continuation_stream_ || *continuation_stream_ != frame.stream_id) {
    return connection_error(ErrorCode::kProtocolError,
                            "unexpected CONTINUATION");
  }
  continuation_fragment_.insert(continuation_fragment_.end(),
                                frame.body.begin(), frame.body.end());
  if (!frame.has_flag(h2::flags::kEndHeaders)) return;
  const std::uint32_t id = *continuation_stream_;
  continuation_stream_.reset();
  complete_headers(id, continuation_fragment_, continuation_end_stream_,
                   continuation_priority_);
  continuation_fragment_.clear();
  continuation_priority_.reset();
}

void Http2Server::complete_headers(std::uint32_t stream_id,
                                   std::span<const std::uint8_t> fragment,
                                   bool end_stream,
                                   std::optional<h2::PriorityInfo> priority) {
  auto decoded = decoder_.decode(fragment);  // churn traced on client's encoder
  if (!decoded.ok()) {
    if (decoded.status().code() == StatusCode::kRefused) {
      // Header list larger than we accept: stream-scoped refusal.
      return stream_error(stream_id, ErrorCode::kRefusedStream);
    }
    return connection_error(ErrorCode::kCompressionError,
                            decoded.status().message());
  }

  auto it = streams_.find(stream_id);
  if (it != streams_.end()) {
    // Trailers on an existing stream (§8.1): they update the lifecycle and,
    // when they end the request, trigger the response.
    if (!it->second.sm.on_recv_headers(end_stream).ok()) {
      return connection_error(ErrorCode::kProtocolError,
                              "HEADERS in invalid stream state");
    }
    if (end_stream && !it->second.response_ready) {
      start_response(it->second);
      if (!dead_) maybe_push(it->second);
    }
    return;
  }

  if (stream_id <= last_client_stream_id_ || client_goaway_) {
    return connection_error(ErrorCode::kProtocolError,
                            "HEADERS reuses an old stream id");
  }
  last_client_stream_id_ = stream_id;

  if (draining_) {
    // §6.8: streams above the GOAWAY watermark are refused, retryable.
    Stream refused(stream_id, 0, 0);
    (void)refused.sm.on_recv_headers(end_stream);
    streams_.emplace(stream_id, std::move(refused));
    return stream_error(stream_id, ErrorCode::kRefusedStream);
  }

  if (throttled()) {
    // Mitigation throttle: the same refusal surface as draining, but coded
    // ENHANCE_YOUR_CALM so clients (and the trace annotator) can tell
    // mitigation from protocol errors. Amplification stops — one cheap RST
    // per attacker HEADERS, no stream state, no response pinned.
    Stream refused(stream_id, 0, 0);
    (void)refused.sm.on_recv_headers(end_stream);
    streams_.emplace(stream_id, std::move(refused));
    return stream_error(stream_id, ErrorCode::kEnhanceYourCalm);
  }

  // Enforce our advertised SETTINGS_MAX_CONCURRENT_STREAMS: the §V-A probe
  // sets it to 0 or 1 and expects RST_STREAM(REFUSED_STREAM) on overflow.
  if (profile_->max_concurrent_streams &&
      active_stream_count() >= *profile_->max_concurrent_streams) {
    Stream rejected(stream_id, 0, 0);
    (void)rejected.sm.on_recv_headers(end_stream);
    streams_.emplace(stream_id, std::move(rejected));
    return stream_error(stream_id, ErrorCode::kRefusedStream);
  }

  Stream stream(stream_id, peer_settings_.initial_window_size(),
                our_settings_.initial_window_size());
  if (!stream.sm.on_recv_headers(end_stream).ok()) {
    return connection_error(ErrorCode::kProtocolError, "bad HEADERS state");
  }
  stream.request_headers = std::move(decoded).value();
  stream.opened_at_frame = frames_received_;
  auto [pos, inserted] = streams_.emplace(stream_id, std::move(stream));

  // Request body still to come: make sure the client can actually send it.
  // Servers announcing window 0 (the Nginx idiom) re-open per-stream
  // windows on demand, exactly like they re-open the connection window.
  if (!end_stream && profile_->window_update_after_settings &&
      our_settings_.initial_window_size() == 0) {
    const std::uint32_t grant = h2::kDefaultInitialWindowSize;
    (void)pos->second.recv_window.expand(grant);
    send_frame(h2::make_window_update(stream_id, grant));
  }

  if (priority) {
    apply_priority_signal(stream_id, *priority, /*from_headers=*/true);
    if (dead_) return;
  } else if (scheduler_uses_tree(profile_->scheduler)) {
    (void)tree_.declare_default(stream_id);
  }

  // Requests with a body (POST uploads) are answered once the body ends
  // (handle_data); header-only requests are answered immediately.
  if (end_stream) {
    start_response(pos->second);
    if (!dead_) maybe_push(pos->second);
  }
}

void Http2Server::apply_priority_signal(std::uint32_t stream_id,
                                        const h2::PriorityInfo& info,
                                        bool from_headers) {
  if (info.dependency == stream_id) {
    // Self-dependency: RFC says stream error; real servers disagree
    // (Table III row "Self-dependent Stream").
    return react(profile_->self_dependency, stream_id, ErrorCode::kProtocolError,
                 ErrorCode::kProtocolError, "stream cannot depend on itself");
  }
  if (!scheduler_uses_tree(profile_->scheduler)) {
    return;  // priority is advisory; these servers simply ignore it
  }
  const Status applied = from_headers ? tree_.declare(stream_id, info)
                                      : tree_.reprioritize(stream_id, info);
  if (!applied.ok()) {
    react(profile_->self_dependency, stream_id, ErrorCode::kProtocolError,
          ErrorCode::kProtocolError, applied.message());
  }
}

void Http2Server::handle_data(const h2::FrameView& frame) {
  const auto n = static_cast<std::int64_t>(frame.body.size());
  const bool end_stream = frame.has_flag(h2::flags::kEndStream);
  if (!conn_recv_window_.consume(n).ok()) {
    return connection_error(ErrorCode::kFlowControlError,
                            "client DATA overruns connection window");
  }
  auto it = streams_.find(frame.stream_id);
  if (it == streams_.end()) {
    return connection_error(ErrorCode::kProtocolError, "DATA on idle stream");
  }
  Stream& stream = it->second;
  if (!stream.recv_window.consume(n).ok()) {
    return stream_error(frame.stream_id, ErrorCode::kFlowControlError);
  }
  if (!stream.sm.on_recv_data(end_stream).ok()) {
    return stream_error(frame.stream_id, ErrorCode::kStreamClosed);
  }
  stream.uploaded_bytes += frame.body.size();
  // Replenish both windows so well-behaved uploads never stall.
  if (n > 0) {
    send_frame(h2::make_window_update(0, static_cast<std::uint32_t>(n)));
    (void)conn_recv_window_.expand(static_cast<std::uint32_t>(n));
    if (!end_stream) {
      (void)stream.recv_window.expand(static_cast<std::uint32_t>(n));
      send_frame(h2::make_window_update(frame.stream_id,
                                        static_cast<std::uint32_t>(n)));
    }
  }
  // A request whose body just completed is ready to answer now.
  if (end_stream && !stream.response_ready) {
    start_response(stream);
    if (!dead_) maybe_push(stream);
  }
}

void Http2Server::handle_priority(const h2::FrameView& frame) {
  if (frame.stream_id == 0) {
    return connection_error(ErrorCode::kProtocolError, "PRIORITY on stream 0");
  }
  // Under mitigation throttle PRIORITY is advisory noise: tree operations
  // (the CPU the churn attack burns) are suppressed.
  if (throttled()) return;
  apply_priority_signal(frame.stream_id, *frame.priority,
                        /*from_headers=*/false);
}

void Http2Server::handle_rst_stream(const h2::FrameView& frame) {
  if (frame.stream_id == 0) {
    return connection_error(ErrorCode::kProtocolError, "RST_STREAM on stream 0");
  }
  auto it = streams_.find(frame.stream_id);
  if (it == streams_.end()) {
    return connection_error(ErrorCode::kProtocolError,
                            "RST_STREAM on idle stream");
  }
  (void)it->second.sm.on_recv_rst();
  close_stream(frame.stream_id);
}

void Http2Server::handle_settings(const h2::FrameView& frame) {
  if (frame.has_flag(h2::flags::kAck)) return;
  const std::uint32_t old_iws = peer_settings_.initial_window_size();
  const Status applied = peer_settings_.apply_frame(frame);
  if (!applied.ok()) {
    const auto code = applied.code() == StatusCode::kFlowControlError
                          ? ErrorCode::kFlowControlError
                          : ErrorCode::kProtocolError;
    return connection_error(code, applied.message());
  }
  // §6.9.2: an INITIAL_WINDOW_SIZE change retroactively adjusts every
  // stream window by the delta.
  const std::uint32_t new_iws = peer_settings_.initial_window_size();
  if (new_iws != old_iws) {
    for (auto& [id, s] : streams_) {
      if (!s.send_window.adjust_initial(old_iws, new_iws).ok()) {
        return connection_error(ErrorCode::kFlowControlError,
                                "SETTINGS window adjustment overflow");
      }
    }
  }
  // Our dynamic table may not exceed what the client is willing to hold.
  const std::uint32_t table_cap = std::min(peer_settings_.header_table_size(),
                                           h2::kDefaultHeaderTableSize);
  if (table_cap != encoder_.table().capacity()) {
    encoder_.set_table_capacity(table_cap);
  }
  if (recorder_ != nullptr) {
    for (std::size_t i = 0; i < frame.settings_entry_count(); ++i) {
      const auto [id, value] = frame.setting_at(i);
      recorder_->record({.dir = trace::Direction::kClientToServer,
                         .kind = trace::EventKind::kSettingsApplied,
                         .detail_a = id,
                         .detail_b = value});
    }
  }
  // Settings are always *applied* (ignoring them would desynchronize flow
  // control), but under throttle the ACK — the flood's amplification — is
  // withheld.
  if (throttled()) return;
  send_frame(h2::make_settings_ack());
}

void Http2Server::handle_ping(const h2::FrameView& frame) {
  if (frame.stream_id != 0) {
    return connection_error(ErrorCode::kProtocolError, "PING on a stream");
  }
  if (frame.has_flag(h2::flags::kAck)) return;
  // Under mitigation throttle PING replies are dropped: the reflection is
  // exactly what a control-frame flood amplifies.
  if (throttled()) return;
  // §6.7: respond with an identical payload, ACK set, at high priority —
  // PINGs bypass the response scheduler entirely.
  std::array<std::uint8_t, 8> opaque{};
  std::copy_n(frame.body.begin(), 8, opaque.begin());
  send_frame(h2::make_ping(opaque, /*ack=*/true));
}

void Http2Server::handle_goaway(const h2::FrameView& frame) {
  (void)frame;
  client_goaway_ = true;
}

void Http2Server::handle_window_update(const h2::FrameView& frame) {
  const std::uint32_t increment = frame.increment;
  const bool connection_scope = frame.stream_id == 0;

  if (increment == 0) {
    // The paper's zero-window-update probe (§III-B3). RFC: stream error on
    // stream scope, connection error on connection scope — but Table III
    // shows three distinct behaviours in the wild.
    if (connection_scope) {
      return react(profile_->zero_window_update_connection, 0,
                   ErrorCode::kProtocolError, ErrorCode::kProtocolError,
                   "window update shouldn't be zero");
    }
    return react(profile_->zero_window_update_stream, frame.stream_id,
                 ErrorCode::kProtocolError, ErrorCode::kProtocolError,
                 "window update shouldn't be zero");
  }

  if (connection_scope) {
    if (!conn_send_window_.expand(increment).ok()) {
      // §6.9.1 overflow past 2^31-1 (§III-B4 probe).
      if (profile_->large_window_update_connection == ErrorReaction::kIgnore) {
        conn_send_window_.reset_to(h2::kMaxWindowSize);  // saturate silently
        return;
      }
      return react(profile_->large_window_update_connection, 0,
                   ErrorCode::kFlowControlError, ErrorCode::kFlowControlError,
                   "connection flow-control window overflow");
    }
    return;
  }

  auto it = streams_.find(frame.stream_id);
  if (it == streams_.end() || it->second.sm.closed()) {
    return;  // WINDOW_UPDATE may race with stream close; ignore (§5.1)
  }
  if (!it->second.send_window.expand(increment).ok()) {
    if (profile_->large_window_update_stream == ErrorReaction::kIgnore) {
      it->second.send_window.reset_to(h2::kMaxWindowSize);
      return;
    }
    return react(profile_->large_window_update_stream, frame.stream_id,
                 ErrorCode::kFlowControlError, ErrorCode::kFlowControlError,
                 "stream flow-control window overflow");
  }
}

// --------------------------------------------------------- request handling

void Http2Server::start_response(Stream& stream) {
  const std::string_view path =
      hpack::find_header(stream.request_headers, ":path");
  const std::string_view method =
      hpack::find_header(stream.request_headers, ":method");
  stream.resource = site_->find(path);

  if (method == "POST") {
    // Upload sink: acknowledge with a body sized like the upload, so tests
    // can verify the count end to end. Never cacheable: x-received-bytes
    // varies per upload.
    hpack::HeaderList headers;
    headers.reserve(6);
    headers.emplace_back(":status", "200");
    headers.emplace_back("server", profile_->server_header);
    headers.emplace_back("date", kHttpDate);
    headers.emplace_back("content-type", "text/plain");
    headers.emplace_back("x-received-bytes",
                         std::to_string(stream.uploaded_bytes));
    stream.body_size = std::to_string(stream.uploaded_bytes).size();
    headers.emplace_back("content-length", std::to_string(stream.body_size));
    stream.resource = nullptr;
    stream.response_headers = std::move(headers);
    stream.response_ready = true;
    pin_octets(stream.body_size);
    return;
  }
  stream.body_size =
      stream.resource != nullptr ? stream.resource->size : std::size_t{180};
  if (header_cache_enabled_ && !site_->cookie_churn()) {
    // The header list is a pure function of (profile, site, resource); defer
    // building it to first encode, where the block cache usually supplies a
    // prebuilt byte block instead.
    stream.cacheable_response = true;
  } else {
    stream.response_headers = build_response_headers(stream);
  }
  stream.response_ready = true;
  pin_octets(stream.body_size);
}

hpack::HeaderList Http2Server::build_response_headers(const Stream& stream) {
  hpack::HeaderList headers;
  headers.reserve(8 + site_->extra_headers().size());
  headers.emplace_back(":status", stream.resource != nullptr ? "200" : "404");
  headers.emplace_back("server", profile_->server_header);
  headers.emplace_back("date", kHttpDate);
  headers.emplace_back("content-type", stream.resource != nullptr
                                           ? stream.resource->content_type
                                           : "text/html");
  headers.emplace_back("content-length", std::to_string(stream.body_size));
  for (const auto& extra : site_->extra_headers()) headers.push_back(extra);
  // Cookie churn (§V-G): *later* responses grow extra set-cookie headers
  // the first response lacked, making S1 < Si and pushing the measured
  // compression ratio above 1 (the sites the paper filters out of Figs 4/5).
  // Churned responses are never cache-deferred (see start_response), so the
  // counter advances exactly as it would without the cache.
  if (site_->cookie_churn() && cookie_counter_++ > 0) {
    headers.emplace_back(
        "set-cookie", "session=" + std::to_string(cookie_counter_) +
                          "; Path=/; HttpOnly");
  }
  return headers;
}

Bytes Http2Server::response_block(Stream& stream) {
  if (!stream.cacheable_response) {
    return encode_block(stream.response_headers);
  }
  // Shard-shared static blocks first: while this engine's encoder is still
  // pristine (nothing inserted, nothing evicted, never resized, no pending
  // §6.3 update) it emits exactly the bytes any sibling pristine engine
  // emitted — so the very first response of a fresh connection can reuse a
  // block another connection on this shard already built.
  const bool pristine = encoder_.table().insert_count() == 0 &&
                        encoder_.table().eviction_count() == 0 &&
                        encoder_.capacity_epoch() == 0 &&
                        !encoder_.has_pending_capacity_update();
  if (shared_block_cache_ != nullptr && pristine) {
    for (const auto& entry : shared_block_cache_->entries) {
      if (entry.resource == stream.resource) {
        ++shared_block_cache_->hits;
        Bytes block = buffer_pool_.acquire();
        block.assign(entry.block.begin(), entry.block.end());
        return block;
      }
    }
    ++shared_block_cache_->misses;
  }
  for (const auto& entry : block_cache_) {
    if (entry.resource == stream.resource && cache_entry_valid(entry)) {
      // Replaying is byte-identical to re-encoding: the encoder state is
      // exactly what the cached encode saw, and that encode had no side
      // effects — so the peer's HPACK decoder cannot tell the difference.
      ++header_cache_hits_;
      Bytes block = buffer_pool_.acquire();
      block.assign(entry.block.begin(), entry.block.end());
      return block;
    }
  }
  ++header_cache_misses_;
  const bool had_pending_update = encoder_.has_pending_capacity_update();
  const std::uint64_t ins = encoder_.table().insert_count();
  const std::uint64_t ev = encoder_.table().eviction_count();
  const std::uint64_t cap = encoder_.capacity_epoch();
  Bytes block = encode_block(build_response_headers(stream));
  // Cache only side-effect-free encodes: no table inserts or evictions, no
  // §6.3 size-update instruction embedded in the block. (The first encode
  // of a response under an aggressive indexing policy inserts; the second,
  // fully-indexed encode is the one that sticks.)
  if (!had_pending_update && ins == encoder_.table().insert_count() &&
      ev == encoder_.table().eviction_count() &&
      cap == encoder_.capacity_epoch()) {
    std::erase_if(block_cache_, [&](const BlockCacheEntry& e) {
      return e.resource == stream.resource || !cache_entry_valid(e);
    });
    block_cache_.push_back({stream.resource, block, ins, ev, cap});
    if (shared_block_cache_ != nullptr && pristine) {
      shared_block_cache_->entries.push_back({stream.resource, block});
    }
  }
  return block;
}

void Http2Server::maybe_push(Stream& parent) {
  if (!profile_->supports_push || !peer_settings_.enable_push()) return;
  if (parent.is_push) return;
  const std::string path{hpack::find_header(parent.request_headers, ":path")};
  const auto* push_paths = site_->push_list(path);
  if (push_paths == nullptr) return;

  for (const auto& push_path : *push_paths) {
    // Respect the client's concurrency cap on *our* streams (§6.5.2 — the
    // paper notes MAX_CONCURRENT_STREAMS=0 disables push entirely).
    if (auto cap = peer_settings_.max_concurrent_streams()) {
      std::size_t pushes_active = 0;
      for (const auto& [id, s] : streams_) {
        if (s.is_push && !s.sm.closed()) ++pushes_active;
      }
      if (pushes_active >= *cap) return;
    }
    const Resource* resource = site_->find(push_path);
    if (resource == nullptr) continue;

    const std::uint32_t promised = next_push_stream_id_;
    next_push_stream_id_ += 2;

    hpack::HeaderList request = {{":method", "GET"},
                                 {":scheme", "https"},
                                 {":authority", site_->host()},
                                 {":path", push_path}};
    send_frame(h2::make_push_promise(parent.sm.id(), promised,
                                     encode_block(request)));

    Stream pushed(promised, peer_settings_.initial_window_size(),
                  our_settings_.initial_window_size());
    (void)pushed.sm.on_send_push_promise();
    pushed.is_push = true;
    pushed.request_headers = std::move(request);
    streams_.emplace(promised, std::move(pushed));
    if (scheduler_uses_tree(profile_->scheduler)) {
      // Pushed responses default to dependents of their parent (§5.3.5).
      (void)tree_.declare(promised, {.dependency = parent.sm.id(),
                                     .weight_field = h2::kDefaultWeight - 1});
    }
    start_response(streams_.at(promised));
  }
}

// ----------------------------------------------------------------- pumping

bool Http2Server::tiny_window_mode() const {
  return peer_settings_.initial_window_size() < kTinyWindowThreshold;
}

bool Http2Server::stream_eligible(const Stream& s) const {
  if (s.sm.closed() || !s.response_ready || s.stalled) return false;
  if (!s.sm.can_send_data() && !(s.is_push && !s.headers_sent)) return false;

  if (!s.headers_sent) {
    if (profile_->flow_control_on_headers && s.send_window.available() <= 0) {
      return false;  // the LiteSpeed HEADERS deviation (Table III)
    }
    if (profile_->headers_blocked_by_conn_window &&
        conn_send_window_.available() <= 0) {
      return false;  // §V-D2 wild deviation
    }
    return true;
  }

  const std::size_t remaining = s.body_size - s.body_offset;
  if (remaining == 0) return false;
  if (tiny_window_mode() &&
      profile_->small_window_behavior == SmallWindowBehavior::kZeroLengthData) {
    return !s.zero_length_emitted;
  }
  return s.send_window.available() > 0 && conn_send_window_.available() > 0;
}

std::uint32_t Http2Server::pick_round_robin(bool fcfs) {
  // FCFS: lowest eligible id. Round robin: next eligible id after the last
  // one served, cycling.
  std::uint32_t first_eligible = 0;
  std::uint32_t next_after = 0;
  for (const auto& [id, s] : streams_) {
    if (!stream_eligible(s)) continue;
    if (first_eligible == 0) first_eligible = id;
    if (next_after == 0 && id > last_round_robin_) next_after = id;
  }
  if (fcfs) return first_eligible;
  return next_after != 0 ? next_after : first_eligible;
}

void Http2Server::pump() {
  if (dead_) return;
  for (;;) {
    std::uint32_t id = 0;
    const auto eligible = [this](std::uint32_t sid) {
      auto it = streams_.find(sid);
      return it != streams_.end() && stream_eligible(it->second);
    };
    switch (profile_->scheduler) {
      case SchedulerKind::kPriorityTree:
        id = tree_.next_stream(eligible);
        break;
      case SchedulerKind::kFairShare:
        id = tree_.next_stream_fair(eligible);
        break;
      case SchedulerKind::kPriorityStart: {
        // First DATA chunk (and HEADERS) in dependency order, then plain
        // round-robin.
        id = tree_.next_stream([this, &eligible](std::uint32_t sid) {
          if (!eligible(sid)) return false;
          const Stream& s = streams_.at(sid);
          return !s.headers_sent || s.body_offset == 0;
        });
        if (id == 0) id = pick_round_robin(/*fcfs=*/false);
        break;
      }
      case SchedulerKind::kRoundRobin:
        id = pick_round_robin(/*fcfs=*/false);
        break;
      case SchedulerKind::kFcfs:
        id = pick_round_robin(/*fcfs=*/true);
        break;
    }
    if (id == 0) {
      // Nothing schedulable: any stream still holding undelivered work is
      // blocked on flow control — mark it for the wiretap.
      note_window_stalls();
      return;
    }
    serve_one(id);
    if (dead_) return;
  }
}

void Http2Server::serve_one(std::uint32_t stream_id) {
  Stream& s = streams_.at(stream_id);
  last_round_robin_ = stream_id;
  note_window_resume(s);  // a previously stalled stream is moving again

  if (!s.headers_sent) {
    // Engage the stall deviation before anything is emitted: under a tiny
    // window LiteSpeed-profile servers go silent for the whole response.
    if (tiny_window_mode() &&
        profile_->small_window_behavior == SmallWindowBehavior::kStall) {
      s.stalled = true;
      return;
    }
    const bool end_stream = s.body_size == 0;
    send_header_block(stream_id, response_block(s), end_stream);
    (void)s.sm.on_send_headers(end_stream);
    s.headers_sent = true;
    if (end_stream) close_stream(stream_id);
    return;
  }

  const std::size_t remaining = s.body_size - s.body_offset;

  if (tiny_window_mode() &&
      profile_->small_window_behavior == SmallWindowBehavior::kZeroLengthData) {
    // Observed wild behaviour (§V-D1): a zero-length DATA frame ending the
    // stream instead of Sframe-sized chunks.
    send_frame(h2::make_data(stream_id, {}, /*end_stream=*/true));
    s.zero_length_emitted = true;
    (void)s.sm.on_send_data(true);
    close_stream(stream_id);
    return;
  }

  std::size_t chunk = std::min<std::size_t>(remaining, kEmitQuantum);
  chunk = std::min<std::size_t>(chunk, peer_settings_.max_frame_size());
  chunk = std::min<std::size_t>(
      chunk, static_cast<std::size_t>(
                 std::max<std::int64_t>(0, s.send_window.available())));
  chunk = std::min<std::size_t>(
      chunk, static_cast<std::size_t>(
                 std::max<std::int64_t>(0, conn_send_window_.available())));
  if (chunk == 0) return;  // raced with eligibility; nothing to do

  const std::size_t offset = s.body_offset;
  s.body_offset += chunk;
  unpin_octets(chunk);
  last_progress_frame_ = frames_received_;  // delivery = slow-read progress
  (void)s.send_window.consume(static_cast<std::int64_t>(chunk));
  (void)conn_send_window_.consume(static_cast<std::int64_t>(chunk));
  if (scheduler_uses_tree(profile_->scheduler)) {
    tree_.account(stream_id, chunk);
  }

  const bool end_stream = s.body_offset == s.body_size;
  send_data_direct(stream_id, s.resource, offset, chunk, end_stream);
  (void)s.sm.on_send_data(end_stream);
  if (end_stream) close_stream(stream_id);
}

void Http2Server::send_data_direct(std::uint32_t stream_id,
                                   const Resource* resource,
                                   std::size_t offset, std::size_t chunk,
                                   bool end_stream) {
  const std::uint8_t flagbits = end_stream ? h2::flags::kEndStream : 0;
  h2::write_frame_header(out_, chunk, FrameType::kData, flagbits, stream_id);
  if (resource != nullptr) {
    resource_body_into(out_, *resource, offset, chunk);
  } else {
    auto dst = out_.extend(chunk);
    std::fill(dst.begin(), dst.end(), static_cast<std::uint8_t>('.'));
  }
  if (recorder_ != nullptr) {
    recorder_->record(
        {.dir = trace::Direction::kServerToClient,
         .kind = trace::EventKind::kFrame,
         .stream_id = stream_id,
         .frame_type = static_cast<std::uint8_t>(FrameType::kData),
         .flags = flagbits,
         .wire_length = static_cast<std::uint32_t>(h2::kFrameHeaderSize + chunk),
         .detail_a = static_cast<std::uint32_t>(chunk)});
  }
}

// ---------------------------------------------------------------- plumbing

void Http2Server::send_header_block(std::uint32_t stream_id, Bytes block,
                                    bool end_stream) {
  // §4.3: a header block larger than the peer's SETTINGS_MAX_FRAME_SIZE is
  // split into HEADERS + CONTINUATION frames; END_HEADERS rides the last.
  const std::size_t limit = peer_settings_.max_frame_size();
  if (block.size() <= limit) {
    send_frame(h2::make_headers(stream_id, std::move(block), end_stream));
    return;
  }
  Bytes first(block.begin(), block.begin() + static_cast<std::ptrdiff_t>(limit));
  send_frame(h2::make_headers(stream_id, std::move(first), end_stream,
                              /*end_headers=*/false));
  std::size_t offset = limit;
  while (offset < block.size()) {
    const std::size_t n = std::min(limit, block.size() - offset);
    const bool last = offset + n == block.size();
    send_frame(h2::make_continuation(
        stream_id,
        Bytes(block.begin() + static_cast<std::ptrdiff_t>(offset),
              block.begin() + static_cast<std::ptrdiff_t>(offset + n)),
        last));
    offset += n;
  }
}

void Http2Server::send_frame(const Frame& frame) {
  const std::size_t wire = h2::serialize_frame_into(out_, frame);
  if (recorder_ != nullptr) {
    recorder_->record_frame(trace::Direction::kServerToClient, frame, wire);
  }
}

Bytes Http2Server::encode_block(const hpack::HeaderList& headers) {
  const std::uint64_t ins = encoder_.table().insert_count();
  const std::uint64_t ev = encoder_.table().eviction_count();
  Bytes block = encoder_.encode(headers);
  note_hpack_delta(encoder_.table().insert_count() - ins,
                   encoder_.table().eviction_count() - ev);
  return block;
}

void Http2Server::note_hpack_delta(std::uint64_t inserts,
                                   std::uint64_t evictions) {
  if (recorder_ == nullptr) return;
  if (inserts != 0) {
    recorder_->record({.dir = trace::Direction::kServerToClient,
                       .kind = trace::EventKind::kHpackInsert,
                       .detail_a = static_cast<std::uint32_t>(inserts)});
  }
  if (evictions != 0) {
    recorder_->record({.dir = trace::Direction::kServerToClient,
                       .kind = trace::EventKind::kHpackEvict,
                       .detail_a = static_cast<std::uint32_t>(evictions)});
  }
}

void Http2Server::note_window_stalls() {
  if (recorder_ == nullptr) return;
  for (auto& [id, s] : streams_) {
    if (s.stall_traced || s.sm.closed() || !s.response_ready || s.stalled) {
      continue;
    }
    bool blocked = false;
    if (s.headers_sent) {
      blocked = s.body_offset < s.body_size &&
                (s.send_window.available() <= 0 ||
                 conn_send_window_.available() <= 0);
    } else {
      blocked = (profile_->flow_control_on_headers &&
                 s.send_window.available() <= 0) ||
                (profile_->headers_blocked_by_conn_window &&
                 conn_send_window_.available() <= 0);
    }
    if (!blocked) continue;
    recorder_->record({.dir = trace::Direction::kServerToClient,
                       .kind = trace::EventKind::kWindowStall,
                       .stream_id = id});
    s.stall_traced = true;
  }
}

void Http2Server::note_window_resume(Stream& stream) {
  if (recorder_ == nullptr || !stream.stall_traced) return;
  recorder_->record({.dir = trace::Direction::kServerToClient,
                     .kind = trace::EventKind::kWindowResume,
                     .stream_id = stream.sm.id()});
  stream.stall_traced = false;
}

void Http2Server::react(ErrorReaction reaction, std::uint32_t stream_id,
                        ErrorCode stream_code, ErrorCode conn_code,
                        std::string debug) {
  switch (reaction) {
    case ErrorReaction::kIgnore:
      return;
    case ErrorReaction::kRstStream:
      if (stream_id != 0) return stream_error(stream_id, stream_code);
      return connection_error(conn_code, std::move(debug));
    case ErrorReaction::kGoaway:
      return connection_error(conn_code, "");
    case ErrorReaction::kGoawayWithDebug:
      return connection_error(conn_code, std::move(debug));
  }
}

void Http2Server::stream_error(std::uint32_t stream_id, ErrorCode code) {
  send_frame(h2::make_rst_stream(stream_id, code));
  auto it = streams_.find(stream_id);
  if (it != streams_.end()) (void)it->second.sm.on_send_rst();
  close_stream(stream_id);
}

void Http2Server::connection_error(ErrorCode code, std::string debug) {
  send_frame(h2::make_goaway(last_client_stream_id_, code, std::move(debug)));
  dead_ = true;
}

void Http2Server::close_stream(std::uint32_t stream_id) {
  auto it = streams_.find(stream_id);
  if (it != streams_.end()) {
    if (it->second.response_ready) {
      unpin_octets(it->second.body_size - it->second.body_offset);
    }
    it->second.response_ready = false;
    it->second.body_offset = it->second.body_size;
  }
  tree_.remove(stream_id);
  if (draining_ && active_stream_count() == 0) dead_ = true;
}

// -------------------------------------------------------------- mitigation

void Http2Server::pin_octets(std::size_t n) {
  pinned_octets_ += n;
  if (pinned_octets_ > peak_pinned_octets_) peak_pinned_octets_ = pinned_octets_;
}

void Http2Server::unpin_octets(std::size_t n) {
  assert(n <= pinned_octets_);
  pinned_octets_ -= n;
}

void Http2Server::mitigation_on_frame(const h2::FrameView& frame) {
  const MitigationPolicy& pol = profile_->mitigation;
  if (frames_received_ - window_started_frame_ >= pol.window_frames) {
    window_started_frame_ = frames_received_;
    resets_in_window_ = 0;
    control_in_window_ = 0;
    priority_in_window_ = 0;
  }
  switch (frame.type()) {
    case FrameType::kRstStream:
      ++resets_in_window_;
      break;
    case FrameType::kPing:
    case FrameType::kSettings:
      if (!frame.has_flag(h2::flags::kAck)) ++control_in_window_;
      break;
    case FrameType::kPriority:
      ++priority_in_window_;
      break;
    default:
      break;
  }
  // The one O(streams) check, amortized to every 32nd frame: an upload
  // stream older than the age budget that delivered almost nothing is a
  // slow-POST dribble. Ages are in received frames, so transport stalls
  // (which deliver no frames) age nothing.
  if (pol.slow_post_age_frames != 0 && (frames_received_ & 31u) == 0) {
    slow_post_suspect_ = false;
    for (const auto& [id, s] : streams_) {
      if (s.sm.closed() || s.response_ready || s.is_push) continue;
      if (frames_received_ - s.opened_at_frame > pol.slow_post_age_frames &&
          s.uploaded_bytes < pol.slow_post_min_bytes) {
        slow_post_suspect_ = true;
        break;
      }
    }
  }
}

trace::AttackClass Http2Server::mitigation_violation() const {
  const MitigationPolicy& pol = profile_->mitigation;
  // Pinned octets alone are not a violation — benign bulk transfers pin
  // megabytes transiently. The slow-read signature is pinned octets *and*
  // no delivery progress for a sustained stretch of received frames.
  if (pol.max_pinned_octets != 0 && pinned_octets_ > pol.max_pinned_octets &&
      frames_received_ - last_progress_frame_ > pol.slow_read_stall_frames) {
    return trace::AttackClass::kSlowRead;
  }
  if (slow_post_suspect_) return trace::AttackClass::kSlowPost;
  if (pol.max_resets_per_window != 0 &&
      resets_in_window_ > pol.max_resets_per_window) {
    return trace::AttackClass::kRapidReset;
  }
  if (pol.max_control_per_window != 0 &&
      control_in_window_ > pol.max_control_per_window) {
    return trace::AttackClass::kControlFlood;
  }
  if (pol.max_priority_per_window != 0 &&
      priority_in_window_ > pol.max_priority_per_window) {
    return trace::AttackClass::kPriorityChurn;
  }
  return trace::AttackClass::kNone;
}

void Http2Server::mitigation_check() {
  const MitigationPolicy& pol = profile_->mitigation;
  const trace::AttackClass cls = mitigation_violation();
  if (cls == trace::AttackClass::kNone) {
    // Graceful release — from throttle only, and only after the violation
    // has stayed clear for two full rate windows (the per-window counters
    // read as clear right after every window roll; a shorter quiet bar
    // would flap mid-attack and never escalate).
    if (mitigation_level_ == MitigationLevel::kThrottle &&
        frames_received_ - last_violation_frame_ >= 2 * pol.window_frames) {
      mitigation_level_ = MitigationLevel::kNone;
      note_mitigation(MitigationLevel::kNone, suspected_attack_);
      suspected_attack_ = trace::AttackClass::kNone;
    }
    return;
  }
  last_violation_frame_ = frames_received_;
  switch (mitigation_level_) {
    case MitigationLevel::kNone:
      mitigation_level_ = MitigationLevel::kThrottle;
      suspected_attack_ = cls;
      level_started_frame_ = frames_received_;
      note_mitigation(MitigationLevel::kThrottle, cls);
      return;
    case MitigationLevel::kThrottle:
      if (frames_received_ - level_started_frame_ < pol.escalation_patience) {
        return;
      }
      mitigation_level_ = MitigationLevel::kRstOffenders;
      level_started_frame_ = frames_received_;
      note_mitigation(MitigationLevel::kRstOffenders, cls);
      rst_offenders(cls);
      return;
    case MitigationLevel::kRstOffenders:
      if (frames_received_ - level_started_frame_ < pol.escalation_patience) {
        return;
      }
      mitigation_level_ = MitigationLevel::kGoaway;
      note_mitigation(MitigationLevel::kGoaway, suspected_attack_);
      connection_error(
          ErrorCode::kEnhanceYourCalm,
          "mitigation=" + std::string(trace::to_string(suspected_attack_)));
      return;
    case MitigationLevel::kGoaway:
      return;
  }
}

void Http2Server::rst_offenders(trace::AttackClass cls) {
  const MitigationPolicy& pol = profile_->mitigation;
  std::vector<std::uint32_t> victims;
  for (const auto& [id, s] : streams_) {
    if (s.sm.closed()) continue;
    if (cls == trace::AttackClass::kSlowRead) {
      // Streams holding undeliverable response octets — resetting them
      // releases exactly what the attacker pinned.
      if (s.response_ready && s.body_offset < s.body_size) victims.push_back(id);
    } else if (cls == trace::AttackClass::kSlowPost) {
      if (!s.response_ready && !s.is_push &&
          frames_received_ - s.opened_at_frame > pol.slow_post_age_frames &&
          s.uploaded_bytes < pol.slow_post_min_bytes) {
        victims.push_back(id);
      }
    }
    // Flood classes have no stream-scoped offenders; this stage is a
    // patience interval before GOAWAY.
  }
  for (const std::uint32_t id : victims) {
    stream_error(id, ErrorCode::kEnhanceYourCalm);
  }
}

void Http2Server::note_mitigation(MitigationLevel level,
                                  trace::AttackClass cls) {
  if (recorder_ == nullptr) return;
  recorder_->record({.dir = trace::Direction::kServerToClient,
                     .kind = trace::EventKind::kMitigation,
                     .detail_a = static_cast<std::uint32_t>(level),
                     .detail_b = static_cast<std::uint32_t>(cls),
                     .note = trace::to_string(cls)});
}

}  // namespace h2r::server
