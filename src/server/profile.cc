#include "server/profile.h"

#include <stdexcept>

namespace h2r::server {

std::string_view to_string(ErrorReaction r) noexcept {
  switch (r) {
    case ErrorReaction::kIgnore:
      return "ignore";
    case ErrorReaction::kRstStream:
      return "RST_STREAM";
    case ErrorReaction::kGoaway:
      return "GOAWAY";
    case ErrorReaction::kGoawayWithDebug:
      return "GOAWAY+debug";
  }
  return "?";
}

std::string_view to_string(SchedulerKind k) noexcept {
  switch (k) {
    case SchedulerKind::kPriorityTree:
      return "priority-tree";
    case SchedulerKind::kRoundRobin:
      return "round-robin";
    case SchedulerKind::kFcfs:
      return "fcfs";
    case SchedulerKind::kFairShare:
      return "fair-share";
    case SchedulerKind::kPriorityStart:
      return "priority-start";
  }
  return "?";
}

bool scheduler_uses_tree(SchedulerKind k) noexcept {
  return k == SchedulerKind::kPriorityTree || k == SchedulerKind::kFairShare ||
         k == SchedulerKind::kPriorityStart;
}

std::string_view to_string(SmallWindowBehavior b) noexcept {
  switch (b) {
    case SmallWindowBehavior::kRespectWindow:
      return "respect-window";
    case SmallWindowBehavior::kZeroLengthData:
      return "zero-length-data";
    case SmallWindowBehavior::kStall:
      return "stall";
  }
  return "?";
}

// Every profile below is a transcription of the paper's Table III row for
// that server plus the SETTINGS defaults of the version the paper tested.

ServerProfile nginx_profile() {
  ServerProfile p;
  p.key = "nginx";
  p.server_header = "nginx/1.9.15";
  p.max_concurrent_streams = 128;
  // §V-C: Nginx announces initial window 0 and immediately re-opens the
  // connection window with WINDOW_UPDATE.
  p.initial_window_size = 0;
  p.window_update_after_settings = true;
  p.connection_window_bonus = 0x7FFF0000u - 65'535;
  p.zero_window_update_stream = ErrorReaction::kIgnore;
  p.zero_window_update_connection = ErrorReaction::kIgnore;
  p.scheduler = SchedulerKind::kRoundRobin;  // fails Algorithm 1
  p.self_dependency = ErrorReaction::kRstStream;
  p.supports_push = false;
  // §V-G: response header fields never enter the dynamic table.
  p.response_indexing = hpack::IndexingPolicy::kStaticOnly;
  return p;
}

ServerProfile litespeed_profile() {
  ServerProfile p;
  p.key = "litespeed";
  p.server_header = "LiteSpeed";
  p.max_concurrent_streams = 100;
  p.initial_window_size = 65'536;
  // Table III: LiteSpeed applies flow control to HEADERS frames too.
  // (The §V-D1 stall-under-tiny-window behaviour is a *wild-corpus* variant
  // layered on by corpus generation; the testbed build respects windows.)
  p.flow_control_on_headers = true;
  p.zero_window_update_stream = ErrorReaction::kRstStream;
  p.zero_window_update_connection = ErrorReaction::kGoaway;
  p.scheduler = SchedulerKind::kRoundRobin;  // fails Algorithm 1
  p.self_dependency = ErrorReaction::kIgnore;
  p.supports_push = false;
  return p;
}

ServerProfile h2o_profile() {
  ServerProfile p;
  p.key = "h2o";
  p.server_header = "h2o/1.6.2";
  p.max_concurrent_streams = 100;
  p.initial_window_size = 16'777'216;
  p.max_frame_size = 16'777'215;
  p.zero_window_update_stream = ErrorReaction::kRstStream;
  p.zero_window_update_connection = ErrorReaction::kGoaway;
  p.scheduler = SchedulerKind::kPriorityTree;  // passes Algorithm 1
  p.self_dependency = ErrorReaction::kGoaway;
  p.supports_push = true;
  return p;
}

ServerProfile nghttpd_profile() {
  ServerProfile p;
  p.key = "nghttpd";
  p.server_header = "nghttpd nghttp2/1.12.0";
  p.max_concurrent_streams = 100;
  // Table III: nghttpd escalates even stream-scoped zero window updates to
  // connection errors.
  p.zero_window_update_stream = ErrorReaction::kGoaway;
  p.zero_window_update_connection = ErrorReaction::kGoaway;
  p.scheduler = SchedulerKind::kPriorityTree;
  p.self_dependency = ErrorReaction::kGoaway;
  p.supports_push = true;
  return p;
}

ServerProfile tengine_profile() {
  // Tengine is an Nginx fork and inherits every quirk the paper observed.
  ServerProfile p = nginx_profile();
  p.key = "tengine";
  p.server_header = "Tengine/2.1.2";
  return p;
}

ServerProfile apache_profile() {
  ServerProfile p;
  p.key = "apache";
  p.server_header = "Apache/2.4.23";
  // Table III: the only tested server without NPN support.
  p.tls.supports_npn = false;
  p.max_concurrent_streams = 100;
  p.initial_window_size = 2'147'483'647;
  p.max_header_list_size = 16'384;
  p.zero_window_update_stream = ErrorReaction::kGoaway;
  p.zero_window_update_connection = ErrorReaction::kGoaway;
  p.scheduler = SchedulerKind::kPriorityTree;
  p.self_dependency = ErrorReaction::kGoaway;
  p.supports_push = true;
  return p;
}

ServerProfile gse_profile() {
  ServerProfile p;
  p.key = "gse";
  p.server_header = "GSE";
  p.max_concurrent_streams = 100;
  p.initial_window_size = 1'048'576;
  p.scheduler = SchedulerKind::kPriorityTree;
  p.supports_push = false;
  // Figures 4/5: GSE shows the best compression ratios (< 0.3).
  p.response_indexing = hpack::IndexingPolicy::kAggressive;
  return p;
}

ServerProfile cloudflare_nginx_profile() {
  ServerProfile p = nginx_profile();
  p.key = "cloudflare-nginx";
  p.server_header = "cloudflare-nginx";
  p.supports_push = true;  // CloudFlare enabled push in Apr 2016 [27]
  return p;
}

ServerProfile ideawebserver_profile() {
  ServerProfile p;
  p.key = "ideawebserver";
  p.server_header = "IdeaWebServer/v0.80";
  p.max_concurrent_streams = 100;
  p.max_header_list_size = 16'384;
  p.scheduler = SchedulerKind::kRoundRobin;
  // Figures 4/5: ratio ~1, like Nginx.
  p.response_indexing = hpack::IndexingPolicy::kStaticOnly;
  return p;
}

ServerProfile tengine_aserver_profile() {
  ServerProfile p = tengine_profile();
  p.key = "tengine-aserver";
  p.server_header = "Tengine/Aserver";
  return p;
}

std::vector<ServerProfile> testbed_profiles() {
  return {nginx_profile(),   litespeed_profile(), h2o_profile(),
          nghttpd_profile(), tengine_profile(),   apache_profile()};
}

ServerProfile profile_by_key(const std::string& key) {
  for (auto& p : testbed_profiles()) {
    if (p.key == key) return p;
  }
  if (key == "gse") return gse_profile();
  if (key == "cloudflare-nginx") return cloudflare_nginx_profile();
  if (key == "ideawebserver") return ideawebserver_profile();
  if (key == "tengine-aserver") return tengine_aserver_profile();
  throw std::out_of_range("unknown server profile: " + key);
}

}  // namespace h2r::server
