// Static web-site content model served by the engine.
//
// Bodies are procedurally generated from (path, offset), so a Site carries
// only metadata no matter how large its objects are — the testbed needs
// multi-megabyte files for the multiplexing probe (§III-A1).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "hpack/header_field.h"
#include "util/bytes.h"

namespace h2r::server {

struct Resource {
  std::string path;
  std::size_t size = 0;
  std::string content_type = "text/html";
};

class Site {
 public:
  Site() = default;
  explicit Site(std::string host) : host_(std::move(host)) {}

  [[nodiscard]] const std::string& host() const noexcept { return host_; }

  Site& add_resource(Resource r);

  /// Paths the server pushes when @p trigger_path is requested.
  Site& set_push_list(std::string trigger_path, std::vector<std::string> paths);

  /// Extra headers attached to every response (e.g. a stable cookie).
  Site& add_response_header(std::string name, std::string value);

  /// When set, every response carries a *fresh* set-cookie value — the
  /// behaviour that makes the paper drop sites with compression ratio > 1
  /// from the Figure 4/5 data (§V-G).
  Site& set_cookie_churn(bool on) {
    cookie_churn_ = on;
    return *this;
  }
  [[nodiscard]] bool cookie_churn() const noexcept { return cookie_churn_; }

  [[nodiscard]] const Resource* find(std::string_view path) const;
  [[nodiscard]] const std::vector<std::string>* push_list(
      std::string_view trigger_path) const;
  [[nodiscard]] const hpack::HeaderList& extra_headers() const noexcept {
    return extra_headers_;
  }
  [[nodiscard]] std::size_t resource_count() const noexcept {
    return resources_.size();
  }

  /// The testbed site used for Table III probing: a front page, a large
  /// object per multiplexing stream, and a small object for window tests.
  static Site standard_testbed_site(std::string host = "testbed.local");

 private:
  std::string host_;
  // std::less<> so lookups by string_view need no temporary std::string.
  std::map<std::string, Resource, std::less<>> resources_;
  std::map<std::string, std::vector<std::string>, std::less<>> push_lists_;
  hpack::HeaderList extra_headers_;
  bool cookie_churn_ = false;
};

/// Deterministic body bytes for @p resource at [offset, offset+len): a
/// pattern derived from the path, stable across reads.
Bytes resource_body(const Resource& resource, std::size_t offset,
                    std::size_t len);

/// Same pattern, synthesized directly into @p out — the engine's DATA
/// emission path appends body octets after the frame header it already
/// wrote, with no intermediate buffer.
void resource_body_into(ByteWriter& out, const Resource& resource,
                        std::size_t offset, std::size_t len);

}  // namespace h2r::server
