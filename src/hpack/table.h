// HPACK indexing tables (RFC 7541 §2.3).
//
// The unified address space maps index 1..61 onto the fixed static table and
// 62.. onto the dynamic table (most recently inserted first). Both encoder
// and decoder embed an IndexTable; keeping insertion/eviction here is what
// guarantees the two sides stay synchronized as long as they see the same
// instruction stream.
//
// Lookup is hash-based: the static table is indexed once globally, and the
// dynamic table gets a two-level index (name -> bucket, value -> queue
// inside the bucket) built the first time find() sees it past a small size
// threshold and maintained incrementally across insert/evict from then on.
// find() then costs a handful of hash probes and zero allocations, while
// decoder-side tables (which never call find()) and short-lived
// per-connection tables pay nothing for it. The queues hold absolute
// insertion ids; an entry's current index is derived from its id and the
// running insertion count, so nothing is rewritten when indices shift on
// insert. find() returns exactly what the original linear scan did: the
// lowest-index full (name, value) match anywhere (static before dynamic),
// else the lowest-index name match.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "hpack/header_field.h"
#include "util/status.h"

namespace h2r::hpack {

/// Number of entries in the RFC 7541 Appendix A static table.
inline constexpr std::uint32_t kStaticTableSize = 61;

/// Default SETTINGS_HEADER_TABLE_SIZE (RFC 7540 §6.5.2).
inline constexpr std::uint32_t kDefaultDynamicTableCapacity = 4096;

/// Entry of the static table; values may be empty.
const HeaderField& static_table_entry(std::uint32_t index_1based);

/// Result of a table lookup during encoding.
struct MatchResult {
  std::uint32_t index = 0;   ///< unified index, 0 = no match at all
  bool value_matched = false;  ///< true: full (name,value) match
};

/// The dynamic table plus unified static+dynamic addressing.
class IndexTable {
 public:
  explicit IndexTable(std::uint32_t capacity = kDefaultDynamicTableCapacity)
      : capacity_(capacity) {}

  /// Entry at unified @p index (1-based). Errors on 0 or out-of-range —
  /// a COMPRESSION_ERROR at the connection level for a decoder.
  [[nodiscard]] Result<HeaderField> at(std::uint32_t index) const;

  /// Inserts at the head of the dynamic table, evicting from the tail until
  /// the size constraint holds (§4.4). An entry larger than the capacity
  /// empties the table and inserts nothing — that is legal.
  void insert(const HeaderField& field);

  /// §4.3: lowers/raises capacity, evicting as needed. Called on dynamic
  /// table size update instructions and on SETTINGS_HEADER_TABLE_SIZE.
  void set_capacity(std::uint32_t capacity);

  /// Best match for @p field in the unified space. Prefers a full
  /// (name, value) match; otherwise any name match.
  [[nodiscard]] MatchResult find(const HeaderField& field) const;

  [[nodiscard]] std::uint32_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t size_octets() const noexcept { return size_octets_; }
  [[nodiscard]] std::size_t dynamic_entry_count() const noexcept {
    return dynamic_.size();
  }
  /// Lifetime totals — deltas across an encode/decode call tell a tracer how
  /// many dynamic-table insertions/evictions one header block caused.
  [[nodiscard]] std::uint64_t insert_count() const noexcept {
    return insert_count_;
  }
  [[nodiscard]] std::uint64_t eviction_count() const noexcept {
    return eviction_count_;
  }

 private:
  /// Per-name index bucket. Queues hold absolute insertion ids, ascending
  /// (front = oldest). Eviction always removes the globally oldest entry,
  /// so per-queue removal is a pop_front; the most recent match is back().
  struct NameBucket {
    std::deque<std::uint64_t> any;  ///< every entry with this name
    std::unordered_map<std::string, std::deque<std::uint64_t>> by_value;
  };

  void evict_until_fits();
  void drop_oldest();
  void index_insert(const HeaderField& field, std::uint64_t abs) const;
  void build_index() const;

  /// Unified index of the dynamic entry with absolute id @p abs.
  [[nodiscard]] std::uint32_t index_of_abs(std::uint64_t abs) const noexcept {
    return kStaticTableSize + 1 +
           static_cast<std::uint32_t>(insert_count_ - 1 - abs);
  }

  std::deque<HeaderField> dynamic_;  // front = most recent = index 62
  std::uint32_t capacity_;
  std::size_t size_octets_ = 0;
  std::uint64_t insert_count_ = 0;  ///< absolute id of the next insertion
  std::uint64_t eviction_count_ = 0;

  /// Dynamic tables at or below this entry count are scanned linearly;
  /// the hash index only pays for itself once the table outgrows a single
  /// connection's worth of response headers.
  static constexpr std::size_t kIndexThreshold = 16;

  // Lazily built lookup index (mutable: find() is logically const).
  mutable bool indexed_ = false;
  mutable std::unordered_map<std::string, NameBucket> by_name_;
};

}  // namespace h2r::hpack
