// HPACK indexing tables (RFC 7541 §2.3).
//
// The unified address space maps index 1..61 onto the fixed static table and
// 62.. onto the dynamic table (most recently inserted first). Both encoder
// and decoder embed an IndexTable; keeping insertion/eviction here is what
// guarantees the two sides stay synchronized as long as they see the same
// instruction stream.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string_view>

#include "hpack/header_field.h"
#include "util/status.h"

namespace h2r::hpack {

/// Number of entries in the RFC 7541 Appendix A static table.
inline constexpr std::uint32_t kStaticTableSize = 61;

/// Default SETTINGS_HEADER_TABLE_SIZE (RFC 7540 §6.5.2).
inline constexpr std::uint32_t kDefaultDynamicTableCapacity = 4096;

/// Entry of the static table; values may be empty.
const HeaderField& static_table_entry(std::uint32_t index_1based);

/// Result of a table lookup during encoding.
struct MatchResult {
  std::uint32_t index = 0;   ///< unified index, 0 = no match at all
  bool value_matched = false;  ///< true: full (name,value) match
};

/// The dynamic table plus unified static+dynamic addressing.
class IndexTable {
 public:
  explicit IndexTable(std::uint32_t capacity = kDefaultDynamicTableCapacity)
      : capacity_(capacity) {}

  /// Entry at unified @p index (1-based). Errors on 0 or out-of-range —
  /// a COMPRESSION_ERROR at the connection level for a decoder.
  [[nodiscard]] Result<HeaderField> at(std::uint32_t index) const;

  /// Inserts at the head of the dynamic table, evicting from the tail until
  /// the size constraint holds (§4.4). An entry larger than the capacity
  /// empties the table and inserts nothing — that is legal.
  void insert(const HeaderField& field);

  /// §4.3: lowers/raises capacity, evicting as needed. Called on dynamic
  /// table size update instructions and on SETTINGS_HEADER_TABLE_SIZE.
  void set_capacity(std::uint32_t capacity);

  /// Best match for @p field in the unified space. Prefers a full
  /// (name, value) match; otherwise any name match.
  [[nodiscard]] MatchResult find(const HeaderField& field) const;

  [[nodiscard]] std::uint32_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t size_octets() const noexcept { return size_octets_; }
  [[nodiscard]] std::size_t dynamic_entry_count() const noexcept {
    return dynamic_.size();
  }

 private:
  void evict_until_fits();

  std::deque<HeaderField> dynamic_;  // front = most recent = index 62
  std::uint32_t capacity_;
  std::size_t size_octets_ = 0;
};

}  // namespace h2r::hpack
