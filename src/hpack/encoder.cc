#include "hpack/encoder.h"

#include "hpack/huffman.h"
#include "hpack/integer.h"

namespace h2r::hpack {
namespace {

// First-octet patterns, RFC 7541 §6.
constexpr std::uint8_t kIndexedPattern = 0x80;        // 1xxxxxxx, prefix 7
constexpr std::uint8_t kIncrementalPattern = 0x40;    // 01xxxxxx, prefix 6
constexpr std::uint8_t kWithoutIndexPattern = 0x00;   // 0000xxxx, prefix 4
constexpr std::uint8_t kNeverIndexPattern = 0x10;     // 0001xxxx, prefix 4
constexpr std::uint8_t kTableSizePattern = 0x20;      // 001xxxxx, prefix 5

}  // namespace

Encoder::Encoder(EncoderOptions options)
    : options_(options), table_(options.table_capacity) {}

void Encoder::set_table_capacity(std::uint32_t capacity) {
  table_.set_capacity(capacity);
  pending_capacity_update_ = capacity;
  ++capacity_epoch_;
}

void Encoder::encode(const HeaderList& headers, ByteWriter& out) {
  if (pending_capacity_update_) {
    encode_integer(out, *pending_capacity_update_, 5, kTableSizePattern);
    pending_capacity_update_.reset();
  }
  for (const auto& field : headers) encode_field(field, out);
}

Bytes Encoder::encode(const HeaderList& headers) {
  ByteWriter out;
  encode(headers, out);
  return out.take();
}

void Encoder::encode_field(const HeaderField& field, ByteWriter& out) {
  if (field.never_indexed) {
    // Sensitive fields are pinned to the never-indexed literal form so
    // intermediaries cannot promote them (§7.1.3).
    const MatchResult m =
        options_.policy == IndexingPolicy::kNone ? MatchResult{} : table_.find(field);
    encode_integer(out, m.index, 4, kNeverIndexPattern);
    if (m.index == 0) encode_string(field.name, out);
    encode_string(field.value, out);
    return;
  }

  switch (options_.policy) {
    case IndexingPolicy::kAggressive: {
      const MatchResult m = table_.find(field);
      if (m.value_matched) {
        encode_integer(out, m.index, 7, kIndexedPattern);
        return;
      }
      encode_integer(out, m.index, 6, kIncrementalPattern);
      if (m.index == 0) encode_string(field.name, out);
      encode_string(field.value, out);
      table_.insert(field);
      return;
    }
    case IndexingPolicy::kStaticOnly: {
      const MatchResult m = table_.find(field);
      if (m.value_matched) {
        encode_integer(out, m.index, 7, kIndexedPattern);
        return;
      }
      encode_integer(out, m.index, 4, kWithoutIndexPattern);
      if (m.index == 0) encode_string(field.name, out);
      encode_string(field.value, out);
      return;
    }
    case IndexingPolicy::kNone: {
      encode_integer(out, 0, 4, kWithoutIndexPattern);
      encode_string(field.name, out);
      encode_string(field.value, out);
      return;
    }
  }
}

void Encoder::encode_string(std::string_view s, ByteWriter& out) const {
  if (options_.use_huffman) {
    const std::size_t encoded = huffman_encoded_size(s);
    if (encoded < s.size()) {
      encode_integer(out, static_cast<std::uint32_t>(encoded), 7, 0x80);
      out.reserve(encoded);  // size is already known — one grow, not many
      huffman_encode(out, s);
      return;
    }
  }
  encode_integer(out, static_cast<std::uint32_t>(s.size()), 7, 0x00);
  out.write_string(s);
}

}  // namespace h2r::hpack
