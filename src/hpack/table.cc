#include "hpack/table.h"

#include <array>
#include <stdexcept>

namespace h2r::hpack {
namespace {

/// RFC 7541 Appendix A, verbatim.
const std::array<HeaderField, kStaticTableSize>& static_table() {
  static const std::array<HeaderField, kStaticTableSize> kTable = {{
      {":authority", ""},
      {":method", "GET"},
      {":method", "POST"},
      {":path", "/"},
      {":path", "/index.html"},
      {":scheme", "http"},
      {":scheme", "https"},
      {":status", "200"},
      {":status", "204"},
      {":status", "206"},
      {":status", "304"},
      {":status", "400"},
      {":status", "404"},
      {":status", "500"},
      {"accept-charset", ""},
      {"accept-encoding", "gzip, deflate"},
      {"accept-language", ""},
      {"accept-ranges", ""},
      {"accept", ""},
      {"access-control-allow-origin", ""},
      {"age", ""},
      {"allow", ""},
      {"authorization", ""},
      {"cache-control", ""},
      {"content-disposition", ""},
      {"content-encoding", ""},
      {"content-language", ""},
      {"content-length", ""},
      {"content-location", ""},
      {"content-range", ""},
      {"content-type", ""},
      {"cookie", ""},
      {"date", ""},
      {"etag", ""},
      {"expect", ""},
      {"expires", ""},
      {"from", ""},
      {"host", ""},
      {"if-match", ""},
      {"if-modified-since", ""},
      {"if-none-match", ""},
      {"if-range", ""},
      {"if-unmodified-since", ""},
      {"last-modified", ""},
      {"link", ""},
      {"location", ""},
      {"max-forwards", ""},
      {"proxy-authenticate", ""},
      {"proxy-authorization", ""},
      {"range", ""},
      {"referer", ""},
      {"refresh", ""},
      {"retry-after", ""},
      {"server", ""},
      {"set-cookie", ""},
      {"strict-transport-security", ""},
      {"transfer-encoding", ""},
      {"user-agent", ""},
      {"vary", ""},
      {"via", ""},
      {"www-authenticate", ""},
  }};
  return kTable;
}

}  // namespace

const HeaderField& static_table_entry(std::uint32_t index_1based) {
  if (index_1based < 1 || index_1based > kStaticTableSize) {
    throw std::out_of_range("static_table_entry index");
  }
  return static_table()[index_1based - 1];
}

Result<HeaderField> IndexTable::at(std::uint32_t index) const {
  if (index == 0) {
    return CompressionFailureError("HPACK index 0 is invalid");
  }
  if (index <= kStaticTableSize) {
    return static_table()[index - 1];
  }
  const std::uint32_t dyn = index - kStaticTableSize - 1;
  if (dyn >= dynamic_.size()) {
    return CompressionFailureError("HPACK index beyond dynamic table");
  }
  return dynamic_[dyn];
}

void IndexTable::insert(const HeaderField& field) {
  const std::size_t entry_size = field.hpack_size();
  if (entry_size > capacity_) {
    // §4.4: too-large entry flushes the table and is itself not inserted.
    dynamic_.clear();
    size_octets_ = 0;
    return;
  }
  dynamic_.push_front(field);
  size_octets_ += entry_size;
  evict_until_fits();
}

void IndexTable::set_capacity(std::uint32_t capacity) {
  capacity_ = capacity;
  evict_until_fits();
}

void IndexTable::evict_until_fits() {
  while (size_octets_ > capacity_) {
    size_octets_ -= dynamic_.back().hpack_size();
    dynamic_.pop_back();
  }
}

MatchResult IndexTable::find(const HeaderField& field) const {
  MatchResult best;
  const auto& st = static_table();
  for (std::uint32_t i = 0; i < st.size(); ++i) {
    if (st[i].name != field.name) continue;
    if (st[i].value == field.value) {
      return {.index = i + 1, .value_matched = true};
    }
    if (best.index == 0) best.index = i + 1;
  }
  for (std::uint32_t i = 0; i < dynamic_.size(); ++i) {
    if (dynamic_[i].name != field.name) continue;
    if (dynamic_[i].value == field.value) {
      return {.index = kStaticTableSize + 1 + i, .value_matched = true};
    }
    if (best.index == 0) best.index = kStaticTableSize + 1 + i;
  }
  return best;
}

}  // namespace h2r::hpack
