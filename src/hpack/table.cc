#include "hpack/table.h"

#include <array>
#include <stdexcept>

namespace h2r::hpack {
namespace {

/// RFC 7541 Appendix A, verbatim.
const std::array<HeaderField, kStaticTableSize>& static_table() {
  static const std::array<HeaderField, kStaticTableSize> kTable = {{
      {":authority", ""},
      {":method", "GET"},
      {":method", "POST"},
      {":path", "/"},
      {":path", "/index.html"},
      {":scheme", "http"},
      {":scheme", "https"},
      {":status", "200"},
      {":status", "204"},
      {":status", "206"},
      {":status", "304"},
      {":status", "400"},
      {":status", "404"},
      {":status", "500"},
      {"accept-charset", ""},
      {"accept-encoding", "gzip, deflate"},
      {"accept-language", ""},
      {"accept-ranges", ""},
      {"accept", ""},
      {"access-control-allow-origin", ""},
      {"age", ""},
      {"allow", ""},
      {"authorization", ""},
      {"cache-control", ""},
      {"content-disposition", ""},
      {"content-encoding", ""},
      {"content-language", ""},
      {"content-length", ""},
      {"content-location", ""},
      {"content-range", ""},
      {"content-type", ""},
      {"cookie", ""},
      {"date", ""},
      {"etag", ""},
      {"expect", ""},
      {"expires", ""},
      {"from", ""},
      {"host", ""},
      {"if-match", ""},
      {"if-modified-since", ""},
      {"if-none-match", ""},
      {"if-range", ""},
      {"if-unmodified-since", ""},
      {"last-modified", ""},
      {"link", ""},
      {"location", ""},
      {"max-forwards", ""},
      {"proxy-authenticate", ""},
      {"proxy-authorization", ""},
      {"range", ""},
      {"referer", ""},
      {"refresh", ""},
      {"retry-after", ""},
      {"server", ""},
      {"set-cookie", ""},
      {"strict-transport-security", ""},
      {"transfer-encoding", ""},
      {"user-agent", ""},
      {"vary", ""},
      {"via", ""},
      {"www-authenticate", ""},
  }};
  return kTable;
}

/// Hash index over the static table, built once: name -> (lowest name
/// index, value -> lowest full-match index). Lookups through this return
/// exactly what a front-to-back linear scan of Appendix A would.
struct StaticIndex {
  struct Bucket {
    std::uint32_t name_index = 0;
    std::unordered_map<std::string, std::uint32_t> by_value;
  };
  std::unordered_map<std::string, Bucket> by_name;

  StaticIndex() {
    const auto& st = static_table();
    for (std::uint32_t i = 0; i < st.size(); ++i) {
      Bucket& b = by_name[st[i].name];
      if (b.name_index == 0) b.name_index = i + 1;
      b.by_value.try_emplace(st[i].value, i + 1);
    }
  }
};

const StaticIndex& static_index() {
  static const StaticIndex idx;
  return idx;
}

}  // namespace

const HeaderField& static_table_entry(std::uint32_t index_1based) {
  if (index_1based < 1 || index_1based > kStaticTableSize) {
    throw std::out_of_range("static_table_entry index");
  }
  return static_table()[index_1based - 1];
}

Result<HeaderField> IndexTable::at(std::uint32_t index) const {
  if (index == 0) {
    return CompressionFailureError("HPACK index 0 is invalid");
  }
  if (index <= kStaticTableSize) {
    return static_table()[index - 1];
  }
  const std::uint32_t dyn = index - kStaticTableSize - 1;
  if (dyn >= dynamic_.size()) {
    return CompressionFailureError("HPACK index beyond dynamic table");
  }
  return dynamic_[dyn];
}

void IndexTable::insert(const HeaderField& field) {
  const std::size_t entry_size = field.hpack_size();
  if (entry_size > capacity_) {
    // §4.4: too-large entry flushes the table and is itself not inserted.
    dynamic_.clear();
    size_octets_ = 0;
    by_name_.clear();
    return;
  }
  if (indexed_) index_insert(field, insert_count_);
  ++insert_count_;
  dynamic_.push_front(field);
  size_octets_ += entry_size;
  evict_until_fits();
}

void IndexTable::set_capacity(std::uint32_t capacity) {
  capacity_ = capacity;
  evict_until_fits();
}

void IndexTable::evict_until_fits() {
  while (size_octets_ > capacity_) drop_oldest();
}

void IndexTable::drop_oldest() {
  const HeaderField& oldest = dynamic_.back();
  // The oldest surviving entry carries the smallest absolute id, which sits
  // at the front of both of its bucket queues.
  const std::uint64_t abs = insert_count_ - dynamic_.size();
  if (auto it = by_name_.find(oldest.name); indexed_ && it != by_name_.end()) {
    NameBucket& bucket = it->second;
    if (!bucket.any.empty() && bucket.any.front() == abs) {
      bucket.any.pop_front();
    }
    if (auto vit = bucket.by_value.find(oldest.value);
        vit != bucket.by_value.end()) {
      if (!vit->second.empty() && vit->second.front() == abs) {
        vit->second.pop_front();
      }
      if (vit->second.empty()) bucket.by_value.erase(vit);
    }
    if (bucket.any.empty()) by_name_.erase(it);
  }
  size_octets_ -= oldest.hpack_size();
  dynamic_.pop_back();
  ++eviction_count_;
}

void IndexTable::index_insert(const HeaderField& field,
                              std::uint64_t abs) const {
  NameBucket& bucket = by_name_[field.name];
  bucket.any.push_back(abs);
  bucket.by_value[field.value].push_back(abs);
}

void IndexTable::build_index() const {
  // Oldest first so every bucket queue comes out ascending. Decoder-side
  // tables never call find(), so they never reach this and insert/evict
  // stay as cheap as the unindexed original.
  for (std::size_t i = dynamic_.size(); i-- > 0;) {
    index_insert(dynamic_[i], insert_count_ - 1 - i);
  }
  indexed_ = true;
}

MatchResult IndexTable::find(const HeaderField& field) const {
  const StaticIndex& st = static_index();
  std::uint32_t name_index = 0;

  if (auto it = st.by_name.find(field.name); it != st.by_name.end()) {
    if (auto vit = it->second.by_value.find(field.value);
        vit != it->second.by_value.end()) {
      return {.index = vit->second, .value_matched = true};
    }
    name_index = it->second.name_index;
  }
  if (!indexed_) {
    if (dynamic_.size() <= kIndexThreshold) {
      // Short-lived tables (one fresh connection's worth of inserts) never
      // amortize index upkeep; a linear scan of a handful of entries beats
      // paying allocations on every insert.
      for (std::uint32_t i = 0; i < dynamic_.size(); ++i) {
        if (dynamic_[i].name != field.name) continue;
        if (dynamic_[i].value == field.value) {
          return {.index = kStaticTableSize + 1 + i, .value_matched = true};
        }
        if (name_index == 0) name_index = kStaticTableSize + 1 + i;
      }
      return {.index = name_index, .value_matched = false};
    }
    build_index();
  }
  if (auto it = by_name_.find(field.name); it != by_name_.end()) {
    const NameBucket& bucket = it->second;
    if (auto vit = bucket.by_value.find(field.value);
        vit != bucket.by_value.end()) {
      // back() = largest absolute id = most recent = lowest dynamic index.
      return {.index = index_of_abs(vit->second.back()), .value_matched = true};
    }
    if (name_index == 0) {
      name_index = index_of_abs(bucket.any.back());
    }
  }
  return {.index = name_index, .value_matched = false};
}

}  // namespace h2r::hpack
