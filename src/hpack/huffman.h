// HPACK Huffman string coding (RFC 7541 §5.2 + Appendix B).
//
// Encoding walks the canonical code table. Decoding runs a precomputed
// byte-at-a-time FSM: each state is an interior node of the code trie (the
// bit path pending since the last symbol boundary) and each transition
// consumes a whole input octet, emitting the 0-2 symbols it completes.
// The transition table is generated once at static init from the same
// canonical table; a reference bit-walk trie decoder is retained as the
// differential-test oracle. Per §5.2, unconsumed trailing bits must form a
// strict prefix of the EOS code (i.e. up to 7 one-bits); anything else — an
// actually-decoded EOS, >7 padding bits, or zero bits in the padding — is a
// compression error, and the probes rely on that strictness.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "util/bytes.h"
#include "util/status.h"

namespace h2r::hpack {

/// Exact octet count @p s occupies after Huffman coding (no encode needed).
std::size_t huffman_encoded_size(std::string_view s) noexcept;

/// Appends the Huffman coding of @p s to @p out.
void huffman_encode(ByteWriter& out, std::string_view s);

/// Decodes @p data fully via the byte-at-a-time FSM. Fails on EOS in the
/// body, invalid padding, or truncated codes.
Result<std::string> huffman_decode(std::span<const std::uint8_t> data);

/// The original bit-at-a-time trie decoder, kept as the test oracle for the
/// FSM: both must agree (value and error message) on every input.
Result<std::string> huffman_decode_reference(
    std::span<const std::uint8_t> data);

}  // namespace h2r::hpack
