// HPACK Huffman string coding (RFC 7541 §5.2 + Appendix B).
//
// Encoding walks the canonical code table; decoding walks a binary trie built
// once from the same table. Per §5.2, unconsumed trailing bits must form a
// strict prefix of the EOS code (i.e. up to 7 one-bits); anything else — an
// actually-decoded EOS, >7 padding bits, or zero bits in the padding — is a
// compression error, and the probes rely on that strictness.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "util/bytes.h"
#include "util/status.h"

namespace h2r::hpack {

/// Exact octet count @p s occupies after Huffman coding (no encode needed).
std::size_t huffman_encoded_size(std::string_view s) noexcept;

/// Appends the Huffman coding of @p s to @p out.
void huffman_encode(ByteWriter& out, std::string_view s);

/// Decodes @p data fully. Fails on EOS in the body, invalid padding, or
/// truncated codes.
Result<std::string> huffman_decode(std::span<const std::uint8_t> data);

}  // namespace h2r::hpack
