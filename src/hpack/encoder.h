// HPACK encoder (RFC 7541 §6) with a configurable indexing policy.
//
// The policy knob exists because the paper's Figures 4/5 hinge on exactly
// this dimension of server behaviour: GSE indexes aggressively (ratio < 0.3),
// while Nginx/Tengine never insert *response* headers into the dynamic table,
// so their response HEADERS never shrink (ratio ~ 1). Encoding the same
// header list twice under each policy reproduces those families.
#pragma once

#include <cstdint>
#include <optional>

#include "hpack/header_field.h"
#include "hpack/table.h"
#include "util/bytes.h"

namespace h2r::hpack {

/// How eagerly the encoder uses the dynamic table.
enum class IndexingPolicy : std::uint8_t {
  /// Full RFC behaviour: reference matches, insert misses (GSE, LiteSpeed,
  /// H2O, nghttpd, Apache).
  kAggressive,
  /// Reference static-table matches only; never insert into the dynamic
  /// table (observed Nginx/Tengine response-side behaviour — Section V-G).
  kStaticOnly,
  /// Emit everything as literal-without-indexing with no table references
  /// at all (pathological lower bound, used in ablation benches).
  kNone,
};

struct EncoderOptions {
  IndexingPolicy policy = IndexingPolicy::kAggressive;
  bool use_huffman = true;
  /// Initial dynamic table capacity (peer's SETTINGS_HEADER_TABLE_SIZE).
  std::uint32_t table_capacity = kDefaultDynamicTableCapacity;
};

/// Stateful header-block encoder. One per connection direction.
class Encoder {
 public:
  explicit Encoder(EncoderOptions options = {});

  /// Encodes @p headers as one header block, appending to @p out.
  void encode(const HeaderList& headers, ByteWriter& out);

  /// Convenience: encode into a fresh buffer.
  [[nodiscard]] Bytes encode(const HeaderList& headers);

  /// Schedules a dynamic table size update instruction (§6.3) to be emitted
  /// at the start of the next header block, and resizes our table.
  void set_table_capacity(std::uint32_t capacity);

  /// Counts set_table_capacity() calls. Together with the table's
  /// insert/eviction counts this fully versions the encoder state a header
  /// block depends on: a block cached at version V re-encodes byte-identical
  /// while the version is unchanged (see Http2Server's response-block cache).
  [[nodiscard]] std::uint64_t capacity_epoch() const noexcept {
    return capacity_epoch_;
  }
  /// True while a §6.3 size-update instruction is queued for the next
  /// block — such a block is context-dependent and must not be cached.
  [[nodiscard]] bool has_pending_capacity_update() const noexcept {
    return pending_capacity_update_.has_value();
  }

  [[nodiscard]] const IndexTable& table() const noexcept { return table_; }
  [[nodiscard]] const EncoderOptions& options() const noexcept { return options_; }

 private:
  void encode_field(const HeaderField& field, ByteWriter& out);
  void encode_string(std::string_view s, ByteWriter& out) const;

  EncoderOptions options_;
  IndexTable table_;
  std::optional<std::uint32_t> pending_capacity_update_;
  std::uint64_t capacity_epoch_ = 0;
};

}  // namespace h2r::hpack
