#include "hpack/huffman.h"

#include <array>
#include <memory>
#include <vector>

#include "hpack/huffman_table.h"

namespace h2r::hpack {
namespace {

using detail::kHuffmanTable;

/// Flat binary trie over the canonical codes. Node 0 is the root; children
/// index into the same vector; `symbol >= 0` marks a leaf.
struct DecodeTrie {
  struct Node {
    std::int32_t child[2] = {-1, -1};
    std::int32_t symbol = -1;
  };
  std::vector<Node> nodes;

  DecodeTrie() {
    nodes.emplace_back();
    for (std::size_t sym = 0; sym < kHuffmanTable.size(); ++sym) {
      const auto [bits, length] = kHuffmanTable[sym];
      std::int32_t cur = 0;
      for (int b = length - 1; b >= 0; --b) {
        const int bit = static_cast<int>((bits >> b) & 1u);
        if (nodes[static_cast<std::size_t>(cur)].child[bit] < 0) {
          nodes[static_cast<std::size_t>(cur)].child[bit] =
              static_cast<std::int32_t>(nodes.size());
          nodes.emplace_back();
        }
        cur = nodes[static_cast<std::size_t>(cur)].child[bit];
      }
      nodes[static_cast<std::size_t>(cur)].symbol = static_cast<std::int32_t>(sym);
    }
  }
};

const DecodeTrie& trie() {
  static const DecodeTrie t;
  return t;
}

constexpr std::int32_t kEosSymbol = 256;

// ------------------------------------------------------------------- FSM
//
// States are the trie's interior nodes (root = state 0). A transition
// consumes one octet: it encodes the next state, up to two completed
// symbols (codes are >= 5 bits, so 7 pending + 8 new bits complete at most
// two), and a failure flag for paths that decode EOS or leave the code
// space. End-of-input validity depends only on the final state: its bit
// path *is* the pending padding, so depth and all-ones-ness decide between
// accept, ">7 bits" and "not an EOS prefix" — exactly the reference
// decoder's checks.

enum : std::uint8_t {
  kFailEos = 1,      ///< byte path walks through the EOS leaf
  kFailInvalid = 2,  ///< byte path leaves the code space (unreachable for
                     ///< the complete RFC 7541 code; kept for exactness)
};

struct Fsm {
  struct Transition {
    std::uint8_t next = 0;   ///< state after the octet
    std::uint8_t flags = 0;  ///< kFailEos / kFailInvalid, 0 = ok
    std::uint8_t nsym = 0;   ///< symbols completed within the octet
    std::uint8_t sym[2] = {0, 0};
  };
  struct State {
    std::uint8_t depth = 0;  ///< pending bits since last symbol boundary
    bool all_ones = true;    ///< pending bits are an EOS prefix
  };

  std::vector<Transition> table;  ///< state * 256 + octet
  std::vector<State> states;

  Fsm() {
    const DecodeTrie& t = trie();
    // Compact ids for interior nodes; the root keeps id 0.
    std::vector<std::int32_t> state_of(t.nodes.size(), -1);
    std::vector<std::int32_t> node_of;
    std::vector<State> info_of_node(t.nodes.size());
    for (std::size_t n = 0; n < t.nodes.size(); ++n) {
      if (t.nodes[n].symbol < 0) {
        state_of[n] = static_cast<std::int32_t>(node_of.size());
        node_of.push_back(static_cast<std::int32_t>(n));
      }
    }
    // Depth / all-ones per node, walkable in index order because parents
    // are always created before their children in DecodeTrie.
    for (std::size_t n = 0; n < t.nodes.size(); ++n) {
      for (int bit = 0; bit < 2; ++bit) {
        const std::int32_t c = t.nodes[n].child[bit];
        if (c < 0) continue;
        info_of_node[static_cast<std::size_t>(c)].depth =
            static_cast<std::uint8_t>(info_of_node[n].depth + 1);
        info_of_node[static_cast<std::size_t>(c)].all_ones =
            info_of_node[n].all_ones && bit == 1;
      }
    }

    states.resize(node_of.size());
    for (std::size_t s = 0; s < node_of.size(); ++s) {
      states[s] = info_of_node[static_cast<std::size_t>(node_of[s])];
    }

    table.resize(node_of.size() * 256);
    for (std::size_t s = 0; s < node_of.size(); ++s) {
      for (unsigned octet = 0; octet < 256; ++octet) {
        Transition& e = table[s * 256 + octet];
        std::int32_t cur = node_of[s];
        for (int b = 7; b >= 0 && e.flags == 0; --b) {
          const int bit = static_cast<int>((octet >> b) & 1u);
          cur = t.nodes[static_cast<std::size_t>(cur)].child[bit];
          if (cur < 0) {
            e.flags = kFailInvalid;
            break;
          }
          const std::int32_t sym = t.nodes[static_cast<std::size_t>(cur)].symbol;
          if (sym >= 0) {
            if (sym == kEosSymbol) {
              e.flags = kFailEos;
              break;
            }
            e.sym[e.nsym++] = static_cast<std::uint8_t>(sym);
            cur = 0;
          }
        }
        if (e.flags == 0) {
          e.next = static_cast<std::uint8_t>(state_of[static_cast<std::size_t>(cur)]);
        }
      }
    }
  }
};

const Fsm& fsm() {
  static const Fsm f;
  return f;
}

}  // namespace

std::size_t huffman_encoded_size(std::string_view s) noexcept {
  std::uint64_t bits = 0;
  for (unsigned char c : s) bits += kHuffmanTable[c].length;
  return static_cast<std::size_t>((bits + 7) / 8);
}

void huffman_encode(ByteWriter& out, std::string_view s) {
  std::uint64_t acc = 0;  // bit accumulator, most-significant side first
  int acc_bits = 0;
  for (unsigned char c : s) {
    const auto [code, length] = kHuffmanTable[c];
    acc = (acc << length) | code;
    acc_bits += length;
    while (acc_bits >= 8) {
      acc_bits -= 8;
      out.write_u8(static_cast<std::uint8_t>(acc >> acc_bits));
    }
  }
  if (acc_bits > 0) {
    // Pad with the most-significant bits of EOS (all ones).
    const int pad = 8 - acc_bits;
    acc = (acc << pad) | ((1u << pad) - 1u);
    out.write_u8(static_cast<std::uint8_t>(acc));
  }
}

Result<std::string> huffman_decode(std::span<const std::uint8_t> data) {
  const Fsm& f = fsm();
  const Fsm::Transition* table = f.table.data();
  std::string out;
  // Shortest codes are 5 bits: 8/5 output octets per input octet, tops.
  out.reserve(data.size() * 8 / 5 + 1);
  std::uint32_t state = 0;
  for (std::uint8_t octet : data) {
    const Fsm::Transition& e = table[state * 256u + octet];
    if (e.flags != 0) {
      return CompressionFailureError(e.flags == kFailEos
                                         ? "Huffman: EOS decoded in body"
                                         : "Huffman: invalid code path");
    }
    if (e.nsym != 0) {
      out.push_back(static_cast<char>(e.sym[0]));
      if (e.nsym == 2) out.push_back(static_cast<char>(e.sym[1]));
    }
    state = e.next;
  }
  const Fsm::State& st = f.states[state];
  if (st.depth > 7) {
    return CompressionFailureError("Huffman: padding longer than 7 bits");
  }
  if (st.depth > 0 && !st.all_ones) {
    return CompressionFailureError("Huffman: padding is not an EOS prefix");
  }
  return out;
}

Result<std::string> huffman_decode_reference(
    std::span<const std::uint8_t> data) {
  const auto& t = trie();
  std::string out;
  out.reserve(data.size() * 2);
  std::int32_t cur = 0;
  int bits_in_flight = 0;    // bits consumed since last emitted symbol
  bool all_ones = true;      // whether those bits are all ones (EOS prefix)
  for (std::uint8_t octet : data) {
    for (int b = 7; b >= 0; --b) {
      const int bit = (octet >> b) & 1;
      cur = t.nodes[static_cast<std::size_t>(cur)].child[bit];
      if (cur < 0) {
        return CompressionFailureError("Huffman: invalid code path");
      }
      ++bits_in_flight;
      all_ones = all_ones && bit == 1;
      const std::int32_t sym = t.nodes[static_cast<std::size_t>(cur)].symbol;
      if (sym >= 0) {
        if (sym == kEosSymbol) {
          return CompressionFailureError("Huffman: EOS decoded in body");
        }
        out.push_back(static_cast<char>(sym));
        cur = 0;
        bits_in_flight = 0;
        all_ones = true;
      }
    }
  }
  if (bits_in_flight > 7) {
    return CompressionFailureError("Huffman: padding longer than 7 bits");
  }
  if (bits_in_flight > 0 && !all_ones) {
    return CompressionFailureError("Huffman: padding is not an EOS prefix");
  }
  return out;
}

}  // namespace h2r::hpack
