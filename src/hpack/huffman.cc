#include "hpack/huffman.h"

#include <array>
#include <memory>
#include <vector>

#include "hpack/huffman_table.h"

namespace h2r::hpack {
namespace {

using detail::kHuffmanTable;

/// Flat binary trie over the canonical codes. Node 0 is the root; children
/// index into the same vector; `symbol >= 0` marks a leaf.
struct DecodeTrie {
  struct Node {
    std::int32_t child[2] = {-1, -1};
    std::int32_t symbol = -1;
  };
  std::vector<Node> nodes;

  DecodeTrie() {
    nodes.emplace_back();
    for (std::size_t sym = 0; sym < kHuffmanTable.size(); ++sym) {
      const auto [bits, length] = kHuffmanTable[sym];
      std::int32_t cur = 0;
      for (int b = length - 1; b >= 0; --b) {
        const int bit = static_cast<int>((bits >> b) & 1u);
        if (nodes[static_cast<std::size_t>(cur)].child[bit] < 0) {
          nodes[static_cast<std::size_t>(cur)].child[bit] =
              static_cast<std::int32_t>(nodes.size());
          nodes.emplace_back();
        }
        cur = nodes[static_cast<std::size_t>(cur)].child[bit];
      }
      nodes[static_cast<std::size_t>(cur)].symbol = static_cast<std::int32_t>(sym);
    }
  }
};

const DecodeTrie& trie() {
  static const DecodeTrie t;
  return t;
}

constexpr std::int32_t kEosSymbol = 256;

}  // namespace

std::size_t huffman_encoded_size(std::string_view s) noexcept {
  std::uint64_t bits = 0;
  for (unsigned char c : s) bits += kHuffmanTable[c].length;
  return static_cast<std::size_t>((bits + 7) / 8);
}

void huffman_encode(ByteWriter& out, std::string_view s) {
  std::uint64_t acc = 0;  // bit accumulator, most-significant side first
  int acc_bits = 0;
  for (unsigned char c : s) {
    const auto [code, length] = kHuffmanTable[c];
    acc = (acc << length) | code;
    acc_bits += length;
    while (acc_bits >= 8) {
      acc_bits -= 8;
      out.write_u8(static_cast<std::uint8_t>(acc >> acc_bits));
    }
  }
  if (acc_bits > 0) {
    // Pad with the most-significant bits of EOS (all ones).
    const int pad = 8 - acc_bits;
    acc = (acc << pad) | ((1u << pad) - 1u);
    out.write_u8(static_cast<std::uint8_t>(acc));
  }
}

Result<std::string> huffman_decode(std::span<const std::uint8_t> data) {
  const auto& t = trie();
  std::string out;
  out.reserve(data.size() * 2);
  std::int32_t cur = 0;
  int bits_in_flight = 0;    // bits consumed since last emitted symbol
  bool all_ones = true;      // whether those bits are all ones (EOS prefix)
  for (std::uint8_t octet : data) {
    for (int b = 7; b >= 0; --b) {
      const int bit = (octet >> b) & 1;
      cur = t.nodes[static_cast<std::size_t>(cur)].child[bit];
      if (cur < 0) {
        return CompressionFailureError("Huffman: invalid code path");
      }
      ++bits_in_flight;
      all_ones = all_ones && bit == 1;
      const std::int32_t sym = t.nodes[static_cast<std::size_t>(cur)].symbol;
      if (sym >= 0) {
        if (sym == kEosSymbol) {
          return CompressionFailureError("Huffman: EOS decoded in body");
        }
        out.push_back(static_cast<char>(sym));
        cur = 0;
        bits_in_flight = 0;
        all_ones = true;
      }
    }
  }
  if (bits_in_flight > 7) {
    return CompressionFailureError("Huffman: padding longer than 7 bits");
  }
  if (bits_in_flight > 0 && !all_ones) {
    return CompressionFailureError("Huffman: padding is not an EOS prefix");
  }
  return out;
}

}  // namespace h2r::hpack
