// HPACK primitive integer representation (RFC 7541 §5.1).
//
// An integer is packed into the low `prefix_bits` of the first octet; values
// that do not fit continue in a little-endian base-128 tail. The decoder
// guards against the unbounded-continuation attack by capping decoded values
// at 2^32-1 (larger values are meaningless anywhere in HPACK/HTTP2).
#pragma once

#include <cstdint>

#include "util/bytes.h"
#include "util/status.h"

namespace h2r::hpack {

/// Appends the §5.1 representation of @p value.
/// @param first_octet_high bits already chosen for the octet's high side
///        (e.g. 0x80 for an indexed header field); must not intersect the
///        prefix mask.
/// @param prefix_bits number of low bits available in the first octet (1..8).
void encode_integer(ByteWriter& out, std::uint32_t value, int prefix_bits,
                    std::uint8_t first_octet_high);

/// Decodes a §5.1 integer whose first octet has already been consumed as
/// @p first_octet. Continuation octets are pulled from @p in.
Result<std::uint32_t> decode_integer(ByteReader& in, std::uint8_t first_octet,
                                     int prefix_bits);

}  // namespace h2r::hpack
