// HPACK decoder (RFC 7541 §3, §6).
//
// Decodes one complete header block into a HeaderList while maintaining the
// dynamic table. All failures are connection-fatal COMPRESSION_ERRORs per
// RFC 7540 §4.3 — a desynchronized table cannot be resynchronized.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>

#include "hpack/header_field.h"
#include "hpack/table.h"
#include "util/bytes.h"
#include "util/status.h"

namespace h2r::hpack {

struct DecoderOptions {
  /// Our SETTINGS_HEADER_TABLE_SIZE: ceiling for size-update instructions.
  std::uint32_t max_table_capacity = kDefaultDynamicTableCapacity;
  /// Our SETTINGS_MAX_HEADER_LIST_SIZE (uncompressed §4.1 size bound);
  /// nullopt = unlimited, the value most scanned sites advertise (Table VII).
  std::optional<std::size_t> max_header_list_size;
};

class Decoder {
 public:
  explicit Decoder(DecoderOptions options = {});

  /// Decodes one full header block. Partial blocks (split across
  /// CONTINUATION frames) must be reassembled by the caller first, per
  /// RFC 7540 §4.3.
  [[nodiscard]] Result<HeaderList> decode(std::span<const std::uint8_t> block);

  /// Applies a new SETTINGS_HEADER_TABLE_SIZE we advertised and the peer
  /// acknowledged: size-update instructions above this are errors.
  void set_max_table_capacity(std::uint32_t capacity);

  [[nodiscard]] const IndexTable& table() const noexcept { return table_; }

 private:
  [[nodiscard]] Result<std::string> decode_string(ByteReader& in) const;

  DecoderOptions options_;
  IndexTable table_;
};

}  // namespace h2r::hpack
