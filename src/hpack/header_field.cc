#include "hpack/header_field.h"

namespace h2r::hpack {

std::size_t header_list_size(const HeaderList& headers) noexcept {
  std::size_t total = 0;
  for (const auto& h : headers) total += h.hpack_size();
  return total;
}

std::string_view find_header(const HeaderList& headers, std::string_view name) {
  for (const auto& h : headers) {
    if (h.name == name) return h.value;
  }
  return {};
}

}  // namespace h2r::hpack
