// A single HTTP header field as HPACK sees it: a (name, value) pair plus the
// never-indexed sensitivity bit (RFC 7541 §7.1.3).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace h2r::hpack {

struct HeaderField {
  std::string name;   ///< lowercase by HTTP/2 convention (§8.1.2 of RFC 7540)
  std::string value;
  bool never_indexed = false;  ///< request "literal never indexed" on the wire

  HeaderField() = default;
  HeaderField(std::string_view n, std::string_view v, bool never = false)
      : name(n), value(v), never_indexed(never) {}

  /// RFC 7541 §4.1 size: name + value + 32 octets of bookkeeping overhead.
  [[nodiscard]] std::size_t hpack_size() const noexcept {
    return name.size() + value.size() + 32;
  }

  friend bool operator==(const HeaderField& a, const HeaderField& b) noexcept {
    return a.name == b.name && a.value == b.value;
  }
};

using HeaderList = std::vector<HeaderField>;

/// Sum of §4.1 sizes — the quantity SETTINGS_MAX_HEADER_LIST_SIZE bounds.
std::size_t header_list_size(const HeaderList& headers) noexcept;

/// Looks up the first field with @p name; empty view when absent.
std::string_view find_header(const HeaderList& headers, std::string_view name);

}  // namespace h2r::hpack
