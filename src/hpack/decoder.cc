#include "hpack/decoder.h"

#include "hpack/huffman.h"
#include "hpack/integer.h"

namespace h2r::hpack {

Decoder::Decoder(DecoderOptions options)
    : options_(options), table_(options.max_table_capacity) {}

void Decoder::set_max_table_capacity(std::uint32_t capacity) {
  options_.max_table_capacity = capacity;
  if (table_.capacity() > capacity) table_.set_capacity(capacity);
}

Result<HeaderList> Decoder::decode(std::span<const std::uint8_t> block) {
  ByteReader in(block);
  HeaderList out;
  out.reserve(8);  // typical request/response blocks; avoids growth churn
  std::size_t list_size = 0;
  bool saw_field = false;

  auto account = [&](const HeaderField& f) -> Status {
    list_size += f.hpack_size();
    if (options_.max_header_list_size && list_size > *options_.max_header_list_size) {
      return RefusedError("header list exceeds SETTINGS_MAX_HEADER_LIST_SIZE");
    }
    return OkStatus();
  };

  while (!in.empty()) {
    H2R_ASSIGN_OR_RETURN(std::uint8_t first, in.read_u8());

    if (first & 0x80) {  // §6.1 indexed header field
      H2R_ASSIGN_OR_RETURN(std::uint32_t index, decode_integer(in, first, 7));
      H2R_ASSIGN_OR_RETURN(HeaderField field, table_.at(index));
      H2R_RETURN_IF_ERROR(account(field));
      out.push_back(std::move(field));
      saw_field = true;
      continue;
    }

    if ((first & 0xE0) == 0x20) {  // §6.3 dynamic table size update
      if (saw_field) {
        return CompressionFailureError(
            "table size update after header fields in block");
      }
      H2R_ASSIGN_OR_RETURN(std::uint32_t capacity, decode_integer(in, first, 5));
      if (capacity > options_.max_table_capacity) {
        return CompressionFailureError(
            "table size update exceeds advertised SETTINGS_HEADER_TABLE_SIZE");
      }
      table_.set_capacity(capacity);
      continue;
    }

    // Remaining three forms are literals differing in indexing behaviour.
    int prefix;
    bool add_to_table = false;
    bool never_indexed = false;
    if ((first & 0xC0) == 0x40) {  // §6.2.1 incremental indexing
      prefix = 6;
      add_to_table = true;
    } else if ((first & 0xF0) == 0x00) {  // §6.2.2 without indexing
      prefix = 4;
    } else {  // (first & 0xF0) == 0x10, §6.2.3 never indexed
      prefix = 4;
      never_indexed = true;
    }

    H2R_ASSIGN_OR_RETURN(std::uint32_t name_index,
                         decode_integer(in, first, prefix));
    HeaderField field;
    field.never_indexed = never_indexed;
    if (name_index > 0) {
      H2R_ASSIGN_OR_RETURN(HeaderField referenced, table_.at(name_index));
      field.name = std::move(referenced.name);
    } else {
      H2R_ASSIGN_OR_RETURN(field.name, decode_string(in));
    }
    H2R_ASSIGN_OR_RETURN(field.value, decode_string(in));

    if (add_to_table) table_.insert(field);
    H2R_RETURN_IF_ERROR(account(field));
    out.push_back(std::move(field));
    saw_field = true;
  }
  return out;
}

Result<std::string> Decoder::decode_string(ByteReader& in) const {
  H2R_ASSIGN_OR_RETURN(std::uint8_t first, in.read_u8());
  const bool huffman = (first & 0x80) != 0;
  H2R_ASSIGN_OR_RETURN(std::uint32_t length, decode_integer(in, first, 7));
  H2R_ASSIGN_OR_RETURN(auto raw, in.read_bytes(length));
  if (!huffman) return std::string(raw.begin(), raw.end());
  return huffman_decode(raw);
}

}  // namespace h2r::hpack
