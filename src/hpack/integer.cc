#include "hpack/integer.h"

#include <stdexcept>

namespace h2r::hpack {

void encode_integer(ByteWriter& out, std::uint32_t value, int prefix_bits,
                    std::uint8_t first_octet_high) {
  if (prefix_bits < 1 || prefix_bits > 8) {
    throw std::invalid_argument("encode_integer: prefix_bits outside 1..8");
  }
  const auto max_prefix = static_cast<std::uint32_t>((1u << prefix_bits) - 1);
  if ((first_octet_high & max_prefix) != 0) {
    throw std::invalid_argument("encode_integer: high bits intersect prefix");
  }
  if (value < max_prefix) {
    out.write_u8(static_cast<std::uint8_t>(first_octet_high | value));
    return;
  }
  out.write_u8(static_cast<std::uint8_t>(first_octet_high | max_prefix));
  value -= max_prefix;
  while (value >= 128) {
    out.write_u8(static_cast<std::uint8_t>((value & 0x7F) | 0x80));
    value >>= 7;
  }
  out.write_u8(static_cast<std::uint8_t>(value));
}

Result<std::uint32_t> decode_integer(ByteReader& in, std::uint8_t first_octet,
                                     int prefix_bits) {
  if (prefix_bits < 1 || prefix_bits > 8) {
    return InvalidArgumentError("decode_integer: prefix_bits outside 1..8");
  }
  const auto max_prefix = static_cast<std::uint32_t>((1u << prefix_bits) - 1);
  std::uint64_t value = first_octet & max_prefix;
  if (value < max_prefix) return static_cast<std::uint32_t>(value);

  int shift = 0;
  for (;;) {
    H2R_ASSIGN_OR_RETURN(std::uint8_t octet, in.read_u8());
    value += static_cast<std::uint64_t>(octet & 0x7F) << shift;
    if (value > 0xFFFFFFFFull) {
      return CompressionFailureError("HPACK integer exceeds 2^32-1");
    }
    if ((octet & 0x80) == 0) break;
    shift += 7;
    if (shift > 28) {
      return CompressionFailureError("HPACK integer continuation too long");
    }
  }
  return static_cast<std::uint32_t>(value);
}

}  // namespace h2r::hpack
