#include "net/upgrade.h"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "h2/frame.h"

namespace h2r::net {
namespace {

constexpr char kAlphabet[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789-_";

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

/// Case-insensitive header lookup over raw HTTP/1.1 text.
std::optional<std::string> find_http1_header(const std::string& text,
                                             const std::string& name) {
  std::istringstream in(text);
  std::string line;
  std::getline(in, line);  // request line
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) break;
    const auto colon = line.find(':');
    if (colon == std::string::npos) continue;
    if (lower(line.substr(0, colon)) != lower(name)) continue;
    std::string value = line.substr(colon + 1);
    const auto start = value.find_first_not_of(' ');
    return start == std::string::npos ? "" : value.substr(start);
  }
  return std::nullopt;
}

/// Serializes SETTINGS entries as the raw §6.5.1 payload (no frame header),
/// which is what HTTP2-Settings carries.
Bytes settings_payload(
    const std::vector<std::pair<h2::SettingId, std::uint32_t>>& entries) {
  ByteWriter w;
  for (const auto& [id, value] : entries) {
    w.write_u16(static_cast<std::uint16_t>(id));
    w.write_u32(value);
  }
  return w.take();
}

}  // namespace

std::string base64url_encode(std::span<const std::uint8_t> data) {
  std::string out;
  out.reserve((data.size() + 2) / 3 * 4);
  std::size_t i = 0;
  while (i + 3 <= data.size()) {
    const std::uint32_t v = (data[i] << 16) | (data[i + 1] << 8) | data[i + 2];
    out.push_back(kAlphabet[(v >> 18) & 63]);
    out.push_back(kAlphabet[(v >> 12) & 63]);
    out.push_back(kAlphabet[(v >> 6) & 63]);
    out.push_back(kAlphabet[v & 63]);
    i += 3;
  }
  const std::size_t rest = data.size() - i;
  if (rest == 1) {
    const std::uint32_t v = data[i] << 16;
    out.push_back(kAlphabet[(v >> 18) & 63]);
    out.push_back(kAlphabet[(v >> 12) & 63]);
  } else if (rest == 2) {
    const std::uint32_t v = (data[i] << 16) | (data[i + 1] << 8);
    out.push_back(kAlphabet[(v >> 18) & 63]);
    out.push_back(kAlphabet[(v >> 12) & 63]);
    out.push_back(kAlphabet[(v >> 6) & 63]);
  }
  return out;  // §3.2.1: no padding
}

Result<Bytes> base64url_decode(std::string_view text) {
  auto value_of = [](char c) -> int {
    if (c >= 'A' && c <= 'Z') return c - 'A';
    if (c >= 'a' && c <= 'z') return c - 'a' + 26;
    if (c >= '0' && c <= '9') return c - '0' + 52;
    if (c == '-') return 62;
    if (c == '_') return 63;
    return -1;
  };
  if (text.size() % 4 == 1) {
    return InvalidArgumentError("base64url: impossible length");
  }
  Bytes out;
  std::uint32_t acc = 0;
  int bits = 0;
  for (char c : text) {
    const int v = value_of(c);
    if (v < 0) return InvalidArgumentError("base64url: bad character");
    acc = (acc << 6) | static_cast<std::uint32_t>(v);
    bits += 6;
    if (bits >= 8) {
      bits -= 8;
      out.push_back(static_cast<std::uint8_t>(acc >> bits));
    }
  }
  return out;
}

std::string render_upgrade_request(const UpgradeRequest& request) {
  std::ostringstream out;
  out << request.method << " " << request.path << " HTTP/1.1\r\n";
  out << "Host: " << request.host << "\r\n";
  out << "Connection: Upgrade, HTTP2-Settings\r\n";
  out << "Upgrade: h2c\r\n";
  out << "HTTP2-Settings: " << base64url_encode(settings_payload(request.settings))
      << "\r\n\r\n";
  return out.str();
}

UpgradeResult process_upgrade_request(const std::string& http1_request,
                                      bool server_supports_h2c) {
  UpgradeResult result;

  const auto upgrade = find_http1_header(http1_request, "Upgrade");
  const auto connection = find_http1_header(http1_request, "Connection");
  const auto smuggled = find_http1_header(http1_request, "HTTP2-Settings");

  const bool well_formed =
      upgrade && lower(*upgrade).find("h2c") != std::string::npos &&
      connection && lower(*connection).find("upgrade") != std::string::npos &&
      smuggled;
  if (!well_formed || !server_supports_h2c) {
    result.status_line = "HTTP/1.1 200 OK";
    return result;
  }

  auto payload = base64url_decode(*smuggled);
  if (!payload.ok()) {
    // §3.2.1: a malformed HTTP2-Settings makes the request malformed.
    result.status_line = "HTTP/1.1 400 Bad Request";
    return result;
  }
  ByteReader r({payload->data(), payload->size()});
  while (r.remaining() >= 6) {
    const auto id = r.read_u16().value();
    const auto value = r.read_u32().value();
    if (!result.client_settings.apply(id, value).ok()) {
      result.status_line = "HTTP/1.1 400 Bad Request";
      return result;
    }
  }
  if (!r.empty()) {
    result.status_line = "HTTP/1.1 400 Bad Request";
    return result;
  }

  result.switched = true;
  result.status_line = "HTTP/1.1 101 Switching Protocols";
  return result;
}

}  // namespace h2r::net
