// Where parked exchanges sleep.
//
// PR 7 split every exchange into resumable steps (net::ExchangeDriver) so a
// parked connection costs nothing until something readies it. What "ready"
// means is a property of the reactor, not of the exchange: the scan's
// virtual-clock reactor wakes a park after N simulated rounds, while the
// real-socket serving loop (src/netio) wakes it on epoll readiness and uses
// the same wheel only for deadlines (connect timeouts, shutdown drains).
// TimerWheel is that shared readiness source: a tick-ordered park structure
// whose drain order is a pure function of (tick, insertion order), so every
// reactor built on it inherits the determinism the scan suite pins.
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

namespace h2r::net {

/// Tick-ordered parking wheel. Ticks are whatever the owning reactor counts
/// — simulated rounds for the virtual-clock scan reactor, steady-clock
/// milliseconds for the epoll serving loop's deadlines. Items parked on the
/// same tick drain in insertion order; the owner re-sorts when it needs a
/// different deterministic key (the scan reactor orders by site index).
template <typename T>
class TimerWheel {
 public:
  /// Parks @p item until @p wake_tick.
  void park(std::uint64_t wake_tick, T item) {
    wheel_[wake_tick].push_back(std::move(item));
  }

  [[nodiscard]] bool empty() const noexcept { return wheel_.empty(); }
  [[nodiscard]] std::size_t parked() const noexcept {
    std::size_t n = 0;
    for (const auto& [tick, items] : wheel_) n += items.size();
    return n;
  }

  /// Earliest occupied tick. Precondition: !empty().
  [[nodiscard]] std::uint64_t next_tick() const { return wheel_.begin()->first; }

  /// Pops the whole batch at the earliest occupied tick — the virtual-clock
  /// reactor's "jump to the next occupied instant". Precondition: !empty().
  [[nodiscard]] std::pair<std::uint64_t, std::vector<T>> pop_next() {
    auto due = wheel_.begin();
    std::pair<std::uint64_t, std::vector<T>> out{due->first,
                                                 std::move(due->second)};
    wheel_.erase(due);
    return out;
  }

  /// Pops every item due at or before @p tick (deadline sweep: the epoll
  /// loop calls this with the wall clock after each poll). Batches drain in
  /// tick order, ties in insertion order.
  [[nodiscard]] std::vector<T> pop_due(std::uint64_t tick) {
    std::vector<T> due;
    while (!wheel_.empty() && wheel_.begin()->first <= tick) {
      auto batch = pop_next();
      due.insert(due.end(), std::make_move_iterator(batch.second.begin()),
                 std::make_move_iterator(batch.second.end()));
    }
    return due;
  }

 private:
  /// An ordered map keeps "jump to the next occupied instant" one lookup
  /// regardless of how sparse the parked stretches are.
  std::map<std::uint64_t, std::vector<T>> wheel_;
};

}  // namespace h2r::net
