// The transport seam: who moves bytes between two HTTP/2 endpoints, and how
// badly.
//
// Every exchange in the reproduction used to run over one hard-coded
// lossless lockstep pump (core::run_exchange). That models the paper's
// testbed, but none of the adversarial delivery scenarios a real scanner
// hits — truncated frames, dribbled bytes, corrupted octets, delivery
// stalls, mid-exchange disconnects (the §VI "lossy environment" caveat).
// net::Transport makes delivery a first-class, injectable policy:
//
//   * LockstepTransport reproduces the historical pump bit-for-bit
//     (byte stream, round marks, buffer recycling).
//   * FaultyTransport executes a seeded FaultPlan: per-direction
//     re-segmentation into arbitrary chunk sizes (down to 1-byte dribble),
//     truncation mid-frame-header or mid-payload, single-octet corruption,
//     delivery stalls for N rounds, and hard mid-exchange disconnects.
//
// Endpoints are abstracted behind net::Endpoint so the transport layer
// stays below core/ and server/; EndpointRef adapts any class with the
// take_output / receive / recycle / alive vocabulary (ClientConnection,
// Http2Server) without those classes inheriting anything. Faults are
// recorded as trace events (EventKind::kFault) so annotated JSONL shows
// the cause next to its protocol-level effect.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "trace/event.h"
#include "trace/recorder.h"
#include "util/bytes.h"
#include "util/rng.h"
#include "util/status.h"

namespace h2r::net {

class ExchangeDriver;

// --------------------------------------------------------------- endpoints

/// One end of a byte-stream connection, as the transport sees it.
class Endpoint {
 public:
  virtual ~Endpoint() = default;

  /// Drains the octets this endpoint wants on the wire.
  [[nodiscard]] virtual Bytes take_output() = 0;
  /// Delivers inbound octets (any segmentation; endpoints reassemble).
  virtual void receive(std::span<const std::uint8_t> bytes) = 0;
  /// Hands a drained output buffer back for reuse.
  virtual void recycle(Bytes buffer) = 0;
  /// False once the endpoint considers the connection unusable.
  [[nodiscard]] virtual bool alive() const = 0;
  /// The transport is gone (disconnect / truncation). Default: ignore —
  /// endpoints that track a terminal cause (ClientConnection) override.
  virtual void on_transport_close(const Status& status) { (void)status; }
};

/// Adapts any type with the endpoint vocabulary to net::Endpoint by
/// reference. `on_transport_close` is forwarded only when T has it.
template <typename T>
class EndpointRef final : public Endpoint {
 public:
  explicit EndpointRef(T& impl) : impl_(impl) {}

  [[nodiscard]] Bytes take_output() override { return impl_.take_output(); }
  void receive(std::span<const std::uint8_t> bytes) override {
    impl_.receive(bytes);
  }
  void recycle(Bytes buffer) override { impl_.recycle(std::move(buffer)); }
  [[nodiscard]] bool alive() const override { return impl_.alive(); }
  void on_transport_close(const Status& status) override {
    if constexpr (requires(T& t) { t.on_transport_close(status); }) {
      impl_.on_transport_close(status);
    }
  }

 private:
  T& impl_;
};

// ----------------------------------------------------------------- results

/// Per-exchange deadline: every probe runs under one of these so a faulted
/// exchange can never hang a scan worker.
struct ExchangeLimits {
  /// Lockstep rounds before the exchange is declared timed out. The
  /// historical default: well above any legitimate conversation.
  int max_rounds = 4096;
  /// Total octets (both directions) before the exchange is declared timed
  /// out; 0 = unlimited.
  std::uint64_t max_bytes = 0;
};

enum class ExchangeOutcome : std::uint8_t {
  kQuiescent,     ///< both directions idle — the normal end state
  kRoundCap,      ///< ExchangeLimits::max_rounds exhausted (deadline)
  kByteCap,       ///< ExchangeLimits::max_bytes exhausted (deadline)
  kDisconnected,  ///< the transport injected a hard disconnect
};

std::string_view to_string(ExchangeOutcome o) noexcept;

/// The delivery fault classes FaultyTransport can inject.
enum class FaultKind : std::uint8_t {
  kNone = 0,
  kTruncate,    ///< cut one direction at an octet offset; tail never arrives
  kCorrupt,     ///< flip bits in one octet, keep delivering
  kStall,       ///< hold one direction's delivery for N rounds, then resume
  kDisconnect,  ///< hard close mid-exchange: both directions die at once
};

std::string_view to_string(FaultKind k) noexcept;

/// What one Transport::run call did.
struct ExchangeResult {
  ExchangeOutcome outcome = ExchangeOutcome::kQuiescent;
  int rounds = 0;
  std::uint64_t bytes_c2s = 0;
  std::uint64_t bytes_s2c = 0;
  /// The fault that fired during this run (kNone on clean exchanges).
  FaultKind fault = FaultKind::kNone;

  [[nodiscard]] bool deadline_hit() const noexcept {
    return outcome == ExchangeOutcome::kRoundCap ||
           outcome == ExchangeOutcome::kByteCap;
  }
};

// -------------------------------------------------------------- fault plan

/// A fully-determined delivery schedule for one connection. Pure value:
/// generate() is a function of (seed, probability) alone, so the same seed
/// reproduces the same faults byte-for-byte — the property the scan's
/// determinism suite pins.
struct FaultPlan {
  std::uint64_t seed = 0;
  /// Segmentation: chunks drawn uniformly in [1, max_chunk] octets;
  /// 0 = deliver each round's bytes whole (no re-segmentation).
  std::uint32_t max_chunk = 0;
  /// Deliver in wire-frame-aligned spans (at most one completed HTTP/2
  /// frame per receive call) instead of rng-sized chunks. Scan-generated
  /// plans use this: it keeps the frame-interleaving semantics of chunked
  /// delivery — the receiver still reacts to every frame before seeing the
  /// next — at a per-frame instead of per-chunk delivery cost. When set,
  /// max_chunk is not consulted. Explicit dribble plans (tests) leave it
  /// off and keep exact rng segmentation.
  bool frame_aligned = false;
  /// The (at most one) delivery fault this connection suffers.
  FaultKind kind = FaultKind::kNone;
  trace::Direction dir = trace::Direction::kClientToServer;
  /// Cumulative octet offset, in `dir`, where the fault fires. Offsets are
  /// drawn small enough to routinely land mid-frame-header and mid-payload.
  std::uint64_t at_byte = 0;
  int stall_rounds = 0;        ///< kStall: rounds to hold delivery
  std::uint8_t xor_mask = 0;   ///< kCorrupt: bits flipped in the octet

  bool operator==(const FaultPlan&) const = default;

  /// "clean chunk<=64" / "truncate s2c@137 chunk<=1" — for logs and tests.
  [[nodiscard]] std::string describe() const;

  /// Derives a plan from @p seed. With probability @p fault_probability the
  /// plan carries one fault (kind, direction, offset all seed-derived);
  /// segmentation is always on. Same (seed, probability) ⇒ same plan.
  static FaultPlan generate(std::uint64_t seed, double fault_probability);
};

/// Per-connection fault probability from a path's packet-loss rate: lossy
/// sites (PathModel::loss_rate) fault proportionally more often, on top of
/// the scan-wide floor. Clamped to [0, 0.95] so no site faults always.
[[nodiscard]] double fault_probability(double loss_rate, double floor) noexcept;

// ------------------------------------------------------------------ ledger

/// Accumulates exchange outcomes across every connection a probe sequence
/// opens against one site, so the scan can classify the site into exactly
/// one outcome class. The attempt_* flags cover the current retry attempt;
/// settle_attempt() folds them into the final_* flags once no retry will
/// follow (see core::probe_with_retry).
struct ExchangeLedger {
  std::uint64_t exchanges = 0;
  std::uint64_t faults_injected = 0;
  std::uint64_t retries = 0;
  std::uint64_t deadline_hits = 0;
  double backoff_ms = 0.0;  ///< simulated retry backoff, accumulated

  // Parking (ExchangeDriver): a stall held delivery, so the driver skipped
  // the dead rounds in one step instead of spinning the pump through them.
  // Booked identically by the sequential and event-loop scan drivers — the
  // park points are a property of the exchange, not of who resumes it.
  std::uint64_t parks = 0;          ///< park events on this site's exchanges
  std::uint64_t parked_rounds = 0;  ///< rounds skipped while parked
  std::vector<int> park_durations;  ///< per-park skipped rounds, in order

  void note_park(int rounds) {
    ++parks;
    parked_rounds += static_cast<std::uint64_t>(rounds);
    park_durations.push_back(rounds);
  }

  bool attempt_deadline = false;
  bool attempt_disconnect = false;
  bool attempt_truncated = false;

  bool final_deadline = false;
  bool final_disconnect = false;
  bool final_truncated = false;

  void begin_attempt() noexcept {
    attempt_deadline = attempt_disconnect = attempt_truncated = false;
  }
  [[nodiscard]] bool attempt_faulted() const noexcept {
    return attempt_deadline || attempt_disconnect || attempt_truncated;
  }
  void note_retry(double backoff) noexcept {
    ++retries;
    backoff_ms += backoff;
  }
  void settle_attempt() noexcept {
    final_deadline = final_deadline || attempt_deadline;
    final_disconnect = final_disconnect || attempt_disconnect;
    final_truncated = final_truncated || attempt_truncated;
  }

  /// Folds one exchange's result into the current attempt.
  void note(const ExchangeResult& result) noexcept;
};

// --------------------------------------------------------------- transport

/// Owns the byte shuttle between a client and a server endpoint. One
/// transport instance models one connection: successive run() calls
/// continue the same byte streams (offsets, pending holds, injected-fault
/// state all persist).
class Transport {
 public:
  explicit Transport(trace::Recorder* recorder = nullptr,
                     ExchangeLedger* ledger = nullptr)
      : recorder_(recorder), ledger_(ledger) {}
  virtual ~Transport() = default;

  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  /// Pumps bytes both ways until quiescent, a fault ends the connection, or
  /// a deadline trips. Never hangs: every exit path is bounded by @p limits.
  /// Implemented on the resumable ExchangeDriver with parked stretches
  /// skipped inline, so it stays bit-identical to driving the exchange from
  /// an event loop.
  ExchangeResult run_endpoints(Endpoint& client, Endpoint& server,
                               const ExchangeLimits& limits = {});

  /// Convenience: adapts concrete endpoint types (ClientConnection,
  /// Http2Server) in place.
  template <typename C, typename S>
  ExchangeResult run(C& client, S& server, const ExchangeLimits& limits = {}) {
    EndpointRef<C> c(client);
    EndpointRef<S> s(server);
    return run_endpoints(c, s, limits);
  }

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
  [[nodiscard]] trace::Recorder* recorder() const noexcept { return recorder_; }
  [[nodiscard]] ExchangeLedger* ledger() const noexcept { return ledger_; }

 protected:
  friend class ExchangeDriver;

  /// What one round of byte shuttling did, as the driver needs to see it.
  struct RoundOutcome {
    bool progressed = false;  ///< octets moved, a stall ticked, a fault fired
    bool terminal = false;    ///< the exchange is over now (disconnect)
    /// When the round would do nothing but tick stall countdowns, the
    /// number of such dead rounds ahead — the driver parks instead of
    /// spinning. 0 on any round with real work.
    int parkable = 0;
  };

  /// Runs one lockstep round: pull fresh endpoint output, deliver what the
  /// policy allows, fold byte counts into @p result. Terminal rounds set
  /// result.outcome themselves.
  virtual RoundOutcome round_once(Endpoint& client, Endpoint& server,
                                  ExchangeResult& result) = 0;
  /// The connection died in an earlier run on this transport. Implementations
  /// set the outcome on @p result and return true to skip the round loop.
  virtual bool exchange_dead(ExchangeResult& result) {
    (void)result;
    return false;
  }
  /// The driver skipped @p rounds parked rounds in one step; advance any
  /// per-round timers (stall countdowns) by the same amount.
  virtual void on_parked_rounds(int rounds) { (void)rounds; }

  /// Ledger fold + kRoundMark bookkeeping shared by implementations.
  void finish(ExchangeResult& result) {
    if (ledger_ != nullptr) ledger_->note(result);
  }
  void mark_round(int round) {
    if (recorder_ == nullptr) return;
    recorder_->record({.kind = trace::EventKind::kRoundMark,
                       .detail_a = static_cast<std::uint32_t>(round)});
  }

  trace::Recorder* recorder_;
  ExchangeLedger* ledger_;
};

/// One connection's exchange broken into resumable steps, so an event loop
/// can multiplex thousands of in-flight exchanges and park the stalled ones
/// instead of spinning their pumps. Transport::run_endpoints is a driver
/// run to completion with parks skipped inline — by construction the two
/// ways of driving an exchange are bit-identical (rounds, byte counts,
/// trace events, ledger accounting).
///
/// Lifecycle: pump() advances rounds until the exchange parks or finishes.
/// While kParked, park_rounds() says how many virtual rounds the exchange
/// sleeps; unpark() books them (round marks, stall countdowns, ledger) and
/// re-arms pump(). result() is valid once kDone.
class ExchangeDriver {
 public:
  enum class State : std::uint8_t { kRunning, kParked, kDone };

  ExchangeDriver(Transport& transport, Endpoint& client, Endpoint& server,
                 const ExchangeLimits& limits = {})
      : t_(transport), client_(client), server_(server), limits_(limits) {}

  /// Advances until the exchange parks or completes. Never hangs: bounded
  /// by the limits like the one-shot pump.
  State pump();
  /// Applies the parked stretch (rounds elapse, stalls tick down) and
  /// returns the driver to kRunning. No-op unless kParked.
  void unpark();

  [[nodiscard]] State state() const noexcept { return state_; }
  /// Rounds this exchange sleeps for; valid while kParked.
  [[nodiscard]] int park_rounds() const noexcept { return park_; }
  /// The finished exchange's result; valid once kDone.
  [[nodiscard]] const ExchangeResult& result() const noexcept {
    return result_;
  }

 private:
  void complete();

  Transport& t_;
  Endpoint& client_;
  Endpoint& server_;
  ExchangeLimits limits_;
  ExchangeResult result_;
  int rounds_ = 0;
  int park_ = 0;
  State state_ = State::kRunning;
  bool started_ = false;
};

/// The historical perfect pump: each round ships all pending client bytes,
/// then all pending server bytes, whole. Bit-for-bit compatible with the
/// pre-seam core::run_exchange (byte stream, round-mark events, recycling).
class LockstepTransport final : public Transport {
 public:
  using Transport::Transport;

  [[nodiscard]] std::string_view name() const noexcept override {
    return "lockstep";
  }

 protected:
  RoundOutcome round_once(Endpoint& client, Endpoint& server,
                          ExchangeResult& result) override;
};

/// Incremental wire-format scanner FaultyTransport uses to end delivery
/// spans at HTTP/2 frame boundaries. It understands just enough of the
/// stream to find them: the 24-octet client connection preface, HTTP/1.1
/// text up to its blank line (the h2c upgrade exchange), and the 9-octet
/// frame header's length field. Corruption is not special-cased: the
/// scanner reads the same post-fault octets the endpoint will parse, so
/// the two views of frame boundaries cannot diverge.
class WireCursor {
 public:
  /// @p client_to_server selects which leading literal to expect: the h2
  /// client preface (c2s) or an "HTTP/" status line (s2c, h2c upgrades).
  explicit WireCursor(bool client_to_server) noexcept
      : c2s_(client_to_server) {}

  /// Length of the next delivery span within @p avail: up to and including
  /// the earliest boundary, or all of @p avail when none falls inside.
  /// Never 0 for non-empty input. Does not advance the cursor.
  [[nodiscard]] std::size_t preview(
      std::span<const std::uint8_t> avail) const {
    WireCursor probe = *this;
    return probe.scan(avail, /*stop_at_boundary=*/true);
  }

  /// Advances the cursor over octets actually delivered.
  void advance(std::span<const std::uint8_t> delivered) {
    (void)scan(delivered, /*stop_at_boundary=*/false);
  }

 private:
  enum class Phase : std::uint8_t { kProbe, kText, kHeader, kPayload };

  std::size_t scan(std::span<const std::uint8_t> s, bool stop_at_boundary);

  bool c2s_;
  Phase phase_ = Phase::kProbe;
  std::uint8_t probe_pos_ = 0;  ///< literal octets matched so far
  std::uint8_t crlf_ = 0;       ///< octets of "\r\n\r\n" matched (kText)
  std::uint8_t header_have_ = 0;
  std::array<std::uint8_t, 9> header_{};
  std::uint32_t payload_left_ = 0;
};

/// Adversarial delivery driven by a FaultPlan. Deterministic: the same plan
/// over the same endpoints reproduces the same delivery schedule.
class FaultyTransport final : public Transport {
 public:
  explicit FaultyTransport(FaultPlan plan,
                           trace::Recorder* recorder = nullptr,
                           ExchangeLedger* ledger = nullptr);

  [[nodiscard]] std::string_view name() const noexcept override {
    return "faulty";
  }

  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }
  /// True once an injected fault has fired on this connection.
  [[nodiscard]] bool fault_fired() const noexcept { return fault_fired_; }

 protected:
  RoundOutcome round_once(Endpoint& client, Endpoint& server,
                          ExchangeResult& result) override;
  bool exchange_dead(ExchangeResult& result) override;
  void on_parked_rounds(int rounds) override;

 private:
  /// One direction's delivery state, persistent across run() calls.
  struct DirState {
    explicit DirState(bool client_to_server) : cursor(client_to_server) {}
    Bytes pending;          ///< taken from the source, not yet delivered
    std::size_t pos = 0;    ///< consumed prefix of `pending`
    std::uint64_t offset = 0;  ///< cumulative octets delivered in this dir
    int stall_left = 0;     ///< rounds left holding delivery
    bool cut = false;       ///< truncated: drop everything from now on
    WireCursor cursor;      ///< frame-boundary tracker (frame_aligned plans)
  };

  /// Delivers as much of @p d's pending bytes as the plan allows this
  /// round. Returns true when time observably advanced (octets delivered,
  /// a stall ticked, or a fault fired).
  bool step(DirState& d, trace::Direction dir, Endpoint& dst,
            Endpoint& client, Endpoint& server, ExchangeResult& result);
  void record_fault(trace::Direction dir, std::uint64_t at,
                    std::uint32_t detail_b);

  FaultPlan plan_;
  Rng chunk_rng_;
  DirState c2s_{true};
  DirState s2c_{false};
  bool fault_armed_;
  bool fault_fired_ = false;
  bool disconnected_ = false;
};

}  // namespace h2r::net
