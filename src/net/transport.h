// The transport seam: who moves bytes between two HTTP/2 endpoints, and how
// badly.
//
// Every exchange in the reproduction used to run over one hard-coded
// lossless lockstep pump (core::run_exchange). That models the paper's
// testbed, but none of the adversarial delivery scenarios a real scanner
// hits — truncated frames, dribbled bytes, corrupted octets, delivery
// stalls, mid-exchange disconnects (the §VI "lossy environment" caveat).
// net::Transport makes delivery a first-class, injectable policy:
//
//   * LockstepTransport reproduces the historical pump bit-for-bit
//     (byte stream, round marks, buffer recycling).
//   * FaultyTransport executes a seeded FaultPlan: per-direction
//     re-segmentation into arbitrary chunk sizes (down to 1-byte dribble),
//     truncation mid-frame-header or mid-payload, single-octet corruption,
//     delivery stalls for N rounds, and hard mid-exchange disconnects.
//
// Endpoints are abstracted behind net::Endpoint so the transport layer
// stays below core/ and server/; EndpointRef adapts any class with the
// take_output / receive / recycle / alive vocabulary (ClientConnection,
// Http2Server) without those classes inheriting anything. Faults are
// recorded as trace events (EventKind::kFault) so annotated JSONL shows
// the cause next to its protocol-level effect.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "trace/event.h"
#include "trace/recorder.h"
#include "util/bytes.h"
#include "util/rng.h"
#include "util/status.h"

namespace h2r::net {

// --------------------------------------------------------------- endpoints

/// One end of a byte-stream connection, as the transport sees it.
class Endpoint {
 public:
  virtual ~Endpoint() = default;

  /// Drains the octets this endpoint wants on the wire.
  [[nodiscard]] virtual Bytes take_output() = 0;
  /// Delivers inbound octets (any segmentation; endpoints reassemble).
  virtual void receive(std::span<const std::uint8_t> bytes) = 0;
  /// Hands a drained output buffer back for reuse.
  virtual void recycle(Bytes buffer) = 0;
  /// False once the endpoint considers the connection unusable.
  [[nodiscard]] virtual bool alive() const = 0;
  /// The transport is gone (disconnect / truncation). Default: ignore —
  /// endpoints that track a terminal cause (ClientConnection) override.
  virtual void on_transport_close(const Status& status) { (void)status; }
};

/// Adapts any type with the endpoint vocabulary to net::Endpoint by
/// reference. `on_transport_close` is forwarded only when T has it.
template <typename T>
class EndpointRef final : public Endpoint {
 public:
  explicit EndpointRef(T& impl) : impl_(impl) {}

  [[nodiscard]] Bytes take_output() override { return impl_.take_output(); }
  void receive(std::span<const std::uint8_t> bytes) override {
    impl_.receive(bytes);
  }
  void recycle(Bytes buffer) override { impl_.recycle(std::move(buffer)); }
  [[nodiscard]] bool alive() const override { return impl_.alive(); }
  void on_transport_close(const Status& status) override {
    if constexpr (requires(T& t) { t.on_transport_close(status); }) {
      impl_.on_transport_close(status);
    }
  }

 private:
  T& impl_;
};

// ----------------------------------------------------------------- results

/// Per-exchange deadline: every probe runs under one of these so a faulted
/// exchange can never hang a scan worker.
struct ExchangeLimits {
  /// Lockstep rounds before the exchange is declared timed out. The
  /// historical default: well above any legitimate conversation.
  int max_rounds = 4096;
  /// Total octets (both directions) before the exchange is declared timed
  /// out; 0 = unlimited.
  std::uint64_t max_bytes = 0;
};

enum class ExchangeOutcome : std::uint8_t {
  kQuiescent,     ///< both directions idle — the normal end state
  kRoundCap,      ///< ExchangeLimits::max_rounds exhausted (deadline)
  kByteCap,       ///< ExchangeLimits::max_bytes exhausted (deadline)
  kDisconnected,  ///< the transport injected a hard disconnect
};

std::string_view to_string(ExchangeOutcome o) noexcept;

/// The delivery fault classes FaultyTransport can inject.
enum class FaultKind : std::uint8_t {
  kNone = 0,
  kTruncate,    ///< cut one direction at an octet offset; tail never arrives
  kCorrupt,     ///< flip bits in one octet, keep delivering
  kStall,       ///< hold one direction's delivery for N rounds, then resume
  kDisconnect,  ///< hard close mid-exchange: both directions die at once
};

std::string_view to_string(FaultKind k) noexcept;

/// What one Transport::run call did.
struct ExchangeResult {
  ExchangeOutcome outcome = ExchangeOutcome::kQuiescent;
  int rounds = 0;
  std::uint64_t bytes_c2s = 0;
  std::uint64_t bytes_s2c = 0;
  /// The fault that fired during this run (kNone on clean exchanges).
  FaultKind fault = FaultKind::kNone;

  [[nodiscard]] bool deadline_hit() const noexcept {
    return outcome == ExchangeOutcome::kRoundCap ||
           outcome == ExchangeOutcome::kByteCap;
  }
};

// -------------------------------------------------------------- fault plan

/// A fully-determined delivery schedule for one connection. Pure value:
/// generate() is a function of (seed, probability) alone, so the same seed
/// reproduces the same faults byte-for-byte — the property the scan's
/// determinism suite pins.
struct FaultPlan {
  std::uint64_t seed = 0;
  /// Segmentation: chunks drawn uniformly in [1, max_chunk] octets;
  /// 0 = deliver each round's bytes whole (no re-segmentation).
  std::uint32_t max_chunk = 0;
  /// The (at most one) delivery fault this connection suffers.
  FaultKind kind = FaultKind::kNone;
  trace::Direction dir = trace::Direction::kClientToServer;
  /// Cumulative octet offset, in `dir`, where the fault fires. Offsets are
  /// drawn small enough to routinely land mid-frame-header and mid-payload.
  std::uint64_t at_byte = 0;
  int stall_rounds = 0;        ///< kStall: rounds to hold delivery
  std::uint8_t xor_mask = 0;   ///< kCorrupt: bits flipped in the octet

  bool operator==(const FaultPlan&) const = default;

  /// "clean chunk<=64" / "truncate s2c@137 chunk<=1" — for logs and tests.
  [[nodiscard]] std::string describe() const;

  /// Derives a plan from @p seed. With probability @p fault_probability the
  /// plan carries one fault (kind, direction, offset all seed-derived);
  /// segmentation is always on. Same (seed, probability) ⇒ same plan.
  static FaultPlan generate(std::uint64_t seed, double fault_probability);
};

/// Per-connection fault probability from a path's packet-loss rate: lossy
/// sites (PathModel::loss_rate) fault proportionally more often, on top of
/// the scan-wide floor. Clamped to [0, 0.95] so no site faults always.
[[nodiscard]] double fault_probability(double loss_rate, double floor) noexcept;

// ------------------------------------------------------------------ ledger

/// Accumulates exchange outcomes across every connection a probe sequence
/// opens against one site, so the scan can classify the site into exactly
/// one outcome class. The attempt_* flags cover the current retry attempt;
/// settle_attempt() folds them into the final_* flags once no retry will
/// follow (see core::probe_with_retry).
struct ExchangeLedger {
  std::uint64_t exchanges = 0;
  std::uint64_t faults_injected = 0;
  std::uint64_t retries = 0;
  std::uint64_t deadline_hits = 0;
  double backoff_ms = 0.0;  ///< simulated retry backoff, accumulated

  bool attempt_deadline = false;
  bool attempt_disconnect = false;
  bool attempt_truncated = false;

  bool final_deadline = false;
  bool final_disconnect = false;
  bool final_truncated = false;

  void begin_attempt() noexcept {
    attempt_deadline = attempt_disconnect = attempt_truncated = false;
  }
  [[nodiscard]] bool attempt_faulted() const noexcept {
    return attempt_deadline || attempt_disconnect || attempt_truncated;
  }
  void note_retry(double backoff) noexcept {
    ++retries;
    backoff_ms += backoff;
  }
  void settle_attempt() noexcept {
    final_deadline = final_deadline || attempt_deadline;
    final_disconnect = final_disconnect || attempt_disconnect;
    final_truncated = final_truncated || attempt_truncated;
  }

  /// Folds one exchange's result into the current attempt.
  void note(const ExchangeResult& result) noexcept;
};

// --------------------------------------------------------------- transport

/// Owns the byte shuttle between a client and a server endpoint. One
/// transport instance models one connection: successive run() calls
/// continue the same byte streams (offsets, pending holds, injected-fault
/// state all persist).
class Transport {
 public:
  explicit Transport(trace::Recorder* recorder = nullptr,
                     ExchangeLedger* ledger = nullptr)
      : recorder_(recorder), ledger_(ledger) {}
  virtual ~Transport() = default;

  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  /// Pumps bytes both ways until quiescent, a fault ends the connection, or
  /// a deadline trips. Never hangs: every exit path is bounded by @p limits.
  virtual ExchangeResult run_endpoints(Endpoint& client, Endpoint& server,
                                       const ExchangeLimits& limits = {}) = 0;

  /// Convenience: adapts concrete endpoint types (ClientConnection,
  /// Http2Server) in place.
  template <typename C, typename S>
  ExchangeResult run(C& client, S& server, const ExchangeLimits& limits = {}) {
    EndpointRef<C> c(client);
    EndpointRef<S> s(server);
    return run_endpoints(c, s, limits);
  }

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
  [[nodiscard]] trace::Recorder* recorder() const noexcept { return recorder_; }
  [[nodiscard]] ExchangeLedger* ledger() const noexcept { return ledger_; }

 protected:
  /// Ledger fold + kRoundMark bookkeeping shared by implementations.
  void finish(ExchangeResult& result) {
    if (ledger_ != nullptr) ledger_->note(result);
  }
  void mark_round(int round) {
    if (recorder_ == nullptr) return;
    trace::TraceEvent mark;
    mark.kind = trace::EventKind::kRoundMark;
    mark.detail_a = static_cast<std::uint32_t>(round);
    recorder_->record(std::move(mark));
  }

  trace::Recorder* recorder_;
  ExchangeLedger* ledger_;
};

/// The historical perfect pump: each round ships all pending client bytes,
/// then all pending server bytes, whole. Bit-for-bit compatible with the
/// pre-seam core::run_exchange (byte stream, round-mark events, recycling).
class LockstepTransport final : public Transport {
 public:
  using Transport::Transport;

  ExchangeResult run_endpoints(Endpoint& client, Endpoint& server,
                               const ExchangeLimits& limits = {}) override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "lockstep";
  }
};

/// Adversarial delivery driven by a FaultPlan. Deterministic: the same plan
/// over the same endpoints reproduces the same delivery schedule.
class FaultyTransport final : public Transport {
 public:
  explicit FaultyTransport(FaultPlan plan,
                           trace::Recorder* recorder = nullptr,
                           ExchangeLedger* ledger = nullptr);

  ExchangeResult run_endpoints(Endpoint& client, Endpoint& server,
                               const ExchangeLimits& limits = {}) override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "faulty";
  }

  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }
  /// True once an injected fault has fired on this connection.
  [[nodiscard]] bool fault_fired() const noexcept { return fault_fired_; }

 private:
  /// One direction's delivery state, persistent across run() calls.
  struct DirState {
    Bytes pending;          ///< taken from the source, not yet delivered
    std::size_t pos = 0;    ///< consumed prefix of `pending`
    std::uint64_t offset = 0;  ///< cumulative octets delivered in this dir
    int stall_left = 0;     ///< rounds left holding delivery
    bool cut = false;       ///< truncated: drop everything from now on
  };

  /// Delivers as much of @p d's pending bytes as the plan allows this
  /// round. Returns true when time observably advanced (octets delivered,
  /// a stall ticked, or a fault fired).
  bool step(DirState& d, trace::Direction dir, Endpoint& dst,
            Endpoint& client, Endpoint& server, ExchangeResult& result);
  void record_fault(trace::Direction dir, std::uint64_t at,
                    std::uint32_t detail_b);

  FaultPlan plan_;
  Rng chunk_rng_;
  DirState c2s_;
  DirState s2c_;
  bool fault_armed_;
  bool fault_fired_ = false;
  bool disconnected_ = false;
};

}  // namespace h2r::net
