// TLS application-protocol negotiation model (ALPN, RFC 7301; NPN, its
// draft predecessor). No cryptography — the paper only uses TLS to select
// the protocol, and H2Scope's first step is exactly this negotiation
// (Section IV-A).
//
// The directional difference matters and is modeled faithfully:
//   ALPN: client offers a list in ClientHello, the *server* selects.
//   NPN:  server advertises a list, the *client* selects.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "util/status.h"

namespace h2r::net {

/// Protocol identifiers as they appear on the wire.
inline constexpr const char* kProtoH2 = "h2";
inline constexpr const char* kProtoHttp11 = "http/1.1";
inline constexpr const char* kProtoSpdy31 = "spdy/3.1";

/// What a TLS endpoint is willing to negotiate.
struct TlsEndpointConfig {
  bool supports_alpn = true;
  bool supports_npn = true;
  /// Protocols in preference order (most preferred first).
  std::vector<std::string> protocols = {kProtoH2, kProtoHttp11};
};

/// Outcome of one negotiation attempt.
struct NegotiationResult {
  std::string protocol;      ///< selected protocol, empty = none agreed
  bool used_alpn = false;
  bool used_npn = false;

  [[nodiscard]] bool selected_h2() const { return protocol == kProtoH2; }
};

/// ALPN: @p client_offer is sent in ClientHello; the server picks its most
/// preferred protocol present in the offer. Empty result protocol when the
/// server has ALPN disabled or no overlap exists.
NegotiationResult negotiate_alpn(const std::vector<std::string>& client_offer,
                                 const TlsEndpointConfig& server);

/// NPN: the server advertises its list; the client picks its own most
/// preferred protocol from it.
NegotiationResult negotiate_npn(const std::vector<std::string>& client_preference,
                                const TlsEndpointConfig& server);

/// H2Scope's strategy (Section IV-A): try ALPN, fall back to NPN.
NegotiationResult negotiate(const std::vector<std::string>& client_protocols,
                            const TlsEndpointConfig& server);

}  // namespace h2r::net
