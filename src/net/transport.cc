#include "net/transport.h"

#include <algorithm>
#include <cstddef>

#include "h2/constants.h"

namespace h2r::net {

std::string_view to_string(ExchangeOutcome o) noexcept {
  switch (o) {
    case ExchangeOutcome::kQuiescent:
      return "quiescent";
    case ExchangeOutcome::kRoundCap:
      return "round_cap";
    case ExchangeOutcome::kByteCap:
      return "byte_cap";
    case ExchangeOutcome::kDisconnected:
      return "disconnected";
  }
  return "unknown";
}

std::string_view to_string(FaultKind k) noexcept {
  switch (k) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kTruncate:
      return "truncate";
    case FaultKind::kCorrupt:
      return "corrupt";
    case FaultKind::kStall:
      return "stall";
    case FaultKind::kDisconnect:
      return "disconnect";
  }
  return "unknown";
}

double fault_probability(double loss_rate, double floor) noexcept {
  // A lossy path multiplies the chance that some segment of the (single)
  // TCP connection dies or degrades mid-exchange; 25x turns the corpus's
  // per-packet loss rates (up to ~2%) into per-connection fault odds that
  // separate lossy sites from clean ones without drowning the floor.
  return std::clamp(floor + loss_rate * 25.0, 0.0, 0.95);
}

std::string FaultPlan::describe() const {
  std::string out;
  if (kind == FaultKind::kNone) {
    out = "clean";
  } else {
    out = std::string(to_string(kind));
    out += dir == trace::Direction::kClientToServer ? " c2s@" : " s2c@";
    out += std::to_string(at_byte);
    if (kind == FaultKind::kStall) {
      out += " rounds=" + std::to_string(stall_rounds);
    }
  }
  if (frame_aligned) {
    out += " frame-aligned";
  } else {
    out += max_chunk == 0 ? " chunk=whole"
                          : " chunk<=" + std::to_string(max_chunk);
  }
  return out;
}

FaultPlan FaultPlan::generate(std::uint64_t seed, double fault_probability) {
  FaultPlan plan;
  plan.seed = seed;
  std::uint64_t sm = seed;
  const auto draw = [&sm] { return splitmix64(sm); };

  // Generated plans deliver frame-aligned: the receiver reacts to every
  // frame before seeing the next (the semantics rng-chunked delivery gave
  // us) without paying a receive() call per chunk — per-chunk dribble at
  // corpus scale is what made the faulted scan 40x slower than the clean
  // one. Sub-frame reassembly stays covered by the explicit max_chunk
  // plans in tests/transport_fault_test.cc. max_chunk is still drawn (and
  // ignored) so the fault kind/offset stream per seed is unchanged.
  plan.frame_aligned = true;
  const std::uint64_t bucket = draw() % 10;
  if (bucket == 0) {
    plan.max_chunk = 1;  // pure dribble
  } else if (bucket <= 3) {
    plan.max_chunk = static_cast<std::uint32_t>(2 + draw() % 15);
  } else if (bucket <= 7) {
    plan.max_chunk = static_cast<std::uint32_t>(17 + draw() % 240);
  } else {
    plan.max_chunk = static_cast<std::uint32_t>(257 + draw() % 1280);
  }

  const double roll = static_cast<double>(draw() >> 11) * 0x1.0p-53;
  if (roll >= fault_probability) return plan;

  switch (draw() % 4) {
    case 0:
      plan.kind = FaultKind::kTruncate;
      break;
    case 1:
      plan.kind = FaultKind::kCorrupt;
      break;
    case 2:
      plan.kind = FaultKind::kStall;
      break;
    default:
      plan.kind = FaultKind::kDisconnect;
      break;
  }
  plan.dir = draw() % 2 == 0 ? trace::Direction::kClientToServer
                             : trace::Direction::kServerToClient;
  // Small enough to routinely land inside the preface, a frame header, or
  // an HPACK block; large enough that some plans outlive short exchanges
  // (an armed fault that never fires is a legitimate outcome).
  plan.at_byte = draw() % 600;
  plan.stall_rounds = static_cast<int>(1 + draw() % 6);
  plan.xor_mask = static_cast<std::uint8_t>(1 + draw() % 255);
  return plan;
}

void ExchangeLedger::note(const ExchangeResult& result) noexcept {
  ++exchanges;
  if (result.fault != FaultKind::kNone) ++faults_injected;
  if (result.deadline_hit()) {
    ++deadline_hits;
    attempt_deadline = true;
  }
  if (result.outcome == ExchangeOutcome::kDisconnected ||
      result.fault == FaultKind::kDisconnect) {
    attempt_disconnect = true;
  }
  if (result.fault == FaultKind::kTruncate ||
      result.fault == FaultKind::kCorrupt) {
    attempt_truncated = true;
  }
}

// ------------------------------------------------------------------ driver

ExchangeDriver::State ExchangeDriver::pump() {
  if (state_ != State::kRunning) return state_;
  if (!started_) {
    started_ = true;
    if (t_.exchange_dead(result_)) {
      complete();
      return state_;
    }
  }
  while (rounds_ < limits_.max_rounds) {
    const auto out = t_.round_once(client_, server_, result_);
    if (out.terminal) {
      // round_once set the terminal outcome; the dying round still counts.
      if (out.progressed) t_.mark_round(rounds_);
      ++rounds_;
      complete();
      return state_;
    }
    if (!out.progressed) {
      if (out.parkable > 0) {
        // Nothing but stall countdowns ahead: sleep through them instead of
        // spinning the pump. The round cap still bounds the sleep.
        park_ = std::min(out.parkable, limits_.max_rounds - rounds_);
        state_ = State::kParked;
        return state_;
      }
      complete();  // quiescent
      return state_;
    }
    t_.mark_round(rounds_);
    ++rounds_;
    if (limits_.max_bytes != 0 &&
        result_.bytes_c2s + result_.bytes_s2c >= limits_.max_bytes) {
      result_.outcome = ExchangeOutcome::kByteCap;
      complete();
      return state_;
    }
  }
  complete();  // round cap
  return state_;
}

void ExchangeDriver::unpark() {
  if (state_ != State::kParked) return;
  const int k = park_;
  park_ = 0;
  // Parked rounds observably elapsed (the old pump spun through them
  // marking each); replay the marks so traces stay byte-identical. Without
  // a recorder this is O(1) however long the stall.
  if (t_.recorder_ != nullptr) {
    for (int i = 0; i < k; ++i) t_.mark_round(rounds_ + i);
  }
  rounds_ += k;
  t_.on_parked_rounds(k);
  if (t_.ledger_ != nullptr) t_.ledger_->note_park(k);
  state_ = State::kRunning;
}

void ExchangeDriver::complete() {
  state_ = State::kDone;
  result_.rounds = rounds_;
  if (result_.outcome == ExchangeOutcome::kQuiescent &&
      rounds_ >= limits_.max_rounds) {
    result_.outcome = ExchangeOutcome::kRoundCap;
  }
  t_.finish(result_);
}

ExchangeResult Transport::run_endpoints(Endpoint& client, Endpoint& server,
                                        const ExchangeLimits& limits) {
  ExchangeDriver driver(*this, client, server, limits);
  while (driver.pump() == ExchangeDriver::State::kParked) driver.unpark();
  return driver.result();
}

// ---------------------------------------------------------------- lockstep

Transport::RoundOutcome LockstepTransport::round_once(Endpoint& client,
                                                      Endpoint& server,
                                                      ExchangeResult& result) {
  RoundOutcome out;
  Bytes c2s = client.take_output();
  if (!c2s.empty()) server.receive(c2s);
  Bytes s2c = server.take_output();
  if (!s2c.empty()) client.receive(s2c);
  result.bytes_c2s += c2s.size();
  result.bytes_s2c += s2c.size();
  out.progressed = !c2s.empty() || !s2c.empty();
  // Both directions have been shipped; hand the drained buffers back so
  // the next round reuses their capacity instead of reallocating.
  client.recycle(std::move(c2s));
  server.recycle(std::move(s2c));
  return out;
}

// ------------------------------------------------------------- wire cursor

std::size_t WireCursor::scan(std::span<const std::uint8_t> s,
                             bool stop_at_boundary) {
  static constexpr std::string_view kCrlf2 = "\r\n\r\n";
  // One step of the "\r\n\r\n" matcher; a completed match (state 4) restarts
  // on the next '\r'. (The client preface contains the terminator mid-way,
  // so state 4 can persist inside kProbe.)
  const auto crlf_step = [](std::uint8_t state, std::uint8_t b) {
    if (state < 4 && b == static_cast<std::uint8_t>(kCrlf2[state])) {
      return static_cast<std::uint8_t>(state + 1);
    }
    return static_cast<std::uint8_t>(b == '\r' ? 1 : 0);
  };
  std::size_t i = 0;
  while (i < s.size()) {
    switch (phase_) {
      case Phase::kProbe: {
        const std::string_view literal =
            c2s_ ? h2::kClientPreface : std::string_view("HTTP/");
        const std::uint8_t b = s[i];
        // Track the text terminator in parallel: if the literal match dies
        // we are in HTTP/1.1 text and must not have lost sight of it.
        crlf_ = crlf_step(crlf_, b);
        if (b == static_cast<std::uint8_t>(literal[probe_pos_])) {
          if (!c2s_) header_[probe_pos_] = b;
          ++probe_pos_;
          ++i;
          if (probe_pos_ == literal.size()) {
            if (c2s_) {
              // Full client preface: boundary, then framing starts.
              phase_ = Phase::kHeader;
              header_have_ = 0;
              crlf_ = 0;
              if (stop_at_boundary) return i;
            } else {
              // "HTTP/": an upgrade response; scan to its blank line.
              phase_ = Phase::kText;
            }
          }
          break;
        }
        // Literal mismatch. c2s: HTTP/1.1 upgrade-request text (or a
        // corrupted preface headed for a protocol error — grouping is moot
        // there). s2c: this is framing after all; the probed octets were
        // the start of the first frame header.
        if (c2s_) {
          ++i;
          if (crlf_ == 4) {
            // Terminator already inside the probed prefix (corrupted
            // streams only): boundary now, expect a preface next.
            phase_ = Phase::kProbe;
            probe_pos_ = 0;
            crlf_ = 0;
            if (stop_at_boundary) return i;
          } else {
            phase_ = Phase::kText;
          }
        } else {
          header_have_ = probe_pos_;
          phase_ = Phase::kHeader;
          // Do not consume: reprocess this octet as a header octet.
        }
        break;
      }
      case Phase::kText: {
        crlf_ = crlf_step(crlf_, s[i]);
        ++i;
        if (crlf_ == 4) {
          // Blank line: the HTTP/1.1 text is complete. c2s continues with
          // the (possibly optimistic) h2 preface; s2c with frames.
          crlf_ = 0;
          if (c2s_) {
            phase_ = Phase::kProbe;
            probe_pos_ = 0;
          } else {
            phase_ = Phase::kHeader;
            header_have_ = 0;
          }
          if (stop_at_boundary) return i;
        }
        break;
      }
      case Phase::kHeader: {
        header_[header_have_++] = s[i];
        ++i;
        if (header_have_ == header_.size()) {
          payload_left_ = (static_cast<std::uint32_t>(header_[0]) << 16) |
                          (static_cast<std::uint32_t>(header_[1]) << 8) |
                          static_cast<std::uint32_t>(header_[2]);
          header_have_ = 0;
          if (payload_left_ == 0) {
            // Zero-length frame: complete at its header's last octet.
            if (stop_at_boundary) return i;
          } else {
            phase_ = Phase::kPayload;
          }
        }
        break;
      }
      case Phase::kPayload: {
        const std::size_t take = std::min<std::size_t>(
            payload_left_, s.size() - i);
        payload_left_ -= static_cast<std::uint32_t>(take);
        i += take;
        if (payload_left_ == 0) {
          phase_ = Phase::kHeader;
          if (stop_at_boundary) return i;
        }
        break;
      }
    }
  }
  return i;
}

// ------------------------------------------------------------------ faulty

FaultyTransport::FaultyTransport(FaultPlan plan, trace::Recorder* recorder,
                                 ExchangeLedger* ledger)
    : Transport(recorder, ledger),
      plan_(plan),
      chunk_rng_(plan.seed ^ 0x9E3779B97F4A7C15ull),
      fault_armed_(plan.kind != FaultKind::kNone) {}

void FaultyTransport::record_fault(trace::Direction dir, std::uint64_t at,
                                   std::uint32_t detail_b) {
  if (recorder_ == nullptr) return;
  recorder_->record({.dir = dir,
                     .kind = trace::EventKind::kFault,
                     .detail_a = static_cast<std::uint32_t>(at),
                     .detail_b = detail_b,
                     .note = to_string(plan_.kind)});
}

bool FaultyTransport::step(DirState& d, trace::Direction dir, Endpoint& dst,
                          Endpoint& client, Endpoint& server,
                          ExchangeResult& result) {
  if (d.cut) {
    // Truncated direction: anything still held (or newly produced) is lost.
    d.pending.clear();
    d.pos = 0;
    return false;
  }
  if (d.stall_left > 0) {
    --d.stall_left;  // delivery is held; time still advances
    return true;
  }

  const auto deliver = [&](std::size_t n) {
    const std::span<const std::uint8_t> chunk(d.pending.data() + d.pos, n);
    // The cursor tracks every octet actually delivered — including fault
    // prefixes and post-corruption bytes — so its view of frame boundaries
    // is exactly the receiver's.
    if (plan_.frame_aligned) d.cursor.advance(chunk);
    dst.receive(chunk);
    d.pos += n;
    d.offset += n;
  };

  bool moved = false;
  while (d.pos < d.pending.size()) {
    const std::size_t avail = d.pending.size() - d.pos;
    const std::size_t n =
        plan_.frame_aligned
            ? d.cursor.preview(std::span<const std::uint8_t>(
                  d.pending.data() + d.pos, avail))
        : plan_.max_chunk == 0
            ? avail
            : static_cast<std::size_t>(std::min<std::uint64_t>(
                  avail, 1 + chunk_rng_.next_below(plan_.max_chunk)));

    if (fault_armed_ && dir == plan_.dir && plan_.at_byte < d.offset + n) {
      const std::size_t prefix =
          plan_.at_byte > d.offset
              ? static_cast<std::size_t>(plan_.at_byte - d.offset)
              : 0;
      fault_armed_ = false;
      fault_fired_ = true;
      result.fault = plan_.kind;
      switch (plan_.kind) {
        case FaultKind::kTruncate:
          // Everything up to the cut arrives; the tail never does. The
          // receiver learns its read side died (half-close + RST).
          if (prefix > 0) deliver(prefix);
          record_fault(dir, plan_.at_byte, 0);
          d.cut = true;
          d.pending.clear();
          d.pos = 0;
          dst.on_transport_close(
              UnavailableError("transport truncated at octet " +
                               std::to_string(plan_.at_byte)));
          return true;
        case FaultKind::kStall:
          if (prefix > 0) deliver(prefix);
          record_fault(dir, plan_.at_byte,
                       static_cast<std::uint32_t>(plan_.stall_rounds));
          d.stall_left = plan_.stall_rounds;
          return true;
        case FaultKind::kDisconnect:
          if (prefix > 0) deliver(prefix);
          record_fault(dir, plan_.at_byte, 0);
          disconnected_ = true;
          c2s_.cut = s2c_.cut = true;
          c2s_.pending.clear();
          c2s_.pos = 0;
          s2c_.pending.clear();
          s2c_.pos = 0;
          client.on_transport_close(
              UnavailableError("transport disconnected mid-exchange"));
          server.on_transport_close(
              UnavailableError("transport disconnected mid-exchange"));
          return true;
        case FaultKind::kCorrupt: {
          const std::uint8_t mask = plan_.xor_mask != 0 ? plan_.xor_mask : 1;
          d.pending[d.pos + prefix] ^= mask;
          record_fault(dir, plan_.at_byte, mask);
          break;  // the (now corrupted) chunk is delivered normally below
        }
        case FaultKind::kNone:
          break;
      }
    }

    deliver(n);
    moved = true;
  }
  d.pending.clear();
  d.pos = 0;
  return moved;
}

bool FaultyTransport::exchange_dead(ExchangeResult& result) {
  if (!disconnected_) return false;
  // The connection died in an earlier run() on this transport; nothing
  // can be exchanged any more.
  result.outcome = ExchangeOutcome::kDisconnected;
  return true;
}

void FaultyTransport::on_parked_rounds(int rounds) {
  c2s_.stall_left -= std::min(c2s_.stall_left, rounds);
  s2c_.stall_left -= std::min(s2c_.stall_left, rounds);
}

Transport::RoundOutcome FaultyTransport::round_once(Endpoint& client,
                                                    Endpoint& server,
                                                    ExchangeResult& result) {
  RoundOutcome out;
  // Pull fresh output into the per-direction holds, then let the plan
  // decide how much of each hold actually arrives this round.
  Bytes c2s = client.take_output();
  const std::size_t in_c2s = c2s.size();
  if (!c2s.empty() && !c2s_.cut) {
    c2s_.pending.insert(c2s_.pending.end(), c2s.begin(), c2s.end());
  }
  client.recycle(std::move(c2s));
  Bytes s2c = server.take_output();
  const std::size_t in_s2c = s2c.size();
  if (!s2c.empty() && !s2c_.cut) {
    s2c_.pending.insert(s2c_.pending.end(), s2c.begin(), s2c.end());
  }
  server.recycle(std::move(s2c));
  result.bytes_c2s += in_c2s;
  result.bytes_s2c += in_s2c;

  // A round with no intake where neither direction can move octets — only a
  // stall countdown would tick — is a dead round, and every round until the
  // stall expires is equally dead (the endpoints are passive between
  // deliveries). Report the whole stretch as parkable instead of burning a
  // pump round per tick. At most one direction ever stalls: plans carry at
  // most one fault.
  if (in_c2s == 0 && in_s2c == 0) {
    const auto idle = [](const DirState& d) {
      return d.stall_left > 0 || d.cut || d.pos >= d.pending.size();
    };
    const int ticking = std::max(c2s_.stall_left, s2c_.stall_left);
    if (ticking > 0 && idle(c2s_) && idle(s2c_)) {
      out.parkable = ticking;
      return out;
    }
  }

  bool moved = step(c2s_, trace::Direction::kClientToServer, server, client,
                    server, result);
  if (!disconnected_) {
    moved |= step(s2c_, trace::Direction::kServerToClient, client, client,
                  server, result);
  }

  out.progressed = in_c2s > 0 || in_s2c > 0 || moved;
  if (disconnected_) {
    result.outcome = ExchangeOutcome::kDisconnected;
    out.terminal = true;
  }
  return out;
}

}  // namespace h2r::net
