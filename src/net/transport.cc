#include "net/transport.h"

#include <algorithm>
#include <cstddef>

namespace h2r::net {

std::string_view to_string(ExchangeOutcome o) noexcept {
  switch (o) {
    case ExchangeOutcome::kQuiescent:
      return "quiescent";
    case ExchangeOutcome::kRoundCap:
      return "round_cap";
    case ExchangeOutcome::kByteCap:
      return "byte_cap";
    case ExchangeOutcome::kDisconnected:
      return "disconnected";
  }
  return "unknown";
}

std::string_view to_string(FaultKind k) noexcept {
  switch (k) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kTruncate:
      return "truncate";
    case FaultKind::kCorrupt:
      return "corrupt";
    case FaultKind::kStall:
      return "stall";
    case FaultKind::kDisconnect:
      return "disconnect";
  }
  return "unknown";
}

double fault_probability(double loss_rate, double floor) noexcept {
  // A lossy path multiplies the chance that some segment of the (single)
  // TCP connection dies or degrades mid-exchange; 25x turns the corpus's
  // per-packet loss rates (up to ~2%) into per-connection fault odds that
  // separate lossy sites from clean ones without drowning the floor.
  return std::clamp(floor + loss_rate * 25.0, 0.0, 0.95);
}

std::string FaultPlan::describe() const {
  std::string out;
  if (kind == FaultKind::kNone) {
    out = "clean";
  } else {
    out = std::string(to_string(kind));
    out += dir == trace::Direction::kClientToServer ? " c2s@" : " s2c@";
    out += std::to_string(at_byte);
    if (kind == FaultKind::kStall) {
      out += " rounds=" + std::to_string(stall_rounds);
    }
  }
  out += max_chunk == 0 ? " chunk=whole"
                        : " chunk<=" + std::to_string(max_chunk);
  return out;
}

FaultPlan FaultPlan::generate(std::uint64_t seed, double fault_probability) {
  FaultPlan plan;
  plan.seed = seed;
  std::uint64_t sm = seed;
  const auto draw = [&sm] { return splitmix64(sm); };

  // Segmentation is always on, with a heavy tail toward tiny chunks so
  // 1-byte dribble is a routine case, not a corner one.
  const std::uint64_t bucket = draw() % 10;
  if (bucket == 0) {
    plan.max_chunk = 1;  // pure dribble
  } else if (bucket <= 3) {
    plan.max_chunk = static_cast<std::uint32_t>(2 + draw() % 15);
  } else if (bucket <= 7) {
    plan.max_chunk = static_cast<std::uint32_t>(17 + draw() % 240);
  } else {
    plan.max_chunk = static_cast<std::uint32_t>(257 + draw() % 1280);
  }

  const double roll = static_cast<double>(draw() >> 11) * 0x1.0p-53;
  if (roll >= fault_probability) return plan;

  switch (draw() % 4) {
    case 0:
      plan.kind = FaultKind::kTruncate;
      break;
    case 1:
      plan.kind = FaultKind::kCorrupt;
      break;
    case 2:
      plan.kind = FaultKind::kStall;
      break;
    default:
      plan.kind = FaultKind::kDisconnect;
      break;
  }
  plan.dir = draw() % 2 == 0 ? trace::Direction::kClientToServer
                             : trace::Direction::kServerToClient;
  // Small enough to routinely land inside the preface, a frame header, or
  // an HPACK block; large enough that some plans outlive short exchanges
  // (an armed fault that never fires is a legitimate outcome).
  plan.at_byte = draw() % 600;
  plan.stall_rounds = static_cast<int>(1 + draw() % 6);
  plan.xor_mask = static_cast<std::uint8_t>(1 + draw() % 255);
  return plan;
}

void ExchangeLedger::note(const ExchangeResult& result) noexcept {
  ++exchanges;
  if (result.fault != FaultKind::kNone) ++faults_injected;
  if (result.deadline_hit()) {
    ++deadline_hits;
    attempt_deadline = true;
  }
  if (result.outcome == ExchangeOutcome::kDisconnected ||
      result.fault == FaultKind::kDisconnect) {
    attempt_disconnect = true;
  }
  if (result.fault == FaultKind::kTruncate ||
      result.fault == FaultKind::kCorrupt) {
    attempt_truncated = true;
  }
}

// ---------------------------------------------------------------- lockstep

ExchangeResult LockstepTransport::run_endpoints(Endpoint& client,
                                                Endpoint& server,
                                                const ExchangeLimits& limits) {
  ExchangeResult result;
  int rounds = 0;
  for (; rounds < limits.max_rounds; ++rounds) {
    Bytes c2s = client.take_output();
    if (!c2s.empty()) server.receive(c2s);
    Bytes s2c = server.take_output();
    if (!s2c.empty()) client.receive(s2c);
    result.bytes_c2s += c2s.size();
    result.bytes_s2c += s2c.size();
    const bool quiescent = c2s.empty() && s2c.empty();
    if (!quiescent) mark_round(rounds);
    // Both directions have been shipped; hand the drained buffers back so
    // the next round reuses their capacity instead of reallocating.
    client.recycle(std::move(c2s));
    server.recycle(std::move(s2c));
    if (quiescent) break;
    if (limits.max_bytes != 0 &&
        result.bytes_c2s + result.bytes_s2c >= limits.max_bytes) {
      result.outcome = ExchangeOutcome::kByteCap;
      ++rounds;
      break;
    }
  }
  result.rounds = rounds;
  if (result.outcome == ExchangeOutcome::kQuiescent &&
      rounds >= limits.max_rounds) {
    result.outcome = ExchangeOutcome::kRoundCap;
  }
  finish(result);
  return result;
}

// ------------------------------------------------------------------ faulty

FaultyTransport::FaultyTransport(FaultPlan plan, trace::Recorder* recorder,
                                 ExchangeLedger* ledger)
    : Transport(recorder, ledger),
      plan_(plan),
      chunk_rng_(plan.seed ^ 0x9E3779B97F4A7C15ull),
      fault_armed_(plan.kind != FaultKind::kNone) {}

void FaultyTransport::record_fault(trace::Direction dir, std::uint64_t at,
                                   std::uint32_t detail_b) {
  if (recorder_ == nullptr) return;
  trace::TraceEvent ev;
  ev.kind = trace::EventKind::kFault;
  ev.dir = dir;
  ev.detail_a = static_cast<std::uint32_t>(at);
  ev.detail_b = detail_b;
  ev.note = to_string(plan_.kind);
  recorder_->record(std::move(ev));
}

bool FaultyTransport::step(DirState& d, trace::Direction dir, Endpoint& dst,
                          Endpoint& client, Endpoint& server,
                          ExchangeResult& result) {
  if (d.cut) {
    // Truncated direction: anything still held (or newly produced) is lost.
    d.pending.clear();
    d.pos = 0;
    return false;
  }
  if (d.stall_left > 0) {
    --d.stall_left;  // delivery is held; time still advances
    return true;
  }

  const auto deliver = [&](std::size_t n) {
    dst.receive(std::span<const std::uint8_t>(d.pending.data() + d.pos, n));
    d.pos += n;
    d.offset += n;
  };

  bool moved = false;
  while (d.pos < d.pending.size()) {
    const std::size_t avail = d.pending.size() - d.pos;
    const std::size_t n =
        plan_.max_chunk == 0
            ? avail
            : static_cast<std::size_t>(std::min<std::uint64_t>(
                  avail, 1 + chunk_rng_.next_below(plan_.max_chunk)));

    if (fault_armed_ && dir == plan_.dir && plan_.at_byte < d.offset + n) {
      const std::size_t prefix =
          plan_.at_byte > d.offset
              ? static_cast<std::size_t>(plan_.at_byte - d.offset)
              : 0;
      fault_armed_ = false;
      fault_fired_ = true;
      result.fault = plan_.kind;
      switch (plan_.kind) {
        case FaultKind::kTruncate:
          // Everything up to the cut arrives; the tail never does. The
          // receiver learns its read side died (half-close + RST).
          if (prefix > 0) deliver(prefix);
          record_fault(dir, plan_.at_byte, 0);
          d.cut = true;
          d.pending.clear();
          d.pos = 0;
          dst.on_transport_close(
              UnavailableError("transport truncated at octet " +
                               std::to_string(plan_.at_byte)));
          return true;
        case FaultKind::kStall:
          if (prefix > 0) deliver(prefix);
          record_fault(dir, plan_.at_byte,
                       static_cast<std::uint32_t>(plan_.stall_rounds));
          d.stall_left = plan_.stall_rounds;
          return true;
        case FaultKind::kDisconnect:
          if (prefix > 0) deliver(prefix);
          record_fault(dir, plan_.at_byte, 0);
          disconnected_ = true;
          c2s_.cut = s2c_.cut = true;
          c2s_.pending.clear();
          c2s_.pos = 0;
          s2c_.pending.clear();
          s2c_.pos = 0;
          client.on_transport_close(
              UnavailableError("transport disconnected mid-exchange"));
          server.on_transport_close(
              UnavailableError("transport disconnected mid-exchange"));
          return true;
        case FaultKind::kCorrupt: {
          const std::uint8_t mask = plan_.xor_mask != 0 ? plan_.xor_mask : 1;
          d.pending[d.pos + prefix] ^= mask;
          record_fault(dir, plan_.at_byte, mask);
          break;  // the (now corrupted) chunk is delivered normally below
        }
        case FaultKind::kNone:
          break;
      }
    }

    deliver(n);
    moved = true;
  }
  d.pending.clear();
  d.pos = 0;
  return moved;
}

ExchangeResult FaultyTransport::run_endpoints(Endpoint& client,
                                              Endpoint& server,
                                              const ExchangeLimits& limits) {
  ExchangeResult result;
  if (disconnected_) {
    // The connection died in an earlier run() on this transport; nothing
    // can be exchanged any more.
    result.outcome = ExchangeOutcome::kDisconnected;
    finish(result);
    return result;
  }

  int rounds = 0;
  for (; rounds < limits.max_rounds; ++rounds) {
    // Pull fresh output into the per-direction holds, then let the plan
    // decide how much of each hold actually arrives this round.
    Bytes c2s = client.take_output();
    const std::size_t in_c2s = c2s.size();
    if (!c2s.empty() && !c2s_.cut) {
      c2s_.pending.insert(c2s_.pending.end(), c2s.begin(), c2s.end());
    }
    client.recycle(std::move(c2s));
    Bytes s2c = server.take_output();
    const std::size_t in_s2c = s2c.size();
    if (!s2c.empty() && !s2c_.cut) {
      s2c_.pending.insert(s2c_.pending.end(), s2c.begin(), s2c.end());
    }
    server.recycle(std::move(s2c));
    result.bytes_c2s += in_c2s;
    result.bytes_s2c += in_s2c;

    bool moved = step(c2s_, trace::Direction::kClientToServer, server, client,
                      server, result);
    if (!disconnected_) {
      moved |= step(s2c_, trace::Direction::kServerToClient, client, client,
                    server, result);
    }

    const bool progressed = in_c2s > 0 || in_s2c > 0 || moved;
    if (progressed) mark_round(rounds);
    if (disconnected_) {
      result.outcome = ExchangeOutcome::kDisconnected;
      ++rounds;
      break;
    }
    if (!progressed) break;  // quiescent
    if (limits.max_bytes != 0 &&
        result.bytes_c2s + result.bytes_s2c >= limits.max_bytes) {
      result.outcome = ExchangeOutcome::kByteCap;
      ++rounds;
      break;
    }
  }
  result.rounds = rounds;
  if (result.outcome == ExchangeOutcome::kQuiescent &&
      rounds >= limits.max_rounds) {
    result.outcome = ExchangeOutcome::kRoundCap;
  }
  finish(result);
  return result;
}

}  // namespace h2r::net
