// Network path model: where the paper measures real Internet RTTs, we model
// the delay components that distinguish its four measurement methods
// (Section III-F / Figure 6):
//
//   ICMP ping        = propagation + jitter + icmp processing
//   TCP handshake    = propagation + jitter + kernel SYN processing
//   HTTP/2 PING      = propagation + jitter + h2 frame processing
//   HTTP/1.1 request = propagation + jitter + *server think time* (request
//                      parsing, handler execution, response generation)
//
// The paper's observation — PING ≈ TCP ≈ ICMP, HTTP/1.1 visibly larger —
// falls out of think time dominating the small per-layer costs.
#pragma once

#include <algorithm>
#include <cmath>
#include <string>

#include "util/rng.h"

namespace h2r::net {

struct PathModel {
  std::string label;              ///< e.g. the probed site's host name
  double base_rtt_ms = 50;        ///< two-way propagation delay
  double jitter_ms = 3;           ///< uniform [0, jitter) queueing noise
  double icmp_processing_ms = 0.3;  ///< router/host ICMP echo handling
  double tcp_syn_processing_ms = 0.2;  ///< kernel SYN/ACK turnaround
  double h2_ping_processing_ms = 0.4;  ///< PING frame parse + ACK emit
  double http11_think_ms = 25;    ///< request handling + response generation
  double http11_think_jitter_ms = 15;  ///< handler-dependent variance
  /// Packet loss rate on the path. HTTP/2's single TCP connection is
  /// throughput-capped by loss (the §VI concern: "its performance may be
  /// significantly affected in a lossy environment"); the cap follows the
  /// Mathis model, throughput <= MSS/RTT * C/sqrt(loss).
  double loss_rate = 0.0;

  /// One RTT sample as ICMP ping would observe it.
  [[nodiscard]] double sample_icmp(Rng& rng) const {
    return base_rtt_ms + rng.next_double() * jitter_ms + icmp_processing_ms;
  }

  /// One RTT sample from TCP SYN -> SYN/ACK timing.
  [[nodiscard]] double sample_tcp_handshake(Rng& rng) const {
    return base_rtt_ms + rng.next_double() * jitter_ms + tcp_syn_processing_ms;
  }

  /// One RTT sample from HTTP/2 PING -> PING/ACK timing.
  [[nodiscard]] double sample_h2_ping(Rng& rng) const {
    return base_rtt_ms + rng.next_double() * jitter_ms + h2_ping_processing_ms;
  }

  /// One RTT estimate from HTTP/1.1 request -> response timing; includes
  /// the server think time the other three methods avoid.
  [[nodiscard]] double sample_http11(Rng& rng) const {
    return base_rtt_ms + rng.next_double() * jitter_ms + http11_think_ms +
           rng.next_double() * http11_think_jitter_ms;
  }

  /// One-way latency (half the base RTT plus half a jitter draw) — used by
  /// the page-load simulator for per-leg timing.
  [[nodiscard]] double sample_one_way(Rng& rng) const {
    return (base_rtt_ms + rng.next_double() * jitter_ms) / 2.0;
  }

  /// Loss-capped throughput of one TCP connection (Mathis et al.):
  /// min(link bandwidth, MSS/RTT * 1.22/sqrt(p)). Returns kbps.
  [[nodiscard]] double tcp_throughput_kbps(double link_kbps) const {
    if (loss_rate <= 0) return link_kbps;
    constexpr double kMssBits = 1460.0 * 8.0;
    const double cap_kbps =
        kMssBits / base_rtt_ms * 1.22 / std::sqrt(loss_rate);
    return std::min(link_kbps, cap_kbps);
  }
};

}  // namespace h2r::net
