// Deterministic virtual time.
//
// All simulated latencies are expressed in virtual milliseconds; nothing in
// the library reads a wall clock, which is what makes measurement runs
// reproducible bit-for-bit from a seed.
#pragma once

namespace h2r::net {

class VirtualClock {
 public:
  /// Current virtual time in milliseconds since simulation start.
  [[nodiscard]] double now_ms() const noexcept { return now_ms_; }

  /// Advances time; negative advances are a programmer error.
  void advance_ms(double delta_ms) {
    if (delta_ms < 0) delta_ms = 0;
    now_ms_ += delta_ms;
  }

 private:
  double now_ms_ = 0;
};

}  // namespace h2r::net
