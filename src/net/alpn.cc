#include "net/alpn.h"

#include <algorithm>

namespace h2r::net {
namespace {

bool contains(const std::vector<std::string>& haystack, const std::string& s) {
  return std::find(haystack.begin(), haystack.end(), s) != haystack.end();
}

}  // namespace

NegotiationResult negotiate_alpn(const std::vector<std::string>& client_offer,
                                 const TlsEndpointConfig& server) {
  NegotiationResult out;
  if (!server.supports_alpn) return out;
  out.used_alpn = true;
  for (const auto& proto : server.protocols) {  // server preference wins
    if (contains(client_offer, proto)) {
      out.protocol = proto;
      return out;
    }
  }
  return out;
}

NegotiationResult negotiate_npn(const std::vector<std::string>& client_preference,
                                const TlsEndpointConfig& server) {
  NegotiationResult out;
  if (!server.supports_npn) return out;
  out.used_npn = true;
  for (const auto& proto : client_preference) {  // client preference wins
    if (contains(server.protocols, proto)) {
      out.protocol = proto;
      return out;
    }
  }
  return out;
}

NegotiationResult negotiate(const std::vector<std::string>& client_protocols,
                            const TlsEndpointConfig& server) {
  NegotiationResult alpn = negotiate_alpn(client_protocols, server);
  if (!alpn.protocol.empty()) return alpn;
  NegotiationResult npn = negotiate_npn(client_protocols, server);
  if (!npn.protocol.empty()) return npn;
  // Report which mechanisms were attempted even on failure.
  NegotiationResult none;
  none.used_alpn = alpn.used_alpn;
  none.used_npn = npn.used_npn;
  return none;
}

}  // namespace h2r::net
