// Cleartext HTTP/2 negotiation via HTTP/1.1 Upgrade ("h2c", RFC 7540 §3.2).
//
// The paper's Section IV-A describes both connection paths: over TLS the
// client uses ALPN/NPN (alpn.h); without TLS it sends an HTTP/1.1 request
// carrying `Upgrade: h2c` plus an HTTP2-Settings header, and a willing
// server answers `101 Switching Protocols` before speaking frames. This
// module models that exchange at the header level (no TCP), which is all
// the probe needs.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "h2/settings.h"
#include "util/bytes.h"
#include "util/status.h"

namespace h2r::net {

/// The client's upgrade offer: an HTTP/1.1 request with the three headers
/// §3.2 requires (Connection, Upgrade, HTTP2-Settings).
struct UpgradeRequest {
  std::string method = "GET";
  std::string path = "/";
  std::string host;
  /// The SETTINGS payload to smuggle in HTTP2-Settings (base64url-coded on
  /// the wire).
  std::vector<std::pair<h2::SettingId, std::uint32_t>> settings;
};

/// Renders the §3.2 upgrade request as HTTP/1.1 text.
std::string render_upgrade_request(const UpgradeRequest& request);

/// What a server did with an upgrade offer.
struct UpgradeResult {
  bool switched = false;      ///< 101 Switching Protocols received
  std::string status_line;    ///< first line of the HTTP/1.1 response
  h2::SettingsMap client_settings;  ///< decoded from HTTP2-Settings (server side)
};

/// Server side: parses an HTTP/1.1 request; if it is a well-formed h2c
/// upgrade offer and @p server_supports_h2c, accepts with 101 (and decodes
/// the client's smuggled SETTINGS), otherwise answers 200 over HTTP/1.1.
UpgradeResult process_upgrade_request(const std::string& http1_request,
                                      bool server_supports_h2c);

/// base64url without padding, as HTTP2-Settings requires (RFC 7540 §3.2.1).
std::string base64url_encode(std::span<const std::uint8_t> data);
Result<Bytes> base64url_decode(std::string_view text);

}  // namespace h2r::net
