#include "netio/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace h2r::netio {

void Fd::reset(int fd) noexcept {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

Status errno_status(int err, std::string_view what) {
  const std::string msg =
      std::string(what) + ": " + errno_key(err) + " (" + std::strerror(err) +
      ")";
  switch (err) {
    case ECONNRESET:
    case EPIPE:
    case ECONNREFUSED:
    case ECONNABORTED:
    case ETIMEDOUT:
    case EHOSTUNREACH:
    case ENETUNREACH:
    case ENETDOWN:
    case ENETRESET:
    case ESHUTDOWN:
      return UnavailableError(msg);
    case EMFILE:
    case ENFILE:
    case ENOBUFS:
    case ENOMEM:
      return RefusedError(msg);
    default:
      return InternalError(msg);
  }
}

std::string errno_key(int err) {
  switch (err) {
    case ECONNRESET: return "ECONNRESET";
    case EPIPE: return "EPIPE";
    case ECONNREFUSED: return "ECONNREFUSED";
    case ECONNABORTED: return "ECONNABORTED";
    case ETIMEDOUT: return "ETIMEDOUT";
    case EHOSTUNREACH: return "EHOSTUNREACH";
    case ENETUNREACH: return "ENETUNREACH";
    case ENETDOWN: return "ENETDOWN";
    case ENETRESET: return "ENETRESET";
    case ESHUTDOWN: return "ESHUTDOWN";
    case EMFILE: return "EMFILE";
    case ENFILE: return "ENFILE";
    case ENOBUFS: return "ENOBUFS";
    case ENOMEM: return "ENOMEM";
    case EADDRINUSE: return "EADDRINUSE";
    case EACCES: return "EACCES";
    case EINVAL: return "EINVAL";
    case EBADF: return "EBADF";
    default: return "errno-" + std::to_string(err);
  }
}

Status set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return errno_status(errno, "fcntl(F_GETFL)");
  if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return errno_status(errno, "fcntl(F_SETFL)");
  }
  return OkStatus();
}

Result<Fd> listen_loopback(std::uint16_t port, int backlog,
                           bool reuse_port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return errno_status(errno, "socket");
  const int one = 1;
  // SO_REUSEADDR so a restarted listener re-binds through lingering
  // TIME_WAIT entries from its previous incarnation.
  if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) <
      0) {
    return errno_status(errno, "setsockopt(SO_REUSEADDR)");
  }
  if (reuse_port &&
      ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) <
          0) {
    // kRefused by taxonomy choice: "the kernel would not give us the
    // resource", so the sharded listener can branch on status code.
    return RefusedError("setsockopt(SO_REUSEPORT): " + errno_key(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    return errno_status(errno, "bind");
  }
  if (::listen(fd.get(), backlog) < 0) return errno_status(errno, "listen");
  if (Status s = set_nonblocking(fd.get()); !s.ok()) return s;
  return fd;
}

Result<std::uint16_t> local_port(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    return errno_status(errno, "getsockname");
  }
  return static_cast<std::uint16_t>(ntohs(addr.sin_port));
}

Result<Fd> connect_tcp(const std::string& host, std::uint16_t port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return errno_status(errno, "socket");
  if (Status s = set_nonblocking(fd.get()); !s.ok()) return s;
  const int one = 1;
  // The load generator writes many small frames; without TCP_NODELAY Nagle
  // would serialize them against delayed ACKs and the latency histogram
  // would measure the kernel, not the server.
  if (::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) <
      0) {
    return errno_status(errno, "setsockopt(TCP_NODELAY)");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return InternalError("connect_tcp: bad IPv4 address \"" + host + "\"");
  }
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) < 0 &&
      errno != EINPROGRESS) {
    return errno_status(errno, "connect");
  }
  return fd;
}

int pending_socket_error(int fd) {
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0) return errno;
  return err;
}

}  // namespace h2r::netio
