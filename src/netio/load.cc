#include "netio/load.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <optional>
#include <poll.h>
#include <sys/epoll.h>
#include <thread>
#include <vector>

#include "net/readiness.h"
#include "netio/event_loop.h"

namespace h2r::netio {

namespace {

constexpr net::ExchangeLimits kLoadLimits{.max_rounds = 1 << 30,
                                          .max_bytes = 0};

std::uint64_t steady_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::string fmt_ms(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

}  // namespace

void LoadReport::merge(const LoadReport& other) {
  completed += other.completed;
  failed += other.failed;
  rst_streams += other.rst_streams;
  connect_errors += other.connect_errors;
  transport_errors += other.transport_errors;
  protocol_errors += other.protocol_errors;
  clean_closes += other.clean_closes;
  wall_ms = std::max(wall_ms, other.wall_ms);
  latency_ms.merge(other.latency_ms);
  for (const auto& [key, count] : other.errors) errors[key] += count;
  rps = wall_ms > 0.0
            ? static_cast<double>(completed) / (wall_ms / 1000.0)
            : 0.0;
}

std::string LoadReport::json() const {
  std::string out = "{";
  const auto field = [&out](std::string_view key, std::uint64_t v) {
    out += "\"";
    out += key;
    out += "\":" + std::to_string(v) + ",";
  };
  field("completed", completed);
  field("failed", failed);
  field("rst_streams", rst_streams);
  field("connect_errors", connect_errors);
  field("transport_errors", transport_errors);
  field("protocol_errors", protocol_errors);
  field("clean_closes", clean_closes);
  field("errors_total", total_errors());
  out += "\"wall_ms\":" + fmt_ms(wall_ms) + ",";
  out += "\"rps\":" + fmt_ms(rps) + ",";
  out += "\"latency_ms\":{";
  if (latency_ms.empty()) {
    out += "\"count\":0";
  } else {
    out += "\"count\":" + std::to_string(latency_ms.size());
    out += ",\"mean\":" + fmt_ms(latency_ms.mean());
    out += ",\"p50\":" + fmt_ms(latency_ms.quantile(0.50));
    out += ",\"p90\":" + fmt_ms(latency_ms.quantile(0.90));
    out += ",\"p99\":" + fmt_ms(latency_ms.quantile(0.99));
    out += ",\"p999\":" + fmt_ms(latency_ms.quantile(0.999));
    out += ",\"max\":" + fmt_ms(latency_ms.max());
  }
  out += "},\"errors\":{";
  bool first = true;
  for (const auto& [key, count] : errors) {
    if (!first) out += ",";
    first = false;
    out += "\"" + key + "\":" + std::to_string(count);
  }
  out += "}}";
  return out;
}

// ---------------------------------------------------------------- run_load

namespace {

class Runner;

struct Cn final : IoHandler {
  Cn(Runner& runner, int index, Fd fd, int target)
      : runner(runner),
        index(index),
        transport(std::move(fd)),
        client_ref(client),
        target(target) {}

  void on_ready(std::uint32_t events) override;

  Runner& runner;
  int index;
  SocketTransport transport;
  core::ClientConnection client;
  net::EndpointRef<core::ClientConnection> client_ref;
  std::optional<net::ExchangeDriver> driver;
  std::map<std::uint32_t, std::uint64_t> inflight;  ///< stream → submit us
  int target;       ///< this connection's share of the request budget
  int issued = 0;
  std::uint32_t interest = EPOLLOUT;
  bool connecting = true;
  bool closed = false;  ///< GOAWAY queued
  bool done = false;
};

class Runner {
 public:
  explicit Runner(const LoadOptions& opts) : opts_(opts) {}

  LoadReport run();
  void drive(Cn& cn);

 private:
  void fail_connect(Cn& cn, int err, std::string_view key);
  /// Records completions, refills the in-flight window, queues the GOAWAY
  /// once the budget is served. True when new output wants flushing.
  bool harvest(Cn& cn);
  void settle(Cn& cn);
  void retire(Cn& cn);
  void update_interest(Cn& cn);

  LoadOptions opts_;
  EpollLoop loop_;
  std::vector<std::unique_ptr<Cn>> conns_;
  net::TimerWheel<int> timers_;  ///< connect deadlines (+ -1 = run deadline)
  LoadReport report_;
  std::uint64_t t0_us_ = 0;
  int live_ = 0;
};

void Cn::on_ready(std::uint32_t events) {
  (void)events;
  runner.drive(*this);
}

void Runner::fail_connect(Cn& cn, int err, std::string_view key) {
  ++report_.connect_errors;
  ++report_.errors[std::string(key.empty() ? errno_key(err) : key)];
  report_.failed += static_cast<std::uint64_t>(cn.target);
  retire(cn);
}

void Runner::retire(Cn& cn) {
  if (cn.done) return;
  cn.done = true;
  loop_.remove(cn.transport.fd());
  cn.transport.close();
  --live_;
}

void Runner::update_interest(Cn& cn) {
  const std::uint32_t want =
      cn.connecting ? EPOLLOUT
                    : EPOLLIN | (cn.transport.wants_write() ? EPOLLOUT : 0u);
  if (want == cn.interest) return;
  if (loop_.modify(cn.transport.fd(), want).ok()) cn.interest = want;
}

bool Runner::harvest(Cn& cn) {
  bool queued = false;
  const std::uint64_t now = steady_us();
  for (auto it = cn.inflight.begin(); it != cn.inflight.end();) {
    const std::uint32_t id = it->first;
    if (cn.client.stream_complete(id)) {
      ++report_.completed;
      report_.latency_ms.add(static_cast<double>(now - it->second) / 1000.0);
      it = cn.inflight.erase(it);
    } else if (cn.client.rst_on(id).has_value()) {
      ++report_.rst_streams;
      ++report_.failed;
      ++report_.errors["RST_STREAM"];
      it = cn.inflight.erase(it);
    } else {
      ++it;
    }
  }
  while (cn.client.alive() && cn.issued < cn.target &&
         cn.inflight.size() < static_cast<std::size_t>(opts_.streams)) {
    const std::uint32_t id = cn.client.send_request(opts_.path);
    cn.inflight.emplace(id, steady_us());
    ++cn.issued;
    queued = true;
  }
  if (cn.client.alive() && !cn.closed && cn.issued >= cn.target &&
      cn.inflight.empty()) {
    cn.client.close();
    cn.closed = true;
    queued = true;
  }
  return queued;
}

void Runner::settle(Cn& cn) {
  const net::ExchangeResult& r = cn.driver->result();
  const core::TerminalInfo& t = cn.client.terminal();
  // Anything still in flight — or never issued — on a finished connection
  // is a failed request.
  report_.failed += static_cast<std::uint64_t>(cn.inflight.size());
  report_.failed += static_cast<std::uint64_t>(cn.target - cn.issued);
  cn.inflight.clear();
  if (t.state == core::ClientTerminal::kProtocolError) {
    ++report_.protocol_errors;
    ++report_.errors["protocol"];
  } else if (t.state == core::ClientTerminal::kTransportError ||
             r.outcome == net::ExchangeOutcome::kDisconnected) {
    ++report_.transport_errors;
    ++report_.errors[cn.transport.failed()
                         ? errno_key(cn.transport.last_errno())
                         : "EOF"];
  } else if (r.outcome == net::ExchangeOutcome::kQuiescent) {
    ++report_.clean_closes;
    // A server-initiated GOAWAY is a clean close, but one that may have
    // cut the budget short; keep the cause visible.
    if (cn.client.goaway_received() && cn.issued < cn.target) {
      ++report_.errors["server-goaway"];
    }
  } else {
    ++report_.transport_errors;
    ++report_.errors["exchange-cap"];
  }
  retire(cn);
}

void Runner::drive(Cn& cn) {
  if (cn.done) return;
  if (cn.connecting) {
    const int err = pending_socket_error(cn.transport.fd());
    if (err != 0) {
      fail_connect(cn, err, "");
      return;
    }
    cn.connecting = false;
    cn.driver.emplace(cn.transport, cn.client_ref, cn.transport.wire(),
                      kLoadLimits);
  }
  while (true) {
    if (cn.driver->state() == net::ExchangeDriver::State::kParked) {
      cn.driver->unpark();
    }
    if (cn.driver->pump() == net::ExchangeDriver::State::kDone) {
      settle(cn);
      return;
    }
    if (!harvest(cn)) break;  // nothing new to flush: wait for readiness
  }
  update_interest(cn);
}

LoadReport Runner::run() {
  if (!loop_.status().ok()) {
    report_.errors["reactor"] = 1;
    report_.failed = static_cast<std::uint64_t>(opts_.requests);
    return report_;
  }
  t0_us_ = steady_us();
  const auto now_ms = [this] { return (steady_us() - t0_us_) / 1000; };

  const int n = std::max(1, opts_.connections);
  const int per = opts_.requests / n;
  const int extra = opts_.requests % n;
  for (int i = 0; i < n; ++i) {
    const int target = per + (i < extra ? 1 : 0);
    auto fd = connect_tcp(opts_.host, opts_.port);
    if (!fd.ok()) {
      ++report_.connect_errors;
      ++report_.errors["connect"];
      report_.failed += static_cast<std::uint64_t>(target);
      continue;
    }
    auto cn = std::make_unique<Cn>(*this, i, std::move(fd).value(), target);
    if (!loop_.add(cn->transport.fd(), cn.get(), EPOLLOUT).ok()) {
      ++report_.connect_errors;
      ++report_.errors["epoll-add"];
      report_.failed += static_cast<std::uint64_t>(target);
      continue;
    }
    ++live_;
    timers_.park(now_ms() + static_cast<std::uint64_t>(opts_.connect_timeout_ms),
                 i);
    conns_.push_back(std::move(cn));
  }
  timers_.park(now_ms() + static_cast<std::uint64_t>(opts_.run_timeout_ms), -1);

  bool expired = false;
  while (live_ > 0 && !expired) {
    int timeout = -1;
    if (!timers_.empty()) {
      const std::uint64_t next = timers_.next_tick();
      const std::uint64_t now = now_ms();
      timeout = next > now ? static_cast<int>(std::min<std::uint64_t>(
                                 next - now, 60'000))
                           : 0;
    }
    auto polled = loop_.poll(timeout);
    if (!polled.ok()) {
      report_.errors["reactor"] += 1;
      break;
    }
    for (const int idx : timers_.pop_due(now_ms())) {
      if (idx < 0) {
        // Whole-run deadline: whatever is still open is failed work.
        expired = true;
        break;
      }
      Cn& cn = *conns_[static_cast<std::size_t>(idx)];
      if (!cn.done && cn.connecting) fail_connect(cn, ETIMEDOUT, "ETIMEDOUT");
    }
  }
  for (auto& cn : conns_) {
    if (cn->done) continue;
    ++report_.transport_errors;
    ++report_.errors["run-timeout"];
    report_.failed += static_cast<std::uint64_t>(cn->inflight.size());
    report_.failed += static_cast<std::uint64_t>(cn->target - cn->issued);
    retire(*cn);
  }

  report_.wall_ms = static_cast<double>(steady_us() - t0_us_) / 1000.0;
  report_.rps = report_.wall_ms > 0.0
                    ? static_cast<double>(report_.completed) /
                          (report_.wall_ms / 1000.0)
                    : 0.0;
  return report_;
}

}  // namespace

LoadReport run_load(const LoadOptions& opts) {
  const int threads =
      std::min(std::max(1, opts.threads), std::max(1, opts.connections));
  if (threads == 1) return Runner(opts).run();
  // One single-threaded runner per thread, each with its own reactor and a
  // round-robin share of the connections and the request budget.
  const int conns = std::max(1, opts.connections);
  std::vector<LoadReport> parts(static_cast<std::size_t>(threads));
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    LoadOptions part = opts;
    part.threads = 1;
    part.connections = conns / threads + (i < conns % threads ? 1 : 0);
    part.requests =
        opts.requests / threads + (i < opts.requests % threads ? 1 : 0);
    pool.emplace_back([part, &parts, i] {
      parts[static_cast<std::size_t>(i)] = Runner(part).run();
    });
  }
  for (auto& t : pool) t.join();
  LoadReport merged;
  for (const LoadReport& part : parts) merged.merge(part);
  return merged;
}

// ------------------------------------------------------------ SocketClient

Result<std::unique_ptr<SocketClient>> SocketClient::connect(
    const std::string& host, std::uint16_t port, core::ClientOptions options,
    int timeout_ms) {
  auto fd = connect_tcp(host, port);
  if (!fd.ok()) return fd.status();
  pollfd p{fd.value().get(), POLLOUT, 0};
  int r;
  do {
    r = ::poll(&p, 1, timeout_ms);
  } while (r < 0 && errno == EINTR);
  if (r < 0) return errno_status(errno, "poll");
  if (r == 0) return UnavailableError("connect: timed out");
  if (const int err = pending_socket_error(fd.value().get()); err != 0) {
    return errno_status(err, "connect");
  }
  return std::unique_ptr<SocketClient>(
      new SocketClient(std::move(fd).value(), std::move(options)));
}

Status SocketClient::pump_until(
    const std::function<bool(core::ClientConnection&)>& done,
    int timeout_ms) {
  const std::uint64_t deadline =
      steady_us() + static_cast<std::uint64_t>(timeout_ms) * 1000;
  while (true) {
    if (driver_.state() == net::ExchangeDriver::State::kParked) {
      driver_.unpark();
    }
    if (driver_.pump() == net::ExchangeDriver::State::kDone) return OkStatus();
    if (done && done(client_)) return OkStatus();
    const std::uint64_t now = steady_us();
    if (now >= deadline) return UnavailableError("pump_until: timed out");
    pollfd p{transport_.fd(),
             static_cast<short>(POLLIN |
                                (transport_.wants_write() ? POLLOUT : 0)),
             0};
    const int wait_ms = static_cast<int>((deadline - now) / 1000) + 1;
    int r;
    do {
      r = ::poll(&p, 1, wait_ms);
    } while (r < 0 && errno == EINTR);
    if (r < 0) return errno_status(errno, "poll");
    if (r == 0) return UnavailableError("pump_until: timed out");
  }
}

Status SocketClient::finish(int timeout_ms) {
  if (driver_.state() != net::ExchangeDriver::State::kDone) {
    client_.close();
    if (Status s = pump_until(
            [](core::ClientConnection&) { return false; }, timeout_ms);
        !s.ok()) {
      return s;
    }
  }
  if (driver_.result().outcome != net::ExchangeOutcome::kQuiescent) {
    return UnavailableError(
        "finish: exchange ended " +
        std::string(net::to_string(driver_.result().outcome)));
  }
  return OkStatus();
}

}  // namespace h2r::netio
