#include "netio/serve.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <optional>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>
#include <utility>
#include <vector>

#include "h2/constants.h"
#include "net/readiness.h"
#include "net/transport.h"
#include "netio/socket_transport.h"
#include "server/profile.h"
#include "server/site.h"

namespace h2r::netio {

namespace {
// Serving exchanges are bounded by socket lifetime, not by virtual rounds:
// every epoll wake books at least one round, so the cap only needs to be
// far above any plausible number of wakes per connection.
constexpr net::ExchangeLimits kServeLimits{.max_rounds = 1 << 30,
                                           .max_bytes = 0};
}  // namespace

void ServeStats::merge(const ServeStats& other) {
  accepted += other.accepted;
  served_clean += other.served_clean;
  disconnected += other.disconnected;
  declined_h1 += other.declined_h1;
  accept_refused += other.accept_refused;
  drain_expired += other.drain_expired;
  rounds += other.rounds;
  bytes_in += other.bytes_in;
  bytes_out += other.bytes_out;
  trace_drops += other.trace_drops;
  header_cache_hits += other.header_cache_hits;
  header_cache_misses += other.header_cache_misses;
  for (const auto& [key, count] : other.errors) errors[key] += count;
}

std::string ServeStats::json() const {
  std::string out = "{";
  const auto field = [&out](std::string_view key, std::uint64_t v) {
    out += "\"";
    out += key;
    out += "\":" + std::to_string(v) + ",";
  };
  field("accepted", accepted);
  field("served_clean", served_clean);
  field("disconnected", disconnected);
  field("declined_h1", declined_h1);
  field("accept_refused", accept_refused);
  field("drain_expired", drain_expired);
  field("rounds", rounds);
  field("bytes_in", bytes_in);
  field("bytes_out", bytes_out);
  field("trace_drops", trace_drops);
  field("header_cache_hits", header_cache_hits);
  field("header_cache_misses", header_cache_misses);
  out += "\"errors\":{";
  bool first = true;
  for (const auto& [key, count] : errors) {
    if (!first) out += ",";
    first = false;
    out += "\"" + key + "\":" + std::to_string(count);
  }
  out += "}}";
  return out;
}

// ------------------------------------------------------------- connection

struct ServeLoop::Conn final : IoHandler {
  Conn(ServeLoop& serve, Fd fd)
      : serve(serve),
        tape(serve.opts_.tape_capacity),
        transport(std::move(fd),
                  serve.opts_.recorder != nullptr ? &tape : nullptr) {}

  void on_ready(std::uint32_t events) override {
    (void)events;  // level-triggered: drive() discovers the work itself
    serve.drive(*this);
  }

  ServeLoop& serve;
  /// Per-connection wiretap buffer. Concurrent connections interleave on
  /// the reactor, but the annotator and metrics segment traces by
  /// kConnectionStart and assume each segment is contiguous — so every
  /// connection records onto its own bounded ring tape, replayed whole
  /// into the shared sink when the connection retires.
  trace::RingRecorder tape;
  SocketTransport transport;
  Bytes sniff;
  bool sniff_done = false;
  server::Http2Server::StartMode mode = server::Http2Server::StartMode::kTls;
  std::unique_ptr<server::Http2Server> engine;
  std::optional<net::EndpointRef<server::Http2Server>> engine_ref;
  std::optional<net::ExchangeDriver> driver;
  std::uint32_t interest = EPOLLIN;
  bool retired = false;
};

class ServeLoop::AcceptHandler final : public IoHandler {
 public:
  explicit AcceptHandler(ServeLoop& serve) : serve_(serve) {}
  void on_ready(std::uint32_t events) override {
    (void)events;
    serve_.on_accept_ready();
  }

 private:
  ServeLoop& serve_;
};

class ServeLoop::MailboxHandler final : public IoHandler {
 public:
  explicit MailboxHandler(ServeLoop& serve) : serve_(serve) {}
  void on_ready(std::uint32_t events) override {
    (void)events;
    serve_.on_mailbox_ready();
  }

 private:
  ServeLoop& serve_;
};

// ------------------------------------------------------------------ setup

ServeLoop::ServeLoop(const ServeOptions& opts) : opts_(opts) {
  t0_ = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

ServeLoop::~ServeLoop() {
  for (auto& [fd, conn] : conns_) {
    loop_.remove(fd);
    flush_tape(*conn);
    conn->transport.close();
  }
  conns_.clear();
  // Posted-but-never-dispatched sockets would otherwise leak their fds.
  const std::lock_guard<std::mutex> lock(mailbox_mu_);
  for (const int fd : mailbox_pending_) ::close(fd);
  mailbox_pending_.clear();
}

Result<std::unique_ptr<ServeLoop>> ServeLoop::create(
    const ServeOptions& opts) {
  server::ServerProfile profile;
  try {
    profile = server::profile_by_key(opts.profile_key);
  } catch (const std::out_of_range&) {
    return InternalError("unknown profile key \"" + opts.profile_key + "\"");
  }
  if (opts.hardened) {
    profile.mitigation = server::MitigationPolicy::hardened();
  }

  // make_unique can't reach the private ctor.
  std::unique_ptr<ServeLoop> serve(new ServeLoop(opts));
  if (!serve->loop_.status().ok()) return serve->loop_.status();
  serve->profile_ = std::make_shared<const server::ServerProfile>(
      std::move(profile));
  serve->site_ = std::make_shared<const server::Site>(
      server::Site::standard_testbed_site());

  if (opts.external_accept) {
    // Sharded-fallback mode: no listener of our own; accepted sockets
    // arrive cross-thread via post_connection → eventfd mailbox.
    serve->mailbox_ =
        Fd(::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC));
    if (!serve->mailbox_.valid()) return errno_status(errno, "eventfd");
    serve->mailbox_handler_ = std::make_unique<MailboxHandler>(*serve);
    if (Status s = serve->loop_.add(serve->mailbox_.get(),
                                    serve->mailbox_handler_.get(), EPOLLIN);
        !s.ok()) {
      return s;
    }
    return serve;
  }

  auto listener = listen_loopback(opts.port, opts.backlog, opts.reuse_port);
  if (!listener.ok()) return listener.status();
  serve->listener_ = std::move(listener).value();
  auto port = local_port(serve->listener_.get());
  if (!port.ok()) return port.status();
  serve->port_ = port.value();

  serve->accept_handler_ = std::make_unique<AcceptHandler>(*serve);
  if (Status s = serve->loop_.add(serve->listener_.get(),
                                  serve->accept_handler_.get(), EPOLLIN);
      !s.ok()) {
    return s;
  }
  return serve;
}

std::uint64_t ServeLoop::now_ms() const {
  return static_cast<std::uint64_t>(
             std::chrono::duration_cast<std::chrono::milliseconds>(
                 std::chrono::steady_clock::now().time_since_epoch())
                 .count()) -
         t0_;
}

// ----------------------------------------------------------------- accept

void ServeLoop::on_accept_ready() {
  while (true) {
    Fd fd(::accept4(listener_.get(), nullptr, nullptr,
                    SOCK_NONBLOCK | SOCK_CLOEXEC));
    if (!fd.valid()) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      // EMFILE / ENFILE / ENOBUFS: the accept-overflow class. Count it in
      // the taxonomy and back off until the next readiness wake.
      ++stats_.accept_refused;
      ++stats_.errors[errno_key(errno)];
      return;
    }
    ++stats_.accepted;
    if (draining_ || conns_.size() >= opts_.max_connections) {
      ++stats_.accept_refused;
      ++stats_.errors[draining_ ? "shutting-down" : "overloaded"];
      continue;  // fd closes on scope exit
    }
    adopt(std::move(fd));
  }
}

void ServeLoop::post_connection(int fd) noexcept {
  {
    const std::lock_guard<std::mutex> lock(mailbox_mu_);
    mailbox_pending_.push_back(fd);
  }
  if (mailbox_.valid()) {
    const std::uint64_t one = 1;
    (void)::write(mailbox_.get(), &one, sizeof(one));
  }
}

void ServeLoop::on_mailbox_ready() {
  std::uint64_t drained = 0;
  (void)::read(mailbox_.get(), &drained, sizeof(drained));
  std::vector<int> batch;
  {
    const std::lock_guard<std::mutex> lock(mailbox_mu_);
    batch.swap(mailbox_pending_);
  }
  for (const int raw : batch) {
    Fd fd(raw);
    ++stats_.accepted;
    if (draining_ || conns_.size() >= opts_.max_connections) {
      ++stats_.accept_refused;
      ++stats_.errors[draining_ ? "shutting-down" : "overloaded"];
      continue;  // fd closes on scope exit
    }
    adopt(std::move(fd));
  }
}

void ServeLoop::adopt(Fd fd) {
  const int one = 1;
  (void)::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  const int raw = fd.get();
  auto conn = std::make_unique<Conn>(*this, std::move(fd));
  if (Status s = loop_.add(raw, conn.get(), EPOLLIN); !s.ok()) {
    ++stats_.accept_refused;
    ++stats_.errors["epoll-add"];
    return;
  }
  conns_.emplace(raw, std::move(conn));
}

// ------------------------------------------------------------------ drive

void ServeLoop::drive(Conn& conn) {
  if (conn.retired) return;

  if (!conn.sniff_done) {
    // First bytes decide the engine's start mode: a byte-exact client
    // preface prefix that completes is prior knowledge (kTls); the first
    // divergent octet means HTTP/1.1 text and the §3.2 upgrade dance
    // (kH2c). Read octet-wise-cheap: one recv per wake is plenty here.
    std::uint8_t buf[64];
    while (conn.sniff.size() < h2::kClientPreface.size()) {
      const ssize_t n = ::recv(conn.transport.fd(), buf, sizeof(buf), 0);
      if (n > 0) {
        conn.sniff.insert(conn.sniff.end(), buf, buf + n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      // EOF or a hard error before a single parseable byte sequence.
      if (n < 0) ++stats_.errors[errno_key(errno)];
      ++stats_.disconnected;
      loop_.remove(conn.transport.fd());
      conn.retired = true;
      retired_.push_back(conn.transport.fd());
      return;
    }
    const std::size_t n =
        std::min(conn.sniff.size(), h2::kClientPreface.size());
    const bool prefix_matches =
        std::equal(conn.sniff.begin(), conn.sniff.begin() + n,
                   h2::kClientPreface.begin());
    if (prefix_matches && n < h2::kClientPreface.size()) return;  // need more
    conn.mode = prefix_matches ? server::Http2Server::StartMode::kTls
                               : server::Http2Server::StartMode::kH2c;
    trace::Recorder* sink = opts_.recorder != nullptr ? &conn.tape : nullptr;
    if (sink != nullptr) {
      // The peer is a real remote client, so nobody in-process records its
      // frames — the engine has to put the c2s direction on the tape (and
      // open the connection segment) itself.
      sink->begin_connection(
          conn.mode == server::Http2Server::StartMode::kTls
              ? "serve:prior-knowledge"
              : "serve:h2c-upgrade");
    }
    conn.engine = std::make_unique<server::Http2Server>(profile_, site_,
                                                        conn.mode, sink);
    conn.engine->set_header_block_cache(opts_.header_block_cache);
    if (opts_.header_block_cache) {
      conn.engine->set_shared_block_cache(&shared_blocks_);
    }
    conn.engine->record_received_frames(true);
    conn.engine_ref.emplace(*conn.engine);
    conn.transport.push_inbound(conn.sniff);
    conn.sniff.clear();
    conn.driver.emplace(conn.transport, conn.transport.wire(),
                        *conn.engine_ref, kServeLimits);
    conn.sniff_done = true;
    if (draining_) conn.engine->shutdown();  // raced the drain start
  }

  if (conn.driver->state() == net::ExchangeDriver::State::kParked) {
    conn.driver->unpark();
  }
  if (conn.driver->pump() == net::ExchangeDriver::State::kDone) {
    settle(conn);
    loop_.remove(conn.transport.fd());
    conn.retired = true;
    retired_.push_back(conn.transport.fd());
    return;
  }
  update_interest(conn);
}

void ServeLoop::update_interest(Conn& conn) {
  const std::uint32_t want =
      EPOLLIN | (conn.transport.wants_write() ? EPOLLOUT : 0u);
  if (want == conn.interest) return;
  if (loop_.modify(conn.transport.fd(), want).ok()) conn.interest = want;
}

void ServeLoop::settle(Conn& conn) {
  const net::ExchangeResult& r = conn.driver->result();
  stats_.rounds += static_cast<std::uint64_t>(r.rounds);
  stats_.bytes_in += r.bytes_c2s;
  stats_.bytes_out += r.bytes_s2c;
  stats_.header_cache_hits += conn.engine->header_cache_hits();
  stats_.header_cache_misses += conn.engine->header_cache_misses();
  switch (r.outcome) {
    case net::ExchangeOutcome::kQuiescent:
      if (conn.mode == server::Http2Server::StartMode::kH2c &&
          !conn.engine->upgraded()) {
        ++stats_.declined_h1;
      } else {
        ++stats_.served_clean;
      }
      break;
    case net::ExchangeOutcome::kDisconnected:
      if (conn.transport.failed()) {
        ++stats_.disconnected;
        ++stats_.errors[errno_key(conn.transport.last_errno())];
      } else if (conn.engine->client_goaway() &&
                 conn.engine->active_stream_count() == 0) {
        // Peer said goodbye (GOAWAY), finished its streams, then closed:
        // that is a clean serve, not a connection loss.
        ++stats_.served_clean;
      } else {
        ++stats_.disconnected;
        ++stats_.errors["EOF"];
      }
      break;
    case net::ExchangeOutcome::kRoundCap:
    case net::ExchangeOutcome::kByteCap:
      ++stats_.disconnected;
      ++stats_.errors["exchange-cap"];
      break;
  }
}

void ServeLoop::flush_tape(Conn& conn) {
  if (opts_.recorder == nullptr) return;
  // The sink re-stamps sequence numbers, so flush order — whole connection
  // segments, in retirement order — is the exported trace's total order.
  // Timestamps are preserved as recorded. A tape that wrapped evicted its
  // oldest records first — including the kConnectionStart marker — so the
  // segment boundary is re-established before the survivors replay.
  if (conn.tape.drops() > 0) {
    opts_.recorder->begin_connection(
        conn.mode == server::Http2Server::StartMode::kTls
            ? "serve:prior-knowledge"
            : "serve:h2c-upgrade");
  }
  conn.tape.replay_into(*opts_.recorder);
  stats_.trace_drops += conn.tape.drops();
  conn.tape.clear();
}

void ServeLoop::retire_pending() {
  for (const int fd : retired_) {
    const auto it = conns_.find(fd);
    if (it == conns_.end()) continue;
    flush_tape(*it->second);
    it->second->transport.close();
    conns_.erase(it);
  }
  retired_.clear();
}

// --------------------------------------------------------------- shutdown

void ServeLoop::begin_drain() {
  draining_ = true;
  drain_deadline_ms_ =
      now_ms() + static_cast<std::uint64_t>(
                     opts_.drain_ms < 0 ? 0 : opts_.drain_ms);
  deadlines_.park(drain_deadline_ms_, 0);
  if (listener_.valid()) {
    loop_.remove(listener_.get());
    listener_.reset();
  }
  // GOAWAY + drain every live engine; pre-handshake sockets just close.
  std::vector<int> fds;
  fds.reserve(conns_.size());
  for (const auto& [fd, conn] : conns_) fds.push_back(fd);
  for (const int fd : fds) {
    const auto it = conns_.find(fd);
    if (it == conns_.end()) continue;
    Conn& conn = *it->second;
    if (conn.engine != nullptr) {
      conn.engine->shutdown();
      drive(conn);
    } else {
      ++stats_.errors["closed-at-shutdown"];
      loop_.remove(fd);
      conn.retired = true;
      retired_.push_back(fd);
    }
  }
  retire_pending();
}

Status ServeLoop::run() {
  while (true) {
    int timeout = -1;
    if (draining_) {
      if (conns_.empty()) break;
      const std::uint64_t now = now_ms();
      if (!deadlines_.pop_due(now).empty() || now >= drain_deadline_ms_) {
        // Drain budget spent: whoever is still open gets force-closed.
        for (auto& [fd, conn] : conns_) {
          ++stats_.drain_expired;
          loop_.remove(fd);
          flush_tape(*conn);
          conn->transport.close();
        }
        conns_.clear();
        break;
      }
      timeout = static_cast<int>(drain_deadline_ms_ - now);
    }
    auto polled = loop_.poll(timeout);
    if (!polled.ok()) return polled.status();
    if (loop_.shutdown_requested() && !draining_) begin_drain();
    retire_pending();
    if (draining_ && conns_.empty()) break;
  }
  stats_.header_cache_hits += shared_blocks_.hits;
  stats_.header_cache_misses += shared_blocks_.misses;
  return OkStatus();
}

}  // namespace h2r::netio
